package hierlock

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"hierlock/internal/proto"
	"hierlock/internal/recovery"
	"hierlock/internal/trace"
	"hierlock/internal/transport"
)

// This file is the member's runtime-membership layer: the JOIN handshake
// (a joiner probes the cluster, adopts the highest epoch any member has
// observed, and seeds its engines from the cluster's recovery table — a
// join is a recovery round with zero lost tokens) and the graceful LEAVE
// hand-off (a departing member nominates every token it holds for
// regeneration among the survivors, so probable-owner chains re-route
// around it before it disconnects). A leaver that dies mid-handshake is
// simply a crash: the survivors' failure detectors confirm it dead and
// the ordinary recovery path regenerates whatever the hand-off missed.
//
// All handshake messages travel as v4 wire kinds (KindJoin/KindJoinAck/
// KindLeave/KindLeaveAck). The initial JOIN is delivered out-of-band by
// TCPTransport.SendTo — the joiner knows the seed's address but not yet
// a peer link — and may therefore be duplicated; every handler here is
// idempotent.

// Membership handshake tuning.
const (
	// membershipRetry is the announce/ack retry cadence of Join and
	// Leave while acknowledgments are outstanding.
	membershipRetry = 250 * time.Millisecond
	// leaveDetachDelay is how long a survivor keeps a leaver's peer link
	// after acknowledging its LEAVE, so the ack (and any hand-off retry
	// acks) drain before the writer is retired.
	leaveDetachDelay = 2 * time.Second
	// seedBatchLimit caps the recovery-table seeds a JoinAck carries (the
	// joiner learns the rest lazily through recovery hints).
	seedBatchLimit = 1024
)

// ErrNoMembership is returned by Join and Leave on members without a
// runtime-membership surface (in-process members, or TCP members created
// without HeartbeatInterval: membership rides the recovery machinery).
var ErrNoMembership = errors.New("hierlock: membership requires a TCP member with recovery enabled")

// membership returns the member's transport and recovery surfaces, or
// ErrNoMembership when either is missing.
func (m *Member) membership() (*transport.TCPTransport, error) {
	t, ok := m.tr.(*transport.TCPTransport)
	if !ok || m.mgr == nil {
		return nil, ErrNoMembership
	}
	return t, nil
}

// Join announces this member to a running cluster through the seed
// member at seedAddr and blocks until every member it learns about has
// acknowledged it (or ctx expires). The member must have been created
// with the cluster's Root and a unique ID; it typically starts with an
// empty peer set and learns the cluster from the seed's JoinAck, which
// also carries the highest recovery epoch observed (adopted as this
// member's epoch floor) and a batch of recovery-table seeds (so lazily
// created engines re-home to regenerated roots instead of the static
// topology). Idempotent: re-joining an already-joined cluster re-announces.
func (m *Member) Join(ctx context.Context, seedAddr string) error {
	t, err := m.membership()
	if err != nil {
		return err
	}
	if m.closed.Load() {
		return ErrClosed
	}
	if m.leaving.Load() {
		return ErrLeaving
	}
	joinC := make(chan proto.NodeID, 64)
	m.ackMu.Lock()
	m.joinC = joinC
	m.ackMu.Unlock()
	defer func() {
		m.ackMu.Lock()
		m.joinC = nil
		m.ackMu.Unlock()
	}()

	announce := proto.Message{Kind: proto.KindJoin, From: m.id, To: proto.NoNode,
		TS: m.clock.Tick(), Addr: m.advertise}
	m.countMembershipSend(&announce)
	if err := t.SendTo(seedAddr, &announce); err != nil {
		return fmt.Errorf("hierlock: join via %s: %w", seedAddr, err)
	}

	acked := make(map[proto.NodeID]bool)
	retry := time.NewTicker(membershipRetry)
	defer retry.Stop()
	for {
		select {
		case id := <-joinC:
			acked[id] = true
			if pending := m.unackedPeers(t, acked); len(pending) == 0 {
				return nil
			}
		case <-retry.C:
			pending := m.unackedPeers(t, acked)
			if len(pending) == 0 && len(acked) > 0 {
				return nil
			}
			if len(acked) == 0 {
				// The seed has not answered yet: re-send out-of-band.
				re := proto.Message{Kind: proto.KindJoin, From: m.id,
					To: proto.NoNode, TS: m.clock.Tick(), Addr: m.advertise}
				m.countMembershipSend(&re)
				_ = t.SendTo(seedAddr, &re)
				continue
			}
			for _, id := range pending {
				m.sendMembership(&proto.Message{Kind: proto.KindJoin,
					From: m.id, To: id, TS: m.clock.Tick(), Addr: m.advertise})
			}
		case <-ctx.Done():
			return ctx.Err()
		case <-m.done:
			return ErrClosed
		}
	}
}

// unackedPeers lists the transport peers that have not acknowledged the
// handshake yet, sorted for deterministic retry order.
func (m *Member) unackedPeers(t *transport.TCPTransport, acked map[proto.NodeID]bool) []proto.NodeID {
	var out []proto.NodeID
	for id := range t.Peers() {
		if !acked[id] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Leave gracefully departs the cluster: the member stops taking new
// client operations (ErrLeaving), refuses to leave while local holds
// are outstanding (unlock first — hand-off moves tokens, not client
// holds), nominates every token it holds to the survivors, and blocks
// until every peer has acknowledged the hand-off (or ctx expires). After
// a successful Leave the caller should Close the member; the survivors
// retire its links on their own. A leaver that crashes mid-Leave is
// handled by the survivors' ordinary crash-recovery path.
func (m *Member) Leave(ctx context.Context) error {
	t, err := m.membership()
	if err != nil {
		return err
	}
	if m.closed.Load() {
		return ErrClosed
	}
	m.leaving.Store(true)
	if n := m.heldLockCount(); n > 0 {
		m.leaving.Store(false)
		return fmt.Errorf("hierlock: leave with %d held locks (unlock first)", n)
	}
	tokens := m.tokenLockIDs()
	peers := m.unackedPeers(t, nil)
	if len(peers) == 0 {
		return nil // single-node cluster: nothing to hand off to
	}

	leaveC := make(chan proto.NodeID, 64)
	m.ackMu.Lock()
	m.leaveC = leaveC
	m.ackMu.Unlock()
	defer func() {
		m.ackMu.Lock()
		m.leaveC = nil
		m.ackMu.Unlock()
	}()

	vec := make([]uint64, len(tokens))
	for i, l := range tokens {
		vec[i] = uint64(l)
	}
	broadcast := func(to []proto.NodeID) {
		for _, id := range to {
			m.sendMembership(&proto.Message{Kind: proto.KindLeave,
				From: m.id, To: id, TS: m.clock.Tick(), Vec: vec})
		}
	}
	broadcast(peers)

	acked := make(map[proto.NodeID]bool)
	retry := time.NewTicker(membershipRetry)
	defer retry.Stop()
	for {
		select {
		case id := <-leaveC:
			acked[id] = true
			if m.allAcked(peers, acked) {
				return nil
			}
		case <-retry.C:
			var pending []proto.NodeID
			for _, id := range peers {
				if !acked[id] {
					pending = append(pending, id)
				}
			}
			broadcast(pending)
		case <-ctx.Done():
			return ctx.Err()
		case <-m.done:
			return ErrClosed
		}
	}
}

// allAcked reports whether every peer in the hand-off set acknowledged.
func (m *Member) allAcked(peers []proto.NodeID, acked map[proto.NodeID]bool) bool {
	for _, id := range peers {
		if !acked[id] {
			return false
		}
	}
	return true
}

// heldLockCount counts locks with a live local client hold.
func (m *Member) heldLockCount() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, ls := range sh.locks {
			if ls.hold != nil && !ls.hold.lost {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// tokenLockIDs lists the locks whose token this member currently holds,
// sorted — the hand-off set a LEAVE nominates.
func (m *Member) tokenLockIDs() []proto.LockID {
	var out []proto.LockID
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for id, ls := range sh.locks {
			if ls.engine.IsToken() {
				out = append(out, id)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// handleJoin admits (or re-acknowledges) a joining peer: its address
// joins the transport's peer set, its ID joins the recovery node set,
// the quorum is recomputed if it tracks the majority, and a JoinAck
// answers with this member's world — the peer list, the highest epoch
// observed, and a batch of recovery-table seeds. Idempotent: the initial
// JOIN arrives out-of-band and may be duplicated.
func (m *Member) handleJoin(msg *proto.Message) {
	t, err := m.membership()
	if err != nil || msg.From == m.id || msg.Addr == "" || msg.From < 0 {
		return
	}
	if m.leaving.Load() {
		return // a departing member admits no one
	}
	m.mgrMu.Lock()
	known := false
	for _, n := range m.mgr.Nodes() {
		if n == msg.From {
			known = true
			break
		}
	}
	t.AddPeer(msg.From, msg.Addr)
	m.mgr.AddNode(msg.From)
	if m.quorumAuto {
		m.mgr.SetQuorum(len(m.mgr.Nodes())/2 + 1)
	}
	ack := proto.Message{Kind: proto.KindJoinAck, From: m.id, To: msg.From,
		TS:    m.clock.Tick(),
		Addr:  m.peerList(t),
		Epoch: m.maxEpochObserved(),
		Queue: m.seedBatch(),
	}
	m.mgrMu.Unlock()
	if !known {
		m.tel.mJoins.Inc()
		if lg := m.tel.log; lg != nil {
			lg.Info("peer joined", "peer", int(msg.From), "addr", msg.Addr)
		}
	}
	m.sendMembership(&ack)
}

// handleJoinAck is the joiner's side of the handshake: adopt the
// answering member's world (peer set, epoch floor, recovery seeds),
// announce to any member learned for the first time, and wake the Join
// call. Also idempotent — acks are re-sent on every retry.
func (m *Member) handleJoinAck(msg *proto.Message) {
	t, err := m.membership()
	if err != nil || msg.From == m.id {
		return
	}
	peers, perr := parsePeerList(msg.Addr)
	if perr != nil {
		if lg := m.tel.log; lg != nil {
			lg.Warn("bad join ack peer list", "from", int(msg.From), "err", perr)
		}
		return
	}
	existing := t.Peers()
	m.mgrMu.Lock()
	var learned []proto.NodeID
	for id, addr := range peers {
		if id == m.id {
			continue
		}
		if _, ok := existing[id]; !ok {
			learned = append(learned, id)
		}
		t.AddPeer(id, addr)
		m.mgr.AddNode(id)
	}
	if m.quorumAuto {
		m.mgr.SetQuorum(len(m.mgr.Nodes())/2 + 1)
	}
	m.mgr.SetEpochFloor(msg.Epoch)
	for _, r := range msg.Queue {
		m.mgr.Adopt(proto.LockID(r.TS), recovery.Seed{
			Root: r.Origin, Epoch: uint32(r.Trace.Seq)})
	}
	m.mgrMu.Unlock()

	sort.Slice(learned, func(i, j int) bool { return learned[i] < learned[j] })
	for _, id := range learned {
		if id == msg.From {
			continue
		}
		m.sendMembership(&proto.Message{Kind: proto.KindJoin,
			From: m.id, To: id, TS: m.clock.Tick(), Addr: m.advertise})
	}

	m.ackMu.Lock()
	if c := m.joinC; c != nil {
		select {
		case c <- msg.From:
		default:
		}
	}
	m.ackMu.Unlock()
}

// handleLeave processes a peer's graceful departure: acknowledge first —
// on the still-live link, so the leaver can unblock — then hand its
// nominated token locks to the recovery machinery for regeneration among
// the survivors, and finally retire the peer link after a grace delay
// (the ack, and acks for any hand-off retries, must drain before the
// writer is dropped). Idempotent: a re-delivered LEAVE from an already-
// departed peer is re-acknowledged while its link survives and hands
// off nothing new.
func (m *Member) handleLeave(msg *proto.Message) {
	t, err := m.membership()
	if err != nil || msg.From == m.id {
		return
	}
	m.sendMembership(&proto.Message{Kind: proto.KindLeaveAck,
		From: m.id, To: msg.From, TS: m.clock.Tick()})

	m.mgrMu.Lock()
	wasMember := false
	for _, n := range m.mgr.Nodes() {
		if n == msg.From {
			wasMember = true
			break
		}
	}
	if wasMember {
		locks := make([]proto.LockID, len(msg.Vec))
		for i, v := range msg.Vec {
			locks[i] = proto.LockID(v)
		}
		m.mgr.Depart(msg.From, locks)
		if m.quorumAuto {
			m.mgr.SetQuorum(len(m.mgr.Nodes())/2 + 1)
		}
	}
	m.mgrMu.Unlock()
	if wasMember {
		m.tel.mLeaves.Inc()
		m.tel.mHandoff.Add(uint64(len(msg.Vec)))
		if lg := m.tel.log; lg != nil {
			lg.Info("peer left gracefully", "peer", int(msg.From),
				"handoff_locks", len(msg.Vec))
		}
		peer := msg.From
		m.afterTracked(leaveDetachDelay, func() {
			t.RemovePeer(peer)
		})
	}
}

// handleLeaveAck wakes a blocked Leave call.
func (m *Member) handleLeaveAck(msg *proto.Message) {
	m.ackMu.Lock()
	if c := m.leaveC; c != nil {
		select {
		case c <- msg.From:
		default:
		}
	}
	m.ackMu.Unlock()
}

// peerList renders this member's view of the cluster as the JoinAck
// peer-list syntax "id=host:port,..." (itself included, so the joiner
// learns the answering member's advertised address too).
func (m *Member) peerList(t *transport.TCPTransport) string {
	peers := t.Peers()
	ids := make([]proto.NodeID, 0, len(peers)+1)
	for id := range peers {
		ids = append(ids, id)
	}
	if m.advertise != "" {
		peers[m.id] = m.advertise
		ids = append(ids, m.id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(int(id)) + "=" + peers[id]
	}
	return strings.Join(parts, ",")
}

// parsePeerList parses the JoinAck peer-list syntax.
func parsePeerList(s string) (map[proto.NodeID]string, error) {
	out := make(map[proto.NodeID]string)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[1] == "" {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("bad peer id %q", kv[0])
		}
		out[proto.NodeID(id)] = kv[1]
	}
	return out, nil
}

// maxEpochObserved is the highest recovery epoch this member has seen —
// across the completed-round seed table and its live engines (an engine
// can briefly lead the table while a hint is in flight). A joiner adopts
// it as its epoch floor so a round it later regenerates cannot collide
// with a world it never observed. Caller holds mgrMu.
func (m *Member) maxEpochObserved() uint32 {
	var max uint32
	for _, s := range m.mgr.Table() {
		if s.Epoch > max {
			max = s.Epoch
		}
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, ls := range sh.locks {
			if e := ls.engine.Epoch(); e > max {
				max = e
			}
		}
		sh.mu.Unlock()
	}
	return max
}

// seedBatch encodes the recovery table for a JoinAck: each completed
// round's (lock, root, epoch) rides a Request slot — Origin is the
// regenerated root, TS the lock ID, Trace.Seq the epoch. Sorted by lock
// and capped at seedBatchLimit (the joiner learns anything beyond the
// cap lazily, through Stale hints).
func (m *Member) seedBatch() []proto.Request {
	table := m.mgr.Table()
	locks := make([]proto.LockID, 0, len(table))
	for l := range table {
		locks = append(locks, l)
	}
	sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
	if len(locks) > seedBatchLimit {
		locks = locks[:seedBatchLimit]
	}
	out := make([]proto.Request, len(locks))
	for i, l := range locks {
		s := table[l]
		out[i] = proto.Request{Origin: s.Root, TS: proto.Timestamp(l),
			Trace: proto.TraceID{Seq: uint64(s.Epoch)}}
	}
	return out
}

// sendMembership transmits one membership-handshake message over the
// regular peer link, with the same accounting as engine traffic. Send
// failures are not surfaced: both handshakes retry until acknowledged.
func (m *Member) sendMembership(msg *proto.Message) {
	m.countMembershipSend(msg)
	_ = m.tr.Send(msg)
}

// countMembershipSend applies the outbound-message accounting without
// transmitting (the initial JOIN goes out-of-band via SendTo).
func (m *Member) countMembershipSend(msg *proto.Message) {
	m.statMu.Lock()
	m.sent.Count(msg.Kind)
	m.statMu.Unlock()
	m.tel.countSent(msg.Kind)
	if rec := m.tel.rec; rec != nil {
		rec.Record(trace.Entry{At: m.tel.now(), Op: trace.OpSend,
			Node: m.id, Kind: msg.Kind, From: msg.From, To: msg.To,
			Epoch: msg.Epoch, Trace: msgTrace(msg)})
	}
}

// MemberInfo describes one cluster member as this member sees it.
type MemberInfo struct {
	// ID is the member's node identifier.
	ID int
	// Addr is its advertised peer address ("" when unknown — in-process
	// members, or this member itself when created without an advertised
	// address).
	Addr string
	// Self marks the entry describing the member that answered.
	Self bool
}

// Members returns this member's current view of the cluster, sorted by
// ID. Without recovery enabled the view is static (the configured peer
// set); with it, joins and departures are reflected live.
func (m *Member) Members() []MemberInfo {
	addrs := make(map[proto.NodeID]string)
	if t, ok := m.tr.(*transport.TCPTransport); ok {
		addrs = t.Peers()
	}
	var ids []proto.NodeID
	if m.mgr != nil {
		m.mgrMu.Lock()
		ids = m.mgr.Nodes()
		m.mgrMu.Unlock()
	} else {
		for id := range addrs {
			ids = append(ids, id)
		}
		ids = append(ids, m.id)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	out := make([]MemberInfo, 0, len(ids))
	for _, id := range ids {
		info := MemberInfo{ID: int(id), Addr: addrs[id], Self: id == m.id}
		if info.Self && info.Addr == "" {
			info.Addr = m.advertise
		}
		out = append(out, info)
	}
	return out
}
