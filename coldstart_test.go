package hierlock_test

import (
	"context"
	"testing"
	"time"

	"hierlock"
	"hierlock/internal/audit"
	"hierlock/internal/metrics"
	"hierlock/internal/trace"
)

// bootDurableMember starts one member of a durable recovery cluster:
// journal under dataDir, failure detector and crash recovery on
// aggressive test timings, default (batched) fsync policy.
func bootDurableMember(t *testing.T, id int, addrs map[int]string, dataDir string) *hierlock.Member {
	t.Helper()
	peers := make(map[int]string, len(addrs)-1)
	for j, a := range addrs {
		if j != id {
			peers[j] = a
		}
	}
	m, err := hierlock.NewTCPMember(hierlock.TCPMemberConfig{
		ID:                id,
		ListenAddr:        addrs[id],
		Peers:             peers,
		DataDir:           dataDir,
		RedialBackoff:     20 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
		SuspectAfter:      200 * time.Millisecond,
		ConfirmAfter:      500 * time.Millisecond,
		ProbeTimeout:      150 * time.Millisecond,
		RecoveryTimeout:   30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// reserveAddrs allocates n stable loopback addresses by booting and
// closing throwaway members, so a restarted cluster can come back on
// the same ports its journals' peers expect.
func reserveAddrs(t *testing.T, n int) map[int]string {
	t.Helper()
	addrs := make(map[int]string, n)
	for i := 0; i < n; i++ {
		m, err := hierlock.NewTCPMember(hierlock.TCPMemberConfig{
			ID: i, ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = m.TCPAddr()
		_ = m.Close()
	}
	return addrs
}

// TestTCPColdStartFromJournals is the PR's acceptance test: a durable
// cluster runs a workload that moves tokens around, loses one member
// mid-flight (forcing a regeneration round at a fresh epoch), then the
// WHOLE cluster goes down. Every member restarts from its journal on
// the same address, the cold-start reconciliation converges the
// replayed states onto one consistent epoch above the pre-crash
// maximum, and all N members serve lock traffic again with zero audit
// violations and no lock stuck at epoch 0.
func TestTCPColdStartFromJournals(t *testing.T) {
	const n = 3
	dataDir := t.TempDir()
	addrs := reserveAddrs(t, n)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Phase 1: durable cluster under load. Both resources change token
	// owner on every iteration, so every member journals grants,
	// releases and token arrivals.
	members := make([]*hierlock.Member, n)
	for i := 0; i < n; i++ {
		members[i] = bootDurableMember(t, i, addrs, dataDir)
	}
	for round := 0; round < 2; round++ {
		for _, m := range members {
			for _, res := range []string{"cold-a", "cold-b"} {
				l, err := m.Lock(ctx, res, hierlock.W)
				if err != nil {
					t.Fatalf("phase 1 member %d lock %s: %v", m.ID(), res, err)
				}
				if err := l.Unlock(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Member 2 dies holding W on cold-a (token and hold die with it);
	// the survivors regenerate at a fresh epoch and keep serving.
	if _, err := members[2].Lock(ctx, "cold-a", hierlock.W); err != nil {
		t.Fatal(err)
	}
	if err := members[2].Close(); err != nil {
		t.Fatal(err)
	}
	var preEpoch uint32
	for _, i := range []int{0, 1} {
		l, err := members[i].Lock(ctx, "cold-a", hierlock.W)
		if err != nil {
			t.Fatalf("survivor %d after crash: %v", i, err)
		}
		if err := l.Unlock(); err != nil {
			t.Fatal(err)
		}
		if e := members[i].EpochOf("cold-a"); e > preEpoch {
			preEpoch = e
		}
	}
	if preEpoch == 0 {
		t.Fatal("no regeneration round before the cold start — test precondition broken")
	}

	// Phase 2: the whole cluster goes down.
	for _, i := range []int{0, 1} {
		if err := members[i].Err(); err != nil {
			t.Fatalf("member %d protocol error before shutdown: %v", i, err)
		}
		if err := members[i].Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 3: cold start — every member restarts from its journal on
	// its old address, with one online auditor watching the whole
	// rebuilt cluster (every member's recorder taps into it, so it sees
	// both ends of each token transfer).
	auditor := audit.New(audit.Config{Registry: metrics.NewRegistry(), Root: 0})
	for i := 0; i < n; i++ {
		members[i] = bootDurableMember(t, i, addrs, dataDir)
		rec := trace.New(1 << 14)
		rec.SetTap(auditor.Record)
		members[i].SetTelemetry(hierlock.Telemetry{Registry: metrics.NewRegistry(), Trace: rec})
	}
	t.Cleanup(func() {
		for _, m := range members {
			_ = m.Close()
		}
	})

	// Every member — including the one that died before the last
	// regeneration round — must serve both resources again.
	for _, m := range members {
		for _, res := range []string{"cold-a", "cold-b"} {
			l, err := m.Lock(ctx, res, hierlock.W)
			if err != nil {
				t.Fatalf("cold-started member %d lock %s: %v", m.ID(), res, err)
			}
			if err := l.Unlock(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The rebuilt world is consistent: every member converged onto one
	// epoch per lock, above the pre-crash maximum, nothing stuck at 0.
	for _, res := range []string{"cold-a", "cold-b"} {
		var epoch uint32
		for _, m := range members {
			e := m.EpochOf(res)
			if e == 0 {
				t.Fatalf("member %d lock %s stuck at epoch 0 after cold start", m.ID(), res)
			}
			if epoch == 0 {
				epoch = e
			} else if e != epoch {
				t.Fatalf("lock %s: member %d at epoch %d, others at %d — cold start did not converge", res, m.ID(), e, epoch)
			}
		}
	}
	if e := members[0].EpochOf("cold-a"); e <= preEpoch {
		t.Fatalf("cold-a resumed at epoch %d, want > pre-crash max %d", e, preEpoch)
	}
	for i, m := range members {
		if err := m.Err(); err != nil {
			t.Fatalf("member %d protocol error after cold start: %v", i, err)
		}
		if js, ok := m.JournalStats(); !ok || js.Records == 0 {
			t.Fatalf("member %d journaled nothing after cold start (ok=%v stats=%+v)", i, ok, js)
		}
	}
	if v := auditor.Violations(); v != 0 {
		t.Fatalf("auditor flagged %d violations after cold start: %+v", v, auditor.Snapshot().Violations)
	}
}

// TestTCPRestartSingleMemberRejoins covers the narrower restart the
// issue calls out: one member restarts from its journal while the rest
// of the cluster kept running, answers recovery probes from replayed
// state (rejoining at max(journaled epoch)+1 via the cold-start round)
// instead of nominating at epoch 0, and serves traffic again.
func TestTCPRestartSingleMemberRejoins(t *testing.T) {
	const n = 3
	dataDir := t.TempDir()
	addrs := reserveAddrs(t, n)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	members := make([]*hierlock.Member, n)
	for i := 0; i < n; i++ {
		members[i] = bootDurableMember(t, i, addrs, dataDir)
	}
	t.Cleanup(func() {
		for _, m := range members {
			_ = m.Close()
		}
	})
	// Member 2 takes the token for the resource, then dies with it.
	if _, err := members[2].Lock(ctx, "rejoin-res", hierlock.W); err != nil {
		t.Fatal(err)
	}
	if err := members[2].Close(); err != nil {
		t.Fatal(err)
	}
	// Survivors regenerate and keep going.
	for _, i := range []int{0, 1} {
		l, err := members[i].Lock(ctx, "rejoin-res", hierlock.W)
		if err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
		if err := l.Unlock(); err != nil {
			t.Fatal(err)
		}
	}
	// The crashed member restarts from its journal and must become a
	// full participant again: its journaled token claim for rejoin-res
	// is stale (the survivors' epoch fences it), the cold-start
	// reconciliation catches it up, and its acquisitions serve.
	members[2] = bootDurableMember(t, 2, addrs, dataDir)
	l, err := members[2].Lock(ctx, "rejoin-res", hierlock.W)
	if err != nil {
		t.Fatalf("restarted member rejoin: %v", err)
	}
	if err := l.Unlock(); err != nil {
		t.Fatal(err)
	}
	if e := members[2].EpochOf("rejoin-res"); e == 0 {
		t.Fatal("restarted member still at epoch 0 — journal replay or catch-up failed")
	}
	for i, m := range members {
		if err := m.Err(); err != nil {
			t.Fatalf("member %d protocol error: %v", i, err)
		}
	}
}
