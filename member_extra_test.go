package hierlock_test

// Tests for the member runtime's harder paths: cancelled upgrades,
// unlock-during-upgrade, and cancelled waits racing their own grants.

import (
	"context"
	"errors"
	"testing"
	"time"

	"hierlock"
)

func TestUpgradeCancelledThenCompletes(t *testing.T) {
	c := newCluster(t, 3)
	ctx := context.Background()

	u, err := c.Member(1).Lock(ctx, "acct", hierlock.U)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Member(2).Lock(ctx, "acct", hierlock.R)
	if err != nil {
		t.Fatal(err)
	}

	// The upgrade blocks on the reader; cancel it.
	cctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if err := u.Upgrade(cctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected deadline, got %v", err)
	}
	// The upgrade cannot be retracted: once the reader releases it
	// completes in the background; the handle still owns the lock and a
	// plain Unlock must work and free the resource.
	if err := r.Unlock(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the background upgrade land
	if err := u.Unlock(); err != nil {
		t.Fatal(err)
	}
	// The resource must be fully free afterwards.
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	w, err := c.Member(0).Lock(wctx, "acct", hierlock.W)
	if err != nil {
		t.Fatalf("resource leaked after cancelled upgrade: %v", err)
	}
	_ = w.Unlock()
}

func TestUnlockDuringUpgradeAutoReleases(t *testing.T) {
	c := newCluster(t, 3)
	ctx := context.Background()

	u, err := c.Member(1).Lock(ctx, "doc", hierlock.U)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Member(2).Lock(ctx, "doc", hierlock.R)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if err := u.Upgrade(cctx); err == nil {
		t.Fatal("upgrade should have timed out behind the reader")
	}
	// Unlock while the upgrade is still in flight: the member must defer
	// the release until the upgrade lands, then free everything.
	if err := u.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := r.Unlock(); err != nil {
		t.Fatal(err)
	}
	// The resource must become fully free without further client action.
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	w, err := c.Member(0).Lock(wctx, "doc", hierlock.W)
	if err != nil {
		t.Fatalf("lock leaked after unlock-during-upgrade: %v", err)
	}
	_ = w.Unlock()
}

func TestDoubleUpgradeRejected(t *testing.T) {
	c := newCluster(t, 3)
	ctx := context.Background()
	u, err := c.Member(1).Lock(ctx, "x", hierlock.U)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Member(2).Lock(ctx, "x", hierlock.R)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 80*time.Millisecond)
	defer cancel()
	_ = u.Upgrade(cctx) // times out, stays in flight
	if err := u.Upgrade(ctx); err == nil {
		t.Fatal("second concurrent upgrade must be rejected")
	}
	_ = r.Unlock()
	time.Sleep(200 * time.Millisecond)
	_ = u.Unlock()
}

func TestCancelRaceStillSucceeds(t *testing.T) {
	// A context that expires around the same time the grant arrives: the
	// call must either succeed with a valid handle or fail cleanly, and
	// the resource must never leak. Run several timings to cover the
	// race window.
	c := newCluster(t, 2)
	ctx := context.Background()
	for _, d := range []time.Duration{
		time.Microsecond, 100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond,
	} {
		cctx, cancel := context.WithTimeout(ctx, d)
		l, err := c.Member(1).Lock(cctx, "racey", hierlock.W)
		cancel()
		if err == nil {
			if err := l.Unlock(); err != nil {
				t.Fatal(err)
			}
		}
		// Whatever happened, the lock must be (or become) free.
		wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
		w, err := c.Member(0).Lock(wctx, "racey", hierlock.W)
		wcancel()
		if err != nil {
			t.Fatalf("timeout %v leaked the lock: %v", d, err)
		}
		if err := w.Unlock(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMemberIDAndSize(t *testing.T) {
	c := newCluster(t, 3)
	if c.Size() != 3 {
		t.Fatalf("size = %d", c.Size())
	}
	for i := 0; i < 3; i++ {
		if c.Member(i).ID() != i {
			t.Fatalf("member %d reports id %d", i, c.Member(i).ID())
		}
	}
	if c.Member(0).TCPAddr() != "" {
		t.Fatal("in-process member must report no TCP address")
	}
}

func TestMemberStats(t *testing.T) {
	c := newCluster(t, 2)
	ctx := context.Background()
	l1, err := c.Member(1).Lock(ctx, "stats", hierlock.R)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := c.Member(1).Lock(ctx, "stats", hierlock.R) // shared join
	if err != nil {
		t.Fatal(err)
	}
	_ = l1.Unlock()
	_ = l2.Unlock()
	st := c.Member(1).Stats()
	if st.Acquires != 2 {
		t.Errorf("acquires = %d, want 2", st.Acquires)
	}
	if st.SharedJoins != 1 {
		t.Errorf("shared joins = %d, want 1", st.SharedJoins)
	}
	// P99 comes from a power-of-two-bucket histogram, so it can sit up to
	// one bucket (2×) below the exact mean when samples cluster.
	if st.MeanAcquire <= 0 || st.P99Acquire < st.MeanAcquire/2 {
		t.Errorf("latency stats: mean=%v p99=%v", st.MeanAcquire, st.P99Acquire)
	}
	if st.MessagesSent == 0 {
		t.Errorf("messages = %d", st.MessagesSent)
	}
}
