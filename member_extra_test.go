package hierlock_test

// Tests for the member runtime's harder paths: cancelled upgrades,
// unlock-during-upgrade, and cancelled waits racing their own grants.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"hierlock"
)

func TestUpgradeCancelledThenCompletes(t *testing.T) {
	c := newCluster(t, 3)
	ctx := context.Background()

	u, err := c.Member(1).Lock(ctx, "acct", hierlock.U)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Member(2).Lock(ctx, "acct", hierlock.R)
	if err != nil {
		t.Fatal(err)
	}

	// The upgrade blocks on the reader; cancel it.
	cctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if err := u.Upgrade(cctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected deadline, got %v", err)
	}
	// The upgrade cannot be retracted: once the reader releases it
	// completes in the background; the handle still owns the lock and a
	// plain Unlock must work and free the resource.
	if err := r.Unlock(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the background upgrade land
	if err := u.Unlock(); err != nil {
		t.Fatal(err)
	}
	// The resource must be fully free afterwards.
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	w, err := c.Member(0).Lock(wctx, "acct", hierlock.W)
	if err != nil {
		t.Fatalf("resource leaked after cancelled upgrade: %v", err)
	}
	_ = w.Unlock()
}

func TestUnlockDuringUpgradeAutoReleases(t *testing.T) {
	c := newCluster(t, 3)
	ctx := context.Background()

	u, err := c.Member(1).Lock(ctx, "doc", hierlock.U)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Member(2).Lock(ctx, "doc", hierlock.R)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if err := u.Upgrade(cctx); err == nil {
		t.Fatal("upgrade should have timed out behind the reader")
	}
	// Unlock while the upgrade is still in flight: the member must defer
	// the release until the upgrade lands, then free everything.
	if err := u.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := r.Unlock(); err != nil {
		t.Fatal(err)
	}
	// The resource must become fully free without further client action.
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	w, err := c.Member(0).Lock(wctx, "doc", hierlock.W)
	if err != nil {
		t.Fatalf("lock leaked after unlock-during-upgrade: %v", err)
	}
	_ = w.Unlock()
}

func TestDoubleUpgradeRejected(t *testing.T) {
	c := newCluster(t, 3)
	ctx := context.Background()
	u, err := c.Member(1).Lock(ctx, "x", hierlock.U)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Member(2).Lock(ctx, "x", hierlock.R)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 80*time.Millisecond)
	defer cancel()
	_ = u.Upgrade(cctx) // times out, stays in flight
	if err := u.Upgrade(ctx); err == nil {
		t.Fatal("second concurrent upgrade must be rejected")
	}
	_ = r.Unlock()
	time.Sleep(200 * time.Millisecond)
	_ = u.Unlock()
}

func TestCancelRaceStillSucceeds(t *testing.T) {
	// A context that expires around the same time the grant arrives: the
	// call must either succeed with a valid handle or fail cleanly, and
	// the resource must never leak. Run several timings to cover the
	// race window.
	c := newCluster(t, 2)
	ctx := context.Background()
	for _, d := range []time.Duration{
		time.Microsecond, 100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond,
	} {
		cctx, cancel := context.WithTimeout(ctx, d)
		l, err := c.Member(1).Lock(cctx, "racey", hierlock.W)
		cancel()
		if err == nil {
			if err := l.Unlock(); err != nil {
				t.Fatal(err)
			}
		}
		// Whatever happened, the lock must be (or become) free.
		wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
		w, err := c.Member(0).Lock(wctx, "racey", hierlock.W)
		wcancel()
		if err != nil {
			t.Fatalf("timeout %v leaked the lock: %v", d, err)
		}
		if err := w.Unlock(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMemberIDAndSize(t *testing.T) {
	c := newCluster(t, 3)
	if c.Size() != 3 {
		t.Fatalf("size = %d", c.Size())
	}
	for i := 0; i < 3; i++ {
		if c.Member(i).ID() != i {
			t.Fatalf("member %d reports id %d", i, c.Member(i).ID())
		}
	}
	if c.Member(0).TCPAddr() != "" {
		t.Fatal("in-process member must report no TCP address")
	}
}

func TestMemberStats(t *testing.T) {
	c := newCluster(t, 2)
	ctx := context.Background()
	l1, err := c.Member(1).Lock(ctx, "stats", hierlock.R)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := c.Member(1).Lock(ctx, "stats", hierlock.R) // shared join
	if err != nil {
		t.Fatal(err)
	}
	_ = l1.Unlock()
	_ = l2.Unlock()
	st := c.Member(1).Stats()
	if st.Acquires != 2 {
		t.Errorf("acquires = %d, want 2", st.Acquires)
	}
	if st.SharedJoins != 1 {
		t.Errorf("shared joins = %d, want 1", st.SharedJoins)
	}
	// P99 comes from a power-of-two-bucket histogram, so it can sit up to
	// one bucket (2×) below the exact mean when samples cluster.
	if st.MeanAcquire <= 0 || st.P99Acquire < st.MeanAcquire/2 {
		t.Errorf("latency stats: mean=%v p99=%v", st.MeanAcquire, st.P99Acquire)
	}
	if st.MessagesSent == 0 {
		t.Errorf("messages = %d", st.MessagesSent)
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	// Close tests cannot use newCluster: the surviving member may record a
	// send-to-closed-peer error as its first error, which the shared
	// cleanup would report as a failure.
	c, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	l0, err := c.Member(0).Lock(ctx, "res", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	defer l0.Unlock()

	// Client A blocks as member 1's registered waiter; client B blocks
	// behind A in slot admission for the same resource.
	resA := make(chan error, 1)
	resB := make(chan error, 1)
	go func() {
		_, err := c.Member(1).Lock(ctx, "res", hierlock.W)
		resA <- err
	}()
	time.Sleep(100 * time.Millisecond)
	go func() {
		_, err := c.Member(1).Lock(ctx, "res", hierlock.R)
		resB <- err
	}()
	time.Sleep(100 * time.Millisecond)

	if err := c.Member(1).Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for name, ch := range map[string]chan error{"waiter": resA, "slot-blocked": resB} {
		select {
		case err := <-ch:
			if !errors.Is(err, hierlock.ErrClosed) {
				t.Errorf("%s client: got %v, want ErrClosed", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s client still blocked after Close", name)
		}
	}
	// New operations on the closed member fail fast.
	if _, err := c.Member(1).Lock(ctx, "other", hierlock.W); !errors.Is(err, hierlock.ErrClosed) {
		t.Errorf("post-close Lock: got %v, want ErrClosed", err)
	}
}

func TestIdleLockEviction(t *testing.T) {
	// Touching N distinct resources must not grow the per-lock table
	// without bound: idle entries are swept once a stripe passes its
	// threshold, so the resident set stays far below N.
	c := newCluster(t, 1)
	ctx := context.Background()
	m := c.Member(0)

	const n = 10000
	for i := 0; i < n; i++ {
		l, err := m.Lock(ctx, fmt.Sprintf("res-%d", i), hierlock.W)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Unlock(); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.TrackedLocks(); got > 2048 {
		t.Errorf("tracked locks = %d after %d idle resources, want <= 2048", got, n)
	}

	// A held lock must survive a full sweep; everything idle must go.
	held, err := m.Lock(ctx, "pinned", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	m.EvictIdle()
	if got := m.TrackedLocks(); got != 1 {
		t.Errorf("tracked locks = %d after sweep with one held lock, want 1", got)
	}
	if err := held.Unlock(); err != nil {
		t.Fatal(err)
	}
	m.EvictIdle()
	if got := m.TrackedLocks(); got != 0 {
		t.Errorf("tracked locks = %d after final sweep, want 0", got)
	}
}

func TestEvictionPreservesProtocolState(t *testing.T) {
	// An engine that is not at its initial protocol state (the token moved)
	// must never be evicted, and locking must keep working across sweeps.
	c := newCluster(t, 2)
	ctx := context.Background()

	l, err := c.Member(1).Lock(ctx, "tok", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Unlock(); err != nil {
		t.Fatal(err)
	}
	// Member 1 now holds the idle token; member 0's engine points at it.
	// Neither is at initial state, so neither entry may be evicted.
	c.Member(0).EvictIdle()
	c.Member(1).EvictIdle()
	if got := c.Member(1).TrackedLocks(); got != 1 {
		t.Errorf("member 1 tracked locks = %d, want 1 (idle token must stay)", got)
	}
	if got := c.Member(0).TrackedLocks(); got != 1 {
		t.Errorf("member 0 tracked locks = %d, want 1 (re-routed parent must stay)", got)
	}
	// The lock still works after the sweeps, from both sides.
	for i := 0; i < 2; i++ {
		l, err := c.Member(i).Lock(ctx, "tok", hierlock.W)
		if err != nil {
			t.Fatalf("member %d lock after sweep: %v", i, err)
		}
		if err := l.Unlock(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAbandonedGrantRacesClose(t *testing.T) {
	// A waiter abandons (context cancelled), its grant arrives anyway, and
	// the member closes — all at roughly the same time. Whatever
	// interleaving wins, the call must return nil, Canceled, or ErrClosed,
	// and nothing may deadlock. Run many rounds to cover the window.
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		c, err := hierlock.NewCluster(2)
		if err != nil {
			t.Fatal(err)
		}
		l0, err := c.Member(0).Lock(ctx, "r", hierlock.W)
		if err != nil {
			t.Fatal(err)
		}
		cctx, cancel := context.WithCancel(ctx)
		res := make(chan error, 1)
		go func() {
			l, err := c.Member(1).Lock(cctx, "r", hierlock.W)
			if err == nil {
				err = l.Unlock()
			}
			res <- err
		}()
		time.Sleep(time.Duration(i%5) * time.Millisecond)
		cancel()
		_ = l0.Unlock() // grant flies toward member 1
		go c.Member(1).Close()
		select {
		case err := <-res:
			if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, hierlock.ErrClosed) {
				t.Fatalf("round %d: unexpected error %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: client deadlocked", i)
		}
		_ = c.Close()
	}
}
