GO ?= go
GOFMT ?= gofmt

.PHONY: build test vet lint race chaos coldstart sessions membership fuzz bench bench-record bench-compare audit ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static checks: go vet plus a gofmt drift check (fails listing any
# unformatted file).
lint: vet
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Full test suite under the race detector (includes the transport
# failure-path tests and the simulator chaos tests).
race:
	$(GO) test -race -count=1 ./...

# Just the fault-injection, crash-recovery and transport-failure
# coverage (includes the disk-loss restart chaos scenarios).
chaos:
	$(GO) test -race -count=1 -run 'Chaos' ./internal/cluster/
	$(GO) test -race -count=1 -run 'TestTCP' ./internal/transport/
	$(GO) test -race -count=1 ./internal/recovery/
	$(GO) test -race -count=1 -run 'TestTCPCrashRecovery|TestTCPRecoveryQuietWithoutCrash' .

# Durability coverage: the journal package (torn-tail, corrupt-frame,
# snapshot-rotation tests) and the full-cluster cold-start / restart
# rejoin acceptance tests over real TCP members.
coldstart:
	$(GO) test -race -count=1 ./internal/journal/
	$(GO) test -race -count=1 -run 'TestTCPColdStartFromJournals|TestTCPRestartSingleMemberRejoins' .

# Session/lease/admission stress under the race detector: the session
# tier's lifecycle and wait-queue tests, the lockserver bugfix
# regressions and lease acceptance tests, the simulator lease chaos,
# and the fencing tests (including fence-across-crash-recovery).
sessions:
	$(GO) test -race -count=1 ./internal/session/
	$(GO) test -race -count=1 -run 'TestSession|TestAdmission|TestLease|TestUpgradeHonors|TestCloseDrains|TestLongLine' ./internal/lockserver/
	$(GO) test -race -count=1 -run 'TestLease' ./internal/cluster/
	$(GO) test -race -count=1 -run 'TestFence' .

# Runtime-membership coverage under the race detector: the live TCP
# join/leave acceptance tests (grow, shrink, leaver killed mid-handoff),
# the simulator join/leave chaos and determinism tests, the tracked
# recovery-timer regressions, and the membership wire-kind golden/fuzz
# corpus rides in the proto package.
membership:
	$(GO) test -race -count=1 -run 'TestTCPMembership|TestTCPLeave|TestTCPLeaver|TestCloseWaitsForInflightRecoveryRetry|TestClosedMemberRunsNoTrackedCallbacks|TestCloseTimerStress' .
	$(GO) test -race -count=1 -run 'TestJoin|TestLeave|TestRootLeave|TestMembershipChaos' ./internal/cluster/
	$(GO) test -race -count=1 ./internal/proto/

# Short seeded fuzz passes over the journal replayer and the protocol
# engine (longer runs: go test -fuzz FuzzReplay ./internal/journal).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReplay -fuzztime 10s ./internal/journal/

# Microbenchmarks: protocol engine hot paths plus the observability
# overhead benches (histogram/counter/trace-record, including the
# nil-handle disabled paths, which must report 0 allocs/op).
bench:
	$(GO) test -run '^$$' -bench . -benchmem . ./internal/hlock ./internal/metrics ./internal/trace ./internal/proto

# Record a benchmark snapshot — the paper's Figure 5/6/7 CSVs plus the
# microbenchmark output — into BENCH_pr10.json so PRs can be compared.
bench-record:
	$(GO) run ./cmd/benchrecord -o BENCH_pr10.json

# Compare the current snapshot against the previous PR's baseline and
# fail on any >10% regression in the gated families: engine
# microbenchmarks, the live-cluster member hot paths (with the latency
# SLO histograms active via telemetry tests), and the seeded simulator
# figure benchmarks, against the PR-8 baseline.
bench-compare:
	$(GO) run ./cmd/benchcompare -old BENCH_pr9.json -new BENCH_pr10.json -threshold 0.10

# The online protocol auditor's invariant tests, under the race
# detector (they replay violating and healthy trace streams).
audit:
	$(GO) test -race -count=1 ./internal/audit/

# What CI runs: build, go vet + gofmt drift, the plain test pass (which
# includes the codec allocation assertions compiled out under -race),
# the full suite under -race (tier-1), the auditor invariants, the
# chaos/crash-recovery pass, the durability pass (journal + cold-start
# chaos + journal fuzz), the session/lease stress pass, the runtime
# membership pass (join/leave acceptance + determinism), and the
# microbenchmark regression gate against the previous PR's recorded
# baseline.
ci: build lint test race audit chaos coldstart sessions membership fuzz bench-record bench-compare

clean:
	$(GO) clean ./...
