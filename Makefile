GO ?= go
GOFMT ?= gofmt

.PHONY: build test vet lint race chaos bench ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static checks: go vet plus a gofmt drift check (fails listing any
# unformatted file).
lint: vet
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Full test suite under the race detector (includes the transport
# failure-path tests and the simulator chaos tests).
race:
	$(GO) test -race -count=1 ./...

# Just the fault-injection and transport-failure coverage.
chaos:
	$(GO) test -race -count=1 -run 'Chaos' ./internal/cluster/
	$(GO) test -race -count=1 -run 'TestTCP' ./internal/transport/

# Microbenchmarks: protocol engine hot paths plus the observability
# overhead benches (histogram/counter/trace-record, including the
# nil-handle disabled paths, which must report 0 allocs/op).
bench:
	$(GO) test -run '^$$' -bench . -benchmem . ./internal/hlock ./internal/metrics ./internal/trace

# What CI runs.
ci: build lint race

clean:
	$(GO) clean ./...
