GO ?= go

.PHONY: build test vet race chaos ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full test suite under the race detector (includes the transport
# failure-path tests and the simulator chaos tests).
race:
	$(GO) test -race -count=1 ./...

# Just the fault-injection and transport-failure coverage.
chaos:
	$(GO) test -race -count=1 -run 'Chaos' ./internal/cluster/
	$(GO) test -race -count=1 -run 'TestTCP' ./internal/transport/

# What CI runs.
ci: build vet race

clean:
	$(GO) clean ./...
