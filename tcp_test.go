package hierlock_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hierlock"
)

// newTCPCluster boots n members on loopback TCP with ":0" listeners,
// wiring the full peer mesh.
func newTCPCluster(t *testing.T, n int) []*hierlock.Member {
	t.Helper()
	members := make([]*hierlock.Member, n)
	addrs := make(map[int]string, n)
	for i := 0; i < n; i++ {
		m, err := hierlock.NewTCPMember(hierlock.TCPMemberConfig{
			ID:         i,
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
		addrs[i] = m.TCPAddr()
	}
	// Peers are discovered lazily by the transport, so completing the
	// maps after creation is fine: recreate members would be cleaner in
	// production (known ports), but for tests we re-dial via a second
	// pass using the exported config path.
	t.Cleanup(func() {
		for _, m := range members {
			if err := m.Err(); err != nil {
				t.Errorf("member %d protocol error: %v", m.ID(), err)
			}
			_ = m.Close()
		}
	})
	// Rebuild with full peer maps (ports now known).
	for i := 0; i < n; i++ {
		_ = members[i].Close()
	}
	for i := 0; i < n; i++ {
		peers := make(map[int]string, n-1)
		for j, a := range addrs {
			if j != i {
				peers[j] = a
			}
		}
		m, err := hierlock.NewTCPMember(hierlock.TCPMemberConfig{
			ID:         i,
			ListenAddr: addrs[i],
			Peers:      peers,
		})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
	}
	return members
}

func TestTCPClusterMutualExclusion(t *testing.T) {
	members := newTCPCluster(t, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var inCS atomic.Int32
	var completed atomic.Int32
	var wg sync.WaitGroup
	for i := range members {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := 0; op < 5; op++ {
				l, err := members[i].Lock(ctx, "tcp-excl", hierlock.W)
				if err != nil {
					t.Errorf("member %d: %v", i, err)
					return
				}
				if n := inCS.Add(1); n != 1 {
					t.Errorf("mutual exclusion violated over TCP: %d in CS", n)
				}
				time.Sleep(time.Millisecond)
				inCS.Add(-1)
				if err := l.Unlock(); err != nil {
					t.Errorf("member %d unlock: %v", i, err)
					return
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	if completed.Load() != 20 {
		t.Fatalf("completed %d/20 ops", completed.Load())
	}
}

func TestTCPClusterHierarchical(t *testing.T) {
	members := newTCPCluster(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 1; i <= 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pl, err := members[i].LockPath(ctx, []string{"inv", fmt.Sprintf("bin%d", i)}, hierlock.W)
			if err != nil {
				errs <- err
				return
			}
			time.Sleep(20 * time.Millisecond)
			if err := pl.Unlock(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
