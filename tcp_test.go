package hierlock_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hierlock"
)

// newTCPCluster boots n members on loopback TCP with ":0" listeners,
// wiring the full peer mesh.
func newTCPCluster(t *testing.T, n int) []*hierlock.Member {
	t.Helper()
	members := make([]*hierlock.Member, n)
	addrs := make(map[int]string, n)
	for i := 0; i < n; i++ {
		m, err := hierlock.NewTCPMember(hierlock.TCPMemberConfig{
			ID:         i,
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
		addrs[i] = m.TCPAddr()
	}
	// Peers are discovered lazily by the transport, so completing the
	// maps after creation is fine: recreate members would be cleaner in
	// production (known ports), but for tests we re-dial via a second
	// pass using the exported config path.
	t.Cleanup(func() {
		for _, m := range members {
			if err := m.Err(); err != nil {
				t.Errorf("member %d protocol error: %v", m.ID(), err)
			}
			_ = m.Close()
		}
	})
	// Rebuild with full peer maps (ports now known).
	for i := 0; i < n; i++ {
		_ = members[i].Close()
	}
	for i := 0; i < n; i++ {
		peers := make(map[int]string, n-1)
		for j, a := range addrs {
			if j != i {
				peers[j] = a
			}
		}
		m, err := hierlock.NewTCPMember(hierlock.TCPMemberConfig{
			ID:         i,
			ListenAddr: addrs[i],
			Peers:      peers,
		})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
	}
	return members
}

func TestTCPClusterMutualExclusion(t *testing.T) {
	members := newTCPCluster(t, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var inCS atomic.Int32
	var completed atomic.Int32
	var wg sync.WaitGroup
	for i := range members {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := 0; op < 5; op++ {
				l, err := members[i].Lock(ctx, "tcp-excl", hierlock.W)
				if err != nil {
					t.Errorf("member %d: %v", i, err)
					return
				}
				if n := inCS.Add(1); n != 1 {
					t.Errorf("mutual exclusion violated over TCP: %d in CS", n)
				}
				time.Sleep(time.Millisecond)
				inCS.Add(-1)
				if err := l.Unlock(); err != nil {
					t.Errorf("member %d unlock: %v", i, err)
					return
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	if completed.Load() != 20 {
		t.Fatalf("completed %d/20 ops", completed.Load())
	}
}

func TestTCPClusterHierarchical(t *testing.T) {
	members := newTCPCluster(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 1; i <= 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pl, err := members[i].LockPath(ctx, []string{"inv", fmt.Sprintf("bin%d", i)}, hierlock.W)
			if err != nil {
				errs <- err
				return
			}
			time.Sleep(20 * time.Millisecond)
			if err := pl.Unlock(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// newRecoveryTCPCluster boots n members with the failure detector and
// crash-recovery runtime enabled (aggressive timings for test speed).
// Members are not auto-closed: crash tests close them explicitly.
func newRecoveryTCPCluster(t *testing.T, n int) []*hierlock.Member {
	t.Helper()
	addrs := make(map[int]string, n)
	boot := make([]*hierlock.Member, n)
	for i := 0; i < n; i++ {
		m, err := hierlock.NewTCPMember(hierlock.TCPMemberConfig{
			ID: i, ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		boot[i] = m
		addrs[i] = m.TCPAddr()
	}
	for _, m := range boot {
		_ = m.Close()
	}
	members := make([]*hierlock.Member, n)
	for i := 0; i < n; i++ {
		peers := make(map[int]string, n-1)
		for j, a := range addrs {
			if j != i {
				peers[j] = a
			}
		}
		m, err := hierlock.NewTCPMember(hierlock.TCPMemberConfig{
			ID:                i,
			ListenAddr:        addrs[i],
			Peers:             peers,
			RedialBackoff:     20 * time.Millisecond,
			HeartbeatInterval: 25 * time.Millisecond,
			SuspectAfter:      200 * time.Millisecond,
			ConfirmAfter:      500 * time.Millisecond,
			ProbeTimeout:      150 * time.Millisecond,
			RecoveryTimeout:   20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
	}
	t.Cleanup(func() {
		for _, m := range members {
			_ = m.Close()
		}
	})
	return members
}

// TestTCPCrashRecovery: a member crashes while holding a W lock (and
// therefore the lock's token). Without recovery the lock would hang
// forever; with the detector and token regeneration enabled, the
// survivors confirm the crash, regenerate the token at a fresh epoch,
// and both serve their acquisitions.
func TestTCPCrashRecovery(t *testing.T) {
	members := newRecoveryTCPCluster(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Member 2 takes the token into the crash.
	if _, err := members[2].Lock(ctx, "crash-res", hierlock.W); err != nil {
		t.Fatal(err)
	}
	// Crash it: the hold is never released, the token and any queued
	// requests die with the process.
	if err := members[2].Close(); err != nil {
		t.Fatal(err)
	}

	// Both survivors must still be able to serve W acquisitions, in
	// mutual exclusion, once recovery has regenerated the token.
	for _, i := range []int{0, 1} {
		l, err := members[i].Lock(ctx, "crash-res", hierlock.W)
		if err != nil {
			t.Fatalf("member %d acquire after crash: %v", i, err)
		}
		if err := l.Unlock(); err != nil {
			t.Fatalf("member %d unlock after crash: %v", i, err)
		}
	}
	// The regenerator is the lowest surviving ID.
	if r := members[0].RecoveryRounds(); r == 0 {
		t.Error("member 0 completed no recovery rounds")
	}
	for _, i := range []int{0, 1} {
		if err := members[i].Err(); err != nil {
			t.Errorf("member %d protocol error: %v", i, err)
		}
	}
}

// TestTCPRecoveryQuietWithoutCrash: enabling the detector on a healthy
// cluster must not trigger recovery rounds or perturb normal operation.
func TestTCPRecoveryQuietWithoutCrash(t *testing.T) {
	members := newRecoveryTCPCluster(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for round := 0; round < 3; round++ {
		for _, m := range members {
			l, err := m.Lock(ctx, "quiet-res", hierlock.W)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Unlock(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Hold long enough for several confirm windows to elapse.
	time.Sleep(time.Second)
	for _, m := range members {
		if r := m.RecoveryRounds(); r != 0 {
			t.Errorf("member %d ran %d recovery rounds on a healthy cluster", m.ID(), r)
		}
		if err := m.Err(); err != nil {
			t.Errorf("member %d protocol error: %v", m.ID(), err)
		}
	}
}
