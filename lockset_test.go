package hierlock_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"hierlock"
)

func TestLockAllBasic(t *testing.T) {
	c := newCluster(t, 2)
	ctx := context.Background()
	ls, err := c.Member(1).LockAll(ctx, []string{"a", "b", "c"}, hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Len() != 3 {
		t.Fatalf("len = %d", ls.Len())
	}
	// All three are exclusively held: a W from another member blocks.
	cctx, cancel := context.WithTimeout(ctx, 150*time.Millisecond)
	defer cancel()
	if _, err := c.Member(0).Lock(cctx, "b", hierlock.W); err == nil {
		t.Fatal("b should be held")
	}
	if err := ls.Unlock(); err != nil {
		t.Fatal(err)
	}
	// Now free.
	w, err := c.Member(0).Lock(ctx, "b", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Unlock()
}

func TestLockAllDeduplicates(t *testing.T) {
	c := newCluster(t, 1)
	ls, err := c.Member(0).LockAll(context.Background(), []string{"x", "x", "y", "x"}, hierlock.R)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Len() != 2 {
		t.Fatalf("len = %d, want 2 (deduplicated)", ls.Len())
	}
	if err := ls.Unlock(); err != nil {
		t.Fatal(err)
	}
}

func TestLockAllEmpty(t *testing.T) {
	c := newCluster(t, 1)
	if _, err := c.Member(0).LockAll(context.Background(), nil, hierlock.R); err == nil {
		t.Fatal("empty set must fail")
	}
}

// TestLockAllNoDeadlock is the point of the canonical ordering: many
// members grab overlapping resource sets listed in conflicting orders;
// every call must complete.
func TestLockAllNoDeadlock(t *testing.T) {
	const nodes = 5
	c := newCluster(t, nodes)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	resources := []string{"r0", "r1", "r2", "r3"}
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := 0; op < 8; op++ {
				// Rotate the listing order per member and op so naive
				// in-order acquisition would deadlock.
				set := make([]string, len(resources))
				for j := range resources {
					set[j] = resources[(i+op+j)%len(resources)]
				}
				ls, err := c.Member(i).LockAll(ctx, set, hierlock.W)
				if err != nil {
					t.Errorf("member %d op %d: %v", i, op, err)
					return
				}
				time.Sleep(time.Millisecond)
				if err := ls.Unlock(); err != nil {
					t.Errorf("member %d op %d unlock: %v", i, op, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestLockAllReleasesOnFailure(t *testing.T) {
	c := newCluster(t, 2)
	ctx := context.Background()
	// Hold one of the set exclusively so LockAll stalls mid-way.
	blocker, err := c.Member(0).Lock(ctx, "mid", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer cancel()
	if _, err := c.Member(1).LockAll(cctx, []string{"early", "mid", "late"}, hierlock.W); err == nil {
		t.Fatal("should have timed out on the blocked resource")
	}
	_ = blocker.Unlock()
	// Everything must be free again.
	for _, res := range []string{"early", "mid", "late"} {
		wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
		l, err := c.Member(0).Lock(wctx, res, hierlock.W)
		wcancel()
		if err != nil {
			t.Fatalf("resource %q leaked: %v", res, err)
		}
		_ = l.Unlock()
	}
}

// ExampleMember_LockAll demonstrates deadlock-free multi-resource
// locking.
func ExampleMember_LockAll() {
	cluster, _ := hierlock.NewCluster(2)
	defer cluster.Close()

	// Both members list the accounts in different orders; the canonical
	// internal ordering makes this safe.
	var wg sync.WaitGroup
	for i, set := range [][]string{
		{"accounts/alice", "accounts/bob"},
		{"accounts/bob", "accounts/alice"},
	} {
		i, set := i, set
		wg.Add(1)
		go func() {
			defer wg.Done()
			ls, err := cluster.Member(i).LockAll(context.Background(), set, hierlock.W)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			defer ls.Unlock()
			// transfer between the two accounts atomically…
		}()
	}
	wg.Wait()
	fmt.Println("both transfers completed without deadlock")
	// Output: both transfers completed without deadlock
}
