package hierlock_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hierlock"
)

func newCluster(t *testing.T, n int) *hierlock.Cluster {
	t.Helper()
	c, err := hierlock.NewCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := c.Err(); err != nil {
			t.Errorf("cluster protocol error: %v", err)
		}
		_ = c.Close()
	})
	return c
}

func TestSingleMemberLockUnlock(t *testing.T) {
	c := newCluster(t, 1)
	ctx := context.Background()
	l, err := c.Member(0).Lock(ctx, "res", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	if l.Mode() != hierlock.W || l.Resource() != "res" {
		t.Fatalf("handle: %v %v", l.Mode(), l.Resource())
	}
	if err := l.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := l.Unlock(); !errors.Is(err, hierlock.ErrReleased) {
		t.Fatalf("double unlock = %v", err)
	}
}

func TestConcurrentReaders(t *testing.T) {
	c := newCluster(t, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var inCS atomic.Int32
	var maxCS atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			l, err := c.Member(i).Lock(ctx, "shared", hierlock.R)
			if err != nil {
				t.Error(err)
				return
			}
			n := inCS.Add(1)
			for {
				old := maxCS.Load()
				if n <= old || maxCS.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			inCS.Add(-1)
			if err := l.Unlock(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if maxCS.Load() < 2 {
		t.Errorf("readers should overlap, max concurrency = %d", maxCS.Load())
	}
}

func TestWritersExclusive(t *testing.T) {
	c := newCluster(t, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var inCS atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		for rep := 0; rep < 3; rep++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				l, err := c.Member(i).Lock(ctx, "excl", hierlock.W)
				if err != nil {
					t.Error(err)
					return
				}
				if n := inCS.Add(1); n != 1 {
					t.Errorf("mutual exclusion violated: %d writers in CS", n)
				}
				time.Sleep(2 * time.Millisecond)
				inCS.Add(-1)
				if err := l.Unlock(); err != nil {
					t.Error(err)
				}
			}()
		}
	}
	wg.Wait()
}

func TestReaderWriterConflict(t *testing.T) {
	c := newCluster(t, 3)
	ctx := context.Background()
	r, err := c.Member(1).Lock(ctx, "doc", hierlock.R)
	if err != nil {
		t.Fatal(err)
	}
	wDone := make(chan error, 1)
	go func() {
		w, err := c.Member(2).Lock(ctx, "doc", hierlock.W)
		if err != nil {
			wDone <- err
			return
		}
		wDone <- w.Unlock()
	}()
	select {
	case <-wDone:
		t.Fatal("writer acquired while reader held")
	case <-time.After(300 * time.Millisecond):
	}
	if err := r.Unlock(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-wDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writer starved")
	}
}

func TestHierarchicalConcurrency(t *testing.T) {
	// Two members write different rows concurrently under IW table locks.
	c := newCluster(t, 3)
	ctx := context.Background()
	var wg sync.WaitGroup
	var overlap atomic.Int32
	var sawOverlap atomic.Bool
	for i := 1; i <= 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tl, err := c.Member(i).Lock(ctx, "table", hierlock.IW)
			if err != nil {
				t.Error(err)
				return
			}
			rl, err := c.Member(i).Lock(ctx, fmt.Sprintf("table/row%d", i), hierlock.W)
			if err != nil {
				t.Error(err)
				return
			}
			if overlap.Add(1) == 2 {
				sawOverlap.Store(true)
			}
			time.Sleep(50 * time.Millisecond)
			overlap.Add(-1)
			_ = rl.Unlock()
			_ = tl.Unlock()
		}()
	}
	wg.Wait()
	if !sawOverlap.Load() {
		t.Error("disjoint row writers under IW should overlap")
	}
}

func TestUpgradeFlow(t *testing.T) {
	c := newCluster(t, 3)
	ctx := context.Background()
	u, err := c.Member(1).Lock(ctx, "acct", hierlock.U)
	if err != nil {
		t.Fatal(err)
	}
	// A reader coexists with U.
	r, err := c.Member(2).Lock(ctx, "acct", hierlock.R)
	if err != nil {
		t.Fatal(err)
	}
	// Upgrade must wait for the reader.
	upDone := make(chan error, 1)
	go func() { upDone <- u.Upgrade(ctx) }()
	select {
	case <-upDone:
		t.Fatal("upgrade completed while reader held")
	case <-time.After(200 * time.Millisecond):
	}
	if err := r.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := <-upDone; err != nil {
		t.Fatal(err)
	}
	if u.Mode() != hierlock.W {
		t.Fatalf("mode after upgrade = %v", u.Mode())
	}
	if err := u.Unlock(); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeErrors(t *testing.T) {
	c := newCluster(t, 2)
	ctx := context.Background()
	r, err := c.Member(0).Lock(ctx, "x", hierlock.R)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Upgrade(ctx); !errors.Is(err, hierlock.ErrNotUpgradable) {
		t.Fatalf("upgrade from R = %v", err)
	}
	if err := r.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := r.Upgrade(ctx); !errors.Is(err, hierlock.ErrReleased) {
		t.Fatalf("upgrade after release = %v", err)
	}
}

func TestContextCancelledWait(t *testing.T) {
	c := newCluster(t, 3)
	ctx := context.Background()
	w, err := c.Member(1).Lock(ctx, "busy", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 150*time.Millisecond)
	defer cancel()
	if _, err := c.Member(2).Lock(cctx, "busy", hierlock.R); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected deadline, got %v", err)
	}
	// The abandoned request is auto-released on grant, so the next writer
	// is not blocked by a ghost reader.
	if err := w.Unlock(); err != nil {
		t.Fatal(err)
	}
	l2, err := c.Member(0).Lock(ctx, "busy", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Unlock(); err != nil {
		t.Fatal(err)
	}
}

func TestSameMemberSharedAndExclusiveHolds(t *testing.T) {
	c := newCluster(t, 2)
	ctx := context.Background()

	// Self-compatible modes (IR, R, IW) are shared between local clients
	// of one member: the second R joins the existing hold immediately.
	l, err := c.Member(1).Lock(ctx, "serial", hierlock.R)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := c.Member(1).Lock(ctx, "serial", hierlock.R)
	if err != nil {
		t.Fatal(err)
	}
	// The hold survives until the last sharer unlocks: after l releases,
	// a remote writer must still wait for l2.
	if err := l.Unlock(); err != nil {
		t.Fatal(err)
	}
	wDone := make(chan error, 1)
	go func() {
		w, err := c.Member(0).Lock(ctx, "serial", hierlock.W)
		if err == nil {
			err = w.Unlock()
		}
		wDone <- err
	}()
	select {
	case <-wDone:
		t.Fatal("writer acquired while a sharer still held R")
	case <-time.After(200 * time.Millisecond):
	}
	if err := l2.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := <-wDone; err != nil {
		t.Fatal(err)
	}

	// Exclusive modes are never shared: the same member's second W waits.
	w1, err := c.Member(1).Lock(ctx, "serial", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	second := make(chan error, 1)
	go func() {
		w2, err := c.Member(1).Lock(ctx, "serial", hierlock.W)
		if err == nil {
			err = w2.Unlock()
		}
		second <- err
	}()
	select {
	case <-second:
		t.Fatal("same member acquired W twice concurrently")
	case <-time.After(200 * time.Millisecond):
	}
	if err := w1.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := <-second; err != nil {
		t.Fatal(err)
	}
}

func TestLockPath(t *testing.T) {
	c := newCluster(t, 3)
	ctx := context.Background()
	pl, err := c.Member(1).LockPath(ctx, []string{"db", "fares", "row17"}, hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Leaf().Mode() != hierlock.W {
		t.Fatalf("leaf mode = %v", pl.Leaf().Mode())
	}
	// A second member can write a different row concurrently.
	pl2, err := c.Member(2).LockPath(ctx, []string{"db", "fares", "row18"}, hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl2.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := pl.Unlock(); err != nil {
		t.Fatal(err)
	}
	// Errors.
	if _, err := c.Member(0).LockPath(ctx, nil, hierlock.R); err == nil {
		t.Error("empty path must fail")
	}
	if _, err := c.Member(0).LockPath(ctx, []string{"a", ""}, hierlock.R); err == nil {
		t.Error("empty component must fail")
	}
}

func TestLockPathReleasesOnFailure(t *testing.T) {
	c := newCluster(t, 2)
	// Hold W on the leaf from member 0 so member 1's path lock stalls at
	// the leaf; cancel and verify the ancestor locks were released.
	ctx := context.Background()
	leaf, err := c.Member(0).Lock(ctx, "a/b", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer cancel()
	if _, err := c.Member(1).LockPath(cctx, []string{"a", "b"}, hierlock.W); err == nil {
		t.Fatal("path lock should have failed")
	}
	if err := leaf.Unlock(); err != nil {
		t.Fatal(err)
	}
	// Ancestors must be free: a W on "a" succeeds promptly.
	wctx, wcancel := context.WithTimeout(ctx, 5*time.Second)
	defer wcancel()
	l, err := c.Member(0).Lock(wctx, "a", hierlock.W)
	if err != nil {
		t.Fatalf("ancestor leaked: %v", err)
	}
	_ = l.Unlock()
}

func TestInvalidInputs(t *testing.T) {
	c := newCluster(t, 1)
	ctx := context.Background()
	if _, err := c.Member(0).Lock(ctx, "x", hierlock.Mode(0)); err == nil {
		t.Error("mode None must fail")
	}
	if _, err := c.Member(0).Lock(ctx, "x", hierlock.Mode(99)); err == nil {
		t.Error("invalid mode must fail")
	}
	if _, err := hierlock.NewCluster(0); err == nil {
		t.Error("empty cluster must fail")
	}
}

func TestCloseRejectsOps(t *testing.T) {
	c, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Member(0).Lock(context.Background(), "x", hierlock.R); !errors.Is(err, hierlock.ErrClosed) {
		t.Fatalf("lock after close = %v", err)
	}
	if err := c.Member(0).Close(); err != nil {
		t.Error("double close must be nil")
	}
}

func TestCompatibleAndResourceID(t *testing.T) {
	if !hierlock.Compatible(hierlock.IR, hierlock.IW) || hierlock.Compatible(hierlock.R, hierlock.W) {
		t.Error("compatibility re-export broken")
	}
	if hierlock.ResourceID("a") == hierlock.ResourceID("b") {
		t.Error("distinct resources must map to distinct ids")
	}
	if hierlock.ResourceID("a") != hierlock.ResourceID("a") {
		t.Error("resource ids must be stable")
	}
}

func TestMessagesSent(t *testing.T) {
	c := newCluster(t, 2)
	ctx := context.Background()
	l, err := c.Member(1).Lock(ctx, "m", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Unlock()
	sent := c.Member(1).MessagesSent()
	if sent["request"] == 0 {
		t.Errorf("expected request messages, got %v", sent)
	}
}

// TestConcurrentStress hammers a cluster from many goroutines with mixed
// modes and verifies compatibility with an oracle.
func TestConcurrentStress(t *testing.T) {
	const nodes = 6
	c := newCluster(t, nodes)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var mu sync.Mutex
	held := map[int]hierlock.Mode{}
	modesAll := []hierlock.Mode{hierlock.IR, hierlock.R, hierlock.U, hierlock.IW, hierlock.W}

	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for op := 0; op < 30; op++ {
				m := modesAll[rng.Intn(len(modesAll))]
				l, err := c.Member(i).Lock(ctx, "stress", m)
				if err != nil {
					t.Errorf("member %d: %v", i, err)
					return
				}
				mu.Lock()
				for other, om := range held {
					if !hierlock.Compatible(om, m) {
						t.Errorf("INCOMPATIBLE: member %d holds %v while %d acquires %v", other, om, i, m)
					}
				}
				held[i] = m
				mu.Unlock()
				time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
				mu.Lock()
				delete(held, i)
				mu.Unlock()
				if err := l.Unlock(); err != nil {
					t.Errorf("member %d unlock: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestLockWithPriority(t *testing.T) {
	c := newCluster(t, 4)
	ctx := context.Background()
	w, err := c.Member(0).Lock(ctx, "queue", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	// Two waiters: low priority first, then high priority.
	type result struct {
		who int
		err error
	}
	results := make(chan result, 2)
	lockAs := func(member int, prio uint8) {
		l, err := c.Member(member).LockWithPriority(ctx, "queue", hierlock.W, prio)
		if err == nil {
			results <- result{member, nil}
			time.Sleep(10 * time.Millisecond)
			err = l.Unlock()
		}
		if err != nil {
			results <- result{member, err}
		}
	}
	go lockAs(1, 0)
	time.Sleep(200 * time.Millisecond) // let the low-priority request queue
	go lockAs(2, 9)
	time.Sleep(200 * time.Millisecond)
	if err := w.Unlock(); err != nil {
		t.Fatal(err)
	}
	first := <-results
	if first.err != nil {
		t.Fatal(first.err)
	}
	if first.who != 2 {
		t.Fatalf("high-priority waiter should win, got member %d", first.who)
	}
	second := <-results
	if second.err != nil {
		t.Fatal(second.err)
	}
	if second.who != 1 {
		t.Fatalf("low-priority waiter second, got member %d", second.who)
	}
}
