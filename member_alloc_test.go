//go:build !race

package hierlock_test

// Allocation guards for the member's client hot path with telemetry —
// including the per-operation latency SLO histograms — attached and
// recording. The budgets are the BENCH_pr7 baselines (5 allocs/op for
// the local contended path, 7 for the journaled path), pinned so
// instrumentation added later must stay allocation-neutral: histogram
// observation is handle-indexed atomics, never label formatting. The
// race detector's instrumentation defeats testing.AllocsPerRun, so
// these compile out under -race; `make ci` runs them in the plain pass.

import (
	"context"
	"testing"

	"hierlock"
	"hierlock/internal/metrics"
)

func TestMemberLockUnlockAllocsWithTelemetry(t *testing.T) {
	c, err := hierlock.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := c.Member(0)
	m.SetTelemetry(hierlock.Telemetry{Registry: metrics.NewRegistry()})
	ctx := context.Background()
	const budget = 5 // BENCH_pr7: BenchmarkMemberMultiLockContended allocs/op
	got := testing.AllocsPerRun(500, func() {
		l, err := m.Lock(ctx, "alloc-guard", hierlock.W)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Unlock(); err != nil {
			t.Fatal(err)
		}
	})
	if got > budget {
		t.Errorf("local Lock/Unlock with telemetry allocates %.1f objects/op, budget %d", got, budget)
	}
}

func TestMemberJournaledLockUnlockAllocsWithTelemetry(t *testing.T) {
	m, err := hierlock.NewTCPMember(hierlock.TCPMemberConfig{
		ID:         0,
		ListenAddr: "127.0.0.1:0",
		DataDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.SetTelemetry(hierlock.Telemetry{Registry: metrics.NewRegistry()})
	ctx := context.Background()
	const budget = 7 // BENCH_pr7: BenchmarkMemberJournaledGrant allocs/op
	got := testing.AllocsPerRun(500, func() {
		l, err := m.Lock(ctx, "journal-alloc-guard", hierlock.W)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Unlock(); err != nil {
			t.Fatal(err)
		}
	})
	if got > budget {
		t.Errorf("journaled Lock/Unlock with telemetry allocates %.1f objects/op, budget %d", got, budget)
	}
}
