package hierlock_test

import (
	"context"
	"fmt"
	"sync"

	"hierlock"
)

// Basic usage: an in-process cluster, an exclusive lock, shared readers.
func ExampleNewCluster() {
	cluster, err := hierlock.NewCluster(3)
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	w, _ := cluster.Member(0).Lock(ctx, "config", hierlock.W)
	fmt.Println("member 0 holds", w.Mode())
	_ = w.Unlock()

	r1, _ := cluster.Member(1).Lock(ctx, "config", hierlock.R)
	r2, _ := cluster.Member(2).Lock(ctx, "config", hierlock.R)
	fmt.Println("members 1 and 2 share", r1.Mode(), r2.Mode())
	_ = r1.Unlock()
	_ = r2.Unlock()
	// Output:
	// member 0 holds W
	// members 1 and 2 share R R
}

// Hierarchical locking: intention modes on ancestors let disjoint
// fine-grained writers run concurrently.
func ExampleMember_LockPath() {
	cluster, _ := hierlock.NewCluster(3)
	defer cluster.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// IW on "fares", W on the member's own row.
			pl, err := cluster.Member(i).LockPath(ctx,
				[]string{"fares", fmt.Sprintf("row-%d", i)}, hierlock.W)
			if err != nil {
				panic(err)
			}
			defer pl.Unlock()
			// …update the row…
		}()
	}
	wg.Wait()
	fmt.Println("disjoint rows written concurrently")
	// Output: disjoint rows written concurrently
}

// Upgrade locks: exclusive read now, atomic conversion to write later.
func ExampleLock_Upgrade() {
	cluster, _ := hierlock.NewCluster(2)
	defer cluster.Close()
	ctx := context.Background()

	l, _ := cluster.Member(1).Lock(ctx, "balance", hierlock.U)
	fmt.Println("reading under", l.Mode())
	// …compute the new value…
	if err := l.Upgrade(ctx); err != nil {
		panic(err)
	}
	fmt.Println("writing under", l.Mode())
	_ = l.Unlock()
	// Output:
	// reading under U
	// writing under W
}

// Compatibility of the five CORBA lock modes.
func ExampleCompatible() {
	fmt.Println(hierlock.Compatible(hierlock.IR, hierlock.IW))
	fmt.Println(hierlock.Compatible(hierlock.R, hierlock.U))
	fmt.Println(hierlock.Compatible(hierlock.U, hierlock.U))
	fmt.Println(hierlock.Compatible(hierlock.R, hierlock.W))
	// Output:
	// true
	// true
	// false
	// false
}
