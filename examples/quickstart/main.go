// Quickstart: an in-process hierlock cluster, shared readers, an
// exclusive writer, and a look at the message counters.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"hierlock"
)

func main() {
	// Three members, as three workers in one process might share locks.
	// Member 0 initially holds every lock's token; the tree adapts as
	// requests flow.
	cluster, err := hierlock.NewCluster(3)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	// Readers share: both R locks are held at the same time.
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			l, err := cluster.Member(i).Lock(ctx, "config", hierlock.R)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("member %d holds %v on %q\n", i, l.Mode(), l.Resource())
			if err := l.Unlock(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()

	// A writer excludes everyone.
	w, err := cluster.Member(0).Lock(ctx, "config", hierlock.W)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("member 0 holds %v on %q — exclusive\n", w.Mode(), w.Resource())
	if err := w.Unlock(); err != nil {
		log.Fatal(err)
	}

	// Hierarchical locking: intent mode on the container, real mode on
	// the item — writers of different items proceed concurrently.
	pl, err := cluster.Member(1).LockPath(ctx, []string{"jobs", "job-42"}, hierlock.W)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("member 1 holds the path jobs(IW) → jobs/job-42(W)\n")
	if err := pl.Unlock(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nprotocol messages sent by member 1:")
	for kind, n := range cluster.Member(1).MessagesSent() {
		fmt.Printf("  %-8s %d\n", kind, n)
	}
}
