// Airline reservations: the paper's motivating workload on the public
// API. Several airline front ends share a fare table; bookings take IW on
// the table plus W on one row (so disjoint bookings run concurrently),
// audits take R on the whole table (excluding bookings but sharing with
// browsers), and a nightly repricing takes U and upgrades to W.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hierlock"
)

const (
	frontEnds = 5
	routes    = 8
)

func main() {
	cluster, err := hierlock.NewCluster(frontEnds)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()

	seats := make([]atomic.Int64, routes) // seats sold per route
	var booked, audits, reprices atomic.Int64

	var wg sync.WaitGroup
	for fe := 0; fe < frontEnds; fe++ {
		fe := fe
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(fe) + 1))
			m := cluster.Member(fe)
			for ctx.Err() == nil {
				switch rng.Intn(10) {
				case 0: // audit: consistent read of the whole table
					l, err := m.Lock(ctx, "fares", hierlock.R)
					if err != nil {
						return
					}
					var total int64
					for r := range seats {
						total += seats[r].Load()
					}
					audits.Add(1)
					_ = l.Unlock()
				case 1: // nightly repricing: U read, then upgrade and rewrite
					l, err := m.Lock(ctx, "fares", hierlock.U)
					if err != nil {
						return
					}
					if err := l.Upgrade(ctx); err != nil {
						_ = l.Unlock()
						return
					}
					reprices.Add(1)
					_ = l.Unlock()
				default: // book a seat on one route
					route := rng.Intn(routes)
					pl, err := m.LockPath(ctx,
						[]string{"fares", fmt.Sprintf("route-%d", route)}, hierlock.W)
					if err != nil {
						return
					}
					seats[route].Add(1)
					booked.Add(1)
					_ = pl.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if err := cluster.Err(); err != nil {
		log.Fatalf("protocol error: %v", err)
	}

	fmt.Printf("bookings: %d, audits: %d, reprices: %d\n", booked.Load(), audits.Load(), reprices.Load())
	var total int64
	for r := range seats {
		n := seats[r].Load()
		total += n
		fmt.Printf("  route-%d: %3d seats\n", r, n)
	}
	if total != booked.Load() {
		log.Fatalf("inconsistency: %d seats vs %d bookings", total, booked.Load())
	}
	fmt.Println("all bookings accounted for — disjoint routes were written concurrently under IW")
}
