// TCP cluster: three hierlock members communicating over real TCP
// sockets (loopback here; spread the addresses across hosts for a real
// deployment, or run cmd/lockd for a standalone daemon).
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"hierlock"
)

func main() {
	// In a real deployment these addresses come from configuration and
	// every member runs in its own process; here we grab three loopback
	// ports and run all members in one binary.
	addrs := map[int]string{
		0: "127.0.0.1:7411",
		1: "127.0.0.1:7412",
		2: "127.0.0.1:7413",
	}
	members := make([]*hierlock.Member, len(addrs))
	for id := range addrs {
		peers := make(map[int]string)
		for p, a := range addrs {
			if p != id {
				peers[p] = a
			}
		}
		m, err := hierlock.NewTCPMember(hierlock.TCPMemberConfig{
			ID:         id,
			ListenAddr: addrs[id],
			Peers:      peers,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		members[id] = m
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Every member appends to a shared log under a W lock: strict mutual
	// exclusion across TCP.
	var mu sync.Mutex
	var journal []string
	var wg sync.WaitGroup
	for id, m := range members {
		id, m := id, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				l, err := m.Lock(ctx, "journal", hierlock.W)
				if err != nil {
					log.Fatalf("member %d: %v", id, err)
				}
				mu.Lock()
				journal = append(journal, fmt.Sprintf("entry %d by member %d", len(journal), id))
				mu.Unlock()
				if err := l.Unlock(); err != nil {
					log.Fatalf("member %d: %v", id, err)
				}
			}
		}()
	}
	wg.Wait()

	for _, line := range journal {
		fmt.Println(line)
	}
	fmt.Printf("%d journal entries written under one distributed W lock over TCP\n", len(journal))
}
