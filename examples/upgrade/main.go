// Upgrade locks: read-then-write without deadlock.
//
// Two transactions that both read a balance and then write it back would
// deadlock with plain R→W locking (each holds R, each waits for the
// other's release to get W). The CORBA U mode is an exclusive read: only
// one U holder exists at a time, and it upgrades to W atomically (Rule 7
// of the paper), so the pattern is safe.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"hierlock"
)

func main() {
	cluster, err := hierlock.NewCluster(3)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	balance := 100
	var mu sync.Mutex // local memory safety; hierlock orders the accesses

	withdraw := func(member, amount int) {
		// U: exclusive read — a second U waits right here instead of
		// deadlocking later.
		l, err := cluster.Member(member).Lock(ctx, "account", hierlock.U)
		if err != nil {
			log.Fatal(err)
		}
		mu.Lock()
		current := balance
		mu.Unlock()
		fmt.Printf("member %d read balance %d under U\n", member, current)
		time.Sleep(10 * time.Millisecond) // "thinking"

		// Upgrade to W: waits for plain readers to drain, then converts
		// atomically — no other U can have slipped in.
		if err := l.Upgrade(ctx); err != nil {
			log.Fatal(err)
		}
		mu.Lock()
		balance = current - amount
		mu.Unlock()
		fmt.Printf("member %d wrote balance %d under %v\n", member, current-amount, l.Mode())
		if err := l.Unlock(); err != nil {
			log.Fatal(err)
		}
	}

	// Concurrent plain readers are fine alongside a U holder.
	r, err := cluster.Member(0).Lock(ctx, "account", hierlock.R)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		fmt.Println("reader done, releasing R")
		_ = r.Unlock()
	}()

	var wg sync.WaitGroup
	for m, amt := range map[int]int{1: 30, 2: 20} {
		m, amt := m, amt
		wg.Add(1)
		go func() {
			defer wg.Done()
			withdraw(m, amt)
		}()
	}
	wg.Wait()

	fmt.Printf("final balance: %d (both withdrawals applied, no deadlock)\n", balance)
	if balance != 50 {
		log.Fatalf("lost update! balance = %d, want 50", balance)
	}
}
