// Priority arbitration: an urgent maintenance operation jumps a queue of
// routine writers (strict priority ordering at the lock's token queue,
// FIFO within each priority level).
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"hierlock"
)

func main() {
	cluster, err := hierlock.NewCluster(6)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()

	// Member 0 holds the lock while the others line up.
	holder, err := cluster.Member(0).Lock(ctx, "catalog", hierlock.W)
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup

	routine := func(member int) {
		defer wg.Done()
		l, err := cluster.Member(member).Lock(ctx, "catalog", hierlock.W)
		if err != nil {
			log.Fatal(err)
		}
		mu.Lock()
		order = append(order, fmt.Sprintf("routine-%d", member))
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		_ = l.Unlock()
	}
	urgent := func(member int) {
		defer wg.Done()
		l, err := cluster.Member(member).LockWithPriority(ctx, "catalog", hierlock.W, 9)
		if err != nil {
			log.Fatal(err)
		}
		mu.Lock()
		order = append(order, fmt.Sprintf("URGENT-%d", member))
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		_ = l.Unlock()
	}

	// Routine writers queue first…
	for m := 1; m <= 3; m++ {
		wg.Add(1)
		go routine(m)
	}
	time.Sleep(300 * time.Millisecond) // let them reach the queue
	// …then the urgent one arrives last.
	wg.Add(1)
	go urgent(4)
	time.Sleep(300 * time.Millisecond)

	_ = holder.Unlock()
	wg.Wait()

	fmt.Println("service order:", order)
	if order[0] != "URGENT-4" {
		log.Fatal("the urgent operation should have been served first")
	}
	fmt.Println("the urgent writer overtook the routine queue")
}
