package hierlock_test

import (
	"context"
	"testing"
	"time"

	"hierlock"
)

func TestFenceTokenOrdering(t *testing.T) {
	cases := []struct {
		a, b hierlock.FenceToken
		less bool
	}{
		{hierlock.FenceToken{}, hierlock.FenceToken{Seq: 1}, true},
		{hierlock.FenceToken{Seq: 5}, hierlock.FenceToken{Seq: 5}, false},
		{hierlock.FenceToken{Seq: 9}, hierlock.FenceToken{Epoch: 1}, true},
		{hierlock.FenceToken{Epoch: 1, Seq: 9}, hierlock.FenceToken{Epoch: 1, Seq: 10}, true},
		{hierlock.FenceToken{Epoch: 2}, hierlock.FenceToken{Epoch: 1, Seq: 99}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%s < %s = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	tok := hierlock.FenceToken{Epoch: 3, Seq: 41}
	if tok.String() != "3.41" {
		t.Errorf("String() = %q", tok.String())
	}
	back, err := hierlock.ParseFence("3.41")
	if err != nil || back != tok {
		t.Errorf("ParseFence round-trip: %v %v", back, err)
	}
	for _, bad := range []string{"", "3", "3.", ".41", "a.b", "3.41.5"} {
		if _, err := hierlock.ParseFence(bad); err == nil {
			t.Errorf("ParseFence(%q) accepted", bad)
		}
	}
	if !(hierlock.FenceToken{}).IsZero() || tok.IsZero() {
		t.Error("IsZero misclassifies")
	}
}

// TestFenceMonotonicAcrossGrants: along one exclusive hold chain the
// member mints strictly increasing fences, and Refence (the session
// tier's hand-off stamp) keeps advancing them for the same holder.
func TestFenceMonotonicAcrossGrants(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var last hierlock.FenceToken
	for i := 0; i < 4; i++ {
		m := cl.Member(i % 2)
		l, err := m.Lock(ctx, "chain", hierlock.W)
		if err != nil {
			t.Fatal(err)
		}
		f := l.Fence()
		if !last.Less(f) {
			t.Fatalf("grant %d fence %s not above %s", i, f, last)
		}
		rf, err := l.Refence()
		if err != nil {
			t.Fatal(err)
		}
		if !f.Less(rf) {
			t.Fatalf("refence %s not above grant fence %s", rf, f)
		}
		last = rf
		if err := l.Unlock(); err != nil {
			t.Fatal(err)
		}
	}
	// After release, Refence must refuse: the handle cannot be
	// re-stamped into a valid fence for a hold it no longer has.
	l, err := cl.Member(0).Lock(ctx, "chain", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Unlock(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Refence(); err == nil {
		t.Fatal("Refence succeeded on a released handle")
	}
}

// TestFenceAdvancesAcrossRecovery: crash recovery bumps the lock's
// epoch, so a post-recovery holder's fence dominates any token the
// pre-crash holder could ever have minted — the property a storage
// system relies on to reject the dead holder's writes.
func TestFenceAdvancesAcrossRecovery(t *testing.T) {
	members := newRecoveryTCPCluster(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	l2, err := members[2].Lock(ctx, "fenced-res", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	before := l2.Fence()
	if before.IsZero() {
		t.Fatal("grant carried a zero fence")
	}
	// Member 2 crashes holding W; recovery regenerates the token with a
	// bumped epoch.
	if err := members[2].Close(); err != nil {
		t.Fatal(err)
	}
	l0, err := members[0].Lock(ctx, "fenced-res", hierlock.W)
	if err != nil {
		t.Fatalf("post-recovery acquire: %v", err)
	}
	after := l0.Fence()
	if !before.Less(after) {
		t.Fatalf("post-recovery fence %s does not dominate pre-crash %s", after, before)
	}
	if after.Epoch <= before.Epoch {
		t.Fatalf("recovery did not bump the fence epoch: %s -> %s", before, after)
	}
	if err := l0.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := members[0].Err(); err != nil {
		t.Fatal(err)
	}
}
