package hierlock

import (
	"fmt"
	"strconv"
	"strings"
)

// FenceToken is the monotonically increasing token minted with every
// grant, upgrade and hand-off. Clients attach it to the side effects
// they perform under the lock so downstream systems can reject writes
// from a stale holder (one whose lock was reaped or demolished by
// recovery after the token was issued).
//
// Ordering: tokens compare lexicographically as (Epoch, Seq). Within a
// recovery epoch, Seq is a Lamport-clock tick taken at grant time under
// the granting member's lock state; because the clock is carried on
// every protocol message, any two grants of conflicting modes are
// causally ordered and their Seq values strictly increase along the
// chain of exclusive holders. Across recovery rounds the epoch strictly
// increases, so a grant issued before a crash is always smaller than
// any grant issued after the lock was regenerated — even though the
// regenerated engine cannot see the pre-crash clock.
type FenceToken struct {
	// Epoch is the lock's recovery epoch at grant time (0 until the
	// first regeneration round touches the lock).
	Epoch uint32
	// Seq is the granting member's Lamport tick at grant time.
	Seq uint64
}

// IsZero reports whether f is the zero token (never minted by a grant:
// the first tick of any member clock is 1).
func (f FenceToken) IsZero() bool { return f.Epoch == 0 && f.Seq == 0 }

// Less orders tokens lexicographically by (Epoch, Seq).
func (f FenceToken) Less(g FenceToken) bool {
	if f.Epoch != g.Epoch {
		return f.Epoch < g.Epoch
	}
	return f.Seq < g.Seq
}

// String renders the token in the wire form "<epoch>.<seq>".
func (f FenceToken) String() string {
	return strconv.FormatUint(uint64(f.Epoch), 10) + "." +
		strconv.FormatUint(f.Seq, 10)
}

// ParseFence parses the wire form produced by String.
func ParseFence(s string) (FenceToken, error) {
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		return FenceToken{}, fmt.Errorf("hierlock: fence %q: want <epoch>.<seq>", s)
	}
	epoch, err := strconv.ParseUint(s[:dot], 10, 32)
	if err != nil {
		return FenceToken{}, fmt.Errorf("hierlock: fence %q: bad epoch: %w", s, err)
	}
	seq, err := strconv.ParseUint(s[dot+1:], 10, 64)
	if err != nil {
		return FenceToken{}, fmt.Errorf("hierlock: fence %q: bad seq: %w", s, err)
	}
	return FenceToken{Epoch: uint32(epoch), Seq: seq}, nil
}
