package hierlock

import (
	"fmt"
	"time"

	"hierlock/internal/proto"
	"hierlock/internal/transport"
)

// Cluster is an in-process deployment of n members communicating over an
// in-memory transport. It is the easiest way to embed hierarchical
// locking in a single program (one member per shard/worker) and the
// backbone of the examples and tests.
type Cluster struct {
	net     *transport.ChanNetwork
	members []*Member
}

// NewCluster creates n members (IDs 0..n-1). Member 0 initially holds
// every lock's token; the tree adapts from there.
func NewCluster(n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hierlock: cluster size must be positive, got %d", n)
	}
	c := &Cluster{net: transport.NewChanNetwork()}
	for i := 0; i < n; i++ {
		m, err := newMember(proto.NodeID(i), 0, c.net.Node(proto.NodeID(i)))
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		c.members = append(c.members, m)
	}
	return c, nil
}

// Size returns the number of members.
func (c *Cluster) Size() int { return len(c.members) }

// Member returns the i-th member.
func (c *Cluster) Member(i int) *Member { return c.members[i] }

// Close shuts down every member and the network.
func (c *Cluster) Close() error {
	for _, m := range c.members {
		_ = m.Close()
	}
	return c.net.Close()
}

// Err returns the first internal error observed by any member, if any.
func (c *Cluster) Err() error {
	for _, m := range c.members {
		if err := m.Err(); err != nil {
			return err
		}
	}
	return nil
}

// TCPMemberConfig configures a member of a TCP cluster.
type TCPMemberConfig struct {
	// ID is this node's identifier (dense small integers).
	ID int
	// Root is the node that initially holds every token (default 0). All
	// members of one cluster must agree.
	Root int
	// ListenAddr is this node's accept address, e.g. ":7420".
	ListenAddr string
	// Peers maps every other member ID to its listen address.
	Peers map[int]string
	// DialTimeout bounds connection attempts (default 5s).
	DialTimeout time.Duration
}

// NewTCPMember creates and starts a member that communicates over TCP.
// The returned member is ready once its peers are reachable; requests
// issued earlier are queued by the transport.
func NewTCPMember(cfg TCPMemberConfig) (*Member, error) {
	if cfg.ID < 0 {
		return nil, fmt.Errorf("hierlock: invalid member id %d", cfg.ID)
	}
	peers := make(map[proto.NodeID]string, len(cfg.Peers))
	for id, addr := range cfg.Peers {
		peers[proto.NodeID(id)] = addr
	}
	tr, err := transport.NewTCP(transport.TCPConfig{
		Self:        proto.NodeID(cfg.ID),
		ListenAddr:  cfg.ListenAddr,
		Peers:       peers,
		DialTimeout: cfg.DialTimeout,
	})
	if err != nil {
		return nil, err
	}
	m, err := newMember(proto.NodeID(cfg.ID), proto.NodeID(cfg.Root), tr)
	if err != nil {
		_ = tr.Close()
		return nil, err
	}
	return m, nil
}

// TCPAddr returns the actual listen address of a member created with
// NewTCPMember (useful with ":0" listeners); empty for in-process
// members.
func (m *Member) TCPAddr() string {
	if t, ok := m.tr.(*transport.TCPTransport); ok {
		return t.Addr()
	}
	return ""
}
