package hierlock

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"hierlock/internal/journal"
	"hierlock/internal/proto"
	"hierlock/internal/transport"
)

// Cluster is an in-process deployment of n members communicating over an
// in-memory transport. It is the easiest way to embed hierarchical
// locking in a single program (one member per shard/worker) and the
// backbone of the examples and tests.
type Cluster struct {
	net     *transport.ChanNetwork
	members []*Member
}

// NewCluster creates n members (IDs 0..n-1). Member 0 initially holds
// every lock's token; the tree adapts from there.
func NewCluster(n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hierlock: cluster size must be positive, got %d", n)
	}
	c := &Cluster{net: transport.NewChanNetwork()}
	for i := 0; i < n; i++ {
		m, err := newMember(proto.NodeID(i), 0, c.net.Node(proto.NodeID(i)), nil, nil)
		if err != nil {
			_ = c.Close()
			return nil, err
		}
		c.members = append(c.members, m)
	}
	return c, nil
}

// Size returns the number of members.
func (c *Cluster) Size() int { return len(c.members) }

// Member returns the i-th member.
func (c *Cluster) Member(i int) *Member { return c.members[i] }

// Close shuts down every member and the network.
func (c *Cluster) Close() error {
	for _, m := range c.members {
		_ = m.Close()
	}
	return c.net.Close()
}

// Err returns the first internal error observed by any member, if any.
func (c *Cluster) Err() error {
	for _, m := range c.members {
		if err := m.Err(); err != nil {
			return err
		}
	}
	return nil
}

// TCPMemberConfig configures a member of a TCP cluster.
type TCPMemberConfig struct {
	// ID is this node's identifier (dense small integers).
	ID int
	// Root is the node that initially holds every token (default 0). All
	// members of one cluster must agree.
	Root int
	// ListenAddr is this node's accept address, e.g. ":7420".
	ListenAddr string
	// AdvertiseAddr is the address other members should dial to reach
	// this one, carried in JOIN announcements (default: the listener's
	// actual address, which is wrong behind NAT or with a ":0" listener
	// on a multi-homed host — set it explicitly there). Only meaningful
	// with HeartbeatInterval (runtime membership rides recovery).
	AdvertiseAddr string
	// Peers maps every other member ID to its listen address. A member
	// that will Join a running cluster starts with an empty map and
	// learns the peer set from the seed's JoinAck.
	Peers map[int]string
	// DialTimeout bounds connection attempts (default 5s).
	DialTimeout time.Duration
	// RedialBackoff is the initial wait before reconnecting to an
	// unreachable peer; consecutive failures back off exponentially (with
	// jitter) up to RedialBackoffMax. Defaults: 100ms and 5s.
	RedialBackoff    time.Duration
	RedialBackoffMax time.Duration
	// DownAfter is the number of consecutive connection failures after
	// which a peer is reported down (default 3).
	DownAfter int
	// QueueLimit bounds each per-peer outbound queue and the inbound
	// delivery queue; 0 means unbounded. At the limit, sends fail rather
	// than buffering without bound.
	QueueLimit int
	// Reliable enables the transport's ack/retransmit link layer so a TCP
	// connection reset cannot silently lose or duplicate a protocol
	// message. All members of one cluster must agree on this setting.
	Reliable bool
	// OnPeerState, when non-nil, is called from transport goroutines each
	// time a peer's health changes ("up", "degraded", "down"). It must not
	// block.
	OnPeerState func(peer int, state string)

	// HeartbeatInterval enables the failure detector and the crash-
	// recovery runtime: the member heartbeats every peer at this interval,
	// confirms a silent peer dead after ConfirmAfter, and then runs an
	// epoch-stamped token-regeneration round with the survivors so locks
	// whose token (or queued requests) died with the peer become usable
	// again. Zero disables recovery: a dead token holder then hangs its
	// lock forever, the pre-recovery behavior. All members of one cluster
	// should agree on this setting.
	HeartbeatInterval time.Duration
	// SuspectAfter and ConfirmAfter tune the detector (defaults 4× and 8×
	// HeartbeatInterval). ConfirmAfter must comfortably exceed the worst
	// expected stall of a healthy peer — GC pause, scheduling hiccup,
	// transient partition: a false confirmation fences a live node out of
	// the new epoch and its holds surface as ErrLockLost.
	SuspectAfter time.Duration
	ConfirmAfter time.Duration
	// ProbeTimeout is the regenerator's re-probe interval for survivors
	// that have not answered during a recovery round (default 1s).
	ProbeTimeout time.Duration
	// RecoveryTimeout, when set, bounds every blocking Lock/Upgrade call:
	// an operation with no grant within it is abandoned and fails with
	// ErrLockLost. It is the client-side backstop for requests recovery
	// cannot regenerate (see docs/OPERATIONS.md) and must comfortably
	// exceed the worst legitimate wait for a contended lock. Zero
	// disables the bound.
	RecoveryTimeout time.Duration
	// RecoveryQuorum gates regeneration-round commits on fenced
	// participants: 0 (the default) requires a majority of the
	// configured cluster, a positive value sets an explicit threshold,
	// and -1 disables the gate (a round commits once every survivor the
	// detector still trusts has claimed — the pre-quorum behavior, which
	// lets a minority partition mint a competing token). Only meaningful
	// with HeartbeatInterval set. See docs/PROTOCOL.md for the
	// availability tradeoff.
	RecoveryQuorum int

	// DataDir, when set, makes the member durable: a write-ahead journal
	// of every externally-visible lock transition lives under
	// DataDir/member-<ID>, is replayed on restart, and is reconciled
	// with the cluster through a cold-start recovery round (requires
	// HeartbeatInterval; without it the replayed state is still used to
	// seed engines but never reconciled). Empty disables persistence,
	// the pre-journal behavior.
	DataDir string
	// FsyncPolicy selects when journal appends reach stable storage:
	// FsyncBatched (default) amortizes one fsync over the transport's
	// write-coalescing cadence, FsyncAlways syncs inline on the grant
	// path, FsyncNever leaves flushing to the OS. See docs/OPERATIONS.md
	// for the durability windows each policy leaves open.
	FsyncPolicy FsyncPolicy
	// SnapshotEvery compacts the journal after this many WAL records
	// (default 4096; negative disables snapshots).
	SnapshotEvery int
}

// FsyncPolicy selects a journal durability level; see the journal
// package for exact semantics.
type FsyncPolicy int

// Fsync policies for TCPMemberConfig.FsyncPolicy.
const (
	// FsyncBatched groups fsyncs on the write-coalescing cadence.
	FsyncBatched FsyncPolicy = FsyncPolicy(journal.FsyncBatched)
	// FsyncAlways syncs inline on every journal append.
	FsyncAlways FsyncPolicy = FsyncPolicy(journal.FsyncAlways)
	// FsyncNever never syncs explicitly.
	FsyncNever FsyncPolicy = FsyncPolicy(journal.FsyncNever)
)

// ParseFsyncPolicy parses "batched", "always" or "never" (the lockd
// -fsync flag values) into a FsyncPolicy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	p, err := journal.ParsePolicy(s)
	return FsyncPolicy(p), err
}

// NewTCPMember creates and starts a member that communicates over TCP.
// The returned member is ready once its peers are reachable; requests
// issued earlier are queued by the transport.
func NewTCPMember(cfg TCPMemberConfig) (*Member, error) {
	if cfg.ID < 0 {
		return nil, fmt.Errorf("hierlock: invalid member id %d", cfg.ID)
	}
	peers := make(map[proto.NodeID]string, len(cfg.Peers))
	for id, addr := range cfg.Peers {
		peers[proto.NodeID(id)] = addr
	}
	tcfg := transport.TCPConfig{
		Self:             proto.NodeID(cfg.ID),
		ListenAddr:       cfg.ListenAddr,
		Peers:            peers,
		DialTimeout:      cfg.DialTimeout,
		RedialBackoff:    cfg.RedialBackoff,
		RedialBackoffMax: cfg.RedialBackoffMax,
		DownAfter:        cfg.DownAfter,
		QueueLimit:       cfg.QueueLimit,
		Reliable:         cfg.Reliable,
	}
	if cb := cfg.OnPeerState; cb != nil {
		tcfg.OnPeerState = func(peer proto.NodeID, s transport.PeerState) {
			cb(int(peer), s.String())
		}
	}
	var rec *memberRecovery
	var mref atomic.Pointer[Member]
	if cfg.HeartbeatInterval > 0 {
		tcfg.HeartbeatInterval = cfg.HeartbeatInterval
		tcfg.SuspectAfter = cfg.SuspectAfter
		tcfg.ConfirmAfter = cfg.ConfirmAfter
		// The detector callbacks fire on transport goroutines, possibly
		// before NewTCPMember returns; they resolve the member through an
		// atomic late-bound reference and re-enter it asynchronously. The
		// fresh goroutines impose no ordering — peerConfirmed/peerAlive
		// re-check the detector's current state before acting, so a
		// callback overtaken by a newer transition becomes a no-op.
		tcfg.OnPeerConfirmed = func(peer proto.NodeID) {
			if m := mref.Load(); m != nil {
				go m.peerConfirmed(peer)
			}
		}
		tcfg.OnPeerAlive = func(peer proto.NodeID) {
			if m := mref.Load(); m != nil {
				go m.peerAlive(peer)
			}
		}
		nodes := []proto.NodeID{proto.NodeID(cfg.ID)}
		for id := range peers {
			nodes = append(nodes, id)
		}
		quorum := cfg.RecoveryQuorum
		switch {
		case quorum == 0:
			quorum = len(nodes)/2 + 1
		case quorum < 0:
			quorum = 0
		}
		rec = &memberRecovery{
			nodes:        nodes,
			probeTimeout: cfg.ProbeTimeout,
			opTimeout:    cfg.RecoveryTimeout,
			quorum:       quorum,
			quorumAuto:   cfg.RecoveryQuorum == 0,
		}
	}
	var jn *journal.Journal
	if cfg.DataDir != "" {
		var err error
		jn, err = journal.Open(
			filepath.Join(cfg.DataDir, fmt.Sprintf("member-%d", cfg.ID)),
			journal.Options{
				Fsync:         journal.Policy(cfg.FsyncPolicy),
				SnapshotEvery: cfg.SnapshotEvery,
			})
		if err != nil {
			return nil, err
		}
	}
	tr, err := transport.NewTCP(tcfg)
	if err != nil {
		if jn != nil {
			_ = jn.Close()
		}
		return nil, err
	}
	if rec != nil {
		rec.advertise = cfg.AdvertiseAddr
		if rec.advertise == "" {
			rec.advertise = tr.Addr()
		}
	}
	m, err := newMember(proto.NodeID(cfg.ID), proto.NodeID(cfg.Root), tr, rec, jn)
	if err != nil {
		_ = tr.Close()
		if jn != nil {
			_ = jn.Close()
		}
		return nil, err
	}
	mref.Store(m)
	return m, nil
}

// TCPAddr returns the actual listen address of a member created with
// NewTCPMember (useful with ":0" listeners); empty for in-process
// members.
func (m *Member) TCPAddr() string {
	if t, ok := m.tr.(*transport.TCPTransport); ok {
		return t.Addr()
	}
	return ""
}

// PeerHealth describes the transport's view of one peer link.
type PeerHealth struct {
	// State is "up", "degraded" or "down".
	State string
	// QueueLen, QueueHighWater and QueueFullDrops describe the outbound
	// queue to this peer (current occupancy, worst occupancy, sends
	// rejected at the configured limit).
	QueueLen       uint64
	QueueHighWater uint64
	QueueFullDrops uint64
}

// PeerHealth reports per-peer link health for a TCP member. Peers this
// member has never sent to are absent; in-process members return an
// empty map.
func (m *Member) PeerHealth() map[int]PeerHealth {
	out := make(map[int]PeerHealth)
	t, ok := m.tr.(*transport.TCPTransport)
	if !ok {
		return out
	}
	queues := t.QueueStats()
	for id, state := range t.Health() {
		h := PeerHealth{State: state.String()}
		if q, ok := queues[id]; ok {
			h.QueueLen = q.Len
			h.QueueHighWater = q.HighWater
			h.QueueFullDrops = q.FullDrops
		}
		out[int(id)] = h
	}
	return out
}

// LinkCounters aggregates transport resilience counters for a TCP
// member: reconnection attempts, reliable-mode retransmissions, and
// duplicate frames suppressed at the receiver.
type LinkCounters struct {
	Redials        uint64
	Retransmits    uint64
	DupsSuppressed uint64
}

// LinkCounters returns the member's transport resilience counters
// (zeros for in-process members).
func (m *Member) LinkCounters() LinkCounters {
	t, ok := m.tr.(*transport.TCPTransport)
	if !ok {
		return LinkCounters{}
	}
	ls := t.LinkStats()
	return LinkCounters{
		Redials:        ls.Redials,
		Retransmits:    ls.Retransmits,
		DupsSuppressed: ls.DupsSuppressed,
	}
}
