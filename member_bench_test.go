package hierlock_test

// Benchmarks for the member runtime's client hot path. The contended
// multi-lock benchmarks are the regression guard for the sharded member
// state: goroutines hammering *distinct* resources on one member must
// scale with cores instead of serializing on member-global state.

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"hierlock"
)

// BenchmarkMemberMultiLockContended drives P parallel goroutines, each
// acquiring and releasing its own private resource on the same member
// (member 0 of a single-node cluster, so every acquisition is a local
// token-node grant with no protocol traffic). With per-lock sharded
// member state these operations are independent; any member-global
// serialization shows up directly as lost throughput.
func BenchmarkMemberMultiLockContended(b *testing.B) {
	for _, par := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines-%d", par), func(b *testing.B) {
			c, err := hierlock.NewCluster(1)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			m := c.Member(0)
			ctx := context.Background()
			var next atomic.Int64
			b.SetParallelism(par)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				res := fmt.Sprintf("res-%d", next.Add(1))
				for pb.Next() {
					l, err := m.Lock(ctx, res, hierlock.W)
					if err != nil {
						b.Fatal(err)
					}
					if err := l.Unlock(); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkMemberMultiLockSpread is the same workload spread over a
// shared pool of resources larger than the shard count, so successive
// operations from one goroutine touch different shards.
func BenchmarkMemberMultiLockSpread(b *testing.B) {
	const resources = 256
	c, err := hierlock.NewCluster(1)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	m := c.Member(0)
	ctx := context.Background()
	names := make([]string, resources)
	for i := range names {
		names[i] = fmt.Sprintf("spread-%d", i)
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)) * 31
		for pb.Next() {
			res := names[i%resources]
			i++
			l, err := m.Lock(ctx, res, hierlock.W)
			if err != nil {
				b.Fatal(err)
			}
			if err := l.Unlock(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMemberJournaledGrant measures the durable grant path: a
// single TCP member with a write-ahead journal under the default
// batched fsync policy, Lock/Unlock on one resource. The benchcompare
// gate holds this within 10% of the PR-5 (journal-less) grant path —
// the point of batching fsyncs on the coalescing cadence.
func BenchmarkMemberJournaledGrant(b *testing.B) {
	m, err := hierlock.NewTCPMember(hierlock.TCPMemberConfig{
		ID:         0,
		ListenAddr: "127.0.0.1:0",
		DataDir:    b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := m.Lock(ctx, "journal-bench", hierlock.W)
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Unlock(); err != nil {
			b.Fatal(err)
		}
	}
}
