package hierlock

import (
	"testing"
	"time"

	"hierlock/internal/proto"
	"hierlock/internal/recovery"
)

// newDetectorPair boots a two-member loopback TCP cluster with the
// failure detector enabled (aggressive timings for test speed).
func newDetectorPair(t *testing.T) [2]*Member {
	t.Helper()
	var addrs [2]string
	var boot [2]*Member
	for i := 0; i < 2; i++ {
		m, err := NewTCPMember(TCPMemberConfig{ID: i, ListenAddr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		boot[i] = m
		addrs[i] = m.TCPAddr()
	}
	for _, m := range boot {
		_ = m.Close()
	}
	var members [2]*Member
	for i := 0; i < 2; i++ {
		m, err := NewTCPMember(TCPMemberConfig{
			ID:                i,
			ListenAddr:        addrs[i],
			Peers:             map[int]string{1 - i: addrs[1-i]},
			RedialBackoff:     20 * time.Millisecond,
			HeartbeatInterval: 25 * time.Millisecond,
			SuspectAfter:      250 * time.Millisecond,
			ConfirmAfter:      time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
	}
	t.Cleanup(func() {
		for _, m := range members {
			_ = m.Close()
		}
	})
	return members
}

// peerDead reads the recovery manager's dead mark under its mutex.
func peerDead(m *Member, peer int) bool {
	m.mgrMu.Lock()
	defer m.mgrMu.Unlock()
	return m.mgr.Dead(proto.NodeID(peer))
}

// TestStaleDetectorCallbacksDropped guards the ordering gate in
// peerConfirmed/peerAlive: detector callbacks are dispatched on fresh
// goroutines, so a peer flapping at the confirm boundary can have its
// Alive processed before its ConfirmDead — without the gate that
// permanently marks a live peer dead (no further edge ever clears it).
// Both handlers re-check the detector's current state and drop
// callbacks it has moved past; this test injects the stale callbacks
// directly.
func TestStaleDetectorCallbacksDropped(t *testing.T) {
	members := newDetectorPair(t)
	m0 := members[0]

	// Peer 1 is alive and heartbeating: a confirm callback that was
	// overtaken by the peer's recovery must be a no-op.
	m0.peerConfirmed(proto.NodeID(1))
	if peerDead(m0, 1) {
		t.Fatal("stale confirm marked a live peer dead")
	}

	// Crash peer 1: the genuine confirm edge marks it dead.
	if err := members[1].Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for !peerDead(m0, 1) {
		if time.Now().After(deadline) {
			t.Fatal("detector never confirmed the crashed peer")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// An alive callback from before the (re-)confirmation must not
	// resurrect the peer while the detector still counts it dead.
	m0.peerAlive(proto.NodeID(1))
	if !peerDead(m0, 1) {
		t.Fatal("stale alive cleared a confirmed-dead peer")
	}

	if st, ok := m0.detectorState(proto.NodeID(1)); !ok || st != recovery.PeerConfirmed {
		t.Fatalf("detector state = %v, %v, want confirmed", st, ok)
	}
}
