// Package sim is a deterministic discrete-event simulator used to emulate
// the paper's 120-node cluster on one machine. Virtual time advances only
// when events fire, so a two-minute experiment over 150 ms links completes
// in milliseconds of wall-clock time while preserving exactly the
// quantities the paper reports: message counts and latencies measured as
// multiples of the mean point-to-point latency.
//
// The simulator is single-threaded: event callbacks run sequentially in
// timestamp order (ties broken by scheduling order), so simulated nodes
// need no synchronization. Randomness comes from seeded streams, making
// every run reproducible.
package sim

import (
	"container/heap"
	"math"
	"math/rand"
	"time"
)

// Sim is a discrete-event scheduler. Create with New.
type Sim struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	nfired  uint64
	daemons int
	master  *rand.Rand
}

// New creates a simulator whose random streams derive from seed.
func New(seed int64) *Sim {
	return &Sim{master: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Fired returns the number of events processed so far.
func (s *Sim) Fired() uint64 { return s.nfired }

// NewRand derives an independent, reproducible random stream.
func (s *Sim) NewRand() *rand.Rand {
	return rand.New(rand.NewSource(s.master.Int63()))
}

// At schedules fn to run after delay of virtual time. Negative delays are
// clamped to zero (fn runs "now", after currently queued events at the
// same instant).
func (s *Sim) At(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.events, event{at: s.now + delay, seq: s.seq, fn: fn})
}

// AtDaemon schedules fn like At but as a daemon event: it does not count
// toward Pending, so standing background hooks — a node-restart event at
// the far-future end of a permanent crash window — never stop a cluster
// from reporting quiescence. Run and Drain fire daemons normally.
func (s *Sim) AtDaemon(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	s.daemons++
	heap.Push(&s.events, event{at: s.now + delay, seq: s.seq, daemon: true, fn: fn})
}

// Run processes events until the queue is empty or virtual time would
// exceed `until`. It returns the number of events fired. Events scheduled
// exactly at `until` are processed.
func (s *Sim) Run(until time.Duration) uint64 {
	fired := uint64(0)
	for len(s.events) > 0 {
		next := s.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&s.events)
		if next.daemon {
			s.daemons--
		}
		s.now = next.at
		next.fn()
		fired++
		s.nfired++
	}
	if s.now < until {
		s.now = until
	}
	return fired
}

// Drain processes every remaining event regardless of time. It guards
// against runaway event cascades with a generous step limit and reports
// whether it fully quiesced.
func (s *Sim) Drain(maxEvents uint64) bool {
	for fired := uint64(0); len(s.events) > 0; fired++ {
		if fired >= maxEvents {
			return false
		}
		next := heap.Pop(&s.events).(event)
		if next.daemon {
			s.daemons--
		}
		s.now = next.at
		next.fn()
		s.nfired++
	}
	return true
}

// Pending returns the number of scheduled non-daemon events not yet
// fired (daemon events are standing hooks, not outstanding work).
func (s *Sim) Pending() int { return len(s.events) - s.daemons }

type event struct {
	at     time.Duration
	seq    uint64
	daemon bool
	fn     func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Dist is a randomized duration distribution.
type Dist func(rng *rand.Rand) time.Duration

// Exponential returns an exponential distribution with the given mean,
// truncated at 10× the mean to keep simulated tails bounded.
func Exponential(mean time.Duration) Dist {
	return func(rng *rand.Rand) time.Duration {
		d := time.Duration(rng.ExpFloat64() * float64(mean))
		if max := 10 * mean; d > max {
			d = max
		}
		return d
	}
}

// Uniform returns a uniform distribution on [lo, hi].
func Uniform(lo, hi time.Duration) Dist {
	if hi < lo {
		lo, hi = hi, lo
	}
	return func(rng *rand.Rand) time.Duration {
		return lo + time.Duration(rng.Int63n(int64(hi-lo)+1))
	}
}

// UniformAround returns a uniform distribution on [mean/2, 3·mean/2],
// the default model for the paper's "randomized with mean" parameters.
func UniformAround(mean time.Duration) Dist {
	return Uniform(mean/2, mean+mean/2)
}

// Fixed returns a degenerate distribution.
func Fixed(d time.Duration) Dist {
	return func(*rand.Rand) time.Duration { return d }
}

// MeanOf estimates the mean of a distribution by sampling (testing aid).
func MeanOf(d Dist, rng *rand.Rand, samples int) time.Duration {
	var sum float64
	for i := 0; i < samples; i++ {
		sum += float64(d(rng))
	}
	return time.Duration(math.Round(sum / float64(samples)))
}
