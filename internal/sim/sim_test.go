package sim

import (
	"math/rand"
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run(time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != time.Second {
		t.Fatalf("Now = %v, want 1s", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run(time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("ties must fire in scheduling order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	count := 0
	var step func()
	step = func() {
		count++
		if count < 5 {
			s.At(time.Millisecond, step)
		}
	}
	s.At(0, step)
	s.Run(time.Second)
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	if want := 4 * time.Millisecond; s.Now() < want {
		t.Fatalf("time did not advance: %v", s.Now())
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	s := New(1)
	fired := 0
	s.At(10*time.Millisecond, func() { fired++ })
	s.At(20*time.Millisecond, func() { fired++ })
	if n := s.Run(15 * time.Millisecond); n != 1 || fired != 1 {
		t.Fatalf("Run fired %d (cb %d), want 1", n, fired)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run(time.Second)
	if fired != 2 {
		t.Fatal("second event lost")
	}
}

func TestDrain(t *testing.T) {
	s := New(1)
	n := 0
	s.At(time.Hour, func() { n++ })
	s.At(2*time.Hour, func() { n++ })
	if !s.Drain(100) || n != 2 {
		t.Fatalf("drain: n=%d", n)
	}
	// Runaway cascade is caught by the budget.
	var loop func()
	loop = func() { s.At(time.Millisecond, loop) }
	s.At(0, loop)
	if s.Drain(50) {
		t.Fatal("runaway cascade should exhaust the budget")
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1)
	s.Run(time.Millisecond)
	ran := false
	s.At(-time.Second, func() { ran = true })
	s.Run(2 * time.Millisecond)
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		rng := s.NewRand()
		var vals []int64
		for i := 0; i < 5; i++ {
			vals = append(vals, rng.Int63())
		}
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same streams")
		}
	}
}

func TestDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mean := 150 * time.Millisecond

	m := MeanOf(Exponential(mean), rng, 20000)
	if m < mean*8/10 || m > mean*12/10 {
		t.Errorf("Exponential mean = %v, want ≈%v", m, mean)
	}
	m = MeanOf(UniformAround(mean), rng, 20000)
	if m < mean*95/100 || m > mean*105/100 {
		t.Errorf("UniformAround mean = %v, want ≈%v", m, mean)
	}
	u := Uniform(10*time.Millisecond, 20*time.Millisecond)
	for i := 0; i < 1000; i++ {
		d := u(rng)
		if d < 10*time.Millisecond || d > 20*time.Millisecond {
			t.Fatalf("Uniform out of range: %v", d)
		}
	}
	// Swapped bounds are tolerated.
	u = Uniform(20*time.Millisecond, 10*time.Millisecond)
	if d := u(rng); d < 10*time.Millisecond || d > 20*time.Millisecond {
		t.Fatalf("swapped Uniform out of range: %v", d)
	}
	if d := Fixed(time.Second)(rng); d != time.Second {
		t.Fatalf("Fixed = %v", d)
	}
	// Exponential tail truncation.
	e := Exponential(time.Millisecond)
	for i := 0; i < 100000; i++ {
		if d := e(rng); d > 10*time.Millisecond {
			t.Fatalf("exponential sample beyond truncation: %v", d)
		}
	}
}
