package sim

import (
	"math/rand"
	"time"
)

// FaultPlan describes the failures injected into a simulated network run.
// Like the latency model, every random choice derives from the simulator's
// seed, so a plan replays identically: same seed, same drops, same final
// delivery schedule.
//
// The plan models faults *below* a reliable link layer (the role TCP plus
// the transport's ack/retransmit sublayer play in a live deployment): a
// dropped frame is retransmitted after RetransmitTimeout, a duplicated
// frame is suppressed by receiver-side sequence numbers, and messages into
// a partition or a crashed node wait until the path heals. Faults therefore
// turn into extra latency and counted events, never into silent loss,
// duplication or reordering — exactly the delivery contract the protocol
// engines assume, obtained the same way a real cluster obtains it.
type FaultPlan struct {
	// DropRate is the per-transmission probability in [0, 1] that a frame
	// is lost and must be retransmitted after RetransmitTimeout.
	DropRate float64
	// DupRate is the per-message probability that the link delivers a
	// duplicate frame; the duplicate is suppressed by the receiver's
	// sequence check and only shows up in the fault counters.
	DupRate float64
	// SpikeRate is the per-message probability of an additional delay
	// spike of SpikeDelay on top of the normal latency sample.
	SpikeRate float64
	// SpikeDelay distributes the extra delay of a spike (default: fixed 1s).
	SpikeDelay Dist
	// RetransmitTimeout is the reliable-link recovery delay after a lost
	// frame and the probe interval against a partitioned or crashed
	// destination (default 200ms).
	RetransmitTimeout time.Duration
	// Partitions lists scheduled link cuts.
	Partitions []Partition
	// Crashes lists scheduled node downtime windows.
	Crashes []CrashWindow
	// LoseOnCrash switches crashes from the durable-state model (frames
	// into a crash window defer and replay on restart) to true fail-stop
	// loss: frames addressed to a node inside a crash window, frames a
	// crashed node would have sent, and frames in flight toward a node
	// when it crashes are destroyed for good and counted in the Lost
	// stats. Partitions still defer. This is the model the crash-recovery
	// subsystem is tested under: without recovery, a crashed token holder
	// wedges its locks forever.
	LoseOnCrash bool
}

// Partition cuts the link between two nodes for [Start, End) of virtual
// time. By default the cut is symmetric; OneWay cuts only A→B traffic.
type Partition struct {
	A, B   int
	OneWay bool
	Start  time.Duration
	End    time.Duration
}

// CrashWindow takes one node down for [Start, End) of virtual time. By
// default the model is fail-stop with durable state (a process freeze or
// reboot that keeps its disk): the node processes nothing while down, and
// frames addressed to it wait in the senders' retransmit buffers until
// restart. With FaultPlan.LoseOnCrash those frames are instead lost for
// good.
//
// LoseDisk distinguishes the two restart fates a real deployment has:
// false (default) models crash-with-disk — the node restarts with its
// journaled lock state (epochs, token ownership) intact, only volatile
// state (client holds, in-flight requests) lost; true models
// crash-with-disk-loss — the node comes back blank, at epoch 0, and
// must be re-fenced by the survivors' recovery rounds before it can
// participate again. Chaos tests and the auditor treat the two as
// distinct faults (see trace.OpRestart).
type CrashWindow struct {
	Node     int
	Start    time.Duration
	End      time.Duration
	LoseDisk bool
}

// Outcome reports what the fault layer did to one message.
type Outcome struct {
	// Deliver is the final delivery time.
	Deliver time.Duration
	// Drops counts transmissions lost to random drop (each one cost a
	// retransmit after RetransmitTimeout).
	Drops int
	// Duplicates counts duplicate frames generated (and suppressed by the
	// receiver's sequence check).
	Duplicates int
	// Spikes counts delay spikes applied.
	Spikes int
	// Deferrals counts waits against a partitioned link or crashed node.
	Deferrals int
	// Lost reports that the frame was destroyed for good by a crash
	// (FaultPlan.LoseOnCrash). When set, Deliver is meaningless and the
	// network must not schedule a delivery.
	Lost bool
}

// Faults is the runtime form of a FaultPlan: the plan plus the seeded
// random stream its probabilistic choices draw from. Create with
// NewFaults; use one per Network.
type Faults struct {
	plan FaultPlan
	rng  *rand.Rand
}

// NewFaults compiles a plan with its dedicated random stream (derive it
// from the simulator with Sim.NewRand for reproducibility).
func NewFaults(plan FaultPlan, rng *rand.Rand) *Faults {
	if plan.RetransmitTimeout <= 0 {
		plan.RetransmitTimeout = 200 * time.Millisecond
	}
	if plan.SpikeDelay == nil {
		plan.SpikeDelay = Fixed(time.Second)
	}
	return &Faults{plan: plan, rng: rng}
}

// Plan returns the compiled plan.
func (f *Faults) Plan() FaultPlan { return f.plan }

// DownAt reports whether node is inside a crash window at time at.
func (f *Faults) DownAt(node int, at time.Duration) bool {
	_, down := f.downUntil(node, at)
	return down
}

// RestartAt returns the end of the crash window covering node at time at
// (at itself when the node is up).
func (f *Faults) RestartAt(node int, at time.Duration) time.Duration {
	if until, down := f.downUntil(node, at); down {
		return until
	}
	return at
}

func (f *Faults) downUntil(node int, at time.Duration) (time.Duration, bool) {
	until, down := time.Duration(0), false
	for _, c := range f.plan.Crashes {
		if c.Node == node && at >= c.Start && at < c.End && c.End > until {
			until, down = c.End, true
		}
	}
	return until, down
}

// blockedUntil reports whether the from→to path is unusable at time at
// (directed partition cut or destination down) and, if so, when it heals.
func (f *Faults) blockedUntil(from, to int, at time.Duration) (time.Duration, bool) {
	until, blocked := time.Duration(0), false
	for _, p := range f.plan.Partitions {
		if at < p.Start || at >= p.End {
			continue
		}
		if (p.A == from && p.B == to) || (!p.OneWay && p.A == to && p.B == from) {
			if p.End > until {
				until, blocked = p.End, true
			}
		}
	}
	if u, down := f.downUntil(to, at); down && u > until {
		until, blocked = u, true
	}
	return until, blocked
}

// Apply runs one message through the fault model. send is the virtual send
// time and latency samples the network's per-transmission delay. Unless
// the outcome reports Lost, its Deliver is always a valid time ≥ send:
// the reliable link keeps retransmitting until the frame gets through.
func (f *Faults) Apply(from, to int, send time.Duration, latency func() time.Duration) Outcome {
	out := Outcome{}
	rto := f.plan.RetransmitTimeout
	tx := send
	// Cap the recovery loop defensively; with DropRate < 1 and finite
	// fault windows it terminates long before this.
	for i := 0; i < 10000; i++ {
		// Under LoseOnCrash a crash destroys frames instead of deferring
		// them: a crashed sender's queued output dies with it, and anything
		// addressed to a node inside its crash window is gone for good.
		if f.plan.LoseOnCrash && (f.DownAt(from, tx) || f.DownAt(to, tx)) {
			out.Lost = true
			return out
		}
		if until, blocked := f.blockedUntil(from, to, tx); blocked {
			// The sender probes every RTO; it gets through within one RTO
			// of the heal.
			out.Deferrals++
			tx = until + rto
			continue
		}
		if f.plan.DropRate > 0 && f.rng.Float64() < f.plan.DropRate {
			out.Drops++
			tx += rto
			continue
		}
		d := latency()
		if f.plan.SpikeRate > 0 && f.rng.Float64() < f.plan.SpikeRate {
			out.Spikes++
			d += f.plan.SpikeDelay(f.rng)
		}
		arrive := tx + d
		// The destination crashed while the frame was in flight: lost for
		// good under LoseOnCrash, otherwise retransmitted once the node
		// restarts.
		if until, down := f.downUntil(to, arrive); down {
			if f.plan.LoseOnCrash {
				out.Lost = true
				return out
			}
			out.Deferrals++
			tx = until + rto
			continue
		}
		if f.plan.DupRate > 0 && f.rng.Float64() < f.plan.DupRate {
			out.Duplicates++
		}
		out.Deliver = arrive
		return out
	}
	out.Deliver = tx
	return out
}
