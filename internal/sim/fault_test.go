package sim

import (
	"testing"
	"time"
)

func TestFaultsPassthroughWithEmptyPlan(t *testing.T) {
	s := New(1)
	f := NewFaults(FaultPlan{}, s.NewRand())
	lat := func() time.Duration { return 150 * time.Millisecond }
	out := f.Apply(0, 1, time.Second, lat)
	if out.Deliver != time.Second+150*time.Millisecond {
		t.Fatalf("deliver = %v", out.Deliver)
	}
	if out.Drops+out.Duplicates+out.Spikes+out.Deferrals != 0 {
		t.Fatalf("unexpected fault events: %+v", out)
	}
}

func TestFaultsDropRetransmits(t *testing.T) {
	s := New(7)
	f := NewFaults(FaultPlan{DropRate: 0.5, RetransmitTimeout: 100 * time.Millisecond}, s.NewRand())
	lat := func() time.Duration { return 10 * time.Millisecond }
	totalDrops := 0
	for i := 0; i < 1000; i++ {
		out := f.Apply(0, 1, 0, lat)
		if out.Deliver != time.Duration(out.Drops)*100*time.Millisecond+10*time.Millisecond {
			t.Fatalf("deliver %v inconsistent with %d drops", out.Deliver, out.Drops)
		}
		totalDrops += out.Drops
	}
	// With p = 0.5 the expected number of drops per message is 1.
	if totalDrops < 700 || totalDrops > 1400 {
		t.Fatalf("drops = %d over 1000 messages, want ≈1000", totalDrops)
	}
}

func TestFaultsPartitionDefers(t *testing.T) {
	s := New(3)
	plan := FaultPlan{
		RetransmitTimeout: 50 * time.Millisecond,
		Partitions: []Partition{
			{A: 0, B: 1, Start: time.Second, End: 3 * time.Second},
		},
	}
	f := NewFaults(plan, s.NewRand())
	lat := func() time.Duration { return 10 * time.Millisecond }

	// Inside the window: deferred to heal + RTO.
	out := f.Apply(0, 1, 2*time.Second, lat)
	if out.Deferrals == 0 {
		t.Fatal("expected a deferral inside the partition window")
	}
	if want := 3*time.Second + 50*time.Millisecond + 10*time.Millisecond; out.Deliver != want {
		t.Fatalf("deliver = %v, want %v", out.Deliver, want)
	}
	// Reverse direction is cut too (symmetric by default).
	if out := f.Apply(1, 0, 2*time.Second, lat); out.Deferrals == 0 {
		t.Fatal("symmetric partition must cut B→A")
	}
	// Outside the window: untouched.
	if out := f.Apply(0, 1, 4*time.Second, lat); out.Deferrals != 0 {
		t.Fatalf("deferral outside window: %+v", out)
	}
	// Unrelated link: untouched.
	if out := f.Apply(0, 2, 2*time.Second, lat); out.Deferrals != 0 {
		t.Fatalf("deferral on unrelated link: %+v", out)
	}
}

func TestFaultsOneWayPartition(t *testing.T) {
	s := New(4)
	plan := FaultPlan{
		Partitions: []Partition{
			{A: 0, B: 1, OneWay: true, Start: 0, End: time.Second},
		},
	}
	f := NewFaults(plan, s.NewRand())
	lat := func() time.Duration { return time.Millisecond }
	if out := f.Apply(0, 1, 0, lat); out.Deferrals == 0 {
		t.Fatal("A→B must be cut")
	}
	if out := f.Apply(1, 0, 0, lat); out.Deferrals != 0 {
		t.Fatal("B→A must be open on a one-way cut")
	}
}

func TestFaultsCrashWindow(t *testing.T) {
	s := New(5)
	plan := FaultPlan{
		RetransmitTimeout: 100 * time.Millisecond,
		Crashes:           []CrashWindow{{Node: 2, Start: time.Second, End: 5 * time.Second}},
	}
	f := NewFaults(plan, s.NewRand())
	lat := func() time.Duration { return 10 * time.Millisecond }

	if !f.DownAt(2, 2*time.Second) || f.DownAt(2, 6*time.Second) || f.DownAt(1, 2*time.Second) {
		t.Fatal("DownAt window wrong")
	}
	if got := f.RestartAt(2, 2*time.Second); got != 5*time.Second {
		t.Fatalf("RestartAt = %v", got)
	}
	// A frame sent to the crashed node waits out the window.
	out := f.Apply(0, 2, 2*time.Second, lat)
	if out.Deferrals == 0 || out.Deliver < 5*time.Second {
		t.Fatalf("delivery into crash window not deferred: %+v", out)
	}
	// A frame that arrives mid-crash (sent just before) is also deferred.
	out = f.Apply(0, 2, time.Second-5*time.Millisecond, lat)
	if out.Deferrals == 0 || out.Deliver < 5*time.Second {
		t.Fatalf("in-flight frame into crash window not deferred: %+v", out)
	}
}

func TestFaultsLoseOnCrash(t *testing.T) {
	s := New(6)
	plan := FaultPlan{
		LoseOnCrash:       true,
		RetransmitTimeout: 100 * time.Millisecond,
		Crashes:           []CrashWindow{{Node: 2, Start: time.Second, End: 5 * time.Second}},
		Partitions: []Partition{
			{A: 0, B: 1, Start: time.Second, End: 2 * time.Second},
		},
	}
	f := NewFaults(plan, s.NewRand())
	lat := func() time.Duration { return 10 * time.Millisecond }

	// A frame addressed to the crashed node is destroyed, not deferred.
	out := f.Apply(0, 2, 2*time.Second, lat)
	if !out.Lost || out.Deferrals != 0 {
		t.Fatalf("frame into crash window not lost: %+v", out)
	}
	// A frame in flight when the destination crashes is destroyed too.
	out = f.Apply(0, 2, time.Second-5*time.Millisecond, lat)
	if !out.Lost {
		t.Fatalf("in-flight frame into crash window not lost: %+v", out)
	}
	// Queued output of the crashed node dies with it.
	out = f.Apply(2, 0, 2*time.Second, lat)
	if !out.Lost {
		t.Fatalf("crashed sender's frame not lost: %+v", out)
	}
	// Partitions still defer and deliver.
	out = f.Apply(0, 1, 1500*time.Millisecond, lat)
	if out.Lost || out.Deferrals == 0 || out.Deliver < 2*time.Second {
		t.Fatalf("partition under LoseOnCrash: %+v", out)
	}
	// Traffic between healthy nodes outside windows is untouched.
	out = f.Apply(0, 1, 6*time.Second, lat)
	if out.Lost || out.Deferrals != 0 {
		t.Fatalf("healthy traffic affected: %+v", out)
	}
	// After the window the node is reachable again.
	out = f.Apply(0, 2, 6*time.Second, lat)
	if out.Lost {
		t.Fatalf("post-restart frame lost: %+v", out)
	}
}

func TestFaultsDeterministic(t *testing.T) {
	run := func() []Outcome {
		s := New(42)
		f := NewFaults(FaultPlan{
			DropRate:  0.1,
			DupRate:   0.05,
			SpikeRate: 0.05,
		}, s.NewRand())
		rng := s.NewRand()
		lat := func() time.Duration { return time.Duration(rng.Int63n(int64(100 * time.Millisecond))) }
		outs := make([]Outcome, 0, 500)
		for i := 0; i < 500; i++ {
			outs = append(outs, f.Apply(i%8, (i+1)%8, time.Duration(i)*time.Millisecond, lat))
		}
		return outs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at message %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
