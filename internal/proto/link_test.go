package proto

import (
	"bytes"
	"errors"
	"testing"

	"hierlock/internal/modes"
)

func TestLinkDataRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := &Message{
		Kind: KindToken, Lock: 42, From: 3, To: 9, TS: 17, Seq: 5,
		Mode: modes.W, Owned: modes.IW, Frozen: modes.MakeSet(modes.R),
		Queue: []Request{{Origin: 1, Mode: modes.R, TS: 2, Priority: 3}},
	}
	if err := WriteLinkData(&buf, 77, want); err != nil {
		t.Fatal(err)
	}
	typ, seq, got, err := ReadLinkFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != LinkData || seq != 77 {
		t.Fatalf("typ=%d seq=%d", typ, seq)
	}
	if got.Kind != want.Kind || got.Lock != want.Lock || got.TS != want.TS ||
		got.Seq != want.Seq || got.Mode != want.Mode || len(got.Queue) != 1 {
		t.Fatalf("message mangled: %+v", got)
	}
}

func TestLinkAckRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLinkAck(&buf, 123456); err != nil {
		t.Fatal(err)
	}
	typ, seq, m, err := ReadLinkFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != LinkAck || seq != 123456 || m != nil {
		t.Fatalf("typ=%d seq=%d m=%v", typ, seq, m)
	}
}

func TestLinkStreamInterleaved(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(1); i <= 5; i++ {
		if err := WriteLinkData(&buf, i, &Message{Kind: KindRequest, TS: Timestamp(i)}); err != nil {
			t.Fatal(err)
		}
		if err := WriteLinkAck(&buf, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 5; i++ {
		typ, seq, m, err := ReadLinkFrame(&buf)
		if err != nil || typ != LinkData || seq != i || m == nil {
			t.Fatalf("data frame %d: typ=%d seq=%d err=%v", i, typ, seq, err)
		}
		typ, seq, _, err = ReadLinkFrame(&buf)
		if err != nil || typ != LinkAck || seq != i {
			t.Fatalf("ack frame %d: typ=%d seq=%d err=%v", i, typ, seq, err)
		}
	}
}

func TestLinkRejectsPlainFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Message{Kind: KindRequest}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadLinkFrame(&buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("plain frame must fail with ErrBadVersion, got %v", err)
	}
	// And the reverse: a plain reader rejects a link frame.
	buf.Reset()
	if err := WriteLinkData(&buf, 1, &Message{Kind: KindRequest}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("link frame must fail a plain reader with ErrBadVersion, got %v", err)
	}
}

func TestLinkRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLinkData(&buf, 9, &Message{Kind: KindGrant}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut += 7 {
		if _, _, _, err := ReadLinkFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Corrupt magic.
	bad := append([]byte(nil), raw...)
	bad[4] = 0x55
	if _, _, _, err := ReadLinkFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad magic: %v", err)
	}
}
