package proto

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"hierlock/internal/modes"
)

func TestLinkDataRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := &Message{
		Kind: KindToken, Lock: 42, From: 3, To: 9, TS: 17, Seq: 5,
		Mode: modes.W, Owned: modes.IW, Frozen: modes.MakeSet(modes.R),
		Queue: []Request{{Origin: 1, Mode: modes.R, TS: 2, Priority: 3}},
	}
	if err := WriteLinkData(&buf, 77, want); err != nil {
		t.Fatal(err)
	}
	typ, seq, got, err := ReadLinkFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != LinkData || seq != 77 {
		t.Fatalf("typ=%d seq=%d", typ, seq)
	}
	if got.Kind != want.Kind || got.Lock != want.Lock || got.TS != want.TS ||
		got.Seq != want.Seq || got.Mode != want.Mode || len(got.Queue) != 1 {
		t.Fatalf("message mangled: %+v", got)
	}
}

func TestLinkAckRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLinkAck(&buf, 123456); err != nil {
		t.Fatal(err)
	}
	typ, seq, m, err := ReadLinkFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != LinkAck || seq != 123456 || m != nil {
		t.Fatalf("typ=%d seq=%d m=%v", typ, seq, m)
	}
}

func TestLinkStreamInterleaved(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(1); i <= 5; i++ {
		if err := WriteLinkData(&buf, i, &Message{Kind: KindRequest, TS: Timestamp(i)}); err != nil {
			t.Fatal(err)
		}
		if err := WriteLinkAck(&buf, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 5; i++ {
		typ, seq, m, err := ReadLinkFrame(&buf)
		if err != nil || typ != LinkData || seq != i || m == nil {
			t.Fatalf("data frame %d: typ=%d seq=%d err=%v", i, typ, seq, err)
		}
		typ, seq, _, err = ReadLinkFrame(&buf)
		if err != nil || typ != LinkAck || seq != i {
			t.Fatalf("ack frame %d: typ=%d seq=%d err=%v", i, typ, seq, err)
		}
	}
}

func TestLinkRejectsPlainFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Message{Kind: KindRequest}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadLinkFrame(&buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("plain frame must fail with ErrBadVersion, got %v", err)
	}
	// And the reverse: a plain reader rejects a link frame.
	buf.Reset()
	if err := WriteLinkData(&buf, 1, &Message{Kind: KindRequest}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("link frame must fail a plain reader with ErrBadVersion, got %v", err)
	}
}

func TestLinkRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLinkData(&buf, 9, &Message{Kind: KindGrant}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut += 7 {
		if _, _, _, err := ReadLinkFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Corrupt magic.
	bad := append([]byte(nil), raw...)
	bad[4] = 0x55
	if _, _, _, err := ReadLinkFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad magic: %v", err)
	}
}

// TestLinkCrashRetransmitDedup models the reliable link crossing a
// receiver crash, the way the TCP transport drives it: within one
// receiver incarnation duplicates are suppressed by the sequence check
// (exactly-once), while across a restart the receiver's dedup state
// resets to zero and the sender's retransmitted unacked frames are
// accepted again (at-least-once). Writer and reader run on separate
// goroutines over a pipe so the race detector exercises the codec.
func TestLinkCrashRetransmitDedup(t *testing.T) {
	type delivery struct {
		seq uint64
		ts  Timestamp
	}
	// incarnation reads frames until EOF, applying the transport's dedup
	// rule from a fresh recvSeq of zero, and acking every data frame on
	// acks.
	incarnation := func(r io.Reader, acks chan<- uint64) []delivery {
		var got []delivery
		var last uint64
		for {
			typ, seq, m, err := ReadLinkFrame(r)
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				return got
			}
			if err != nil {
				t.Error(err)
				return got
			}
			if typ != LinkData || m == nil {
				t.Errorf("unexpected frame typ=%d m=%v", typ, m)
				return got
			}
			if acks != nil {
				acks <- seq
			}
			if seq <= last {
				continue // duplicate within this incarnation: suppressed
			}
			last = seq
			got = append(got, delivery{seq, m.TS})
		}
	}
	send := func(w io.Writer, seq uint64) {
		if err := WriteLinkData(w, seq, &Message{Kind: KindRequest, TS: Timestamp(seq)}); err != nil {
			t.Error(err)
		}
	}

	// Incarnation 1: the sender streams 1..5; the receiver acks as it
	// goes, but the "process" crashes (reader stops, connection drops)
	// having acked only what it saw. The sender trims its unacked buffer
	// on each ack, exactly like the transport's ack loop.
	pr1, pw1 := io.Pipe()
	acks := make(chan uint64, 16)
	got1C := make(chan []delivery, 1)
	go func() { got1C <- incarnation(pr1, acks) }()
	var acked uint64
	for seq := uint64(1); seq <= 5; seq++ {
		send(pw1, seq)
	}
	for acked < 3 { // the crash loses acks 4 and 5 in flight
		acked = <-acks
	}
	_ = pw1.Close() // crash: the connection dies with the receiver
	got1 := <-got1C
	if len(got1) != 5 || got1[0].ts != 1 || got1[4].ts != 5 {
		t.Fatalf("incarnation 1 deliveries: %+v", got1)
	}

	// Incarnation 2: the receiver restarts with reset sequence state.
	// The sender reconnects and retransmits everything past the last
	// ack (4, 5), then a spurious duplicate of 4 (e.g. a second redial
	// racing the ack), then fresh traffic 6.
	pr2, pw2 := io.Pipe()
	got2C := make(chan []delivery, 1)
	go func() { got2C <- incarnation(pr2, nil) }()
	for _, seq := range []uint64{4, 5, 4, 6} {
		send(pw2, seq)
	}
	_ = pw2.Close()
	got2 := <-got2C

	// Within the incarnation the duplicate 4 was suppressed; across the
	// crash 4 and 5 were re-delivered — the documented at-least-once
	// degradation when dedup state does not survive a restart.
	want := []delivery{{4, 4}, {5, 5}, {6, 6}}
	if len(got2) != len(want) {
		t.Fatalf("incarnation 2 deliveries: %+v, want %+v", got2, want)
	}
	for i, d := range got2 {
		if d != want[i] {
			t.Fatalf("incarnation 2 delivery %d = %+v, want %+v", i, d, want[i])
		}
	}
}
