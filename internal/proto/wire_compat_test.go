package proto

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"reflect"
	"testing"

	"hierlock/internal/modes"
)

// appendMessageV1 encodes m in the retired version-1 layout (no trace
// fields, no epoch), exactly as a pre-trace peer would emit it.
// Test-only: the production encoder always writes the current version.
func appendMessageV1(dst []byte, m *Message) []byte {
	dst = append(dst, wireVersionV1, byte(m.Kind))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Lock))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.From))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.To))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.TS))
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	dst = append(dst, byte(m.Mode), byte(m.Owned), byte(m.Frozen))
	dst = appendRequestV1(dst, m.Req)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Queue)))
	for _, r := range m.Queue {
		dst = appendRequestV1(dst, r)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Vec)))
	for _, v := range m.Vec {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return dst
}

func appendRequestV1(dst []byte, r Request) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Origin))
	dst = append(dst, byte(r.Mode), r.Priority)
	return binary.BigEndian.AppendUint64(dst, uint64(r.TS))
}

// appendMessageV2 encodes m in the retired version-2 layout (trace
// fields, no epoch), exactly as a pre-epoch peer would emit it.
func appendMessageV2(dst []byte, m *Message) []byte {
	dst = append(dst, wireVersionV2, byte(m.Kind))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Lock))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.From))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.To))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.TS))
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	dst = append(dst, byte(m.Mode), byte(m.Owned), byte(m.Frozen))
	dst = appendTrace(dst, m.Trace)
	dst = appendRequest(dst, m.Req)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Queue)))
	for _, r := range m.Queue {
		dst = appendRequest(dst, r)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Vec)))
	for _, v := range m.Vec {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return dst
}

// appendMessageV3 encodes m in the retired version-3 layout (trace and
// epoch fields, no address), exactly as a pre-membership peer would emit
// it.
func appendMessageV3(dst []byte, m *Message) []byte {
	dst = append(dst, wireVersionV3, byte(m.Kind))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Lock))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.From))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.To))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.TS))
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	dst = append(dst, byte(m.Mode), byte(m.Owned), byte(m.Frozen))
	dst = appendTrace(dst, m.Trace)
	dst = binary.BigEndian.AppendUint32(dst, m.Epoch)
	dst = appendRequest(dst, m.Req)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Queue)))
	for _, r := range m.Queue {
		dst = appendRequest(dst, r)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Vec)))
	for _, v := range m.Vec {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return dst
}

// stripAddr returns a copy of m with the address cleared — what a
// version-3 frame of m must decode to.
func stripAddr(m *Message) *Message {
	c := *m
	c.Addr = ""
	return &c
}

// stripEpoch returns a copy of m with the address cleared and the epoch
// zeroed — what a version-2 frame of m must decode to.
func stripEpoch(m *Message) *Message {
	c := *stripAddr(m)
	c.Epoch = 0
	return &c
}

// stripTraces returns a copy of m with every trace ID and the epoch
// zeroed — what a version-1 frame of m must decode to.
func stripTraces(m *Message) *Message {
	c := *stripEpoch(m)
	c.Trace = TraceID{}
	c.Req.Trace = TraceID{}
	if m.Queue != nil {
		c.Queue = make([]Request, len(m.Queue))
		copy(c.Queue, m.Queue)
		for i := range c.Queue {
			c.Queue[i].Trace = TraceID{}
		}
	}
	return &c
}

// goldenMessage is the fixed fixture whose byte-exact encodings are
// pinned below. Changing any hex constant is a wire format break.
func goldenMessage() *Message {
	return &Message{
		Kind: KindToken, Lock: 0x1122334455667788, From: 3, To: 9,
		TS: 4242, Seq: 7,
		Mode: modes.W, Owned: modes.IR,
		Frozen: modes.MakeSet(modes.IW, modes.W),
		Trace:  TraceID{Node: 5, Seq: 77},
		Epoch:  0x0a0b0c0d,
		Addr:   "198.51.100.7:9404",
		Req:    Request{Origin: 5, Mode: modes.W, TS: 70, Trace: TraceID{Node: 5, Seq: 77}},
		Queue: []Request{
			{Origin: 2, Mode: modes.R, TS: 80, Priority: 1, Trace: TraceID{Node: 2, Seq: 80}},
		},
		Vec: []uint64{1, 2},
	}
}

const (
	goldenFrameV4 = "0403112233445566778800000003000000090000000000001092" +
		"000000000000000705013000000005000000000000004d" + // mode/owned/frozen, header trace
		"0a0b0c0d" + // epoch
		"00113139382e35312e3130302e373a39343034" + // addr "198.51.100.7:9404"
		"000000050500000000000000004600000005000000000000004d" + // req + req trace
		"0000000100000002020100000000000000500000000200000000000000500000000200000000000000010000000000000002"
	goldenFrameV3 = "0303112233445566778800000003000000090000000000001092" +
		"000000000000000705013000000005000000000000004d" + // mode/owned/frozen, header trace
		"0a0b0c0d" + // epoch
		"000000050500000000000000004600000005000000000000004d" + // req + req trace
		"0000000100000002020100000000000000500000000200000000000000500000000200000000000000010000000000000002"
	goldenFrameV2 = "0203112233445566778800000003000000090000000000001092" +
		"000000000000000705013000000005000000000000004d" + // mode/owned/frozen, header trace
		"000000050500000000000000004600000005000000000000004d" + // req + req trace
		"0000000100000002020100000000000000500000000200000000000000500000000200000000000000010000000000000002"
	goldenFrameV1 = "0103112233445566778800000003000000090000000000001092" +
		"0000000000000007050130" +
		"0000000505000000000000000046" +
		"0000000100000002020100000000000000500000000200000000000000010000000000000002"
)

// TestWireGoldenFrames pins the byte-exact encoding of all four wire
// versions and checks each decodes back to the right message (the
// version-3 frame loses the address, the version-2 frame additionally
// loses the epoch, the version-1 frame additionally loses its trace IDs,
// nothing else).
func TestWireGoldenFrames(t *testing.T) {
	m := goldenMessage()

	gotV4 := hex.EncodeToString(AppendMessage(nil, m))
	if gotV4 != goldenFrameV4 {
		t.Errorf("v4 frame drifted:\n got: %s\nwant: %s", gotV4, goldenFrameV4)
	}
	gotV3 := hex.EncodeToString(appendMessageV3(nil, m))
	if gotV3 != goldenFrameV3 {
		t.Errorf("v3 frame drifted:\n got: %s\nwant: %s", gotV3, goldenFrameV3)
	}
	gotV2 := hex.EncodeToString(appendMessageV2(nil, m))
	if gotV2 != goldenFrameV2 {
		t.Errorf("v2 frame drifted:\n got: %s\nwant: %s", gotV2, goldenFrameV2)
	}
	gotV1 := hex.EncodeToString(appendMessageV1(nil, m))
	if gotV1 != goldenFrameV1 {
		t.Errorf("v1 frame drifted:\n got: %s\nwant: %s", gotV1, goldenFrameV1)
	}

	for _, tc := range []struct {
		name  string
		frame string
		want  *Message
	}{
		{"v4", goldenFrameV4, m},
		{"v3", goldenFrameV3, stripAddr(m)},
		{"v2", goldenFrameV2, stripEpoch(m)},
		{"v1", goldenFrameV1, stripTraces(m)},
	} {
		raw, err := hex.DecodeString(tc.frame)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeMessage(raw)
		if err != nil {
			t.Fatalf("decode %s golden: %v", tc.name, err)
		}
		if !reflect.DeepEqual(dec, tc.want) {
			t.Errorf("%s golden decode mismatch:\n got: %+v\nwant: %+v", tc.name, dec, tc.want)
		}
	}
}

// TestDecodeV1Compat round-trips every sample fixture through the
// version-1 encoding: the decoder must accept it and produce the same
// message with zero trace IDs and a zero epoch. The recovery kinds did
// not exist in v1, so fixtures carrying them are skipped.
func TestDecodeV1Compat(t *testing.T) {
	for i, m := range sampleMessages() {
		if m.Kind > KindFreeze {
			continue
		}
		got, err := DecodeMessage(appendMessageV1(nil, m))
		if err != nil {
			t.Fatalf("msg %d: decode v1: %v", i, err)
		}
		if want := stripTraces(m); !reflect.DeepEqual(got, want) {
			t.Errorf("msg %d: v1 compat mismatch:\n got: %+v\nwant: %+v", i, got, want)
		}
	}
}

// TestDecodeV2Compat round-trips every sample fixture through the
// version-2 encoding: the decoder must accept it and produce the same
// message with a zero epoch, traces intact.
func TestDecodeV2Compat(t *testing.T) {
	for i, m := range sampleMessages() {
		if m.Kind > KindFreeze {
			continue
		}
		got, err := DecodeMessage(appendMessageV2(nil, m))
		if err != nil {
			t.Fatalf("msg %d: decode v2: %v", i, err)
		}
		if want := stripEpoch(m); !reflect.DeepEqual(got, want) {
			t.Errorf("msg %d: v2 compat mismatch:\n got: %+v\nwant: %+v", i, got, want)
		}
	}
}

// TestDecodeV3Compat round-trips every pre-membership sample fixture
// through the version-3 encoding: the decoder must accept it and produce
// the same message with an empty address, epoch and traces intact.
func TestDecodeV3Compat(t *testing.T) {
	for i, m := range sampleMessages() {
		if m.Kind > KindHeartbeat {
			continue
		}
		got, err := DecodeMessage(appendMessageV3(nil, m))
		if err != nil {
			t.Fatalf("msg %d: decode v3: %v", i, err)
		}
		if want := stripAddr(m); !reflect.DeepEqual(got, want) {
			t.Errorf("msg %d: v3 compat mismatch:\n got: %+v\nwant: %+v", i, got, want)
		}
	}
}

// TestDecodeRejectsMixedVersions checks that frames from peers speaking
// any version other than the current or the three previous ones fail
// fast with ErrBadVersion — a version-5 (future) peer and garbage
// versions alike — and that the version byte, not the frame length,
// selects the layout.
func TestDecodeRejectsMixedVersions(t *testing.T) {
	valid := AppendMessage(nil, goldenMessage())
	for _, v := range []byte{0, 5, 6, 99, 0xff} {
		frame := append([]byte{v}, valid[1:]...)
		_, err := DecodeMessage(frame)
		if !errors.Is(err, ErrBadVersion) {
			t.Errorf("version %d: err = %v, want ErrBadVersion", v, err)
		}
	}
	// A frame claiming the current version but carrying an older, shorter
	// body must still parse as the current version (and fail): the version
	// byte, not the length, selects the layout.
	shortV3 := append([]byte{wireVersion}, appendMessageV3(nil, goldenMessage())[1:]...)
	if _, err := DecodeMessage(shortV3); err == nil {
		t.Error("v4 frame with v3-length body accepted")
	}
	shortV2 := append([]byte{wireVersionV3}, appendMessageV2(nil, goldenMessage())[1:]...)
	if _, err := DecodeMessage(shortV2); err == nil {
		t.Error("v3 frame with v2-length body accepted")
	}
	shortV1 := append([]byte{wireVersionV2}, appendMessageV1(nil, goldenMessage())[1:]...)
	if _, err := DecodeMessage(shortV1); err == nil {
		t.Error("v2 frame with v1-length body accepted")
	}
}

// TestRecoveryKindsVersionGated checks that the recovery/liveness kinds
// round-trip in the current version, decode from version-3 frames (the
// version that introduced them), but are rejected when they appear in a
// frame from an older peer, which could never legitimately emit them.
func TestRecoveryKindsVersionGated(t *testing.T) {
	for _, k := range []Kind{KindProbe, KindClaim, KindRecovered, KindHeartbeat} {
		m := &Message{Kind: k, Lock: 4, From: 1, To: 2, TS: 9, Epoch: 3,
			Req: Request{Origin: 1}}
		got, err := DecodeMessage(AppendMessage(nil, m))
		if err != nil {
			t.Fatalf("kind %v: decode v4: %v", k, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("kind %v: round trip mismatch: %+v vs %+v", k, got, m)
		}
		if _, err := DecodeMessage(appendMessageV3(nil, m)); err != nil {
			t.Errorf("kind %v in v3 frame: err = %v, want accepted", k, err)
		}
		if _, err := DecodeMessage(appendMessageV2(nil, m)); !errors.Is(err, ErrBadFrame) {
			t.Errorf("kind %v in v2 frame: err = %v, want ErrBadFrame", k, err)
		}
		if _, err := DecodeMessage(appendMessageV1(nil, m)); !errors.Is(err, ErrBadFrame) {
			t.Errorf("kind %v in v1 frame: err = %v, want ErrBadFrame", k, err)
		}
	}
	// Kinds past the known range are rejected even in the current version.
	m := &Message{Kind: KindLeaveAck + 1, Lock: 4, From: 1, To: 2}
	if _, err := DecodeMessage(AppendMessage(nil, m)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("kind %d: err = %v, want ErrBadFrame", KindLeaveAck+1, err)
	}
}

// TestMembershipKindsVersionGated checks that the membership kinds
// round-trip in the current version — address intact — but are rejected
// when they appear in a frame from any older peer, which could never
// legitimately emit them.
func TestMembershipKindsVersionGated(t *testing.T) {
	for _, k := range []Kind{KindJoin, KindJoinAck, KindLeave, KindLeaveAck} {
		m := &Message{Kind: k, Lock: 4, From: 7, To: 2, TS: 9, Epoch: 3,
			Addr: "10.1.2.3:8500", Req: Request{Origin: 7},
			Vec: []uint64{11, 42}}
		got, err := DecodeMessage(AppendMessage(nil, m))
		if err != nil {
			t.Fatalf("kind %v: decode v4: %v", k, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("kind %v: round trip mismatch: %+v vs %+v", k, got, m)
		}
		if _, err := DecodeMessage(appendMessageV3(nil, m)); !errors.Is(err, ErrBadFrame) {
			t.Errorf("kind %v in v3 frame: err = %v, want ErrBadFrame", k, err)
		}
		if _, err := DecodeMessage(appendMessageV2(nil, m)); !errors.Is(err, ErrBadFrame) {
			t.Errorf("kind %v in v2 frame: err = %v, want ErrBadFrame", k, err)
		}
		if _, err := DecodeMessage(appendMessageV1(nil, m)); !errors.Is(err, ErrBadFrame) {
			t.Errorf("kind %v in v1 frame: err = %v, want ErrBadFrame", k, err)
		}
	}
	// An oversized address is rejected, not allocated.
	raw := AppendMessage(nil, &Message{Kind: KindJoin, From: 1, To: 2})
	binary.BigEndian.PutUint16(raw[headerLen:], MaxAddrLen+1)
	if _, err := DecodeMessage(raw); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized address: err = %v, want ErrTooLarge", err)
	}
}

func TestTraceIDStringParse(t *testing.T) {
	cases := []TraceID{{}, {Node: 0, Seq: 1}, {Node: 3, Seq: 17}, {Node: -1, Seq: ^uint64(0)}}
	for _, id := range cases {
		got, err := ParseTraceID(id.String())
		if err != nil || got != id {
			t.Errorf("ParseTraceID(%q) = %v, %v; want %v", id.String(), got, err, id)
		}
	}
	if (TraceID{}).String() != "-" {
		t.Error("zero TraceID must render as -")
	}
	if (TraceID{Node: 3, Seq: 17}).String() != "n3.17" {
		t.Errorf("String = %q", TraceID{Node: 3, Seq: 17}.String())
	}
	for _, bad := range []string{"x3.17", "n3", "n.17", "nA.17", "n3.B"} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}
