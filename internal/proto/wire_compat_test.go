package proto

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"reflect"
	"testing"

	"hierlock/internal/modes"
)

// appendMessageV1 encodes m in the retired version-1 layout (no trace
// fields), exactly as a pre-trace peer would emit it. Test-only: the
// production encoder always writes the current version.
func appendMessageV1(dst []byte, m *Message) []byte {
	dst = append(dst, wireVersionPrev, byte(m.Kind))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Lock))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.From))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.To))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.TS))
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	dst = append(dst, byte(m.Mode), byte(m.Owned), byte(m.Frozen))
	dst = appendRequestV1(dst, m.Req)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Queue)))
	for _, r := range m.Queue {
		dst = appendRequestV1(dst, r)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Vec)))
	for _, v := range m.Vec {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return dst
}

func appendRequestV1(dst []byte, r Request) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Origin))
	dst = append(dst, byte(r.Mode), r.Priority)
	return binary.BigEndian.AppendUint64(dst, uint64(r.TS))
}

// stripTraces returns a copy of m with every trace ID zeroed — what a
// version-1 frame of m must decode to.
func stripTraces(m *Message) *Message {
	c := *m
	c.Trace = TraceID{}
	c.Req.Trace = TraceID{}
	if m.Queue != nil {
		c.Queue = make([]Request, len(m.Queue))
		copy(c.Queue, m.Queue)
		for i := range c.Queue {
			c.Queue[i].Trace = TraceID{}
		}
	}
	return &c
}

// goldenMessage is the fixed fixture whose byte-exact encodings are
// pinned below. Changing either hex constant is a wire format break.
func goldenMessage() *Message {
	return &Message{
		Kind: KindToken, Lock: 0x1122334455667788, From: 3, To: 9,
		TS: 4242, Seq: 7,
		Mode: modes.W, Owned: modes.IR,
		Frozen: modes.MakeSet(modes.IW, modes.W),
		Trace:  TraceID{Node: 5, Seq: 77},
		Req:    Request{Origin: 5, Mode: modes.W, TS: 70, Trace: TraceID{Node: 5, Seq: 77}},
		Queue: []Request{
			{Origin: 2, Mode: modes.R, TS: 80, Priority: 1, Trace: TraceID{Node: 2, Seq: 80}},
		},
		Vec: []uint64{1, 2},
	}
}

const (
	goldenFrameV2 = "0203112233445566778800000003000000090000000000001092" +
		"000000000000000705013000000005000000000000004d" + // mode/owned/frozen, header trace
		"000000050500000000000000004600000005000000000000004d" + // req + req trace
		"0000000100000002020100000000000000500000000200000000000000500000000200000000000000010000000000000002"
	goldenFrameV1 = "0103112233445566778800000003000000090000000000001092" +
		"0000000000000007050130" +
		"0000000505000000000000000046" +
		"0000000100000002020100000000000000500000000200000000000000010000000000000002"
)

// TestWireGoldenFrames pins the byte-exact encoding of both wire
// versions and checks each decodes back to the right message (the
// version-1 frame loses its trace IDs, nothing else).
func TestWireGoldenFrames(t *testing.T) {
	m := goldenMessage()

	gotV2 := hex.EncodeToString(AppendMessage(nil, m))
	if gotV2 != goldenFrameV2 {
		t.Errorf("v2 frame drifted:\n got: %s\nwant: %s", gotV2, goldenFrameV2)
	}
	gotV1 := hex.EncodeToString(appendMessageV1(nil, m))
	if gotV1 != goldenFrameV1 {
		t.Errorf("v1 frame drifted:\n got: %s\nwant: %s", gotV1, goldenFrameV1)
	}

	rawV2, err := hex.DecodeString(goldenFrameV2)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeMessage(rawV2)
	if err != nil {
		t.Fatalf("decode v2 golden: %v", err)
	}
	if !reflect.DeepEqual(dec, m) {
		t.Errorf("v2 golden decode mismatch:\n got: %+v\nwant: %+v", dec, m)
	}

	rawV1, err := hex.DecodeString(goldenFrameV1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err = DecodeMessage(rawV1)
	if err != nil {
		t.Fatalf("decode v1 golden: %v", err)
	}
	if want := stripTraces(m); !reflect.DeepEqual(dec, want) {
		t.Errorf("v1 golden decode mismatch:\n got: %+v\nwant: %+v", dec, want)
	}
}

// TestDecodeV1Compat round-trips every sample fixture through the
// version-1 encoding: the decoder must accept it and produce the same
// message with zero trace IDs.
func TestDecodeV1Compat(t *testing.T) {
	for i, m := range sampleMessages() {
		got, err := DecodeMessage(appendMessageV1(nil, m))
		if err != nil {
			t.Fatalf("msg %d: decode v1: %v", i, err)
		}
		if want := stripTraces(m); !reflect.DeepEqual(got, want) {
			t.Errorf("msg %d: v1 compat mismatch:\n got: %+v\nwant: %+v", i, got, want)
		}
	}
}

// TestDecodeRejectsMixedVersions checks that frames from peers speaking
// any version other than the current or previous one fail fast with
// ErrBadVersion — a version-3 (future) peer and garbage versions alike.
func TestDecodeRejectsMixedVersions(t *testing.T) {
	valid := AppendMessage(nil, goldenMessage())
	for _, v := range []byte{0, 3, 4, 99, 0xff} {
		frame := append([]byte{v}, valid[1:]...)
		_, err := DecodeMessage(frame)
		if !errors.Is(err, ErrBadVersion) {
			t.Errorf("version %d: err = %v, want ErrBadVersion", v, err)
		}
	}
	// A truncated version-2 frame that would be a well-formed version-1
	// payload by length must still parse as version 2 (and fail): the
	// version byte, not the length, selects the layout.
	short := append([]byte{wireVersion}, appendMessageV1(nil, goldenMessage())[1:]...)
	if _, err := DecodeMessage(short); err == nil {
		t.Error("v2 frame with v1-length body accepted")
	}
}

func TestTraceIDStringParse(t *testing.T) {
	cases := []TraceID{{}, {Node: 0, Seq: 1}, {Node: 3, Seq: 17}, {Node: -1, Seq: ^uint64(0)}}
	for _, id := range cases {
		got, err := ParseTraceID(id.String())
		if err != nil || got != id {
			t.Errorf("ParseTraceID(%q) = %v, %v; want %v", id.String(), got, err, id)
		}
	}
	if (TraceID{}).String() != "-" {
		t.Error("zero TraceID must render as -")
	}
	if (TraceID{Node: 3, Seq: 17}).String() != "n3.17" {
		t.Errorf("String = %q", TraceID{Node: 3, Seq: 17}.String())
	}
	for _, bad := range []string{"x3.17", "n3", "n.17", "nA.17", "n3.B"} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}
