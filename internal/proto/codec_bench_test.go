package proto

import (
	"bytes"
	"io"
	"testing"
)

func benchMsg(queue int) *Message {
	m := &Message{
		Kind: KindToken,
		Lock: 7,
		From: 2,
		To:   5,
		TS:   41,
		Seq:  9,
		Req:  Request{Origin: 2, Priority: 1, TS: 40},
	}
	for i := 0; i < queue; i++ {
		m.Queue = append(m.Queue, Request{Origin: NodeID(i), TS: Timestamp(i)})
	}
	return m
}

func BenchmarkWriteFrame(b *testing.B) {
	m := benchMsg(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(io.Discard, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFrame(b *testing.B) {
	frame := AppendFrame(nil, benchMsg(0))
	r := bytes.NewReader(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		if _, err := ReadFrame(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinkRoundTrip(b *testing.B) {
	m := benchMsg(4)
	frame := AppendLinkData(nil, 1, m)
	r := bytes.NewReader(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		if _, _, _, err := ReadLinkFrame(r); err != nil {
			b.Fatal(err)
		}
	}
}
