package proto

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeMessage feeds arbitrary bytes to the wire decoder: it must
// never panic, and everything it accepts must re-encode to the identical
// byte string (the codec is canonical).
func FuzzDecodeMessage(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(AppendMessage(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		re := AppendMessage(nil, m)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data, re)
		}
		// And the re-decode must agree.
		m2, err := DecodeMessage(re)
		if err != nil || !reflect.DeepEqual(m, m2) {
			t.Fatalf("re-decode mismatch: %v / %+v vs %+v", err, m, m2)
		}
	})
}
