package proto

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeMessage feeds arbitrary bytes to the wire decoder: it must
// never panic, and everything it accepts must survive a decode/encode
// cycle. Current-version frames must re-encode to the identical byte
// string (the codec is canonical); accepted previous-version frames
// re-encode as the current version, so for those only semantic identity
// (decode(encode(m)) == m, traces zero) is required.
func FuzzDecodeMessage(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(AppendMessage(nil, m))
		f.Add(appendMessageV3(nil, m))
		f.Add(appendMessageV2(nil, m))
		f.Add(appendMessageV1(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{2})
	f.Add([]byte{3})
	f.Add([]byte{4})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// Corrupt-trace-field and corrupt-epoch corpora: current-version
	// frames with the trace bytes (header and request) or the epoch bytes
	// clobbered — all byte values are legal trace IDs and epochs, so these
	// must decode, just to surprising values.
	base := AppendMessage(nil, sampleMessages()[0])
	for _, off := range []int{headerLenV1, headerLenV1 + 4, headerLenV2, headerLenV2 + 3, headerLen + requestLenV1} {
		for _, b := range []byte{0x00, 0x7f, 0x80, 0xff} {
			c := bytes.Clone(base)
			c[off] = b
			f.Add(c)
		}
	}
	// Truncations that slice through the trailing trace/epoch fields.
	for _, cut := range []int{1, epochLen, traceLen - 1, traceLen, traceLen + epochLen + 1} {
		f.Add(bytes.Clone(base[:len(base)-cut]))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		re := AppendMessage(nil, m)
		if data[0] == wireVersion && !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in: %x\nout: %x", data, re)
		}
		// The re-decode must agree regardless of input version.
		m2, err := DecodeMessage(re)
		if err != nil || !reflect.DeepEqual(m, m2) {
			t.Fatalf("re-decode mismatch: %v / %+v vs %+v", err, m, m2)
		}
	})
}
