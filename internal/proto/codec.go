package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"hierlock/internal/modes"
)

// Wire format: every message is a length-prefixed frame
//
//	uint32  payload length (big endian)
//	payload as encoded by AppendMessage
//
// The payload layout is fixed-width fields in network byte order followed
// by the request queue. The format is versioned by a leading magic byte so
// incompatible peers fail fast instead of mis-parsing.
//
// Version history:
//
//	1 — original layout (no trace context).
//	2 — appends a causal trace ID (uint32 origin node + uint64 origin
//	    sequence) to the fixed header and to every encoded Request.
//	3 — appends the per-lock recovery epoch (uint32) to the fixed header
//	    and admits the recovery/liveness message kinds (probe, claim,
//	    recovered, heartbeat).
//	4 — appends a length-prefixed endpoint address (uint16 length + raw
//	    bytes) after the epoch and admits the membership kinds (join,
//	    join_ack, leave, leave_ack).
//
// The encoder always emits the current version. The decoder additionally
// accepts version-3, version-2 and version-1 frames, yielding an empty
// address (and, for v2 and below, a zero epoch; for v1, zero trace IDs),
// so a membership-aware node can interoperate with older peers during a
// rolling upgrade; any other version is rejected with ErrBadVersion.
// Older versions cannot carry the kinds introduced after them: a v1/v2
// frame with a kind beyond freeze, or a v3 frame with a kind beyond
// heartbeat, is malformed.

const (
	wireVersion byte = 4

	// Prior versions the decoder still accepts (missing fields decode as
	// zero).
	wireVersionV3 byte = 3
	wireVersionV2 byte = 2
	wireVersionV1 byte = 1

	// MaxAddrLen bounds the endpoint address accepted from the wire; any
	// real host:port is far below this.
	MaxAddrLen = 1 << 10

	// MaxQueueLen bounds the queue length accepted from the wire; a token
	// transfer can carry at most one outstanding request per node, so any
	// real deployment is far below this.
	MaxQueueLen = 1 << 20

	// MaxFrameSize bounds the total frame size accepted from the wire.
	MaxFrameSize = 32 << 20
)

// Encoding errors.
var (
	ErrBadFrame   = errors.New("proto: malformed frame")
	ErrBadVersion = errors.New("proto: wire version mismatch")
	ErrTooLarge   = errors.New("proto: frame exceeds size limit")
)

// AppendMessage appends the binary encoding of m to dst and returns the
// extended slice. The encoding is deterministic.
func AppendMessage(dst []byte, m *Message) []byte {
	dst = append(dst, wireVersion, byte(m.Kind))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Lock))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.From))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.To))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.TS))
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	dst = append(dst, byte(m.Mode), byte(m.Owned), byte(m.Frozen))
	dst = appendTrace(dst, m.Trace)
	dst = binary.BigEndian.AppendUint32(dst, m.Epoch)
	if len(m.Addr) > MaxAddrLen {
		// A programming error, not a wire condition: no caller forms
		// kilobyte addresses. Failing loudly beats emitting a frame every
		// peer will reject.
		panic("proto: message address exceeds MaxAddrLen")
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Addr)))
	dst = append(dst, m.Addr...)
	dst = appendRequest(dst, m.Req)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Queue)))
	for _, r := range m.Queue {
		dst = appendRequest(dst, r)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Vec)))
	for _, v := range m.Vec {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return dst
}

func appendTrace(dst []byte, t TraceID) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(t.Node))
	return binary.BigEndian.AppendUint64(dst, t.Seq)
}

func appendRequest(dst []byte, r Request) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Origin))
	dst = append(dst, byte(r.Mode), r.Priority)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.TS))
	return appendTrace(dst, r.Trace)
}

const (
	traceLen = 4 + 8 // origin node, origin sequence
	epochLen = 4     // recovery epoch

	headerLenV1 = 2 + 8 + 4 + 4 + 8 + 8 + 3 // version..frozen
	headerLenV2 = headerLenV1 + traceLen    // version..frozen, trace
	headerLen   = headerLenV2 + epochLen    // version..frozen, trace, epoch

	requestLenV1 = 4 + 1 + 1 + 8           // origin, mode, priority, ts
	requestLen   = requestLenV1 + traceLen // origin..ts, trace
)

// Message pooling. The decoded Message used to be the last allocation
// on the inbound wire hot path (1 alloc/frame). Messages now come from a
// pool: DecodeMessage draws from it, and consumers that can prove the
// pointer is dead (the TCP transport, after its serialized delivery
// callback returns) hand the struct back with PutMessage. Callers that
// never recycle simply fall back to ordinary allocation via the pool's
// New — recycling is an optimization, not an obligation.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// GetMessage returns a zeroed Message from the pool.
func GetMessage() *Message { return msgPool.Get().(*Message) }

// PutMessage recycles a Message the caller owns exclusively. The struct
// is zeroed wholesale: in particular the Queue and Vec slice headers are
// dropped, never reused, because protocol engines may retain a decoded
// queue's backing array past the message's lifetime (queue merging
// aliases it). Only the fixed-size struct itself is recycled.
func PutMessage(m *Message) {
	if m == nil {
		return
	}
	*m = Message{}
	msgPool.Put(m)
}

// DecodeMessage parses one message from buf (the full payload of a frame).
// The current wire version and the three prior ones are accepted;
// version-3 frames decode with an empty address, version-2 frames
// additionally with a zero epoch, version-1 frames additionally with
// zero trace IDs. The returned Message comes from the message pool;
// callers that can bound its lifetime may return it with PutMessage for
// an allocation-free steady state.
func DecodeMessage(buf []byte) (*Message, error) {
	m := GetMessage()
	if err := decodeMessage(m, buf); err != nil {
		PutMessage(m)
		return nil, err
	}
	return m, nil
}

// decodeMessage parses one payload into m, which must be zeroed (fields
// absent from older wire versions are left untouched).
func decodeMessage(m *Message, buf []byte) error {
	if len(buf) < 1 {
		return fmt.Errorf("%w: empty payload", ErrBadFrame)
	}
	hdrLen, reqLen := headerLen, requestLen
	maxKind := KindLeaveAck
	hasAddr := true
	switch buf[0] {
	case wireVersion:
	case wireVersionV3:
		maxKind, hasAddr = KindHeartbeat, false
	case wireVersionV2:
		hdrLen, maxKind, hasAddr = headerLenV2, KindFreeze, false
	case wireVersionV1:
		hdrLen, reqLen, maxKind, hasAddr = headerLenV1, requestLenV1, KindFreeze, false
	default:
		return fmt.Errorf("%w: got %d, want %d (or %d, %d, %d)",
			ErrBadVersion, buf[0], wireVersion, wireVersionV3, wireVersionV2, wireVersionV1)
	}
	if len(buf) < hdrLen+reqLen+4 {
		return fmt.Errorf("%w: short payload (%d bytes)", ErrBadFrame, len(buf))
	}
	m.Kind = Kind(buf[1])
	if m.Kind == KindInvalid || m.Kind > maxKind {
		return fmt.Errorf("%w: unknown kind %d", ErrBadFrame, buf[1])
	}
	m.Lock = LockID(binary.BigEndian.Uint64(buf[2:]))
	m.From = NodeID(int32(binary.BigEndian.Uint32(buf[10:])))
	m.To = NodeID(int32(binary.BigEndian.Uint32(buf[14:])))
	m.TS = Timestamp(binary.BigEndian.Uint64(buf[18:]))
	m.Seq = binary.BigEndian.Uint64(buf[26:])
	m.Mode = modes.Mode(buf[34])
	m.Owned = modes.Mode(buf[35])
	m.Frozen = modes.Set(buf[36])
	if !m.Mode.Valid() || !m.Owned.Valid() {
		return fmt.Errorf("%w: invalid mode byte", ErrBadFrame)
	}
	if hdrLen >= headerLenV2 {
		m.Trace = decodeTrace(buf[headerLenV1:])
	}
	if hdrLen == headerLen {
		m.Epoch = binary.BigEndian.Uint32(buf[headerLenV2:])
	}
	var err error
	rest := buf[hdrLen:]
	if hasAddr {
		if len(rest) < 2 {
			return fmt.Errorf("%w: missing address length", ErrBadFrame)
		}
		alen := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if alen > MaxAddrLen {
			return fmt.Errorf("%w: address of %d bytes", ErrTooLarge, alen)
		}
		if len(rest) < alen {
			return fmt.Errorf("%w: truncated address", ErrBadFrame)
		}
		if alen > 0 {
			m.Addr = string(rest[:alen])
		}
		rest = rest[alen:]
	}
	m.Req, rest, err = decodeRequest(rest, reqLen)
	if err != nil {
		return err
	}
	if len(rest) < 4 {
		return fmt.Errorf("%w: missing queue length", ErrBadFrame)
	}
	n := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if n > MaxQueueLen {
		return fmt.Errorf("%w: queue length %d", ErrTooLarge, n)
	}
	if n > 0 {
		m.Queue = make([]Request, 0, n)
		for i := uint32(0); i < n; i++ {
			var r Request
			r, rest, err = decodeRequest(rest, reqLen)
			if err != nil {
				return err
			}
			m.Queue = append(m.Queue, r)
		}
	}
	if len(rest) < 4 {
		return fmt.Errorf("%w: missing vector length", ErrBadFrame)
	}
	vn := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if vn > MaxQueueLen {
		return fmt.Errorf("%w: vector length %d", ErrTooLarge, vn)
	}
	if vn > 0 {
		if uint64(len(rest)) < uint64(vn)*8 {
			return fmt.Errorf("%w: truncated vector", ErrBadFrame)
		}
		m.Vec = make([]uint64, vn)
		for i := range m.Vec {
			m.Vec[i] = binary.BigEndian.Uint64(rest)
			rest = rest[8:]
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(rest))
	}
	return nil
}

func decodeTrace(buf []byte) TraceID {
	return TraceID{
		Node: NodeID(int32(binary.BigEndian.Uint32(buf))),
		Seq:  binary.BigEndian.Uint64(buf[4:]),
	}
}

func decodeRequest(buf []byte, reqLen int) (Request, []byte, error) {
	if len(buf) < reqLen {
		return Request{}, nil, fmt.Errorf("%w: short request", ErrBadFrame)
	}
	r := Request{
		Origin:   NodeID(int32(binary.BigEndian.Uint32(buf))),
		Mode:     modes.Mode(buf[4]),
		Priority: buf[5],
		TS:       Timestamp(binary.BigEndian.Uint64(buf[6:])),
	}
	if !r.Mode.Valid() {
		return Request{}, nil, fmt.Errorf("%w: invalid request mode", ErrBadFrame)
	}
	if reqLen == requestLen {
		r.Trace = decodeTrace(buf[requestLenV1:])
	}
	return r, buf[reqLen:], nil
}

// Buffer pooling. Every frame encode and every frame read needs a
// scratch byte slice whose lifetime ends inside the call; recycling them
// through a sync.Pool makes the steady-state wire hot path allocate
// nothing beyond the decoded Message itself. Oversized buffers (a rare
// giant token transfer) are dropped rather than pooled so one outlier
// cannot pin memory forever.
const maxPooledBuf = 64 << 10

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(bp *[]byte) {
	if cap(*bp) > maxPooledBuf {
		return
	}
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

// AppendFrame appends one length-prefixed wire frame for m to dst and
// returns the extended slice. Several frames appended to one buffer form
// a valid byte stream, which is how the TCP transport coalesces a burst
// of messages to one peer into a single write.
func AppendFrame(dst []byte, m *Message) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = AppendMessage(dst, m)
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// WriteFrame writes one length-prefixed message frame to w. The encode
// buffer is pooled; steady state performs zero allocations.
func WriteFrame(w io.Writer, m *Message) error {
	bp := getBuf()
	*bp = AppendFrame((*bp)[:0], m)
	_, err := w.Write(*bp)
	putBuf(bp)
	return err
}

// readPayload reads one length-prefixed payload into the pooled scratch
// buffer bp, growing it as needed. The returned slice aliases *bp.
func readPayload(r io.Reader, bp *[]byte, min uint32) ([]byte, error) {
	// The length prefix is read through the pooled buffer as well: a
	// stack array would escape to the heap via the io.Reader interface
	// and cost an allocation per frame.
	if cap(*bp) < 4 {
		*bp = make([]byte, 4, 1024)
	}
	lenBuf := (*bp)[:4]
	if _, err := io.ReadFull(r, lenBuf); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf)
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrTooLarge, n)
	}
	if n < min {
		return nil, fmt.Errorf("%w: short frame (%d bytes)", ErrBadFrame, n)
	}
	if uint32(cap(*bp)) < n {
		*bp = make([]byte, n)
	}
	buf := (*bp)[:n]
	*bp = buf
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadFrame reads one length-prefixed message frame from r. The frame
// scratch buffer is pooled; only the decoded Message (and its queue, if
// any) is allocated.
func ReadFrame(r io.Reader) (*Message, error) {
	bp := getBuf()
	defer putBuf(bp)
	buf, err := readPayload(r, bp, 0)
	if err != nil {
		return nil, err
	}
	return DecodeMessage(buf)
}
