// Package proto defines the wire-level vocabulary of the hierarchical
// locking protocol: node and lock identifiers, Lamport timestamps, the five
// protocol message kinds (request, grant, token, release, freeze), causal
// trace identifiers, and a compact deterministic binary codec used by the
// TCP transport.
//
// The package is shared by the protocol engines (internal/hlock,
// internal/naimi), the simulator, and the live transports. It contains no
// protocol logic.
package proto

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"hierlock/internal/modes"
)

// NodeID identifies a participant. IDs are small dense integers assigned
// by the cluster configuration; they double as slice indices in the
// simulator.
type NodeID int32

// NoNode is the absent node (e.g. the parent of the token node).
const NoNode NodeID = -1

// LockID identifies one lock (one protocol instance). The cluster layer
// maps resource names to LockIDs.
type LockID uint64

// Timestamp is a Lamport logical timestamp used to merge request queues
// while preserving FIFO ordering (paper §3, footnote c, via [11]).
type Timestamp uint64

// Clock is a Lamport logical clock. The zero value is ready to use.
// Clock is safe for concurrent use: one node's engines may tick it from
// several goroutines (the member runtime serializes per lock, not per
// node, so engines of distinct locks advance the shared clock
// concurrently).
type Clock struct {
	now atomic.Uint64
}

// Tick advances the clock for a local event and returns the new time.
func (c *Clock) Tick() Timestamp {
	return Timestamp(c.now.Add(1))
}

// Witness merges an observed remote timestamp into the clock.
func (c *Clock) Witness(t Timestamp) {
	for {
		cur := c.now.Load()
		next := cur + 1
		if uint64(t) > cur {
			next = uint64(t) + 1
		}
		if c.now.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Now returns the current clock value without advancing it.
func (c *Clock) Now() Timestamp { return Timestamp(c.now.Load()) }

// Clone returns an independent clock at the same time. Clock contains an
// atomic and must not be copied by value; model checkers fork clocks
// with Clone when cloning explored states.
func (c *Clock) Clone() *Clock {
	n := &Clock{}
	n.now.Store(c.now.Load())
	return n
}

// Kind discriminates protocol messages.
type Kind uint8

// The protocol message kinds. The first five are exactly the message
// types whose counts the paper breaks down in Figure 7; the next four
// (wire version 3) belong to the crash-recovery subsystem and the
// transport failure detector; the last four (wire version 4) implement
// runtime membership change. All kinds past freeze are handled outside
// the protocol engines.
const (
	KindInvalid Kind = iota
	KindRequest      // lock request propagating toward a granter
	KindGrant        // copy grant from a (token or non-token) granter
	KindToken        // token transfer, carrying the merged request queue
	KindRelease      // owned-mode weakening notification to the parent
	KindFreeze       // frozen-mode set push from the token toward granters

	KindProbe     // recovery: regenerator asks a survivor for its lock state
	KindClaim     // recovery: survivor reports (epoch, held mode, token bit)
	KindRecovered // recovery: regenerator announces the new epoch and root
	KindHeartbeat // transport liveness beacon; filtered before the mailbox

	KindJoin     // membership: joiner announces itself, carrying its address
	KindJoinAck  // membership: member answers with the peer list, max epoch and seeds
	KindLeave    // membership: graceful departure, nominating token-held locks
	KindLeaveAck // membership: survivor acknowledges processing a departure
)

// String returns the figure-7 label for the message kind (and stable
// labels for the recovery/liveness kinds).
func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindGrant:
		return "grant"
	case KindToken:
		return "token"
	case KindRelease:
		return "release"
	case KindFreeze:
		return "freeze"
	case KindProbe:
		return "probe"
	case KindClaim:
		return "claim"
	case KindRecovered:
		return "recovered"
	case KindHeartbeat:
		return "heartbeat"
	case KindJoin:
		return "join"
	case KindJoinAck:
		return "join_ack"
	case KindLeave:
		return "leave"
	case KindLeaveAck:
		return "leave_ack"
	default:
		return "invalid"
	}
}

// TraceID identifies one client operation (an acquire, upgrade or
// release) for causal tracing across nodes. It is minted once at the
// origin node and never changes as the operation's messages are
// forwarded, queued, frozen, or served, so merging the per-node trace
// buffers by TraceID reconstructs the operation's full cross-node path.
//
// Seq is drawn from the origin node's Lamport clock, which makes IDs
// unique per node and deterministic under the seeded simulator. The zero
// TraceID means "untraced" (e.g. a frame from a version-1 peer).
type TraceID struct {
	Node NodeID
	Seq  uint64
}

// IsZero reports whether t is the absent trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as "n<node>.<seq>", or "-" for the zero ID.
// ParseTraceID inverts it.
func (t TraceID) String() string {
	if t.IsZero() {
		return "-"
	}
	return fmt.Sprintf("n%d.%d", t.Node, t.Seq)
}

// ParseTraceID parses the String form ("n3.17", or "-" for the zero ID).
func ParseTraceID(s string) (TraceID, error) {
	if s == "-" || s == "" {
		return TraceID{}, nil
	}
	rest, ok := strings.CutPrefix(s, "n")
	if !ok {
		return TraceID{}, fmt.Errorf("proto: malformed trace id %q", s)
	}
	node, seq, ok := strings.Cut(rest, ".")
	if !ok {
		return TraceID{}, fmt.Errorf("proto: malformed trace id %q", s)
	}
	n, err := strconv.ParseInt(node, 10, 32)
	if err != nil {
		return TraceID{}, fmt.Errorf("proto: malformed trace id %q: %v", s, err)
	}
	q, err := strconv.ParseUint(seq, 10, 64)
	if err != nil {
		return TraceID{}, fmt.Errorf("proto: malformed trace id %q: %v", s, err)
	}
	return TraceID{Node: NodeID(n), Seq: q}, nil
}

// Request is a pending lock request as it travels through the tree and
// sits in local queues. Origin, TS, Priority and Trace never change as
// the request is forwarded.
type Request struct {
	Origin NodeID
	Mode   modes.Mode
	TS     Timestamp
	// Trace is the causal identity of the client operation that issued
	// this request. It rides with the request through forwards, queue
	// merges and token transfers so the eventual grant can be attributed
	// to the original acquire.
	Trace TraceID
	// Priority arbitrates queue order at the token node: higher values
	// are served first; equal priorities are FIFO by arrival. Zero is the
	// default (pure FIFO, the paper's base protocol); nonzero values
	// implement the strict priority ordering of Mueller's prioritized
	// token protocols that the paper builds on.
	Priority uint8
}

// Less orders requests by priority (higher first), then Lamport time,
// then origin. Queues use arrival order within a priority level; Less is
// the tie-breaking total order for deterministic merges in tests.
func (r Request) Less(o Request) bool {
	if r.Priority != o.Priority {
		return r.Priority > o.Priority
	}
	if r.TS != o.TS {
		return r.TS < o.TS
	}
	return r.Origin < o.Origin
}

// Message is one protocol message. A single struct (rather than an
// interface per kind) keeps the simulator allocation-free on the hot path
// and the codec trivial; unused fields are zero.
//
// Field order is layout-conscious, wide fields first and the sub-word
// scalars (Epoch, From, To, Kind, Mode, Owned, Frozen) packed together
// at the tail: this keeps the struct at 160 bytes — one malloc size
// class below the 176 a naive ordering costs — which matters because
// the simulator allocates one Message per delivery and the live path
// copies them per hop. The codec writes fields explicitly, so the
// declaration order has no wire significance.
type Message struct {
	Lock LockID
	TS   Timestamp // sender's Lamport time at send

	// KindRequest: the request being routed (Req.Origin may differ from
	// From when the request has been forwarded).
	Req Request

	// Seq is a per-(granter, grantee) sequence number: on KindGrant it
	// numbers the grant; on KindRelease it acknowledges the highest grant
	// sequence the releasing child has received from the addressee. It
	// lets a parent detect a release that crossed an in-flight grant and
	// fold the granted mode back into the child's recorded owned mode
	// (see internal/hlock). The Suzuki–Kasami baseline reuses it as the
	// request sequence number.
	Seq uint64

	// Queue is the old token's outstanding queue on KindToken (see the
	// Mode/Owned/Frozen comment below for the rest of the transfer
	// payload).
	Queue []Request

	// Vec is an optional per-node counter vector, used by the
	// Suzuki–Kasami baseline to ship the token's LN array. Empty for the
	// hierarchical protocol.
	Vec []uint64

	// Addr is a transport endpoint address (wire version 4), used only
	// by the membership kinds: on KindJoin it is the joiner's advertised
	// listen address; on KindJoinAck it is the responder's full member
	// list rendered in lockd's "id=host:port,..." peer syntax. Empty for
	// every other kind and for frames from pre-membership (v1–v3) peers.
	Addr string

	// Trace is the causal context of this message: for KindRequest it
	// equals Req.Trace; for KindGrant/KindToken it is the trace of the
	// request being served by the grant or transfer; for KindRelease and
	// KindFreeze it is the trace of the operation that triggered the
	// release or freeze push. Zero when the sender predates tracing
	// (wire version 1) or the operation was untraced.
	Trace TraceID

	// Epoch is the per-lock recovery epoch (wire version 3). Every token
	// regeneration round after a node crash bumps it; engines stamp it on
	// all protocol messages and fence (drop) frames whose epoch does not
	// match their own, which is what invalidates stale pre-crash tokens
	// and in-flight requests. Zero for locks that have never been through
	// recovery and for frames from pre-epoch (v1/v2) peers.
	Epoch uint32

	From NodeID
	To   NodeID
	Kind Kind

	// KindGrant: Mode is the granted mode; Frozen is the granter's frozen
	// set, inherited by the new child.
	// KindToken: Mode is the mode being granted by transfer; Owned is the
	// old token node's remaining owned mode (None if it keeps nothing, in
	// which case it does not join the new token's copyset); Queue is the
	// old token's outstanding queue; Frozen is carried for inheritance.
	// KindRelease: Owned is the child's new (weakened) owned mode.
	// KindFreeze: Frozen is the full replacement frozen set.
	Mode   modes.Mode
	Owned  modes.Mode
	Frozen modes.Set
}
