package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Link-layer framing for the TCP transport's optional reliable mode.
//
// A plain frame (WriteFrame/ReadFrame) carries exactly one message and
// relies on TCP alone, which loses in-flight frames on a connection
// reset. Reliable mode wraps every message in a link frame that carries a
// per-(sender, receiver) sequence number: the sender keeps frames in an
// unacked buffer until the receiver acknowledges them, retransmits the
// buffer on reconnection, and the receiver discards frames whose sequence
// number it has already delivered. Together these turn a connection reset
// into exactly-once, in-order delivery — a lost or duplicated Token frame
// becomes impossible while both endpoints live.
//
// Wire format (same uint32 length prefix as plain frames):
//
//	uint32  payload length (big endian)
//	byte    magic: 0xD1 (data) or 0xA1 (cumulative ack)
//	uint64  sequence number (big endian)
//	...     message payload as AppendMessage (data frames only)
//
// The magic bytes are disjoint from the plain-frame version byte, so a
// plain endpoint talking to a reliable endpoint (or vice versa) fails
// fast with a version error instead of mis-parsing.

// LinkType discriminates link frames.
type LinkType uint8

// Link frame types.
const (
	// LinkData carries one protocol message with its link sequence number.
	LinkData LinkType = 1
	// LinkAck is a cumulative acknowledgment: every data frame with
	// sequence ≤ Seq has been delivered.
	LinkAck LinkType = 2
)

const (
	linkMagicData byte = 0xD1
	linkMagicAck  byte = 0xA1
)

// AppendLinkData appends one sequenced data frame to dst and returns the
// extended slice. Like AppendFrame, several link frames appended to one
// buffer form a valid byte stream for write coalescing.
func AppendLinkData(dst []byte, seq uint64, m *Message) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, linkMagicData)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = AppendMessage(dst, m)
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// WriteLinkData writes one sequenced data frame. The encode buffer is
// pooled; steady state performs zero allocations.
func WriteLinkData(w io.Writer, seq uint64, m *Message) error {
	bp := getBuf()
	*bp = AppendLinkData((*bp)[:0], seq, m)
	_, err := w.Write(*bp)
	putBuf(bp)
	return err
}

// WriteLinkAck writes one cumulative ack frame.
func WriteLinkAck(w io.Writer, seq uint64) error {
	var buf [4 + 9]byte
	binary.BigEndian.PutUint32(buf[:4], 9)
	buf[4] = linkMagicAck
	binary.BigEndian.PutUint64(buf[5:], seq)
	_, err := w.Write(buf[:])
	return err
}

// ReadLinkFrame reads one link frame. For LinkData the message is
// returned; for LinkAck it is nil. The frame scratch buffer is pooled.
func ReadLinkFrame(r io.Reader) (LinkType, uint64, *Message, error) {
	bp := getBuf()
	defer putBuf(bp)
	buf, err := readPayload(r, bp, 9)
	if err != nil {
		if errors.Is(err, ErrBadFrame) {
			return 0, 0, nil, fmt.Errorf("%w: short link frame", ErrBadFrame)
		}
		return 0, 0, nil, err
	}
	n := uint32(len(buf))
	seq := binary.BigEndian.Uint64(buf[1:9])
	switch buf[0] {
	case linkMagicData:
		m, err := DecodeMessage(buf[9:])
		if err != nil {
			return 0, 0, nil, err
		}
		return LinkData, seq, m, nil
	case linkMagicAck:
		if n != 9 {
			return 0, 0, nil, fmt.Errorf("%w: ack frame with %d payload bytes", ErrBadFrame, n-9)
		}
		return LinkAck, seq, nil, nil
	case wireVersion:
		return 0, 0, nil, fmt.Errorf("%w: peer speaks plain framing, not the reliable link layer", ErrBadVersion)
	default:
		return 0, 0, nil, fmt.Errorf("%w: unknown link magic 0x%02x", ErrBadVersion, buf[0])
	}
}
