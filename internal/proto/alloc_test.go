//go:build !race

package proto

// Allocation regression tests for the pooled codec. The race detector
// instruments allocations and defeats testing.AllocsPerRun, so these are
// compiled out under -race; `make ci` runs them in the plain test pass.

import (
	"bytes"
	"io"
	"testing"
)

func allocMsg() *Message {
	return &Message{
		Kind: KindToken,
		Lock: 7,
		From: 2,
		To:   5,
		TS:   41,
		Seq:  9,
		Req:  Request{Origin: 2, Priority: 1, TS: 40},
	}
}

func TestWriteFrameAllocs(t *testing.T) {
	m := allocMsg()
	if got := testing.AllocsPerRun(200, func() {
		if err := WriteFrame(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("WriteFrame allocates %.1f objects/op, want 0", got)
	}
}

func TestAppendFrameAllocs(t *testing.T) {
	m := allocMsg()
	buf := make([]byte, 0, 1024)
	if got := testing.AllocsPerRun(200, func() {
		buf = AppendFrame(buf[:0], m)
	}); got != 0 {
		t.Errorf("AppendFrame allocates %.1f objects/op, want 0", got)
	}
}

func TestWriteLinkDataAllocs(t *testing.T) {
	m := allocMsg()
	if got := testing.AllocsPerRun(200, func() {
		if err := WriteLinkData(io.Discard, 3, m); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("WriteLinkData allocates %.1f objects/op, want 0", got)
	}
}

func TestReadFrameAllocs(t *testing.T) {
	// The loop recycles each decoded message, mirroring the transport's
	// steady state (deliver, then PutMessage): the whole read path —
	// frame buffer and Message both pooled — performs zero allocations.
	frame := AppendFrame(nil, allocMsg())
	r := bytes.NewReader(frame)
	if got := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		m, err := ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		PutMessage(m)
	}); got != 0 {
		t.Errorf("ReadFrame allocates %.1f objects/op, want 0", got)
	}
}

func TestReadLinkFrameAllocs(t *testing.T) {
	frame := AppendLinkData(nil, 12, allocMsg())
	r := bytes.NewReader(frame)
	if got := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		_, _, m, err := ReadLinkFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		PutMessage(m)
	}); got != 0 {
		t.Errorf("ReadLinkFrame allocates %.1f objects/op, want 0", got)
	}
}
