package proto

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"unsafe"

	"hierlock/internal/modes"
)

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock must read 0")
	}
	if c.Tick() != 1 || c.Tick() != 2 {
		t.Fatal("Tick must increment")
	}
	c.Witness(10)
	if c.Now() != 11 {
		t.Fatalf("Witness(10) then Now = %d, want 11", c.Now())
	}
	c.Witness(3) // older timestamp still advances by one
	if c.Now() != 12 {
		t.Fatalf("Witness(3) then Now = %d, want 12", c.Now())
	}
}

func TestRequestLess(t *testing.T) {
	a := Request{Origin: 1, TS: 5}
	b := Request{Origin: 2, TS: 5}
	c := Request{Origin: 0, TS: 6}
	if !a.Less(b) || b.Less(a) {
		t.Error("tie must break by origin")
	}
	if !a.Less(c) || c.Less(a) {
		t.Error("lower TS must order first")
	}
	if a.Less(a) {
		t.Error("irreflexive")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindRequest: "request", KindGrant: "grant", KindToken: "token",
		KindRelease: "release", KindFreeze: "freeze", KindInvalid: "invalid",
		KindProbe: "probe", KindClaim: "claim", KindRecovered: "recovered",
		KindHeartbeat: "heartbeat",
		Kind(200):     "invalid",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func sampleMessages() []*Message {
	return []*Message{
		{Kind: KindRequest, Lock: 7, From: 3, To: 4, TS: 99, Trace: TraceID{Node: 3, Seq: 98},
			Req: Request{Origin: 3, Mode: modes.W, TS: 98, Trace: TraceID{Node: 3, Seq: 98}}},
		{Kind: KindGrant, Lock: 1, From: 0, To: 5, TS: 1, Seq: 17,
			Mode: modes.R, Frozen: modes.MakeSet(modes.IW, modes.W),
			Trace: TraceID{Node: 5, Seq: ^uint64(0)}},
		{Kind: KindRelease, Lock: 3, From: 5, To: 0, TS: 2, Seq: ^uint64(0),
			Owned: modes.IR},
		{Kind: KindToken, Lock: 2, From: 9, To: 1, TS: 1234,
			Mode: modes.W, Owned: modes.IR, Epoch: 3,
			Queue: []Request{
				{Origin: 2, Mode: modes.IR, TS: 7, Trace: TraceID{Node: 2, Seq: 7}},
				{Origin: 8, Mode: modes.U, TS: 11, Priority: 2},
			},
			Vec: []uint64{0, 5, ^uint64(0), 17}},
		{Kind: KindProbe, Lock: 2, From: 0, To: 4, TS: 2000, Epoch: 4,
			Req: Request{Origin: 6}},
		{Kind: KindClaim, Lock: 2, From: 4, To: 0, TS: 2001, Epoch: 4,
			Owned: modes.R, Seq: 7},
		{Kind: KindRecovered, Lock: 2, From: 0, To: 4, TS: 2002, Epoch: 5,
			Req:   Request{Origin: 0},
			Queue: []Request{{Origin: 4, Mode: modes.R}}},
		{Kind: KindHeartbeat, From: 3, To: 4, TS: 2003},
		{Kind: KindJoin, From: 7, To: 0, TS: 3000, Addr: "10.0.0.7:8500"},
		{Kind: KindJoinAck, From: 0, To: 7, TS: 3001, Epoch: 5,
			Addr:  "0=h0:8500,1=h1:8500,7=h7:8500",
			Queue: []Request{{Origin: 0, TS: 42}}},
		{Kind: KindLeave, Lock: 3, From: 2, To: 0, TS: 3002, Epoch: 2,
			Vec: []uint64{1, 2, 3}},
		{Kind: KindLeaveAck, From: 0, To: 2, TS: 3003},
		{Kind: KindRelease, Lock: 0, From: 2, To: 0, TS: 5, Owned: modes.None},
		{Kind: KindFreeze, Lock: 88, From: 0, To: 6, TS: 42,
			Frozen: modes.MakeSet(modes.IR, modes.R, modes.U, modes.IW, modes.W)},
		{Kind: KindRequest, Lock: ^LockID(0), From: NoNode, To: NoNode, TS: ^Timestamp(0) - 1,
			Trace: TraceID{Node: NoNode, Seq: ^uint64(0)},
			Req:   Request{Origin: NoNode, Mode: modes.None, TS: 0, Trace: TraceID{Node: NoNode, Seq: ^uint64(0)}}},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for i, m := range sampleMessages() {
		buf := AppendMessage(nil, m)
		got, err := DecodeMessage(buf)
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("msg %d: round trip mismatch:\n in: %+v\nout: %+v", i, m, got)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("frame %d mismatch", i)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("%d leftover bytes", buf.Len())
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	valid := AppendMessage(nil, sampleMessages()[0])

	cases := map[string][]byte{
		"empty":       {},
		"short":       valid[:5],
		"bad version": append([]byte{99}, valid[1:]...),
		"bad kind":    func() []byte { b := bytes.Clone(valid); b[1] = 200; return b }(),
		"bad mode":    func() []byte { b := bytes.Clone(valid); b[34] = 77; return b }(),
		"bad owned":   func() []byte { b := bytes.Clone(valid); b[35] = 77; return b }(),
		"trailing":    append(bytes.Clone(valid), 0),
		"truncated":   valid[:len(valid)-2],
		// The request starts after the (empty) address field: 2 length
		// bytes past the fixed header; its mode byte is at offset 4.
		"bad req mode": func() []byte { b := bytes.Clone(valid); b[headerLen+2+4] = 99; return b }(),
	}
	for name, buf := range cases {
		if _, err := DecodeMessage(buf); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversize frame accepted")
	}
}

func TestDecodeRejectsHugeQueue(t *testing.T) {
	m := sampleMessages()[0]
	buf := AppendMessage(nil, m)
	// Patch the queue length field (last 4 bytes before queue entries; this
	// message has an empty queue so it is the final 4 bytes).
	buf[len(buf)-4] = 0xff
	buf[len(buf)-3] = 0xff
	buf[len(buf)-2] = 0xff
	buf[len(buf)-1] = 0xff
	if _, err := DecodeMessage(buf); err == nil {
		t.Error("huge queue length accepted")
	}
}

// TestQuickCodec fuzzes round-tripping of randomly generated messages.
func TestQuickCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randMode := func() modes.Mode { return modes.Mode(rng.Intn(6)) }
	f := func(lock uint64, from, to int32, ts uint64, frozen uint8, qn uint8) bool {
		m := &Message{
			Kind:   Kind(1 + rng.Intn(5)),
			Lock:   LockID(lock),
			From:   NodeID(from),
			To:     NodeID(to),
			TS:     Timestamp(ts),
			Mode:   randMode(),
			Owned:  randMode(),
			Frozen: modes.Set(frozen & 0x3e), // only bits for IR..W
			Trace:  TraceID{Node: NodeID(from), Seq: rng.Uint64()},
			Req:    Request{Origin: NodeID(from), Mode: randMode(), TS: Timestamp(ts)},
		}
		for i := 0; i < int(qn%8); i++ {
			m.Queue = append(m.Queue, Request{
				Origin: NodeID(rng.Int31()),
				Mode:   randMode(),
				TS:     Timestamp(rng.Uint64()),
				Trace:  TraceID{Node: NodeID(rng.Int31()), Seq: rng.Uint64()},
			})
		}
		got, err := DecodeMessage(AppendMessage(nil, m))
		return err == nil && reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeMessage(b *testing.B) {
	m := &Message{
		Kind: KindToken, Lock: 99, From: 3, To: 7, TS: 123456, Seq: 42,
		Mode: modes.W, Owned: modes.IR, Frozen: modes.MakeSet(modes.IW),
		Queue: []Request{
			{Origin: 1, Mode: modes.R, TS: 10},
			{Origin: 2, Mode: modes.U, TS: 11, Priority: 3},
		},
	}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendMessage(buf[:0], m)
	}
}

func BenchmarkDecodeMessage(b *testing.B) {
	m := &Message{
		Kind: KindToken, Lock: 99, From: 3, To: 7, TS: 123456, Seq: 42,
		Mode: modes.W, Owned: modes.IR, Frozen: modes.MakeSet(modes.IW),
		Queue: []Request{
			{Origin: 1, Mode: modes.R, TS: 10},
			{Origin: 2, Mode: modes.U, TS: 11, Priority: 3},
		},
	}
	buf := AppendMessage(nil, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMessage(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// Message's field order packs the sub-word scalars together to stay at
// 160 bytes, one malloc size class below a naive layout: the simulator
// allocates one per delivery and the live path copies them per hop, so
// an accidental 16-byte growth shows up as a several-percent hit on
// message-heavy protocols. If a new field genuinely needs the space,
// update this bound together with the layout note on the struct.
func TestMessageStaysInSizeClass(t *testing.T) {
	if got := unsafe.Sizeof(Message{}); got > 160 {
		t.Fatalf("proto.Message is %d bytes, budget 160: repack the field order (see the layout comment) or raise the budget deliberately", got)
	}
}
