// Package trace records protocol-level events — message sends and
// deliveries, client operations, grants and releases — into a bounded
// ring buffer for debugging, post-hoc invariant checking and test
// assertions. The simulator and cluster runtime emit into a Recorder when
// one is attached; recording costs nothing when disabled (nil Recorder).
package trace

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// Op classifies a trace entry.
type Op uint8

// Trace entry kinds.
const (
	OpSend    Op = iota + 1 // a protocol message was sent
	OpDeliver               // a protocol message was delivered
	OpAcquire               // a client issued an acquire/upgrade
	OpGranted               // a client request was granted
	OpRelease               // a client released a lock
	OpDrop                  // fault injection: a frame was dropped (and retransmitted)
	OpDup                   // fault injection: a duplicate frame was generated (and suppressed)
	OpDefer                 // fault injection: delivery deferred by a partition or crash
	OpLost                  // fault injection: a frame destroyed for good by a crash (LoseOnCrash)
	OpRestart               // a crashed node came back up (Epoch: rejoin epoch, 0 = disk lost)
	OpJoin                  // a node joined the running cluster (Epoch: adopted epoch floor)
	OpLeave                 // a node left gracefully (Lock count of handed-off tokens in Epoch)
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpSend:
		return "send"
	case OpDeliver:
		return "deliver"
	case OpAcquire:
		return "acquire"
	case OpGranted:
		return "granted"
	case OpRelease:
		return "release"
	case OpDrop:
		return "drop"
	case OpDup:
		return "dup"
	case OpDefer:
		return "defer"
	case OpLost:
		return "lost"
	case OpRestart:
		return "restart"
	case OpJoin:
		return "join"
	case OpLeave:
		return "leave"
	default:
		// The zero Op (and any out-of-range value) is a corrupt or
		// uninitialized entry; print the numeric value so it is
		// distinguishable from every valid op.
		return fmt.Sprintf("invalid(%d)", uint8(o))
	}
}

// Entry is one recorded event.
type Entry struct {
	Seq  uint64        // monotonically increasing per recorder
	At   time.Duration // virtual (simulator) or wall-relative time
	Op   Op
	Node proto.NodeID // acting node (sender for sends, receiver for delivers)
	Lock proto.LockID
	Mode modes.Mode
	// Message fields (OpSend / OpDeliver and the fault ops only).
	Kind     proto.Kind
	From, To proto.NodeID
	// Epoch is the message's recovery epoch (OpSend / OpDeliver / OpLost);
	// the audit layer keys token conservation per (lock, epoch) with it.
	Epoch uint32
	// Trace is the causal identity of the client operation this event
	// belongs to (zero when untraced). Entries sharing a Trace across the
	// per-node buffers of a cluster are one operation's causal path; see
	// AssembleCausal.
	Trace proto.TraceID
}

// String renders the entry compactly.
func (e Entry) String() string {
	tr := ""
	if !e.Trace.IsZero() {
		tr = " trace=" + e.Trace.String()
	}
	switch e.Op {
	case OpSend, OpDeliver, OpDrop, OpDup, OpDefer, OpLost:
		ep := ""
		if e.Epoch != 0 {
			ep = fmt.Sprintf(" epoch=%d", e.Epoch)
		}
		return fmt.Sprintf("%8.3fs #%d %-7s %v %d→%d lock=%d mode=%v%s%s",
			e.At.Seconds(), e.Seq, e.Op, e.Kind, e.From, e.To, e.Lock, e.Mode, tr, ep)
	default:
		return fmt.Sprintf("%8.3fs #%d %-7s node=%d lock=%d mode=%v%s",
			e.At.Seconds(), e.Seq, e.Op, e.Node, e.Lock, e.Mode, tr)
	}
}

// Recorder is a bounded ring buffer of entries. The zero value is not
// usable; construct with New. Safe for concurrent use.
type Recorder struct {
	// disabled pauses recording when set (SetEnabled(false)). Checked
	// before the mutex so a paused recorder costs one atomic load.
	disabled atomic.Bool

	// tap, when set, observes every entry offered to the recorder —
	// before ring admission, regardless of capacity eviction and of the
	// pause state — so an online checker (internal/audit) sees the
	// complete event stream even while the debug ring is paused or
	// churning. The callback runs on the recording goroutine and must not
	// block or call back into the Recorder.
	tap atomic.Pointer[func(Entry)]

	mu      sync.Mutex
	entries []Entry
	next    int
	full    bool
	seq     uint64
	dropped uint64
}

// SetTap installs fn as the recorder's observer (nil removes it). See the
// tap field for the delivery contract. No-op on a nil recorder.
func (r *Recorder) SetTap(fn func(Entry)) {
	if r == nil {
		return
	}
	if fn == nil {
		r.tap.Store(nil)
		return
	}
	r.tap.Store(&fn)
}

// AddTap chains fn behind any tap already installed, so several
// consumers (the protocol auditor, the flight recorder) can observe
// the same stream. Each added tap shares the installed tap's delivery
// contract: called on the recording goroutine, must not block or call
// back into the Recorder. No-op on a nil recorder or nil fn.
func (r *Recorder) AddTap(fn func(Entry)) {
	if r == nil || fn == nil {
		return
	}
	prev := r.tap.Load()
	if prev == nil {
		r.SetTap(fn)
		return
	}
	first := *prev
	r.SetTap(func(e Entry) {
		first(e)
		fn(e)
	})
}

// SetEnabled starts or pauses recording at runtime. Entries recorded
// while paused are discarded; the retained ring is left untouched.
// No-op on a nil recorder.
func (r *Recorder) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.disabled.Store(!on)
}

// Enabled reports whether the recorder is accepting entries (false for
// nil).
func (r *Recorder) Enabled() bool {
	return r != nil && !r.disabled.Load()
}

// New creates a recorder that retains the most recent capacity entries.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{entries: make([]Entry, capacity)}
}

// Record appends an entry (nil recorders discard silently, so call sites
// need no guards). An installed tap observes the entry first — with its
// Seq still unassigned — even when the ring is paused.
func (r *Recorder) Record(e Entry) {
	if r == nil {
		return
	}
	if fn := r.tap.Load(); fn != nil {
		(*fn)(e)
	}
	if r.disabled.Load() {
		return
	}
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	if r.full {
		r.dropped++
	}
	r.entries[r.next] = e
	r.next++
	if r.next == len(r.entries) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len returns the number of retained entries.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.entries)
	}
	return r.next
}

// Dropped returns how many entries were evicted from the ring.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Entries returns the retained entries in order.
func (r *Recorder) Entries() []Entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Entry(nil), r.entries[:r.next]...)
	}
	out := make([]Entry, 0, len(r.entries))
	out = append(out, r.entries[r.next:]...)
	out = append(out, r.entries[:r.next]...)
	return out
}

// Filter returns the retained entries matching keep.
func (r *Recorder) Filter(keep func(Entry) bool) []Entry {
	var out []Entry
	for _, e := range r.Entries() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// String renders the whole retained trace.
func (r *Recorder) String() string {
	var b strings.Builder
	for _, e := range r.Entries() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CheckFIFO verifies from the retained trace that deliveries on every
// ordered (from, to) link happened in send order: the i-th delivery on a
// link must carry the same (kind, lock, mode) as the i-th send on it. It
// returns a description of the first violation, or "" if none is
// observable. Only meaningful when the ring retained the whole run.
func (r *Recorder) CheckFIFO() string {
	type link struct{ from, to proto.NodeID }
	type sig struct {
		kind proto.Kind
		lock proto.LockID
		mode modes.Mode
	}
	sends := make(map[link][]sig)
	delivered := make(map[link]int)

	entries := r.Entries()
	for _, e := range entries {
		if e.Op == OpSend {
			l := link{e.From, e.To}
			sends[l] = append(sends[l], sig{e.Kind, e.Lock, e.Mode})
		}
	}
	for _, e := range entries {
		if e.Op != OpDeliver {
			continue
		}
		l := link{e.From, e.To}
		i := delivered[l]
		if i >= len(sends[l]) {
			return fmt.Sprintf("link %d→%d: delivery #%d with only %d sends retained",
				l.from, l.to, i+1, len(sends[l]))
		}
		want := sends[l][i]
		got := sig{e.Kind, e.Lock, e.Mode}
		if got != want {
			return fmt.Sprintf("link %d→%d: delivery #%d is %v/%d/%v, sent %v/%d/%v",
				l.from, l.to, i+1, got.kind, got.lock, got.mode, want.kind, want.lock, want.mode)
		}
		delivered[l]++
	}
	return ""
}

// Counts summarizes retained entries per op.
func (r *Recorder) Counts() map[Op]int {
	out := make(map[Op]int)
	for _, e := range r.Entries() {
		out[e.Op]++
	}
	return out
}
