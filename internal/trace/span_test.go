package trace_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
	"hierlock/internal/trace"
)

// acquireGrantTrace is a canonical remote acquisition on lock 7: node 2
// asks, node 0 forwards the token, node 2 is granted.
func acquireGrantTrace() []trace.Entry {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []trace.Entry{
		{At: ms(0), Op: trace.OpAcquire, Node: 2, Lock: 7, Mode: modes.W},
		{At: ms(1), Op: trace.OpSend, Node: 2, Lock: 7, Mode: modes.W, Kind: proto.KindRequest, From: 2, To: 0},
		{At: ms(150), Op: trace.OpDeliver, Node: 0, Lock: 7, Mode: modes.W, Kind: proto.KindRequest, From: 2, To: 0},
		{At: ms(151), Op: trace.OpSend, Node: 0, Lock: 7, Mode: modes.W, Kind: proto.KindToken, From: 0, To: 2},
		{At: ms(300), Op: trace.OpDeliver, Node: 2, Lock: 7, Mode: modes.W, Kind: proto.KindToken, From: 0, To: 2},
		{At: ms(301), Op: trace.OpGranted, Node: 2, Lock: 7, Mode: modes.W},
	}
}

func TestAssembleAcquireGrant(t *testing.T) {
	spans := trace.Assemble(acquireGrantTrace())
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	sp := spans[0]
	if !sp.Complete || sp.Node != 2 || sp.Lock != 7 || sp.Mode != modes.W {
		t.Fatalf("span: %+v", sp)
	}
	if sp.Duration() != 301*time.Millisecond {
		t.Fatalf("duration = %v", sp.Duration())
	}
	if len(sp.Steps) != 6 {
		t.Fatalf("steps = %d, want 6", len(sp.Steps))
	}
	if path := sp.TokenPath(); len(path) != 2 || path[0] != 0 || path[1] != 2 {
		t.Fatalf("token path = %v, want [0 2]", path)
	}
	out := sp.Format(true)
	if !strings.Contains(out, "granted in 301ms") || !strings.Contains(out, "token path: 0 → 2") {
		t.Fatalf("format:\n%s", out)
	}
	if strings.Count(out, "\n") < 7 {
		t.Fatalf("verbose format must list every step:\n%s", out)
	}
}

func TestAssembleIncompleteAndOrphan(t *testing.T) {
	entries := []trace.Entry{
		// A request still waiting at capture time.
		{At: 0, Op: trace.OpAcquire, Node: 1, Lock: 3, Mode: modes.R},
		// A grant whose acquire was evicted from the ring.
		{At: time.Second, Op: trace.OpGranted, Node: 4, Lock: 9, Mode: modes.U},
	}
	spans := trace.Assemble(entries)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Complete {
		t.Fatal("waiting request must be incomplete")
	}
	if spans[0].Duration() != 0 {
		t.Fatal("incomplete span has no duration")
	}
	if !strings.Contains(spans[0].Format(false), "waiting") {
		t.Fatalf("format: %s", spans[0].Format(false))
	}
	if !spans[1].Complete || spans[1].Node != 4 || len(spans[1].Steps) != 1 {
		t.Fatalf("orphan grant span: %+v", spans[1])
	}
}

func TestAssembleConcurrentRequesters(t *testing.T) {
	// Two nodes race for lock 5; a message on the lock while both wait
	// attaches to both spans, and each grant closes its own requester's
	// span (FIFO per node).
	entries := []trace.Entry{
		{At: 0, Op: trace.OpAcquire, Node: 1, Lock: 5, Mode: modes.W},
		{At: 1, Op: trace.OpAcquire, Node: 2, Lock: 5, Mode: modes.W},
		{At: 2, Op: trace.OpSend, Node: 0, Lock: 5, Kind: proto.KindToken, From: 0, To: 1},
		{At: 3, Op: trace.OpGranted, Node: 1, Lock: 5, Mode: modes.W},
		{At: 4, Op: trace.OpSend, Node: 1, Lock: 5, Kind: proto.KindToken, From: 1, To: 2},
		{At: 5, Op: trace.OpGranted, Node: 2, Lock: 5, Mode: modes.W},
	}
	spans := trace.Assemble(entries)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Node != 1 || !spans[0].Complete || spans[0].End != 3 {
		t.Fatalf("first span: %+v", spans[0])
	}
	if spans[1].Node != 2 || !spans[1].Complete || spans[1].End != 5 {
		t.Fatalf("second span: %+v", spans[1])
	}
	// Node 2's span saw both token hops: 0→1 while it waited, then 1→2.
	if path := spans[1].TokenPath(); len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 2 {
		t.Fatalf("token path = %v, want [0 1 2]", path)
	}
	// The closed span stops accruing steps: node 1's span must not
	// contain the 1→2 token send recorded after its grant.
	for _, e := range spans[0].Steps {
		if e.Kind == proto.KindToken && e.To == 2 {
			t.Fatalf("closed span accrued later steps: %+v", spans[0].Steps)
		}
	}
}

func TestTokenPathDedup(t *testing.T) {
	// Send and deliver of the same hop collapse to one hop.
	sp := &trace.Span{Steps: []trace.Entry{
		{Op: trace.OpSend, Kind: proto.KindToken, From: 0, To: 1},
		{Op: trace.OpDeliver, Kind: proto.KindToken, From: 0, To: 1},
		{Op: trace.OpSend, Kind: proto.KindToken, From: 1, To: 2},
		{Op: trace.OpDeliver, Kind: proto.KindToken, From: 1, To: 2},
	}}
	if path := sp.TokenPath(); len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 2 {
		t.Fatalf("path = %v, want [0 1 2]", path)
	}
	// A requester-side trace sees only the deliver.
	sp = &trace.Span{Steps: []trace.Entry{
		{Op: trace.OpDeliver, Kind: proto.KindToken, From: 0, To: 2},
	}}
	if path := sp.TokenPath(); len(path) != 2 || path[0] != 0 || path[1] != 2 {
		t.Fatalf("deliver-only path = %v, want [0 2]", path)
	}
	if (&trace.Span{}).TokenPath() != nil {
		t.Fatal("no token traffic must yield a nil path")
	}
}

func TestEntryJSONRoundTrip(t *testing.T) {
	in := trace.Entry{
		Seq: 42, At: 1500 * time.Microsecond, Op: trace.OpSend,
		Node: 1, Lock: 7, Mode: modes.IW, Kind: proto.KindToken, From: 1, To: 3,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	// Human-readable names ride along.
	for _, want := range []string{`"op":"send"`, `"kind":"token"`, `"mode":"IW"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("wire form missing %s: %s", want, data)
		}
	}
	var out trace.Entry
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestDumpLast(t *testing.T) {
	r := trace.New(16)
	for i := 0; i < 10; i++ {
		r.Record(trace.Entry{Op: trace.OpSend, Node: proto.NodeID(i)})
	}
	d := r.DumpLast(3)
	if !d.Enabled || len(d.Entries) != 3 || d.Entries[0].Node != 7 {
		t.Fatalf("dump: %+v", d)
	}
	if len(r.DumpLast(0).Entries) != 10 || len(r.DumpLast(100).Entries) != 10 {
		t.Fatal("n<=0 or oversized n must return everything")
	}

	// The dump round-trips through JSON (what lockctl consumes).
	data, err := json.Marshal(r.DumpLast(0))
	if err != nil {
		t.Fatal(err)
	}
	var back trace.Dump
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 10 || back.Entries[9].Node != 9 {
		t.Fatalf("dump round trip: %+v", back)
	}

	var nilRec *trace.Recorder
	nd := nilRec.DumpLast(5)
	if nd.Enabled || nd.Entries != nil {
		t.Fatalf("nil dump: %+v", nd)
	}
}
