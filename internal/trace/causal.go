package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// CausalPath is one client operation's cross-node lifecycle, rebuilt by
// merging the per-node trace buffers of a cluster on the operation's
// trace ID: the acquire at the origin, every request hop toward a
// granter, freezes the operation triggered, and the grant or token
// travel back — the live analogue of Figure 7's per-message-type
// breakdown, but for a single request.
type CausalPath struct {
	Trace  proto.TraceID
	Lock   proto.LockID
	Mode   modes.Mode   // requested (or finally granted) mode
	Origin proto.NodeID // the node that minted the trace ID
	// Start/End are the earliest and latest entry times. Times from
	// different nodes are only comparable when their recorders share a
	// clock (the simulator) or the processes started together, so treat
	// cross-node durations as approximate.
	Start, End time.Duration
	// Complete reports whether an OpGranted (or OpRelease, for release
	// traces) was observed at the origin.
	Complete bool
	// Steps holds the merged entries in causal order: within one node's
	// buffer recording order is kept, and a delivery is never placed
	// before its matching send when both were retained.
	Steps []Entry
	// Nodes lists the distinct nodes that recorded steps, in order of
	// first appearance.
	Nodes []proto.NodeID
}

// Hops returns the operation's message hops in causal order, collapsing
// each send/deliver pair into one hop.
func (p *CausalPath) Hops() []Entry {
	var hops []Entry
	type link struct {
		kind     proto.Kind
		from, to proto.NodeID
	}
	seen := make(map[link]int)
	emitted := make(map[link]int)
	for _, e := range p.Steps {
		switch e.Op {
		case OpSend:
			hops = append(hops, e)
			emitted[link{e.Kind, e.From, e.To}]++
		case OpDeliver:
			l := link{e.Kind, e.From, e.To}
			if seen[l] < emitted[l] {
				seen[l]++ // the deliver half of an already-emitted send
				continue
			}
			// Orphan delivery (its send was evicted or that peer's buffer
			// is missing): still a hop.
			hops = append(hops, e)
			emitted[l]++
			seen[l]++
		}
	}
	return hops
}

// ForwardedHops counts request hops sent by a node other than the
// origin — i.e. how many times the request was forwarded onward.
func (p *CausalPath) ForwardedHops() int {
	n := 0
	for _, h := range p.Hops() {
		if h.Kind == proto.KindRequest && h.From != p.Origin {
			n++
		}
	}
	return n
}

// Format renders the path for humans: a summary line, the hop chain, and
// (verbose) every merged step prefixed with the recording node.
func (p *CausalPath) Format(verbose bool) string {
	var b strings.Builder
	status := "in flight"
	if p.Complete {
		status = fmt.Sprintf("completed in ~%v", p.End-p.Start)
	}
	nodes := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		nodes[i] = fmt.Sprintf("%d", n)
	}
	fmt.Fprintf(&b, "trace %s lock=%d mode=%v origin=%d: %s (%d steps on %s)\n",
		p.Trace, p.Lock, p.Mode, p.Origin, status, len(p.Steps), strings.Join(nodes, ","))
	for _, h := range p.Hops() {
		note := ""
		if h.Kind == proto.KindRequest && h.From != p.Origin {
			note = "  (forwarded)"
		}
		fmt.Fprintf(&b, "  %-7s %d → %d%s\n", h.Kind, h.From, h.To, note)
	}
	if verbose {
		for _, e := range p.Steps {
			fmt.Fprintf(&b, "  [node %d] %s\n", e.Node, e.String())
		}
	}
	return b.String()
}

// AssembleCausal merges per-node trace dumps into one CausalPath per
// trace ID. Dumps sharing a non-NoNode Node are deduplicated (first
// wins), so fetching a peer twice is harmless. Entries without a trace
// ID are ignored — Assemble remains the tool for untraced buffers.
// Paths are ordered by (origin node, origin sequence) for deterministic
// output.
func AssembleCausal(dumps []Dump) []*CausalPath {
	seenNode := make(map[proto.NodeID]bool)
	perTrace := make(map[proto.TraceID][][]Entry)
	for _, d := range dumps {
		if d.Node != proto.NoNode {
			if seenNode[d.Node] {
				continue
			}
			seenNode[d.Node] = true
		}
		streams := make(map[proto.TraceID][]Entry)
		for _, e := range d.Entries {
			if e.Trace.IsZero() {
				continue
			}
			streams[e.Trace] = append(streams[e.Trace], e)
		}
		for id, s := range streams {
			perTrace[id] = append(perTrace[id], s)
		}
	}

	ids := make([]proto.TraceID, 0, len(perTrace))
	for id := range perTrace {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Node != ids[j].Node {
			return ids[i].Node < ids[j].Node
		}
		return ids[i].Seq < ids[j].Seq
	})

	paths := make([]*CausalPath, 0, len(ids))
	for _, id := range ids {
		paths = append(paths, assembleOne(id, perTrace[id]))
	}
	return paths
}

// assembleOne causally merges one trace's per-node streams. The merge is
// a constrained topological interleave: per-stream order is preserved,
// and a delivery waits for its matching send (counted per (kind, from,
// to) link) when any stream can still supply one. Eligible heads are
// taken in (At, Node) order; if nothing is eligible (the send was
// evicted or its node's buffer is absent) the earliest head is taken
// anyway, so partial captures still assemble.
func assembleOne(id proto.TraceID, streams [][]Entry) *CausalPath {
	type link struct {
		kind     proto.Kind
		from, to proto.NodeID
	}
	sendsAvail := make(map[link]int) // sends not yet emitted, by link
	for _, s := range streams {
		for _, e := range s {
			if e.Op == OpSend {
				sendsAvail[link{e.Kind, e.From, e.To}]++
			}
		}
	}
	sendsEmitted := make(map[link]int)
	deliversEmitted := make(map[link]int)

	idx := make([]int, len(streams))
	p := &CausalPath{Trace: id, Origin: id.Node}
	var nodeSeen = make(map[proto.NodeID]bool)
	total := 0
	for _, s := range streams {
		total += len(s)
	}

	for len(p.Steps) < total {
		best := -1
		bestBlocked := -1
		for i, s := range streams {
			if idx[i] >= len(s) {
				continue
			}
			e := s[idx[i]]
			blocked := false
			if e.Op == OpDeliver {
				l := link{e.Kind, e.From, e.To}
				// This delivery needs one more send than already emitted;
				// block only if some stream can still produce it.
				if sendsEmitted[l] <= deliversEmitted[l] && sendsAvail[l] > 0 {
					blocked = true
				}
			}
			better := func(cur int) bool {
				if cur < 0 {
					return true
				}
				c := streams[cur][idx[cur]]
				if e.At != c.At {
					return e.At < c.At
				}
				return e.Node < c.Node
			}
			if blocked {
				if better(bestBlocked) {
					bestBlocked = i
				}
			} else if better(best) {
				best = i
			}
		}
		if best < 0 {
			best = bestBlocked // partial capture: emit anyway
		}
		if best < 0 {
			break
		}
		e := streams[best][idx[best]]
		idx[best]++
		switch e.Op {
		case OpSend:
			sendsEmitted[link{e.Kind, e.From, e.To}]++
			sendsAvail[link{e.Kind, e.From, e.To}]--
		case OpDeliver:
			deliversEmitted[link{e.Kind, e.From, e.To}]++
		}
		if len(p.Steps) == 0 || e.At < p.Start {
			p.Start = e.At
		}
		if e.At > p.End {
			p.End = e.At
		}
		if !nodeSeen[e.Node] {
			nodeSeen[e.Node] = true
			p.Nodes = append(p.Nodes, e.Node)
		}
		switch e.Op {
		case OpAcquire:
			p.Mode = e.Mode
			p.Lock = e.Lock
		case OpGranted:
			p.Mode = e.Mode // authoritative (upgrades grant W)
			if e.Node == p.Origin {
				p.Complete = true
			}
		case OpRelease:
			if e.Node == p.Origin {
				p.Complete = true
			}
		}
		if p.Lock == 0 && e.Lock != 0 {
			p.Lock = e.Lock
		}
		p.Steps = append(p.Steps, e)
	}
	return p
}
