package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// Span is one client request's reconstructed lifecycle: from the
// OpAcquire that issued it, through the protocol traffic on its lock
// (request forwards, freezes, token transfers, grants), to the OpGranted
// that completed it. Steps holds every retained entry on the span's lock
// recorded while the span was open, in recording order; with concurrent
// requesters on one lock a message step can belong to several
// overlapping spans (message entries carry no request identity), which
// is the faithful rendering of a shared token's travel.
type Span struct {
	Lock proto.LockID
	Node proto.NodeID // requesting node
	Mode modes.Mode   // requested mode
	// Start and End are the acquire and grant times (virtual or
	// wall-relative, whatever the recorder's entries carry).
	Start, End time.Duration
	// Complete reports whether the grant was observed; incomplete spans
	// were still waiting when the trace was captured (or the ring evicted
	// the grant).
	Complete bool
	Steps    []Entry
}

// Duration returns End-Start for complete spans, 0 otherwise.
func (s *Span) Duration() time.Duration {
	if !s.Complete {
		return 0
	}
	return s.End - s.Start
}

// TokenPath reconstructs the token's travel path across nodes from the
// span's KindToken steps: the sequence of hops the token made while this
// request was outstanding, ending (for a transfer-granted request) at
// the requester. Send/deliver pairs of the same hop are collapsed; nil
// when the token never moved (copy grant or local acquisition).
func (s *Span) TokenPath() []proto.NodeID {
	var path []proto.NodeID
	for _, e := range s.Steps {
		if e.Kind != proto.KindToken || (e.Op != OpSend && e.Op != OpDeliver) {
			continue
		}
		if n := len(path); n > 1 && path[n-1] == e.To && path[n-2] == e.From {
			continue // the deliver of an already-recorded send (or vice versa)
		}
		if len(path) == 0 || path[len(path)-1] != e.From {
			path = append(path, e.From)
		}
		path = append(path, e.To)
	}
	return path
}

// Format renders the span for humans: a one-line summary, the token's
// travel path if any, and (verbose) every step.
func (s *Span) Format(verbose bool) string {
	var b strings.Builder
	status := "waiting"
	if s.Complete {
		status = fmt.Sprintf("granted in %v", s.Duration())
	}
	fmt.Fprintf(&b, "span lock=%d node=%d mode=%v at=%v: %s (%d steps)\n",
		s.Lock, s.Node, s.Mode, s.Start, status, len(s.Steps))
	if path := s.TokenPath(); len(path) > 0 {
		parts := make([]string, len(path))
		for i, n := range path {
			parts[i] = fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(&b, "  token path: %s\n", strings.Join(parts, " → "))
	}
	if verbose {
		for _, e := range s.Steps {
			fmt.Fprintf(&b, "  %s\n", e.String())
		}
	}
	return b.String()
}

// Assemble reconstructs spans from a trace in recording order. A span
// opens at an OpAcquire, collects every subsequent entry on its lock,
// and closes at the OpGranted on the same (node, lock). An OpGranted
// with no matching open span (its acquire was evicted from the ring, or
// it completes an upgrade traced only from the grant) yields a complete
// single-step span. Spans are returned in open order; incomplete ones
// are requests still in flight at capture time.
func Assemble(entries []Entry) []*Span {
	type key struct {
		node proto.NodeID
		lock proto.LockID
	}
	var spans []*Span
	open := make(map[key][]*Span) // FIFO per (node, lock) requester
	openByLock := make(map[proto.LockID][]*Span)

	removeFromLock := func(sp *Span) {
		byLock := openByLock[sp.Lock]
		for i, o := range byLock {
			if o == sp {
				openByLock[sp.Lock] = append(byLock[:i], byLock[i+1:]...)
				break
			}
		}
	}

	for _, e := range entries {
		switch e.Op {
		case OpAcquire:
			sp := &Span{Lock: e.Lock, Node: e.Node, Mode: e.Mode,
				Start: e.At, Steps: []Entry{e}}
			spans = append(spans, sp)
			k := key{e.Node, e.Lock}
			open[k] = append(open[k], sp)
			openByLock[e.Lock] = append(openByLock[e.Lock], sp)
		case OpGranted:
			k := key{e.Node, e.Lock}
			if q := open[k]; len(q) > 0 {
				sp := q[0]
				open[k] = q[1:]
				removeFromLock(sp)
				sp.Steps = append(sp.Steps, e)
				sp.End = e.At
				sp.Complete = true
				// The granted mode is authoritative (upgrades grant W).
				sp.Mode = e.Mode
			} else {
				spans = append(spans, &Span{Lock: e.Lock, Node: e.Node,
					Mode: e.Mode, Start: e.At, End: e.At, Complete: true,
					Steps: []Entry{e}})
			}
		default:
			for _, sp := range openByLock[e.Lock] {
				sp.Steps = append(sp.Steps, e)
			}
		}
	}
	return spans
}

// entryJSON is the wire form of an Entry: numeric codes for lossless
// round-trips plus human-readable names for direct consumption (jq,
// dashboards).
type entryJSON struct {
	Seq       uint64 `json:"seq"`
	AtUS      int64  `json:"at_us"`
	Op        string `json:"op"`
	OpCode    uint8  `json:"op_code"`
	Node      int32  `json:"node"`
	Lock      uint64 `json:"lock"`
	Mode      string `json:"mode"`
	ModeCode  uint8  `json:"mode_code"`
	Kind      string `json:"kind,omitempty"`
	KindCode  uint8  `json:"kind_code"`
	From      int32  `json:"from"`
	To        int32  `json:"to"`
	Trace     string `json:"trace,omitempty"`
	TraceNode int32  `json:"trace_node,omitempty"`
	TraceSeq  uint64 `json:"trace_seq,omitempty"`
}

// MarshalJSON renders the entry with both numeric codes and names.
func (e Entry) MarshalJSON() ([]byte, error) {
	j := entryJSON{
		Seq:      e.Seq,
		AtUS:     e.At.Microseconds(),
		Op:       e.Op.String(),
		OpCode:   uint8(e.Op),
		Node:     int32(e.Node),
		Lock:     uint64(e.Lock),
		Mode:     e.Mode.String(),
		ModeCode: uint8(e.Mode),
		KindCode: uint8(e.Kind),
		From:     int32(e.From),
		To:       int32(e.To),
	}
	if e.Kind != proto.KindInvalid {
		j.Kind = e.Kind.String()
	}
	if !e.Trace.IsZero() {
		j.Trace = e.Trace.String()
		j.TraceNode = int32(e.Trace.Node)
		j.TraceSeq = e.Trace.Seq
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores an entry from its wire form (numeric codes are
// authoritative; names are ignored).
func (e *Entry) UnmarshalJSON(data []byte) error {
	var j entryJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*e = Entry{
		Seq:   j.Seq,
		At:    time.Duration(j.AtUS) * time.Microsecond,
		Op:    Op(j.OpCode),
		Node:  proto.NodeID(j.Node),
		Lock:  proto.LockID(j.Lock),
		Mode:  modes.Mode(j.ModeCode),
		Kind:  proto.Kind(j.KindCode),
		From:  proto.NodeID(j.From),
		To:    proto.NodeID(j.To),
		Trace: proto.TraceID{Node: proto.NodeID(j.TraceNode), Seq: j.TraceSeq},
	}
	return nil
}

// Dump is the JSON document served by the /debug/trace endpoint and
// consumed by `lockctl trace`. Node identifies the reporting node
// (NoNode for a recorder not bound to a single node, e.g. the
// simulator's cluster-wide ring).
type Dump struct {
	Node    proto.NodeID `json:"node"`
	Enabled bool         `json:"enabled"`
	Dropped uint64       `json:"dropped"`
	Entries []Entry      `json:"entries"`
}

// ClusterDump bundles the trace buffers of several nodes, as served by
// /debug/trace in peer-merge mode and consumed by `lockctl trace
// --cluster`. Errors records peers whose buffer could not be fetched.
type ClusterDump struct {
	Nodes  []Dump            `json:"nodes"`
	Errors map[string]string `json:"errors,omitempty"`
}

// Entries concatenates all per-node buffers (per-node order preserved).
func (c *ClusterDump) Entries() []Entry {
	var out []Entry
	for _, d := range c.Nodes {
		out = append(out, d.Entries...)
	}
	return out
}

// DumpLast captures the most recent n retained entries (all of them if
// n <= 0 or exceeds the retention) as a Dump. Nil-safe. The caller owns
// Node (DumpLast reports NoNode).
func (r *Recorder) DumpLast(n int) Dump {
	entries := r.Entries()
	if n > 0 && n < len(entries) {
		entries = entries[len(entries)-n:]
	}
	return Dump{Node: proto.NoNode, Enabled: r.Enabled(), Dropped: r.Dropped(), Entries: entries}
}
