package trace

import (
	"strings"
	"testing"
	"time"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// causalFixture builds the per-node dumps of a forwarded request served
// by token transfer: node 2 requests W, node 0 forwards to node 1, node
// 1 ships the token to node 2. Node 0's clock is skewed early so a naive
// timestamp sort would place its delivery before the matching send.
func causalFixture() (proto.TraceID, []Dump) {
	tr := proto.TraceID{Node: 2, Seq: 50}
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	origin := Dump{Node: 2, Entries: []Entry{
		{Op: OpAcquire, Node: 2, Lock: 7, Mode: modes.W, At: ms(10), Trace: tr},
		{Op: OpSend, Node: 2, Lock: 7, Mode: modes.W, Kind: proto.KindRequest, From: 2, To: 0, At: ms(11), Trace: tr},
		{Op: OpDeliver, Node: 2, Lock: 7, Mode: modes.W, Kind: proto.KindToken, From: 1, To: 2, At: ms(19), Trace: tr},
		{Op: OpGranted, Node: 2, Lock: 7, Mode: modes.W, At: ms(20), Trace: tr},
	}}
	router := Dump{Node: 0, Entries: []Entry{
		// Skewed: records its delivery "before" the origin's send time.
		{Op: OpDeliver, Node: 0, Lock: 7, Mode: modes.W, Kind: proto.KindRequest, From: 2, To: 0, At: ms(2), Trace: tr},
		{Op: OpSend, Node: 0, Lock: 7, Mode: modes.W, Kind: proto.KindRequest, From: 0, To: 1, At: ms(3), Trace: tr},
	}}
	granter := Dump{Node: 1, Entries: []Entry{
		{Op: OpDeliver, Node: 1, Lock: 7, Mode: modes.W, Kind: proto.KindRequest, From: 0, To: 1, At: ms(15), Trace: tr},
		{Op: OpSend, Node: 1, Lock: 7, Mode: modes.W, Kind: proto.KindToken, From: 1, To: 2, At: ms(16), Trace: tr},
	}}
	return tr, []Dump{granter, origin, router} // deliberately out of order
}

func TestAssembleCausal(t *testing.T) {
	tr, dumps := causalFixture()
	paths := AssembleCausal(dumps)
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
	p := paths[0]
	if p.Trace != tr || p.Origin != 2 || p.Lock != 7 || p.Mode != modes.W {
		t.Fatalf("path header: %+v", p)
	}
	if !p.Complete {
		t.Fatal("grant at origin must complete the path")
	}
	if len(p.Steps) != 8 {
		t.Fatalf("steps = %d, want 8", len(p.Steps))
	}

	// Causality: every delivery after its matching send, despite node 0's
	// skewed clock.
	pos := func(op Op, kind proto.Kind, from, to proto.NodeID) int {
		for i, e := range p.Steps {
			if e.Op == op && e.Kind == kind && e.From == from && e.To == to {
				return i
			}
		}
		t.Fatalf("step %v %v %d->%d not found", op, kind, from, to)
		return -1
	}
	for _, hop := range [][2]proto.NodeID{{2, 0}, {0, 1}} {
		if pos(OpSend, proto.KindRequest, hop[0], hop[1]) > pos(OpDeliver, proto.KindRequest, hop[0], hop[1]) {
			t.Errorf("request %d->%d delivered before sent", hop[0], hop[1])
		}
	}
	if pos(OpSend, proto.KindToken, 1, 2) > pos(OpDeliver, proto.KindToken, 1, 2) {
		t.Error("token delivered before sent")
	}

	if got := p.ForwardedHops(); got != 1 {
		t.Errorf("ForwardedHops = %d, want 1", got)
	}
	hops := p.Hops()
	if len(hops) != 3 {
		t.Fatalf("hops = %d, want 3 (request, forward, token)", len(hops))
	}
	out := p.Format(false)
	for _, want := range []string{"trace n2.50", "(forwarded)", "request 2 → 0", "request 0 → 1", "token   1 → 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

// TestAssembleCausalPartial drops the forwarding node's buffer: the
// orphaned delivery must still be placed (fallback) and the path still
// completes.
func TestAssembleCausalPartial(t *testing.T) {
	_, dumps := causalFixture()
	partial := []Dump{dumps[0], dumps[1]} // granter + origin, no router
	paths := AssembleCausal(partial)
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
	p := paths[0]
	if !p.Complete || len(p.Steps) != 6 {
		t.Fatalf("partial path: complete=%v steps=%d", p.Complete, len(p.Steps))
	}
	// The request delivery at node 1 has no retained send — it must still
	// appear as a hop.
	if len(p.Hops()) != 3 {
		t.Fatalf("hops = %d, want 3", len(p.Hops()))
	}
}

// TestAssembleCausalDedup feeds the same node's dump twice; the
// duplicate must be ignored.
func TestAssembleCausalDedup(t *testing.T) {
	_, dumps := causalFixture()
	paths := AssembleCausal(append(dumps, dumps[1]))
	if len(paths) != 1 || len(paths[0].Steps) != 8 {
		t.Fatalf("dedup failed: %d paths, %d steps", len(paths), len(paths[0].Steps))
	}
}

// TestAssembleCausalMultipleTraces checks traces are split and ordered
// by (origin node, sequence).
func TestAssembleCausalMultipleTraces(t *testing.T) {
	trA := proto.TraceID{Node: 1, Seq: 5}
	trB := proto.TraceID{Node: 0, Seq: 9}
	d := Dump{Node: 0, Entries: []Entry{
		{Op: OpAcquire, Node: 0, Lock: 1, Mode: modes.R, Trace: trB},
		{Op: OpDeliver, Node: 0, Kind: proto.KindRequest, From: 1, To: 0, Lock: 2, Mode: modes.W, Trace: trA},
		{Op: OpGranted, Node: 0, Lock: 1, Mode: modes.R, Trace: trB},
		{Op: OpSend, Node: 0, Kind: proto.KindToken, From: 0, To: 1, Lock: 2, Mode: modes.W, Trace: trA},
		{Op: OpRelease, Node: 0, Lock: 3, Mode: modes.R}, // untraced: ignored
	}}
	paths := AssembleCausal([]Dump{d})
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	if paths[0].Trace != trB || paths[1].Trace != trA {
		t.Fatalf("order: %v, %v", paths[0].Trace, paths[1].Trace)
	}
	if !paths[0].Complete {
		t.Error("trB granted at origin must be complete")
	}
	if paths[1].Complete {
		t.Error("trA has no grant at origin; must be incomplete")
	}
}
