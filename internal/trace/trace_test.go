package trace_test

import (
	"strings"
	"testing"
	"time"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
	"hierlock/internal/trace"
)

func TestRecorderBasics(t *testing.T) {
	r := trace.New(8)
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("fresh recorder must be empty")
	}
	r.Record(trace.Entry{Op: trace.OpAcquire, Node: 1, Lock: 2, Mode: modes.R})
	r.Record(trace.Entry{Op: trace.OpGranted, Node: 1, Lock: 2, Mode: modes.R})
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	es := r.Entries()
	if es[0].Seq != 1 || es[1].Seq != 2 {
		t.Fatalf("sequence numbering: %+v", es)
	}
	if es[0].Op != trace.OpAcquire || es[1].Op != trace.OpGranted {
		t.Fatalf("order: %+v", es)
	}
	if got := r.Counts(); got[trace.OpAcquire] != 1 || got[trace.OpGranted] != 1 {
		t.Fatalf("counts: %v", got)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := trace.New(4)
	for i := 0; i < 10; i++ {
		r.Record(trace.Entry{Op: trace.OpSend, Node: proto.NodeID(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	es := r.Entries()
	// Oldest retained is entry #7 (node 6).
	if es[0].Node != 6 || es[3].Node != 9 {
		t.Fatalf("ring order: %+v", es)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *trace.Recorder
	r.Record(trace.Entry{}) // must not panic
	if r.Len() != 0 || r.Entries() != nil || r.Dropped() != 0 {
		t.Fatal("nil recorder must behave as empty")
	}
}

func TestFilterAndString(t *testing.T) {
	r := trace.New(16)
	r.Record(trace.Entry{At: time.Second, Op: trace.OpSend, Kind: proto.KindRequest, From: 0, To: 1, Lock: 5, Mode: modes.W})
	r.Record(trace.Entry{At: 2 * time.Second, Op: trace.OpGranted, Node: 1, Lock: 5, Mode: modes.W})
	sends := r.Filter(func(e trace.Entry) bool { return e.Op == trace.OpSend })
	if len(sends) != 1 || sends[0].Kind != proto.KindRequest {
		t.Fatalf("filter: %+v", sends)
	}
	s := r.String()
	if !strings.Contains(s, "send") || !strings.Contains(s, "granted") || !strings.Contains(s, "request") {
		t.Fatalf("render:\n%s", s)
	}
	for _, op := range []trace.Op{trace.OpSend, trace.OpDeliver, trace.OpAcquire, trace.OpGranted, trace.OpRelease, trace.Op(99)} {
		if op.String() == "" {
			t.Fatal("op must render")
		}
	}
}

func TestOpString(t *testing.T) {
	cases := []struct {
		op   trace.Op
		want string
	}{
		{trace.Op(0), "invalid(0)"}, // the zero value must be distinguishable
		{trace.OpSend, "send"},
		{trace.OpDeliver, "deliver"},
		{trace.OpAcquire, "acquire"},
		{trace.OpGranted, "granted"},
		{trace.OpRelease, "release"},
		{trace.OpDrop, "drop"},
		{trace.OpDup, "dup"},
		{trace.OpDefer, "defer"},
		{trace.Op(99), "invalid(99)"},
		{trace.Op(255), "invalid(255)"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("Op(%d).String() = %q, want %q", uint8(c.op), got, c.want)
		}
	}
}

func TestSetEnabled(t *testing.T) {
	r := trace.New(8)
	if !r.Enabled() {
		t.Fatal("fresh recorder must be enabled")
	}
	r.Record(trace.Entry{Op: trace.OpSend})
	r.SetEnabled(false)
	if r.Enabled() {
		t.Fatal("disable must be observable")
	}
	r.Record(trace.Entry{Op: trace.OpSend}) // discarded
	if r.Len() != 1 {
		t.Fatalf("paused recorder retained a new entry: len=%d", r.Len())
	}
	r.SetEnabled(true)
	r.Record(trace.Entry{Op: trace.OpSend})
	if r.Len() != 2 {
		t.Fatalf("re-enabled recorder must record: len=%d", r.Len())
	}

	var nilRec *trace.Recorder
	nilRec.SetEnabled(true) // must not panic
	if nilRec.Enabled() {
		t.Fatal("nil recorder is never enabled")
	}
}

// TestDisabledRecordAllocatesNothing is the benchmark guard for the
// disabled fast path: recording through a nil recorder and a paused
// recorder must add zero allocations per protocol step.
func TestDisabledRecordAllocatesNothing(t *testing.T) {
	var nilRec *trace.Recorder
	paused := trace.New(8)
	paused.SetEnabled(false)
	e := trace.Entry{Op: trace.OpSend, Kind: proto.KindToken, From: 1, To: 2, Lock: 3}
	if n := testing.AllocsPerRun(100, func() {
		nilRec.Record(e)
		paused.Record(e)
	}); n != 0 {
		t.Fatalf("disabled recorders allocated %.1f times per record", n)
	}
}

func TestCheckFIFO(t *testing.T) {
	r := trace.New(64)
	// Two sends, delivered in order: OK.
	r.Record(trace.Entry{Op: trace.OpSend, From: 0, To: 1, Kind: proto.KindRequest, Lock: 1, Mode: modes.R})
	r.Record(trace.Entry{Op: trace.OpSend, From: 0, To: 1, Kind: proto.KindGrant, Lock: 1, Mode: modes.R})
	r.Record(trace.Entry{Op: trace.OpDeliver, From: 0, To: 1, Kind: proto.KindRequest, Lock: 1, Mode: modes.R})
	r.Record(trace.Entry{Op: trace.OpDeliver, From: 0, To: 1, Kind: proto.KindGrant, Lock: 1, Mode: modes.R})
	if v := r.CheckFIFO(); v != "" {
		t.Fatalf("unexpected violation: %s", v)
	}

	// Reordered deliveries: violation.
	r2 := trace.New(64)
	r2.Record(trace.Entry{Op: trace.OpSend, From: 0, To: 1, Kind: proto.KindRequest, Lock: 1})
	r2.Record(trace.Entry{Op: trace.OpSend, From: 0, To: 1, Kind: proto.KindGrant, Lock: 1})
	r2.Record(trace.Entry{Op: trace.OpDeliver, From: 0, To: 1, Kind: proto.KindGrant, Lock: 1})
	if v := r2.CheckFIFO(); v == "" {
		t.Fatal("reordering not detected")
	}

	// More deliveries than sends: violation.
	r3 := trace.New(64)
	r3.Record(trace.Entry{Op: trace.OpDeliver, From: 2, To: 3, Kind: proto.KindToken, Lock: 9})
	if v := r3.CheckFIFO(); v == "" {
		t.Fatal("orphan delivery not detected")
	}
}
