package trace_test

import (
	"testing"

	"hierlock/internal/proto"
	"hierlock/internal/trace"
)

func benchEntry(i int) trace.Entry {
	return trace.Entry{Op: trace.OpSend, Kind: proto.KindRequest,
		From: proto.NodeID(i % 8), To: proto.NodeID((i + 1) % 8), Lock: 3}
}

func BenchmarkRecord(b *testing.B) {
	r := trace.New(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(benchEntry(i))
	}
}

func BenchmarkRecordNil(b *testing.B) {
	var r *trace.Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(benchEntry(i))
	}
}

func BenchmarkRecordPaused(b *testing.B) {
	r := trace.New(4096)
	r.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(benchEntry(i))
	}
}

func BenchmarkAssemble(b *testing.B) {
	r := trace.New(4096)
	for i := 0; i < 4096/4; i++ {
		n := proto.NodeID(i % 8)
		r.Record(trace.Entry{Op: trace.OpAcquire, Node: n, Lock: 3})
		r.Record(trace.Entry{Op: trace.OpSend, Kind: proto.KindToken, From: 0, To: n, Lock: 3})
		r.Record(trace.Entry{Op: trace.OpGranted, Node: n, Lock: 3})
		r.Record(trace.Entry{Op: trace.OpRelease, Node: n, Lock: 3})
	}
	entries := r.Entries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if spans := trace.Assemble(entries); len(spans) == 0 {
			b.Fatal("no spans")
		}
	}
}
