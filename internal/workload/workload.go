// Package workload implements the paper's evaluation workload: a
// multi-airline reservation system sharing a fare table. Each table entry
// has its own lock and the whole table has a coarser lock; application
// instances on every node issue randomized lock requests with the paper's
// mode mix (IR 80 %, R 10 %, U 4 %, IW 5 %, W 1 %), randomized
// critical-section lengths (mean 15 ms) and inter-request idle times
// (mean 150 ms).
//
// The same logical workload maps onto the three protocol configurations
// the paper compares:
//
//   - Hierarchical (ours): entry accesses take the table lock in an
//     intention mode plus the entry lock; whole-table accesses take the
//     table lock alone. U-mode requests read under U, then upgrade to W.
//   - Naimi "same work": entry accesses take the entry's exclusive lock;
//     whole-table accesses take every entry lock in ascending order (the
//     deadlock-avoiding total order the paper describes).
//   - Naimi "pure": a single global exclusive lock serves every request,
//     reproducing the original Naimi et al. measurement as a baseline.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"hierlock/internal/cluster"
	"hierlock/internal/metrics"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
	"hierlock/internal/sim"
)

// Mapping selects how the logical workload maps onto locks.
type Mapping uint8

// The three configurations of the paper's §4.
const (
	// Hierarchical uses the paper's protocol with intention modes.
	Hierarchical Mapping = iota
	// SameWork uses Naimi's protocol with per-entry exclusive locks,
	// acquiring all of them (in order) for whole-table operations.
	SameWork
	// Pure uses Naimi's protocol with one global lock.
	Pure
	// PureRaymond is the Pure workload on Raymond's static-tree
	// algorithm (related-work baseline).
	PureRaymond
	// PureSuzuki is the Pure workload on the Suzuki–Kasami broadcast
	// algorithm (related-work baseline).
	PureSuzuki
	// PureRicart is the Pure workload on the Ricart–Agrawala
	// permission-based algorithm (related-work baseline).
	PureRicart
)

// String names the mapping as in the paper's figure legends.
func (m Mapping) String() string {
	switch m {
	case SameWork:
		return "naimi-same-work"
	case Pure:
		return "naimi-pure"
	case PureRaymond:
		return "raymond"
	case PureSuzuki:
		return "suzuki-kasami"
	case PureRicart:
		return "ricart-agrawala"
	default:
		return "our-protocol"
	}
}

// Protocol returns the cluster protocol the mapping runs on.
func (m Mapping) Protocol() cluster.Protocol {
	switch m {
	case Hierarchical:
		return cluster.Hierarchical
	case PureRaymond:
		return cluster.Raymond
	case PureSuzuki:
		return cluster.Suzuki
	case PureRicart:
		return cluster.Ricart
	default:
		return cluster.Naimi
	}
}

// Mix is a lock-request mode mix in percent.
type Mix struct {
	IR, R, U, IW, W int
}

// PaperMix is the request mix of the paper's experiments.
var PaperMix = Mix{IR: 80, R: 10, U: 4, IW: 5, W: 1}

func (m Mix) total() int { return m.IR + m.R + m.U + m.IW + m.W }

// Valid reports whether the mix has positive weight.
func (m Mix) Valid() bool {
	return m.IR >= 0 && m.R >= 0 && m.U >= 0 && m.IW >= 0 && m.W >= 0 && m.total() > 0
}

// pick draws a mode according to the mix.
func (m Mix) pick(rng *rand.Rand) modes.Mode {
	r := rng.Intn(m.total())
	switch {
	case r < m.IR:
		return modes.IR
	case r < m.IR+m.R:
		return modes.R
	case r < m.IR+m.R+m.U:
		return modes.U
	case r < m.IR+m.R+m.U+m.IW:
		return modes.IW
	default:
		return modes.W
	}
}

// Lock identifiers: the table lock is 0 (also the single global lock of
// the Pure mapping, and the database lock of the three-level layout);
// entry i's lock is 1+i.
const TableLock proto.LockID = 0

// EntryLock returns the lock protecting table entry i.
func EntryLock(i int) proto.LockID { return proto.LockID(1 + i) }

// tableLock3 returns table t's lock in the three-level layout.
func tableLock3(t int) proto.LockID { return proto.LockID(1 + t) }

// rowLock3 returns row r of table t's lock in the three-level layout.
func (cfg Config) rowLock3(t, r int) proto.LockID {
	return proto.LockID(1 + cfg.Tables + t*cfg.Entries + r)
}

// Config parameterizes the workload.
type Config struct {
	Mapping Mapping
	// Entries is the fare-table size (paper: unspecified; default 4 —
	// see EXPERIMENTS.md for the calibration).
	Entries int
	Mix     Mix
	// MeanCS and MeanIdle follow the paper: 15 ms and 150 ms.
	MeanCS   time.Duration
	MeanIdle time.Duration
	// Warmup discards statistics recorded before this virtual time, so
	// reported numbers reflect the steady state.
	Warmup time.Duration
	// HighPriorityPct makes this percentage of operations issue their
	// lock requests at high priority (hierarchical protocol only),
	// exercising the strict priority arbitration extension. Zero (the
	// default) is the paper's pure-FIFO protocol.
	HighPriorityPct int
	// HighPriority is the priority value used for high-priority
	// operations (default 9).
	HighPriority uint8
	// Tables switches the hierarchical mapping to a three-level
	// hierarchy — one database lock, Tables table locks, Entries rows per
	// table — exercising deeper multi-granularity locking than the
	// paper's two levels. Zero keeps the paper's table/entry layout.
	// Only valid with the Hierarchical mapping.
	Tables int
}

// Defaults for unset fields (the paper's parameters).
const (
	DefaultEntries  = 4
	DefaultMeanCS   = 15 * time.Millisecond
	DefaultMeanIdle = 150 * time.Millisecond
)

func (cfg Config) withDefaults() Config {
	if cfg.Entries <= 0 {
		cfg.Entries = DefaultEntries
	}
	if !cfg.Mix.Valid() {
		cfg.Mix = PaperMix
	}
	if cfg.MeanCS <= 0 {
		cfg.MeanCS = DefaultMeanCS
	}
	if cfg.MeanIdle <= 0 {
		cfg.MeanIdle = DefaultMeanIdle
	}
	if cfg.HighPriority == 0 {
		cfg.HighPriority = 9
	}
	return cfg
}

// Locks returns the lock set a cluster must host for this workload.
func (cfg Config) Locks() []proto.LockID {
	cfg = cfg.withDefaults()
	switch cfg.Mapping {
	case Pure, PureRaymond, PureSuzuki, PureRicart:
		return []proto.LockID{TableLock}
	case SameWork:
		locks := make([]proto.LockID, cfg.Entries)
		for i := range locks {
			locks[i] = EntryLock(i)
		}
		return locks
	default:
		if cfg.Tables > 0 {
			locks := make([]proto.LockID, 0, 1+cfg.Tables+cfg.Tables*cfg.Entries)
			locks = append(locks, TableLock) // the database lock
			for t := 0; t < cfg.Tables; t++ {
				locks = append(locks, tableLock3(t))
			}
			for t := 0; t < cfg.Tables; t++ {
				for r := 0; r < cfg.Entries; r++ {
					locks = append(locks, cfg.rowLock3(t, r))
				}
			}
			return locks
		}
		locks := make([]proto.LockID, 0, cfg.Entries+1)
		locks = append(locks, TableLock)
		for i := 0; i < cfg.Entries; i++ {
			locks = append(locks, EntryLock(i))
		}
		return locks
	}
}

// Stats aggregates what the paper's figures report.
type Stats struct {
	// Started counts operations that began after warmup; Started-Ops is
	// the number censored by the end of the measurement window (large
	// values mean the op-latency mean is an underestimate).
	Started uint64
	// Ops counts completed application operations.
	Ops uint64
	// OpsByMode counts completed operations by their drawn mode.
	OpsByMode map[modes.Mode]uint64
	// Requests counts lock-level requests issued after warmup (the
	// denominator of Figure 5; upgrades count as requests).
	Requests uint64
	// ReqLatency measures issue→grant per lock request (Figure 6).
	ReqLatency metrics.Latency
	// OpLatency measures op start→all locks held.
	OpLatency metrics.Latency
	// HighReqLatency / NormalReqLatency split ReqLatency by priority
	// class when HighPriorityPct > 0.
	HighReqLatency   metrics.Latency
	NormalReqLatency metrics.Latency
}

// step is one lock acquisition of an operation's plan.
type step struct {
	lock proto.LockID
	mode modes.Mode
}

// plan builds the lock-acquisition sequence for an operation of the given
// mode, and whether the operation performs a U→W upgrade mid-flight.
func plan(cfg Config, m modes.Mode, rng *rand.Rand) (steps []step, upgrade bool) {
	entry := rng.Intn(cfg.Entries)
	switch cfg.Mapping {
	case Pure, PureRaymond, PureSuzuki, PureRicart:
		return []step{{TableLock, m}}, false
	case SameWork:
		switch m {
		case modes.IR, modes.IW:
			return []step{{EntryLock(entry), modes.W}}, false
		default: // whole-table: every entry lock in ascending order
			steps = make([]step, cfg.Entries)
			for i := 0; i < cfg.Entries; i++ {
				steps[i] = step{EntryLock(i), modes.W}
			}
			return steps, false
		}
	default: // Hierarchical
		if cfg.Tables > 0 {
			// Three-level hierarchy: database → table → row.
			t := rng.Intn(cfg.Tables)
			switch m {
			case modes.IR: // read one row
				return []step{
					{TableLock, modes.IR},
					{tableLock3(t), modes.IR},
					{cfg.rowLock3(t, entry), modes.R},
				}, false
			case modes.IW: // write one row
				return []step{
					{TableLock, modes.IW},
					{tableLock3(t), modes.IW},
					{cfg.rowLock3(t, entry), modes.W},
				}, false
			case modes.R: // read one whole table
				return []step{{TableLock, modes.IR}, {tableLock3(t), modes.R}}, false
			case modes.U: // read-then-rewrite the database
				return []step{{TableLock, modes.U}}, true
			default: // W: rewrite one whole table
				return []step{{TableLock, modes.IW}, {tableLock3(t), modes.W}}, false
			}
		}
		switch m {
		case modes.IR:
			return []step{{TableLock, modes.IR}, {EntryLock(entry), modes.R}}, false
		case modes.IW:
			return []step{{TableLock, modes.IW}, {EntryLock(entry), modes.W}}, false
		case modes.U:
			return []step{{TableLock, modes.U}}, true
		default: // R, W on the whole table
			return []step{{TableLock, m}}, false
		}
	}
}

// Driver runs the workload on a cluster. Create with Attach; statistics
// accumulate into Stats().
type Driver struct {
	c     *cluster.Cluster
	cfg   Config
	stats Stats
	cs    sim.Dist
	idle  sim.Dist
	rngs  []*rand.Rand
}

// Attach creates a driver and starts one application loop per node. The
// cluster must have been built with cfg.Locks() and cfg.Mapping.Protocol().
func Attach(c *cluster.Cluster, cfg Config) (*Driver, error) {
	cfg = cfg.withDefaults()
	if cfg.Entries <= 0 {
		return nil, fmt.Errorf("workload: invalid entry count %d", cfg.Entries)
	}
	if cfg.Tables > 0 && cfg.Mapping != Hierarchical {
		return nil, fmt.Errorf("workload: three-level hierarchy requires the hierarchical mapping, got %v", cfg.Mapping)
	}
	d := &Driver{
		c:    c,
		cfg:  cfg,
		cs:   sim.Exponential(cfg.MeanCS),
		idle: sim.Exponential(cfg.MeanIdle),
	}
	d.stats.OpsByMode = make(map[modes.Mode]uint64)
	for i := range c.Nodes {
		d.rngs = append(d.rngs, c.Sim.NewRand())
		d.scheduleNext(i)
	}
	return d, nil
}

// Stats returns the accumulated statistics.
func (d *Driver) Stats() *Stats { return &d.stats }

func (d *Driver) scheduleNext(node int) {
	d.c.Sim.At(d.idle(d.rngs[node]), func() { d.startOp(node) })
}

func (d *Driver) startOp(node int) {
	rng := d.rngs[node]
	m := d.cfg.Mix.pick(rng)
	steps, upgrade := plan(d.cfg, m, rng)
	var prio uint8
	if d.cfg.HighPriorityPct > 0 && d.cfg.Mapping == Hierarchical &&
		rng.Intn(100) < d.cfg.HighPriorityPct {
		prio = d.cfg.HighPriority
	}
	opStart := d.c.Sim.Now()
	if d.warm() {
		d.stats.Started++
	}

	var acquire func(i int)
	finish := func() {
		if d.warm() {
			d.stats.Ops++
			d.stats.OpsByMode[m]++
			d.stats.OpLatency.Observe(d.c.Sim.Now() - opStart)
		}
		// Hold the critical section, upgrade if the op is an upgrade op,
		// then release in reverse order and go idle.
		d.c.Sim.At(d.cs(rng), func() {
			if upgrade {
				d.observeRequest(prio, func(done func()) {
					d.c.Nodes[node].UpgradePri(steps[0].lock, prio, done)
				}, func() {
					d.c.Sim.At(d.cs(rng), func() {
						d.releaseAll(node, steps)
					})
				})
				return
			}
			d.releaseAll(node, steps)
		})
	}
	acquire = func(i int) {
		if i == len(steps) {
			finish()
			return
		}
		st := steps[i]
		d.observeRequest(prio, func(done func()) {
			d.c.Nodes[node].AcquirePri(st.lock, st.mode, prio, done)
		}, func() { acquire(i + 1) })
	}
	acquire(0)
}

// observeRequest issues one lock-level request via issue and measures its
// latency; next continues the operation.
func (d *Driver) observeRequest(prio uint8, issue func(done func()), next func()) {
	start := d.c.Sim.Now()
	warm := d.warm()
	if warm {
		d.stats.Requests++
	}
	issue(func() {
		if warm {
			lat := d.c.Sim.Now() - start
			d.stats.ReqLatency.Observe(lat)
			if d.cfg.HighPriorityPct > 0 {
				if prio > 0 {
					d.stats.HighReqLatency.Observe(lat)
				} else {
					d.stats.NormalReqLatency.Observe(lat)
				}
			}
		}
		next()
	})
}

func (d *Driver) releaseAll(node int, steps []step) {
	for i := len(steps) - 1; i >= 0; i-- {
		d.c.Nodes[node].Release(steps[i].lock)
	}
	d.scheduleNext(node)
}

func (d *Driver) warm() bool { return d.c.Sim.Now() >= d.cfg.Warmup }
