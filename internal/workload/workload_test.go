package workload

import (
	"math/rand"
	"testing"
	"time"

	"hierlock/internal/cluster"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

func TestMixPick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := map[modes.Mode]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[PaperMix.pick(rng)]++
	}
	want := map[modes.Mode]float64{
		modes.IR: 0.80, modes.R: 0.10, modes.U: 0.04, modes.IW: 0.05, modes.W: 0.01,
	}
	for m, frac := range want {
		got := float64(counts[m]) / n
		if got < frac*0.9 || got > frac*1.1 {
			t.Errorf("mode %v frequency = %.4f, want ≈%.2f", m, got, frac)
		}
	}
}

func TestMixValid(t *testing.T) {
	if !PaperMix.Valid() {
		t.Fatal("paper mix must be valid")
	}
	if (Mix{}).Valid() {
		t.Fatal("zero mix must be invalid")
	}
	if (Mix{IR: -1, R: 2}).Valid() {
		t.Fatal("negative weight must be invalid")
	}
}

func TestLocks(t *testing.T) {
	cfg := Config{Mapping: Hierarchical, Entries: 3}
	if got := cfg.Locks(); len(got) != 4 || got[0] != TableLock || got[3] != EntryLock(2) {
		t.Fatalf("hierarchical locks = %v", got)
	}
	cfg.Mapping = SameWork
	if got := cfg.Locks(); len(got) != 3 || got[0] != EntryLock(0) {
		t.Fatalf("same-work locks = %v", got)
	}
	cfg.Mapping = Pure
	if got := cfg.Locks(); len(got) != 1 || got[0] != TableLock {
		t.Fatalf("pure locks = %v", got)
	}
}

func TestPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := Config{Mapping: Hierarchical, Entries: 4}.withDefaults()

	steps, up := plan(cfg, modes.IR, rng)
	if len(steps) != 2 || steps[0] != (step{TableLock, modes.IR}) || steps[1].mode != modes.R || up {
		t.Fatalf("IR plan = %v up=%v", steps, up)
	}
	steps, up = plan(cfg, modes.IW, rng)
	if len(steps) != 2 || steps[0].mode != modes.IW || steps[1].mode != modes.W || up {
		t.Fatalf("IW plan = %v", steps)
	}
	steps, up = plan(cfg, modes.U, rng)
	if len(steps) != 1 || steps[0] != (step{TableLock, modes.U}) || !up {
		t.Fatalf("U plan = %v up=%v", steps, up)
	}
	steps, _ = plan(cfg, modes.W, rng)
	if len(steps) != 1 || steps[0] != (step{TableLock, modes.W}) {
		t.Fatalf("W plan = %v", steps)
	}

	cfg.Mapping = SameWork
	steps, _ = plan(cfg, modes.R, rng)
	if len(steps) != 4 {
		t.Fatalf("same-work table op must take all %d locks, got %v", cfg.Entries, steps)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].lock <= steps[i-1].lock {
			t.Fatal("same-work locks must be in ascending order (deadlock avoidance)")
		}
	}
	steps, _ = plan(cfg, modes.IR, rng)
	if len(steps) != 1 {
		t.Fatalf("same-work entry op = %v", steps)
	}

	cfg.Mapping = Pure
	for _, m := range modes.All {
		steps, up = plan(cfg, m, rng)
		if len(steps) != 1 || steps[0].lock != TableLock || up {
			t.Fatalf("pure plan(%v) = %v", m, steps)
		}
	}
}

func TestMappingStrings(t *testing.T) {
	if Hierarchical.String() != "our-protocol" || SameWork.String() != "naimi-same-work" || Pure.String() != "naimi-pure" {
		t.Fatal("mapping names")
	}
	if Hierarchical.Protocol() != cluster.Hierarchical || Pure.Protocol() != cluster.Naimi {
		t.Fatal("mapping protocols")
	}
}

// runWorkload drives a full simulated run and returns the driver.
func runWorkload(t *testing.T, mapping Mapping, nodes int, dur time.Duration) *Driver {
	t.Helper()
	cfg := Config{Mapping: mapping, Warmup: 2 * time.Second}
	c := cluster.New(cluster.Config{
		Protocol: mapping.Protocol(),
		Nodes:    nodes,
		Locks:    cfg.Locks(),
		Seed:     11,
	})
	d, err := Attach(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Sim.Run(dur)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestHierarchicalWorkloadRuns(t *testing.T) {
	d := runWorkload(t, Hierarchical, 8, 30*time.Second)
	st := d.Stats()
	if st.Ops < 100 {
		t.Fatalf("only %d ops completed", st.Ops)
	}
	if st.Requests < st.Ops {
		t.Fatalf("requests %d < ops %d", st.Requests, st.Ops)
	}
	if st.ReqLatency.Count == 0 || st.OpLatency.Count == 0 {
		t.Fatal("latency not recorded")
	}
	// IR dominates the mix.
	if st.OpsByMode[modes.IR] < st.OpsByMode[modes.W] {
		t.Fatalf("mode distribution off: %v", st.OpsByMode)
	}
}

func TestSameWorkWorkloadRuns(t *testing.T) {
	d := runWorkload(t, SameWork, 6, 30*time.Second)
	if d.Stats().Ops < 50 {
		t.Fatalf("only %d ops", d.Stats().Ops)
	}
	// Whole-table ops take Entries locks, so requests > ops on average
	// even though most ops are single-lock.
	if d.Stats().Requests <= d.Stats().Ops {
		t.Fatalf("requests %d vs ops %d", d.Stats().Requests, d.Stats().Ops)
	}
}

func TestPureWorkloadRuns(t *testing.T) {
	d := runWorkload(t, Pure, 6, 30*time.Second)
	st := d.Stats()
	if st.Ops < 50 {
		t.Fatalf("only %d ops", st.Ops)
	}
	// Pure: exactly one request per op, modulo operations straddling the
	// warmup boundary or the run cutoff (at most one per node).
	diff := int64(st.Requests) - int64(st.Ops)
	if diff < -6 || diff > 6 {
		t.Fatalf("pure mapping must issue one request per op: req=%d ops=%d", st.Requests, st.Ops)
	}
}

func TestWarmupDiscardsEarlySamples(t *testing.T) {
	cfg := Config{Mapping: Pure, Warmup: time.Hour}
	c := cluster.New(cluster.Config{
		Protocol: cluster.Naimi,
		Nodes:    3,
		Locks:    cfg.Locks(),
		Seed:     12,
	})
	d, err := Attach(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Sim.Run(10 * time.Second)
	if d.Stats().Ops != 0 || d.Stats().Requests != 0 {
		t.Fatalf("warmup samples leaked: %+v", d.Stats())
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Entries != DefaultEntries || cfg.MeanCS != DefaultMeanCS || cfg.MeanIdle != DefaultMeanIdle {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.Mix != PaperMix {
		t.Fatal("default mix must be the paper's")
	}
}

func TestUpgradeOpsComplete(t *testing.T) {
	// A mix of only U ops exercises acquire→read→upgrade→write→release.
	cfg := Config{
		Mapping: Hierarchical,
		Mix:     Mix{U: 100},
		Warmup:  time.Second,
	}
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    5,
		Locks:    cfg.Locks(),
		Seed:     13,
	})
	d, err := Attach(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Sim.Run(30 * time.Second)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Ops < 20 {
		t.Fatalf("only %d upgrade ops", st.Ops)
	}
	// Each U op issues two requests: the U acquire and the upgrade.
	if st.Requests < 2*st.Ops {
		t.Fatalf("requests %d < 2×ops %d", st.Requests, st.Ops)
	}
}

func TestLockIDs(t *testing.T) {
	if EntryLock(0) != proto.LockID(1) || EntryLock(9) != proto.LockID(10) {
		t.Fatal("entry lock numbering")
	}
}

func TestHighPriorityStats(t *testing.T) {
	cfg := Config{
		Mapping:         Hierarchical,
		Warmup:          2 * time.Second,
		HighPriorityPct: 30,
	}
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    6,
		Locks:    cfg.Locks(),
		Seed:     31,
	})
	d, err := Attach(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Sim.Run(60 * time.Second)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.HighReqLatency.Count == 0 || st.NormalReqLatency.Count == 0 {
		t.Fatalf("priority classes not populated: high=%d normal=%d",
			st.HighReqLatency.Count, st.NormalReqLatency.Count)
	}
	if st.HighReqLatency.Count+st.NormalReqLatency.Count != st.ReqLatency.Count {
		t.Fatalf("class split (%d+%d) != total %d",
			st.HighReqLatency.Count, st.NormalReqLatency.Count, st.ReqLatency.Count)
	}
	// Roughly 30% of requests should be high priority.
	frac := float64(st.HighReqLatency.Count) / float64(st.ReqLatency.Count)
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("high-priority fraction = %.2f, want ≈0.30", frac)
	}
}

func TestDefaultHighPriorityValue(t *testing.T) {
	cfg := Config{HighPriorityPct: 5}.withDefaults()
	if cfg.HighPriority != 9 {
		t.Fatalf("default high priority = %d, want 9", cfg.HighPriority)
	}
}

func TestThreeLevelHierarchy(t *testing.T) {
	cfg := Config{
		Mapping: Hierarchical,
		Tables:  3,
		Entries: 4,
		Warmup:  2 * time.Second,
	}
	locks := cfg.Locks()
	// 1 database + 3 tables + 12 rows.
	if len(locks) != 16 {
		t.Fatalf("locks = %d, want 16", len(locks))
	}
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    8,
		Locks:    locks,
		Seed:     51,
	})
	d, err := Attach(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Sim.Run(60 * time.Second)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Ops < 100 {
		t.Fatalf("only %d ops", d.Stats().Ops)
	}
	// Row ops take three locks, so requests/ops must exceed 2.
	ratio := float64(d.Stats().Requests) / float64(d.Stats().Ops)
	if ratio < 2.0 {
		t.Fatalf("requests/ops = %.2f, expected >2 for a 3-level hierarchy", ratio)
	}
}

func TestThreeLevelPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := Config{Mapping: Hierarchical, Tables: 2, Entries: 3}.withDefaults()
	steps, up := plan(cfg, modes.IR, rng)
	if len(steps) != 3 || up {
		t.Fatalf("3-level IR plan = %v", steps)
	}
	if steps[0].lock != TableLock || steps[0].mode != modes.IR {
		t.Fatalf("db step = %+v", steps[0])
	}
	if steps[1].mode != modes.IR || steps[2].mode != modes.R {
		t.Fatalf("plan modes = %v", steps)
	}
	steps, up = plan(cfg, modes.U, rng)
	if len(steps) != 1 || !up {
		t.Fatalf("3-level U plan = %v", steps)
	}
	steps, _ = plan(cfg, modes.W, rng)
	if len(steps) != 2 || steps[0].mode != modes.IW || steps[1].mode != modes.W {
		t.Fatalf("3-level W plan = %v", steps)
	}
}

func TestThreeLevelRequiresHierarchical(t *testing.T) {
	cfg := Config{Mapping: Pure, Tables: 2}
	c := cluster.New(cluster.Config{Protocol: cluster.Naimi, Nodes: 2, Locks: cfg.Locks(), Seed: 1})
	if _, err := Attach(c, cfg); err == nil {
		t.Fatal("three-level pure mapping must be rejected")
	}
}
