// Package hlock implements the decentralized hierarchical locking protocol
// of Desai & Mueller, "Scalable Distributed Concurrency Services for
// Hierarchical Locking" (ICDCS 2003).
//
// Each Engine is the per-node state machine for one lock. Nodes form a
// logical tree via parent pointers; the root holds the token. Compatible
// requests are granted as copies by the first node on the propagation path
// with a sufficiently strong owned mode (Rule 3.1), building a copyset of
// children. Incompatible requests queue locally when safe (Rule 4,
// Tab. 2a) or at the token node; the token freezes conflicting modes
// (Rule 6, Tab. 2b) so queued requests cannot starve. Releases propagate
// only when a subtree's owned mode weakens (Rule 5). Upgrade locks convert
// atomically from U to W at the token (Rule 7).
//
// The engine is transport-agnostic and purely reactive: every input
// (client operation or protocol message) returns the set of messages to
// send and local events that occurred. It performs no I/O, holds no locks
// and never blocks; callers must serialize calls per engine (one goroutine
// or one simulator actor per node) and must deliver messages between any
// ordered pair of nodes in FIFO order (as TCP does) — see DESIGN.md.
package hlock

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// Client-operation errors. Protocol-internal inconsistencies are reported
// as ErrProtocol wraps; they indicate a bug or a violated transport
// assumption, never a normal condition.
var (
	ErrHeld       = errors.New("hlock: lock already held by this node")
	ErrNotHeld    = errors.New("hlock: lock not held by this node")
	ErrPending    = errors.New("hlock: operation already pending")
	ErrBadMode    = errors.New("hlock: invalid lock mode")
	ErrNotUpgrade = errors.New("hlock: upgrade requires holding mode U")
	ErrProtocol   = errors.New("hlock: protocol violation")
)

// EventKind classifies local events emitted by the engine.
type EventKind uint8

// Event kinds.
const (
	// EventAcquired: the node's pending request was granted; Mode is the
	// held mode. Local reports whether the acquisition was message-free
	// (Rule 2's local path).
	EventAcquired EventKind = iota + 1
	// EventUpgraded: the node's U lock was upgraded to W (Rule 7).
	EventUpgraded
)

// Event is a local protocol event delivered to the runtime. Trace is the
// causal identity of the client operation the event completes (zero when
// the triggering message came from an untraced peer).
type Event struct {
	Kind  EventKind
	Mode  modes.Mode
	Local bool
	Trace proto.TraceID
}

// Out carries everything an engine step produced: messages to transmit
// and events for the local client.
type Out struct {
	Msgs   []proto.Message
	Events []Event
	// Stale reports that the input message was dropped by epoch fencing:
	// its epoch differs from the engine's, or the engine is fenced awaiting
	// a recovery reseed. The host may use it to hint a lagging peer at the
	// current (root, epoch) so it can catch up.
	Stale bool
}

func (o *Out) send(m proto.Message) { o.Msgs = append(o.Msgs, m) }
func (o *Out) event(e Event)        { o.Events = append(o.Events, e) }

// Options toggles individual protocol optimizations, primarily for the
// ablation experiments. The zero value is the full protocol.
type Options struct {
	// NoLocalQueues disables Rule 4.1 queuing at non-token nodes; every
	// non-grantable request is forwarded to the parent. Implies
	// NoPathReversal (reversal is only safe when pending nodes terminate
	// arriving requests by queuing them).
	NoLocalQueues bool
	// NoChildGrants disables Rule 3.1; only the token node grants.
	NoChildGrants bool
	// NoFreezing disables Rule 6; FIFO fairness is no longer protected
	// and compatible requests may starve waiting incompatible ones.
	NoFreezing bool
	// NoLocalAcquire disables Rule 2's message-free acquisition path.
	NoLocalAcquire bool
	// NoPathReversal disables Naimi-style routing-pointer reversal at
	// forwarding nodes and reverts local queuing to the strict Tab. 2(a)
	// policy. The paper's pseudocode omits routing-pointer maintenance;
	// without reversal, request paths grow with the token-transfer rate
	// and the measured ~3-message asymptote of its Figure 5 is
	// unreachable, so reversal (inherited from Naimi, the protocol this
	// work extends) is on by default. Reversal requires nodes with a
	// pending request to queue every arriving request (they act as chain
	// terminators, exactly like a requester in Naimi's algorithm), which
	// supersedes Tab. 2(a)'s forward entries; see DESIGN.md.
	NoPathReversal bool
}

// effective normalizes option implications.
func (o Options) effective() Options {
	if o.NoLocalQueues {
		o.NoPathReversal = true
	}
	return o
}

// Engine is the hierarchical-locking state machine of one node for one
// lock. The zero value is not usable; construct with New.
type Engine struct {
	self  proto.NodeID
	lock  proto.LockID
	clock *proto.Clock
	opt   Options

	token   bool
	parent  proto.NodeID
	held    modes.Mode
	pending modes.Mode

	// epoch is the lock's recovery epoch: bumped by every token
	// regeneration round after a node crash. The engine stamps it on all
	// outbound messages and silently drops inputs whose epoch differs
	// (stale pre-crash traffic, counted in stale). fenced bars all inputs
	// and local completions between a recovery claim (PrepareReseed) and
	// the round's Reseed, so the state reported to the regenerator cannot
	// drift while the round is in flight.
	epoch  uint32
	fenced bool
	stale  uint64

	// pendingReq is the outstanding request behind pending, retained so a
	// recovery reseed can re-issue it (same trace ID, enabling dedup if
	// the original survived).
	pendingReq proto.Request

	// initToken and initParent freeze the constructed topology so
	// AtInitialState can decide whether the engine has drifted from the
	// state a fresh New would produce (the member runtime evicts such
	// engines and recreates them lazily). initEpoch is the epoch the
	// engine was (re)created at — see SeedEpoch.
	initToken  bool
	initParent proto.NodeID
	initEpoch  uint32

	// children maps each copyset child to the owned mode this node last
	// learned for it (grants strengthen it, releases weaken it).
	children map[proto.NodeID]modes.Mode
	// sentFrozen records the frozen view last pushed to each child, for
	// dedup (paper footnote a).
	sentFrozen map[proto.NodeID]modes.Set

	// queue holds locally queued requests in arrival order.
	queue []proto.Request

	frozen modes.Set

	// Grant sequencing detects releases that crossed an in-flight grant on
	// the child→parent link (the child reported its owned mode before
	// learning of the grant). grantSeqOut/grantModeOut record, per child,
	// the number and mode of the latest copy grant sent; grantSeqIn
	// records, per granter, the latest grant sequence received, echoed on
	// every release.
	grantSeqOut  map[proto.NodeID]uint64
	grantModeOut map[proto.NodeID]modes.Mode
	grantSeqIn   map[proto.NodeID]uint64

	// cause is the trace ID of the input currently (or last) being
	// processed: the client operation's ID at Acquire/Release/Upgrade, the
	// message's ID in Handle. Messages the engine originates that are not
	// tied to a specific queued request (releases, freeze pushes) inherit
	// it, so e.g. the freeze fan-out triggered by a request carries that
	// request's identity. It is bookkeeping only — the protocol never
	// branches on it — and is therefore excluded from Fingerprint.
	cause proto.TraceID
}

// New creates the engine for one lock on one node. Exactly one node in
// the system must be constructed with hasToken=true (the initial tree
// root); every other node's parent chain must reach it. The Lamport clock
// is shared by all engines of the node.
func New(self proto.NodeID, lock proto.LockID, parent proto.NodeID, hasToken bool, clock *proto.Clock, opt Options) *Engine {
	e := &Engine{
		self:         self,
		lock:         lock,
		clock:        clock,
		opt:          opt.effective(),
		token:        hasToken,
		parent:       parent,
		initToken:    hasToken,
		initParent:   parent,
		children:     make(map[proto.NodeID]modes.Mode),
		sentFrozen:   make(map[proto.NodeID]modes.Set),
		grantSeqOut:  make(map[proto.NodeID]uint64),
		grantModeOut: make(map[proto.NodeID]modes.Mode),
		grantSeqIn:   make(map[proto.NodeID]uint64),
	}
	if hasToken {
		e.parent = proto.NoNode
		e.initParent = proto.NoNode
	}
	return e
}

// Clone returns a deep copy of the engine bound to the given clock. It
// exists for exhaustive state-space exploration in tests (the model
// checker forks system states at every nondeterministic choice).
func (e *Engine) Clone(clock *proto.Clock) *Engine {
	ne := &Engine{
		self:         e.self,
		lock:         e.lock,
		clock:        clock,
		opt:          e.opt,
		token:        e.token,
		parent:       e.parent,
		initToken:    e.initToken,
		initParent:   e.initParent,
		initEpoch:    e.initEpoch,
		held:         e.held,
		pending:      e.pending,
		pendingReq:   e.pendingReq,
		epoch:        e.epoch,
		fenced:       e.fenced,
		stale:        e.stale,
		frozen:       e.frozen,
		children:     make(map[proto.NodeID]modes.Mode, len(e.children)),
		sentFrozen:   make(map[proto.NodeID]modes.Set, len(e.sentFrozen)),
		grantSeqOut:  make(map[proto.NodeID]uint64, len(e.grantSeqOut)),
		grantModeOut: make(map[proto.NodeID]modes.Mode, len(e.grantModeOut)),
		grantSeqIn:   make(map[proto.NodeID]uint64, len(e.grantSeqIn)),
		queue:        append([]proto.Request(nil), e.queue...),
		cause:        e.cause,
	}
	for k, v := range e.children {
		ne.children[k] = v
	}
	for k, v := range e.sentFrozen {
		ne.sentFrozen[k] = v
	}
	for k, v := range e.grantSeqOut {
		ne.grantSeqOut[k] = v
	}
	for k, v := range e.grantModeOut {
		ne.grantModeOut[k] = v
	}
	for k, v := range e.grantSeqIn {
		ne.grantSeqIn[k] = v
	}
	return ne
}

// Fingerprint returns a canonical encoding of the engine's entire state,
// used by the model checker to deduplicate explored states. Two engines
// with equal fingerprints behave identically on all future inputs
// (modulo Lamport clock values, which the checker encodes separately).
func (e *Engine) Fingerprint() string {
	// The header is assembled with strconv rather than Fprintf: the model
	// checker calls Fingerprint once per explored state, and the reflect
	// path of fmt dominates its cost on small states.
	const hexdigits = "0123456789abcdef"
	bit := func(v bool) byte {
		if v {
			return '1'
		}
		return '0'
	}
	hdr := make([]byte, 0, 48)
	hdr = append(hdr, 't', bit(e.token), ' ', 'p')
	hdr = strconv.AppendUint(hdr, uint64(e.parent), 10)
	hdr = append(hdr, ' ', 'h')
	hdr = strconv.AppendUint(hdr, uint64(e.held), 10)
	hdr = append(hdr, ' ', 'q')
	hdr = strconv.AppendUint(hdr, uint64(e.pending), 10)
	hdr = append(hdr, ' ', 'f', hexdigits[uint8(e.frozen)>>4], hexdigits[uint8(e.frozen)&0xf], ' ', 'e')
	hdr = strconv.AppendUint(hdr, uint64(e.epoch), 10)
	hdr = append(hdr, '/', bit(e.fenced), '/')
	hdr = strconv.AppendUint(hdr, uint64(e.pendingReq.Mode), 10)
	hdr = append(hdr, '/')
	hdr = strconv.AppendUint(hdr, uint64(e.pendingReq.Priority), 10)
	hdr = append(hdr, '|')
	var b strings.Builder
	b.Write(hdr)
	ids := make([]int, 0, len(e.children))
	for id := range e.children {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "c%d:%d/%02x/%d/%d;", id, e.children[proto.NodeID(id)],
			uint8(e.sentFrozen[proto.NodeID(id)]), e.grantSeqOut[proto.NodeID(id)],
			e.grantModeOut[proto.NodeID(id)])
	}
	ids = ids[:0]
	for id := range e.grantSeqIn {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "g%d:%d;", id, e.grantSeqIn[proto.NodeID(id)])
	}
	for _, r := range e.queue {
		// Timestamps are excluded: the engine never branches on them
		// (queues are arrival-ordered, merges priority-ordered), so
		// including them would split behaviorally identical states.
		fmt.Fprintf(&b, "r%d:%d:%d;", r.Origin, r.Mode, r.Priority)
	}
	return b.String()
}

// Accessors (used by runtimes, oracles and tests).

// Self returns the node ID this engine runs on.
func (e *Engine) Self() proto.NodeID { return e.self }

// Lock returns the lock this engine manages.
func (e *Engine) Lock() proto.LockID { return e.lock }

// IsToken reports whether this node currently holds the token.
func (e *Engine) IsToken() bool { return e.token }

// Parent returns the current parent pointer (NoNode at the token node).
func (e *Engine) Parent() proto.NodeID { return e.parent }

// Held returns the mode currently held (None outside critical sections).
func (e *Engine) Held() modes.Mode { return e.held }

// Pending returns the mode of the outstanding request, if any.
func (e *Engine) Pending() modes.Mode { return e.pending }

// Frozen returns the node's current frozen mode set.
func (e *Engine) Frozen() modes.Set { return e.frozen }

// QueueLen returns the number of locally queued requests.
func (e *Engine) QueueLen() int { return len(e.queue) }

// Queue returns a copy of the locally queued requests in queue order
// (nil when empty), for the introspection inventory.
func (e *Engine) Queue() []proto.Request {
	if len(e.queue) == 0 {
		return nil
	}
	return append([]proto.Request(nil), e.queue...)
}

// Epoch returns the lock's current recovery epoch at this node.
func (e *Engine) Epoch() uint32 { return e.epoch }

// StaleDrops returns how many inputs epoch fencing has discarded.
func (e *Engine) StaleDrops() uint64 { return e.stale }

// SeedEpoch initializes the engine's recovery epoch, and the epoch
// AtInitialState compares against. Call immediately after New, before
// feeding any input, when lazily recreating an engine for a lock that
// has already been through recovery rounds.
func (e *Engine) SeedEpoch(epoch uint32) {
	e.epoch, e.initEpoch = epoch, epoch
}

// AtInitialState reports whether the engine's state is indistinguishable
// from a freshly constructed one (same self, lock, topology, options):
// nothing held or pending, no queued requests, no frozen modes, an empty
// copyset, no grant-sequencing residue, and the token/parent exactly as
// constructed. Such an engine can be evicted and recreated lazily with
// no observable effect on the protocol — the recreated engine's local
// transition function is identical on all future inputs — which is what
// lets the member runtime bound its per-lock tables under workloads over
// unbounded ephemeral resource names.
func (e *Engine) AtInitialState() bool {
	if e.token != e.initToken || e.parent != e.initParent ||
		e.held != modes.None || e.pending != modes.None ||
		e.epoch != e.initEpoch || e.fenced {
		return false
	}
	return len(e.queue) == 0 && e.frozen.Empty() &&
		len(e.children) == 0 && len(e.sentFrozen) == 0 &&
		len(e.grantSeqOut) == 0 && len(e.grantModeOut) == 0 && len(e.grantSeqIn) == 0
}

// Children returns a copy of the copyset (child → owned mode).
func (e *Engine) Children() map[proto.NodeID]modes.Mode {
	out := make(map[proto.NodeID]modes.Mode, len(e.children))
	for k, v := range e.children {
		out[k] = v
	}
	return out
}

// References reports whether the engine's state mentions node n: as
// the probable owner (parent), as a copyset child, or as the origin of
// a queued request. Crash recovery uses it to find every lock whose
// probable-owner chain passes through a dead node, so those locks
// regenerate eagerly instead of wedging until a client stumbles into
// the dead reference.
func (e *Engine) References(n proto.NodeID) bool {
	if e.parent == n {
		return true
	}
	if _, ok := e.children[n]; ok {
		return true
	}
	for _, r := range e.queue {
		if r.Origin == n {
			return true
		}
	}
	return false
}

// Owned returns the node's owned mode: the strongest mode held or owned
// in the subtree rooted here (Definition 3).
func (e *Engine) Owned() modes.Mode {
	// Skipping the range entirely matters: an empty map range still pays
	// the iterator setup, and the no-children case is the common one on
	// the local acquire/release fast path.
	if len(e.children) == 0 {
		return e.held
	}
	mo := e.held
	for _, m := range e.children {
		mo = modes.Max(mo, m)
	}
	return mo
}

// ownedChildren folds only the children's modes, excluding the local held
// mode. Used to decide the token node's own queued requests (upgrade).
func (e *Engine) ownedChildren() modes.Mode {
	if len(e.children) == 0 {
		return modes.None
	}
	mo := modes.None
	for _, m := range e.children {
		mo = modes.Max(mo, m)
	}
	return mo
}

// String summarizes the engine state for traces and test failures.
func (e *Engine) String() string {
	return fmt.Sprintf("node %d lock %d: token=%v parent=%d held=%v pending=%v owned=%v q=%d frozen=%v kids=%d",
		e.self, e.lock, e.token, e.parent, e.held, e.pending, e.Owned(), len(e.queue), e.frozen, len(e.children))
}

// Acquire starts a lock request in mode m (Rule 2) at the default
// priority. If the mode can be served with local knowledge, Out contains
// an immediate EventAcquired and no messages; otherwise the request is
// sent toward the tree root or queued at the token node.
func (e *Engine) Acquire(m modes.Mode) (Out, error) {
	return e.AcquirePri(m, 0)
}

// AcquirePri is Acquire with a request priority: queued requests at the
// token node are served highest-priority first (FIFO within a level),
// the strict priority arbitration of the prioritized token protocols
// ([11, 12]) the paper builds on. Priority 0 is the base FIFO protocol.
func (e *Engine) AcquirePri(m modes.Mode, priority uint8) (Out, error) {
	return e.AcquireTraced(m, priority, proto.TraceID{})
}

// AcquireTraced is AcquirePri with an explicit causal trace ID minted by
// the caller (the member or simulator runtime). A zero trace derives one
// from the request's Lamport timestamp, which is unique per node and
// deterministic, so seeded simulations stay reproducible.
func (e *Engine) AcquireTraced(m modes.Mode, priority uint8, trace proto.TraceID) (Out, error) {
	var out Out
	if m == modes.None || !m.Valid() {
		return out, fmt.Errorf("%w: %v", ErrBadMode, m)
	}
	if e.held != modes.None {
		return out, fmt.Errorf("%w (holding %v)", ErrHeld, e.held)
	}
	if e.pending != modes.None {
		return out, fmt.Errorf("%w (pending %v)", ErrPending, e.pending)
	}
	if e.fenced {
		// A recovery round is in flight: complete nothing and send
		// nothing, so the state claimed to the regenerator cannot drift.
		// The request is recorded and re-issued toward the new root at
		// Reseed.
		e.pending = m
		ts := e.clock.Tick()
		e.cause = e.traceFor(trace, ts)
		e.pendingReq = proto.Request{Origin: e.self, Mode: m, TS: ts, Priority: priority, Trace: e.cause}
		return out, nil
	}

	mo := e.Owned()
	if e.token {
		// Rule 3.2 applied to the local client: the token node needs only
		// compatibility with its owned mode; the frozen check preserves
		// FIFO toward queued requests.
		if modes.Compatible(mo, m) && !e.frozen.Has(m) {
			e.held = m
			e.cause = e.traceFor(trace, e.clock.Tick())
			out.event(Event{Kind: EventAcquired, Mode: m, Local: true, Trace: e.cause})
			return out, nil
		}
		e.pending = m
		ts := e.clock.Tick()
		e.cause = e.traceFor(trace, ts)
		e.pendingReq = proto.Request{Origin: e.self, Mode: m, TS: ts, Priority: priority, Trace: e.cause}
		e.enqueue(e.pendingReq)
		e.serveQueue(&out)
		return out, nil
	}

	// Rule 2: message-free acquisition when the owned mode already covers
	// the request.
	if !e.opt.NoLocalAcquire && mo != modes.None &&
		modes.Compatible(mo, m) && modes.AtLeast(mo, m) {
		if !e.frozen.Has(m) {
			e.held = m
			e.cause = e.traceFor(trace, e.clock.Tick())
			out.event(Event{Kind: EventAcquired, Mode: m, Local: true, Trace: e.cause})
			return out, nil
		}
		// Covered but frozen: wait locally for the thaw rather than
		// sending a request. A request for a mode we already own could be
		// granted inside our own copyset subtree, creating parent-pointer
		// cycles; deferring locally keeps the invariant that a granter is
		// never in the requester's subtree. serveLocalQueue completes (or
		// forwards, if the owned mode meanwhile weakens) the request.
		e.pending = m
		ts := e.clock.Tick()
		e.cause = e.traceFor(trace, ts)
		e.pendingReq = proto.Request{Origin: e.self, Mode: m, TS: ts, Priority: priority, Trace: e.cause}
		e.enqueue(e.pendingReq)
		return out, nil
	}

	e.pending = m
	ts := e.clock.Tick()
	e.cause = e.traceFor(trace, ts)
	req := proto.Request{Origin: e.self, Mode: m, TS: ts, Priority: priority, Trace: e.cause}
	e.pendingReq = req
	out.send(proto.Message{
		Kind: proto.KindRequest, Lock: e.lock,
		From: e.self, To: e.parent, TS: e.clock.Tick(), Req: req, Trace: req.Trace,
		Epoch: e.epoch,
	})
	return out, nil
}

// traceFor resolves the effective trace ID for a client operation:
// the caller-minted ID if any, else one derived from the node's Lamport
// time (which the caller just advanced or read).
func (e *Engine) traceFor(trace proto.TraceID, ts proto.Timestamp) proto.TraceID {
	if !trace.IsZero() {
		return trace
	}
	return proto.TraceID{Node: e.self, Seq: uint64(ts)}
}

// Release ends the critical section (Rule 5). At the token node it
// reconsiders the queue; elsewhere it notifies the parent only if the
// subtree's owned mode weakened.
func (e *Engine) Release() (Out, error) {
	return e.ReleaseTraced(proto.TraceID{})
}

// ReleaseTraced is Release with an explicit causal trace ID for the
// release operation (zero derives one from the Lamport clock); release
// and freeze messages the release triggers carry it.
func (e *Engine) ReleaseTraced(trace proto.TraceID) (Out, error) {
	var out Out
	if e.held == modes.None {
		return out, ErrNotHeld
	}
	if e.pending != modes.None {
		// Only an upgrade can be pending while holding; releasing U with
		// the W upgrade outstanding would corrupt the queue.
		return out, fmt.Errorf("%w: release while upgrade pending", ErrPending)
	}
	e.cause = e.traceFor(trace, e.clock.Tick())
	if e.fenced {
		// Recovery round in flight: drop the hold locally and send
		// nothing. Reseed reports the weakened owned mode to the new root
		// (the round accounted the pre-release mode for this node).
		e.held = modes.None
		return out, nil
	}
	prev := e.Owned()
	e.held = modes.None
	e.afterWeaken(prev, &out)
	return out, nil
}

// Upgrade atomically converts a held U lock into W without releasing it
// (Rule 7). Because U requests are always served by token transfer, the
// holder of U is necessarily the token node. The upgrade is granted
// immediately when no other node holds a copy; otherwise it queues as a
// self-request, freezing reader modes until the copyset drains.
func (e *Engine) Upgrade() (Out, error) {
	return e.UpgradePri(0)
}

// UpgradePri is Upgrade with a queue priority for the W self-request
// (see AcquirePri).
func (e *Engine) UpgradePri(priority uint8) (Out, error) {
	return e.UpgradeTraced(priority, proto.TraceID{})
}

// UpgradeTraced is UpgradePri with an explicit causal trace ID (zero
// derives one from the Lamport clock).
func (e *Engine) UpgradeTraced(priority uint8, trace proto.TraceID) (Out, error) {
	var out Out
	if e.held != modes.U {
		return out, fmt.Errorf("%w (holding %v)", ErrNotUpgrade, e.held)
	}
	if e.pending != modes.None {
		return out, fmt.Errorf("%w (pending %v)", ErrPending, e.pending)
	}
	if !e.token {
		return out, fmt.Errorf("%w: U held by non-token node", ErrProtocol)
	}
	if e.fenced {
		// Recovery round in flight: record the upgrade and defer it. As
		// the U holder this node will be chosen root, and Reseed enqueues
		// the W self-request against the regenerated copyset.
		e.pending = modes.W
		ts := e.clock.Tick()
		e.cause = e.traceFor(trace, ts)
		e.pendingReq = proto.Request{Origin: e.self, Mode: modes.W, TS: ts, Priority: priority, Trace: e.cause}
		return out, nil
	}
	if modes.Compatible(e.ownedChildren(), modes.W) {
		e.held = modes.W
		e.cause = e.traceFor(trace, e.clock.Tick())
		out.event(Event{Kind: EventUpgraded, Mode: modes.W, Local: true, Trace: e.cause})
		return out, nil
	}
	e.pending = modes.W
	ts := e.clock.Tick()
	e.cause = e.traceFor(trace, ts)
	e.pendingReq = proto.Request{Origin: e.self, Mode: modes.W, TS: ts, Priority: priority, Trace: e.cause}
	e.enqueue(e.pendingReq)
	e.serveQueue(&out)
	return out, nil
}

// Handle processes one protocol message addressed to this node.
func (e *Engine) Handle(msg *proto.Message) (Out, error) {
	var out Out
	if msg.Lock != e.lock {
		return out, fmt.Errorf("%w: message for lock %d handled by lock %d", ErrProtocol, msg.Lock, e.lock)
	}
	e.clock.Witness(msg.TS)
	// Epoch fencing: traffic from a different recovery epoch is stale
	// (pre-crash tokens, grants and requests that survived a regeneration
	// round), and a fenced engine is mid-round with its claimed state
	// frozen. Both are dropped silently — liveness is restored by the
	// round's reseed and the origins' request re-issue, not by serving
	// old-world messages.
	if e.fenced || msg.Epoch != e.epoch {
		e.stale++
		out.Stale = true
		return out, nil
	}
	// Inherit the message's causal identity: messages this step originates
	// that are not tied to a specific queued request carry it onward. For
	// requests, prefer the request's own ID (authoritative even if the
	// forwarding hop lost the envelope's).
	e.cause = msg.Trace
	if msg.Kind == proto.KindRequest && !msg.Req.Trace.IsZero() {
		e.cause = msg.Req.Trace
	}
	switch msg.Kind {
	case proto.KindRequest:
		return out, e.handleRequest(msg.Req, &out)
	case proto.KindGrant:
		return out, e.handleGrant(msg, &out)
	case proto.KindToken:
		return out, e.handleToken(msg, &out)
	case proto.KindRelease:
		return out, e.handleRelease(msg, &out)
	case proto.KindFreeze:
		return out, e.handleFreeze(msg, &out)
	default:
		return out, fmt.Errorf("%w: unknown message kind %d", ErrProtocol, msg.Kind)
	}
}

// handleRequest routes an incoming request (Rules 3, 4).
func (e *Engine) handleRequest(req proto.Request, out *Out) error {
	if req.Origin == e.self {
		return fmt.Errorf("%w: node %d received its own request", ErrProtocol, e.self)
	}
	if e.token {
		// Rule 3.2 / 4.2: the token node serves or queues, never forwards.
		// Enqueueing followed by a queue scan covers both immediate grants
		// (the scan serves any unfrozen compatible request right away —
		// harmless to queued ones, which it cannot conflict with) and
		// queuing with a frozen-set refresh.
		e.enqueue(req)
		e.serveQueue(out)
		return nil
	}

	// Rule 3.1: grant a copy if this node's owned mode covers the request.
	if !e.opt.NoChildGrants &&
		modes.GrantableByCopy(e.Owned(), req.Mode) && !e.frozen.Has(req.Mode) {
		e.grantCopy(req, out)
		return nil
	}
	// Rule 4.1: queue behind our own pending request. With path reversal
	// (default) a pending node queues everything — it is a chain
	// terminator, like a requester in Naimi's algorithm, which is what
	// makes reversal safe. With NoPathReversal the strict Tab. 2(a)
	// policy applies instead.
	if !e.opt.NoLocalQueues && e.pending != modes.None &&
		(!e.opt.NoPathReversal || modes.ShouldQueue(e.pending, req.Mode)) {
		e.enqueue(req)
		return nil
	}
	if e.parent == proto.NoNode {
		return fmt.Errorf("%w: non-token node %d has no parent to forward to", ErrProtocol, e.self)
	}
	out.send(proto.Message{
		Kind: proto.KindRequest, Lock: e.lock,
		From: e.self, To: e.parent, TS: e.clock.Tick(), Req: req, Trace: req.Trace,
		Epoch: e.epoch,
	})
	// Path reversal: a pure router (owning nothing, requesting nothing)
	// repoints at the requester, compressing future request paths. Nodes
	// that own a mode must keep their copyset parent for releases, and
	// pending nodes queue above, so only stateless routers reverse.
	if !e.opt.NoPathReversal && e.Owned() == modes.None && e.pending == modes.None {
		e.parent = req.Origin
	}
	return nil
}

// handleGrant installs a granted copy (operational spec of Rule 3).
func (e *Engine) handleGrant(msg *proto.Message, out *Out) error {
	if e.pending == modes.None {
		return fmt.Errorf("%w: grant with no pending request at node %d", ErrProtocol, e.self)
	}
	if msg.Mode != e.pending {
		return fmt.Errorf("%w: granted %v but pending %v", ErrProtocol, msg.Mode, e.pending)
	}
	oldParent := e.parent
	oldOwned := e.Owned()
	e.parent = msg.From
	e.grantSeqIn[msg.From] = msg.Seq
	e.frozen = msg.Frozen
	e.held = e.pending
	e.pending = modes.None
	out.event(Event{Kind: EventAcquired, Mode: e.held, Trace: msg.Trace})
	if msg.From != oldParent && oldOwned != modes.None {
		// Detach: the old parent still lists us in its copyset with
		// oldOwned, but our subtree is now accounted for by the granter
		// (the granted mode always dominates oldOwned — Rule 2 only sends
		// a request when the owned mode does not cover it, and it cannot
		// grow while the request is pending). Without this, the stale
		// entry would inflate the old parent's owned mode forever.
		e.sendRelease(oldParent, modes.None, out)
	}
	e.serveLocalQueue(out)
	e.pushFrozenViews(out)
	return nil
}

// sendRelease emits a release/detach message reporting owned mode mo to
// the given node, acknowledging the latest grant received from it. The
// message carries the trace of the operation that caused the weakening.
func (e *Engine) sendRelease(to proto.NodeID, mo modes.Mode, out *Out) {
	out.send(proto.Message{
		Kind: proto.KindRelease, Lock: e.lock,
		From: e.self, To: to, TS: e.clock.Tick(),
		Owned: mo, Seq: e.grantSeqIn[to], Trace: e.cause,
		Epoch: e.epoch,
	})
}

// handleToken makes this node the new root (operational spec of Rule 3.2,
// footnotes b and c).
func (e *Engine) handleToken(msg *proto.Message, out *Out) error {
	if e.pending == modes.None {
		return fmt.Errorf("%w: token with no pending request at node %d", ErrProtocol, e.self)
	}
	if msg.Mode != e.pending {
		return fmt.Errorf("%w: token grants %v but pending %v", ErrProtocol, msg.Mode, e.pending)
	}
	oldParent := e.parent
	oldOwned := e.Owned()
	e.token = true
	e.parent = proto.NoNode
	if msg.Owned != modes.None {
		// Footnote b: the old token still owns a mode, so it joins the new
		// token's copyset as a child.
		e.children[msg.From] = msg.Owned
	}
	if msg.From != oldParent && oldOwned != modes.None {
		// Detach from the old parent: we are the root now and our subtree
		// no longer reports through it (same reasoning as in handleGrant;
		// when msg.From == oldParent the old token already removed us at
		// transfer time).
		e.sendRelease(oldParent, modes.None, out)
	}
	upgraded := e.held == modes.U && e.pending == modes.W
	e.held = e.pending
	e.pending = modes.None
	if upgraded {
		out.event(Event{Kind: EventUpgraded, Mode: e.held, Trace: msg.Trace})
	} else {
		out.event(Event{Kind: EventAcquired, Mode: e.held, Trace: msg.Trace})
	}
	// Footnote c: merge the travelling queue with the local one,
	// preserving queue order. Requests in the travelling queue reached
	// the token earlier than anything queued here under Tab. 2(a) could
	// have, so within a priority level they keep their positions ahead of
	// the local queue; across levels, priority order prevails.
	e.queue = mergeQueues(msg.Queue, e.queue)
	e.serveQueue(out)
	return nil
}

// handleRelease processes a child's owned-mode weakening (Rule 5).
func (e *Engine) handleRelease(msg *proto.Message, out *Out) error {
	if _, ok := e.children[msg.From]; !ok {
		// Stale: the release crossed a token transfer to that node (we
		// removed it from the copyset when handing over the token, and it
		// is the root of its own accounting now). Ignore.
		return nil
	}
	prev := e.Owned()
	reported := msg.Owned
	if msg.Seq < e.grantSeqOut[msg.From] {
		// The release was sent before the child saw our latest grant, so
		// its reported owned mode excludes it. Fold the granted mode back
		// in; the child will report again once it actually weakens below
		// it. Never delete the child here.
		reported = modes.Max(reported, e.grantModeOut[msg.From])
	}
	if reported == modes.None {
		delete(e.children, msg.From)
		delete(e.sentFrozen, msg.From)
	} else {
		e.children[msg.From] = reported
	}
	if e.token {
		e.serveQueue(out)
		return nil
	}
	e.afterWeaken(prev, out)
	return nil
}

// handleFreeze installs the parent's frozen view and propagates it
// (Rule 6 operational spec). Freezes that raced with a token transfer or
// a reparenting grant are stale and ignored: the token derives its own
// frozen set, and only the current parent's view is authoritative.
func (e *Engine) handleFreeze(msg *proto.Message, out *Out) error {
	if e.token || msg.From != e.parent {
		return nil
	}
	e.frozen = msg.Frozen
	e.pushFrozenViews(out)
	// Thawed modes may make queued requests grantable again.
	e.serveLocalQueue(out)
	return nil
}

// afterWeaken runs at a non-token node (or on unlock) after held/children
// changed: notify the parent if the owned mode weakened (Rule 5.2) and
// reconsider the local queue.
func (e *Engine) afterWeaken(prevOwned modes.Mode, out *Out) {
	if e.token {
		e.serveQueue(out)
		return
	}
	if mo := e.Owned(); mo != prevOwned {
		e.sendRelease(e.parent, mo, out)
	}
	e.serveLocalQueue(out)
}

// enqueue inserts a request: queues are ordered by priority (higher
// first) and FIFO in arrival order within a priority level. At the
// default priority 0 this is plain arrival order — the order the paper's
// freezing rule protects ("the token node, after receiving {D,R}, will
// not grant any other requests…").
func (e *Engine) enqueue(req proto.Request) {
	// Recovery dedup: after a regeneration round, origins re-issue their
	// outstanding requests with the original trace ID. If the original
	// made it into this queue (directly or via a travelling token queue)
	// before the re-issue arrives, the second copy must not double-grant.
	if !req.Trace.IsZero() {
		for _, q := range e.queue {
			if q.Origin == req.Origin && q.Trace == req.Trace {
				return
			}
		}
	}
	i := len(e.queue)
	for i > 0 && e.queue[i-1].Priority < req.Priority {
		i--
	}
	e.queue = append(e.queue, proto.Request{})
	copy(e.queue[i+1:], e.queue[i:])
	e.queue[i] = req
}

// grantCopy grants req as a copy: the requester becomes (or remains) a
// child of this node with the granted mode folded into its owned mode.
func (e *Engine) grantCopy(req proto.Request, out *Out) {
	cm := modes.Max(e.children[req.Origin], req.Mode)
	e.children[req.Origin] = cm
	e.grantSeqOut[req.Origin]++
	e.grantModeOut[req.Origin] = req.Mode
	view := e.frozenViewFor(cm)
	e.sentFrozen[req.Origin] = view
	out.send(proto.Message{
		Kind: proto.KindGrant, Lock: e.lock,
		From: e.self, To: req.Origin, TS: e.clock.Tick(),
		Mode: req.Mode, Frozen: view, Seq: e.grantSeqOut[req.Origin],
		Trace: req.Trace, Epoch: e.epoch,
	})
}

// transferToken hands the token (and the remaining queue) to req.Origin,
// which becomes the new root; this node becomes its child if it still
// owns a mode (Rule 3.2 operational spec, footnotes b, c).
func (e *Engine) transferToken(req proto.Request, out *Out) {
	delete(e.children, req.Origin)
	delete(e.sentFrozen, req.Origin)
	q := e.queue
	e.queue = nil
	e.token = false
	e.parent = req.Origin
	out.send(proto.Message{
		Kind: proto.KindToken, Lock: e.lock,
		From: e.self, To: req.Origin, TS: e.clock.Tick(),
		Mode: req.Mode, Owned: e.Owned(), Queue: q, Trace: req.Trace,
		Epoch: e.epoch,
	})
}

// serveQueue is the token node's queue scan ("check requests on queue").
// The head is served as soon as it is compatible with the owned mode —
// frozen modes do not apply to the request they protect. Requests behind
// the head are served only if their mode is unfrozen, which guarantees
// they overtake no conflicting earlier request. After the scan the frozen
// set is recomputed from what remains queued and pushed to granters.
func (e *Engine) serveQueue(out *Out) {
	if !e.token {
		return
	}
	for {
		served := false
		for i := 0; i < len(e.queue); i++ {
			req := e.queue[i]
			head := i == 0
			if req.Origin == e.self {
				if modes.Compatible(e.ownedChildren(), req.Mode) && (head || !e.frozen.Has(req.Mode)) {
					upgraded := e.held == modes.U && req.Mode == modes.W
					e.held = req.Mode
					e.pending = modes.None
					kind := EventAcquired
					if upgraded {
						kind = EventUpgraded
					}
					out.event(Event{Kind: kind, Mode: req.Mode, Local: true, Trace: req.Trace})
					e.removeQueued(i)
					served = true
					break
				}
				continue
			}
			switch modes.GrantAtToken(e.Owned(), req.Mode) {
			case modes.TokenCopy:
				if head || !e.frozen.Has(req.Mode) {
					e.grantCopy(req, out)
					e.removeQueued(i)
					served = true
				}
			case modes.TokenTransfer:
				if head || !e.frozen.Has(req.Mode) {
					e.removeQueued(i)
					e.transferToken(req, out)
					return // no longer the token node
				}
			case modes.TokenBlocked:
			}
			if served {
				break
			}
		}
		if !served {
			break
		}
	}
	e.refreshFrozen(out)
}

func (e *Engine) removeQueued(i int) {
	e.queue = append(e.queue[:i], e.queue[i+1:]...)
}

// mergeQueues stably merges two priority-ordered queues, preferring
// entries of a (the travelling queue) on equal priority.
func mergeQueues(a, b []proto.Request) []proto.Request {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]proto.Request, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Priority > a[i].Priority {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// serveLocalQueue drains a non-token node's local queue: grant what the
// owned mode covers, keep what Tab. 2(a) still justifies queuing, forward
// the rest (Rules 3.1, 4.1).
func (e *Engine) serveLocalQueue(out *Out) {
	if e.token {
		e.serveQueue(out)
		return
	}
	kept := e.queue[:0]
	for _, req := range e.queue {
		switch {
		case req.Origin == e.self:
			// Deferred local acquire (see Acquire): complete it when the
			// thaw arrives, keep waiting while the owned mode still
			// covers it, or fall back to a real request if the owned mode
			// weakened below the wanted one in the meantime.
			mo := e.Owned()
			covered := mo != modes.None && modes.Compatible(mo, req.Mode) && modes.AtLeast(mo, req.Mode)
			switch {
			case covered && !e.frozen.Has(req.Mode):
				e.held = req.Mode
				e.pending = modes.None
				out.event(Event{Kind: EventAcquired, Mode: req.Mode, Local: true, Trace: req.Trace})
			case covered:
				kept = append(kept, req)
			default:
				out.send(proto.Message{
					Kind: proto.KindRequest, Lock: e.lock,
					From: e.self, To: e.parent, TS: e.clock.Tick(), Req: req, Trace: req.Trace,
					Epoch: e.epoch,
				})
			}
		case !e.opt.NoChildGrants &&
			modes.GrantableByCopy(e.Owned(), req.Mode) && !e.frozen.Has(req.Mode):
			e.grantCopy(req, out)
		case !e.opt.NoLocalQueues && e.pending != modes.None &&
			(!e.opt.NoPathReversal || modes.ShouldQueue(e.pending, req.Mode)):
			kept = append(kept, req)
		default:
			out.send(proto.Message{
				Kind: proto.KindRequest, Lock: e.lock,
				From: e.self, To: e.parent, TS: e.clock.Tick(), Req: req, Trace: req.Trace,
				Epoch: e.epoch,
			})
		}
	}
	e.queue = kept
}

// refreshFrozen recomputes the token's frozen set (Tab. 2b) and pushes
// changed per-child views. Only the queue head is protected: it is the
// request FIFO order serves next, and freezing exactly its conflicters is
// what the paper's worked example does ("IW is the modes to be frozen"
// for the single waiting R). Requests behind the head inherit protection
// when they reach the head, so nothing starves, while the frozen set
// stays small and stable (fewer freeze messages, more concurrency).
func (e *Engine) refreshFrozen(out *Out) {
	if !e.token || e.opt.NoFreezing {
		return
	}
	var fz modes.Set
	if len(e.queue) > 0 {
		fz = modes.FreezeSet(e.Owned(), e.queue[0].Mode)
	}
	e.frozen = fz
	e.pushFrozenViews(out)
}

// frozenViewFor restricts the node's frozen set to the modes a child
// owning cm could actually grant (paper footnote a).
func (e *Engine) frozenViewFor(cm modes.Mode) modes.Set {
	var view modes.Set
	for _, m := range e.frozen.Modes() {
		if modes.GrantableByCopy(cm, m) {
			view = view.Add(m)
		}
	}
	return view
}

// pushFrozenViews sends each child its (deduplicated) frozen view, in
// child-ID order — deterministic emission keeps whole simulations
// reproducible (map iteration order would leak into message timing).
func (e *Engine) pushFrozenViews(out *Out) {
	if e.opt.NoFreezing || len(e.children) == 0 {
		return
	}
	ids := make([]int, 0, len(e.children))
	for c := range e.children {
		ids = append(ids, int(c))
	}
	sort.Ints(ids)
	for _, id := range ids {
		c := proto.NodeID(id)
		view := e.frozenViewFor(e.children[c])
		if e.sentFrozen[c] == view {
			continue
		}
		e.sentFrozen[c] = view
		out.send(proto.Message{
			Kind: proto.KindFreeze, Lock: e.lock,
			From: e.self, To: c, TS: e.clock.Tick(), Frozen: view,
			Trace: e.cause, Epoch: e.epoch,
		})
	}
}

// PrepareReseed fences the engine for a recovery round at the proposed
// epoch: from this call until Reseed, the engine drops every message,
// completes no local operations, and lets held only weaken to None — so
// the held mode the caller reports in its recovery claim stays an upper
// bound on reality, which is what makes the regenerator's copyset
// reconstruction exact. Idempotent for re-probes at the same or a higher
// epoch.
func (e *Engine) PrepareReseed(epoch uint32) {
	e.fenced = true
	if epoch > e.epoch {
		e.epoch = epoch
	}
}

// Reseed installs the outcome of a completed token-regeneration round:
// root holds the regenerated token for the new epoch, and this node's
// pre-round state is rebuilt around it. accounted is the held mode this
// node's claim reported to the regenerator (None when it did not
// participate — e.g. it restarted mid-round and is catching up from a
// recovery hint); copyset is meaningful only at the root and lists the
// surviving holders' accounted modes (excluding the root itself).
//
// All routing and queue state from the old epoch is demolished — parent
// chains through the dead node, queued requests whose origins will
// re-issue them, frozen views, grant sequencing. What survives is the
// local truth: the held mode (the critical section does not notice
// recovery) and the pending request, which is re-issued to the new root
// under the original trace ID so duplicates collapse.
//
// The returned lost flag reports that this node held a mode the round
// did not account for (held ≠ accounted ≠ held==None): its critical
// section is no longer protected — the regenerated token may have
// granted conflicting modes — so the hold is dropped and the host must
// surface the loss to the client (ErrLockLost).
func (e *Engine) Reseed(root proto.NodeID, epoch uint32, accounted modes.Mode, copyset []proto.Request) (Out, bool) {
	out := Out{}
	e.fenced = false
	e.epoch = epoch
	e.cause = proto.TraceID{}
	e.queue = nil
	e.frozen = 0
	clear(e.children)
	clear(e.sentFrozen)
	clear(e.grantSeqOut)
	clear(e.grantModeOut)
	clear(e.grantSeqIn)

	lost := false
	if e.held != modes.None && e.held != accounted {
		// The round closed without this hold in its accounting; the new
		// token world may already conflict with it.
		e.held = modes.None
		lost = true
	}

	if root == e.self {
		e.token = true
		e.parent = proto.NoNode
		for _, c := range copyset {
			if c.Origin != e.self && c.Mode != modes.None {
				e.children[c.Origin] = c.Mode
			}
		}
		if e.pending != modes.None {
			e.enqueue(e.pendingReq)
		}
		e.serveQueue(&out)
		return out, lost
	}

	e.token = false
	e.parent = root
	if e.held == modes.None && accounted != modes.None {
		// This node released (or lost) its hold between claiming and the
		// round closing; the root installed accounted in its copyset, so
		// send the weakening release the fence swallowed.
		e.sendRelease(root, modes.None, &out)
	}
	if e.pending != modes.None {
		// Re-issue the outstanding request to the new root. The original
		// trace ID rides along: if the pre-crash request survived into the
		// regenerated queue, the enqueue dedup collapses the pair.
		req := e.pendingReq
		out.send(proto.Message{
			Kind: proto.KindRequest, Lock: e.lock,
			From: e.self, To: root, TS: e.clock.Tick(), Req: req, Trace: req.Trace,
			Epoch: e.epoch,
		})
	}
	return out, lost
}
