package hlock_test

import (
	"fmt"
	"testing"

	"hierlock/internal/hlock"
	"hierlock/internal/modes"
)

// TestPriorityOrdering checks strict priority arbitration: a
// later-arriving high-priority writer is served before earlier
// low-priority ones.
func TestPriorityOrdering(t *testing.T) {
	h := newHarness(t, 4, hlock.Options{})
	h.acquire(0, modes.W) // token busy
	h.acquirePri(1, modes.W, 0)
	h.drain(nil)
	h.acquirePri(2, modes.W, 0)
	h.drain(nil)
	h.acquirePri(3, modes.W, 5) // arrives last, highest priority
	h.drain(nil)
	if h.node(0).QueueLen() != 3 {
		t.Fatalf("queue = %d, want 3", h.node(0).QueueLen())
	}
	h.release(0)
	h.drain(nil)
	if h.held(3) != modes.W {
		t.Fatalf("high-priority writer must be served first\n%s", h.dump())
	}
	h.release(3)
	h.drain(nil)
	if h.held(1) != modes.W {
		t.Fatalf("then FIFO among equals: node 1 next\n%s", h.dump())
	}
	h.release(1)
	h.drain(nil)
	if h.held(2) != modes.W {
		t.Fatalf("node 2 last\n%s", h.dump())
	}
	h.release(2)
	h.drain(nil)
	h.checkQuiescent()
}

// TestPriorityFreezeProtectsHead checks that freezing tracks the
// highest-priority waiter: its conflict set is frozen even though a
// lower-priority request arrived first.
func TestPriorityFreezeProtectsHead(t *testing.T) {
	h := newHarness(t, 5, hlock.Options{})
	h.acquire(0, modes.IW)
	h.acquire(1, modes.IW)
	h.drain(nil)
	// Low-priority U queued first, then a high-priority R.
	h.acquirePri(2, modes.U, 0)
	h.drain(nil)
	h.acquirePri(3, modes.R, 9)
	h.drain(nil)
	// The head is now the R request; its conflicters (IW) are frozen.
	if !h.node(0).Frozen().Has(modes.IW) {
		t.Fatalf("IW must be frozen for the high-priority R head\n%s", h.dump())
	}
	// New IW requests must queue behind.
	h.acquire(4, modes.IW)
	h.drain(nil)
	if h.held(4) != modes.None {
		t.Fatalf("frozen IW must not be granted\n%s", h.dump())
	}
	h.release(0)
	h.release(1)
	h.drain(nil)
	if h.held(3) != modes.R {
		t.Fatalf("high-priority R should be served before the earlier U\n%s", h.dump())
	}
	h.release(3)
	h.drain(nil)
	if h.held(2) != modes.U {
		t.Fatalf("U next\n%s", h.dump())
	}
	h.release(2)
	h.drain(nil)
	if h.held(4) != modes.IW {
		t.Fatalf("IW last\n%s", h.dump())
	}
	h.release(4)
	h.drain(nil)
	h.checkQuiescent()
}

// TestPriorityUpgrade exercises UpgradePri.
func TestPriorityUpgrade(t *testing.T) {
	h := newHarness(t, 3, hlock.Options{})
	h.acquire(1, modes.U)
	h.drain(nil)
	h.acquire(2, modes.R)
	h.drain(nil)
	id := h.engines[1]
	h.waiting[1] = modes.W
	out, err := id.UpgradePri(7)
	if err != nil {
		t.Fatal(err)
	}
	h.absorb(1, out)
	h.drain(nil)
	h.release(2)
	h.drain(nil)
	if h.held(1) != modes.W {
		t.Fatalf("prioritized upgrade failed\n%s", h.dump())
	}
	h.release(1)
	h.drain(nil)
	h.checkQuiescent()
}

// TestPriorityFuzz mixes random priorities into the standard fuzz and
// verifies all safety and quiescence properties still hold.
func TestPriorityFuzz(t *testing.T) {
	for seed := int64(600); seed < 615; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			runFuzz(t, seed, fuzzConfig{
				nodes: 7, steps: 2000,
				mix:           [5]int{50, 20, 10, 15, 5},
				maxPriority:   4,
				usePriorities: true,
			})
		})
	}
}
