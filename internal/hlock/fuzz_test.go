package hlock_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hierlock/internal/hlock"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// fuzzConfig parameterizes one randomized protocol exploration.
type fuzzConfig struct {
	nodes int
	steps int
	opt   hlock.Options
	// mix weights for IR, R, U, IW, W (the paper's workload uses
	// 80/10/4/5/1).
	mix [5]int
	// usePriorities draws a random priority in [0, maxPriority] per
	// request (exercising the prioritized-arbitration extension).
	usePriorities bool
	maxPriority   int
}

// runFuzz drives random client operations interleaved with random (but
// per-pair FIFO) message deliveries, checking the mutual-exclusion oracle
// on every acquisition and full structural consistency at quiescence.
// Upgrades are exercised whenever a node holds U.
func runFuzz(t *testing.T, seed int64, cfg fuzzConfig) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h := newHarness(t, cfg.nodes, cfg.opt)

	pick := func() modes.Mode {
		total := 0
		for _, w := range cfg.mix {
			total += w
		}
		r := rng.Intn(total)
		for i, w := range cfg.mix {
			if r < w {
				return modes.All[i]
			}
			r -= w
		}
		return modes.IR
	}

	// upgrading tracks nodes that issued an Upgrade (their EventUpgraded
	// is pending).
	upgrading := map[proto.NodeID]bool{}

	for step := 0; step < cfg.steps; step++ {
		// Prefer delivering messages slightly over issuing ops so queues
		// do not grow without bound.
		pairs := h.pendingPairs()
		if len(pairs) > 0 && rng.Intn(100) < 60 {
			h.deliverOne(pairs[rng.Intn(len(pairs))])
			continue
		}
		id := proto.NodeID(rng.Intn(cfg.nodes))
		e := h.engines[id]
		switch {
		case e.Held() == modes.U && !upgrading[id] && rng.Intn(100) < 50:
			upgrading[id] = true
			h.upgrade(int(id))
		case e.Held() != modes.None && e.Pending() == modes.None && rng.Intn(100) < 70:
			delete(upgrading, id)
			h.release(int(id))
		case e.Held() == modes.None && e.Pending() == modes.None && rng.Intn(100) < 70:
			prio := uint8(0)
			if cfg.usePriorities {
				prio = uint8(rng.Intn(cfg.maxPriority + 1))
			}
			h.acquirePri(int(id), pick(), prio)
		}
	}

	// Wind down: deliver everything, release all holders, repeat until
	// every request completed and the network is silent.
	for round := 0; ; round++ {
		if round > 10*cfg.nodes+100 {
			t.Fatalf("seed %d: system did not quiesce; waiting=%v\n%s", seed, h.waiting, h.dump())
		}
		h.drain(rng)
		released := false
		for id, e := range h.engines {
			if e.Held() != modes.None && e.Pending() == modes.None {
				delete(upgrading, id)
				h.release(int(id))
				released = true
			}
		}
		if !released && len(h.pendingPairs()) == 0 {
			break
		}
	}
	if len(h.waiting) > 0 {
		t.Fatalf("seed %d: requests never served: %v\n%s", seed, h.waiting, h.dump())
	}
	h.checkQuiescent()
}

func TestFuzzPaperMix(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			runFuzz(t, seed, fuzzConfig{
				nodes: 8, steps: 2500,
				mix: [5]int{80, 10, 4, 5, 1},
			})
		})
	}
}

func TestFuzzWriteHeavy(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			runFuzz(t, seed, fuzzConfig{
				nodes: 6, steps: 2000,
				mix: [5]int{10, 15, 20, 20, 35},
			})
		})
	}
}

func TestFuzzUpgradeHeavy(t *testing.T) {
	for seed := int64(200); seed < 210; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			runFuzz(t, seed, fuzzConfig{
				nodes: 5, steps: 1500,
				mix: [5]int{20, 20, 40, 10, 10},
			})
		})
	}
}

func TestFuzzManyNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(300); seed < 306; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			runFuzz(t, seed, fuzzConfig{
				nodes: 24, steps: 6000,
				mix: [5]int{60, 15, 5, 15, 5},
			})
		})
	}
}

func TestFuzzAblations(t *testing.T) {
	opts := map[string]hlock.Options{
		"no-local-queues":   {NoLocalQueues: true},
		"no-child-grants":   {NoChildGrants: true},
		"no-local-acquire":  {NoLocalAcquire: true},
		"no-path-reversal":  {NoPathReversal: true},
		"paper-tables-only": {NoPathReversal: true, NoFreezing: true},
		"all-off":           {NoLocalQueues: true, NoChildGrants: true, NoLocalAcquire: true},
	}
	for name, opt := range opts {
		opt := opt
		t.Run(name, func(t *testing.T) {
			for seed := int64(400); seed < 408; seed++ {
				runFuzz(t, seed, fuzzConfig{
					nodes: 7, steps: 2000, opt: opt,
					mix: [5]int{50, 20, 10, 15, 5},
				})
			}
		})
	}
}

// TestFuzzNoFreezing checks that the safety properties hold even without
// fairness (freezing off): mutual exclusion and eventual quiescence are
// independent of Rule 6. (Liveness under continuous load is NOT guaranteed
// by this configuration — that is the point of the ablation — but once
// load stops, everything must drain.)
func TestFuzzNoFreezing(t *testing.T) {
	for seed := int64(500); seed < 510; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			runFuzz(t, seed, fuzzConfig{
				nodes: 7, steps: 2000,
				opt: hlock.Options{NoFreezing: true},
				mix: [5]int{50, 20, 10, 15, 5},
			})
		})
	}
}
