package hlock_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hierlock/internal/hlock"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// harness wires engines together with per-ordered-pair FIFO queues, the
// delivery guarantee the protocol assumes (DESIGN.md). Delivery order
// *across* pairs is controlled by the test: deterministic (lowest pair
// first) or randomized by a seeded RNG.
type harness struct {
	t       testing.TB
	engines map[proto.NodeID]*hlock.Engine
	clocks  map[proto.NodeID]*proto.Clock
	queues  map[[2]proto.NodeID][]proto.Message
	events  map[proto.NodeID][]hlock.Event
	counts  map[proto.Kind]int

	// oracle state: modes currently held, from the client's perspective.
	holding map[proto.NodeID]modes.Mode
	// outstanding acquire/upgrade operations not yet confirmed.
	waiting map[proto.NodeID]modes.Mode

	verbose bool
}

const testLock proto.LockID = 1

// newHarness builds n nodes; node 0 holds the token and every other node's
// initial parent is node 0 (the star topology the paper starts from).
func newHarness(t testing.TB, n int, opt hlock.Options) *harness {
	t.Helper()
	h := &harness{
		t:       t,
		engines: make(map[proto.NodeID]*hlock.Engine, n),
		clocks:  make(map[proto.NodeID]*proto.Clock, n),
		queues:  make(map[[2]proto.NodeID][]proto.Message),
		events:  make(map[proto.NodeID][]hlock.Event),
		counts:  make(map[proto.Kind]int),
		holding: make(map[proto.NodeID]modes.Mode),
		waiting: make(map[proto.NodeID]modes.Mode),
	}
	for i := 0; i < n; i++ {
		id := proto.NodeID(i)
		clk := &proto.Clock{}
		h.clocks[id] = clk
		h.engines[id] = hlock.New(id, testLock, 0, i == 0, clk, opt)
	}
	return h
}

func (h *harness) node(i int) *hlock.Engine { return h.engines[proto.NodeID(i)] }

// absorb routes an engine step's output into the network and the oracle.
func (h *harness) absorb(from proto.NodeID, out hlock.Out) {
	h.t.Helper()
	for _, m := range out.Msgs {
		h.counts[m.Kind]++
		key := [2]proto.NodeID{m.From, m.To}
		h.queues[key] = append(h.queues[key], m)
	}
	for _, ev := range out.Events {
		if h.verbose {
			fmt.Printf("    node %d: event %v mode=%v local=%v\n", from, ev.Kind, ev.Mode, ev.Local)
		}
		h.events[from] = append(h.events[from], ev)
		switch ev.Kind {
		case hlock.EventAcquired, hlock.EventUpgraded:
			want, ok := h.waiting[from]
			if !ok {
				h.t.Fatalf("node %d: %v event with no outstanding op", from, ev.Kind)
			}
			if ev.Mode != want {
				h.t.Fatalf("node %d: event mode %v, wanted %v", from, ev.Mode, want)
			}
			delete(h.waiting, from)
			h.holding[from] = ev.Mode
			h.checkCompatible()
		}
	}
}

// checkCompatible is the safety oracle: all concurrently held modes must be
// pairwise compatible (Rule 1).
func (h *harness) checkCompatible() {
	h.t.Helper()
	for a, ma := range h.holding {
		for b, mb := range h.holding {
			if a < b && !modes.Compatible(ma, mb) {
				h.t.Fatalf("MUTUAL EXCLUSION VIOLATED: node %d holds %v while node %d holds %v", a, ma, b, mb)
			}
		}
	}
}

// acquire issues a client acquire at node i.
func (h *harness) acquire(i int, m modes.Mode) {
	h.t.Helper()
	h.acquirePri(i, m, 0)
}

// acquirePri issues a prioritized acquire at node i.
func (h *harness) acquirePri(i int, m modes.Mode, prio uint8) {
	h.t.Helper()
	id := proto.NodeID(i)
	h.waiting[id] = m
	out, err := h.engines[id].AcquirePri(m, prio)
	if err != nil {
		h.t.Fatalf("node %d: Acquire(%v): %v", i, m, err)
	}
	h.absorb(id, out)
}

func (h *harness) release(i int) {
	h.t.Helper()
	id := proto.NodeID(i)
	delete(h.holding, id)
	out, err := h.engines[id].Release()
	if err != nil {
		h.t.Fatalf("node %d: Release: %v", i, err)
	}
	h.absorb(id, out)
}

func (h *harness) upgrade(i int) {
	h.t.Helper()
	id := proto.NodeID(i)
	h.waiting[id] = modes.W
	out, err := h.engines[id].Upgrade()
	if err != nil {
		h.t.Fatalf("node %d: Upgrade: %v", i, err)
	}
	h.absorb(id, out)
}

// pendingPairs returns the ordered pairs with undelivered messages,
// deterministically sorted.
func (h *harness) pendingPairs() [][2]proto.NodeID {
	var pairs [][2]proto.NodeID
	for k, q := range h.queues {
		if len(q) > 0 {
			pairs = append(pairs, k)
		}
	}
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && less(pairs[j], pairs[j-1]); j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	return pairs
}

func less(a, b [2]proto.NodeID) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// deliverOne delivers the head message of the given pair queue.
func (h *harness) deliverOne(pair [2]proto.NodeID) {
	h.t.Helper()
	q := h.queues[pair]
	msg := q[0]
	h.queues[pair] = q[1:]
	out, err := h.engines[msg.To].Handle(&msg)
	if err != nil {
		h.t.Fatalf("node %d: Handle(%v from %d): %v\n%v", msg.To, msg.Kind, msg.From, err, h.engines[msg.To])
	}
	h.absorb(msg.To, out)
}

// drain delivers messages (deterministic pair order, or rng-shuffled when
// rng != nil) until the network is quiet.
func (h *harness) drain(rng *rand.Rand) {
	h.t.Helper()
	for steps := 0; ; steps++ {
		if steps > 100000 {
			h.t.Fatal("network did not quiesce")
		}
		pairs := h.pendingPairs()
		if len(pairs) == 0 {
			return
		}
		p := pairs[0]
		if rng != nil {
			p = pairs[rng.Intn(len(pairs))]
		}
		h.deliverOne(p)
	}
}

// held returns the mode node i currently holds per its engine.
func (h *harness) held(i int) modes.Mode { return h.node(i).Held() }

// requireToken asserts exactly one engine holds the token and returns it.
func (h *harness) requireToken() proto.NodeID {
	h.t.Helper()
	tok := proto.NoNode
	for id, e := range h.engines {
		if e.IsToken() {
			if tok != proto.NoNode {
				h.t.Fatalf("two token nodes: %d and %d", tok, id)
			}
			tok = id
		}
	}
	if tok == proto.NoNode {
		h.t.Fatal("no token node")
	}
	return tok
}

// checkQuiescent asserts full structural consistency once the network is
// drained and no client operation is outstanding.
func (h *harness) checkQuiescent() {
	h.t.Helper()
	tok := h.requireToken()
	for id, e := range h.engines {
		if m, ok := h.waiting[id]; ok {
			h.t.Errorf("node %d: request for %v never completed: %v", id, m, e)
		}
		if e.Held() != h.holding[id] {
			h.t.Errorf("node %d: engine holds %v, oracle says %v", id, e.Held(), h.holding[id])
		}
		// Copyset soundness: a parent's recorded mode for each child must
		// equal the child's actual owned mode.
		for c, m := range e.Children() {
			if got := h.engines[c].Owned(); got != m {
				h.t.Errorf("node %d records child %d owning %v, child actually owns %v", id, c, m, got)
			}
		}
		if id != tok && e.Parent() == proto.NoNode {
			h.t.Errorf("non-token node %d has no parent", id)
		}
	}
	// The token's owned mode must dominate and be compatible with every
	// held mode (the paper's local-knowledge lemma preconditions).
	mo := h.engines[tok].Owned()
	for id, m := range h.holding {
		if m == modes.None {
			continue
		}
		if !modes.AtLeast(mo, m) {
			h.t.Errorf("token owns %v which does not dominate node %d holding %v", mo, id, m)
		}
	}
	// Parent pointers must form a cycle-free forest rooted at the token.
	for id := range h.engines {
		seen := map[proto.NodeID]bool{}
		cur := id
		for cur != proto.NoNode {
			if seen[cur] {
				h.t.Fatalf("parent cycle involving node %d", cur)
			}
			seen[cur] = true
			cur = h.engines[cur].Parent()
		}
		if !seen[tok] {
			h.t.Errorf("node %d's parent chain does not reach the token node %d", id, tok)
		}
	}
	// When nothing is queued anywhere, nothing may remain frozen within
	// the copyset.
	queued := 0
	for _, e := range h.engines {
		queued += e.QueueLen()
	}
	if queued == 0 {
		for id, e := range h.engines {
			if e.Owned() != modes.None && !e.Frozen().Empty() {
				h.t.Errorf("node %d owns %v with stale frozen set %v", id, e.Owned(), e.Frozen())
			}
		}
	}
}

func (h *harness) dump() string {
	s := ""
	for i := 0; i < len(h.engines); i++ {
		s += fmt.Sprintf("  %v\n", h.node(i))
	}
	return s
}
