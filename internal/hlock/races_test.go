package hlock_test

// Deterministic replays of the message races discovered by fuzzing, each
// pinned to the mechanism that fixes it (DESIGN.md, "operational
// decisions"). These construct the exact interleavings with manual
// delivery control, so a regression fails immediately and readably.

import (
	"testing"

	"hierlock/internal/hlock"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// TestRaceReleaseCrossesGrant replays the fuzz seed-507 violation at the
// harness level. The token holds U; a mid node owns IR through a leaf
// child and requests R; while the request is in flight the leaf releases,
// so mid's Release{None} chases its own Request up the same link. The
// token grants R first, then sees the release — without the grant
// sequence-number fold it would delete mid from the copyset and let a
// subsequent upgrade to W proceed while mid holds R.
func TestRaceReleaseCrossesGrant(t *testing.T) {
	h := newHarness(t, 3, hlock.Options{})
	const tok, mid, leaf = 0, 1, 2

	h.acquire(tok, modes.U) // token node holds U locally
	// leaf becomes mid's child with IR: route leaf under mid.
	h.acquire(mid, modes.IR)
	h.drain(nil)
	h.engines[leaf] = hlock.New(leaf, testLock, mid, false, h.clocks[leaf], hlock.Options{})
	h.acquire(leaf, modes.IR)
	h.drain(nil)
	h.release(mid) // mid still owns IR via leaf
	h.drain(nil)
	if h.node(mid).Owned() != modes.IR {
		t.Fatalf("mid should own IR via leaf\n%s", h.dump())
	}

	// mid requests R (IR < R → a real request to the token)…
	h.acquire(mid, modes.R)
	// …and before it is delivered, leaf releases: mid's owned drops to
	// None and Release{None} follows the Request on the mid→tok link.
	h.release(leaf)
	h.deliverOne([2]proto.NodeID{leaf, mid})
	if q := len(h.queues[[2]proto.NodeID{mid, tok}]); q != 2 {
		t.Fatalf("expected Request+Release in flight mid→tok, have %d\n%s", q, h.dump())
	}
	h.deliverOne([2]proto.NodeID{mid, tok}) // token grants R (children[mid]=R)
	h.deliverOne([2]proto.NodeID{mid, tok}) // stale release arrives — must fold, not delete
	if got := h.node(tok).Children()[mid]; got != modes.R {
		t.Fatalf("token's entry for mid = %v, want R (stale release must fold)\n%s", got, h.dump())
	}

	// The token upgrades U→W: it must WAIT for mid's outstanding R.
	h.upgrade(tok)
	h.drain(nil)
	if h.held(tok) != modes.U {
		t.Fatalf("upgrade completed while R outstanding — the 507 violation\n%s", h.dump())
	}
	if h.held(mid) != modes.R {
		t.Fatalf("mid should hold R\n%s", h.dump())
	}
	h.release(mid)
	h.drain(nil)
	if h.held(tok) != modes.W {
		t.Fatalf("upgrade should complete after mid releases\n%s", h.dump())
	}
	h.release(tok)
	h.drain(nil)
	h.checkQuiescent()
}

// TestRaceStaleReleaseFolded constructs the crossing directly at the
// engine level: a grant is in flight to a child whose earlier release
// (with a stale ack) arrives after the grant was recorded. The folding
// rule must keep the child's entry at the granted mode.
func TestRaceStaleReleaseFolded(t *testing.T) {
	var clock proto.Clock
	e := hlock.New(0, testLock, 0, true, &clock, hlock.Options{})
	// The token holds U so an R request yields a copy grant rather than a
	// token transfer (an idle token would hand itself over).
	if _, err := e.Acquire(modes.U); err != nil {
		t.Fatal(err)
	}

	// Child 1 requests R; the token grants (children[1] = R, seq 1).
	out, err := e.Handle(&proto.Message{
		Kind: proto.KindRequest, Lock: testLock, From: 1, To: 0, TS: 1,
		Req: proto.Request{Origin: 1, Mode: modes.R, TS: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Msgs) != 1 || out.Msgs[0].Kind != proto.KindGrant || out.Msgs[0].Seq != 1 {
		t.Fatalf("expected grant seq 1, got %+v", out.Msgs)
	}
	if e.Children()[1] != modes.R {
		t.Fatalf("children = %v", e.Children())
	}

	// A release from child 1 arrives carrying ack seq 0 — it was sent
	// before the grant landed (it refers to an *earlier* grant cycle).
	// The folding rule must keep the child at R, not delete it.
	if _, err := e.Handle(&proto.Message{
		Kind: proto.KindRelease, Lock: testLock, From: 1, To: 0, TS: 2,
		Owned: modes.None, Seq: 0,
	}); err != nil {
		t.Fatal(err)
	}
	if got := e.Children()[1]; got != modes.R {
		t.Fatalf("stale release erased the in-flight grant: children[1] = %v, want R", got)
	}
	// The token must still refuse a conflicting W.
	out, err = e.Handle(&proto.Message{
		Kind: proto.KindRequest, Lock: testLock, From: 2, To: 0, TS: 3,
		Req: proto.Request{Origin: 2, Mode: modes.W, TS: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range out.Msgs {
		if m.Kind == proto.KindToken || m.Kind == proto.KindGrant {
			t.Fatalf("W served while R outstanding: %+v", m)
		}
	}

	// The genuine release (ack seq 1) clears the entry; once the token's
	// own U is released too, the queued W is served by transfer.
	if _, err = e.Handle(&proto.Message{
		Kind: proto.KindRelease, Lock: testLock, From: 1, To: 0, TS: 4,
		Owned: modes.None, Seq: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Children()[1]; ok {
		t.Fatalf("true release must clear the child entry: %v", e.Children())
	}
	out, err = e.Release()
	if err != nil {
		t.Fatal(err)
	}
	served := false
	for _, m := range out.Msgs {
		if m.Kind == proto.KindToken && m.To == 2 {
			served = true
		}
	}
	if !served {
		t.Fatalf("queued W not served after true release: %+v", out.Msgs)
	}
}

// TestRaceDetachOnReparent verifies that a node granted by a non-parent
// detaches from its old parent, preventing the stale copyset entry that
// otherwise inflates the old parent's owned mode forever.
func TestRaceDetachOnReparent(t *testing.T) {
	h := newHarness(t, 4, hlock.Options{})
	const tok, mid, leaf = 0, 1, 2

	// The token holds R throughout so grants are copies, never transfers.
	h.acquire(tok, modes.R)
	// mid holds R under the token; leaf holds IR under mid.
	h.acquire(mid, modes.R)
	h.drain(nil)
	h.engines[leaf] = hlock.New(leaf, testLock, mid, false, h.clocks[leaf], hlock.Options{})
	h.acquire(leaf, modes.IR)
	h.drain(nil)
	if h.node(mid).Children()[leaf] != modes.IR {
		t.Fatalf("leaf not under mid\n%s", h.dump())
	}
	// mid releases its own hold but still owns IR via leaf. leaf then
	// requests R: mid cannot grant (owns only IR now... owns IR, R needs
	// ≥R), so the request forwards to the token, which grants. leaf must
	// DETACH from mid; mid's entry for leaf must disappear, and mid's
	// owned mode must drop, eventually clearing at the token too.
	h.release(mid)
	h.drain(nil)
	h.release(leaf)
	h.drain(nil)
	h.acquire(leaf, modes.IR) // re-own IR under mid? mid owns nothing now…
	h.drain(nil)
	// leaf's request went mid→token; token granted; leaf.parent is token.
	if got := h.node(leaf).Parent(); got != tok {
		t.Fatalf("leaf parent = %d, want token %d\n%s", got, tok, h.dump())
	}
	if _, stale := h.node(mid).Children()[leaf]; stale {
		t.Fatalf("stale copyset entry at mid\n%s", h.dump())
	}
	h.release(leaf)
	h.release(tok)
	h.drain(nil)
	h.checkQuiescent()
}

// TestRaceDeferredAcquireThaw pins the deferred-local-acquire path: a
// node whose owned mode covers a request that is frozen must wait for the
// thaw (not emit a network request) and complete message-free when the
// freeze lifts.
func TestRaceDeferredAcquireThaw(t *testing.T) {
	h := newHarness(t, 4, hlock.Options{})
	const tok, reader, writerW = 0, 1, 2

	// reader holds IW... use IW-vs-R freezing: token holds IW, reader's
	// subtree owns IW, a queued R freezes IW everywhere.
	h.acquire(tok, modes.IW)
	h.acquire(reader, modes.IW)
	h.drain(nil)
	// Build a child under reader so reader keeps owning IW after release.
	h.engines[3] = hlock.New(3, testLock, reader, false, h.clocks[3], hlock.Options{})
	h.acquire(3, modes.IW)
	h.drain(nil)
	h.release(reader)
	h.drain(nil)
	if h.node(reader).Owned() != modes.IW {
		t.Fatalf("reader should own IW via child\n%s", h.dump())
	}
	// A queued R at the token freezes IW at every potential granter.
	h.acquire(writerW, modes.R)
	h.drain(nil)
	if !h.node(reader).Frozen().Has(modes.IW) {
		t.Fatalf("IW not frozen at reader\n%s", h.dump())
	}
	// reader now locally re-acquires IW: covered (owns IW) but frozen →
	// the engine must defer, sending NOTHING.
	msgs := h.counts[proto.KindRequest]
	h.acquire(reader, modes.IW)
	if h.counts[proto.KindRequest] != msgs {
		t.Fatal("deferred acquire must not send a request")
	}
	if h.held(reader) != modes.None {
		t.Fatal("deferred acquire must wait for the thaw")
	}
	// Drain the conflict: the IW holders release, R is served and
	// released, the freeze lifts, and the deferred acquire completes.
	h.release(tok)
	h.release(3)
	h.drain(nil)
	if h.held(writerW) != modes.R {
		t.Fatalf("R not served\n%s", h.dump())
	}
	h.release(writerW)
	h.drain(nil)
	if h.held(reader) != modes.IW {
		t.Fatalf("deferred acquire never completed\n%s", h.dump())
	}
	h.release(reader)
	h.drain(nil)
	h.checkQuiescent()
}
