package hlock_test

import (
	"testing"

	"hierlock/internal/hlock"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// crash removes a node from the harness: its undelivered traffic is
// destroyed (the LoseOnCrash model) and its oracle state cleared, as a
// fail-stop crash with memory loss would.
func (h *harness) crash(i int) {
	h.t.Helper()
	id := proto.NodeID(i)
	for pair := range h.queues {
		if pair[0] == id || pair[1] == id {
			delete(h.queues, pair)
		}
	}
	delete(h.holding, id)
	delete(h.waiting, id)
	delete(h.engines, id)
}

// reseedRound manually runs one regeneration round over the surviving
// engines, the way internal/recovery drives them: fence all, collect
// accounted state, pick the strongest holder (lowest ID on ties, the
// lowest survivor failing any holder) as root, reseed all. Returns the
// root.
func (h *harness) reseedRound(epoch uint32) proto.NodeID {
	h.t.Helper()
	ids := make([]proto.NodeID, 0, len(h.engines))
	for id := range h.engines {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	accounted := make(map[proto.NodeID]modes.Mode, len(ids))
	root, best := proto.NoNode, modes.None
	for _, id := range ids {
		e := h.engines[id]
		accounted[id] = e.Held()
		e.PrepareReseed(epoch)
		if accounted[id] != modes.None && modes.Stronger(accounted[id], best) {
			root, best = id, accounted[id]
		}
	}
	if root == proto.NoNode {
		for _, id := range ids {
			if h.engines[id].IsToken() {
				root = id
				break
			}
		}
	}
	if root == proto.NoNode {
		root = ids[0]
	}
	var copyset []proto.Request
	for _, id := range ids {
		if id != root && accounted[id] != modes.None {
			copyset = append(copyset, proto.Request{Origin: id, Mode: accounted[id]})
		}
	}
	for _, id := range ids {
		cs := []proto.Request(nil)
		if id == root {
			cs = copyset
		}
		out, lost := h.engines[id].Reseed(root, epoch, accounted[id], cs)
		if lost {
			h.t.Fatalf("node %d unexpectedly lost its hold in reseed", id)
		}
		h.absorb(id, out)
	}
	return root
}

func TestEpochFencingDropsStaleTraffic(t *testing.T) {
	h := newHarness(t, 2, hlock.Options{})
	e := h.node(1)
	e.SeedEpoch(3)
	out, err := e.Handle(&proto.Message{
		Kind: proto.KindGrant, Lock: testLock, From: 0, To: 1, TS: 5,
		Mode: modes.R, Epoch: 2, Seq: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Stale || len(out.Msgs) != 0 || len(out.Events) != 0 {
		t.Fatalf("stale-epoch grant not dropped: %+v", out)
	}
	if e.Held() != modes.None || e.StaleDrops() != 1 {
		t.Fatalf("held=%v staleDrops=%d", e.Held(), e.StaleDrops())
	}
}

func TestFencedEngineDropsAllInput(t *testing.T) {
	h := newHarness(t, 2, hlock.Options{})
	e := h.node(1)
	e.PrepareReseed(1)
	// Even a correct-epoch frame is dropped while fenced.
	out, err := e.Handle(&proto.Message{
		Kind: proto.KindGrant, Lock: testLock, From: 0, To: 1, TS: 5,
		Mode: modes.R, Epoch: 1, Seq: 1,
	})
	if err != nil || !out.Stale {
		t.Fatalf("fenced engine served a message: %+v, %v", out, err)
	}
}

// TestRecoveryOfCrashedTokenHolder is the core scenario: the token node
// dies while survivors hold copy-granted modes; a reseed round must
// rebuild a working world with the holds intact.
func TestRecoveryOfCrashedTokenHolder(t *testing.T) {
	h := newHarness(t, 4, hlock.Options{})
	h.acquire(0, modes.R)
	h.acquire(1, modes.R)
	h.acquire(2, modes.R)
	h.drain(nil)
	if h.requireToken() != 0 {
		t.Fatal("setup: token not at node 0")
	}

	h.crash(0) // the token node and its copyset bookkeeping are gone

	root := h.reseedRound(1)
	if root != 1 {
		t.Fatalf("root = %d, want the lowest surviving holder 1", root)
	}
	h.drain(nil)
	if h.requireToken() != 1 {
		t.Fatalf("token not regenerated at node 1")
	}
	// Holds survived recovery.
	for _, i := range []int{1, 2} {
		if h.held(i) != modes.R {
			t.Fatalf("node %d lost its R hold: %v", i, h.held(i))
		}
	}
	// The regenerated copyset must gate conflicting grants: a W request
	// from node 3 waits for node 2's release.
	h.acquire(3, modes.W)
	h.drain(nil)
	if h.held(3) != modes.None {
		t.Fatalf("W granted while an R hold survives\n%s", h.dump())
	}
	h.release(1)
	h.drain(nil)
	h.release(2)
	h.drain(nil)
	if h.held(3) != modes.W {
		t.Fatalf("W not granted after releases\n%s", h.dump())
	}
	h.release(3)
	h.drain(nil)
	h.checkQuiescent()
}

// TestReseedReissuesPendingRequest: a request in flight toward the dead
// node is lost with it; the reseed re-issues it to the new root.
func TestReseedReissuesPendingRequest(t *testing.T) {
	h := newHarness(t, 3, hlock.Options{})
	h.acquire(2, modes.U) // request travels toward token node 0
	if h.node(2).Pending() != modes.U {
		t.Fatal("setup: no pending request")
	}
	h.crash(0) // the request (and the token) die with node 0

	root := h.reseedRound(1)
	if root != 1 {
		t.Fatalf("root = %d, want lowest survivor 1", root)
	}
	h.drain(nil)
	if h.held(2) != modes.U {
		t.Fatalf("re-issued request not served: held=%v\n%s", h.held(2), h.dump())
	}
	h.release(2)
	h.drain(nil)
	h.checkQuiescent()
}

// TestFencedClientOpsCompleteAfterReseed: operations issued mid-round
// are recorded and complete once the new world is installed.
func TestFencedClientOpsCompleteAfterReseed(t *testing.T) {
	h := newHarness(t, 3, hlock.Options{})
	h.crash(0)
	for _, id := range []int{1, 2} {
		h.engines[proto.NodeID(id)].PrepareReseed(1)
	}
	h.acquire(2, modes.W) // issued while fenced: no messages may escape
	if got := len(h.pendingPairs()); got != 0 {
		t.Fatalf("fenced acquire sent messages: %d pairs", got)
	}
	for _, id := range []proto.NodeID{1, 2} {
		out, lost := h.engines[id].Reseed(1, 1, modes.None, nil)
		if lost {
			t.Fatalf("node %d lost a hold it never had", id)
		}
		h.absorb(id, out)
	}
	h.drain(nil)
	if h.held(2) != modes.W {
		t.Fatalf("fenced acquire never completed: %v\n%s", h.held(2), h.dump())
	}
	h.release(2)
	h.drain(nil)
	h.checkQuiescent()
}

// TestFencedReleaseCorrectsCopysetAtReseed: a release during the fence
// drops the hold locally; the reseed sends the weakening release the
// fence swallowed, so the root's regenerated copyset converges.
func TestFencedReleaseCorrectsCopysetAtReseed(t *testing.T) {
	h := newHarness(t, 4, hlock.Options{})
	h.acquire(0, modes.R)
	h.acquire(1, modes.R)
	h.drain(nil)
	h.crash(3) // an uninvolved node dies; a round still fences everyone

	// Claims are collected (node 1 claims R), then node 1 releases
	// before the round closes.
	accounted := map[proto.NodeID]modes.Mode{0: modes.R, 1: modes.R, 2: modes.None}
	for _, id := range []proto.NodeID{0, 1, 2} {
		h.engines[id].PrepareReseed(1)
	}
	h.release(1)
	if got := len(h.pendingPairs()); got != 0 {
		t.Fatalf("fenced release sent messages: %d pairs", got)
	}

	// Round closes: root 0 (strongest holder, lowest ID), copyset still
	// carries node 1's claimed R.
	for _, id := range []proto.NodeID{0, 1, 2} {
		cs := []proto.Request(nil)
		if id == 0 {
			cs = []proto.Request{{Origin: 1, Mode: modes.R}}
		}
		out, lost := h.engines[id].Reseed(0, 1, accounted[id], cs)
		if lost {
			t.Fatalf("node %d flagged lost", id)
		}
		h.absorb(id, out)
	}
	h.drain(nil)
	// The correction release must have cleared the phantom entry, or W
	// could never be granted again.
	if ch := h.node(0).Children(); len(ch) != 0 {
		t.Fatalf("phantom copyset entry survived: %v", ch)
	}
	h.release(0)
	h.acquire(2, modes.W)
	h.drain(nil)
	if h.held(2) != modes.W {
		t.Fatalf("W blocked by stale copyset\n%s", h.dump())
	}
	h.release(2)
	h.drain(nil)
	h.checkQuiescent()
}

// TestReseedFlagsUnaccountedHoldAsLost: a node that missed the round
// (restarted) finds its hold unaccounted; the reseed drops it and says
// so.
func TestReseedFlagsUnaccountedHoldAsLost(t *testing.T) {
	h := newHarness(t, 2, hlock.Options{})
	h.acquire(1, modes.R)
	h.drain(nil)
	e := h.node(1)
	// A round completed without node 1 (it was presumed dead); the hint
	// reseeds it with accounted=None.
	out, lost := e.Reseed(0, 2, modes.None, nil)
	if !lost {
		t.Fatal("unaccounted hold not flagged lost")
	}
	if e.Held() != modes.None {
		t.Fatalf("lost hold retained: %v", e.Held())
	}
	if len(out.Msgs) != 0 {
		t.Fatalf("lost reseed sent messages: %+v", out.Msgs)
	}
	if e.Epoch() != 2 || e.Parent() != 0 || e.IsToken() {
		t.Fatalf("reseeded state wrong: %v", e)
	}
}

// TestEnqueueDedupsReissuedRequest: the same (origin, trace) request
// arriving twice — a re-issue racing the original — is queued once.
func TestEnqueueDedupsReissuedRequest(t *testing.T) {
	h := newHarness(t, 3, hlock.Options{})
	h.acquire(0, modes.W)
	tr := proto.TraceID{Node: 2, Seq: 9}
	msg := proto.Message{
		Kind: proto.KindRequest, Lock: testLock, From: 2, To: 0, TS: 3,
		Req: proto.Request{Origin: 2, Mode: modes.R, TS: 3, Trace: tr},
	}
	e := h.node(0)
	for i := 0; i < 2; i++ {
		m := msg
		if _, err := e.Handle(&m); err != nil {
			t.Fatal(err)
		}
	}
	if e.QueueLen() != 1 {
		t.Fatalf("duplicate request queued: len=%d", e.QueueLen())
	}
}

func TestSeedEpochKeepsEngineEvictable(t *testing.T) {
	h := newHarness(t, 2, hlock.Options{})
	e := h.node(1)
	if !e.AtInitialState() {
		t.Fatal("fresh engine not at initial state")
	}
	e.PrepareReseed(1)
	if e.AtInitialState() {
		t.Fatal("fenced engine claims initial state")
	}
	clk := &proto.Clock{}
	ne := hlock.New(1, testLock, 0, false, clk, hlock.Options{})
	ne.SeedEpoch(4)
	if !ne.AtInitialState() {
		t.Fatal("seeded fresh engine not at initial state")
	}
	if _, err := ne.Acquire(modes.R); err != nil {
		t.Fatal(err)
	}
	if ne.AtInitialState() {
		t.Fatal("engine with pending request claims initial state")
	}
}
