package hlock_test

import (
	"testing"

	"hierlock/internal/hlock"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// step delivers every message in out to its destination engine and
// returns everything the destinations produced, concatenated.
func step(t *testing.T, engines map[proto.NodeID]*hlock.Engine, out hlock.Out) hlock.Out {
	t.Helper()
	var next hlock.Out
	for i := range out.Msgs {
		m := out.Msgs[i]
		o, err := engines[m.To].Handle(&m)
		if err != nil {
			t.Fatalf("deliver %v %d->%d: %v", m.Kind, m.From, m.To, err)
		}
		next.Msgs = append(next.Msgs, o.Msgs...)
		next.Events = append(next.Events, o.Events...)
	}
	return next
}

// TestTracePropagation drives a 3-node star through a token transfer, a
// forwarded request, a copy grant and a freeze push, checking at every
// hop that the origin request's trace ID survives unchanged.
func TestTracePropagation(t *testing.T) {
	engines := make(map[proto.NodeID]*hlock.Engine)
	for i := proto.NodeID(0); i < 3; i++ {
		engines[i] = hlock.New(i, testLock, 0, i == 0, &proto.Clock{}, hlock.Options{})
	}
	trW := proto.TraceID{Node: 1, Seq: 99}

	// Node 1 requests W: the request message must carry trW end-to-end.
	out, err := engines[1].AcquireTraced(modes.W, 0, trW)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Msgs) != 1 || out.Msgs[0].Kind != proto.KindRequest {
		t.Fatalf("acquire out: %+v", out)
	}
	if out.Msgs[0].Trace != trW || out.Msgs[0].Req.Trace != trW {
		t.Fatalf("request lost trace: msg=%v req=%v", out.Msgs[0].Trace, out.Msgs[0].Req.Trace)
	}

	// Token node 0 serves it by transfer; the token message and the
	// resulting acquired event must keep trW.
	out = step(t, engines, out)
	if len(out.Msgs) != 1 || out.Msgs[0].Kind != proto.KindToken {
		t.Fatalf("expected token transfer, got %+v", out)
	}
	if out.Msgs[0].Trace != trW {
		t.Fatalf("token transfer lost trace: %v", out.Msgs[0].Trace)
	}
	out = step(t, engines, out)
	if len(out.Events) != 1 || out.Events[0].Kind != hlock.EventAcquired || out.Events[0].Trace != trW {
		t.Fatalf("acquired event lost trace: %+v", out.Events)
	}

	// Node 2 still points at node 0, which is now a stale router: its
	// request must be forwarded (node 0 → node 1) with the trace intact —
	// the cross-node forwarded hop.
	trR := proto.TraceID{Node: 2, Seq: 50}
	out, err = engines[2].AcquireTraced(modes.R, 0, trR)
	if err != nil {
		t.Fatal(err)
	}
	fwd := step(t, engines, out) // node 0 forwards
	if len(fwd.Msgs) != 1 || fwd.Msgs[0].Kind != proto.KindRequest ||
		fwd.Msgs[0].From != 0 || fwd.Msgs[0].To != 1 {
		t.Fatalf("expected forward 0->1, got %+v", fwd.Msgs)
	}
	if fwd.Msgs[0].Trace != trR || fwd.Msgs[0].Req.Trace != trR {
		t.Fatalf("forward lost trace: msg=%v req=%v", fwd.Msgs[0].Trace, fwd.Msgs[0].Req.Trace)
	}
	// Node 1 holds W: the R request queues at the token. Releasing with a
	// fresh trace serves the queued R by transfer, which must carry the
	// *requester's* trace, not the release's.
	if out := step(t, engines, fwd); len(out.Msgs) != 0 {
		t.Fatalf("conflicting request should queue, got %+v", out.Msgs)
	}
	relOut, err := engines[1].ReleaseTraced(proto.TraceID{Node: 1, Seq: 100})
	if err != nil {
		t.Fatal(err)
	}
	var token *proto.Message
	for i := range relOut.Msgs {
		if relOut.Msgs[i].Kind == proto.KindToken {
			token = &relOut.Msgs[i]
		}
	}
	if token == nil || token.Trace != trR {
		t.Fatalf("queued request's transfer lost trace: %+v", relOut.Msgs)
	}
	out = step(t, engines, relOut)
	for _, ev := range out.Events {
		if ev.Kind == hlock.EventAcquired && ev.Trace != trR {
			t.Fatalf("queued grant event trace = %v, want %v", ev.Trace, trR)
		}
	}
	if _, err := engines[2].ReleaseTraced(proto.TraceID{}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceOnCopyGrantAndFreeze checks that copy grants carry the
// requester's trace and that freeze pushes carry the trace of the
// request whose queuing triggered the freeze.
func TestTraceOnCopyGrantAndFreeze(t *testing.T) {
	engines := make(map[proto.NodeID]*hlock.Engine)
	for i := proto.NodeID(0); i < 3; i++ {
		engines[i] = hlock.New(i, testLock, 0, i == 0, &proto.Clock{}, hlock.Options{})
	}
	// Token node holds R itself, so a remote R is served by copy grant.
	if _, err := engines[0].AcquireTraced(modes.R, 0, proto.TraceID{Node: 0, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	trR := proto.TraceID{Node: 1, Seq: 7}
	out, err := engines[1].AcquireTraced(modes.R, 0, trR)
	if err != nil {
		t.Fatal(err)
	}
	grant := step(t, engines, out)
	if len(grant.Msgs) != 1 || grant.Msgs[0].Kind != proto.KindGrant {
		t.Fatalf("expected copy grant, got %+v", grant.Msgs)
	}
	if grant.Msgs[0].Trace != trR {
		t.Fatalf("copy grant lost trace: %v", grant.Msgs[0].Trace)
	}
	if out = step(t, engines, grant); len(out.Events) != 1 || out.Events[0].Trace != trR {
		t.Fatalf("grant event lost trace: %+v", out.Events)
	}

	// A conflicting W now queues at the token and freezes reader modes;
	// the freeze push to child 1 must carry the W request's trace.
	trump := proto.TraceID{Node: 2, Seq: 13}
	out, err = engines[2].AcquireTraced(modes.W, 0, trump)
	if err != nil {
		t.Fatal(err)
	}
	frz := step(t, engines, out)
	var freeze *proto.Message
	for i := range frz.Msgs {
		if frz.Msgs[i].Kind == proto.KindFreeze {
			freeze = &frz.Msgs[i]
		}
	}
	if freeze == nil {
		t.Fatalf("expected freeze push, got %+v", frz.Msgs)
	}
	if freeze.Trace != trump {
		t.Fatalf("freeze push trace = %v, want %v", freeze.Trace, trump)
	}
}
