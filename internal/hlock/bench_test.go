package hlock_test

// Micro-benchmarks of the protocol engine itself: pure state-machine
// steps with no I/O, showing the per-operation CPU cost a deployment
// pays on top of network latency.

import (
	"testing"

	"hierlock/internal/hlock"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

func BenchmarkLocalAcquireRelease(b *testing.B) {
	var clock proto.Clock
	e := hlock.New(0, testLock, 0, true, &clock, hlock.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Acquire(modes.W); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Release(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRequestGrantRoundTrip(b *testing.B) {
	// The token (holding U) serves R copy requests from a child that
	// releases each time: request → grant → release, three engine steps.
	var tclock, cclock proto.Clock
	tok := hlock.New(0, testLock, 0, true, &tclock, hlock.Options{})
	child := hlock.New(1, testLock, 0, false, &cclock, hlock.Options{})
	if _, err := tok.Acquire(modes.U); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := child.Acquire(modes.R)
		if err != nil {
			b.Fatal(err)
		}
		gout, err := tok.Handle(&out.Msgs[0])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := child.Handle(&gout.Msgs[0]); err != nil {
			b.Fatal(err)
		}
		rout, err := child.Release()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tok.Handle(&rout.Msgs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueueChurn(b *testing.B) {
	// The token holds W; eight writers queue; release serves them
	// round-robin via token transfers — stresses enqueue/serveQueue.
	h := newHarness(b, 9, hlock.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < 9; n++ {
			h.acquire(n, modes.W)
		}
		for served := 0; served < 9; {
			h.drain(nil)
			for n := 0; n < 9; n++ {
				if h.node(n).Held() == modes.W {
					h.release(n)
					served++
				}
			}
		}
		h.drain(nil)
	}
}

func BenchmarkFingerprint(b *testing.B) {
	var clock proto.Clock
	e := hlock.New(0, testLock, 0, true, &clock, hlock.Options{})
	_, _ = e.Acquire(modes.U)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Fingerprint()
	}
}
