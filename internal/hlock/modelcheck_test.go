package hlock_test

// A bounded explicit-state model checker for the protocol: it explores
// EVERY interleaving of client operations and (per-link FIFO) message
// deliveries for small configurations, checking mutual exclusion and
// token uniqueness in every reachable state and structural consistency in
// every terminal state. Unlike the randomized fuzz, a pass here is a
// proof for the covered configuration.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"hierlock/internal/hlock"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// mcPhase tracks each node's progress through its script.
type mcPhase uint8

const (
	mcIdle        mcPhase = iota // not yet requested
	mcWaiting                    // acquire issued, grant pending
	mcHolding                    // inside the critical section
	mcUpgradeWait                // upgrade issued (U scripts with upgrades enabled)
	mcUpgraded                   // holding W after an upgrade
	mcDone                       // released
)

// mcState is one global system state.
type mcState struct {
	engines []*hlock.Engine
	clocks  []*proto.Clock
	// queues are per ordered link, FIFO.
	queues map[[2]proto.NodeID][]proto.Message
	phase  []mcPhase
	// round counts completed acquire/release cycles per node.
	round []int
}

func (s *mcState) clone() *mcState {
	n := len(s.engines)
	ns := &mcState{
		engines: make([]*hlock.Engine, n),
		clocks:  make([]*proto.Clock, n),
		queues:  make(map[[2]proto.NodeID][]proto.Message, len(s.queues)),
		phase:   append([]mcPhase(nil), s.phase...),
		round:   append([]int(nil), s.round...),
	}
	for i := 0; i < n; i++ {
		ns.clocks[i] = s.clocks[i].Clone()
		ns.engines[i] = s.engines[i].Clone(ns.clocks[i])
	}
	for k, q := range s.queues {
		if len(q) > 0 {
			ns.queues[k] = append([]proto.Message(nil), q...)
		}
	}
	return ns
}

// key canonically encodes the state for deduplication. Lamport clock
// values and message timestamps are excluded — the engine never branches
// on them — which collapses behaviorally identical interleavings and
// keeps the search space tractable.
func (s *mcState) key() string {
	var b strings.Builder
	for i, e := range s.engines {
		fmt.Fprintf(&b, "N%d[%s|ph%d|rd%d]", i, e.Fingerprint(), s.phase[i], s.round[i])
	}
	links := make([][2]proto.NodeID, 0, len(s.queues))
	for k, q := range s.queues {
		if len(q) > 0 {
			links = append(links, k)
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	for _, k := range links {
		fmt.Fprintf(&b, "L%d-%d:", k[0], k[1])
		for _, m := range s.queues[k] {
			fmt.Fprintf(&b, "%d/%d/%d/%d/%02x/%d;", m.Kind, m.Mode, m.Owned, m.Seq, uint8(m.Frozen), m.Req.Origin)
			fmt.Fprintf(&b, "%d/", m.Req.Mode)
			for _, r := range m.Queue {
				fmt.Fprintf(&b, "q%d:%d,", r.Origin, r.Mode)
			}
		}
	}
	return b.String()
}

// checker explores the state space.
type checker struct {
	t       *testing.T
	script  []modes.Mode // per node: the one mode it acquires then releases
	visited map[string]struct{}
	states  int
	maxQ    int
	limit   int
	// graph records each state's successor keys and which states are
	// terminal, enabling the liveness check (every reachable state can
	// reach a terminal state — no livelocks).
	succ     map[string][]string
	terminal map[string]bool
	// upgrades additionally exercises Rule 7: every U holder upgrades to
	// W before releasing.
	upgrades bool
	// rounds is how many acquire/release cycles each node performs
	// (default 1). Higher values exercise re-acquisition: message-free
	// local acquires, reversal reuse, copyset rebuilding.
	rounds int
}

// roundsWanted returns the configured rounds (default 1).
func (c *checker) roundsWanted() int {
	if c.rounds <= 0 {
		return 1
	}
	return c.rounds
}

func (c *checker) fail(s *mcState, format string, args ...interface{}) {
	c.t.Helper()
	var b strings.Builder
	for i, e := range s.engines {
		fmt.Fprintf(&b, "  node %d phase %d: %v\n", i, s.phase[i], e)
	}
	for k, q := range s.queues {
		for _, m := range q {
			fmt.Fprintf(&b, "  in flight %d→%d: %v mode=%v req=%+v\n", k[0], k[1], m.Kind, m.Mode, m.Req)
		}
	}
	c.t.Fatalf(format+"\nscript %v\nstate:\n%s", append(args, c.script, b.String())...)
}

// safety checks invariants that must hold in EVERY reachable state.
func (c *checker) safety(s *mcState) {
	c.t.Helper()
	// Mutual exclusion: held modes pairwise compatible.
	for i, a := range s.engines {
		if a.Held() == modes.None {
			continue
		}
		for j, b := range s.engines {
			if i < j && b.Held() != modes.None && !modes.Compatible(a.Held(), b.Held()) {
				c.fail(s, "MUTUAL EXCLUSION: node %d holds %v, node %d holds %v", i, a.Held(), j, b.Held())
			}
		}
	}
	// Token uniqueness: exactly one token, resident or in flight.
	tokens := 0
	for _, e := range s.engines {
		if e.IsToken() {
			tokens++
		}
	}
	for _, q := range s.queues {
		for _, m := range q {
			if m.Kind == proto.KindToken {
				tokens++
			}
		}
	}
	if tokens != 1 {
		c.fail(s, "TOKEN COUNT = %d", tokens)
	}
}

// checkTerminal checks invariants of quiescent final states.
func (c *checker) checkTerminal(s *mcState) {
	c.t.Helper()
	for i := range s.engines {
		if s.phase[i] != mcDone {
			c.fail(s, "node %d never completed (phase %d)", i, s.phase[i])
		}
	}
	for i, e := range s.engines {
		if e.Held() != modes.None || e.Pending() != modes.None || e.QueueLen() != 0 {
			c.fail(s, "node %d not quiescent", i)
		}
		for child, m := range e.Children() {
			if got := s.engines[child].Owned(); got != m {
				c.fail(s, "node %d records child %d owning %v but it owns %v", i, child, m, got)
			}
		}
	}
}

// explore runs DFS from s over all enabled actions.
func (c *checker) explore(s *mcState) {
	c.t.Helper()
	k := s.key()
	if _, seen := c.visited[k]; seen {
		return
	}
	c.visited[k] = struct{}{}
	c.states++
	if c.states > c.limit {
		c.t.Fatalf("state-space limit exceeded (%d states) for script %v", c.limit, c.script)
	}
	c.safety(s)

	acted := false
	step := func(mutate func(ns *mcState) bool) {
		acted = true
		ns := s.clone()
		if mutate(ns) {
			if c.succ != nil {
				c.succ[k] = append(c.succ[k], ns.key())
			}
			c.explore(ns)
		}
	}

	// Client actions.
	for i := range s.engines {
		i := i
		switch s.phase[i] {
		case mcIdle:
			step(func(ns *mcState) bool {
				ns.phase[i] = mcWaiting
				out, err := ns.engines[i].Acquire(c.script[i])
				if err != nil {
					c.fail(ns, "Acquire: %v", err)
				}
				c.absorb(ns, proto.NodeID(i), out)
				return true
			})
		case mcHolding:
			if c.upgrades && c.script[i] == modes.U {
				step(func(ns *mcState) bool {
					ns.phase[i] = mcUpgradeWait
					out, err := ns.engines[i].Upgrade()
					if err != nil {
						c.fail(ns, "Upgrade: %v", err)
					}
					c.absorb(ns, proto.NodeID(i), out)
					return true
				})
				break
			}
			step(func(ns *mcState) bool {
				ns.round[i]++
				ns.phase[i] = mcDone
				if ns.round[i] < c.roundsWanted() {
					ns.phase[i] = mcIdle
				}
				out, err := ns.engines[i].Release()
				if err != nil {
					c.fail(ns, "Release: %v", err)
				}
				c.absorb(ns, proto.NodeID(i), out)
				return true
			})
		case mcUpgraded:
			step(func(ns *mcState) bool {
				ns.round[i]++
				ns.phase[i] = mcDone
				if ns.round[i] < c.roundsWanted() {
					ns.phase[i] = mcIdle
				}
				if got := ns.engines[i].Held(); got != modes.W {
					c.fail(ns, "node %d upgraded but holds %v", i, got)
				}
				out, err := ns.engines[i].Release()
				if err != nil {
					c.fail(ns, "Release after upgrade: %v", err)
				}
				c.absorb(ns, proto.NodeID(i), out)
				return true
			})
		}
	}
	// Deliveries: the head of every nonempty link.
	for k, q := range s.queues {
		if len(q) == 0 {
			continue
		}
		k := k
		step(func(ns *mcState) bool {
			msg := ns.queues[k][0]
			ns.queues[k] = ns.queues[k][1:]
			if len(ns.queues[k]) == 0 {
				delete(ns.queues, k)
			}
			out, err := ns.engines[msg.To].Handle(&msg)
			if err != nil {
				c.fail(ns, "Handle(%v %d→%d): %v", msg.Kind, msg.From, msg.To, err)
			}
			c.absorb(ns, msg.To, out)
			return true
		})
	}

	if !acted {
		c.checkTerminal(s)
		if c.terminal != nil {
			c.terminal[k] = true
		}
	}
}

// checkLiveness verifies that every explored state can reach a terminal
// state: a violation would be a livelock (states cycling forever with no
// way to complete). Call after explore with succ/terminal enabled.
func (c *checker) checkLiveness() {
	c.t.Helper()
	// Backward reachability: start from terminal states, walk predecessor
	// edges. Build the reverse adjacency first.
	pred := make(map[string][]string, len(c.succ))
	for from, tos := range c.succ {
		for _, to := range tos {
			pred[to] = append(pred[to], from)
		}
	}
	reach := make(map[string]bool, len(c.visited))
	var stack []string
	for k := range c.terminal {
		reach[k] = true
		stack = append(stack, k)
	}
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range pred[k] {
			if !reach[p] {
				reach[p] = true
				stack = append(stack, p)
			}
		}
	}
	dead := 0
	for k := range c.visited {
		if !reach[k] {
			dead++
		}
	}
	if dead > 0 {
		c.t.Fatalf("LIVELOCK: %d of %d states cannot reach any terminal state (script %v)",
			dead, len(c.visited), c.script)
	}
}

// absorb routes a step's output into the state.
func (c *checker) absorb(s *mcState, node proto.NodeID, out hlock.Out) {
	c.t.Helper()
	for _, m := range out.Msgs {
		key := [2]proto.NodeID{m.From, m.To}
		s.queues[key] = append(s.queues[key], m)
		if len(s.queues[key]) > c.maxQ {
			c.maxQ = len(s.queues[key])
		}
	}
	for _, ev := range out.Events {
		switch ev.Kind {
		case hlock.EventAcquired:
			if s.phase[node] != mcWaiting {
				c.fail(s, "node %d granted in phase %d", node, s.phase[node])
			}
			s.phase[node] = mcHolding
		case hlock.EventUpgraded:
			if s.phase[node] != mcUpgradeWait {
				c.fail(s, "node %d upgraded in phase %d", node, s.phase[node])
			}
			s.phase[node] = mcUpgraded
		}
	}
}

func newMCState(n int, opt hlock.Options) *mcState {
	s := &mcState{
		engines: make([]*hlock.Engine, n),
		clocks:  make([]*proto.Clock, n),
		queues:  make(map[[2]proto.NodeID][]proto.Message),
		phase:   make([]mcPhase, n),
		round:   make([]int, n),
	}
	for i := 0; i < n; i++ {
		s.clocks[i] = &proto.Clock{}
		s.engines[i] = hlock.New(proto.NodeID(i), testLock, 0, i == 0, s.clocks[i], opt)
	}
	return s
}

// TestModelCheckPairs exhaustively explores every interleaving for every
// ordered mode pair on two nodes.
func TestModelCheckPairs(t *testing.T) {
	for _, m0 := range modes.All {
		for _, m1 := range modes.All {
			m0, m1 := m0, m1
			t.Run(fmt.Sprintf("%v-%v", m0, m1), func(t *testing.T) {
				c := &checker{
					t:       t,
					script:  []modes.Mode{m0, m1},
					visited: make(map[string]struct{}),
					limit:   2_000_000,
				}
				c.explore(newMCState(2, hlock.Options{}))
				t.Logf("explored %d states", c.states)
			})
		}
	}
}

// TestModelCheckTriples explores all interleavings for three nodes over a
// representative set of mode triples (the full 125-triple product at
// three nodes is explored in -short=false runs of the heavy test below).
func TestModelCheckTriples(t *testing.T) {
	triples := [][]modes.Mode{
		{modes.W, modes.W, modes.W},    // maximal token movement
		{modes.IR, modes.R, modes.W},   // mixed compatibility
		{modes.IW, modes.R, modes.IW},  // freeze-triggering conflict
		{modes.U, modes.R, modes.IR},   // upgrade-class exclusivity
		{modes.U, modes.U, modes.W},    // competing upgrades
		{modes.IR, modes.IR, modes.IR}, // all-compatible
		{modes.R, modes.IW, modes.U},   // pairwise conflicts
		{modes.W, modes.IR, modes.U},
	}
	for _, script := range triples {
		script := script
		t.Run(fmt.Sprintf("%v", script), func(t *testing.T) {
			c := &checker{
				t:       t,
				script:  script,
				visited: make(map[string]struct{}),
				limit:   5_000_000,
			}
			c.explore(newMCState(3, hlock.Options{}))
			t.Logf("explored %d states (max link queue %d)", c.states, c.maxQ)
		})
	}
}

// TestModelCheckAllTriples is the heavyweight exhaustive sweep over all
// 125 mode triples on three nodes.
func TestModelCheckAllTriples(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	total := 0
	for _, m0 := range modes.All {
		for _, m1 := range modes.All {
			for _, m2 := range modes.All {
				c := &checker{
					t:       t,
					script:  []modes.Mode{m0, m1, m2},
					visited: make(map[string]struct{}),
					limit:   5_000_000,
				}
				c.explore(newMCState(3, hlock.Options{}))
				total += c.states
			}
		}
	}
	t.Logf("explored %d states across 125 triples", total)
}

// TestModelCheckQuads explores every interleaving for four nodes over
// representative mode quadruples.
func TestModelCheckQuads(t *testing.T) {
	quads := [][]modes.Mode{
		{modes.W, modes.W, modes.W, modes.W},
		{modes.IR, modes.R, modes.IW, modes.W},
		{modes.IW, modes.R, modes.IW, modes.R},
		{modes.U, modes.R, modes.IR, modes.W},
		{modes.IR, modes.IR, modes.W, modes.IR},
		{modes.U, modes.U, modes.IW, modes.R},
	}
	for _, script := range quads {
		script := script
		t.Run(fmt.Sprintf("%v", script), func(t *testing.T) {
			c := &checker{
				t:       t,
				script:  script,
				visited: make(map[string]struct{}),
				limit:   8_000_000,
			}
			c.explore(newMCState(4, hlock.Options{}))
			t.Logf("explored %d states (max link queue %d)", c.states, c.maxQ)
		})
	}
}

// TestModelCheckUpgrades explores every interleaving of upgrade flows:
// each U script acquires U, upgrades to W, and only then releases, with
// readers and writers interleaved arbitrarily.
func TestModelCheckUpgrades(t *testing.T) {
	scripts := [][]modes.Mode{
		{modes.U, modes.R},
		{modes.U, modes.IR},
		{modes.U, modes.W},
		{modes.U, modes.U},
		{modes.U, modes.R, modes.IR},
		{modes.U, modes.R, modes.R},
		{modes.U, modes.U, modes.R},
		{modes.U, modes.IW, modes.IR},
	}
	for _, script := range scripts {
		script := script
		t.Run(fmt.Sprintf("%v", script), func(t *testing.T) {
			c := &checker{
				t:        t,
				script:   script,
				visited:  make(map[string]struct{}),
				limit:    5_000_000,
				upgrades: true,
			}
			c.explore(newMCState(len(script), hlock.Options{}))
			t.Logf("explored %d states", c.states)
		})
	}
}

// TestModelCheckNoReversalVariant model-checks the strict-tables variant.
func TestModelCheckNoReversalVariant(t *testing.T) {
	for _, script := range [][]modes.Mode{
		{modes.W, modes.R, modes.IW},
		{modes.U, modes.IW, modes.R},
	} {
		script := script
		t.Run(fmt.Sprintf("%v", script), func(t *testing.T) {
			c := &checker{
				t:       t,
				script:  script,
				visited: make(map[string]struct{}),
				limit:   5_000_000,
			}
			c.explore(newMCState(3, hlock.Options{NoPathReversal: true}))
			t.Logf("explored %d states", c.states)
		})
	}
}

// TestModelCheckTwoRounds explores every interleaving of two full
// acquire/release cycles per node, covering re-acquisition paths:
// message-free local acquires, reversal reuse and copyset rebuilding.
func TestModelCheckTwoRounds(t *testing.T) {
	scripts := [][]modes.Mode{
		{modes.W, modes.W},
		{modes.R, modes.IW},
		{modes.IR, modes.W},
		{modes.U, modes.R},
		{modes.IR, modes.R, modes.IW},
		{modes.W, modes.IR, modes.R},
	}
	for _, script := range scripts {
		script := script
		t.Run(fmt.Sprintf("%v", script), func(t *testing.T) {
			c := &checker{
				t:       t,
				script:  script,
				visited: make(map[string]struct{}),
				limit:   8_000_000,
				rounds:  2,
			}
			c.explore(newMCState(len(script), hlock.Options{}))
			t.Logf("explored %d states", c.states)
		})
	}
}

// TestModelCheckLiveness re-explores representative scripts with the
// state graph recorded and verifies no livelock exists: every reachable
// state has a path to completion.
func TestModelCheckLiveness(t *testing.T) {
	scripts := [][]modes.Mode{
		{modes.W, modes.W, modes.W},
		{modes.IW, modes.R, modes.IW},
		{modes.U, modes.R, modes.IR},
		{modes.IR, modes.R, modes.W},
		{modes.U, modes.U, modes.W},
	}
	for _, script := range scripts {
		script := script
		t.Run(fmt.Sprintf("%v", script), func(t *testing.T) {
			c := &checker{
				t:        t,
				script:   script,
				visited:  make(map[string]struct{}),
				limit:    5_000_000,
				succ:     make(map[string][]string),
				terminal: make(map[string]bool),
			}
			c.explore(newMCState(len(script), hlock.Options{}))
			c.checkLiveness()
			t.Logf("liveness verified over %d states (%d terminal)", c.states, len(c.terminal))
		})
	}
}
