package hlock_test

import (
	"testing"

	"hierlock/internal/hlock"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

func TestTokenLocalAcquireNoMessages(t *testing.T) {
	h := newHarness(t, 2, hlock.Options{})
	h.acquire(0, modes.W)
	if h.held(0) != modes.W {
		t.Fatalf("token node should acquire W locally, held=%v", h.held(0))
	}
	if len(h.pendingPairs()) != 0 {
		t.Fatal("local acquisition must send no messages")
	}
	h.release(0)
	h.checkQuiescent()
}

func TestTokenTransferOnStrongerRequest(t *testing.T) {
	h := newHarness(t, 2, hlock.Options{})
	h.acquire(1, modes.W)
	h.drain(nil)
	if h.held(1) != modes.W {
		t.Fatalf("node 1 should hold W, held=%v\n%s", h.held(1), h.dump())
	}
	if tok := h.requireToken(); tok != 1 {
		t.Fatalf("token should have transferred to node 1, is at %d", tok)
	}
	// Idle token transfers: exactly one request + one token message.
	if h.counts[proto.KindRequest] != 1 || h.counts[proto.KindToken] != 1 {
		t.Fatalf("message counts: %v", h.counts)
	}
	h.release(1)
	h.drain(nil)
	h.checkQuiescent()

	// The old root now routes through the new root.
	h.acquire(0, modes.R)
	h.drain(nil)
	if h.held(0) != modes.R {
		t.Fatalf("node 0 failed to reacquire via new root\n%s", h.dump())
	}
	h.release(0)
	h.drain(nil)
	h.checkQuiescent()
}

func TestCopyGrantForCompatibleWeaker(t *testing.T) {
	h := newHarness(t, 3, hlock.Options{})
	h.acquire(0, modes.R) // token holds R locally
	h.acquire(1, modes.R) // compatible, equal strength: copy grant
	h.acquire(2, modes.IR)
	h.drain(nil)
	for i, want := range []modes.Mode{modes.R, modes.R, modes.IR} {
		if h.held(i) != want {
			t.Fatalf("node %d holds %v, want %v\n%s", i, h.held(i), want, h.dump())
		}
	}
	if h.requireToken() != 0 {
		t.Fatal("token must not move for copy grants")
	}
	if h.counts[proto.KindToken] != 0 {
		t.Fatalf("no token transfer expected: %v", h.counts)
	}
	h.release(1)
	h.release(2)
	h.release(0)
	h.drain(nil)
	h.checkQuiescent()
}

func TestIncompatibleQueuesAtToken(t *testing.T) {
	h := newHarness(t, 3, hlock.Options{})
	h.acquire(0, modes.W)
	h.acquire(1, modes.R)
	h.acquire(2, modes.IR)
	h.drain(nil)
	if h.held(1) != modes.None || h.held(2) != modes.None {
		t.Fatalf("requests must wait while W is held\n%s", h.dump())
	}
	if h.node(0).QueueLen() != 2 {
		t.Fatalf("token queue length = %d, want 2", h.node(0).QueueLen())
	}
	h.release(0)
	h.drain(nil)
	if h.held(1) != modes.R || h.held(2) != modes.IR {
		t.Fatalf("queued requests not served after release\n%s", h.dump())
	}
	h.release(1)
	h.release(2)
	h.drain(nil)
	h.checkQuiescent()
}

// TestPaperFigure2 replays the paper's grant/release/queue example:
// A holds R (token); B holds IR under A; C holds IR under B. B releases IR
// (no message: still owns it via C). B then requests R and D requests R via
// B; B queues D's request locally and serves it after A grants B's.
func TestPaperFigure2(t *testing.T) {
	h := newHarness(t, 4, hlock.Options{})
	const a, b, c, d = 0, 1, 2, 3

	// Build Figure 2(a): reparent C and D under B by construction order.
	h.acquire(a, modes.R)
	h.acquire(b, modes.IR)
	h.drain(nil)
	// C initially points at node 0 (star); for the figure C must route via
	// B, so C acquires after B owns IR and was made C's parent. We emulate
	// the topology with a fresh engine: C's initial parent is B.
	hC := hlock.New(c, testLock, b, false, h.clocks[c], hlock.Options{})
	h.engines[c] = hC
	hD := hlock.New(d, testLock, b, false, h.clocks[d], hlock.Options{})
	h.engines[d] = hD

	h.acquire(c, modes.IR)
	h.drain(nil)
	if h.held(c) != modes.IR {
		t.Fatalf("C should hold IR granted by B\n%s", h.dump())
	}
	if _, ok := h.node(b).Children()[proto.NodeID(c)]; !ok {
		t.Fatalf("C must be in B's copyset\n%s", h.dump())
	}

	// Figure 2(b): B releases IR; no release message travels because B
	// still owns IR through C.
	before := h.counts[proto.KindRelease]
	h.release(b)
	h.drain(nil)
	if h.counts[proto.KindRelease] != before {
		t.Fatal("B's release must be message-free while C still owns IR (Rule 5.2)")
	}
	if got := h.node(b).Owned(); got != modes.IR {
		t.Fatalf("B owned = %v, want IR", got)
	}

	// Figure 2(c): B requests R; D requests R through B, which queues it.
	h.acquire(b, modes.R)
	// Do not deliver yet: D's request must reach B while {B,R} is in
	// transit, as in the figure.
	h.acquire(d, modes.R)
	// Deliver D→B first.
	h.deliverOne([2]proto.NodeID{d, b})
	if h.node(b).QueueLen() != 1 {
		t.Fatalf("B must queue D's R request (Rules 3.1, 4.1), queue=%d", h.node(b).QueueLen())
	}

	// Figure 2(d): A grants {B,R}; B, on receipt, grants the queued {D,R}.
	h.drain(nil)
	if h.held(b) != modes.R || h.held(d) != modes.R {
		t.Fatalf("B and D should both hold R\n%s", h.dump())
	}
	if h.requireToken() != a {
		t.Fatal("token must remain at A")
	}
	h.release(b)
	h.release(d)
	h.release(c)
	h.release(a)
	h.drain(nil)
	h.checkQuiescent()
}

// TestPaperFigure3 replays the freezing example: the token node A owns IW
// (held) with B owning IW through C; a read request {D,R} arrives, is
// queued, and IW becomes frozen so that later IW requests cannot starve D.
func TestPaperFigure3(t *testing.T) {
	h := newHarness(t, 6, hlock.Options{})
	const a, b, c, d, e, f = 0, 1, 2, 3, 4, 5

	h.acquire(a, modes.IW)
	h.acquire(b, modes.IW)
	h.drain(nil)
	// C under B, D under B (figure routes D's request through the tree).
	h.engines[c] = hlock.New(c, testLock, b, false, h.clocks[c], hlock.Options{})
	h.engines[d] = hlock.New(d, testLock, b, false, h.clocks[d], hlock.Options{})
	h.acquire(c, modes.IW) // granted by B (owns IW)
	h.drain(nil)
	if h.held(c) != modes.IW {
		t.Fatalf("C should hold IW from B\n%s", h.dump())
	}
	// B releases; it still owns IW via C — no release message.
	h.release(b)
	h.drain(nil)

	// Figure 3(a): D requests R. It forwards through B to A and queues.
	h.acquire(d, modes.R)
	h.drain(nil)
	if h.held(d) != modes.None {
		t.Fatalf("D's R must wait for IW releases\n%s", h.dump())
	}
	if q := h.node(a).QueueLen(); q != 1 {
		t.Fatalf("token queue = %d, want 1", q)
	}
	// Figure 3(b): IW is frozen at the token and at the potential granters
	// B and C.
	for _, n := range []int{a, b, c} {
		if !h.engines[proto.NodeID(n)].Frozen().Has(modes.IW) {
			t.Fatalf("node %d must have IW frozen\n%s", n, h.dump())
		}
	}
	// A new IW request (from E) must now queue rather than being granted,
	// even though IW is compatible with the token's owned mode.
	h.acquire(e, modes.IW)
	h.drain(nil)
	if h.held(e) != modes.None {
		t.Fatalf("E's IW must be frozen out (FIFO protection)\n%s", h.dump())
	}
	// And a request routed through a potential granter (C, owning IW via
	// nothing... B owns IW via C) must not be granted by B either.
	h.engines[f] = hlock.New(f, testLock, b, false, h.clocks[f], hlock.Options{})
	h.acquire(f, modes.IW)
	h.drain(nil)
	if h.held(f) != modes.None {
		t.Fatalf("F's IW must not be granted by frozen B\n%s", h.dump())
	}

	// Figure 3(c): C and A release IW; the token transfers to D.
	h.release(c)
	h.release(a)
	h.drain(nil)
	if h.held(d) != modes.R {
		t.Fatalf("D should now hold R\n%s", h.dump())
	}
	if h.requireToken() != d {
		t.Fatalf("token should be at D\n%s", h.dump())
	}
	// D releases; the queued IW requests are served in FIFO order.
	h.release(d)
	h.drain(nil)
	if h.held(e) != modes.IW || h.held(f) != modes.IW {
		t.Fatalf("E and F should hold IW after D releases\n%s", h.dump())
	}
	h.release(e)
	h.release(f)
	h.drain(nil)
	h.checkQuiescent()
}

func TestUpgradeImmediate(t *testing.T) {
	h := newHarness(t, 2, hlock.Options{})
	h.acquire(1, modes.U)
	h.drain(nil)
	if h.held(1) != modes.U || h.requireToken() != 1 {
		t.Fatalf("U must arrive by token transfer\n%s", h.dump())
	}
	h.upgrade(1)
	if h.held(1) != modes.W {
		t.Fatalf("upgrade with empty copyset must be immediate, held=%v", h.held(1))
	}
	h.release(1)
	h.drain(nil)
	h.checkQuiescent()
}

func TestUpgradeWaitsForReaders(t *testing.T) {
	h := newHarness(t, 3, hlock.Options{})
	h.acquire(1, modes.U)
	h.drain(nil)
	h.acquire(2, modes.R) // compatible with U: copy grant from token 1
	h.drain(nil)
	if h.held(2) != modes.R {
		t.Fatalf("R should coexist with U\n%s", h.dump())
	}
	h.upgrade(1)
	h.drain(nil)
	if h.held(1) != modes.U {
		t.Fatalf("upgrade must wait for reader, held=%v", h.held(1))
	}
	// Readers' modes are frozen during the upgrade (Tab. 2b row U col W:
	// freeze {IR, R}).
	if fz := h.node(1).Frozen(); !fz.Has(modes.IR) || !fz.Has(modes.R) {
		t.Fatalf("upgrade must freeze IR and R, frozen=%v", fz)
	}
	// A new reader must not sneak in.
	h.acquire(0, modes.R)
	h.drain(nil)
	if h.held(0) != modes.None {
		t.Fatal("new reader must be frozen out during upgrade")
	}
	h.release(2)
	h.drain(nil)
	if h.held(1) != modes.W {
		t.Fatalf("upgrade should complete after reader release, held=%v\n%s", h.held(1), h.dump())
	}
	// Upgraded event, not Acquired.
	evs := h.events[proto.NodeID(1)]
	if evs[len(evs)-1].Kind != hlock.EventUpgraded {
		t.Fatalf("want EventUpgraded, got %+v", evs[len(evs)-1])
	}
	h.release(1)
	h.drain(nil)
	if h.held(0) != modes.R {
		t.Fatal("queued reader must be served after writer releases")
	}
	h.release(0)
	h.drain(nil)
	h.checkQuiescent()
}

func TestLocalAcquireViaChildOwnership(t *testing.T) {
	h := newHarness(t, 3, hlock.Options{})
	h.acquire(0, modes.R)
	h.acquire(1, modes.R)
	h.drain(nil)
	h.release(0) // token holds nothing but still owns R via child 1
	h.drain(nil)
	if got := h.node(0).Owned(); got != modes.R {
		t.Fatalf("token owned = %v, want R via child", got)
	}
	msgs := h.counts[proto.KindRequest]
	h.acquire(0, modes.IR) // Rule 2: owned R covers IR — no messages
	if h.held(0) != modes.IR {
		t.Fatal("local acquire failed")
	}
	if h.counts[proto.KindRequest] != msgs {
		t.Fatal("local acquire must not send messages")
	}
	h.release(0)
	h.release(1)
	h.drain(nil)
	h.checkQuiescent()
}

func TestNonTokenLocalAcquire(t *testing.T) {
	h := newHarness(t, 3, hlock.Options{})
	h.acquire(1, modes.R)
	h.drain(nil) // transfer: node 1 is token
	h.engines[2] = hlock.New(2, testLock, 1, false, h.clocks[2], hlock.Options{})
	h.acquire(2, modes.R)
	h.drain(nil) // copy grant: node 2 child of 1 owning R
	h.release(2)
	h.drain(nil)
	// Node 2 released, so it owns nothing: a new IR needs a message.
	h.acquire(2, modes.IR)
	h.drain(nil)
	if h.held(2) != modes.IR {
		t.Fatal("reacquire failed")
	}
	h.release(1)
	h.release(2)
	h.drain(nil)
	h.checkQuiescent()
}

func TestReleasePropagatesOnlyOnWeakening(t *testing.T) {
	h := newHarness(t, 4, hlock.Options{})
	h.acquire(0, modes.R)
	h.acquire(1, modes.R)
	h.drain(nil)
	// Node 2 and 3 acquire IR through the tree; then release one of two
	// children of the same parent: the parent's owned mode is unchanged,
	// so no release propagates beyond it.
	h.engines[2] = hlock.New(2, testLock, 1, false, h.clocks[2], hlock.Options{})
	h.engines[3] = hlock.New(3, testLock, 1, false, h.clocks[3], hlock.Options{})
	h.acquire(2, modes.IR)
	h.acquire(3, modes.IR)
	h.drain(nil)
	before := h.counts[proto.KindRelease]
	h.release(2) // node 1 still owns R (held) — child release absorbed
	h.drain(nil)
	if got := h.counts[proto.KindRelease] - before; got != 1 {
		t.Fatalf("expected exactly the child's release message, got %d extra", got)
	}
	h.release(3)
	h.release(1)
	h.release(0)
	h.drain(nil)
	h.checkQuiescent()
}

func TestClientErrors(t *testing.T) {
	h := newHarness(t, 2, hlock.Options{})
	e := h.node(0)
	if _, err := e.Acquire(modes.None); err == nil {
		t.Error("Acquire(None) must fail")
	}
	if _, err := e.Acquire(modes.Mode(9)); err == nil {
		t.Error("Acquire(invalid) must fail")
	}
	if _, err := e.Release(); err == nil {
		t.Error("Release while not holding must fail")
	}
	if _, err := e.Upgrade(); err == nil {
		t.Error("Upgrade while not holding U must fail")
	}
	h.acquire(0, modes.R)
	if _, err := e.Acquire(modes.R); err == nil {
		t.Error("double Acquire must fail")
	}
	if _, err := e.Upgrade(); err == nil {
		t.Error("Upgrade from R must fail")
	}
	h.release(0)

	// Pending-op errors at a non-token node.
	n1 := h.node(1)
	h.acquire(1, modes.W) // request in flight, not yet delivered
	if _, err := n1.Acquire(modes.R); err == nil {
		t.Error("Acquire with pending request must fail")
	}
	h.drain(nil)
	h.release(1)
	h.drain(nil)
	h.checkQuiescent()
}

func TestProtocolErrors(t *testing.T) {
	h := newHarness(t, 2, hlock.Options{})
	e := h.node(0)
	if _, err := e.Handle(&proto.Message{Kind: proto.KindGrant, Lock: testLock, Mode: modes.R}); err == nil {
		t.Error("grant with no pending request must error")
	}
	if _, err := e.Handle(&proto.Message{Kind: proto.KindToken, Lock: testLock, Mode: modes.R}); err == nil {
		t.Error("token with no pending request must error")
	}
	// A release from a non-child is stale (it crossed a token transfer)
	// and must be ignored, not treated as an error.
	if out, err := e.Handle(&proto.Message{Kind: proto.KindRelease, Lock: testLock, From: 9}); err != nil || len(out.Msgs) != 0 {
		t.Errorf("release from non-child must be a no-op, got out=%v err=%v", out, err)
	}
	if _, err := e.Handle(&proto.Message{Kind: proto.KindRequest, Lock: testLock, Req: proto.Request{Origin: 0, Mode: modes.R}}); err == nil {
		t.Error("own request echoed back must error")
	}
	if _, err := e.Handle(&proto.Message{Kind: proto.KindInvalid, Lock: testLock}); err == nil {
		t.Error("invalid kind must error")
	}
	if _, err := e.Handle(&proto.Message{Kind: proto.KindRequest, Lock: 42}); err == nil {
		t.Error("wrong lock id must error")
	}
}

func TestStaleFreezeIgnored(t *testing.T) {
	h := newHarness(t, 2, hlock.Options{})
	// Token node must ignore freezes (it derives its own frozen set).
	out, err := h.node(0).Handle(&proto.Message{
		Kind: proto.KindFreeze, Lock: testLock, From: 1,
		Frozen: modes.MakeSet(modes.W),
	})
	if err != nil || len(out.Msgs) != 0 {
		t.Fatalf("stale freeze at token: out=%v err=%v", out, err)
	}
	if !h.node(0).Frozen().Empty() {
		t.Error("token adopted a stale frozen set")
	}
	// Non-token node must ignore freezes from non-parents.
	if _, err := h.node(1).Handle(&proto.Message{
		Kind: proto.KindFreeze, Lock: testLock, From: 7,
		Frozen: modes.MakeSet(modes.W),
	}); err != nil {
		t.Fatal(err)
	}
	if !h.node(1).Frozen().Empty() {
		t.Error("node adopted freeze from a stranger")
	}
}

func TestFreezePreventsStarvation(t *testing.T) {
	// A writer request amid a continuous stream of compatible IR traffic:
	// with freezing the writer is served; this is the protocol's fairness
	// guarantee (Rule 6).
	h := newHarness(t, 6, hlock.Options{})
	h.acquire(0, modes.IW)
	h.acquire(1, modes.IR)
	h.drain(nil)
	h.acquire(2, modes.R) // conflicts with IW: queued, freezes IW
	h.drain(nil)
	if h.held(2) != modes.None {
		t.Fatal("R must queue behind IW")
	}
	// Newly arriving IW requests (normally grantable: IW/IW compatible)
	// must now be frozen out.
	h.acquire(3, modes.IW)
	h.acquire(4, modes.IW)
	h.drain(nil)
	if h.held(3) != modes.None || h.held(4) != modes.None {
		t.Fatalf("IW must be frozen while R waits\n%s", h.dump())
	}
	h.release(0)
	h.drain(nil)
	if h.held(2) != modes.R {
		t.Fatalf("waiting R should be served first\n%s", h.dump())
	}
	h.release(2)
	h.drain(nil)
	if h.held(3) != modes.IW || h.held(4) != modes.IW {
		t.Fatalf("queued IW should be served after R\n%s", h.dump())
	}
	h.release(1)
	h.release(3)
	h.release(4)
	h.drain(nil)
	h.checkQuiescent()
}

func TestNoFreezingAblationAllowsOvertaking(t *testing.T) {
	h := newHarness(t, 4, hlock.Options{NoFreezing: true})
	h.acquire(0, modes.IW)
	h.acquire(2, modes.R)
	h.drain(nil)
	if h.held(2) != modes.None {
		t.Fatal("R must queue behind IW")
	}
	// Without freezing, a later IW request is granted immediately,
	// overtaking the queued R — the unfairness the paper's Rule 6 fixes.
	h.acquire(3, modes.IW)
	h.drain(nil)
	if h.held(3) != modes.IW {
		t.Fatalf("ablated protocol should grant IW immediately\n%s", h.dump())
	}
	h.release(0)
	h.release(3)
	h.drain(nil)
	h.release(2)
	h.drain(nil)
	h.checkQuiescent()
}

func TestQueueMergeOnTokenTransfer(t *testing.T) {
	h := newHarness(t, 5, hlock.Options{})
	h.acquire(0, modes.W)
	// Node 1 requests W (queued at token 0). Node 2 requests U.
	h.acquire(1, modes.W)
	h.acquire(2, modes.U)
	h.drain(nil)
	if h.node(0).QueueLen() != 2 {
		t.Fatalf("queue=%d, want 2\n%s", h.node(0).QueueLen(), h.dump())
	}
	// While node 1's W is pending, node 3 requests W routed via... the
	// star topology routes through 0 directly; queue there too.
	h.acquire(3, modes.W)
	h.drain(nil)
	h.release(0)
	h.drain(nil)
	// FIFO by Lamport time: node 1 first, then 2, then 3, each served
	// after the previous releases.
	if h.held(1) != modes.W {
		t.Fatalf("node 1 should hold W first\n%s", h.dump())
	}
	h.release(1)
	h.drain(nil)
	if h.held(2) != modes.U {
		t.Fatalf("node 2 should hold U second\n%s", h.dump())
	}
	h.release(2)
	h.drain(nil)
	if h.held(3) != modes.W {
		t.Fatalf("node 3 should hold W third\n%s", h.dump())
	}
	h.release(3)
	h.drain(nil)
	h.checkQuiescent()
}

func TestDeepChainRouting(t *testing.T) {
	// Chain topology: 0(token) ← 1 ← 2 ← 3 ← 4; a request from the tail
	// is forwarded up the whole chain.
	h := newHarness(t, 5, hlock.Options{})
	for i := 1; i < 5; i++ {
		h.engines[proto.NodeID(i)] = hlock.New(proto.NodeID(i), testLock, proto.NodeID(i-1), false, h.clocks[proto.NodeID(i)], hlock.Options{})
	}
	h.acquire(4, modes.W)
	h.drain(nil)
	if h.held(4) != modes.W || h.requireToken() != 4 {
		t.Fatalf("tail acquisition failed\n%s", h.dump())
	}
	if h.counts[proto.KindRequest] != 4 {
		t.Fatalf("expected 4 request hops, got %d", h.counts[proto.KindRequest])
	}
	h.release(4)
	h.drain(nil)
	// Path reversal repointed every intermediate router at node 4 while
	// the first request travelled, so node 3 now reaches the root in one
	// hop (Naimi-style path compression).
	before := h.counts[proto.KindRequest]
	h.acquire(3, modes.W)
	h.drain(nil)
	if got := h.counts[proto.KindRequest] - before; got != 1 {
		t.Fatalf("expected 1 request hop after path reversal, got %d", got)
	}
	h.release(3)
	h.drain(nil)
	h.checkQuiescent()
}

func TestDeepChainNoReversal(t *testing.T) {
	// With NoPathReversal, parent pointers change only on grant or token
	// receipt (the paper's literal pseudocode): node 3's request after
	// node 4's walks the stale chain 3→2→1→0→4, four hops.
	opt := hlock.Options{NoPathReversal: true}
	h := newHarness(t, 5, opt)
	for i := 1; i < 5; i++ {
		h.engines[proto.NodeID(i)] = hlock.New(proto.NodeID(i), testLock, proto.NodeID(i-1), false, h.clocks[proto.NodeID(i)], opt)
	}
	h.acquire(4, modes.W)
	h.drain(nil)
	h.release(4)
	h.drain(nil)
	before := h.counts[proto.KindRequest]
	h.acquire(3, modes.W)
	h.drain(nil)
	if got := h.counts[proto.KindRequest] - before; got != 4 {
		t.Fatalf("expected 4 request hops along the stale chain, got %d", got)
	}
	h.release(3)
	h.drain(nil)
	h.checkQuiescent()
}

func TestAblationNoChildGrants(t *testing.T) {
	h := newHarness(t, 3, hlock.Options{NoChildGrants: true})
	h.acquire(0, modes.R)
	h.acquire(1, modes.R)
	h.drain(nil)
	// Node 2 routes through node 1 (child owning R) — without child
	// grants the request must be forwarded to the token.
	h.engines[2] = hlock.New(2, testLock, 1, false, h.clocks[2], hlock.Options{NoChildGrants: true})
	h.acquire(2, modes.IR)
	h.drain(nil)
	if h.held(2) != modes.IR {
		t.Fatal("acquire failed")
	}
	// The grant must have come from the token (node 0).
	if got := h.node(2).Parent(); got != 0 {
		t.Fatalf("grant must come from token, parent=%d", got)
	}
	h.release(0)
	h.release(1)
	h.release(2)
	h.drain(nil)
	h.checkQuiescent()
}

func TestAblationNoLocalQueues(t *testing.T) {
	h := newHarness(t, 3, hlock.Options{NoLocalQueues: true})
	h.acquire(0, modes.W)
	h.acquire(1, modes.R)
	// Node 2's R request arrives at node 1 which has a pending R — with
	// local queues it would queue (Tab. 2a); ablated, it forwards.
	h.engines[2] = hlock.New(2, testLock, 1, false, h.clocks[2], hlock.Options{NoLocalQueues: true})
	h.acquire(2, modes.R)
	h.drain(nil)
	if h.node(1).QueueLen() != 0 {
		t.Fatal("ablated engine must not queue locally at non-token nodes")
	}
	h.release(0)
	h.drain(nil)
	if h.held(1) != modes.R || h.held(2) != modes.R {
		t.Fatalf("both readers should be served\n%s", h.dump())
	}
	h.release(1)
	h.release(2)
	h.drain(nil)
	h.checkQuiescent()
}

func TestAblationNoLocalAcquire(t *testing.T) {
	h := newHarness(t, 3, hlock.Options{NoLocalAcquire: true})
	h.acquire(0, modes.R) // token: Rule 3.2 local service is not ablated
	if h.held(0) != modes.R || len(h.pendingPairs()) != 0 {
		t.Fatal("token-side acquire must stay local even when Rule 2 is ablated")
	}
	h.acquire(1, modes.R)
	h.drain(nil)
	// Node 2 becomes a child of node 1.
	h.engines[2] = hlock.New(2, testLock, 1, false, h.clocks[2], hlock.Options{NoLocalAcquire: true})
	h.acquire(2, modes.R)
	h.drain(nil)
	h.release(1)
	h.drain(nil)
	// Node 1 holds nothing but owns R through node 2. With Rule 2 an IR
	// acquire would be message-free; ablated, it must send a request.
	before := h.counts[proto.KindRequest]
	h.acquire(1, modes.IR)
	if h.counts[proto.KindRequest] != before+1 {
		t.Fatal("ablated engine must request rather than acquire locally")
	}
	h.drain(nil)
	if h.held(1) != modes.IR {
		t.Fatal("acquire failed")
	}
	h.release(0)
	h.release(1)
	h.release(2)
	h.drain(nil)
	h.checkQuiescent()
}

func TestCloneAndFingerprint(t *testing.T) {
	h := newHarness(t, 4, hlock.Options{})
	h.acquire(0, modes.IW)
	h.acquire(1, modes.IR)
	h.acquire(2, modes.R) // queued, freezes IW
	h.drain(nil)

	for i := 0; i < 4; i++ {
		e := h.node(i)
		var ck proto.Clock
		c := e.Clone(&ck)
		if c.Fingerprint() != e.Fingerprint() {
			t.Fatalf("node %d: clone fingerprint differs:\n%s\n%s", i, e.Fingerprint(), c.Fingerprint())
		}
		// Mutating the clone must not affect the original.
		if c.Held() != modes.None {
			if _, err := c.Release(); err != nil {
				t.Fatal(err)
			}
			if c.Fingerprint() == e.Fingerprint() {
				t.Fatalf("node %d: clone still aliases original", i)
			}
		}
	}
	h.release(0)
	h.release(1)
	h.drain(nil)
	h.release(2)
	h.drain(nil)
	h.checkQuiescent()
}

func TestEngineAccessors(t *testing.T) {
	var clock proto.Clock
	e := hlock.New(3, 7, 0, false, &clock, hlock.Options{})
	if e.Self() != 3 || e.Lock() != 7 || e.IsToken() || e.Parent() != 0 {
		t.Fatalf("accessors: %v", e)
	}
	if e.String() == "" {
		t.Fatal("String must render")
	}
	if e.QueueLen() != 0 || !e.Frozen().Empty() || e.Owned() != modes.None {
		t.Fatalf("fresh engine state: %v", e)
	}
}
