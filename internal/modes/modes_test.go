package modes

import (
	"testing"
	"testing/quick"
)

// allModes includes None, unlike All.
var allModes = [6]Mode{None, IR, R, U, IW, W}

func TestCompatibilityMatrix(t *testing.T) {
	// Paper Tab. 1(a), cell by cell. true = compatible.
	want := map[[2]Mode]bool{
		{IR, IR}: true, {IR, R}: true, {IR, U}: true, {IR, IW}: true, {IR, W}: false,
		{R, IR}: true, {R, R}: true, {R, U}: true, {R, IW}: false, {R, W}: false,
		{U, IR}: true, {U, R}: true, {U, U}: false, {U, IW}: false, {U, W}: false,
		{IW, IR}: true, {IW, R}: false, {IW, U}: false, {IW, IW}: true, {IW, W}: false,
		{W, IR}: false, {W, R}: false, {W, U}: false, {W, IW}: false, {W, W}: false,
	}
	for pair, c := range want {
		if got := Compatible(pair[0], pair[1]); got != c {
			t.Errorf("Compatible(%v, %v) = %v, want %v", pair[0], pair[1], got, c)
		}
	}
	for _, m := range allModes {
		if !Compatible(None, m) || !Compatible(m, None) {
			t.Errorf("None must be compatible with %v", m)
		}
	}
}

func TestCompatibilitySymmetric(t *testing.T) {
	for _, a := range allModes {
		for _, b := range allModes {
			if Compatible(a, b) != Compatible(b, a) {
				t.Errorf("Compatible(%v,%v) != Compatible(%v,%v)", a, b, b, a)
			}
		}
	}
}

func TestStrengthOrder(t *testing.T) {
	// Eq. 1: None < IR < R < U = IW < W.
	if !(Strength(None) < Strength(IR) &&
		Strength(IR) < Strength(R) &&
		Strength(R) < Strength(U) &&
		Strength(U) == Strength(IW) &&
		Strength(IW) < Strength(W)) {
		t.Fatalf("strength order violates Eq. 1: %d %d %d %d %d %d",
			Strength(None), Strength(IR), Strength(R), Strength(U), Strength(IW), Strength(W))
	}
}

// TestStrongerMeansLessCompatible checks Definition 1: a strictly stronger
// mode is compatible with *fewer* other modes than a weaker one (the paper
// defines strength by the count of compatible modes, not subset inclusion:
// IW is stronger than R yet compatible with IW, which R is not).
func TestStrongerMeansLessCompatible(t *testing.T) {
	count := func(m Mode) int {
		n := 0
		for _, x := range All {
			if Compatible(m, x) {
				n++
			}
		}
		return n
	}
	for _, a := range All {
		for _, b := range All {
			if Stronger(a, b) && count(a) >= count(b) {
				t.Errorf("%v stronger than %v but compatible with %d >= %d modes",
					a, b, count(a), count(b))
			}
		}
	}
}

// TestLocalKnowledgeLemma verifies the paper's §3.4 correctness argument:
// testing compatibility against the owned (strongest) mode of a subtree is
// sufficient. For every tree mode m covered by an owned mode mo (m ≤ mo,
// compatible with mo, as all tree members are), any request x compatible
// with mo is also compatible with m.
func TestLocalKnowledgeLemma(t *testing.T) {
	for _, mo := range allModes {
		for _, m := range allModes {
			if !AtLeast(mo, m) || !Compatible(m, mo) {
				continue
			}
			for _, x := range allModes {
				if Compatible(x, mo) && !Compatible(x, m) {
					t.Errorf("lemma fails: mo=%v covers m=%v, x=%v compat with mo but not m", mo, m, x)
				}
			}
		}
	}
}

func TestGrantableByCopyTable(t *testing.T) {
	// Paper Tab. 1(b): absence of X = grantable. Rows are owned mode,
	// columns requested mode.
	want := map[Mode][]Mode{
		None: {},
		IR:   {IR},
		R:    {IR, R},
		U:    {IR, R},
		IW:   {IR, IW},
		W:    {},
	}
	for mo, grants := range want {
		ok := map[Mode]bool{}
		for _, g := range grants {
			ok[g] = true
		}
		for _, mr := range All {
			if got := GrantableByCopy(mo, mr); got != ok[mr] {
				t.Errorf("GrantableByCopy(%v, %v) = %v, want %v", mo, mr, got, ok[mr])
			}
		}
	}
}

func TestGrantAtToken(t *testing.T) {
	cases := []struct {
		mo, mr Mode
		want   TokenGrant
	}{
		{None, IR, TokenTransfer}, // idle token hands itself over
		{None, W, TokenTransfer},
		{IR, R, TokenTransfer}, // compatible but weaker: transfer
		{R, U, TokenTransfer},
		{R, R, TokenCopy},
		{IW, IR, TokenCopy},
		{IW, IW, TokenCopy},
		{U, R, TokenCopy},
		{IW, R, TokenBlocked},
		{U, U, TokenBlocked},
		{W, IR, TokenBlocked},
		{R, W, TokenBlocked},
	}
	for _, c := range cases {
		if got := GrantAtToken(c.mo, c.mr); got != c.want {
			t.Errorf("GrantAtToken(%v, %v) = %v, want %v", c.mo, c.mr, got, c.want)
		}
	}
}

func TestAlwaysTransfers(t *testing.T) {
	want := map[Mode]bool{None: false, IR: false, R: false, U: true, IW: false, W: true}
	for m, w := range want {
		if got := AlwaysTransfers(m); got != w {
			t.Errorf("AlwaysTransfers(%v) = %v, want %v", m, got, w)
		}
	}
}

func TestShouldQueueTable(t *testing.T) {
	// Derived Tab. 2(a). Rows: pending mode. Columns IR R U IW W.
	// Q = queue (true), F = forward (false).
	want := map[Mode][5]bool{
		None: {false, false, false, false, false},
		IR:   {true, false, false, false, false},
		R:    {true, true, false, false, false},
		U:    {true, true, true, true, true},
		IW:   {true, false, false, true, false},
		W:    {true, true, true, true, true},
	}
	for mp, row := range want {
		for i, mr := range All {
			if got := ShouldQueue(mp, mr); got != row[i] {
				t.Errorf("ShouldQueue(%v, %v) = %v, want %v", mp, mr, got, row[i])
			}
		}
	}
}

// TestShouldQueueSound checks the defining property of Tab. 2(a): a queued
// request must be servable at this node after the pending grant arrives,
// in the worst case. For copy-grantable pending modes the worst case is a
// copy; for always-transferring modes the node becomes the token and may
// queue anything.
func TestShouldQueueSound(t *testing.T) {
	for _, mp := range All {
		for _, mr := range All {
			if !ShouldQueue(mp, mr) {
				continue
			}
			if AlwaysTransfers(mp) {
				continue // node will own the token; Rule 4.2 queues everything
			}
			if !GrantableByCopy(mp, mr) {
				t.Errorf("queued %v behind copy-grantable pending %v but copy cannot serve it", mr, mp)
			}
		}
	}
}

func TestFreezeSetPaperCells(t *testing.T) {
	// Every legible cell of paper Tab. 2(b).
	cases := []struct {
		mo, mr Mode
		want   Set
	}{
		{IR, W, MakeSet(IR, R, U, IW)},
		{R, IW, MakeSet(R, U)},
		{R, W, MakeSet(IR, R, U)},
		{U, IW, MakeSet(R)},
		{U, W, MakeSet(IR, R)},
		{IW, R, MakeSet(IW)},
		{IW, U, MakeSet(IW)},
		{IW, W, MakeSet(IR, IW)},
		{U, U, MakeSet()},
		{W, W, MakeSet()},
		{W, IR, MakeSet()},
	}
	for _, c := range cases {
		if got := FreezeSet(c.mo, c.mr); got != c.want {
			t.Errorf("FreezeSet(%v, %v) = %v, want %v", c.mo, c.mr, got, c.want)
		}
	}
}

// TestFreezeSetOnlyForConflicts checks that freezing is only triggered for
// owned/requested pairs that actually queue at the token (incompatible
// pairs); for compatible pairs the request is granted, so the freeze table
// is never consulted — but the formula must still be well-defined.
func TestFreezeSetProperties(t *testing.T) {
	for _, mo := range allModes {
		for _, mr := range All {
			fs := FreezeSet(mo, mr)
			for _, m := range fs.Modes() {
				if Compatible(m, mr) {
					t.Errorf("FreezeSet(%v,%v) froze %v which is compatible with the waiting request", mo, mr, m)
				}
				if !Compatible(m, mo) {
					t.Errorf("FreezeSet(%v,%v) froze %v which the tree could not grant anyway", mo, mr, m)
				}
			}
			// Completeness: every grantable-and-conflicting mode is frozen.
			for _, m := range All {
				if !Compatible(m, mr) && Compatible(m, mo) && !fs.Has(m) {
					t.Errorf("FreezeSet(%v,%v) missed %v", mo, mr, m)
				}
			}
		}
	}
}

func TestOwnedFold(t *testing.T) {
	cases := []struct {
		in   []Mode
		want Mode
	}{
		{nil, None},
		{[]Mode{None}, None},
		{[]Mode{IR, R}, R},
		{[]Mode{R, IR, IR}, R},
		{[]Mode{IR, IW, R}, IW},
		{[]Mode{W, R}, W},
		{[]Mode{U}, U},
		{[]Mode{U, IW}, IW}, // tie resolved toward IW deterministically
		{[]Mode{IW, U}, IW},
	}
	for _, c := range cases {
		if got := Owned(c.in...); got != c.want {
			t.Errorf("Owned(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMax(t *testing.T) {
	if Max(IR, R) != R || Max(R, IR) != R || Max(W, None) != W || Max(None, None) != None {
		t.Error("Max basic cases failed")
	}
}

func TestParseAndString(t *testing.T) {
	for _, m := range allModes {
		got, err := Parse(m.String())
		if err != nil || got != m {
			t.Errorf("Parse(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse(bogus) should fail")
	}
	if Mode(77).String() == "" {
		t.Error("out-of-range mode should still print")
	}
	if Mode(77).Valid() {
		t.Error("Mode(77) must be invalid")
	}
}

func TestSetOps(t *testing.T) {
	s := MakeSet(IR, W)
	if !s.Has(IR) || !s.Has(W) || s.Has(R) || s.Has(None) {
		t.Fatalf("membership wrong: %v", s)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	s = s.Add(None)
	if s.Len() != 2 {
		t.Error("adding None must be a no-op")
	}
	s = s.Remove(IR)
	if s.Has(IR) || !s.Has(W) {
		t.Error("Remove failed")
	}
	u := MakeSet(R).Union(MakeSet(W))
	if !u.Has(R) || !u.Has(W) || u.Len() != 2 {
		t.Error("Union failed")
	}
	if d := u.Diff(MakeSet(W)); !d.Has(R) || d.Has(W) {
		t.Error("Diff failed")
	}
	if i := u.Intersect(MakeSet(W, IR)); !i.Has(W) || i.Has(R) {
		t.Error("Intersect failed")
	}
	if !MakeSet().Empty() || u.Empty() {
		t.Error("Empty failed")
	}
	if got := MakeSet(IR, R).String(); got != "{IR,R}" {
		t.Errorf("String = %q", got)
	}
	if got := MakeSet().String(); got != "{}" {
		t.Errorf("String = %q", got)
	}
}

// Property-based checks over random mode sets.
func TestQuickSetRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		var s Set
		var members []Mode
		for _, r := range raw {
			m := Mode(r % uint8(numModes))
			s = s.Add(m)
			if m != None {
				members = append(members, m)
			}
		}
		for _, m := range members {
			if !s.Has(m) {
				return false
			}
		}
		return len(s.Modes()) == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOwnedDominates(t *testing.T) {
	f := func(raw []uint8) bool {
		ms := make([]Mode, len(raw))
		for i, r := range raw {
			ms[i] = Mode(r % uint8(numModes))
		}
		o := Owned(ms...)
		for _, m := range ms {
			if !AtLeast(o, m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
