// Package modes defines the lock-mode algebra of the CORBA Concurrency
// Service as used by the hierarchical locking protocol of Desai & Mueller
// (ICDCS 2003): the five access modes, their compatibility matrix
// (paper Tab. 1a), the strength order (paper Eq. 1), and the derived
// decision tables for granting (Tab. 1b), queuing vs forwarding (Tab. 2a)
// and freezing (Tab. 2b).
//
// All predicates are pure functions over small integer domains; the package
// has no dependencies and no state.
package modes

import "fmt"

// Mode is a hierarchical lock access mode.
//
// The zero value None means "no lock" and is compatible with everything.
type Mode uint8

// The five CORBA Concurrency Service lock modes plus None.
//
// IR (intention read) and IW (intention write) are held on a coarser
// granule (e.g. a table) to announce R/W locking of a finer granule
// (e.g. a row). U (upgrade) is an exclusive read that may later be
// atomically upgraded to W.
const (
	None Mode = iota // no lock held
	IR               // intention read
	R                // read (shared)
	U                // upgrade (exclusive read, upgradable to W)
	IW               // intention write
	W                // write (exclusive)
	numModes
)

// All lists the real lock modes (excluding None) in strength order.
var All = [5]Mode{IR, R, U, IW, W}

// String returns the paper's name for the mode.
func (m Mode) String() string {
	switch m {
	case None:
		return "NL"
	case IR:
		return "IR"
	case R:
		return "R"
	case U:
		return "U"
	case IW:
		return "IW"
	case W:
		return "W"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Valid reports whether m is one of the six defined modes.
func (m Mode) Valid() bool { return m < numModes }

// Parse converts a mode name ("NL", "IR", "R", "U", "IW", "W") to a Mode.
func Parse(s string) (Mode, error) {
	switch s {
	case "NL", "", "none", "None":
		return None, nil
	case "IR", "ir":
		return IR, nil
	case "R", "r":
		return R, nil
	case "U", "u":
		return U, nil
	case "IW", "iw":
		return IW, nil
	case "W", "w":
		return W, nil
	default:
		return None, fmt.Errorf("modes: unknown lock mode %q", s)
	}
}

// conflict is the incompatibility matrix of paper Tab. 1(a): conflict[a][b]
// is true when modes a and b may not be held concurrently. It follows the
// CORBA Concurrency Service specification the paper builds on:
//
//	IR conflicts with W;
//	R  conflicts with IW, W;
//	U  conflicts with U, IW, W;
//	IW conflicts with R, U, W;
//	W  conflicts with IR, R, U, IW, W.
//
// None conflicts with nothing.
var conflict = [numModes][numModes]bool{
	IR: {W: true},
	R:  {IW: true, W: true},
	U:  {U: true, IW: true, W: true},
	IW: {R: true, U: true, W: true},
	W:  {IR: true, R: true, U: true, IW: true, W: true},
}

// Compatible reports whether a and b may be held concurrently (Rule 1).
// It is symmetric, and None is compatible with everything.
func Compatible(a, b Mode) bool { return !conflict[a][b] }

// strength encodes paper Eq. 1: None < IR < R < U = IW < W.
var strength = [numModes]int{None: 0, IR: 1, R: 2, U: 3, IW: 3, W: 4}

// Strength returns the position of m in the paper's strength order
// (Eq. 1). U and IW compare equal.
func Strength(m Mode) int { return strength[m] }

// Stronger reports whether a is strictly stronger than b (Definition 1).
func Stronger(a, b Mode) bool { return strength[a] > strength[b] }

// AtLeast reports whether a is at least as strong as b.
func AtLeast(a, b Mode) bool { return strength[a] >= strength[b] }

// Max returns the stronger of a and b. When a and b have equal strength
// (U vs IW) it prefers a, so Max over a set is order-dependent only
// between U and IW; callers that need a canonical combined "owned" mode
// should use Owned, which resolves the tie deterministically.
func Max(a, b Mode) Mode {
	if strength[b] > strength[a] {
		return b
	}
	return a
}

// Owned folds a set of modes into the owned mode of a subtree: the
// strongest mode present. The U/IW strength tie cannot arise from a valid
// copyset (U and IW conflict, so a compatible set never contains both),
// but Owned still resolves it deterministically in favor of IW so that the
// function is a well-defined fold for arbitrary inputs.
func Owned(ms ...Mode) Mode {
	out := None
	for _, m := range ms {
		if strength[m] > strength[out] || (m == IW && out == U) {
			out = m
		}
	}
	return out
}

// GrantableByCopy implements Rule 3.1 / Tab. 1(b): a non-token node that
// owns mo can grant a copy for a request in mode mr iff the modes are
// compatible and mo is at least as strong as mr. None can grant nothing.
func GrantableByCopy(mo, mr Mode) bool {
	return mo != None && Compatible(mo, mr) && AtLeast(mo, mr)
}

// TokenGrant describes how the token node serves a compatible request
// (Rule 3.2).
type TokenGrant uint8

// Token-node grant outcomes for a request in mode mr against owned mode mo.
const (
	// TokenBlocked: mo and mr are incompatible; the request must queue.
	TokenBlocked TokenGrant = iota
	// TokenCopy: compatible and mo >= mr; the requester receives a granted
	// copy and becomes a child of the token node.
	TokenCopy
	// TokenTransfer: compatible and mo < mr; the token itself is
	// transferred and the requester becomes the new token node.
	TokenTransfer
)

// GrantAtToken classifies how the token node owning mo serves a request
// for mr (Rule 3.2 and its operational specification).
func GrantAtToken(mo, mr Mode) TokenGrant {
	if !Compatible(mo, mr) {
		return TokenBlocked
	}
	if AtLeast(mo, mr) {
		return TokenCopy
	}
	return TokenTransfer
}

// AlwaysTransfers reports whether a request in mode m can only ever be
// satisfied by a token transfer, never by a granted copy. This holds for
// U and W: no mode is simultaneously compatible with and at least as
// strong as them. It is the keystone of the queue/forward table.
func AlwaysTransfers(m Mode) bool {
	for _, mo := range All {
		if GrantableByCopy(mo, m) {
			return false
		}
	}
	return m != None
}

// ShouldQueue implements Rule 4.1 / Tab. 2(a): a non-token node whose own
// pending request is mp receives a request for mr that it cannot grant.
// It queues the request locally iff mr is guaranteed to be servable at
// this node once mp is granted, under the worst-case grant outcome:
//
//   - mp == None: no grant is coming; forward.
//   - mp ∈ {U, W}: the grant always arrives as a token transfer (see
//     AlwaysTransfers), after which this node is the token node and queues
//     everything (Rule 4.2) — queue any mr.
//   - otherwise the grant may be a mere copy of mp, after which this node
//     can serve exactly the requests grantable by that copy.
func ShouldQueue(mp, mr Mode) bool {
	if mp == None {
		return false
	}
	if mp == U || mp == W {
		return true
	}
	return GrantableByCopy(mp, mr)
}

// Set is a bitset of modes.
type Set uint8

// MakeSet builds a Set from the given modes. None is ignored: freezing or
// tracking the absence of a lock is meaningless.
func MakeSet(ms ...Mode) Set {
	var s Set
	for _, m := range ms {
		s = s.Add(m)
	}
	return s
}

// Add returns s with m included. Adding None is a no-op.
func (s Set) Add(m Mode) Set {
	if m == None {
		return s
	}
	return s | 1<<m
}

// Remove returns s with m excluded.
func (s Set) Remove(m Mode) Set { return s &^ (1 << m) }

// Has reports whether m is in s. None is never in a set.
func (s Set) Has(m Mode) bool { return s&(1<<m) != 0 }

// Union returns the union of s and t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns the intersection of s and t.
func (s Set) Intersect(t Set) Set { return s & t }

// Diff returns the modes in s that are not in t.
func (s Set) Diff(t Set) Set { return s &^ t }

// Empty reports whether s contains no modes.
func (s Set) Empty() bool { return s == 0 }

// Len returns the number of modes in s.
func (s Set) Len() int {
	n := 0
	for _, m := range All {
		if s.Has(m) {
			n++
		}
	}
	return n
}

// Modes returns the members of s in strength order.
func (s Set) Modes() []Mode {
	var out []Mode
	for _, m := range All {
		if s.Has(m) {
			out = append(out, m)
		}
	}
	return out
}

// String renders the set as e.g. "{IR,R}".
func (s Set) String() string {
	out := "{"
	for i, m := range s.Modes() {
		if i > 0 {
			out += ","
		}
		out += m.String()
	}
	return out + "}"
}

// FreezeSet implements Tab. 2(b): when the token node owning mo locally
// queues a request for mr (because mo and mr are incompatible), the modes
// to freeze are those whose continued granting would starve the waiting
// request — the modes incompatible with mr that the tree rooted at the
// token could currently grant (i.e. compatible with mo):
//
//	freeze(mo, mr) = { m : ¬Compatible(m, mr) ∧ Compatible(m, mo) }
//
// This closed form reproduces every legible cell of the paper's Tab. 2(b),
// including the worked example (owner IW, queued R → freeze {IW}).
func FreezeSet(mo, mr Mode) Set {
	var s Set
	for _, m := range All {
		if !Compatible(m, mr) && Compatible(m, mo) {
			s = s.Add(m)
		}
	}
	return s
}
