package experiment

import (
	"testing"
	"time"

	"hierlock/internal/proto"
	"hierlock/internal/workload"
)

// testConfig keeps unit-test sweeps quick while staying in the regime
// where the paper's effects are visible.
func testConfig() Config {
	return Config{
		NodeCounts: []int{10, 40, 120},
		Warmup:     10 * time.Second,
		// 300 virtual seconds: short windows censor the slow whole-table
		// operations of the same-work mapping and understate its latency
		// (see EXPERIMENTS.md).
		Duration: 300 * time.Second,
		Seed:     7,
	}
}

func TestRunCellBasics(t *testing.T) {
	cell, err := RunCell(testConfig(), workload.Hierarchical, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Ops == 0 || cell.Requests == 0 || cell.Messages.Total() == 0 {
		t.Fatalf("empty cell: %s", cell.Dump())
	}
	if cell.MsgsPerRequest <= 0 || cell.MsgsPerOp < cell.MsgsPerRequest {
		t.Fatalf("implausible overheads: %s", cell.Dump())
	}
	if cell.ReqLatencyFactor <= 0 || cell.OpLatencyFactor < cell.ReqLatencyFactor {
		t.Fatalf("implausible latencies: %s", cell.Dump())
	}
	if cell.Dump() == "" {
		t.Fatal("dump empty")
	}
}

// TestFigure5Shape asserts the paper's scalability claims: our protocol's
// message overhead stays near a ~3-message asymptote, below Naimi pure
// (~4), with Naimi same-work the most expensive.
func TestFigure5Shape(t *testing.T) {
	tab, err := Figure5(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	ours120, _ := tab.Value(120, "our-protocol")
	pure120, _ := tab.Value(120, "naimi-pure")
	same120, _ := tab.Value(120, "naimi-same-work")
	if !(ours120 < pure120 && pure120 < same120) {
		t.Fatalf("figure 5 ordering broken at 120 nodes: ours=%.2f pure=%.2f same=%.2f",
			ours120, pure120, same120)
	}
	// Asymptote: ours within [2.5, 4] at 120 nodes (paper: ≈3).
	if ours120 < 2.0 || ours120 > 4.0 {
		t.Errorf("our overhead at 120 nodes = %.2f, expected ≈3", ours120)
	}
	// Pure within [3.3, 4.5] (paper: ≈4).
	if pure120 < 3.0 || pure120 > 4.5 {
		t.Errorf("pure overhead at 120 nodes = %.2f, expected ≈4", pure120)
	}
	// Logarithmic flattening: growth from 40→120 nodes is small compared
	// to the 10→40 growth for our protocol.
	ours10, _ := tab.Value(10, "our-protocol")
	ours40, _ := tab.Value(40, "our-protocol")
	if ours120-ours40 > (ours40-ours10)+1.0 {
		t.Errorf("our overhead not flattening: %.2f → %.2f → %.2f", ours10, ours40, ours120)
	}
}

// TestFigure6Shape asserts the latency claims: our protocol is fastest;
// same-work is slowest and grows superlinearly while ours and pure grow
// roughly linearly.
func TestFigure6Shape(t *testing.T) {
	tab, err := Figure6(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	for _, n := range []float64{40, 120} {
		ours, _ := tab.Value(n, "our-protocol")
		pure, _ := tab.Value(n, "naimi-pure")
		same, _ := tab.Value(n, "naimi-same-work")
		if !(ours < pure && pure < same) {
			t.Fatalf("figure 6 ordering broken at %.0f nodes: ours=%.1f pure=%.1f same=%.1f",
				n, ours, pure, same)
		}
	}
	// Superlinearity of same-work vs pure: in the 10→40 range, where
	// neither curve is censored by the measurement window, same-work's
	// growth factor exceeds pure's (at 120 nodes same-work ops last
	// minutes and the window truncates the tail for both, compressing
	// ratios; the absolute ordering above still holds).
	same10, _ := tab.Value(10, "naimi-same-work")
	same40, _ := tab.Value(40, "naimi-same-work")
	pure10, _ := tab.Value(10, "naimi-pure")
	pure40, _ := tab.Value(40, "naimi-pure")
	if same40/same10 < pure40/pure10 {
		t.Errorf("same-work not growing faster than pure: same %.1f→%.1f, pure %.1f→%.1f",
			same10, same40, pure10, pure40)
	}
}

// TestFigure7Shape asserts the message-breakdown claims: requests are the
// largest component, token transfers decline to a small constant, grants
// and releases track each other, freezes stay small.
func TestFigure7Shape(t *testing.T) {
	tab, err := Figure7(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	req, _ := tab.Value(120, proto.KindRequest.String())
	grant, _ := tab.Value(120, proto.KindGrant.String())
	rel, _ := tab.Value(120, proto.KindRelease.String())
	tok, _ := tab.Value(120, proto.KindToken.String())
	frz, _ := tab.Value(120, proto.KindFreeze.String())
	if !(req > grant && req > tok && req > rel && req > frz) {
		t.Errorf("requests must dominate the breakdown: req=%.2f grant=%.2f tok=%.2f rel=%.2f frz=%.2f",
			req, grant, tok, rel, frz)
	}
	// Token transfers decline with scale (the paper's observation).
	tok10, _ := tab.Value(10, proto.KindToken.String())
	if tok >= tok10 {
		t.Errorf("token transfers should decline with scale: %.2f at 10 vs %.2f at 120", tok10, tok)
	}
	// Grants and releases are paired (every copy grant is eventually
	// released).
	if rel < grant*0.7 || rel > grant*1.4 {
		t.Errorf("grants and releases should track: grant=%.2f release=%.2f", grant, rel)
	}
	if frz > 0.5 {
		t.Errorf("freeze traffic should be small, got %.2f per request", frz)
	}
	// The five series must sum to the total overhead (internal
	// consistency of the breakdown).
	cell, err := RunCell(testConfig(), workload.Hierarchical, 40)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, k := range []proto.Kind{proto.KindRequest, proto.KindGrant, proto.KindToken, proto.KindRelease, proto.KindFreeze} {
		sum += float64(cell.Messages.ByKind[k])
	}
	if sum != float64(cell.Messages.Total()) {
		t.Errorf("breakdown does not sum to total: %v vs %v", sum, cell.Messages.Total())
	}
}

// TestAblationShape asserts that each disabled optimization costs
// messages relative to the full protocol, quantifying the paper's §4
// attribution of its savings.
func TestAblationShape(t *testing.T) {
	cfg := testConfig()
	cfg.NodeCounts = []int{40}
	tab, err := AblationOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	full, _ := tab.Value(40, "full-protocol")
	for _, name := range []string{"no-local-queues", "no-child-grants", "no-path-reversal"} {
		v, ok := tab.Value(40, name)
		if !ok {
			t.Fatalf("missing ablation %s", name)
		}
		if v < full*0.95 {
			t.Errorf("ablation %s should not beat the full protocol: %.2f vs %.2f", name, v, full)
		}
	}
}

func TestOverheadAndLatencyConventions(t *testing.T) {
	c := Cell{Mapping: workload.SameWork, MsgsPerRequest: 1, MsgsPerOp: 2, ReqLatencyFactor: 3, OpLatencyFactor: 4}
	if c.Overhead() != 2 || c.LatencyFactor() != 4 {
		t.Error("same-work must report per-op metrics")
	}
	c.Mapping = workload.Hierarchical
	if c.Overhead() != 1 || c.LatencyFactor() != 3 {
		t.Error("hierarchical must report per-request metrics")
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if len(cfg.NodeCounts) != len(PaperNodeCounts) {
		t.Error("default node counts")
	}
	if cfg.Duration != 300*time.Second || cfg.Warmup != 10*time.Second {
		t.Error("default windows")
	}
	if cfg.LatencyMean != 150*time.Millisecond {
		t.Error("default latency")
	}
}

// TestRunCellDeterministic ensures whole experiment cells are exactly
// reproducible: same seed, same numbers (the engines must not leak map
// iteration order into message timing).
func TestRunCellDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.Duration = 60 * time.Second
	a, err := RunCell(cfg, workload.Hierarchical, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell(cfg, workload.Hierarchical, 12)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dump() != b.Dump() {
		t.Fatalf("same seed diverged:\n%s\n%s", a.Dump(), b.Dump())
	}
}

// TestPriorityLatencyShape asserts the priority-arbitration extension's
// intended effect: high-priority requests beat both the normal class and
// the FIFO baseline, and the normal class pays at most a modest penalty.
func TestPriorityLatencyShape(t *testing.T) {
	cfg := testConfig()
	cfg.NodeCounts = []int{40, 120}
	tab, err := PriorityLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	for _, n := range []float64{40, 120} {
		high, _ := tab.Value(n, "high-priority")
		normal, _ := tab.Value(n, "normal-priority")
		fifo, _ := tab.Value(n, "fifo-baseline")
		if high >= normal {
			t.Errorf("at %.0f nodes high-priority (%.1f) must beat normal (%.1f)", n, high, normal)
		}
		if high >= fifo {
			t.Errorf("at %.0f nodes high-priority (%.1f) must beat the FIFO baseline (%.1f)", n, high, fifo)
		}
		if normal > fifo*1.5 {
			t.Errorf("at %.0f nodes normal class penalty too large: %.1f vs baseline %.1f", n, normal, fifo)
		}
	}
}

// TestMixSensitivity verifies the paper's message-overhead ordering is
// robust across request mixes, not an artifact of the 80/10/4/5/1 mix.
func TestMixSensitivity(t *testing.T) {
	cfg := testConfig()
	tab, err := MixSensitivity(cfg, 60)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	for i, nm := range SensitivityMixes {
		ours, _ := tab.Value(float64(i), "our-protocol")
		pure, _ := tab.Value(float64(i), "naimi-pure")
		same, _ := tab.Value(float64(i), "naimi-same-work")
		if !(ours < pure) {
			t.Errorf("mix %s: ours (%.2f) must beat pure (%.2f)", nm.Name, ours, pure)
		}
		if !(pure < same) {
			t.Errorf("mix %s: same-work (%.2f) must exceed pure (%.2f)", nm.Name, same, pure)
		}
	}
}

// TestDepthComparison checks the three-level hierarchy keeps per-request
// overhead near the asymptote while costing more messages per operation
// (one extra intention lock per fine-grained access).
func TestDepthComparison(t *testing.T) {
	cfg := testConfig()
	cfg.NodeCounts = []int{40}
	tab, err := DepthComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	two, _ := tab.Value(40, "two-level/req")
	three, _ := tab.Value(40, "three-level/req")
	if two < 1.5 || two > 4.5 || three < 1.5 || three > 4.5 {
		t.Errorf("per-request overheads out of the asymptotic band: 2-level=%.2f 3-level=%.2f", two, three)
	}
	twoOp, _ := tab.Value(40, "two-level/op")
	threeOp, _ := tab.Value(40, "three-level/op")
	if threeOp <= twoOp {
		t.Errorf("three levels should cost more per op: %.2f vs %.2f", threeOp, twoOp)
	}
}

// TestRelatedWorkShape asserts the paper's §5 comparative claims:
// broadcast costs Θ(n) messages; the static tree underperforms the
// dynamic one on latency; our protocol wins both metrics.
func TestRelatedWorkShape(t *testing.T) {
	cfg := testConfig()
	cfg.NodeCounts = []int{20, 120}
	tab, err := RelatedWork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab)
	for _, n := range []float64{20, 120} {
		oursM, _ := tab.Value(n, "our-protocol msg")
		naimiM, _ := tab.Value(n, "naimi-pure msg")
		suzukiM, _ := tab.Value(n, "suzuki-kasami msg")
		oursL, _ := tab.Value(n, "our-protocol lat")
		naimiL, _ := tab.Value(n, "naimi-pure lat")
		raymondL, _ := tab.Value(n, "raymond lat")
		// Broadcast: ≈ n messages per request.
		if suzukiM < n*0.9 || suzukiM > n*1.1 {
			t.Errorf("suzuki at %.0f nodes: %.1f msgs/req, want ≈%.0f", n, suzukiM, n)
		}
		// Permission-based: exactly 2(n−1) messages per request.
		ricartM, _ := tab.Value(n, "ricart-agrawala msg")
		if ricartM < 2*(n-1)*0.95 || ricartM > 2*(n-1)*1.05 {
			t.Errorf("ricart at %.0f nodes: %.1f msgs/req, want ≈%.0f", n, ricartM, 2*(n-1))
		}
		// Ours cheapest in messages and latency.
		if oursM >= naimiM || oursM >= suzukiM {
			t.Errorf("at %.0f nodes our msgs (%.2f) must be lowest (naimi %.2f, suzuki %.2f)", n, oursM, naimiM, suzukiM)
		}
		if oursL >= naimiL || oursL >= raymondL {
			t.Errorf("at %.0f nodes our latency (%.1f) must be lowest (naimi %.1f, raymond %.1f)", n, oursL, naimiL, raymondL)
		}
		// The static tree pays in latency relative to the dynamic one.
		if raymondL <= naimiL {
			t.Errorf("at %.0f nodes raymond latency (%.1f) should exceed naimi's (%.1f): static trees do not adapt", n, raymondL, naimiL)
		}
	}
}
