// Package experiment regenerates the paper's evaluation figures. Each
// figure is a sweep over cluster sizes running the airline workload under
// one or more protocol mappings, reported as a metrics.Table whose rows
// match the paper's plotted series:
//
//	Figure 5 — message overhead vs number of nodes
//	Figure 6 — request latency (as a factor of the mean point-to-point
//	           network latency) vs number of nodes
//	Figure 7 — message overhead broken down by message type (our protocol)
//
// An additional ablation experiment quantifies the optimizations the
// paper credits for its savings: local queues, child grants, message-free
// local acquisition, and freezing.
//
// Metric conventions (see EXPERIMENTS.md for the full rationale): for our
// protocol and Naimi "pure", overhead and latency are per protocol-level
// lock request; for Naimi "same work" they are per application-level
// request (which expands to one lock per table entry for whole-table
// operations) — that is the unit at which the two systems do the same
// work, and it is the only reading under which the paper's distinctly
// higher, superlinear same-work curves arise.
package experiment

import (
	"fmt"
	"time"

	"hierlock/internal/cluster"
	"hierlock/internal/hlock"
	"hierlock/internal/metrics"
	"hierlock/internal/proto"
	"hierlock/internal/sim"
	"hierlock/internal/workload"
)

// Config parameterizes a sweep.
type Config struct {
	// NodeCounts to sweep (default: the paper's 2..120 range).
	NodeCounts []int
	// Entries is the fare-table size (default workload.DefaultEntries).
	Entries int
	Mix     workload.Mix
	// Warmup and Duration bound each cell's simulated run: statistics
	// cover [Warmup, Warmup+Duration) of virtual time.
	Warmup   time.Duration
	Duration time.Duration
	// LatencyMean is the mean point-to-point latency (default 150 ms).
	LatencyMean time.Duration
	// Options ablates hierarchical-protocol features.
	Options hlock.Options
	Seed    int64
}

// PaperNodeCounts is the sweep of the paper's figures.
var PaperNodeCounts = []int{2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120}

func (cfg Config) withDefaults() Config {
	if len(cfg.NodeCounts) == 0 {
		cfg.NodeCounts = PaperNodeCounts
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 10 * time.Second
	}
	if cfg.Duration <= 0 {
		// Five virtual minutes: long enough that slow whole-table
		// operations of the same-work mapping complete within the window
		// (shorter windows censor them and understate its latency).
		cfg.Duration = 300 * time.Second
	}
	if cfg.LatencyMean <= 0 {
		cfg.LatencyMean = cluster.DefaultLatencyMean
	}
	return cfg
}

// Cell is the outcome of one (mapping, node count) run.
type Cell struct {
	Mapping  workload.Mapping
	Nodes    int
	Ops      uint64
	Requests uint64
	// Messages sent during the measurement window, by kind.
	Messages metrics.Messages
	// MsgsPerRequest is total messages per protocol-level lock request.
	MsgsPerRequest float64
	// MsgsPerOp is total messages per application-level operation.
	MsgsPerOp float64
	// ReqLatencyFactor is mean lock-request latency over the mean
	// point-to-point latency; OpLatencyFactor likewise per operation.
	ReqLatencyFactor float64
	OpLatencyFactor  float64
	// ReqLatencyP99Factor is the 99th-percentile request latency over the
	// mean point-to-point latency (tail behavior; not in the paper).
	ReqLatencyP99Factor float64
}

// Overhead returns the figure-5 metric under the package's conventions:
// per-request for Hierarchical and Pure, per-op for SameWork.
func (c Cell) Overhead() float64 {
	if c.Mapping == workload.SameWork {
		return c.MsgsPerOp
	}
	return c.MsgsPerRequest
}

// LatencyFactor returns the figure-6 metric under the same conventions.
func (c Cell) LatencyFactor() float64 {
	if c.Mapping == workload.SameWork {
		return c.OpLatencyFactor
	}
	return c.ReqLatencyFactor
}

// RunCell simulates one cell of a sweep.
func RunCell(cfg Config, mapping workload.Mapping, nodes int) (Cell, error) {
	cfg = cfg.withDefaults()
	wcfg := workload.Config{
		Mapping: mapping,
		Entries: cfg.Entries,
		Mix:     cfg.Mix,
		Warmup:  cfg.Warmup,
	}
	c := cluster.New(cluster.Config{
		Protocol: mapping.Protocol(),
		Nodes:    nodes,
		Locks:    wcfg.Locks(),
		Latency:  sim.UniformAround(cfg.LatencyMean),
		Options:  cfg.Options,
		Seed:     cfg.Seed ^ int64(nodes)<<8 ^ int64(mapping),
	})
	// Snapshot message counters at the warmup boundary so the reported
	// counts cover only the measurement window.
	var atWarmup metrics.Messages
	c.Sim.At(cfg.Warmup, func() { atWarmup = c.Net.Metrics })

	d, err := workload.Attach(c, wcfg)
	if err != nil {
		return Cell{}, err
	}
	c.Sim.Run(cfg.Warmup + cfg.Duration)
	if err := c.Err(); err != nil {
		return Cell{}, fmt.Errorf("experiment %v/%d nodes: %w", mapping, nodes, err)
	}

	st := d.Stats()
	var window metrics.Messages
	for k, n := range c.Net.Metrics.ByKind {
		window.ByKind[k] = n - atWarmup.ByKind[k]
	}
	cell := Cell{
		Mapping:  mapping,
		Nodes:    nodes,
		Ops:      st.Ops,
		Requests: st.Requests,
		Messages: window,
	}
	if st.Requests > 0 {
		cell.MsgsPerRequest = float64(window.Total()) / float64(st.Requests)
	}
	if st.Ops > 0 {
		cell.MsgsPerOp = float64(window.Total()) / float64(st.Ops)
	}
	cell.ReqLatencyFactor = st.ReqLatency.Factor(cfg.LatencyMean)
	cell.OpLatencyFactor = st.OpLatency.Factor(cfg.LatencyMean)
	cell.ReqLatencyP99Factor = st.ReqLatency.Quantile(0.99).Seconds() / cfg.LatencyMean.Seconds()
	return cell, nil
}

// mappings of the paper's three plotted series.
var mappings = []workload.Mapping{workload.Hierarchical, workload.SameWork, workload.Pure}

// Figure5 regenerates the scalability figure: message overhead vs nodes
// for the three protocol configurations.
func Figure5(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("Figure 5: message overhead vs number of nodes", "nodes")
	for _, n := range cfg.NodeCounts {
		for _, m := range mappings {
			cell, err := RunCell(cfg, m, n)
			if err != nil {
				return nil, err
			}
			t.Add(float64(n), m.String(), cell.Overhead())
		}
	}
	return t, nil
}

// Figure6 regenerates the request-latency figure: latency as a factor of
// the mean point-to-point latency vs nodes.
func Figure6(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("Figure 6: request latency (× point-to-point latency) vs number of nodes", "nodes")
	for _, n := range cfg.NodeCounts {
		for _, m := range mappings {
			cell, err := RunCell(cfg, m, n)
			if err != nil {
				return nil, err
			}
			t.Add(float64(n), m.String(), cell.LatencyFactor())
		}
	}
	return t, nil
}

// Figure7 regenerates the message-breakdown figure for our protocol:
// per-request counts of each message type vs nodes.
func Figure7(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("Figure 7: message overhead by type (our protocol)", "nodes")
	for _, n := range cfg.NodeCounts {
		cell, err := RunCell(cfg, workload.Hierarchical, n)
		if err != nil {
			return nil, err
		}
		for _, k := range metrics.Kinds {
			v := 0.0
			if cell.Requests > 0 {
				v = float64(cell.Messages.ByKind[k]) / float64(cell.Requests)
			}
			t.Add(float64(n), k.String(), v)
		}
	}
	return t, nil
}

// Ablation names the protocol features the paper credits for its savings.
type Ablation struct {
	Name    string
	Options hlock.Options
}

// Ablations is the standard ablation set.
var Ablations = []Ablation{
	{Name: "full-protocol", Options: hlock.Options{}},
	{Name: "no-local-queues", Options: hlock.Options{NoLocalQueues: true}},
	{Name: "no-child-grants", Options: hlock.Options{NoChildGrants: true}},
	{Name: "no-local-acquire", Options: hlock.Options{NoLocalAcquire: true}},
	{Name: "no-freezing", Options: hlock.Options{NoFreezing: true}},
	{Name: "no-path-reversal", Options: hlock.Options{NoPathReversal: true}},
}

// AblationOverhead sweeps message overhead per request for each ablated
// variant of our protocol.
func AblationOverhead(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("Ablation: message overhead per request (our protocol variants)", "nodes")
	for _, n := range cfg.NodeCounts {
		for _, a := range Ablations {
			acfg := cfg
			acfg.Options = a.Options
			cell, err := RunCell(acfg, workload.Hierarchical, n)
			if err != nil {
				return nil, err
			}
			t.Add(float64(n), a.Name, cell.MsgsPerRequest)
		}
	}
	return t, nil
}

// PriorityLatency quantifies the strict-priority-arbitration extension:
// with 10 % of operations issued at high priority, it reports the mean
// request-latency factor of the high class, the normal class, and the
// pure-FIFO baseline (priorities disabled), per node count. High-priority
// requests should beat both; normal requests pay a modest penalty.
func PriorityLatency(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("Priority arbitration: request latency (× point-to-point latency)", "nodes")
	for _, n := range cfg.NodeCounts {
		for _, pct := range []int{0, 10} {
			wcfg := workload.Config{
				Entries:         cfg.Entries,
				Mix:             cfg.Mix,
				Warmup:          cfg.Warmup,
				HighPriorityPct: pct,
			}
			c := cluster.New(cluster.Config{
				Protocol: cluster.Hierarchical,
				Nodes:    n,
				Locks:    wcfg.Locks(),
				Latency:  sim.UniformAround(cfg.LatencyMean),
				Options:  cfg.Options,
				Seed:     cfg.Seed ^ int64(n)<<8 ^ int64(pct)<<20,
			})
			d, err := workload.Attach(c, wcfg)
			if err != nil {
				return nil, err
			}
			c.Sim.Run(cfg.Warmup + cfg.Duration)
			if err := c.Err(); err != nil {
				return nil, fmt.Errorf("priority experiment %d nodes: %w", n, err)
			}
			st := d.Stats()
			if pct == 0 {
				t.Add(float64(n), "fifo-baseline", st.ReqLatency.Factor(cfg.LatencyMean))
				continue
			}
			t.Add(float64(n), "high-priority", st.HighReqLatency.Factor(cfg.LatencyMean))
			t.Add(float64(n), "normal-priority", st.NormalReqLatency.Factor(cfg.LatencyMean))
		}
	}
	return t, nil
}

// RelatedWork quantifies the paper's §2/§5 comparisons: the single-lock
// workload on five mutual-exclusion substrates — our protocol, Naimi's
// dynamic tree, Raymond's static tree, the Suzuki–Kasami broadcast, and
// the Ricart–Agrawala permission protocol (2(n−1) messages/request).
// It reports messages per request (left columns) and mean latency factor
// (right columns). The broadcast baseline's Θ(n) messages per request is
// the "limited scalability" the paper attributes to such protocols;
// Raymond's static tree shows the cost of not adapting.
func RelatedWork(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("Related work: single-lock message overhead and latency", "nodes")
	related := []workload.Mapping{
		workload.Hierarchical, workload.Pure, workload.PureRaymond,
		workload.PureSuzuki, workload.PureRicart,
	}
	for _, n := range cfg.NodeCounts {
		for _, m := range related {
			cell, err := RunCell(cfg, m, n)
			if err != nil {
				return nil, err
			}
			t.Add(float64(n), m.String()+" msg", cell.MsgsPerRequest)
			t.Add(float64(n), m.String()+" lat", cell.ReqLatencyFactor)
		}
	}
	return t, nil
}

// DepthComparison contrasts the paper's two-level hierarchy (table →
// entries) with a three-level one (database → tables → rows) at equal
// total row count, reporting messages per request and per operation.
// Deeper hierarchies cost one extra intention lock per fine-grained
// operation but spread conflicts across more granules; per-request
// overhead should stay near the protocol's ~3-message asymptote.
func DepthComparison(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("Hierarchy depth: two-level vs three-level", "nodes")
	for _, n := range cfg.NodeCounts {
		for _, depth := range []int{2, 3} {
			wcfg := workload.Config{
				Mapping: workload.Hierarchical,
				Mix:     cfg.Mix,
				Warmup:  cfg.Warmup,
			}
			name := "two-level"
			if depth == 3 {
				// 4 tables × 4 rows ≈ the two-level default's granularity
				// budget at one extra level.
				wcfg.Tables = 4
				wcfg.Entries = 4
				name = "three-level"
			}
			c := cluster.New(cluster.Config{
				Protocol: cluster.Hierarchical,
				Nodes:    n,
				Locks:    wcfg.Locks(),
				Latency:  sim.UniformAround(cfg.LatencyMean),
				Options:  cfg.Options,
				Seed:     cfg.Seed ^ int64(n)<<8 ^ int64(depth)<<24,
			})
			var atWarmup metrics.Messages
			c.Sim.At(cfg.Warmup, func() { atWarmup = c.Net.Metrics })
			d, err := workload.Attach(c, wcfg)
			if err != nil {
				return nil, err
			}
			c.Sim.Run(cfg.Warmup + cfg.Duration)
			if err := c.Err(); err != nil {
				return nil, fmt.Errorf("depth experiment %s/%d: %w", name, n, err)
			}
			st := d.Stats()
			msgs := c.Net.Metrics.Total() - atWarmup.Total()
			if st.Requests > 0 {
				t.Add(float64(n), name+"/req", float64(msgs)/float64(st.Requests))
			}
			if st.Ops > 0 {
				t.Add(float64(n), name+"/op", float64(msgs)/float64(st.Ops))
			}
		}
	}
	return t, nil
}

// NamedMix is a workload mix with a display name for sensitivity sweeps.
type NamedMix struct {
	Name string
	Mix  workload.Mix
}

// SensitivityMixes are the request mixes used to test the robustness of
// the paper's conclusions to the (partly unspecified) workload.
var SensitivityMixes = []NamedMix{
	{Name: "paper-80/10/4/5/1", Mix: workload.PaperMix},
	{Name: "read-heavy-94/5/0/1/0", Mix: workload.Mix{IR: 94, R: 5, IW: 1}},
	{Name: "write-heavy-40/15/10/25/10", Mix: workload.Mix{IR: 40, R: 15, U: 10, IW: 25, W: 10}},
	{Name: "balanced-20/20/20/20/20", Mix: workload.Mix{IR: 20, R: 20, U: 20, IW: 20, W: 20}},
}

// MixSensitivity reruns the Figure 5 comparison at a fixed cluster size
// across several request mixes, reporting message overhead per mapping.
// The paper's ordering (ours < pure < same-work) should be robust.
func MixSensitivity(cfg Config, nodes int) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable(
		fmt.Sprintf("Mix sensitivity: message overhead at %d nodes", nodes), "mix#")
	for i, nm := range SensitivityMixes {
		mcfg := cfg
		mcfg.Mix = nm.Mix
		for _, m := range mappings {
			cell, err := RunCell(mcfg, m, nodes)
			if err != nil {
				return nil, fmt.Errorf("mix %s: %w", nm.Name, err)
			}
			t.Add(float64(i), m.String(), cell.Overhead())
		}
	}
	return t, nil
}

// Dump renders a cell for logs.
func (c Cell) Dump() string {
	return fmt.Sprintf("%s n=%d ops=%d req=%d msgs=%d msg/req=%.2f msg/op=%.2f lat/req=%.1f lat/op=%.1f p99/req=%.1f (req=%d grant=%d token=%d rel=%d frz=%d)",
		c.Mapping, c.Nodes, c.Ops, c.Requests, c.Messages.Total(),
		c.MsgsPerRequest, c.MsgsPerOp, c.ReqLatencyFactor, c.OpLatencyFactor, c.ReqLatencyP99Factor,
		c.Messages.ByKind[proto.KindRequest], c.Messages.ByKind[proto.KindGrant],
		c.Messages.ByKind[proto.KindToken], c.Messages.ByKind[proto.KindRelease],
		c.Messages.ByKind[proto.KindFreeze])
}
