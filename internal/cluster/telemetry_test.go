package cluster_test

import (
	"strings"
	"testing"
	"time"

	"hierlock/internal/cluster"
	"hierlock/internal/metrics"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
	"hierlock/internal/trace"
)

// TestSimTelemetry drives a deterministic 3-node acquisition through the
// simulator with both a registry and a recorder attached and checks that
// (a) the reconstructed span has the canonical acquire→token→grant
// shape with the token travelling 0 → 2, and (b) the registry's series
// — under the same family names the live runtime exports — agree with
// the cluster's own counters.
func TestSimTelemetry(t *testing.T) {
	rec := trace.New(1 << 12)
	reg := metrics.NewRegistry()
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    3,
		Locks:    []proto.LockID{7},
		Seed:     1,
		Trace:    rec,
		Registry: reg,
	})
	granted := false
	c.Nodes[2].Acquire(7, modes.W, func() { granted = true })
	c.Sim.Run(5 * time.Second)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if !granted {
		t.Fatal("request never granted")
	}

	spans := trace.Assemble(rec.Entries())
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	sp := spans[0]
	if !sp.Complete || sp.Node != 2 || sp.Lock != 7 || sp.Mode != modes.W {
		t.Fatalf("span: %+v", sp)
	}
	if sp.Duration() <= 0 {
		t.Fatalf("span duration = %v", sp.Duration())
	}
	if path := sp.TokenPath(); len(path) != 2 || path[0] != 0 || path[1] != 2 {
		t.Fatalf("token path = %v, want [0 2]", path)
	}

	// Registry parity with the cluster's own accumulating counters.
	if got := reg.Counter(metrics.MetricRequestsTotal, "", nil).Value(); got != c.Requests {
		t.Fatalf("requests counter = %d, cluster saw %d", got, c.Requests)
	}
	var regSent uint64
	for _, k := range metrics.Kinds {
		v := reg.Counter(metrics.MetricMessagesTotal, "", metrics.Labels{"kind": k.String()}).Value()
		if v != c.Net.Metrics.ByKind[k] {
			t.Fatalf("kind %v: registry %d != network %d", k, v, c.Net.Metrics.ByKind[k])
		}
		regSent += v
	}
	if regSent != c.Net.Metrics.Total() {
		t.Fatalf("registry sends %d != network total %d", regSent, c.Net.Metrics.Total())
	}
	if got := reg.Counter(metrics.MetricAcquiresTotal, "", nil).Value(); got != 1 {
		t.Fatalf("acquires counter = %d", got)
	}
	lat := reg.Histogram(metrics.MetricRequestLatency, "", nil, nil)
	if lat.Count() != 1 || lat.Sum() != sp.Duration().Seconds() {
		t.Fatalf("latency histogram count=%d sum=%v, span=%v", lat.Count(), lat.Sum(), sp.Duration())
	}
	// The factor histogram observed duration/150ms (the default base).
	factor := reg.Histogram(metrics.MetricRequestLatencyFactor, "", nil, nil)
	want := sp.Duration().Seconds() / cluster.DefaultLatencyMean.Seconds()
	if factor.Count() != 1 || factor.Sum() != want {
		t.Fatalf("factor histogram count=%d sum=%v, want %v", factor.Count(), factor.Sum(), want)
	}
	// One token hop 0→2, counted at both ends.
	for _, dir := range []string{"out", "in"} {
		got := reg.Counter(metrics.MetricTokenTransfers, "",
			metrics.Labels{"direction": dir, "lock": "7"}).Value()
		if got != 1 {
			t.Fatalf("token transfers %s = %d, want 1", dir, got)
		}
	}

	// The scrape exposes the per-node engine gauges: after the run node 2
	// holds the token for lock 7, nodes 0 and 1 do not.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		metrics.MetricTokenHeld + `{lock="7",node="2"} 1`,
		metrics.MetricTokenHeld + `{lock="7",node="0"} 0`,
		metrics.MetricLockQueueDepth + `{lock="7",node="2"} 0`,
		metrics.MetricLockCopyset + `{lock="7",node="2"}`,
		metrics.MetricLockFrozen + `{lock="7",node="2"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestSimTelemetryDeterministic reconstructs the same span shape from
// two identically seeded runs: same step count, same token path, same
// duration — the property that makes simulator traces a debugging
// reference for live ones.
func TestSimTelemetryDeterministic(t *testing.T) {
	run := func() *trace.Span {
		rec := trace.New(1 << 12)
		c := cluster.New(cluster.Config{
			Protocol: cluster.Hierarchical,
			Nodes:    3,
			Locks:    []proto.LockID{7},
			Seed:     42,
			Trace:    rec,
		})
		c.Nodes[2].Acquire(7, modes.W, func() {})
		c.Sim.Run(5 * time.Second)
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		spans := trace.Assemble(rec.Entries())
		if len(spans) != 1 {
			t.Fatalf("spans = %d", len(spans))
		}
		return spans[0]
	}
	a, b := run(), run()
	if a.Duration() != b.Duration() || len(a.Steps) != len(b.Steps) {
		t.Fatalf("runs diverged: %v/%d vs %v/%d",
			a.Duration(), len(a.Steps), b.Duration(), len(b.Steps))
	}
	pa, pb := a.TokenPath(), b.TokenPath()
	if len(pa) != len(pb) {
		t.Fatalf("token paths diverged: %v vs %v", pa, pb)
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("token paths diverged: %v vs %v", pa, pb)
		}
	}
}

// TestSimTelemetryUnderLoad checks the registry stays consistent across
// a contended multi-lock workload: grants observed in the histogram
// equal grants in the trace, and every message kind matches.
func TestSimTelemetryUnderLoad(t *testing.T) {
	rec := trace.New(1 << 16)
	reg := metrics.NewRegistry()
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    5,
		Locks:    []proto.LockID{1, 2},
		Seed:     7,
		Trace:    rec,
		Registry: reg,
	})
	rng := c.Sim.NewRand()
	var loop func(i int)
	loop = func(i int) {
		lock := proto.LockID(1 + rng.Intn(2))
		m := modes.All[rng.Intn(5)]
		c.Nodes[i].Acquire(lock, m, func() {
			c.Sim.At(time.Duration(rng.Intn(20))*time.Millisecond, func() {
				c.Nodes[i].Release(lock)
				c.Sim.At(time.Duration(rng.Intn(100))*time.Millisecond, func() { loop(i) })
			})
		})
	}
	for i := 0; i < 5; i++ {
		loop(i)
	}
	c.Sim.Run(10 * time.Second)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}

	counts := rec.Counts()
	lat := reg.Histogram(metrics.MetricRequestLatency, "", nil, nil)
	if lat.Count() != uint64(counts[trace.OpGranted]) {
		t.Fatalf("histogram observed %d grants, trace has %d", lat.Count(), counts[trace.OpGranted])
	}
	if got := reg.Counter(metrics.MetricRequestsTotal, "", nil).Value(); got != c.Requests {
		t.Fatalf("requests counter = %d, cluster saw %d", got, c.Requests)
	}
	for _, k := range metrics.Kinds {
		v := reg.Counter(metrics.MetricMessagesTotal, "", metrics.Labels{"kind": k.String()}).Value()
		if v != c.Net.Metrics.ByKind[k] {
			t.Fatalf("kind %v: registry %d != network %d", k, v, c.Net.Metrics.ByKind[k])
		}
	}
}
