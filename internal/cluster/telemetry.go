package cluster

import (
	"strconv"
	"time"

	"hierlock/internal/hlock"
	"hierlock/internal/metrics"
	"hierlock/internal/proto"
)

// telemetry fans the cluster's events into a metrics.Registry under the
// exact family names the live lockd runtime exports (see member.go and
// docs/OBSERVABILITY.md), so simulator runs and production scrapes
// answer the same queries. Handles are cached at init; every emission
// path is nil-safe, so a cluster without a registry pays only dead
// branches.
type telemetry struct {
	reg  *metrics.Registry
	base time.Duration

	sent        [6]*metrics.Counter // indexed by proto.Kind
	sentUnknown *metrics.Counter
	requests    *metrics.Counter
	acquires    *metrics.Counter
	latency     *metrics.Histogram
	factor      *metrics.Histogram
}

func (t *telemetry) init(reg *metrics.Registry, base time.Duration) {
	t.reg = reg
	t.base = base
	if t.base <= 0 {
		t.base = DefaultLatencyMean
	}
	for _, k := range metrics.Kinds {
		t.sent[k] = reg.Counter(metrics.MetricMessagesTotal,
			"Protocol messages sent, by kind.", metrics.Labels{"kind": k.String()})
	}
	t.sentUnknown = reg.Counter(metrics.MetricMessagesTotal,
		"Protocol messages sent, by kind.", metrics.Labels{"kind": "unknown"})
	t.requests = reg.Counter(metrics.MetricRequestsTotal,
		"Client lock requests issued (including upgrades and local joins).", nil)
	t.acquires = reg.Counter(metrics.MetricAcquiresTotal,
		"Completed lock acquisitions (grants, upgrades, shared joins).", nil)
	t.latency = reg.Histogram(metrics.MetricRequestLatency,
		"Issue-to-grant lock request latency in seconds.",
		metrics.DefLatencyBuckets, nil)
	t.factor = reg.Histogram(metrics.MetricRequestLatencyFactor,
		"Request latency as a multiple of the mean point-to-point network latency (Figure 6).",
		metrics.LatencyFactorBuckets, nil)
}

// countSent records one protocol message entering the network.
func (t *telemetry) countSent(k proto.Kind) {
	if t.reg == nil {
		return
	}
	if int(k) < len(t.sent) {
		t.sent[k].Inc()
		return
	}
	t.sentUnknown.Inc()
}

// tokenTransfer records a token hop on a lock. The simulator sees both
// ends of every hop, so direction "out" counts sends and "in" counts
// deliveries, matching the per-node series of the live runtime.
func (t *telemetry) tokenTransfer(lock proto.LockID, direction string) {
	if t.reg == nil {
		return
	}
	t.reg.Counter(metrics.MetricTokenTransfers,
		"Token transfers observed by this node.",
		metrics.Labels{
			"lock":      strconv.FormatUint(uint64(lock), 10),
			"direction": direction,
		}).Inc()
}

// observeGrant records a completed request's issue-to-grant latency.
func (t *telemetry) observeGrant(d time.Duration) {
	if t.reg == nil {
		return
	}
	t.acquires.Inc()
	t.latency.Observe(d.Seconds())
	t.factor.Observe(d.Seconds() / t.base.Seconds())
}

// registerLockCollectors registers scrape-time gauges over every node's
// hierarchical engine state, labelled by node and lock. The collectors
// read engine state without synchronization — the simulator is
// single-threaded — so scrape only while the simulator is idle (between
// Run calls or after the run finished).
func (c *Cluster) registerLockCollectors(reg *metrics.Registry) {
	engineGauge := func(f func(*hlock.Engine) float64) metrics.Collector {
		return func(emit func(metrics.Labels, float64)) {
			for _, n := range c.Nodes {
				for id, e := range n.hier {
					emit(metrics.Labels{
						"node": strconv.Itoa(int(n.ID)),
						"lock": strconv.FormatUint(uint64(id), 10),
					}, f(e))
				}
			}
		}
	}
	reg.Collect(metrics.MetricLockQueueDepth,
		"Locally queued requests per lock.", "gauge",
		engineGauge(func(e *hlock.Engine) float64 { return float64(e.QueueLen()) }))
	reg.Collect(metrics.MetricLockCopyset,
		"Copyset size (children holding a granted copy) per lock.", "gauge",
		engineGauge(func(e *hlock.Engine) float64 { return float64(len(e.Children())) }))
	reg.Collect(metrics.MetricLockFrozen,
		"Number of frozen modes per lock.", "gauge",
		engineGauge(func(e *hlock.Engine) float64 { return float64(e.Frozen().Len()) }))
	reg.Collect(metrics.MetricTokenHeld,
		"Whether this node holds the lock's token (0 or 1).", "gauge",
		engineGauge(func(e *hlock.Engine) float64 {
			if e.IsToken() {
				return 1
			}
			return 0
		}))
}
