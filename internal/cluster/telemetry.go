package cluster

import (
	"strconv"
	"time"

	"hierlock/internal/hlock"
	"hierlock/internal/metrics"
	"hierlock/internal/proto"
)

// telemetry fans the cluster's events into a metrics.Registry under the
// exact family names the live lockd runtime exports (see member.go and
// docs/OBSERVABILITY.md), so simulator runs and production scrapes
// answer the same queries. Handles are cached at init; every emission
// path is nil-safe, so a cluster without a registry pays only dead
// branches.
type telemetry struct {
	reg  *metrics.Registry
	base time.Duration

	sent        [6]*metrics.Counter // indexed by proto.Kind
	sentUnknown *metrics.Counter
	requests    *metrics.Counter
	acquires    *metrics.Counter
	latency     *metrics.Histogram
	factor      *metrics.Histogram

	// Per-operation SLO families, indexed by metrics.Op*/Outcome* —
	// same names, help strings and buckets as the member runtime.
	opLatency [2][4]*metrics.Histogram
	queueWait *metrics.Histogram
	tokenHops *metrics.Histogram

	// Session-lease mirror families (see internal/session): the
	// simulator's lease layer (lease.go) drives the same names the lockd
	// session tier exports, so lease dashboards read identically over
	// simulator runs and production scrapes. Admission-queue families
	// are not mirrored — queue admission is a lockd front-end mechanism
	// with no simulator counterpart.
	sessionsOpen    *metrics.Gauge
	sessionsOpened  *metrics.Counter
	sessionsAdopted *metrics.Counter
	sessionsClosed  *metrics.Counter
	sessionsExpired *metrics.Counter
	renewals        *metrics.Counter
	reaped          *metrics.Counter
	fences          *metrics.Counter
}

func (t *telemetry) init(reg *metrics.Registry, base time.Duration) {
	t.reg = reg
	t.base = base
	if t.base <= 0 {
		t.base = DefaultLatencyMean
	}
	for _, k := range metrics.Kinds {
		t.sent[k] = reg.Counter(metrics.MetricMessagesTotal,
			"Protocol messages sent, by kind.", metrics.Labels{"kind": k.String()})
	}
	t.sentUnknown = reg.Counter(metrics.MetricMessagesTotal,
		"Protocol messages sent, by kind.", metrics.Labels{"kind": "unknown"})
	t.requests = reg.Counter(metrics.MetricRequestsTotal,
		"Client lock requests issued (including upgrades and local joins).", nil)
	t.acquires = reg.Counter(metrics.MetricAcquiresTotal,
		"Completed lock acquisitions (grants, upgrades, shared joins).", nil)
	t.latency = reg.Histogram(metrics.MetricRequestLatency,
		"Issue-to-grant lock request latency in seconds.",
		metrics.DefLatencyBuckets, nil)
	t.factor = reg.Histogram(metrics.MetricRequestLatencyFactor,
		"Request latency as a multiple of the mean point-to-point network latency (Figure 6).",
		metrics.LatencyFactorBuckets, nil)
	for oi, op := range metrics.OpKinds {
		for ci, oc := range metrics.Outcomes {
			t.opLatency[oi][ci] = reg.Histogram(metrics.MetricOpLatency,
				"End-to-end client operation latency in seconds, by operation and grant outcome.",
				metrics.DefLatencyBuckets, metrics.Labels{"op": op, "outcome": oc})
		}
	}
	t.queueWait = reg.Histogram(metrics.MetricQueueWait,
		"Per-lock admission queue wait in seconds, request issue to protocol entry.",
		metrics.DefLatencyBuckets, nil)
	t.tokenHops = reg.Histogram(metrics.MetricTokenHops,
		"Token transfers observed per granted request (0 = pure local grant; Figure 5).",
		metrics.TokenHopBuckets, nil)
	t.sessionsOpen = reg.Gauge(metrics.MetricSessionsOpen,
		"Named client sessions currently live.", nil)
	t.sessionsOpened = reg.Counter(metrics.MetricSessionsOpened,
		"Named client sessions created.", nil)
	t.sessionsAdopted = reg.Counter(metrics.MetricSessionsAdopted,
		"Reconnections that re-adopted a live detached session.", nil)
	t.sessionsClosed = reg.Counter(metrics.MetricSessionsClosed,
		"Sessions closed explicitly by clients.", nil)
	t.sessionsExpired = reg.Counter(metrics.MetricSessionsExpired,
		"Sessions reaped by the lease sweeper.", nil)
	t.renewals = reg.Counter(metrics.MetricSessionRenewals,
		"Session lease renewals (explicit and activity-based).", nil)
	t.reaped = reg.Counter(metrics.MetricSessionLocksReaped,
		"Locks force-released because their session's lease expired.", nil)
	t.fences = reg.Counter(metrics.MetricFenceTokens,
		"Fencing tokens issued (grants, upgrades, shared joins, hand-offs).", nil)
}

// countSent records one protocol message entering the network.
func (t *telemetry) countSent(k proto.Kind) {
	if t.reg == nil {
		return
	}
	if int(k) < len(t.sent) {
		t.sent[k].Inc()
		return
	}
	t.sentUnknown.Inc()
}

// tokenTransfer records a token hop on a lock. The simulator sees both
// ends of every hop, so direction "out" counts sends and "in" counts
// deliveries, matching the per-node series of the live runtime.
func (t *telemetry) tokenTransfer(lock proto.LockID, direction string) {
	if t.reg == nil {
		return
	}
	t.reg.Counter(metrics.MetricTokenTransfers,
		"Token transfers observed by this node.",
		metrics.Labels{
			"lock":      strconv.FormatUint(uint64(lock), 10),
			"direction": direction,
		}).Inc()
}

// observeGrant records a completed request's issue-to-grant latency.
func (t *telemetry) observeGrant(d time.Duration) {
	if t.reg == nil {
		return
	}
	t.acquires.Inc()
	t.latency.Observe(d.Seconds())
	t.factor.Observe(d.Seconds() / t.base.Seconds())
}

// queueAdmit records a request entering the protocol. The simulator
// admits synchronously, so the wait is always zero; the observation
// keeps the family's sample count aligned with the live runtime's.
func (t *telemetry) queueAdmit() {
	if t.reg == nil {
		return
	}
	t.queueWait.Observe(0)
}

// observeOp records one finished operation in the per-operation SLO
// families: latency under its (op, outcome) series and, for grants, the
// token hops its wait observed (lost operations never got a token).
func (t *telemetry) observeOp(op, outcome int, d time.Duration, hops int) {
	if t.reg == nil {
		return
	}
	t.opLatency[op][outcome].Observe(d.Seconds())
	if outcome != metrics.OutcomeLost {
		t.tokenHops.Observe(float64(hops))
	}
}

// registerLockCollectors registers scrape-time gauges over every node's
// hierarchical engine state, labelled by node and lock. The collectors
// read engine state without synchronization — the simulator is
// single-threaded — so scrape only while the simulator is idle (between
// Run calls or after the run finished).
func (c *Cluster) registerLockCollectors(reg *metrics.Registry) {
	engineGauge := func(f func(*hlock.Engine) float64) metrics.Collector {
		return func(emit func(metrics.Labels, float64)) {
			for _, n := range c.Nodes {
				for id, e := range n.hier {
					emit(metrics.Labels{
						"node": strconv.Itoa(int(n.ID)),
						"lock": strconv.FormatUint(uint64(id), 10),
					}, f(e))
				}
			}
		}
	}
	reg.Collect(metrics.MetricLockQueueDepth,
		"Locally queued requests per lock.", "gauge",
		engineGauge(func(e *hlock.Engine) float64 { return float64(e.QueueLen()) }))
	reg.Collect(metrics.MetricLockCopyset,
		"Copyset size (children holding a granted copy) per lock.", "gauge",
		engineGauge(func(e *hlock.Engine) float64 { return float64(len(e.Children())) }))
	reg.Collect(metrics.MetricLockFrozen,
		"Number of frozen modes per lock.", "gauge",
		engineGauge(func(e *hlock.Engine) float64 { return float64(e.Frozen().Len()) }))
	reg.Collect(metrics.MetricTokenHeld,
		"Whether this node holds the lock's token (0 or 1).", "gauge",
		engineGauge(func(e *hlock.Engine) float64 {
			if e.IsToken() {
				return 1
			}
			return 0
		}))
	// Each simulated node's lock table is a single stripe; the live
	// member spreads its table over many (see member.go). Emitting the
	// same families keeps dashboards portable between the two.
	reg.Collect(metrics.MetricStripeLocks,
		"Tracked locks per shard stripe of the member's lock table.", "gauge",
		func(emit func(metrics.Labels, float64)) {
			for _, n := range c.Nodes {
				emit(metrics.Labels{
					"node":   strconv.Itoa(int(n.ID)),
					"stripe": "0",
				}, float64(n.TrackedLocks()))
			}
		})
	reg.Collect(metrics.MetricLamportClock,
		"The member's Lamport clock (its rate proxies protocol activity).", "gauge",
		func(emit func(metrics.Labels, float64)) {
			for _, n := range c.Nodes {
				emit(metrics.Labels{"node": strconv.Itoa(int(n.ID))},
					float64(n.clock.Now()))
			}
		})
}
