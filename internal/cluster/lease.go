package cluster

import (
	"fmt"
	"time"

	"hierlock"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// Lease is the simulator's mirror of the lockd session tier (see
// internal/session): a named client whose lock holdings are tied to a
// TTL lease on the virtual clock. If the simulated client dies without
// releasing — no Renew, no Close — the lease expires and every lock it
// still holds is force-released, exactly what the live sweeper does
// when a client process crashes mid-hold. Grants minted through a lease
// carry fencing tokens derived from the lock's recovery epoch and the
// node's Lamport clock, the same (epoch, seq) shape the member runtime
// issues.
//
// The simulator is single-threaded, so Lease needs no locking; expiry
// runs as a daemon event (it must not hold a quiescing cluster open).
type Lease struct {
	n        *Node
	name     string
	ttl      time.Duration
	deadline time.Duration // virtual-time expiry
	held     map[proto.LockID]modes.Mode
	gone     bool // expired or closed
}

// OpenLease creates a named lease on this node. ttl must be positive.
func (n *Node) OpenLease(name string, ttl time.Duration) *Lease {
	if ttl <= 0 {
		n.c.fail(fmt.Errorf("cluster: lease %q: non-positive ttl %v", name, ttl))
		ttl = time.Second
	}
	l := &Lease{
		n:        n,
		name:     name,
		ttl:      ttl,
		deadline: n.c.Sim.Now() + ttl,
		held:     make(map[proto.LockID]modes.Mode),
	}
	if t := n.c.tel; t.reg != nil {
		t.sessionsOpened.Inc()
		t.sessionsOpen.Add(1)
	}
	l.arm(ttl)
	return l
}

// arm schedules the next expiry check. Daemon events fire normally but
// do not count toward Pending, so an outstanding lease never stops the
// cluster from reporting quiescence.
func (l *Lease) arm(delay time.Duration) {
	l.n.c.Sim.AtDaemon(delay, func() {
		if l.gone {
			return
		}
		now := l.n.c.Sim.Now()
		if now >= l.deadline {
			l.expire()
			return
		}
		l.arm(l.deadline - now)
	})
}

// Renew pushes the lease deadline out to now+TTL (the heartbeat).
func (l *Lease) Renew() {
	if l.gone {
		return
	}
	l.deadline = l.n.c.Sim.Now() + l.ttl
	if t := l.n.c.tel; t.reg != nil {
		t.renewals.Inc()
	}
}

// Expired reports whether the lease was reaped or closed.
func (l *Lease) Expired() bool { return l.gone }

// HeldLocks returns the number of locks currently held under the lease.
func (l *Lease) HeldLocks() int { return len(l.held) }

// Acquire requests lock in mode m under the lease; done runs when the
// lock is held, with the grant's fencing token. A grant that lands
// after the lease was reaped is released immediately — the simulator
// analogue of session.AddHeld failing with ErrExpired — and done is not
// called. Acquiring also counts as lease activity (implicit renewal),
// matching the live tier's Touch-per-command semantics.
func (l *Lease) Acquire(lock proto.LockID, m modes.Mode, done func(fence hierlock.FenceToken)) {
	if l.gone {
		return
	}
	l.Renew()
	l.n.Acquire(lock, m, func() {
		if l.gone {
			l.n.Release(lock)
			return
		}
		l.held[lock] = m
		fence := l.mintFence(lock)
		if done != nil {
			done(fence)
		}
	})
}

// mintFence issues a fencing token for a grant on lock: the lock's
// recovery epoch (hierarchical protocol; 0 for the exclusive baselines,
// which have no epochs) paired with a fresh Lamport tick. Lamport ticks
// advance on every protocol interaction, so tokens are strictly
// increasing along any chain of exclusive holds within an epoch, and
// the epoch dominates across recoveries — the same ordering argument
// as Member.mintFence.
func (l *Lease) mintFence(lock proto.LockID) hierlock.FenceToken {
	n := l.n
	var epoch uint32
	if n.hier != nil {
		epoch = n.hierEngine(lock).Epoch()
	}
	f := hierlock.FenceToken{Epoch: epoch, Seq: uint64(n.clock.Tick())}
	if t := n.c.tel; t.reg != nil {
		t.fences.Inc()
	}
	return f
}

// Release releases one lock held under the lease (no-op when the lease
// never held it or was already reaped — the reaper released for us).
func (l *Lease) Release(lock proto.LockID) {
	if l.gone {
		return
	}
	if _, ok := l.held[lock]; !ok {
		return
	}
	delete(l.held, lock)
	l.Renew()
	l.n.Release(lock)
}

// Close ends the lease explicitly, releasing everything it still holds.
// It returns the number of locks released.
func (l *Lease) Close() int {
	if l.gone {
		return 0
	}
	l.gone = true
	if t := l.n.c.tel; t.reg != nil {
		t.sessionsClosed.Inc()
		t.sessionsOpen.Add(-1)
	}
	return l.drain()
}

// expire is the sweeper path: the client died, the lease lapsed, and
// its locks are force-released so other clients can make progress.
func (l *Lease) expire() {
	l.gone = true
	if t := l.n.c.tel; t.reg != nil {
		t.sessionsExpired.Inc()
		t.sessionsOpen.Add(-1)
	}
	n := l.drain()
	if t := l.n.c.tel; t.reg != nil {
		t.reaped.Add(uint64(n))
	}
}

// drain releases every lock still held under the lease.
func (l *Lease) drain() int {
	released := 0
	for lock := range l.held {
		delete(l.held, lock)
		l.n.Release(lock)
		released++
	}
	return released
}
