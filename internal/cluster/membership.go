package cluster

import (
	"fmt"
	"sort"

	"hierlock/internal/proto"
	"hierlock/internal/trace"
)

// This file is the simulator's runtime-membership surface, mirroring the
// live member's Join/Leave (membership.go at the repo root). The wire
// handshake is modelled at the control plane — a join is instantaneous
// adoption of a member's recovery outcomes, a leave is an instantaneous
// departure whose nominated tokens regenerate among the survivors — so
// seeded runs stay deterministic while exercising the same recovery
// machinery the live runtime drives through KindJoin/KindLeave frames.
// Both must be called on the simulator goroutine, like all Cluster
// access.

// Join admits a new node into the running cluster. The joiner is minted
// like an original node (same protocol, lazy engines), then seeded the
// way a live JoinAck seeds it: it adopts every completed-round outcome
// the lowest-ID live member remembers and raises its epoch floor to the
// highest epoch that member has observed, so nothing the joiner later
// regenerates can collide with a world it never saw. Every member's
// recovery manager learns the joiner, and a majority-tracked quorum is
// recomputed over the grown membership. No token moves: a join is a
// recovery round with zero lost tokens.
//
// Only the protocols that support recovery (Hierarchical, Naimi) accept
// runtime membership changes, and the cluster must have been built with
// Config.Recovery.
func (c *Cluster) Join() (*Node, error) {
	if c.recovery == nil {
		return nil, fmt.Errorf("cluster: join requires the recovery subsystem (Config.Recovery)")
	}
	id := proto.NodeID(len(c.Nodes))
	cfg := c.cfg
	cfg.Nodes = len(c.Nodes) + 1
	c.members[id] = true
	n := newNode(c, id, cfg)
	c.Nodes = append(c.Nodes, n)
	c.Net.Register(n.ID, n.handle)

	// Every live member admits the joiner into its node set (the live
	// runtime fans the announcement out through the mesh).
	for _, o := range c.Nodes[:len(c.Nodes)-1] {
		if o.mgr != nil && c.members[o.ID] {
			o.mgr.AddNode(id)
		}
	}

	// Seed the joiner from the lowest-ID live member, the node a live
	// joiner would have been pointed at: its completed-round table plus
	// the highest epoch its engines carry beyond it.
	var floor uint32
	if seed := c.lowestLiveMember(id); seed != nil && seed.mgr != nil && n.mgr != nil {
		for lock, s := range seed.mgr.Table() {
			n.mgr.Adopt(lock, s)
			if s.Epoch > floor {
				floor = s.Epoch
			}
		}
		if e := seed.maxEpoch(); e > floor {
			floor = e
		}
		n.mgr.SetEpochFloor(floor)
	}
	c.recomputeQuorum()
	c.trace.Record(trace.Entry{
		At: c.Sim.Now(), Op: trace.OpJoin, Node: id, Epoch: floor,
	})
	return n, nil
}

// Leave departs a node gracefully: it must hold no client locks and
// have no request outstanding (the live member refuses a Leave with
// held locks the same way). Every token its state can account for —
// live engine tokens, implicit initial-topology tokens, seed-table
// roots — is nominated to the survivors, who regenerate each one with
// the leaver already excluded, so the new world cannot re-reference it.
// The departed node drops every frame still in flight to it, exactly
// like the process that shut down after the hand-off.
func (c *Cluster) Leave(id proto.NodeID) error {
	if c.recovery == nil {
		return fmt.Errorf("cluster: leave requires the recovery subsystem (Config.Recovery)")
	}
	if int(id) >= len(c.Nodes) || !c.members[id] {
		return fmt.Errorf("cluster: node %d is not a member", id)
	}
	if c.NodeDown(id) {
		return fmt.Errorf("cluster: node %d is crashed; use crash recovery, not leave", id)
	}
	n := c.Nodes[id]
	for lock, holders := range c.oracle {
		if _, held := holders[id]; held {
			return fmt.Errorf("cluster: node %d still holds lock %d; release before leaving", id, lock)
		}
	}
	if len(n.waiters) > 0 {
		return fmt.Errorf("cluster: node %d has requests outstanding; leave refused", id)
	}

	// Nominate every lock whose token this node's state accounts for.
	// recoveryState answers through the same lazy-engine path a recovery
	// claim would, so implicit holds (the initial-topology root, a
	// recovered seed root with an evicted engine) are included.
	var nominated []proto.LockID
	for _, lock := range n.recoveryLocks() {
		if n.recoveryState(lock).Token {
			nominated = append(nominated, lock)
		}
	}
	sort.Slice(nominated, func(i, j int) bool { return nominated[i] < nominated[j] })

	delete(c.members, id)
	n.left = true
	c.Net.Register(id, nil)

	// Survivors process the departure in ID order: remove the leaver
	// from their node sets and regenerate every nominated (or
	// leaver-referencing) lock among themselves.
	for _, o := range c.Nodes {
		if o.mgr != nil && c.members[o.ID] && !c.NodeDown(o.ID) {
			o.mgr.Depart(id, nominated)
		}
	}
	c.recomputeQuorum()
	c.trace.Record(trace.Entry{
		At: c.Sim.Now(), Op: trace.OpLeave, Node: id, Epoch: uint32(len(nominated)),
	})
	return nil
}

// Members returns the current membership, sorted ascending.
func (c *Cluster) Members() []proto.NodeID {
	out := make([]proto.NodeID, 0, len(c.members))
	for id := range c.members {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// lowestLiveMember returns the lowest-ID member that is up and not the
// excluded node, or nil.
func (c *Cluster) lowestLiveMember(exclude proto.NodeID) *Node {
	for _, n := range c.Nodes {
		if n.ID != exclude && c.members[n.ID] && !c.NodeDown(n.ID) {
			return n
		}
	}
	return nil
}

// recomputeQuorum re-derives a majority quorum over the current
// membership and installs it on every member's manager. No-op when the
// quorum was configured explicitly (or disabled).
func (c *Cluster) recomputeQuorum() {
	if !c.quorumAuto {
		return
	}
	q := len(c.members)/2 + 1
	c.recovery.Quorum = q
	for _, n := range c.Nodes {
		if n.mgr != nil && c.members[n.ID] {
			n.mgr.SetQuorum(q)
		}
	}
}
