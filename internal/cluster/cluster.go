// Package cluster assembles complete simulated deployments: N nodes, each
// running one protocol engine per lock, connected by a latency-modelled
// network with per-link FIFO delivery, driven by the discrete-event
// simulator. It hosts both the paper's hierarchical protocol
// (internal/hlock) and the Naimi–Trehel baseline (internal/naimi) behind
// one client interface, so workloads and experiments are protocol-agnostic.
//
// A built-in oracle continuously verifies mutual exclusion: the multiset
// of modes held across all nodes of any lock must stay pairwise
// compatible. Violations and engine-level protocol errors are recorded on
// the cluster and fail the run.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"hierlock/internal/hlock"
	"hierlock/internal/metrics"
	"hierlock/internal/modes"
	"hierlock/internal/naimi"
	"hierlock/internal/proto"
	"hierlock/internal/raymond"
	"hierlock/internal/recovery"
	"hierlock/internal/ricart"
	"hierlock/internal/sim"
	"hierlock/internal/suzuki"
	"hierlock/internal/trace"
	"hierlock/internal/watchdog"
)

// Protocol selects the locking protocol a cluster runs.
type Protocol uint8

// Available protocols.
const (
	// Hierarchical is the paper's protocol with the five CORBA modes.
	Hierarchical Protocol = iota
	// Naimi is the exclusive-only Naimi–Trehel baseline; all modes map to
	// exclusive ownership.
	Naimi
	// Raymond is the static-tree token baseline (related work [16]):
	// exclusive-only, O(log n) messages on a fixed balanced binary tree.
	Raymond
	// Suzuki is the Suzuki–Kasami broadcast baseline (related work [20]):
	// exclusive-only, Θ(n) messages per request.
	Suzuki
	// Ricart is the Ricart–Agrawala permission-based baseline (the
	// paper's §2 non-token class): exclusive-only, 2(n−1) messages per
	// request.
	Ricart
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case Naimi:
		return "naimi"
	case Raymond:
		return "raymond"
	case Suzuki:
		return "suzuki"
	case Ricart:
		return "ricart"
	default:
		return "hierarchical"
	}
}

// Config describes a simulated deployment.
type Config struct {
	Protocol Protocol
	Nodes    int
	Locks    []proto.LockID
	// Latency is the message-delay distribution (defaults to
	// sim.UniformAround(150ms), the paper's mean point-to-point latency).
	Latency sim.Dist
	// Options ablate hierarchical-protocol features (ignored for Naimi).
	Options hlock.Options
	Seed    int64
	// Trace, when non-nil, records sends, deliveries and client events.
	Trace *trace.Recorder
	// Faults, when non-nil, injects deterministic network failures (drops,
	// duplicates, delay spikes, partitions, node crash windows) beneath a
	// modelled reliable link layer; see sim.FaultPlan. Fault events are
	// counted in Network.FaultStats and recorded in the trace.
	Faults *sim.FaultPlan
	// Registry, when non-nil, receives live metric series under the same
	// family names the lockd runtime exports (message counters, request
	// latency histograms, per-lock gauges), so simulated and production
	// deployments share dashboards and queries. Scrape only while the
	// simulator is idle.
	Registry *metrics.Registry
	// LatencyBase scales the request-latency-factor histogram (latency as
	// a multiple of the mean network delay, the paper's Figure 6 x-axis).
	// Defaults to DefaultLatencyMean.
	LatencyBase time.Duration
	// Recovery, when non-nil, enables crash recovery (internal/recovery)
	// on the token-based protocols that support it (Hierarchical, Naimi):
	// confirmed node deaths trigger epoch-stamped token-regeneration
	// rounds instead of wedging the crashed node's locks forever. The
	// failure detector is modelled from fault-plan ground truth, so this
	// requires Faults with crash windows to have any effect.
	Recovery *RecoveryOptions
}

// RecoveryOptions tunes the simulated crash-recovery subsystem.
type RecoveryOptions struct {
	// ConfirmAfter models the failure detector's confirmation threshold:
	// each surviving node confirms a crashed peer dead this long after its
	// crash window opens (staggered a millisecond per observer, as real
	// detectors never fire simultaneously). Crash windows shorter than
	// ConfirmAfter are never confirmed — exactly how a silence-based
	// detector rides out brief outages. Default 2s.
	ConfirmAfter time.Duration
	// ProbeTimeout is the regenerator's re-probe interval for survivors
	// that have not answered a recovery probe. Default 1s.
	ProbeTimeout time.Duration
	// Quorum gates regeneration-round commits on fenced participants,
	// mirroring TCPMemberConfig.RecoveryQuorum: 0 (the default) requires
	// a majority of the cluster, a positive value sets an explicit
	// threshold, and -1 disables the gate (a round commits once every
	// survivor the detector still trusts has claimed). See
	// docs/PROTOCOL.md for the availability tradeoff.
	Quorum int
}

// DefaultLatencyMean is the paper's mean network latency.
const DefaultLatencyMean = 150 * time.Millisecond

// Cluster is a simulated deployment. All access happens on the simulator
// goroutine.
type Cluster struct {
	Sim   *sim.Sim
	Net   *Network
	Nodes []*Node

	// Requests counts client lock requests issued (including message-free
	// local acquisitions), the denominator of the paper's Figure 5.
	Requests uint64
	// LostHolds counts holds that did not survive a regeneration round
	// (the live runtime surfaces these to clients as ErrLockLost).
	LostHolds uint64
	// Grants counts completed acquisitions (grants and upgrades) across
	// the cluster, the progress signal HealthSample feeds the stall
	// watchdog.
	Grants uint64

	oracle   map[proto.LockID]map[proto.NodeID]modes.Mode
	errs     []error
	trace    *trace.Recorder
	tel      telemetry
	recovery *RecoveryOptions
	died     map[proto.NodeID]bool

	// cfg is the resolved construction config, kept so runtime joins can
	// mint nodes identical to the originals (see membership.go).
	cfg Config
	// members is the current membership: node IDs admitted and not
	// departed. Node slots in Nodes are never reused; a departed node
	// stays in the slice but leaves this set.
	members map[proto.NodeID]bool
	// quorumAuto records that the recovery quorum was configured as
	// "majority" (Quorum == 0), so membership changes recompute it.
	quorumAuto bool
}

// New builds a cluster per cfg. Node 0 initially holds every token and is
// every other node's initial parent (the star the paper starts from).
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.Latency == nil {
		cfg.Latency = sim.UniformAround(DefaultLatencyMean)
	}
	s := sim.New(cfg.Seed)
	c := &Cluster{
		Sim:    s,
		trace:  cfg.Trace,
		oracle: make(map[proto.LockID]map[proto.NodeID]modes.Mode, len(cfg.Locks)),
		died:   make(map[proto.NodeID]bool),
	}
	if cfg.Recovery != nil && (cfg.Protocol == Hierarchical || cfg.Protocol == Naimi) {
		r := *cfg.Recovery
		if r.ConfirmAfter <= 0 {
			r.ConfirmAfter = 2 * time.Second
		}
		if r.ProbeTimeout <= 0 {
			r.ProbeTimeout = time.Second
		}
		switch {
		case r.Quorum == 0:
			r.Quorum = cfg.Nodes/2 + 1
			c.quorumAuto = true
		case r.Quorum < 0:
			r.Quorum = 0
		}
		c.recovery = &r
	}
	c.cfg = cfg
	c.members = make(map[proto.NodeID]bool, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		c.members[proto.NodeID(i)] = true
	}
	c.Net = NewNetwork(s, cfg.Latency)
	c.Net.trace = cfg.Trace
	if cfg.Registry != nil {
		c.tel.init(cfg.Registry, cfg.LatencyBase)
		c.registerLockCollectors(cfg.Registry)
	}
	c.Net.tel = &c.tel
	if cfg.Faults != nil {
		c.Net.SetFaults(*cfg.Faults)
	}
	for _, l := range cfg.Locks {
		c.oracle[l] = make(map[proto.NodeID]modes.Mode)
	}
	for i := 0; i < cfg.Nodes; i++ {
		n := newNode(c, proto.NodeID(i), cfg)
		c.Nodes = append(c.Nodes, n)
		c.Net.Register(n.ID, n.handle)
	}
	if c.recovery != nil && cfg.Faults != nil {
		c.scheduleDetector(cfg.Faults)
	}
	if cfg.Faults != nil {
		c.scheduleRestarts(cfg.Faults)
	}
	return c
}

// scheduleRestarts arms one daemon event per crash window at the
// window's end: the moment a node comes back up, the event applies the
// window's restart fate (see sim.CrashWindow.LoseDisk) and records an
// OpRestart trace entry whose Epoch distinguishes the two — the highest
// epoch the node's surviving state remembers for crash-with-disk, 0 for
// crash-with-disk-loss. Daemon events keep permanent crash windows
// (End far beyond the run horizon) from blocking Quiesced.
func (c *Cluster) scheduleRestarts(plan *sim.FaultPlan) {
	for _, cw := range plan.Crashes {
		cw := cw
		if cw.Node < 0 || cw.Node >= len(c.Nodes) || cw.End <= cw.Start {
			continue
		}
		c.Sim.AtDaemon(cw.End-c.Sim.Now(), func() {
			f := c.Net.Faults()
			if f != nil && f.DownAt(cw.Node, c.Sim.Now()) {
				return // an overlapping window still covers the node
			}
			c.restartNode(proto.NodeID(cw.Node), cw.LoseDisk)
		})
	}
}

// restartNode applies a crash window's restart fate. Crash-with-disk
// (the default) keeps the node's engine state — the in-memory model of
// a process that replayed a perfect journal — so only the trace entry
// and the death bookkeeping change. Crash-with-disk-loss wipes the node
// back to a blank boot: engines at initial topology, outstanding client
// requests abandoned, a fresh recovery manager with no seed table. The
// blank node then catches up through recovery hints when survivors
// fence its stale (epoch-0) traffic, exactly like a live member
// restarting without its data directory.
func (c *Cluster) restartNode(id proto.NodeID, loseDisk bool) {
	n := c.Nodes[id]
	var epoch uint32
	if loseDisk {
		n.wipe()
	} else {
		epoch = n.maxEpoch()
	}
	// A restarted node can die again: let the next confirmation release
	// its (new) holds instead of being swallowed by the once-only guard.
	delete(c.died, id)
	c.trace.Record(trace.Entry{
		At: c.Sim.Now(), Op: trace.OpRestart, Node: id, Epoch: epoch,
	})
}

// scheduleDetector models the failure detector from fault-plan ground
// truth with a finite set of pre-scheduled events, preserving simulator
// quiescence (a periodically ticking detector never would): for every
// crash window and every other node, one confirmation event fires
// ConfirmAfter past the window's start, staggered a millisecond per
// observer. At fire time the event checks the peer is still down —
// windows shorter than ConfirmAfter never confirm, exactly like a
// silence-based detector riding out a brief outage. Restarted nodes are
// not reported alive again: survivors keep excluding them from rounds
// and they catch up through recovery hints, the trajectory a live
// deployment follows when a member restarts with a cold detector.
func (c *Cluster) scheduleDetector(plan *sim.FaultPlan) {
	for _, cw := range plan.Crashes {
		dead := proto.NodeID(cw.Node)
		if int(dead) >= len(c.Nodes) {
			continue
		}
		for i := range c.Nodes {
			if proto.NodeID(i) == dead {
				continue
			}
			obs := c.Nodes[i]
			at := cw.Start + c.recovery.ConfirmAfter + time.Duration(i)*time.Millisecond
			c.Sim.At(at-c.Sim.Now(), func() {
				f := c.Net.Faults()
				if f == nil || !f.DownAt(int(dead), c.Sim.Now()) {
					return // restarted before the silence threshold
				}
				if obs.mgr == nil || c.NodeDown(obs.ID) {
					return
				}
				c.nodeDied(dead)
				obs.mgr.ConfirmDead(dead)
			})
		}
	}
}

// nodeDied models the memory loss of a fail-stop crash, once, at the
// first confirmation: the dead node's holds vanish (recorded as
// releases so the oracle and auditor stay balanced) and its outstanding
// client requests are abandoned.
func (c *Cluster) nodeDied(dead proto.NodeID) {
	if c.died[dead] {
		return
	}
	c.died[dead] = true
	locks := make([]proto.LockID, 0, len(c.oracle))
	for lock, holders := range c.oracle {
		if _, held := holders[dead]; held {
			locks = append(locks, lock)
		}
	}
	sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
	for _, lock := range locks {
		c.oracleRelease(lock, dead, proto.TraceID{})
	}
	n := c.Nodes[dead]
	for lock, w := range n.waiters {
		c.tel.observeOp(metrics.OpLock, metrics.OutcomeLost, c.Sim.Now()-w.start, 0)
		delete(n.waiters, lock)
	}
}

// lockLost records that a node's hold did not survive a regeneration
// round: the round closed without accounting for it, so the rebuilt
// world may grant conflicting modes. The live runtime surfaces this as
// ErrLockLost; the oracle drops the hold so it mirrors what recovery
// actually guarantees.
func (c *Cluster) lockLost(lock proto.LockID, node proto.NodeID) {
	c.LostHolds++
	if _, held := c.oracle[lock][node]; held {
		c.oracleRelease(lock, node, proto.TraceID{})
	}
}

// Err returns the first recorded failure (protocol error or oracle
// violation), or nil.
func (c *Cluster) Err() error {
	if len(c.errs) == 0 {
		return nil
	}
	return c.errs[0]
}

func (c *Cluster) fail(err error) {
	if err != nil {
		c.errs = append(c.errs, err)
	}
}

// oracleAcquire records node holding lock in mode and checks pairwise
// compatibility against all other holders.
func (c *Cluster) oracleAcquire(lock proto.LockID, node proto.NodeID, m modes.Mode, tr proto.TraceID) {
	c.trace.Record(trace.Entry{
		At: c.Sim.Now(), Op: trace.OpGranted, Node: node, Lock: lock, Mode: m, Trace: tr,
	})
	holders := c.oracle[lock]
	if holders == nil {
		// Engines are created lazily, so a grant can arrive for a lock the
		// configuration never named (e.g. a workload-generated ID).
		holders = make(map[proto.NodeID]modes.Mode)
		c.oracle[lock] = holders
	}
	for other, om := range holders {
		if other != node && !modes.Compatible(om, m) {
			c.fail(fmt.Errorf("cluster: mutual exclusion violated on lock %d: node %d holds %v while node %d acquires %v",
				lock, other, om, node, m))
		}
	}
	holders[node] = m
}

func (c *Cluster) oracleRelease(lock proto.LockID, node proto.NodeID, tr proto.TraceID) {
	c.trace.Record(trace.Entry{
		At: c.Sim.Now(), Op: trace.OpRelease, Node: node, Lock: lock, Trace: tr,
	})
	delete(c.oracle[lock], node)
}

// HoldersOf returns a snapshot of the oracle's holder map for a lock.
func (c *Cluster) HoldersOf(lock proto.LockID) map[proto.NodeID]modes.Mode {
	out := make(map[proto.NodeID]modes.Mode, len(c.oracle[lock]))
	for k, v := range c.oracle[lock] {
		out[k] = v
	}
	return out
}

// Quiesced reports whether no node has an outstanding request and the
// network is silent.
func (c *Cluster) Quiesced() bool {
	if c.Sim.Pending() > 0 {
		return false
	}
	for _, n := range c.Nodes {
		if len(n.waiters) > 0 {
			return false
		}
	}
	return true
}

// CheckTokens verifies epoch-aware token conservation: every lock of a
// token-based protocol must have exactly one token holder among live
// nodes at the lock's highest live epoch. Zero holders means the token
// was lost (a dropped Token message the transport failed to recover, or
// a crash recovery failed to regenerate it); more than one means it was
// duplicated. Nodes inside a crash window are excluded — their state
// died with them — and stale engines from before the last regeneration
// round are fenced out by the epoch filter rather than counted as
// duplicates. Call when the cluster is quiesced — during a transfer the
// token is legitimately in flight. Ricart–Agrawala is permission-based
// and vacuously conserves.
func (c *Cluster) CheckTokens() error {
	for lock := range c.oracle {
		// Pass 1: the highest epoch any live node has seen for this lock.
		// Completed-round seeds count alongside engine state: a recovered
		// root's engine may have been evicted at its post-recovery initial
		// state, with only the seed table remembering the world.
		var maxEpoch uint32
		up := func(e uint32) {
			if e > maxEpoch {
				maxEpoch = e
			}
		}
		for _, n := range c.Nodes {
			if c.NodeDown(n.ID) {
				continue
			}
			if n.mgr != nil {
				if s, ok := n.mgr.SeedFor(lock); ok {
					up(s.Epoch)
				}
			}
			switch {
			case n.hier != nil:
				if e := n.hier[lock]; e != nil {
					up(e.Epoch())
				}
			case n.naimi != nil:
				if e := n.naimi[lock]; e != nil {
					up(e.Epoch())
				}
			}
		}
		// Pass 2: count token holders among live nodes at that epoch.
		var holders []proto.NodeID
		for _, n := range c.Nodes {
			if c.NodeDown(n.ID) {
				continue
			}
			switch {
			case n.hier != nil:
				switch e := n.hier[lock]; {
				case e != nil:
					if e.Epoch() == maxEpoch && e.IsToken() {
						holders = append(holders, n.ID)
					}
				case c.absentHolds(n, lock, maxEpoch):
					holders = append(holders, n.ID)
				}
			case n.naimi != nil:
				if e := n.naimi[lock]; e != nil && e.Epoch() == maxEpoch && e.HasToken() {
					holders = append(holders, n.ID)
				}
			case n.raymond != nil:
				if e := n.raymond[lock]; e != nil && e.HasToken() {
					holders = append(holders, n.ID)
				}
			case n.suzuki != nil:
				if e := n.suzuki[lock]; e != nil && e.HasToken() {
					holders = append(holders, n.ID)
				}
			default:
				return nil // permission-based: no token to conserve
			}
		}
		switch len(holders) {
		case 1:
		case 0:
			return fmt.Errorf("cluster: token lost on lock %d (no live holder at epoch %d)", lock, maxEpoch)
		default:
			return fmt.Errorf("cluster: token duplicated on lock %d (holders %v at epoch %d)", lock, holders, maxEpoch)
		}
	}
	return nil
}

// absentHolds reports whether an absent (evicted or never-created)
// hierarchical engine at node n would hold the token at maxEpoch if
// lazily re-created. At epoch 0 that is the initial topology — node 0
// roots everything; a non-root engine can never be evicted while
// holding the token (not its initial state), so counting node 0 keeps
// conservation exact under eviction. After a regeneration round the
// recovered root plays that role for the round's epoch.
func (c *Cluster) absentHolds(n *Node, lock proto.LockID, maxEpoch uint32) bool {
	if n.mgr != nil {
		if s, ok := n.mgr.SeedFor(lock); ok {
			return s.Root == n.ID && s.Epoch == maxEpoch
		}
	}
	return n.ID == 0 && maxEpoch == 0
}

// NodeDown reports whether a node is currently absent from the cluster:
// inside a scheduled crash window, or gracefully departed via Leave.
// Workloads use it to pause issuing client operations on a downed node;
// the token-conservation and health checks use it to exclude state that
// died (or left) with the process.
func (c *Cluster) NodeDown(id proto.NodeID) bool {
	if !c.members[id] {
		return true
	}
	f := c.Net.Faults()
	return f != nil && f.DownAt(int(id), c.Sim.Now())
}

// HealthSample snapshots the cluster's live state into a stall-watchdog
// sample, the simulator's mirror of Member.HealthSample aggregated over
// every up node. Sample.Now is the virtual clock projected onto an
// epoch-anchored wall time, so seeded runs feed the watchdog identical
// timestamps and its verdicts join the deterministic envelope. The
// simulator models no disk, so FsyncStalls is always zero; chaos tests
// overlay injected stall schedules on top.
func (c *Cluster) HealthSample() watchdog.Sample {
	now := c.Sim.Now()
	s := watchdog.Sample{Now: time.Unix(0, 0).UTC().Add(now), Grants: c.Grants}
	for _, n := range c.Nodes {
		if c.NodeDown(n.ID) {
			continue
		}
		s.TrackedLocks += n.TrackedLocks()
		for _, w := range n.waiters {
			s.Waiters++
			if age := now - w.start; age > s.OldestWaiterAge {
				s.OldestWaiterAge = age
			}
		}
		for _, t0 := range n.roundStart {
			s.RoundsInFlight++
			if age := now - t0; age > s.OldestRoundAge {
				s.OldestRoundAge = age
			}
		}
	}
	return s
}

// Node is one simulated participant running every lock's engine.
type Node struct {
	ID proto.NodeID

	c       *Cluster
	clock   proto.Clock
	hier    map[proto.LockID]*hlock.Engine
	opts    hlock.Options
	naimi   map[proto.LockID]*naimi.Engine
	raymond map[proto.LockID]*raymond.Engine
	suzuki  map[proto.LockID]*suzuki.Engine
	ricart  map[proto.LockID]*ricart.Engine

	// mgr runs the crash-recovery protocol for this node (nil unless
	// Config.Recovery enabled it on a supporting protocol).
	mgr      *recovery.Manager
	cfgLocks []proto.LockID
	nnodes   int

	// waiters holds the completion callback of the outstanding request
	// per lock (at most one per lock).
	waiters map[proto.LockID]waiting

	// roundStart stamps (in virtual time) each regeneration round this
	// node runs as regenerator, the simulator's mirror of the member's
	// roundStart map; HealthSample judges round ages from it.
	roundStart map[proto.LockID]time.Duration

	// left marks a gracefully departed node: its handler drops every
	// frame still in flight to it, modelling the process that shut down
	// after the hand-off (see Cluster.Leave).
	left bool
}

// newTrace mints a cluster-unique causal trace ID for a client operation
// originating at this node, derived from the node's Lamport clock so
// seeded runs stay deterministic.
func (n *Node) newTrace() proto.TraceID {
	return proto.TraceID{Node: n.ID, Seq: uint64(n.clock.Tick())}
}

// msgTrace extracts a message's causal trace ID (requests carry the
// authoritative copy in the embedded Request).
func msgTrace(msg *proto.Message) proto.TraceID {
	if msg.Kind == proto.KindRequest && !msg.Req.Trace.IsZero() {
		return msg.Req.Trace
	}
	if msg.Kind == proto.KindRecovered {
		// The regenerated root rides in Req.Origin; surfacing it as the
		// entry's trace node lets the auditor learn the new release target
		// every reseeded node acquires.
		return proto.TraceID{Node: msg.Req.Origin}
	}
	return msg.Trace
}

func newNode(c *Cluster, id proto.NodeID, cfg Config) *Node {
	n := &Node{ID: id, c: c, nnodes: cfg.Nodes,
		waiters:    make(map[proto.LockID]waiting),
		roundStart: make(map[proto.LockID]time.Duration)}
	hasToken := id == 0
	const initialParent proto.NodeID = 0
	switch cfg.Protocol {
	case Naimi:
		n.naimi = make(map[proto.LockID]*naimi.Engine, len(cfg.Locks))
		for _, l := range cfg.Locks {
			n.naimi[l] = naimi.New(id, l, initialParent, hasToken, &n.clock)
		}
	case Raymond:
		n.raymond = make(map[proto.LockID]*raymond.Engine, len(cfg.Locks))
		for _, l := range cfg.Locks {
			n.raymond[l] = raymond.New(id, l, raymond.BinaryTreeHolder(id), &n.clock)
		}
	case Suzuki:
		n.suzuki = make(map[proto.LockID]*suzuki.Engine, len(cfg.Locks))
		for _, l := range cfg.Locks {
			n.suzuki[l] = suzuki.New(id, l, cfg.Nodes, hasToken, &n.clock)
		}
	case Ricart:
		n.ricart = make(map[proto.LockID]*ricart.Engine, len(cfg.Locks))
		for _, l := range cfg.Locks {
			n.ricart[l] = ricart.New(id, l, cfg.Nodes, &n.clock)
		}
	default:
		// Hierarchical engines are created lazily (and evicted when idle)
		// to mirror the live member runtime; see hierEngine.
		n.hier = make(map[proto.LockID]*hlock.Engine, len(cfg.Locks))
		n.opts = cfg.Options
	}
	if c.recovery != nil {
		n.cfgLocks = append([]proto.LockID(nil), cfg.Locks...)
		n.mgr = n.newManager()
	}
	return n
}

// newManager builds the node's recovery manager from the cluster's
// resolved recovery options. A disk-loss restart constructs a fresh one
// — the old manager's seed table and round state died with the process.
func (n *Node) newManager() *recovery.Manager {
	c := n.c
	// Peers come from the cluster's current membership, not the boot-time
	// node count: a manager rebuilt after a disk-loss restart must not
	// resurrect departed members or miss runtime joiners.
	peers := make([]proto.NodeID, 0, len(c.members))
	for id := range c.members {
		peers = append(peers, id)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return recovery.NewManager(recovery.Config{
		Self:             n.ID,
		Nodes:            peers,
		Send:             func(msg proto.Message) { c.Net.Send(msg) },
		Locks:            n.recoveryLocks,
		State:            n.recoveryState,
		PrepareReseed:    n.recoveryPrepare,
		Reseed:           n.recoveryReseed,
		LocksReferencing: n.locksReferencing,
		Clock:            &n.clock,
		After:            func(d time.Duration, fn func()) { c.Sim.At(d, fn) },
		ProbeTimeout:     c.recovery.ProbeTimeout,
		Quorum:           c.recovery.Quorum,
		OnRoundStart: func(lock proto.LockID, proposed uint32) {
			n.roundStart[lock] = c.Sim.Now()
		},
		OnRoundDone: func(lock proto.LockID, final uint32) {
			delete(n.roundStart, lock)
		},
	})
}

// locksReferencing returns the locks whose live engine state mentions a
// dead peer (recovery.Config.LocksReferencing): the eager-regeneration
// sweep uses it to catch locks whose probable-owner chain passed through
// the dead node even though no local request is outstanding on them.
func (n *Node) locksReferencing(dead proto.NodeID) []proto.LockID {
	var out []proto.LockID
	for lock, e := range n.hier {
		if e.References(dead) {
			out = append(out, lock)
		}
	}
	return out
}

// maxEpoch returns the highest recovery epoch the node's surviving
// state remembers across engines and the completed-round seed table
// (the rejoin epoch a crash-with-disk restart reports).
func (n *Node) maxEpoch() uint32 {
	var max uint32
	up := func(e uint32) {
		if e > max {
			max = e
		}
	}
	if n.mgr != nil {
		for _, s := range n.mgr.Table() {
			up(s.Epoch)
		}
	}
	for _, e := range n.hier {
		up(e.Epoch())
	}
	for _, e := range n.naimi {
		up(e.Epoch())
	}
	return max
}

// wipe models a disk-loss restart: every engine reverts to the initial
// topology a blank boot derives, outstanding client requests are
// abandoned (the process that issued them is gone), and the recovery
// manager restarts with no memory of past rounds. The node's Lamport
// clock is deliberately kept monotonic — a real implementation fences
// restarted clocks the same way — so message ordering stays safe.
func (n *Node) wipe() {
	for lock, w := range n.waiters {
		n.c.tel.observeOp(metrics.OpLock, metrics.OutcomeLost, n.c.Sim.Now()-w.start, 0)
		delete(n.waiters, lock)
	}
	clear(n.roundStart) // a crashed regenerator's rounds die with it
	switch {
	case n.hier != nil:
		n.hier = make(map[proto.LockID]*hlock.Engine)
	case n.naimi != nil:
		for lock := range n.naimi {
			n.naimi[lock] = naimi.New(n.ID, lock, 0, n.ID == 0, &n.clock)
		}
	case n.raymond != nil:
		for lock := range n.raymond {
			n.raymond[lock] = raymond.New(n.ID, lock, raymond.BinaryTreeHolder(n.ID), &n.clock)
		}
	case n.suzuki != nil:
		for lock := range n.suzuki {
			n.suzuki[lock] = suzuki.New(n.ID, lock, n.nnodes, n.ID == 0, &n.clock)
		}
	case n.ricart != nil:
		for lock := range n.ricart {
			n.ricart[lock] = ricart.New(n.ID, lock, n.nnodes, &n.clock)
		}
	}
	if n.mgr != nil {
		n.mgr = n.newManager()
	}
}

// recoveryLocks returns the locks this node can account for in a
// regeneration round: the configured set plus anything it tracks live
// engine state for (workload-generated IDs).
func (n *Node) recoveryLocks() []proto.LockID {
	seen := make(map[proto.LockID]bool, len(n.cfgLocks)+len(n.hier)+len(n.naimi))
	locks := make([]proto.LockID, 0, len(n.cfgLocks)+len(n.hier)+len(n.naimi))
	add := func(l proto.LockID) {
		if !seen[l] {
			seen[l] = true
			locks = append(locks, l)
		}
	}
	for _, l := range n.cfgLocks {
		add(l)
	}
	for l := range n.hier {
		add(l)
	}
	for l := range n.naimi {
		add(l)
	}
	return locks
}

// recoveryState captures the accountable engine state for a recovery
// claim (recovery.Config.State).
func (n *Node) recoveryState(lock proto.LockID) recovery.State {
	if n.hier != nil {
		e := n.hierEngine(lock)
		return recovery.State{Epoch: e.Epoch(), Held: e.Held(), Token: e.IsToken()}
	}
	if e := n.naimi[lock]; e != nil {
		st := recovery.State{Epoch: e.Epoch(), Token: e.HasToken()}
		if e.Held() {
			st.Held = modes.W
		}
		return st
	}
	return recovery.State{}
}

// recoveryPrepare fences the lock's engine for a regeneration round
// (recovery.Config.PrepareReseed).
func (n *Node) recoveryPrepare(lock proto.LockID, epoch uint32) {
	if n.hier != nil {
		n.hierEngine(lock).PrepareReseed(epoch)
		return
	}
	if e := n.naimi[lock]; e != nil {
		e.PrepareReseed(epoch)
	}
}

// recoveryReseed installs a completed round's outcome into the lock's
// engine and dispatches the fallout (recovery.Config.Reseed).
func (n *Node) recoveryReseed(lock proto.LockID, root proto.NodeID, epoch uint32, accounted modes.Mode, copyset []proto.Request) {
	// The round is over for this lock however it ended: drop any stamp a
	// round yielded to a higher-ID regenerator left behind, so the stall
	// watchdog never judges a superseded round as wedged (the member's
	// recoveryReseed does the same).
	delete(n.roundStart, lock)
	if w, ok := n.waiters[lock]; ok {
		w.recovered = true // the eventual grant is recovery-delayed
		n.waiters[lock] = w
	}
	if n.hier != nil {
		out, lost := n.hierEngine(lock).Reseed(root, epoch, accounted, copyset)
		if lost {
			n.c.lockLost(lock, n.ID)
		}
		n.dispatchHier(lock, out, nil)
		return
	}
	e := n.naimi[lock]
	if e == nil {
		return
	}
	out, lost := e.Reseed(root, epoch, accounted != modes.None)
	if lost {
		n.c.lockLost(lock, n.ID)
	}
	n.dispatchExcl(lock, out.Msgs, out.Acquired, nil)
}

// RecoveryManager exposes the node's crash-recovery manager (nil when
// recovery is disabled). Tests and experiments only.
func (n *Node) RecoveryManager() *recovery.Manager { return n.mgr }

// hierEngine returns (creating lazily) the hierarchical engine for a
// lock. Every node derives the same initial topology — node 0 holds the
// token and is everyone's initial parent — so a freshly created engine
// is protocol-correct regardless of when it springs into existence.
// After a regeneration round, the recovery manager's seed table replaces
// that derivation: the engine springs into the recovered world (the
// regenerated root, the round's epoch) so eviction stays safe across
// recoveries. This is the same lazy-creation scheme the live member
// runtime uses, keeping simulated and live state lifecycles identical.
func (n *Node) hierEngine(lock proto.LockID) *hlock.Engine {
	e, ok := n.hier[lock]
	if !ok {
		parent, token, epoch := proto.NodeID(0), n.ID == 0, uint32(0)
		if n.mgr != nil {
			if s, seeded := n.mgr.SeedFor(lock); seeded {
				parent, token, epoch = s.Root, n.ID == s.Root, s.Epoch
			}
		}
		e = hlock.New(n.ID, lock, parent, token, &n.clock, n.opts)
		if epoch != 0 {
			e.SeedEpoch(epoch)
		}
		n.hier[lock] = e
	}
	return e
}

// hierEvictThreshold is the tracked-lock count that triggers an
// idle-engine sweep on a node (mirrors the member runtime's
// per-stripe threshold; see Member.maybeEvict for the rationale).
const hierEvictThreshold = 64

// maybeEvictHier sweeps idle hierarchical engines once the node tracks
// more than hierEvictThreshold locks. An engine is idle when no request
// is outstanding on it and it is observably identical to a freshly
// created one (AtInitialState), so dropping and lazily re-creating it
// has no protocol effect.
func (n *Node) maybeEvictHier() {
	if len(n.hier) < hierEvictThreshold {
		return
	}
	n.sweepHier()
}

func (n *Node) sweepHier() int {
	evicted := 0
	for lock, e := range n.hier {
		if _, waiting := n.waiters[lock]; waiting {
			continue
		}
		if e.AtInitialState() {
			delete(n.hier, lock)
			evicted++
		}
	}
	return evicted
}

// EvictIdle immediately evicts every idle hierarchical engine on the
// node, returning the number evicted (no-op on baseline protocols).
func (n *Node) EvictIdle() int {
	if n.hier == nil {
		return 0
	}
	return n.sweepHier()
}

// TrackedLocks returns the number of locks the node currently holds
// engine state for.
func (n *Node) TrackedLocks() int {
	switch {
	case n.hier != nil:
		return len(n.hier)
	case n.naimi != nil:
		return len(n.naimi)
	case n.raymond != nil:
		return len(n.raymond)
	case n.suzuki != nil:
		return len(n.suzuki)
	default:
		return len(n.ricart)
	}
}

// Acquire requests lock in mode m; done runs when the lock is held
// (immediately for local acquisitions). For Naimi clusters the mode is
// ignored — every lock is exclusive.
func (n *Node) Acquire(lock proto.LockID, m modes.Mode, done func()) {
	n.AcquirePri(lock, m, 0, done)
}

// AcquirePri is Acquire with a request priority (hierarchical protocol
// only; Naimi ignores it).
func (n *Node) AcquirePri(lock proto.LockID, m modes.Mode, priority uint8, done func()) {
	n.c.Requests++
	n.c.tel.requests.Inc()
	tr := n.newTrace()
	n.c.trace.Record(trace.Entry{
		At: n.c.Sim.Now(), Op: trace.OpAcquire, Node: n.ID, Lock: lock, Mode: m, Trace: tr,
	})
	if e, ok := n.naimi[lock]; ok {
		out, err := e.Acquire()
		if err != nil {
			n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, lock, err))
			return
		}
		n.dispatchExcl(lock, out.Msgs, out.Acquired, done)
		return
	}
	if e, ok := n.raymond[lock]; ok {
		out, err := e.Acquire()
		if err != nil {
			n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, lock, err))
			return
		}
		n.dispatchExcl(lock, out.Msgs, out.Acquired, done)
		return
	}
	if e, ok := n.suzuki[lock]; ok {
		out, err := e.Acquire()
		if err != nil {
			n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, lock, err))
			return
		}
		n.dispatchExcl(lock, out.Msgs, out.Acquired, done)
		return
	}
	if e, ok := n.ricart[lock]; ok {
		out, err := e.Acquire()
		if err != nil {
			n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, lock, err))
			return
		}
		n.dispatchExcl(lock, out.Msgs, out.Acquired, done)
		return
	}
	if n.hier == nil {
		n.c.fail(fmt.Errorf("cluster: node %d has no engine for lock %d", n.ID, lock))
		return
	}
	out, err := n.hierEngine(lock).AcquireTraced(m, priority, tr)
	if err != nil {
		n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, lock, err))
		return
	}
	n.dispatchHier(lock, out, done)
}

// Upgrade converts a held U lock to W (hierarchical protocol only).
func (n *Node) Upgrade(lock proto.LockID, done func()) {
	n.UpgradePri(lock, 0, done)
}

// UpgradePri is Upgrade with a queue priority for the W self-request.
func (n *Node) UpgradePri(lock proto.LockID, priority uint8, done func()) {
	if n.hier == nil {
		n.c.fail(fmt.Errorf("cluster: upgrade on non-hierarchical lock %d", lock))
		return
	}
	e := n.hierEngine(lock)
	n.c.Requests++
	n.c.tel.requests.Inc()
	tr := n.newTrace()
	n.c.trace.Record(trace.Entry{
		At: n.c.Sim.Now(), Op: trace.OpAcquire, Node: n.ID, Lock: lock, Mode: modes.W, Trace: tr,
	})
	out, err := e.UpgradeTraced(priority, tr)
	if err != nil {
		n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, lock, err))
		return
	}
	n.dispatchHier(lock, out, done)
}

// Release leaves the critical section of a lock.
func (n *Node) Release(lock proto.LockID) {
	tr := n.newTrace()
	n.c.oracleRelease(lock, n.ID, tr)
	if e, ok := n.naimi[lock]; ok {
		out, err := e.Release()
		if err != nil {
			n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, lock, err))
			return
		}
		n.dispatchExcl(lock, out.Msgs, out.Acquired, nil)
		return
	}
	if e, ok := n.raymond[lock]; ok {
		out, err := e.Release()
		if err != nil {
			n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, lock, err))
			return
		}
		n.dispatchExcl(lock, out.Msgs, out.Acquired, nil)
		return
	}
	if e, ok := n.suzuki[lock]; ok {
		out, err := e.Release()
		if err != nil {
			n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, lock, err))
			return
		}
		n.dispatchExcl(lock, out.Msgs, out.Acquired, nil)
		return
	}
	if e, ok := n.ricart[lock]; ok {
		out, err := e.Release()
		if err != nil {
			n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, lock, err))
			return
		}
		n.dispatchExcl(lock, out.Msgs, out.Acquired, nil)
		return
	}
	out, err := n.hierEngine(lock).ReleaseTraced(tr)
	if err != nil {
		n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, lock, err))
		return
	}
	n.dispatchHier(lock, out, nil)
	n.maybeEvictHier()
}

// Held returns the mode this node holds on the lock (None if not held).
func (n *Node) Held(lock proto.LockID) modes.Mode {
	if e, ok := n.naimi[lock]; ok {
		return e.Mode()
	}
	if e, ok := n.raymond[lock]; ok {
		return e.Mode()
	}
	if e, ok := n.suzuki[lock]; ok {
		return e.Mode()
	}
	if e, ok := n.ricart[lock]; ok {
		return e.Mode()
	}
	if e, ok := n.hier[lock]; ok {
		return e.Held()
	}
	return modes.None
}

// HierEngine exposes the hierarchical engine for a lock (tests and
// structural checks), creating it lazily like any protocol-driven
// access; nil for baseline-protocol clusters.
func (n *Node) HierEngine(lock proto.LockID) *hlock.Engine {
	if n.hier == nil {
		return nil
	}
	return n.hierEngine(lock)
}

// NaimiEngine exposes the baseline engine for a lock; nil for
// hierarchical clusters.
func (n *Node) NaimiEngine(lock proto.LockID) *naimi.Engine { return n.naimi[lock] }

func (n *Node) handle(msg *proto.Message) {
	if n.left {
		return
	}
	if n.mgr != nil && n.mgr.HandleMessage(msg) {
		return
	}
	if msg.Kind == proto.KindToken {
		// Mirror of the member's waiter hop count: a token delivered while
		// a request is outstanding is one hop on that request's grant path.
		if w, ok := n.waiters[msg.Lock]; ok {
			w.hops++
			n.waiters[msg.Lock] = w
		}
	}
	if e, ok := n.naimi[msg.Lock]; ok {
		out, err := e.Handle(msg)
		if err != nil {
			n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, msg.Lock, err))
			return
		}
		if out.Stale && n.mgr != nil {
			// The engine fenced the frame out as pre-recovery traffic: the
			// sender may be a restarted node that missed the round. Answer
			// with the completed-round outcome so it catches up.
			n.mgr.Hint(msg.Lock, msg.From)
		}
		n.dispatchExcl(msg.Lock, out.Msgs, out.Acquired, nil)
		return
	}
	if e, ok := n.raymond[msg.Lock]; ok {
		out, err := e.Handle(msg)
		if err != nil {
			n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, msg.Lock, err))
			return
		}
		n.dispatchExcl(msg.Lock, out.Msgs, out.Acquired, nil)
		return
	}
	if e, ok := n.suzuki[msg.Lock]; ok {
		out, err := e.Handle(msg)
		if err != nil {
			n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, msg.Lock, err))
			return
		}
		n.dispatchExcl(msg.Lock, out.Msgs, out.Acquired, nil)
		return
	}
	if e, ok := n.ricart[msg.Lock]; ok {
		out, err := e.Handle(msg)
		if err != nil {
			n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, msg.Lock, err))
			return
		}
		n.dispatchExcl(msg.Lock, out.Msgs, out.Acquired, nil)
		return
	}
	if n.hier == nil {
		n.c.fail(fmt.Errorf("cluster: node %d received message for unknown lock %d", n.ID, msg.Lock))
		return
	}
	out, err := n.hierEngine(msg.Lock).Handle(msg)
	if err != nil {
		n.c.fail(fmt.Errorf("node %d lock %d: %w", n.ID, msg.Lock, err))
		return
	}
	if out.Stale && n.mgr != nil {
		n.mgr.Hint(msg.Lock, msg.From)
	}
	n.dispatchHier(msg.Lock, out, nil)
	n.maybeEvictHier()
}

// dispatchHier routes an engine step's output: messages to the network,
// acquisition events to the oracle and the waiting callback.
func (n *Node) dispatchHier(lock proto.LockID, out hlock.Out, done func()) {
	// A grant surfacing in the same dispatch that registered the waiter
	// never left the node: that is the local fast path (the member detects
	// the same condition by checking the grant channel after dispatch).
	sync := done != nil
	if done != nil {
		if _, dup := n.waiters[lock]; dup {
			n.c.fail(fmt.Errorf("cluster: node %d issued overlapping requests on lock %d", n.ID, lock))
			return
		}
		n.waiters[lock] = waiting{mode: n.hier[lock].Pending(), start: n.c.Sim.Now(), done: done}
		n.c.tel.queueAdmit()
	}
	for i := range out.Msgs {
		n.c.Net.Send(out.Msgs[i])
	}
	for _, ev := range out.Events {
		switch ev.Kind {
		case hlock.EventAcquired, hlock.EventUpgraded:
			n.c.oracleAcquire(lock, n.ID, ev.Mode, ev.Trace)
			w, ok := n.waiters[lock]
			if !ok {
				n.c.fail(fmt.Errorf("cluster: node %d lock %d acquired with no waiter", n.ID, lock))
				continue
			}
			delete(n.waiters, lock)
			n.c.Grants++
			n.c.tel.observeGrant(n.c.Sim.Now() - w.start)
			op := metrics.OpLock
			if ev.Kind == hlock.EventUpgraded {
				op = metrics.OpUpgrade
			}
			outcome := metrics.OutcomeRemote
			switch {
			case w.recovered:
				outcome = metrics.OutcomeRecovery
			case sync:
				outcome = metrics.OutcomeLocal
			}
			n.c.tel.observeOp(op, outcome, n.c.Sim.Now()-w.start, w.hops)
			w.done()
		}
	}
}

// dispatchExcl routes output of the exclusive-only baseline engines
// (Naimi, Raymond, Suzuki–Kasami), which share the {Msgs, Acquired}
// shape.
func (n *Node) dispatchExcl(lock proto.LockID, msgs []proto.Message, acquired bool, done func()) {
	sync := done != nil
	if done != nil {
		if _, dup := n.waiters[lock]; dup {
			n.c.fail(fmt.Errorf("cluster: node %d issued overlapping requests on lock %d", n.ID, lock))
			return
		}
		n.waiters[lock] = waiting{mode: modes.W, start: n.c.Sim.Now(), done: done}
		n.c.tel.queueAdmit()
	}
	for i := range msgs {
		n.c.Net.Send(msgs[i])
	}
	if acquired {
		n.c.oracleAcquire(lock, n.ID, modes.W, proto.TraceID{})
		w, ok := n.waiters[lock]
		if !ok {
			n.c.fail(fmt.Errorf("cluster: node %d lock %d acquired with no waiter", n.ID, lock))
			return
		}
		delete(n.waiters, lock)
		n.c.Grants++
		n.c.tel.observeGrant(n.c.Sim.Now() - w.start)
		outcome := metrics.OutcomeRemote
		switch {
		case w.recovered:
			outcome = metrics.OutcomeRecovery
		case sync:
			outcome = metrics.OutcomeLocal
		}
		n.c.tel.observeOp(metrics.OpLock, outcome, n.c.Sim.Now()-w.start, w.hops)
		w.done()
	}
}

// Network models the paper's switched LAN: every ordered node pair is an
// independent full-duplex link with randomized per-message latency and
// FIFO delivery (as TCP provides). An optional fault layer (SetFaults)
// perturbs deliveries with drops, duplicates, delay spikes, partitions
// and crash windows while preserving the per-link FIFO contract: a
// recovered frame pushes every later frame on its link behind it, the
// head-of-line blocking a reliable in-order link exhibits.
type Network struct {
	// Metrics counts every message sent, by kind (Figure 7's data).
	Metrics metrics.Messages
	// FaultStats counts injected fault events (zero without a fault plan).
	FaultStats metrics.Faults

	sim      *sim.Sim
	rand     func() time.Duration
	handlers map[proto.NodeID]func(*proto.Message)
	lastAt   map[[2]proto.NodeID]time.Duration
	trace    *trace.Recorder
	faults   *sim.Faults
	tel      *telemetry
}

// NewNetwork creates a network over the simulator with the given latency
// distribution.
func NewNetwork(s *sim.Sim, latency sim.Dist) *Network {
	rng := s.NewRand()
	return &Network{
		sim:      s,
		rand:     func() time.Duration { return latency(rng) },
		handlers: make(map[proto.NodeID]func(*proto.Message)),
		lastAt:   make(map[[2]proto.NodeID]time.Duration),
	}
}

// Register installs the message handler for a node.
func (nw *Network) Register(id proto.NodeID, h func(*proto.Message)) {
	nw.handlers[id] = h
}

// SetFaults installs a fault plan. The plan's random stream derives from
// the simulator, so the whole faulty run replays from the cluster seed.
// Call before traffic starts.
func (nw *Network) SetFaults(plan sim.FaultPlan) {
	nw.faults = sim.NewFaults(plan, nw.sim.NewRand())
}

// Faults returns the installed fault runtime, or nil.
func (nw *Network) Faults() *sim.Faults { return nw.faults }

// Send enqueues a message for delivery after a randomized latency,
// clamped so deliveries on the same ordered link never reorder. Under a
// LoseOnCrash fault plan a frame touching a crashed endpoint is
// destroyed outright: no send is recorded (a loss is), no delivery is
// scheduled, and the link's FIFO clamp is untouched — the frame never
// existed on the wire as far as ordering is concerned.
func (nw *Network) Send(msg proto.Message) {
	nw.Metrics.Count(msg.Kind)
	if nw.tel != nil {
		nw.tel.countSent(msg.Kind)
	}
	var at time.Duration
	if nw.faults != nil {
		out := nw.faults.Apply(int(msg.From), int(msg.To), nw.sim.Now(), nw.rand)
		nw.FaultStats.Drops += uint64(out.Drops)
		nw.FaultStats.Duplicates += uint64(out.Duplicates)
		nw.FaultStats.DelaySpikes += uint64(out.Spikes)
		nw.FaultStats.Deferrals += uint64(out.Deferrals)
		if out.Lost {
			nw.FaultStats.Lost++
			nw.trace.Record(trace.Entry{
				At: nw.sim.Now(), Op: trace.OpLost, Node: msg.From,
				Lock: msg.Lock, Mode: msg.Mode, Kind: msg.Kind, From: msg.From, To: msg.To,
				Trace: msgTrace(&msg), Epoch: msg.Epoch,
			})
			return
		}
		at = out.Deliver
		nw.trace.Record(trace.Entry{
			At: nw.sim.Now(), Op: trace.OpSend, Node: msg.From,
			Lock: msg.Lock, Mode: msg.Mode, Kind: msg.Kind, From: msg.From, To: msg.To,
			Trace: msgTrace(&msg), Epoch: msg.Epoch,
		})
		if nw.trace != nil {
			nw.recordFaults(&msg, out)
		}
	} else {
		at = nw.sim.Now() + nw.rand()
		nw.trace.Record(trace.Entry{
			At: nw.sim.Now(), Op: trace.OpSend, Node: msg.From,
			Lock: msg.Lock, Mode: msg.Mode, Kind: msg.Kind, From: msg.From, To: msg.To,
			Trace: msgTrace(&msg), Epoch: msg.Epoch,
		})
	}
	if nw.tel != nil && msg.Kind == proto.KindToken {
		nw.tel.tokenTransfer(msg.Lock, "out")
	}
	key := [2]proto.NodeID{msg.From, msg.To}
	if last, ok := nw.lastAt[key]; ok && at <= last {
		at = last + time.Nanosecond
	}
	nw.lastAt[key] = at
	h := nw.handlers[msg.To]
	m := msg // copy for the closure
	nw.sim.At(at-nw.sim.Now(), func() {
		if h == nil {
			return
		}
		nw.trace.Record(trace.Entry{
			At: nw.sim.Now(), Op: trace.OpDeliver, Node: m.To,
			Lock: m.Lock, Mode: m.Mode, Kind: m.Kind, From: m.From, To: m.To,
			Trace: msgTrace(&m), Epoch: m.Epoch,
		})
		if nw.tel != nil && m.Kind == proto.KindToken {
			nw.tel.tokenTransfer(m.Lock, "in")
		}
		h(&m)
	})
}

// recordFaults emits one trace entry per injected fault event on a
// message, timestamped at the send (the virtual times of the individual
// retransmissions are internal to the fault model).
func (nw *Network) recordFaults(msg *proto.Message, out sim.Outcome) {
	emit := func(op trace.Op, n int) {
		for i := 0; i < n; i++ {
			nw.trace.Record(trace.Entry{
				At: nw.sim.Now(), Op: op, Node: msg.From,
				Lock: msg.Lock, Mode: msg.Mode, Kind: msg.Kind, From: msg.From, To: msg.To,
				Trace: msgTrace(msg),
			})
		}
	}
	emit(trace.OpDrop, out.Drops)
	emit(trace.OpDup, out.Duplicates)
	emit(trace.OpDefer, out.Deferrals)
}
