package cluster

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// waiting is one outstanding client request: the mode it asked for and
// the completion callback.
type waiting struct {
	mode modes.Mode
	// start is the virtual time the request was issued, for the grant
	// latency histograms.
	start time.Duration
	done  func()
	// hops counts token deliveries observed while the wait was
	// outstanding, and recovered marks a wait that rode through a
	// recovery reseed — the simulator's mirror of the member's waiter
	// fields, classifying grants for the per-operation SLO families.
	hops      int
	recovered bool
}

// Deadlock describes one cycle in the waits-for graph: node Nodes[i]
// waits for lock Locks[i], which is held in a conflicting mode by
// Nodes[(i+1) % len].
type Deadlock struct {
	Nodes []proto.NodeID
	Locks []proto.LockID
}

// String renders the cycle.
func (d Deadlock) String() string {
	var b strings.Builder
	for i, n := range d.Nodes {
		fmt.Fprintf(&b, "node %d waits lock %d held by ", n, d.Locks[i])
	}
	fmt.Fprintf(&b, "node %d", d.Nodes[0])
	return b.String()
}

// DetectDeadlocks analyzes the client-level waits-for graph: an edge
// A→B exists when A waits for a lock that B holds in a conflicting mode.
// It returns every distinct elementary cycle found (each reported once,
// from its smallest node ID).
//
// The protocol itself never deadlocks — its waits are FIFO per lock —
// but clients holding multiple locks can (e.g. two nodes acquiring two
// exclusive locks in opposite orders, the situation the paper's ordered
// acquisition and U modes exist to avoid). A cycle that persists while
// the network is quiet is a genuine client-level deadlock; transient
// cycles while messages are in flight may still resolve.
func (c *Cluster) DetectDeadlocks() []Deadlock {
	// Build edges: waiter → conflicting holders, labelled by lock.
	type edge struct {
		to   proto.NodeID
		lock proto.LockID
	}
	adj := make(map[proto.NodeID][]edge)
	for _, n := range c.Nodes {
		for lock, w := range n.waiters {
			for holder, hm := range c.oracle[lock] {
				if holder != n.ID && !modes.Compatible(hm, w.mode) {
					adj[n.ID] = append(adj[n.ID], edge{to: holder, lock: lock})
				}
			}
		}
	}
	for _, es := range adj {
		sort.Slice(es, func(i, j int) bool {
			if es[i].to != es[j].to {
				return es[i].to < es[j].to
			}
			return es[i].lock < es[j].lock
		})
	}

	// DFS cycle enumeration (graphs here are tiny: one edge per waiting
	// client per conflicting holder).
	var out []Deadlock
	seen := make(map[string]bool)
	starts := make([]proto.NodeID, 0, len(adj))
	for n := range adj {
		starts = append(starts, n)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	var path []proto.NodeID
	var locks []proto.LockID
	onPath := make(map[proto.NodeID]int)
	var dfs func(n proto.NodeID)
	dfs = func(n proto.NodeID) {
		if i, ok := onPath[n]; ok {
			// Found a cycle: path[i:] plus the closing edge.
			cyc := Deadlock{
				Nodes: append([]proto.NodeID(nil), path[i:]...),
				Locks: append([]proto.LockID(nil), locks[i:]...),
			}
			out = appendCycle(out, seen, cyc)
			return
		}
		onPath[n] = len(path)
		for _, e := range adj[n] {
			path = append(path, n)
			locks = append(locks, e.lock)
			dfs(e.to)
			path = path[:len(path)-1]
			locks = locks[:len(locks)-1]
		}
		delete(onPath, n)
	}
	for _, s := range starts {
		dfs(s)
	}
	return out
}

// appendCycle adds cyc if an equivalent rotation has not been reported.
func appendCycle(out []Deadlock, seen map[string]bool, cyc Deadlock) []Deadlock {
	if len(cyc.Nodes) == 0 {
		return out
	}
	// Canonicalize: rotate so the smallest node ID comes first.
	min := 0
	for i, n := range cyc.Nodes {
		if n < cyc.Nodes[min] {
			min = i
		}
	}
	k := len(cyc.Nodes)
	canon := Deadlock{Nodes: make([]proto.NodeID, k), Locks: make([]proto.LockID, k)}
	for i := 0; i < k; i++ {
		canon.Nodes[i] = cyc.Nodes[(min+i)%k]
		canon.Locks[i] = cyc.Locks[(min+i)%k]
	}
	key := fmt.Sprint(canon.Nodes, canon.Locks)
	if seen[key] {
		return out
	}
	seen[key] = true
	return append(out, canon)
}
