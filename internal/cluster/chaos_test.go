package cluster_test

import (
	"strings"
	"testing"
	"time"

	"hierlock/internal/audit"
	"hierlock/internal/cluster"
	"hierlock/internal/metrics"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
	"hierlock/internal/sim"
	"hierlock/internal/trace"
)

// attachAuditor taps the cluster's event stream with the online protocol
// auditor and exports its counters through reg (the acceptance check:
// chaos runs must finish with hierlock_audit_violations_total = 0).
func attachAuditor(rec *trace.Recorder, reg *metrics.Registry) *audit.Auditor {
	a := audit.New(audit.Config{Registry: reg, Root: 0})
	rec.SetTap(a.Record)
	return a
}

// requireCleanAudit fails the test on any audit violation, quoting the
// details the auditor retained.
func requireCleanAudit(t *testing.T, a *audit.Auditor, reg *metrics.Registry) {
	t.Helper()
	if n := a.Violations(); n != 0 {
		rep := a.Snapshot()
		t.Fatalf("auditor flagged %d violations: %+v", n, rep.Violations)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, metrics.MetricAuditViolations+"{") && !strings.HasSuffix(line, " 0") {
			t.Fatalf("nonzero audit metric: %s", line)
		}
	}
}

// chaosPlan is the acceptance scenario: 2% drop plus duplicates and delay
// spikes, one 10-second partition between nodes 1 and 2, and one node
// restart (node 3 down for 3 seconds).
func chaosPlan() *sim.FaultPlan {
	return &sim.FaultPlan{
		DropRate:          0.02,
		DupRate:           0.01,
		SpikeRate:         0.01,
		SpikeDelay:        sim.Fixed(2 * time.Second),
		RetransmitTimeout: 200 * time.Millisecond,
		Partitions: []sim.Partition{
			{A: 1, B: 2, Start: 2 * time.Second, End: 12 * time.Second},
		},
		Crashes: []sim.CrashWindow{
			{Node: 3, Start: 5 * time.Second, End: 8 * time.Second},
		},
	}
}

// chaosMode picks a per-node request mode: exclusive-only protocols always
// get W; the hierarchical protocol cycles through the CORBA modes.
func chaosMode(p cluster.Protocol, node int) modes.Mode {
	if p != cluster.Hierarchical {
		return modes.W
	}
	switch node % 4 {
	case 0:
		return modes.IR
	case 1:
		return modes.R
	case 2:
		return modes.IW
	default:
		return modes.W
	}
}

// runChaos drives a closed-loop workload under the fault plan: each node
// performs `cycles` acquire→hold→release rounds on one lock, pausing
// (rescheduling) while inside its own crash window. It returns the
// cluster and the number of completed grants.
func runChaos(t *testing.T, p cluster.Protocol, nodes, cycles int, seed int64) (*cluster.Cluster, int) {
	t.Helper()
	const lock proto.LockID = 1
	// A tiny ring suffices: the auditor consumes the stream through the
	// tap, which fires before ring admission.
	rec := trace.New(1)
	reg := metrics.NewRegistry()
	auditor := attachAuditor(rec, reg)
	t.Cleanup(func() { requireCleanAudit(t, auditor, reg) })
	c := cluster.New(cluster.Config{
		Protocol: p,
		Nodes:    nodes,
		Locks:    []proto.LockID{lock},
		Seed:     seed,
		Trace:    rec,
		Faults:   chaosPlan(),
	})
	granted := 0
	var step func(node, round int)
	step = func(node, round int) {
		if round >= cycles {
			return
		}
		n := c.Nodes[node]
		if c.NodeDown(n.ID) {
			// The node is down: resume one RTO after restart.
			restart := c.Net.Faults().RestartAt(node, c.Sim.Now())
			c.Sim.At(restart-c.Sim.Now()+200*time.Millisecond, func() { step(node, round) })
			return
		}
		n.Acquire(lock, chaosMode(p, node), func() {
			granted++
			// Hold briefly, release, think, go again.
			c.Sim.At(20*time.Millisecond, func() {
				n.Release(lock)
				c.Sim.At(time.Duration(node+1)*10*time.Millisecond, func() {
					step(node, round+1)
				})
			})
		})
	}
	for i := 0; i < nodes; i++ {
		i := i
		c.Sim.At(time.Duration(i)*5*time.Millisecond, func() { step(i, 0) })
	}
	// Chaos stretches the run (partition heal at 12s, spikes, retransmit
	// delays); give it generous virtual time — it is cheap.
	c.Sim.Run(30 * time.Minute)
	return c, granted
}

func TestChaosAllProtocols(t *testing.T) {
	protocols := []cluster.Protocol{
		cluster.Hierarchical, cluster.Naimi, cluster.Raymond,
		cluster.Suzuki, cluster.Ricart,
	}
	const nodes, cycles = 32, 4
	for _, p := range protocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			c, granted := runChaos(t, p, nodes, cycles, 1234)
			if err := c.Err(); err != nil {
				t.Fatalf("protocol error or oracle violation: %v", err)
			}
			if want := nodes * cycles; granted != want {
				t.Fatalf("granted %d of %d requests (stalled under faults)", granted, want)
			}
			if !c.Quiesced() {
				t.Fatal("cluster did not quiesce")
			}
			if err := c.CheckTokens(); err != nil {
				t.Fatal(err)
			}
			if c.Net.FaultStats.Total() == 0 {
				t.Fatal("fault plan injected nothing — chaos test is vacuous")
			}
		})
	}
}

// TestChaosDeterministic reruns the same seeded chaos scenario and
// requires bit-identical fault counters and message metrics.
func TestChaosDeterministic(t *testing.T) {
	type fingerprint struct {
		faults  metrics.Faults
		byKind  [14]uint64
		granted int
		fired   uint64
	}
	run := func() fingerprint {
		c, granted := runChaos(t, cluster.Hierarchical, 32, 3, 99)
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		return fingerprint{
			faults:  c.Net.FaultStats,
			byKind:  c.Net.Metrics.ByKind,
			granted: granted,
			fired:   c.Sim.Fired(),
		}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("seeded chaos run not reproducible:\n  run 1: %+v\n  run 2: %+v", a, b)
	}
}

// TestChaosDropSweep sweeps drop rates across all protocols; safety and
// token conservation must hold at every rate.
func TestChaosDropSweep(t *testing.T) {
	for _, rate := range []float64{0.01, 0.05, 0.2} {
		for _, p := range []cluster.Protocol{cluster.Hierarchical, cluster.Naimi, cluster.Suzuki} {
			const lock proto.LockID = 1
			c := cluster.New(cluster.Config{
				Protocol: p,
				Nodes:    12,
				Locks:    []proto.LockID{lock},
				Seed:     int64(100 * rate),
				Faults: &sim.FaultPlan{
					DropRate:          rate,
					RetransmitTimeout: 100 * time.Millisecond,
				},
			})
			granted := 0
			for i := 1; i < 12; i++ {
				n := c.Nodes[i]
				c.Sim.At(time.Duration(i)*time.Millisecond, func() {
					n.Acquire(lock, modes.W, func() {
						granted++
						c.Sim.At(10*time.Millisecond, func() { n.Release(lock) })
					})
				})
			}
			c.Sim.Run(10 * time.Minute)
			if err := c.Err(); err != nil {
				t.Fatalf("%v at drop %.0f%%: %v", p, 100*rate, err)
			}
			if granted != 11 {
				t.Fatalf("%v at drop %.0f%%: %d/11 granted", p, 100*rate, granted)
			}
			if err := c.CheckTokens(); err != nil {
				t.Fatalf("%v at drop %.0f%%: %v", p, 100*rate, err)
			}
		}
	}
}

// TestChaosTraceRecordsFaults checks fault events reach the trace and the
// per-link FIFO contract survives injection.
func TestChaosTraceRecordsFaults(t *testing.T) {
	rec := trace.New(1 << 20)
	const lock proto.LockID = 1
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    8,
		Locks:    []proto.LockID{lock},
		Seed:     7,
		Trace:    rec,
		Faults: &sim.FaultPlan{
			DropRate: 0.2, DupRate: 0.2, RetransmitTimeout: 50 * time.Millisecond,
		},
	})
	done := 0
	for i := 1; i < 8; i++ {
		n := c.Nodes[i]
		n.Acquire(lock, modes.W, func() {
			done++
			c.Sim.At(5*time.Millisecond, func() { n.Release(lock) })
		})
	}
	c.Sim.Run(5 * time.Minute)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if done != 7 {
		t.Fatalf("done = %d", done)
	}
	counts := rec.Counts()
	if counts[trace.OpDrop]+counts[trace.OpDup] == 0 {
		t.Fatal("no fault events in trace")
	}
	if v := rec.CheckFIFO(); v != "" {
		t.Fatalf("FIFO violated under faults: %s", v)
	}
	stats := c.Net.FaultStats
	if uint64(counts[trace.OpDrop]) != stats.Drops || uint64(counts[trace.OpDup]) != stats.Duplicates {
		t.Fatalf("trace fault counts (%d drops, %d dups) disagree with metrics (%+v)",
			counts[trace.OpDrop], counts[trace.OpDup], stats)
	}
}

// recoveryCrashPlan kills one node permanently, destroying every frame
// that touches it from the crash on (the true message-loss model): the
// token, the in-flight requests and the node's queue state all die with
// it. A light drop rate rides along so recovery probes contend with an
// imperfect network too.
func recoveryCrashPlan(victim int) *sim.FaultPlan {
	return &sim.FaultPlan{
		LoseOnCrash:       true,
		DropRate:          0.01,
		RetransmitTimeout: 100 * time.Millisecond,
		Crashes: []sim.CrashWindow{
			{Node: victim, Start: 2 * time.Second, End: 1000 * time.Hour},
		},
	}
}

// runRecoveryChaos drives the acceptance scenario for crash recovery:
// the current token holder (a W holder, so necessarily the token node)
// crashes permanently under LoseOnCrash; the survivors' requests —
// issued before the crash, during the regeneration round and after it —
// must all be granted and released. Returns the cluster and completed
// grant count over the seven survivors.
func runRecoveryChaos(t *testing.T, p cluster.Protocol, seed int64) (*cluster.Cluster, int) {
	t.Helper()
	const (
		lock   proto.LockID = 1
		nodes               = 8
		victim              = 3
	)
	rec := trace.New(1)
	reg := metrics.NewRegistry()
	auditor := attachAuditor(rec, reg)
	t.Cleanup(func() { requireCleanAudit(t, auditor, reg) })
	c := cluster.New(cluster.Config{
		Protocol: p,
		Nodes:    nodes,
		Locks:    []proto.LockID{lock},
		Seed:     seed,
		Trace:    rec,
		Faults:   recoveryCrashPlan(victim),
		Recovery: &cluster.RecoveryOptions{
			ConfirmAfter: time.Second,
			ProbeTimeout: 300 * time.Millisecond,
		},
	})
	// The victim takes W — and with it the token — then dies holding it.
	c.Sim.At(100*time.Millisecond, func() {
		c.Nodes[victim].Acquire(lock, modes.W, func() {})
	})
	served := 0
	i := 0
	for id := 0; id < nodes; id++ {
		if id == victim {
			continue
		}
		n := c.Nodes[id]
		// Staggered starts span the whole failure timeline: before the
		// crash is confirmed (the request is lost with the victim), during
		// the fence (the engine records it silently) and after recovery.
		c.Sim.At(2500*time.Millisecond+time.Duration(i)*400*time.Millisecond, func() {
			n.Acquire(lock, chaosMode(p, int(n.ID)), func() {
				served++
				c.Sim.At(20*time.Millisecond, func() { n.Release(lock) })
			})
		})
		i++
	}
	c.Sim.Run(5 * time.Minute)
	return c, served
}

// TestChaosRecoveryTokenHolderCrash is the PR's acceptance test: on the
// seed (no recovery subsystem) this scenario wedges forever — see
// TestChaosTokenHolderCrashHangsWithoutRecovery for the pinned failure
// mode. With recovery enabled the cluster must converge: an epoch-
// stamped regeneration round rebuilds the token, every surviving
// request is granted, token conservation holds at the new epoch and the
// online auditor stays silent.
func TestChaosRecoveryTokenHolderCrash(t *testing.T) {
	for _, p := range []cluster.Protocol{cluster.Hierarchical, cluster.Naimi} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			c, served := runRecoveryChaos(t, p, 4242)
			if err := c.Err(); err != nil {
				t.Fatalf("protocol error or oracle violation: %v", err)
			}
			if served != 7 {
				t.Fatalf("served %d of 7 surviving requests (recovery did not converge)", served)
			}
			if !c.Quiesced() {
				t.Fatal("cluster did not quiesce after recovery")
			}
			if err := c.CheckTokens(); err != nil {
				t.Fatalf("token conservation after recovery: %v", err)
			}
			if c.Net.FaultStats.Lost == 0 {
				t.Fatal("no frames were lost — the crash model did not engage")
			}
			// Node 0 is the lowest survivor, hence the regenerator.
			if rounds := c.Nodes[0].RecoveryManager().Rounds(); rounds == 0 {
				t.Fatal("regenerator completed no rounds")
			}
		})
	}
}

// TestChaosTokenHolderCrashHangsWithoutRecovery pins the failure mode
// this PR exists to fix: the identical scenario without the recovery
// subsystem leaves every surviving request waiting forever on a token
// that died with its holder, and token conservation reports the loss.
func TestChaosTokenHolderCrashHangsWithoutRecovery(t *testing.T) {
	const (
		lock   proto.LockID = 1
		nodes               = 8
		victim              = 3
	)
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    nodes,
		Locks:    []proto.LockID{lock},
		Seed:     4242,
		Faults:   recoveryCrashPlan(victim),
	})
	c.Sim.At(100*time.Millisecond, func() {
		c.Nodes[victim].Acquire(lock, modes.W, func() {})
	})
	served := 0
	for id := 0; id < nodes; id++ {
		if id == victim {
			continue
		}
		n := c.Nodes[id]
		c.Sim.At(3*time.Second, func() {
			n.Acquire(lock, modes.W, func() { served++ })
		})
	}
	c.Sim.Run(5 * time.Minute)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if served != 0 {
		t.Fatalf("%d requests served without a token — impossible", served)
	}
	if c.Quiesced() {
		t.Fatal("cluster quiesced with outstanding waiters")
	}
	if err := c.CheckTokens(); err == nil {
		t.Fatal("CheckTokens did not report the token lost in the crash")
	}
}

// TestChaosRecoveryDeterministic reruns the seeded recovery scenario
// and requires bit-identical outcomes: the regeneration round, the
// modelled failure detector and the loss bookkeeping are all inside the
// deterministic envelope.
func TestChaosRecoveryDeterministic(t *testing.T) {
	type fingerprint struct {
		faults metrics.Faults
		byKind [14]uint64
		served int
		lost   uint64
		fired  uint64
	}
	run := func() fingerprint {
		c, served := runRecoveryChaos(t, cluster.Hierarchical, 77)
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		return fingerprint{
			faults: c.Net.FaultStats,
			byKind: c.Net.Metrics.ByKind,
			served: served,
			lost:   c.LostHolds,
			fired:  c.Sim.Fired(),
		}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("seeded recovery run not reproducible:\n  run 1: %+v\n  run 2: %+v", a, b)
	}
}

// diskLossPlan crashes one node under the true message-loss model and
// restarts it with its disk gone (sim.CrashWindow.LoseDisk): the node
// comes back blank, at epoch 0, and must be caught up by the survivors'
// recovery hints before it can use any lock again.
func diskLossPlan(victim int, down, up time.Duration) *sim.FaultPlan {
	return &sim.FaultPlan{
		LoseOnCrash:       true,
		DropRate:          0.01,
		RetransmitTimeout: 100 * time.Millisecond,
		Crashes: []sim.CrashWindow{
			{Node: victim, Start: down, End: up, LoseDisk: true},
		},
	}
}

// TestChaosDiskLossRestart exercises the crash-with-disk-loss fault:
// the token holder dies permanently enough for the survivors to
// regenerate (window ≫ ConfirmAfter), then restarts blank. The
// survivors' requests must all be served during the outage, and the
// restarted node — fenced as stale epoch-0 traffic and hinted back into
// the recovered world — must be served after it. The trace must record
// the restart with Epoch 0 (the disk-loss signature), and safety
// (auditor, oracle, token conservation) must hold throughout.
func TestChaosDiskLossRestart(t *testing.T) {
	const (
		lock   proto.LockID = 1
		nodes               = 8
		victim              = 3
	)
	rec := trace.New(1 << 16)
	reg := metrics.NewRegistry()
	auditor := attachAuditor(rec, reg)
	t.Cleanup(func() { requireCleanAudit(t, auditor, reg) })
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    nodes,
		Locks:    []proto.LockID{lock},
		Seed:     31337,
		Trace:    rec,
		Faults:   diskLossPlan(victim, 2*time.Second, 20*time.Second),
		Recovery: &cluster.RecoveryOptions{
			ConfirmAfter: time.Second,
			ProbeTimeout: 300 * time.Millisecond,
		},
	})
	// The victim takes W — and with it the token — then dies holding it.
	c.Sim.At(100*time.Millisecond, func() {
		c.Nodes[victim].Acquire(lock, modes.W, func() {})
	})
	served := 0
	i := 0
	for id := 0; id < nodes; id++ {
		if id == victim {
			continue
		}
		n := c.Nodes[id]
		c.Sim.At(2500*time.Millisecond+time.Duration(i)*400*time.Millisecond, func() {
			n.Acquire(lock, chaosMode(cluster.Hierarchical, int(n.ID)), func() {
				served++
				c.Sim.At(20*time.Millisecond, func() { n.Release(lock) })
			})
		})
		i++
	}
	victimServed := false
	c.Sim.At(30*time.Second, func() {
		n := c.Nodes[victim]
		n.Acquire(lock, modes.W, func() {
			victimServed = true
			c.Sim.At(20*time.Millisecond, func() { n.Release(lock) })
		})
	})
	c.Sim.Run(5 * time.Minute)
	if err := c.Err(); err != nil {
		t.Fatalf("protocol error or oracle violation: %v", err)
	}
	if served != 7 {
		t.Fatalf("served %d of 7 surviving requests", served)
	}
	if !victimServed {
		t.Fatal("restarted disk-loss node was never served — hint catch-up failed")
	}
	if !c.Quiesced() {
		t.Fatal("cluster did not quiesce")
	}
	if err := c.CheckTokens(); err != nil {
		t.Fatalf("token conservation: %v", err)
	}
	restarts := rec.Filter(func(e trace.Entry) bool { return e.Op == trace.OpRestart })
	if len(restarts) != 1 {
		t.Fatalf("trace recorded %d restarts, want 1", len(restarts))
	}
	if r := restarts[0]; r.Node != victim || r.Epoch != 0 {
		t.Fatalf("restart entry = %+v, want node %d at epoch 0 (disk lost)", r, victim)
	}
	if e := c.Nodes[victim].HierEngine(lock).Epoch(); e == 0 {
		t.Fatal("restarted node still at epoch 0 — never caught up to the recovered world")
	}
}

// TestChaosDiskKeptRestartRecordsEpoch pins the other restart fate: a
// node that crashes after a regeneration round and restarts with its
// disk intact reports the highest epoch its surviving state remembers,
// distinguishing it in the trace from a disk-loss (epoch 0) restart.
func TestChaosDiskKeptRestartRecordsEpoch(t *testing.T) {
	const (
		lock   proto.LockID = 1
		nodes               = 8
		first               = 3 // crashes permanently, forcing a round
		second              = 5 // crashes after the round, disk kept
	)
	rec := trace.New(1 << 16)
	reg := metrics.NewRegistry()
	auditor := attachAuditor(rec, reg)
	t.Cleanup(func() { requireCleanAudit(t, auditor, reg) })
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    nodes,
		Locks:    []proto.LockID{lock},
		Seed:     4711,
		Trace:    rec,
		Faults: &sim.FaultPlan{
			LoseOnCrash:       true,
			RetransmitTimeout: 100 * time.Millisecond,
			Crashes: []sim.CrashWindow{
				{Node: first, Start: 2 * time.Second, End: 1000 * time.Hour},
				{Node: second, Start: 10 * time.Second, End: 14 * time.Second},
			},
		},
		Recovery: &cluster.RecoveryOptions{
			ConfirmAfter: time.Second,
			ProbeTimeout: 300 * time.Millisecond,
		},
	})
	c.Sim.At(100*time.Millisecond, func() {
		c.Nodes[first].Acquire(lock, modes.W, func() {})
	})
	// The second victim participates in the regeneration round (it is
	// alive at confirmation time ~3s) and acquires afterwards, so its
	// engine carries the round's epoch when it crashes at 10s.
	served := 0
	n := c.Nodes[second]
	c.Sim.At(5*time.Second, func() {
		n.Acquire(lock, modes.W, func() {
			served++
			c.Sim.At(20*time.Millisecond, func() { n.Release(lock) })
		})
	})
	c.Sim.Run(5 * time.Minute)
	if err := c.Err(); err != nil {
		t.Fatalf("protocol error or oracle violation: %v", err)
	}
	if served != 1 {
		t.Fatalf("served %d of 1 request", served)
	}
	restarts := rec.Filter(func(e trace.Entry) bool { return e.Op == trace.OpRestart })
	if len(restarts) != 1 {
		t.Fatalf("trace recorded %d restarts, want 1 (node %d; node %d never restarts)",
			len(restarts), second, first)
	}
	if r := restarts[0]; r.Node != second || r.Epoch == 0 {
		t.Fatalf("restart entry = %+v, want node %d at the round's epoch (> 0)", r, second)
	}
}
