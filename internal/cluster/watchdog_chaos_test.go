package cluster_test

import (
	"testing"
	"time"

	"hierlock/internal/cluster"
	"hierlock/internal/metrics"
	"hierlock/internal/modes"
	"hierlock/internal/profile"
	"hierlock/internal/proto"
	"hierlock/internal/sim"
	"hierlock/internal/trace"
	"hierlock/internal/watchdog"
)

// scheduleTicks drives a watchdog runner from the virtual clock: one
// Tick per second of simulated time for n seconds, scheduled up front
// so the run stays bounded and deterministic.
func scheduleTicks(c *cluster.Cluster, wd *watchdog.Runner, n int, onTick func(i int)) {
	for i := 1; i <= n; i++ {
		i := i
		c.Sim.At(time.Duration(i)*time.Second, func() {
			if onTick != nil {
				onTick(i)
			}
			wd.Tick()
		})
	}
}

// captureOn wires the runner's transition hook to capture one goroutine
// profile whenever health worsens past the given floor — the sim mirror
// of lockd's stalled→blackbox-dump+profile wiring. Returns the profiler
// (rate limit one hour, so any repeat inside the test is suppressed).
func captureOn(t *testing.T, wd *watchdog.Runner, floor watchdog.State) *profile.Profiler {
	t.Helper()
	p, err := profile.New(t.TempDir(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	wd.OnTransition(func(from, to watchdog.State, h watchdog.Health) {
		if to >= floor && to > from {
			if _, err := p.Capture("goroutine"); err != nil {
				t.Errorf("capture on transition to %s: %v", to, err)
			}
		}
	})
	return p
}

func hasReason(h watchdog.Health, code string) bool {
	for _, r := range h.Reasons {
		if r.Code == code {
			return true
		}
	}
	return false
}

// TestWatchdogChaosWedgedRecovery wedges a regeneration round on
// purpose: the token holder and enough peers crash permanently that the
// surviving minority can never meet the majority quorum, so the
// regenerator's round stays in flight forever. The watchdog must walk
// healthy → degraded → stalled exactly once, flag the wedged round (and
// the starved waiters), and fire exactly one rate-limited profile
// capture on the transition to stalled.
func TestWatchdogChaosWedgedRecovery(t *testing.T) {
	const (
		lock   proto.LockID = 1
		nodes               = 8
		victim              = 3
	)
	rec := trace.New(1)
	reg := metrics.NewRegistry()
	auditor := attachAuditor(rec, reg)
	t.Cleanup(func() { requireCleanAudit(t, auditor, reg) })
	// The victim and nodes 4..7 die at 2s and never return: 3 survivors
	// against a majority quorum of 5.
	plan := &sim.FaultPlan{
		LoseOnCrash:       true,
		RetransmitTimeout: 100 * time.Millisecond,
		Crashes: []sim.CrashWindow{
			{Node: victim, Start: 2 * time.Second, End: 1000 * time.Hour},
			{Node: 4, Start: 2 * time.Second, End: 1000 * time.Hour},
			{Node: 5, Start: 2 * time.Second, End: 1000 * time.Hour},
			{Node: 6, Start: 2 * time.Second, End: 1000 * time.Hour},
			{Node: 7, Start: 2 * time.Second, End: 1000 * time.Hour},
		},
	}
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    nodes,
		Locks:    []proto.LockID{lock},
		Seed:     777,
		Trace:    rec,
		Faults:   plan,
		Recovery: &cluster.RecoveryOptions{
			ConfirmAfter: time.Second,
			ProbeTimeout: 300 * time.Millisecond,
			// Quorum 0 = majority (5 of 8): unreachable for 3 survivors.
		},
	})
	wd := watchdog.NewRunner(watchdog.Config{
		PendingGrace: 5 * time.Second,
		StalledAfter: 30 * time.Second,
		RoundGrace:   10 * time.Second,
	}, time.Second, c.HealthSample)
	prof := captureOn(t, wd, watchdog.Stalled)

	// The victim takes W (and the token) and dies holding it; the
	// survivors' requests then wait on a round that can never commit.
	c.Sim.At(100*time.Millisecond, func() {
		c.Nodes[victim].Acquire(lock, modes.W, func() {})
	})
	for _, id := range []int{0, 1, 2} {
		n := c.Nodes[id]
		c.Sim.At(3*time.Second, func() {
			n.Acquire(lock, modes.W, func() {
				t.Errorf("node %d granted without a quorum — the wedge did not hold", n.ID)
			})
		})
	}
	scheduleTicks(c, wd, 55, nil)
	c.Sim.Run(time.Minute)

	if err := c.Err(); err != nil {
		t.Fatalf("protocol error or oracle violation: %v", err)
	}
	h := wd.Current()
	if h.State != watchdog.Stalled {
		t.Fatalf("final health %s, want stalled (reasons %+v)", h.Status, h.Reasons)
	}
	if !hasReason(h, watchdog.ReasonRecoveryWedged) {
		t.Fatalf("stalled without %s: %+v", watchdog.ReasonRecoveryWedged, h.Reasons)
	}
	tr := wd.Transitions()
	if tr[watchdog.Stalled] != 1 {
		t.Fatalf("entered stalled %d times, want exactly 1", tr[watchdog.Stalled])
	}
	if tr[watchdog.Degraded] == 0 {
		t.Fatal("never degraded before stalling — escalation skipped a stage")
	}
	st := prof.Stats()
	if st.Captures["goroutine"] != 1 {
		t.Fatalf("stall fired %d captures, want exactly 1 (suppressed %d)",
			st.Captures["goroutine"], st.Suppressed)
	}
	if st.LastErr != nil {
		t.Fatalf("capture error: %v", st.LastErr)
	}
	// The sample itself must pin the wedge: one round in flight, three
	// starved waiters.
	s := c.HealthSample()
	if s.RoundsInFlight == 0 {
		t.Fatal("no recovery round in flight at the end of the run")
	}
	if s.Waiters != 3 {
		t.Fatalf("%d waiters at the end of the run, want 3", s.Waiters)
	}
}

// TestWatchdogChaosFsyncStalls overlays an injected fsync-stall
// schedule (the simulator models no disk) on a healthy workload: two
// stall bursts, each long enough to trip the streak detector. Health
// must flip to degraded for each burst and recover between them; the
// profile capture fires on the first flip and is rate-limited away on
// the second, so the incident costs exactly one capture.
func TestWatchdogChaosFsyncStalls(t *testing.T) {
	const lock proto.LockID = 1
	rec := trace.New(1)
	reg := metrics.NewRegistry()
	auditor := attachAuditor(rec, reg)
	t.Cleanup(func() { requireCleanAudit(t, auditor, reg) })
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    4,
		Locks:    []proto.LockID{lock},
		Seed:     42,
		Trace:    rec,
	})
	// Injected stall schedule: bursts at ticks [10,15] and [25,30],
	// each ≥ 3 consecutive evaluations with fresh stalls.
	var stalls uint64
	sample := func() watchdog.Sample {
		s := c.HealthSample()
		s.FsyncStalls = stalls
		return s
	}
	wd := watchdog.NewRunner(watchdog.Config{FsyncStreak: 3}, time.Second, sample)
	prof := captureOn(t, wd, watchdog.Degraded)

	// A light closed-loop workload keeps grants flowing so the only
	// health signal is the injected stalls.
	var step func(node int)
	step = func(node int) {
		n := c.Nodes[node]
		n.Acquire(lock, modes.W, func() {
			c.Sim.At(10*time.Millisecond, func() {
				n.Release(lock)
				c.Sim.At(50*time.Millisecond, func() { step(node) })
			})
		})
	}
	for i := 0; i < 4; i++ {
		i := i
		c.Sim.At(time.Duration(i)*25*time.Millisecond, func() { step(i) })
	}
	scheduleTicks(c, wd, 35, func(i int) {
		if (i >= 10 && i <= 15) || (i >= 25 && i <= 30) {
			stalls++
		}
	})
	c.Sim.Run(36 * time.Second)

	if err := c.Err(); err != nil {
		t.Fatalf("protocol error or oracle violation: %v", err)
	}
	tr := wd.Transitions()
	if tr[watchdog.Degraded] != 2 {
		t.Fatalf("entered degraded %d times, want exactly 2 (one per burst)", tr[watchdog.Degraded])
	}
	if tr[watchdog.Healthy] != 2 {
		t.Fatalf("recovered to healthy %d times, want exactly 2", tr[watchdog.Healthy])
	}
	if tr[watchdog.Stalled] != 0 {
		t.Fatalf("entered stalled %d times, want 0 — fsync stalls alone never stall", tr[watchdog.Stalled])
	}
	if h := wd.Current(); h.State != watchdog.Healthy {
		t.Fatalf("final health %s, want healthy: %+v", h.Status, h.Reasons)
	}
	st := prof.Stats()
	if st.Captures["goroutine"] != 1 {
		t.Fatalf("bursts fired %d captures, want exactly 1 (the second is rate-limited)",
			st.Captures["goroutine"])
	}
	if st.Suppressed != 1 {
		t.Fatalf("rate limit suppressed %d captures, want exactly 1", st.Suppressed)
	}
}

// TestWatchdogChaosHealthyNoFalsePositives runs a lossy-but-live
// workload — drops, duplicates, delay spikes, no partitions or crashes
// — under a ticking watchdog. The cluster absorbs this chaos within the
// grace thresholds, so any transition away from healthy is a false
// positive and fails the run.
func TestWatchdogChaosHealthyNoFalsePositives(t *testing.T) {
	const lock proto.LockID = 1
	rec := trace.New(1)
	reg := metrics.NewRegistry()
	auditor := attachAuditor(rec, reg)
	t.Cleanup(func() { requireCleanAudit(t, auditor, reg) })
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    8,
		Locks:    []proto.LockID{lock},
		Seed:     1234,
		Trace:    rec,
		Faults: &sim.FaultPlan{
			DropRate:          0.02,
			DupRate:           0.01,
			SpikeRate:         0.01,
			SpikeDelay:        sim.Fixed(time.Second),
			RetransmitTimeout: 200 * time.Millisecond,
		},
	})
	wd := watchdog.NewRunner(watchdog.Config{}, time.Second, c.HealthSample)
	wd.OnTransition(func(from, to watchdog.State, h watchdog.Health) {
		t.Errorf("false positive: health %s -> %s: %+v", from, to, h.Reasons)
	})

	granted := 0
	var step func(node, round int)
	step = func(node, round int) {
		if round >= 4 {
			return
		}
		n := c.Nodes[node]
		n.Acquire(lock, chaosMode(cluster.Hierarchical, node), func() {
			granted++
			c.Sim.At(20*time.Millisecond, func() {
				n.Release(lock)
				c.Sim.At(time.Duration(node+1)*10*time.Millisecond, func() {
					step(node, round+1)
				})
			})
		})
	}
	for i := 0; i < 8; i++ {
		i := i
		c.Sim.At(time.Duration(i)*5*time.Millisecond, func() { step(i, 0) })
	}
	scheduleTicks(c, wd, 60, nil)
	c.Sim.Run(2 * time.Minute)

	if err := c.Err(); err != nil {
		t.Fatalf("protocol error or oracle violation: %v", err)
	}
	if want := 8 * 4; granted != want {
		t.Fatalf("granted %d of %d requests (workload stalled under faults)", granted, want)
	}
	if c.Net.FaultStats.Total() == 0 {
		t.Fatal("fault plan injected nothing — the healthy-chaos run is vacuous")
	}
	tr := wd.Transitions()
	for _, s := range watchdog.States {
		if tr[s] != 0 {
			t.Fatalf("watchdog made %d transitions into %s during healthy chaos", tr[s], s)
		}
	}
	if h := wd.Current(); h.State != watchdog.Healthy {
		t.Fatalf("final health %s, want healthy: %+v", h.Status, h.Reasons)
	}
}

// TestWatchdogChaosDeterministic reruns the wedged-recovery scenario's
// fingerprint: the watchdog verdict sequence is a pure function of the
// seeded run, so its transition counts must be bit-identical.
func TestWatchdogChaosDeterministic(t *testing.T) {
	run := func() (map[watchdog.State]uint64, string) {
		const lock proto.LockID = 1
		c := cluster.New(cluster.Config{
			Protocol: cluster.Hierarchical,
			Nodes:    8,
			Locks:    []proto.LockID{lock},
			Seed:     777,
			Faults: &sim.FaultPlan{
				LoseOnCrash:       true,
				RetransmitTimeout: 100 * time.Millisecond,
				Crashes: []sim.CrashWindow{
					{Node: 3, Start: 2 * time.Second, End: 1000 * time.Hour},
					{Node: 4, Start: 2 * time.Second, End: 1000 * time.Hour},
					{Node: 5, Start: 2 * time.Second, End: 1000 * time.Hour},
					{Node: 6, Start: 2 * time.Second, End: 1000 * time.Hour},
					{Node: 7, Start: 2 * time.Second, End: 1000 * time.Hour},
				},
			},
			Recovery: &cluster.RecoveryOptions{
				ConfirmAfter: time.Second,
				ProbeTimeout: 300 * time.Millisecond,
			},
		})
		wd := watchdog.NewRunner(watchdog.Config{}, time.Second, c.HealthSample)
		c.Sim.At(100*time.Millisecond, func() {
			c.Nodes[3].Acquire(lock, modes.W, func() {})
		})
		for _, id := range []int{0, 1, 2} {
			n := c.Nodes[id]
			c.Sim.At(3*time.Second, func() { n.Acquire(lock, modes.W, func() {}) })
		}
		scheduleTicks(c, wd, 55, nil)
		c.Sim.Run(time.Minute)
		return wd.Transitions(), wd.Current().Status
	}
	tr1, st1 := run()
	tr2, st2 := run()
	if st1 != st2 {
		t.Fatalf("final states differ across identical seeded runs: %s vs %s", st1, st2)
	}
	for _, s := range watchdog.States {
		if tr1[s] != tr2[s] {
			t.Fatalf("transition counts into %s differ: %d vs %d", s, tr1[s], tr2[s])
		}
	}
}
