package cluster_test

import (
	"fmt"
	"testing"
	"time"

	"hierlock/internal/cluster"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
	"hierlock/internal/sim"
)

func TestHierarchicalBasicFlow(t *testing.T) {
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    4,
		Locks:    []proto.LockID{1},
		Seed:     1,
	})
	acquired := make([]bool, 4)
	for i := 1; i < 4; i++ {
		i := i
		c.Nodes[i].Acquire(1, modes.IR, func() { acquired[i] = true })
	}
	c.Sim.Run(5 * time.Second)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if !acquired[i] {
			t.Fatalf("node %d never acquired", i)
		}
	}
	// All three hold IR concurrently.
	if got := len(c.HoldersOf(1)); got != 3 {
		t.Fatalf("holders = %d, want 3", got)
	}
	for i := 1; i < 4; i++ {
		c.Nodes[i].Release(1)
	}
	c.Sim.Run(10 * time.Second)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if !c.Quiesced() {
		t.Fatal("cluster did not quiesce")
	}
}

func TestWriterSerializesReaders(t *testing.T) {
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    3,
		Locks:    []proto.LockID{7},
		Seed:     2,
	})
	var order []string
	c.Nodes[1].Acquire(7, modes.W, func() {
		order = append(order, "w")
		// Hold for one virtual second, then release.
		c.Sim.At(time.Second, func() { c.Nodes[1].Release(7) })
	})
	c.Sim.Run(500 * time.Millisecond)
	c.Nodes[2].Acquire(7, modes.R, func() { order = append(order, "r") })
	c.Sim.Run(20 * time.Second)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "w" || order[1] != "r" {
		t.Fatalf("order = %v", order)
	}
}

func TestNaimiBasicFlow(t *testing.T) {
	c := cluster.New(cluster.Config{
		Protocol: cluster.Naimi,
		Nodes:    5,
		Locks:    []proto.LockID{1, 2},
		Seed:     3,
	})
	// All five contend on lock 1; they must serialize.
	inCS := 0
	maxCS := 0
	var next func(i int)
	next = func(i int) {
		c.Nodes[i].Acquire(1, modes.W, func() {
			inCS++
			if inCS > maxCS {
				maxCS = inCS
			}
			c.Sim.At(10*time.Millisecond, func() {
				inCS--
				c.Nodes[i].Release(1)
			})
		})
	}
	for i := 0; i < 5; i++ {
		next(i)
	}
	c.Sim.Run(time.Minute)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if maxCS != 1 {
		t.Fatalf("max concurrent CS = %d, want 1", maxCS)
	}
	if !c.Quiesced() {
		t.Fatal("not quiesced")
	}
	// Lock 2 is independent: acquiring it is immediate at node 0.
	ok := false
	c.Nodes[0].Acquire(2, modes.W, func() { ok = true })
	c.Sim.Run(2 * time.Minute)
	if !ok {
		t.Fatal("independent lock not acquired")
	}
	c.Nodes[0].Release(2)
}

func TestOracleCatchesConflict(t *testing.T) {
	// Drive the oracle directly through an artificial double-acquire on
	// two different clusters' nodes sharing the oracle is impossible from
	// outside, so instead verify the error surface: overlapping client
	// requests on one lock are rejected.
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    2,
		Locks:    []proto.LockID{1},
		Seed:     4,
	})
	c.Nodes[1].Acquire(1, modes.W, func() {})
	c.Nodes[1].Acquire(1, modes.R, func() {}) // overlapping: engine rejects
	c.Sim.Run(5 * time.Second)
	if c.Err() == nil {
		t.Fatal("overlapping requests must surface an error")
	}
}

func TestMessageCountsAndFIFO(t *testing.T) {
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    2,
		Locks:    []proto.LockID{1},
		Latency:  sim.UniformAround(150 * time.Millisecond),
		Seed:     5,
	})
	done := false
	c.Nodes[1].Acquire(1, modes.W, func() { done = true })
	c.Sim.Run(5 * time.Second)
	if !done || c.Err() != nil {
		t.Fatalf("done=%v err=%v", done, c.Err())
	}
	m := &c.Net.Metrics
	if m.ByKind[proto.KindRequest] != 1 || m.ByKind[proto.KindToken] != 1 {
		t.Fatalf("counts: %v", m.ByKind)
	}
	if c.Requests != 1 {
		t.Fatalf("requests = %d", c.Requests)
	}
}

func TestPerLinkFIFO(t *testing.T) {
	s := sim.New(9)
	// A latency distribution that swings wildly would reorder messages
	// without the FIFO clamp.
	nw := cluster.NewNetwork(s, sim.Uniform(time.Millisecond, time.Second))
	var got []int
	nw.Register(1, func(m *proto.Message) { got = append(got, int(m.TS)) })
	for i := 0; i < 50; i++ {
		nw.Send(proto.Message{Kind: proto.KindRequest, From: 0, To: 1, TS: proto.Timestamp(i)})
	}
	s.Run(time.Hour)
	if len(got) != 50 {
		t.Fatalf("delivered %d/50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("per-link FIFO violated: %v", got)
		}
	}
}

func TestUpgradeThroughCluster(t *testing.T) {
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    3,
		Locks:    []proto.LockID{1},
		Seed:     6,
	})
	stage := ""
	c.Nodes[1].Acquire(1, modes.U, func() {
		stage = "read"
		c.Sim.At(100*time.Millisecond, func() {
			c.Nodes[1].Upgrade(1, func() {
				stage = "write"
				c.Nodes[1].Release(1)
			})
		})
	})
	c.Sim.Run(30 * time.Second)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if stage != "write" {
		t.Fatalf("stage = %q", stage)
	}
	if !c.Quiesced() {
		t.Fatal("not quiesced")
	}
}

func TestManyNodesManyLocksStress(t *testing.T) {
	locks := []proto.LockID{1, 2, 3, 4}
	for _, protocol := range []cluster.Protocol{cluster.Hierarchical, cluster.Naimi} {
		protocol := protocol
		t.Run(protocol.String(), func(t *testing.T) {
			c := cluster.New(cluster.Config{
				Protocol: protocol,
				Nodes:    16,
				Locks:    locks,
				Seed:     7,
			})
			rng := c.Sim.NewRand()
			completed := 0
			var loop func(i int)
			loop = func(i int) {
				lock := locks[rng.Intn(len(locks))]
				m := modes.All[rng.Intn(5)]
				c.Nodes[i].Acquire(lock, m, func() {
					c.Sim.At(time.Duration(rng.Intn(20))*time.Millisecond, func() {
						c.Nodes[i].Release(lock)
						completed++
						c.Sim.At(time.Duration(rng.Intn(100))*time.Millisecond, func() { loop(i) })
					})
				})
			}
			for i := 0; i < 16; i++ {
				loop(i)
			}
			c.Sim.Run(2 * time.Minute)
			if err := c.Err(); err != nil {
				t.Fatal(err)
			}
			if completed < 16*10 {
				t.Fatalf("only %d operations completed", completed)
			}
		})
	}
}

func TestProtocolString(t *testing.T) {
	if cluster.Hierarchical.String() != "hierarchical" || cluster.Naimi.String() != "naimi" {
		t.Fatal("protocol names")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() string {
		c := cluster.New(cluster.Config{
			Protocol: cluster.Hierarchical,
			Nodes:    8,
			Locks:    []proto.LockID{1},
			Seed:     42,
		})
		rng := c.Sim.NewRand()
		var loop func(i int)
		count := 0
		loop = func(i int) {
			c.Nodes[i].Acquire(1, modes.All[rng.Intn(5)], func() {
				count++
				c.Sim.At(time.Duration(rng.Intn(30))*time.Millisecond, func() {
					c.Nodes[i].Release(1)
					c.Sim.At(time.Duration(rng.Intn(200))*time.Millisecond, func() { loop(i) })
				})
			})
		}
		for i := 0; i < 8; i++ {
			loop(i)
		}
		c.Sim.Run(30 * time.Second)
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%d/%v/%d", count, c.Net.Metrics.ByKind, c.Requests)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
}

// TestBaselineProtocolsMutualExclusion runs the same serialization check
// against each exclusive baseline (Naimi, Raymond, Suzuki–Kasami).
func TestBaselineProtocolsMutualExclusion(t *testing.T) {
	for _, protocol := range []cluster.Protocol{cluster.Naimi, cluster.Raymond, cluster.Suzuki, cluster.Ricart} {
		protocol := protocol
		t.Run(protocol.String(), func(t *testing.T) {
			c := cluster.New(cluster.Config{
				Protocol: protocol,
				Nodes:    8,
				Locks:    []proto.LockID{1},
				Seed:     61,
			})
			inCS, maxCS, completed := 0, 0, 0
			var op func(i int)
			op = func(i int) {
				c.Nodes[i].Acquire(1, modes.W, func() {
					inCS++
					if inCS > maxCS {
						maxCS = inCS
					}
					c.Sim.At(5*time.Millisecond, func() {
						inCS--
						c.Nodes[i].Release(1)
						completed++
						if completed < 40 {
							c.Sim.At(20*time.Millisecond, func() { op(i) })
						}
					})
				})
			}
			for i := 0; i < 8; i++ {
				op(i)
			}
			c.Sim.Run(5 * time.Minute)
			if err := c.Err(); err != nil {
				t.Fatal(err)
			}
			if maxCS != 1 {
				t.Fatalf("max concurrent CS = %d", maxCS)
			}
			if completed < 40 {
				t.Fatalf("completed = %d", completed)
			}
		})
	}
}

// TestSuzukiBroadcastScales verifies the Θ(n) message behavior that the
// paper's related work attributes to broadcast protocols.
func TestSuzukiBroadcastScales(t *testing.T) {
	per := map[int]float64{}
	for _, n := range []int{5, 20} {
		c := cluster.New(cluster.Config{
			Protocol: cluster.Suzuki,
			Nodes:    n,
			Locks:    []proto.LockID{1},
			Seed:     62,
		})
		done := 0
		for i := 1; i < n; i++ {
			i := i
			c.Nodes[i].Acquire(1, modes.W, func() {
				c.Sim.At(time.Millisecond, func() {
					c.Nodes[i].Release(1)
					done++
				})
			})
		}
		c.Sim.Run(5 * time.Minute)
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		if done != n-1 {
			t.Fatalf("done = %d", done)
		}
		per[n] = float64(c.Net.Metrics.Total()) / float64(n-1)
	}
	// Messages per request grow linearly with n: at 20 nodes a request
	// costs roughly 4x what it does at 5 nodes.
	if per[20] < per[5]*2.5 {
		t.Fatalf("broadcast cost not scaling with n: %v", per)
	}
}

func TestNodeAccessorsAndErrors(t *testing.T) {
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    2,
		Locks:    []proto.LockID{1},
		Seed:     71,
	})
	n := c.Nodes[0]
	if n.HierEngine(1) == nil || n.NaimiEngine(1) != nil {
		t.Fatal("engine accessors")
	}
	if n.Held(1) != modes.None || n.Held(99) != modes.None {
		t.Fatal("held accessor")
	}
	done := false
	n.Acquire(1, modes.R, func() { done = true })
	c.Sim.Run(time.Second)
	if !done || n.Held(1) != modes.R {
		t.Fatalf("held = %v", n.Held(1))
	}
	// Upgrade on a lock held in R fails through the cluster error surface.
	n.Upgrade(1, func() {})
	if c.Err() == nil {
		t.Fatal("upgrade from R must surface an error")
	}

	// Naimi cluster accessors and Held.
	cn := cluster.New(cluster.Config{
		Protocol: cluster.Naimi,
		Nodes:    2,
		Locks:    []proto.LockID{1},
		Seed:     72,
	})
	m := cn.Nodes[0]
	if m.NaimiEngine(1) == nil || m.HierEngine(1) != nil {
		t.Fatal("naimi accessors")
	}
	ok := false
	m.Acquire(1, modes.W, func() { ok = true })
	cn.Sim.Run(time.Second)
	if !ok || m.Held(1) != modes.W {
		t.Fatalf("naimi held = %v", m.Held(1))
	}
	m.Release(1)
	// Upgrade is hierarchical-only.
	m.Upgrade(1, func() {})
	if cn.Err() == nil {
		t.Fatal("naimi upgrade must surface an error")
	}
}

func TestUnknownLockCreatedLazily(t *testing.T) {
	// Hierarchical engines are created lazily, so a lock the configuration
	// never named works like any other (mirroring the live member runtime,
	// where clients name arbitrary resources).
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    1,
		Locks:    []proto.LockID{1},
		Seed:     73,
	})
	done := false
	c.Nodes[0].Acquire(42, modes.R, func() { done = true })
	c.Sim.Run(time.Second)
	if err := c.Err(); err != nil {
		t.Fatalf("lazy lock acquire failed: %v", err)
	}
	if !done {
		t.Fatal("lazy lock never granted")
	}
	c.Nodes[0].Release(42)
	if err := c.Err(); err != nil {
		t.Fatalf("lazy lock release failed: %v", err)
	}

	// Baseline protocols keep eager per-config engines: an unknown lock is
	// still a configuration error there.
	cn := cluster.New(cluster.Config{
		Protocol: cluster.Naimi,
		Nodes:    1,
		Locks:    []proto.LockID{1},
		Seed:     74,
	})
	cn.Nodes[0].Acquire(42, modes.W, func() {})
	if cn.Err() == nil {
		t.Fatal("unknown baseline lock must surface an error")
	}
}
