package cluster_test

import (
	"testing"
	"time"

	"hierlock"
	"hierlock/internal/cluster"
	"hierlock/internal/metrics"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
	"hierlock/internal/sim"
	"hierlock/internal/trace"
)

// TestLeaseReapsDeadClients is the simulator mirror of the lockd
// session tier's acceptance scenario: clients acquire W under TTL
// leases, some die mid-hold (no release, no renewal), and the lease
// reaper must force-release their locks so the survivors keep making
// progress — under light network chaos, with the protocol auditor
// verifying zero safety violations and every fencing token on the hot
// lock strictly increasing across the reaps.
func TestLeaseReapsDeadClients(t *testing.T) {
	const (
		lock    proto.LockID = 1
		nodes                = 12
		cycles               = 3
		ttl                  = 500 * time.Millisecond
		nDoomed              = 3 // nodes 0..2 die mid-hold on their first grant
	)
	rec := trace.New(1)
	reg := metrics.NewRegistry()
	auditor := attachAuditor(rec, reg)
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    nodes,
		Locks:    []proto.LockID{lock},
		Seed:     11,
		Trace:    rec,
		Registry: reg,
		Faults: &sim.FaultPlan{
			DropRate:          0.01,
			DupRate:           0.01,
			RetransmitTimeout: 200 * time.Millisecond,
		},
	})

	var fences []hierlock.FenceToken
	grants := 0
	doomedGrants := 0
	survivorDone := 0
	for i := 0; i < nodes; i++ {
		i := i
		lease := c.Nodes[i].OpenLease("client", ttl)
		doomed := i < nDoomed
		finished := false
		if !doomed {
			// A live client heartbeats even while blocked in a queue —
			// only the doomed ones go silent.
			var beat func()
			beat = func() {
				if finished {
					return
				}
				lease.Renew()
				c.Sim.AtDaemon(ttl/2, beat)
			}
			c.Sim.AtDaemon(ttl/2, beat)
		}
		var step func(round int)
		step = func(round int) {
			if round >= cycles {
				finished = true
				survivorDone++
				lease.Close()
				return
			}
			lease.Acquire(lock, modes.W, func(f hierlock.FenceToken) {
				grants++
				fences = append(fences, f)
				if doomed {
					// The client process dies holding W: no release, no
					// further heartbeats. Only the lease reaper can free
					// the lock for everyone queued behind it.
					doomedGrants++
					return
				}
				c.Sim.At(20*time.Millisecond, func() {
					lease.Release(lock)
					c.Sim.At(time.Duration(i+1)*5*time.Millisecond, func() { step(round + 1) })
				})
			})
		}
		c.Sim.At(time.Duration(i)*3*time.Millisecond, func() { step(0) })
	}

	c.Sim.Run(10 * time.Minute)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}

	survivors := nodes - nDoomed
	if survivorDone != survivors {
		t.Fatalf("survivors completed = %d, want %d", survivorDone, survivors)
	}
	// Every survivor finished all its cycles; doomed clients got at
	// least the first grant (a doomed lease can also expire while still
	// queued — its late grant is then released on arrival, uncounted,
	// exactly the live tier's AddHeld-after-reap path).
	if want := survivors * cycles; grants != want+doomedGrants {
		t.Fatalf("grants = %d, want %d survivor + %d doomed", grants, want, doomedGrants)
	}
	if doomedGrants < 1 || doomedGrants > nDoomed {
		t.Fatalf("doomed grants = %d, want 1..%d", doomedGrants, nDoomed)
	}
	// W is exclusive: grants form one causal chain, so the fences minted
	// along it must be strictly increasing.
	for i := 1; i < len(fences); i++ {
		if !fences[i-1].Less(fences[i]) {
			t.Fatalf("fence %d not above its predecessor: %s then %s",
				i, fences[i-1], fences[i])
		}
	}

	// The mirrored session families tell the same story as the live tier
	// would: every doomed client expired, holding at most one lock.
	counter := func(name string) uint64 { return reg.Counter(name, "", nil).Value() }
	if got := counter(metrics.MetricSessionsOpened); got != nodes {
		t.Fatalf("sessions opened = %d, want %d", got, nodes)
	}
	if got := counter(metrics.MetricSessionsExpired); got != nDoomed {
		t.Fatalf("sessions expired = %d, want %d", got, nDoomed)
	}
	if got := counter(metrics.MetricSessionLocksReaped); got != uint64(doomedGrants) {
		t.Fatalf("locks reaped = %d, want %d", got, doomedGrants)
	}
	if got := counter(metrics.MetricSessionsClosed); got != uint64(survivors) {
		t.Fatalf("sessions closed = %d, want %d", got, survivors)
	}
	if got := counter(metrics.MetricFenceTokens); got != uint64(grants) {
		t.Fatalf("fence tokens = %d, want %d", got, grants)
	}
	if got := reg.Gauge(metrics.MetricSessionsOpen, "", nil).Value(); got != 0 {
		t.Fatalf("sessions open gauge = %v at quiescence, want 0", got)
	}
	requireCleanAudit(t, auditor, reg)
}

// TestLeaseRenewalKeepsLocks checks the other half of the lease
// contract: a client that heartbeats on time is never reaped, even when
// it holds a lock far beyond the TTL.
func TestLeaseRenewalKeepsLocks(t *testing.T) {
	const lock proto.LockID = 1
	reg := metrics.NewRegistry()
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    2,
		Locks:    []proto.LockID{lock},
		Seed:     7,
		Registry: reg,
	})
	const ttl = 100 * time.Millisecond
	lease := c.Nodes[1].OpenLease("steady", ttl)
	granted := false
	lease.Acquire(lock, modes.W, func(hierlock.FenceToken) { granted = true })
	// Heartbeat at half the TTL for 20 TTLs' worth of hold time, then
	// stop the clock while the lease is still fresh.
	for i := 1; i <= 40; i++ {
		c.Sim.At(time.Duration(i)*ttl/2, lease.Renew)
	}
	c.Sim.Run(2 * time.Second)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if !granted {
		t.Fatal("lease acquisition never granted")
	}
	if lease.Expired() {
		t.Fatal("heartbeating lease was reaped")
	}
	if got := c.Nodes[1].Held(lock); got != modes.W {
		t.Fatalf("held mode = %v, want W", got)
	}
	if got := reg.Counter(metrics.MetricSessionsExpired, "", nil).Value(); got != 0 {
		t.Fatalf("sessions expired = %d, want 0", got)
	}
	if lease.Close() != 1 {
		t.Fatal("close should release the one held lock")
	}
	if got := c.Nodes[1].Held(lock); got != modes.None {
		t.Fatalf("held mode after close = %v, want None", got)
	}
}
