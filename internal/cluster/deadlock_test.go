package cluster_test

import (
	"testing"
	"time"

	"hierlock/internal/cluster"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// TestDetectDeadlockOppositeOrder induces the textbook client deadlock:
// two nodes acquire two exclusive locks in opposite orders.
func TestDetectDeadlockOppositeOrder(t *testing.T) {
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    3,
		Locks:    []proto.LockID{1, 2},
		Seed:     41,
	})
	// Node 1: lock 1 then lock 2. Node 2: lock 2 then lock 1.
	c.Nodes[1].Acquire(1, modes.W, func() {
		c.Nodes[1].Acquire(2, modes.W, func() {})
	})
	c.Nodes[2].Acquire(2, modes.W, func() {
		c.Nodes[2].Acquire(1, modes.W, func() {})
	})
	c.Sim.Run(time.Minute)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if c.Quiesced() {
		t.Fatal("expected the cluster to be stuck, not quiesced")
	}
	dl := c.DetectDeadlocks()
	if len(dl) != 1 {
		t.Fatalf("deadlocks = %v, want exactly one cycle", dl)
	}
	if len(dl[0].Nodes) != 2 {
		t.Fatalf("cycle = %v, want the 2-node cycle", dl[0])
	}
	if dl[0].String() == "" {
		t.Fatal("cycle must render")
	}
}

// TestNoFalseDeadlocks checks that ordinary waiting (queued behind a
// holder, no cycle) is not reported.
func TestNoFalseDeadlocks(t *testing.T) {
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    3,
		Locks:    []proto.LockID{1},
		Seed:     42,
	})
	c.Nodes[1].Acquire(1, modes.W, func() {})
	c.Sim.Run(5 * time.Second)
	c.Nodes[2].Acquire(1, modes.W, func() {}) // waits behind node 1
	c.Sim.Run(5 * time.Second)
	if dl := c.DetectDeadlocks(); len(dl) != 0 {
		t.Fatalf("false deadlock reported: %v", dl)
	}
	// Compatible waiting is not even an edge.
	c.Nodes[0].Acquire(1, modes.IR, func() {})
	c.Sim.Run(5 * time.Second)
	if dl := c.DetectDeadlocks(); len(dl) != 0 {
		t.Fatalf("false deadlock on compatible wait: %v", dl)
	}
}

// TestDetectThreeWayDeadlock induces a 3-cycle.
func TestDetectThreeWayDeadlock(t *testing.T) {
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    4,
		Locks:    []proto.LockID{1, 2, 3},
		Seed:     43,
	})
	// 1 holds L1 waits L2; 2 holds L2 waits L3; 3 holds L3 waits L1.
	c.Nodes[1].Acquire(1, modes.W, func() { c.Nodes[1].Acquire(2, modes.W, func() {}) })
	c.Nodes[2].Acquire(2, modes.W, func() { c.Nodes[2].Acquire(3, modes.W, func() {}) })
	c.Nodes[3].Acquire(3, modes.W, func() { c.Nodes[3].Acquire(1, modes.W, func() {}) })
	c.Sim.Run(time.Minute)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	dl := c.DetectDeadlocks()
	if len(dl) != 1 || len(dl[0].Nodes) != 3 {
		t.Fatalf("deadlocks = %v, want one 3-cycle", dl)
	}
}

// TestOrderedAcquisitionAvoidsDeadlock shows the avoidance discipline the
// paper uses for Naimi "same work": both nodes take the locks in the same
// order, so both complete.
func TestOrderedAcquisitionAvoidsDeadlock(t *testing.T) {
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    3,
		Locks:    []proto.LockID{1, 2},
		Seed:     44,
	})
	completed := 0
	both := func(n int) {
		c.Nodes[n].Acquire(1, modes.W, func() {
			c.Nodes[n].Acquire(2, modes.W, func() {
				completed++
				c.Nodes[n].Release(2)
				c.Nodes[n].Release(1)
			})
		})
	}
	both(1)
	both(2)
	c.Sim.Run(time.Minute)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if completed != 2 {
		t.Fatalf("completed = %d, want 2", completed)
	}
	if dl := c.DetectDeadlocks(); len(dl) != 0 {
		t.Fatalf("unexpected deadlock: %v", dl)
	}
	if !c.Quiesced() {
		t.Fatal("not quiesced")
	}
}
