package cluster

import (
	"sort"

	"hierlock/internal/introspect"
)

// Inventory snapshots one simulated node's per-lock protocol state in
// the same shape the live runtime serves on /debug/locks, so tests and
// experiment harnesses can assert against the cluster-wide view (and
// its wait-for graph) without standing up TCP members. Wait durations
// are virtual-time, from the request's registration stamp.
func (n *Node) Inventory() introspect.NodeInventory {
	inv := introspect.NodeInventory{Node: int(n.ID)}
	now := n.c.Sim.Now()
	for lock, e := range n.hier {
		li := introspect.LockInfo{
			Lock:       uint64(lock),
			Epoch:      e.Epoch(),
			Token:      e.IsToken(),
			Held:       introspect.ModeString(e.Held()),
			Pending:    introspect.ModeString(e.Pending()),
			Frozen:     introspect.FrozenStrings(e.Frozen()),
			Parent:     introspect.ParentInt(e.Parent()),
			StaleDrops: e.StaleDrops(),
		}
		if ch := e.Children(); len(ch) > 0 {
			cs := make([]introspect.CopysetEntry, 0, len(ch))
			for node, md := range ch {
				cs = append(cs, introspect.CopysetEntry{
					Node: int(node), Mode: introspect.ModeString(md)})
			}
			sort.Slice(cs, func(i, j int) bool { return cs[i].Node < cs[j].Node })
			li.Copyset = cs
		}
		if w, ok := n.waiters[lock]; ok {
			li.Waiter = &introspect.Waiter{
				Mode:   introspect.ModeString(w.mode),
				WaitNS: (now - w.start).Nanoseconds(),
			}
		}
		li.Queue = introspect.QueueInfo(e.Queue(), n.ID, li.Waiter)
		inv.Locks = append(inv.Locks, li)
	}
	inv.Sort()
	return inv
}

// Inventory merges every live node's inventory into the cluster view,
// wait-for graph and deadlock cycles included (crashed nodes' state is
// wiped and is skipped, exactly as an unreachable peer would be in a
// live `lockctl locks --cluster` merge).
func (c *Cluster) Inventory() introspect.Cluster {
	var nodes []introspect.NodeInventory
	for _, n := range c.Nodes {
		if c.NodeDown(n.ID) {
			continue
		}
		nodes = append(nodes, n.Inventory())
	}
	return introspect.Merge(nodes)
}
