package cluster_test

import (
	"testing"
	"time"

	"hierlock/internal/cluster"
	"hierlock/internal/metrics"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
	"hierlock/internal/sim"
	"hierlock/internal/trace"
)

// TestJoinDuringRecoveryRound grows the cluster while a token-holder
// crash is being recovered: the joiner lands mid-round with no seed for
// the lock, issues an epoch-0 request into the recovered world, and
// must be fenced, hinted up to the round's epoch, and finally served —
// with token conservation intact and the auditor silent.
func TestJoinDuringRecoveryRound(t *testing.T) {
	const (
		lock   proto.LockID = 1
		nodes               = 4
		victim              = 3
	)
	rec := trace.New(1)
	reg := metrics.NewRegistry()
	auditor := attachAuditor(rec, reg)
	t.Cleanup(func() { requireCleanAudit(t, auditor, reg) })
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    nodes,
		Locks:    []proto.LockID{lock},
		Seed:     77,
		Trace:    rec,
		Faults:   recoveryCrashPlan(victim),
		Recovery: &cluster.RecoveryOptions{
			ConfirmAfter: time.Second,
			ProbeTimeout: 300 * time.Millisecond,
		},
	})
	// The victim takes W — and the token — into a permanent crash at 2s;
	// confirmations land around 3s and the regeneration round follows.
	c.Sim.At(100*time.Millisecond, func() {
		c.Nodes[victim].Acquire(lock, modes.W, func() {})
	})
	served := 0
	var joiner *cluster.Node
	c.Sim.At(3100*time.Millisecond, func() {
		n, err := c.Join()
		if err != nil {
			t.Errorf("join: %v", err)
			return
		}
		joiner = n
		// The joiner requests immediately: depending on round progress
		// this request is fenced as stale and re-issued via a recovery
		// hint — either way it must eventually be granted.
		n.Acquire(lock, modes.W, func() {
			served++
			c.Sim.At(20*time.Millisecond, func() { n.Release(lock) })
		})
	})
	// Survivors keep working across the join.
	for _, id := range []int{0, 1, 2} {
		n := c.Nodes[id]
		c.Sim.At(time.Duration(2500+400*id)*time.Millisecond, func() {
			n.Acquire(lock, modes.W, func() {
				served++
				c.Sim.At(20*time.Millisecond, func() { n.Release(lock) })
			})
		})
	}
	c.Sim.Run(5 * time.Minute)
	if err := c.Err(); err != nil {
		t.Fatalf("protocol error or oracle violation: %v", err)
	}
	if served != 4 {
		t.Fatalf("served %d of 4 requests (join did not converge)", served)
	}
	if joiner == nil {
		t.Fatal("join never ran")
	}
	if got := len(c.Members()); got != nodes+1 {
		t.Fatalf("membership size = %d, want %d", got, nodes+1)
	}
	if !c.Quiesced() {
		t.Fatal("cluster did not quiesce")
	}
	if err := c.CheckTokens(); err != nil {
		t.Fatal(err)
	}
}

// TestLeaveHandsOffTokens shrinks the cluster while the leaver holds
// hot tokens (but no client locks): its nominated tokens regenerate
// among the survivors, who keep serving the locks afterwards.
func TestLeaveHandsOffTokens(t *testing.T) {
	for _, p := range []cluster.Protocol{cluster.Hierarchical, cluster.Naimi} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			locks := []proto.LockID{1, 2}
			rec := trace.New(1)
			reg := metrics.NewRegistry()
			auditor := attachAuditor(rec, reg)
			t.Cleanup(func() { requireCleanAudit(t, auditor, reg) })
			c := cluster.New(cluster.Config{
				Protocol: p,
				Nodes:    4,
				Locks:    locks,
				Seed:     13,
				Trace:    rec,
				Recovery: &cluster.RecoveryOptions{ProbeTimeout: 300 * time.Millisecond},
			})
			leaver := c.Nodes[2]
			// The leaver acquires and releases W on both locks, pulling
			// both tokens to itself; they ride the leave hand-off back out.
			for _, l := range locks {
				l := l
				c.Sim.At(10*time.Millisecond, func() {
					leaver.Acquire(l, modes.W, func() {
						c.Sim.At(10*time.Millisecond, func() { leaver.Release(l) })
					})
				})
			}
			left := false
			c.Sim.At(2*time.Second, func() {
				if err := c.Leave(leaver.ID); err != nil {
					t.Errorf("leave: %v", err)
					return
				}
				left = true
			})
			served := 0
			for _, id := range []int{0, 1, 3} {
				n := c.Nodes[id]
				for _, l := range locks {
					l := l
					c.Sim.At(time.Duration(3000+100*id)*time.Millisecond, func() {
						n.Acquire(l, modes.W, func() {
							served++
							c.Sim.At(10*time.Millisecond, func() { n.Release(l) })
						})
					})
				}
			}
			c.Sim.Run(5 * time.Minute)
			if err := c.Err(); err != nil {
				t.Fatalf("protocol error or oracle violation: %v", err)
			}
			if !left {
				t.Fatal("leave never succeeded")
			}
			if served != 6 {
				t.Fatalf("served %d of 6 post-leave requests", served)
			}
			if got := len(c.Members()); got != 3 {
				t.Fatalf("membership size = %d, want 3", got)
			}
			if !c.Quiesced() {
				t.Fatal("cluster did not quiesce")
			}
			if err := c.CheckTokens(); err != nil {
				t.Fatalf("token conservation after leave: %v", err)
			}
		})
	}
}

// TestLeaveRefusedWhileHolding: a member holding a client lock cannot
// leave — the live runtime returns the same refusal so operators release
// (or let the lease lapse) first.
func TestLeaveRefusedWhileHolding(t *testing.T) {
	const lock proto.LockID = 1
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    3,
		Locks:    []proto.LockID{lock},
		Seed:     5,
		Recovery: &cluster.RecoveryOptions{},
	})
	n := c.Nodes[1]
	held := false
	n.Acquire(lock, modes.W, func() { held = true })
	c.Sim.Run(time.Minute)
	if !held {
		t.Fatal("setup acquisition never granted")
	}
	if err := c.Leave(n.ID); err == nil {
		t.Fatal("leave succeeded while holding a lock")
	}
	if got := len(c.Members()); got != 3 {
		t.Fatalf("refused leave changed membership: size = %d", got)
	}
	n.Release(lock)
	c.Sim.Run(time.Minute)
	if err := c.Leave(n.ID); err != nil {
		t.Fatalf("leave after release: %v", err)
	}
}

// TestRootLeaveRegeneratesImplicitTokens: node 0 leaves at epoch 0
// without ever creating an engine — its tokens exist only implicitly in
// the initial topology. The leave must still nominate and regenerate
// them, or they are lost forever.
func TestRootLeaveRegeneratesImplicitTokens(t *testing.T) {
	locks := []proto.LockID{1, 2, 3}
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    3,
		Locks:    locks,
		Seed:     9,
		Recovery: &cluster.RecoveryOptions{ProbeTimeout: 300 * time.Millisecond},
	})
	if err := c.Leave(0); err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, l := range locks {
		l := l
		n := c.Nodes[1]
		c.Sim.At(100*time.Millisecond, func() {
			n.Acquire(l, modes.W, func() {
				served++
				c.Sim.At(10*time.Millisecond, func() { n.Release(l) })
			})
		})
	}
	c.Sim.Run(5 * time.Minute)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if served != len(locks) {
		t.Fatalf("served %d of %d requests after root leave", served, len(locks))
	}
	if err := c.CheckTokens(); err != nil {
		t.Fatalf("implicit tokens lost with the departed root: %v", err)
	}
}

// membershipChaosRun drives a seeded scenario with a join and a leave
// under network chaos, returning its full fingerprint. The leave
// retries on refusal (the target may still be mid-cycle), which is
// itself deterministic: the retry schedule depends only on simulated
// state.
func membershipChaosRun(t *testing.T, seed int64) (c *cluster.Cluster, granted int) {
	t.Helper()
	const lock proto.LockID = 1
	rec := trace.New(1)
	reg := metrics.NewRegistry()
	auditor := attachAuditor(rec, reg)
	t.Cleanup(func() { requireCleanAudit(t, auditor, reg) })
	c = cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    6,
		Locks:    []proto.LockID{lock},
		Seed:     seed,
		Trace:    rec,
		Faults: &sim.FaultPlan{
			DropRate:          0.02,
			DupRate:           0.01,
			SpikeRate:         0.01,
			SpikeDelay:        sim.Fixed(500 * time.Millisecond),
			RetransmitTimeout: 200 * time.Millisecond,
		},
		Recovery: &cluster.RecoveryOptions{ProbeTimeout: 300 * time.Millisecond},
	})
	cycle := func(n *cluster.Node, rounds int) {
		var step func(r int)
		step = func(r int) {
			if r >= rounds {
				return
			}
			n.Acquire(lock, chaosMode(cluster.Hierarchical, int(n.ID)), func() {
				granted++
				c.Sim.At(20*time.Millisecond, func() {
					n.Release(lock)
					c.Sim.At(time.Duration(n.ID+1)*10*time.Millisecond, func() { step(r + 1) })
				})
			})
		}
		step(0)
	}
	for i := 0; i < 6; i++ {
		n := c.Nodes[i]
		c.Sim.At(time.Duration(i)*5*time.Millisecond, func() { cycle(n, 3) })
	}
	// Grow at 3s: the joiner runs its own cycles once admitted.
	c.Sim.At(3*time.Second, func() {
		n, err := c.Join()
		if err != nil {
			t.Errorf("join: %v", err)
			return
		}
		cycle(n, 3)
	})
	// Shrink at 8s: node 5 departs once idle (retrying deterministically
	// while its last cycle drains).
	var tryLeave func()
	tryLeave = func() {
		if err := c.Leave(5); err != nil {
			c.Sim.At(500*time.Millisecond, tryLeave)
		}
	}
	c.Sim.At(8*time.Second, tryLeave)
	c.Sim.Run(30 * time.Minute)
	return c, granted
}

// TestMembershipChaosDeterministic reruns the same seeded join/leave
// chaos scenario and requires bit-identical fault counters, message
// metrics, grant counts and event totals: membership changes must live
// inside the deterministic envelope like every other simulated event.
func TestMembershipChaosDeterministic(t *testing.T) {
	type fingerprint struct {
		faults  metrics.Faults
		byKind  [14]uint64
		granted int
		members int
		fired   uint64
	}
	run := func() fingerprint {
		c, granted := membershipChaosRun(t, 4711)
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		if !c.Quiesced() {
			t.Fatal("cluster did not quiesce")
		}
		if err := c.CheckTokens(); err != nil {
			t.Fatal(err)
		}
		if want := 6*3 + 3; granted != want {
			t.Fatalf("granted %d of %d", granted, want)
		}
		return fingerprint{
			faults:  c.Net.FaultStats,
			byKind:  c.Net.Metrics.ByKind,
			granted: granted,
			members: len(c.Members()),
			fired:   c.Sim.Fired(),
		}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("seeded membership chaos run not reproducible:\n  run 1: %+v\n  run 2: %+v", a, b)
	}
}
