package cluster_test

import (
	"testing"
	"time"

	"hierlock/internal/cluster"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
	"hierlock/internal/trace"
)

// TestTracedRun runs a traced workload and validates the recorded event
// stream: every grant has a preceding acquire, sends precede deliveries
// link-by-link (the FIFO meta-check), and message counts agree with the
// network's counters.
func TestTracedRun(t *testing.T) {
	rec := trace.New(1 << 16)
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    6,
		Locks:    []proto.LockID{1, 2},
		Seed:     21,
		Trace:    rec,
	})
	rng := c.Sim.NewRand()
	var loop func(i int)
	loop = func(i int) {
		lock := proto.LockID(1 + rng.Intn(2))
		m := modes.All[rng.Intn(5)]
		c.Nodes[i].Acquire(lock, m, func() {
			c.Sim.At(time.Duration(rng.Intn(20))*time.Millisecond, func() {
				c.Nodes[i].Release(lock)
				c.Sim.At(time.Duration(rng.Intn(100))*time.Millisecond, func() { loop(i) })
			})
		})
	}
	for i := 0; i < 6; i++ {
		loop(i)
	}
	c.Sim.Run(20 * time.Second)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("trace ring too small: %d dropped", rec.Dropped())
	}

	counts := rec.Counts()
	if counts[trace.OpAcquire] == 0 || counts[trace.OpGranted] == 0 || counts[trace.OpRelease] == 0 {
		t.Fatalf("missing client events: %v", counts)
	}
	if counts[trace.OpGranted] > counts[trace.OpAcquire] {
		t.Fatalf("more grants than acquires: %v", counts)
	}
	if counts[trace.OpSend] < counts[trace.OpDeliver] {
		t.Fatalf("more deliveries than sends: %v", counts)
	}
	if v := rec.CheckFIFO(); v != "" {
		t.Fatalf("FIFO violation observed in trace: %s", v)
	}
	// Sends in the trace match the network's metrics exactly.
	if uint64(counts[trace.OpSend]) != c.Net.Metrics.Total() {
		t.Fatalf("trace sends %d != network total %d", counts[trace.OpSend], c.Net.Metrics.Total())
	}
	// Per-node grant/acquire pairing per lock: grants never outnumber
	// acquires for any (node, lock).
	type key struct {
		n proto.NodeID
		l proto.LockID
	}
	acq := map[key]int{}
	gr := map[key]int{}
	for _, e := range rec.Entries() {
		switch e.Op {
		case trace.OpAcquire:
			acq[key{e.Node, e.Lock}]++
		case trace.OpGranted:
			gr[key{e.Node, e.Lock}]++
		}
	}
	for k, g := range gr {
		if g > acq[k] {
			t.Fatalf("node %d lock %d: %d grants for %d acquires", k.n, k.l, g, acq[k])
		}
	}
}
