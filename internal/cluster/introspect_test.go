package cluster_test

import (
	"strings"
	"testing"
	"time"

	"hierlock/internal/cluster"
	"hierlock/internal/introspect"
	"hierlock/internal/metrics"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
	"hierlock/internal/sim"
	"hierlock/internal/trace"
)

// TestInventoryDetectsInjectedCycle is the observability acceptance
// scenario: three nodes acquire three exclusive locks in an unordered
// rotation (1 holds L1 wants L2, 2 holds L2 wants L3, 3 holds L3 wants
// L1), and the merged inventory's wait-for graph must flag exactly that
// cycle — while the online protocol auditor, watching the same run,
// stays at zero violations (a client-level deadlock is not a protocol
// bug, and must not read as one).
func TestInventoryDetectsInjectedCycle(t *testing.T) {
	rec := trace.New(1)
	reg := metrics.NewRegistry()
	auditor := attachAuditor(rec, reg)
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    4,
		Locks:    []proto.LockID{1, 2, 3},
		Seed:     77,
		Trace:    rec,
	})
	c.Nodes[1].Acquire(1, modes.W, func() { c.Nodes[1].Acquire(2, modes.W, func() {}) })
	c.Nodes[2].Acquire(2, modes.W, func() { c.Nodes[2].Acquire(3, modes.W, func() {}) })
	c.Nodes[3].Acquire(3, modes.W, func() { c.Nodes[3].Acquire(1, modes.W, func() {}) })
	c.Sim.Run(time.Minute)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}

	inv := c.Inventory()
	if !inv.WaitFor.Deadlocked() {
		t.Fatalf("wait-for graph missed the cycle: %+v", inv.WaitFor)
	}
	if len(inv.WaitFor.Cycles) != 1 {
		t.Fatalf("cycles = %v, want exactly one", inv.WaitFor.Cycles)
	}
	cyc := inv.WaitFor.Cycles[0]
	if len(cyc) != 3 || cyc[0] != 1 || cyc[1] != 2 || cyc[2] != 3 {
		t.Fatalf("cycle = %v, want canonical [1 2 3]", cyc)
	}
	// Every edge carries the waiter's virtual wait duration.
	for _, e := range inv.WaitFor.Edges {
		if e.WaitNS <= 0 {
			t.Errorf("edge %+v has no wait duration", e)
		}
	}
	// The rendered report names the deadlock the way `lockctl locks
	// --cluster` would.
	out := introspect.FormatCluster(inv)
	if !strings.Contains(out, "DEADLOCK: 1 -> 2 -> 3 -> 1") {
		t.Fatalf("report missing deadlock line:\n%s", out)
	}
	// The graph verdict agrees with the sim's native detector.
	if dl := c.DetectDeadlocks(); len(dl) != 1 {
		t.Fatalf("native detector disagrees: %v", dl)
	}
	// The protocol itself behaved: zero invariant violations.
	requireCleanAudit(t, auditor, reg)
}

// TestInventoryNoCycleUnderContention: plain queuing behind a holder is
// an edge at most, never a cycle, and compatible waiting is not even an
// edge.
func TestInventoryNoCycleUnderContention(t *testing.T) {
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    3,
		Locks:    []proto.LockID{1},
		Seed:     78,
	})
	c.Nodes[1].Acquire(1, modes.W, func() {})
	c.Sim.Run(5 * time.Second)
	c.Nodes[2].Acquire(1, modes.W, func() {})
	c.Sim.Run(5 * time.Second)

	inv := c.Inventory()
	if inv.WaitFor.Deadlocked() {
		t.Fatalf("false deadlock: %+v", inv.WaitFor)
	}
	found := false
	for _, e := range inv.WaitFor.Edges {
		if e.Waiter == 2 && e.Holder == 1 && e.Lock == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing contention edge 2->1: %+v", inv.WaitFor.Edges)
	}
}

// TestInventorySkipsCrashedNodes: a crashed node's wiped state must not
// pollute the merge (matching an unreachable peer in the live path).
func TestInventorySkipsCrashedNodes(t *testing.T) {
	c := cluster.New(cluster.Config{
		Protocol: cluster.Hierarchical,
		Nodes:    3,
		Locks:    []proto.LockID{1},
		Seed:     79,
		Faults: &sim.FaultPlan{
			Crashes: []sim.CrashWindow{{Node: 2, Start: 2 * time.Second, End: 20 * time.Second}},
		},
	})
	c.Nodes[1].Acquire(1, modes.W, func() {})
	c.Sim.Run(6 * time.Second) // node 2's crash window is open
	inv := c.Inventory()
	for _, n := range inv.Nodes {
		if n.Node == 2 {
			t.Fatalf("crashed node present in merge: %+v", inv.Nodes)
		}
	}
}
