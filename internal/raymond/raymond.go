// Package raymond implements Raymond's tree-based distributed
// mutual-exclusion algorithm (ACM TOCS 7(1), 1989), a second baseline for
// the paper's related-work discussion: like the hierarchical protocol it
// is token-based with O(log n) messages on a tree, but its tree is
// *static* — holder pointers flip along edges of a fixed topology, and no
// path compression ever happens. The paper credits part of its advantage
// over such schemes to its dynamically adapting tree.
//
// Each node keeps a pointer toward the token (holder), a FIFO queue of
// neighbors (and possibly itself) that want the token, and an `asked`
// flag so at most one request per node is outstanding. The token travels
// hop by hop along tree edges, serving queues on its way.
//
// The engine is a pure state machine with the same conventions as
// internal/hlock and internal/naimi: callers serialize calls per engine
// and deliver messages per-link FIFO.
package raymond

import (
	"errors"
	"fmt"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// Client-operation errors.
var (
	ErrHeld     = errors.New("raymond: lock already held")
	ErrNotHeld  = errors.New("raymond: lock not held")
	ErrPending  = errors.New("raymond: request already pending")
	ErrProtocol = errors.New("raymond: protocol violation")
)

// Engine is the per-node, per-lock Raymond state machine.
type Engine struct {
	self  proto.NodeID
	lock  proto.LockID
	clock *proto.Clock

	// holder points along the static tree toward the token; self when
	// this node has it.
	holder proto.NodeID
	// queue holds neighbors (or self) waiting for the token, FIFO.
	queue []proto.NodeID
	// asked records that a request to holder is outstanding.
	asked bool
	using bool
	// requesting marks a local client waiting for the critical section.
	requesting bool
}

// New constructs the engine. holder must point along a fixed tree toward
// the node that initially has the token (itself for that node).
// The tree topology never changes; only holder directions flip.
func New(self proto.NodeID, lock proto.LockID, holder proto.NodeID, clock *proto.Clock) *Engine {
	return &Engine{self: self, lock: lock, clock: clock, holder: holder}
}

// Self returns the node this engine runs on.
func (e *Engine) Self() proto.NodeID { return e.self }

// HasToken reports whether the token is at this node.
func (e *Engine) HasToken() bool { return e.holder == e.self }

// Held reports whether the node is inside its critical section.
func (e *Engine) Held() bool { return e.using }

// Requesting reports whether a client request is outstanding.
func (e *Engine) Requesting() bool { return e.requesting }

// Holder returns the current holder pointer.
func (e *Engine) Holder() proto.NodeID { return e.holder }

// QueueLen returns the number of queued requesters at this node.
func (e *Engine) QueueLen() int { return len(e.queue) }

// String summarizes the engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("raymond node %d lock %d: holder=%d using=%v req=%v asked=%v q=%v",
		e.self, e.lock, e.holder, e.using, e.requesting, e.asked, e.queue)
}

// Out carries messages and the acquisition event.
type Out struct {
	Msgs     []proto.Message
	Acquired bool
}

// Acquire requests the critical section.
func (e *Engine) Acquire() (Out, error) {
	var out Out
	if e.using {
		return out, ErrHeld
	}
	if e.requesting {
		return out, ErrPending
	}
	e.requesting = true
	e.queue = append(e.queue, e.self)
	e.assignOrAsk(&out)
	return out, nil
}

// Release leaves the critical section, moving the token onward if
// someone is queued.
func (e *Engine) Release() (Out, error) {
	var out Out
	if !e.using {
		return out, ErrNotHeld
	}
	e.using = false
	e.assignOrAsk(&out)
	return out, nil
}

// Handle processes one protocol message.
func (e *Engine) Handle(msg *proto.Message) (Out, error) {
	var out Out
	if msg.Lock != e.lock {
		return out, fmt.Errorf("%w: message for lock %d at engine for lock %d", ErrProtocol, msg.Lock, e.lock)
	}
	e.clock.Witness(msg.TS)
	switch msg.Kind {
	case proto.KindRequest:
		e.queue = append(e.queue, msg.From)
		e.assignOrAsk(&out)
		return out, nil
	case proto.KindToken:
		e.holder = e.self
		e.asked = false
		e.assignOrAsk(&out)
		return out, nil
	default:
		return out, fmt.Errorf("%w: unexpected message kind %v", ErrProtocol, msg.Kind)
	}
}

// assignOrAsk is Raymond's ASSIGN_PRIVILEGE / MAKE_REQUEST pair: if this
// node has the idle token and a queue, pass the privilege to the head
// (possibly itself); otherwise make sure a request is on its way toward
// the token.
func (e *Engine) assignOrAsk(out *Out) {
	if e.holder == e.self && !e.using && len(e.queue) > 0 {
		head := e.queue[0]
		e.queue = e.queue[1:]
		if head == e.self {
			e.using = true
			e.requesting = false
			out.Acquired = true
		} else {
			e.holder = head
			e.asked = false
			out.Msgs = append(out.Msgs, proto.Message{
				Kind: proto.KindToken, Lock: e.lock,
				From: e.self, To: head, TS: e.clock.Tick(),
			})
		}
	}
	if e.holder != e.self && !e.asked && len(e.queue) > 0 {
		e.asked = true
		out.Msgs = append(out.Msgs, proto.Message{
			Kind: proto.KindRequest, Lock: e.lock,
			From: e.self, To: e.holder, TS: e.clock.Tick(),
		})
	}
}

// Mode reports the held mode for mixed-protocol tooling (always
// exclusive).
func (e *Engine) Mode() modes.Mode {
	if e.using {
		return modes.W
	}
	return modes.None
}

// BinaryTreeHolder computes the initial holder pointer for node self in a
// balanced binary tree over n nodes rooted at node 0 (which starts with
// the token): the parent of i is (i-1)/2.
func BinaryTreeHolder(self proto.NodeID) proto.NodeID {
	if self == 0 {
		return 0
	}
	return (self - 1) / 2
}

// Clone returns a deep copy bound to the given clock (for exhaustive
// state-space exploration in tests).
func (e *Engine) Clone(clock *proto.Clock) *Engine {
	ne := *e
	ne.clock = clock
	ne.queue = append([]proto.NodeID(nil), e.queue...)
	return &ne
}

// Fingerprint canonically encodes the engine state for model-checking
// deduplication.
func (e *Engine) Fingerprint() string {
	return fmt.Sprintf("h%d a%v u%v r%v q%v", e.holder, e.asked, e.using, e.requesting, e.queue)
}
