package raymond_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hierlock/internal/proto"
	"hierlock/internal/raymond"
)

const testLock proto.LockID = 1

type harness struct {
	t       *testing.T
	engines map[proto.NodeID]*raymond.Engine
	queues  map[[2]proto.NodeID][]proto.Message
	counts  map[proto.Kind]int
	inCS    map[proto.NodeID]bool
	waiting map[proto.NodeID]bool
	grants  []proto.NodeID
}

// newHarness builds n nodes on a balanced binary tree rooted at node 0,
// which starts with the token.
func newHarness(t *testing.T, n int) *harness {
	h := &harness{
		t:       t,
		engines: make(map[proto.NodeID]*raymond.Engine, n),
		queues:  make(map[[2]proto.NodeID][]proto.Message),
		counts:  make(map[proto.Kind]int),
		inCS:    make(map[proto.NodeID]bool),
		waiting: make(map[proto.NodeID]bool),
	}
	for i := 0; i < n; i++ {
		id := proto.NodeID(i)
		h.engines[id] = raymond.New(id, testLock, raymond.BinaryTreeHolder(id), &proto.Clock{})
	}
	return h
}

func (h *harness) absorb(from proto.NodeID, out raymond.Out) {
	h.t.Helper()
	for _, m := range out.Msgs {
		h.counts[m.Kind]++
		key := [2]proto.NodeID{m.From, m.To}
		h.queues[key] = append(h.queues[key], m)
	}
	if out.Acquired {
		if !h.waiting[from] {
			h.t.Fatalf("node %d acquired without waiting", from)
		}
		delete(h.waiting, from)
		h.inCS[from] = true
		h.grants = append(h.grants, from)
		if len(h.inCS) > 1 {
			h.t.Fatalf("MUTUAL EXCLUSION VIOLATED: %v in CS", h.inCS)
		}
	}
}

func (h *harness) acquire(i int) {
	h.t.Helper()
	id := proto.NodeID(i)
	h.waiting[id] = true
	out, err := h.engines[id].Acquire()
	if err != nil {
		h.t.Fatalf("node %d: Acquire: %v", i, err)
	}
	h.absorb(id, out)
}

func (h *harness) release(i int) {
	h.t.Helper()
	id := proto.NodeID(i)
	delete(h.inCS, id)
	out, err := h.engines[id].Release()
	if err != nil {
		h.t.Fatalf("node %d: Release: %v", i, err)
	}
	h.absorb(id, out)
}

func (h *harness) drain(rng *rand.Rand) {
	h.t.Helper()
	for steps := 0; ; steps++ {
		if steps > 100000 {
			h.t.Fatal("network did not quiesce")
		}
		var pairs [][2]proto.NodeID
		for k, q := range h.queues {
			if len(q) > 0 {
				pairs = append(pairs, k)
			}
		}
		if len(pairs) == 0 {
			return
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
		idx := 0
		if rng != nil {
			idx = rng.Intn(len(pairs))
		}
		k := pairs[idx]
		msg := h.queues[k][0]
		h.queues[k] = h.queues[k][1:]
		out, err := h.engines[msg.To].Handle(&msg)
		if err != nil {
			h.t.Fatalf("node %d: Handle: %v", msg.To, err)
		}
		h.absorb(msg.To, out)
	}
}

func (h *harness) tokens() int {
	n := 0
	for _, e := range h.engines {
		if e.HasToken() {
			n++
		}
	}
	return n
}

func TestRootAcquiresLocally(t *testing.T) {
	h := newHarness(t, 7)
	h.acquire(0)
	if !h.engines[0].Held() || len(h.queues) != 0 {
		t.Fatal("root should enter message-free")
	}
	h.release(0)
}

func TestTokenTravelsTreeEdges(t *testing.T) {
	h := newHarness(t, 7)
	// Node 5's parent chain: 5 → 2 → 0. Token travels back edge by edge.
	h.acquire(5)
	h.drain(nil)
	if !h.engines[5].Held() {
		t.Fatalf("node 5 should hold; %v", h.engines[5])
	}
	// Requests: 5→2, 2→0. Tokens: 0→2, 2→5.
	if h.counts[proto.KindRequest] != 2 || h.counts[proto.KindToken] != 2 {
		t.Fatalf("counts = %v, want 2 requests + 2 tokens", h.counts)
	}
	// Holder pointers reversed along the path.
	if h.engines[0].Holder() != 2 || h.engines[2].Holder() != 5 {
		t.Fatalf("holders: 0→%d 2→%d", h.engines[0].Holder(), h.engines[2].Holder())
	}
	h.release(5)
	h.drain(nil)
	// The tree is static: node 1 must route via 0, which now points at 2.
	h.acquire(1)
	h.drain(nil)
	if !h.engines[1].Held() {
		t.Fatal("node 1 starved")
	}
	h.release(1)
}

func TestQueuedNeighborsServedInOrder(t *testing.T) {
	h := newHarness(t, 3) // 0 root; 1, 2 children of 0
	h.acquire(0)
	h.acquire(1)
	h.acquire(2)
	h.drain(nil)
	h.release(0)
	h.drain(nil)
	if !h.engines[1].Held() {
		t.Fatalf("node 1 should be served first: %v", h.grants)
	}
	h.release(1)
	h.drain(nil)
	if !h.engines[2].Held() {
		t.Fatal("node 2 should be served second")
	}
	h.release(2)
	h.drain(nil)
	if h.tokens() != 1 {
		t.Fatalf("tokens = %d", h.tokens())
	}
}

func TestErrors(t *testing.T) {
	h := newHarness(t, 3)
	e := h.engines[0]
	if _, err := e.Release(); err == nil {
		t.Error("release while not held must fail")
	}
	h.acquire(0)
	if _, err := e.Acquire(); err == nil {
		t.Error("double acquire must fail")
	}
	h.release(0)
	h.acquire(1)
	if _, err := h.engines[1].Acquire(); err == nil {
		t.Error("acquire while requesting must fail")
	}
	if _, err := e.Handle(&proto.Message{Kind: proto.KindGrant, Lock: testLock}); err == nil {
		t.Error("unexpected kind must fail")
	}
	if _, err := e.Handle(&proto.Message{Kind: proto.KindRequest, Lock: 9}); err == nil {
		t.Error("wrong lock must fail")
	}
	h.drain(nil)
	h.release(1)
	if h.engines[1].String() == "" {
		t.Error("String must render")
	}
}

func TestBinaryTreeHolder(t *testing.T) {
	want := map[proto.NodeID]proto.NodeID{0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 2, 7: 3}
	for id, parent := range want {
		if got := raymond.BinaryTreeHolder(id); got != parent {
			t.Errorf("parent(%d) = %d, want %d", id, got, parent)
		}
	}
}

func TestFuzz(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 3 + rng.Intn(12)
			h := newHarness(t, n)
			for step := 0; step < 2500; step++ {
				var pairs [][2]proto.NodeID
				for k, q := range h.queues {
					if len(q) > 0 {
						pairs = append(pairs, k)
					}
				}
				if len(pairs) > 0 && rng.Intn(100) < 60 {
					k := pairs[rng.Intn(len(pairs))]
					msg := h.queues[k][0]
					h.queues[k] = h.queues[k][1:]
					out, err := h.engines[msg.To].Handle(&msg)
					if err != nil {
						t.Fatalf("handle: %v", err)
					}
					h.absorb(msg.To, out)
					continue
				}
				id := proto.NodeID(rng.Intn(n))
				e := h.engines[id]
				switch {
				case e.Held() && rng.Intn(100) < 70:
					h.release(int(id))
				case !e.Held() && !e.Requesting() && rng.Intn(100) < 60:
					h.acquire(int(id))
				}
			}
			for round := 0; round < 10*n+100; round++ {
				h.drain(rng)
				done := true
				for id, e := range h.engines {
					if e.Held() {
						h.release(int(id))
						done = false
					}
				}
				if done && len(h.waiting) == 0 {
					break
				}
			}
			if len(h.waiting) > 0 {
				for _, e := range h.engines {
					t.Logf("%v", e)
				}
				t.Fatalf("starved: %v", h.waiting)
			}
			if h.tokens() != 1 {
				t.Fatalf("tokens = %d", h.tokens())
			}
		})
	}
}
