package introspect

import (
	"sort"
	"strconv"

	"hierlock/internal/modes"
)

// WaitEdge is one arc of the cluster-wide wait-for graph: Waiter has an
// outstanding request on Lock that conflicts with the mode Holder
// currently holds, so Waiter cannot proceed until Holder releases.
type WaitEdge struct {
	Waiter int    `json:"waiter"`
	Holder int    `json:"holder"`
	Lock   uint64 `json:"lock"`
	// Resource is the lock's name when any fetched inventory knows it.
	Resource string `json:"resource,omitempty"`
	// Wants and Holds are the conflicting modes.
	Wants string `json:"wants"`
	Holds string `json:"holds"`
	// WaitNS is the waiter's outstanding time, when its node stamped it.
	WaitNS int64 `json:"wait_ns,omitempty"`
}

// WaitFor is the cluster-wide waits-for relation and its cycles. A
// non-empty Cycles is a distributed deadlock: every node on the cycle
// waits (transitively) on itself, and no protocol message will ever
// break it — exactly what unordered multi-resource acquisition produces
// and ordered acquisition provably cannot.
type WaitFor struct {
	Edges []WaitEdge `json:"edges,omitempty"`
	// Cycles lists each deadlock cycle once as its node sequence,
	// rotated so the smallest node leads.
	Cycles [][]int `json:"cycles,omitempty"`
}

// Deadlocked reports whether the graph contains any cycle.
func (w WaitFor) Deadlocked() bool { return len(w.Cycles) > 0 }

// BuildWaitFor derives the waits-for relation from merged inventories:
// for every node with an outstanding request on a lock (a local waiter,
// or an engine-level pending mode), an edge points at every other node
// whose held mode on that lock conflicts with the requested mode. The
// relation is conservative in the same way the paper's queues are: a
// waiter behind a compatible holder (no edge) is waiting on the token's
// travel, not on a release.
func BuildWaitFor(nodes []NodeInventory) WaitFor {
	type holderInfo struct {
		node int
		mode modes.Mode
	}
	holders := make(map[uint64][]holderInfo)
	resources := make(map[uint64]string)
	for _, n := range nodes {
		for _, l := range n.Locks {
			if l.Resource != "" {
				resources[l.Lock] = l.Resource
			}
			if m := parseMode(l.Held); m != modes.None {
				holders[l.Lock] = append(holders[l.Lock], holderInfo{n.Node, m})
			}
		}
	}

	var w WaitFor
	adj := make(map[int]map[int]bool)
	for _, n := range nodes {
		for _, l := range n.Locks {
			want := parseMode(l.Pending)
			var waitNS int64
			if l.Waiter != nil {
				waitNS = l.Waiter.WaitNS
				if want == modes.None {
					want = parseMode(l.Waiter.Mode)
				}
			}
			if want == modes.None {
				continue
			}
			for _, h := range holders[l.Lock] {
				if h.node == n.Node || modes.Compatible(want, h.mode) {
					continue
				}
				w.Edges = append(w.Edges, WaitEdge{
					Waiter:   n.Node,
					Holder:   h.node,
					Lock:     l.Lock,
					Resource: resources[l.Lock],
					Wants:    want.String(),
					Holds:    h.mode.String(),
					WaitNS:   waitNS,
				})
				if adj[n.Node] == nil {
					adj[n.Node] = make(map[int]bool)
				}
				adj[n.Node][h.node] = true
			}
		}
	}
	sort.Slice(w.Edges, func(i, j int) bool {
		a, b := w.Edges[i], w.Edges[j]
		if a.Waiter != b.Waiter {
			return a.Waiter < b.Waiter
		}
		if a.Holder != b.Holder {
			return a.Holder < b.Holder
		}
		return a.Lock < b.Lock
	})
	w.Cycles = findCycles(adj)
	return w
}

// parseMode is modes.Parse tolerant of the inventory's "" encoding.
func parseMode(s string) modes.Mode {
	m, err := modes.Parse(s)
	if err != nil {
		return modes.None
	}
	return m
}

// findCycles enumerates the distinct simple cycles of the waits-for
// adjacency by DFS, canonicalizing each (rotated so the smallest node
// leads) so a cycle discovered from several entry points reports once.
func findCycles(adj map[int]map[int]bool) [][]int {
	starts := make([]int, 0, len(adj))
	for n := range adj {
		starts = append(starts, n)
	}
	sort.Ints(starts)

	var (
		cycles [][]int
		seen   = make(map[string]bool)
		path   []int
		onPath = make(map[int]int) // node → index in path
	)
	var dfs func(n int)
	dfs = func(n int) {
		onPath[n] = len(path)
		path = append(path, n)
		next := make([]int, 0, len(adj[n]))
		for t := range adj[n] {
			next = append(next, t)
		}
		sort.Ints(next)
		for _, t := range next {
			if at, ok := onPath[t]; ok {
				cycles = appendCycle(cycles, seen, path[at:])
				continue
			}
			dfs(t)
		}
		path = path[:len(path)-1]
		delete(onPath, n)
	}
	for _, n := range starts {
		dfs(n)
	}
	return cycles
}

// appendCycle canonicalizes and deduplicates one discovered cycle.
func appendCycle(cycles [][]int, seen map[string]bool, cyc []int) [][]int {
	min := 0
	for i, n := range cyc {
		if n < cyc[min] {
			min = i
		}
	}
	canon := make([]int, 0, len(cyc))
	canon = append(canon, cyc[min:]...)
	canon = append(canon, cyc[:min]...)
	key := ""
	for _, n := range canon {
		key += "," + strconv.Itoa(n)
	}
	if seen[key] {
		return cycles
	}
	seen[key] = true
	return append(cycles, canon)
}
