package introspect

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// lockName labels a lock for humans: the resource name when known,
// with the numeric ID alongside.
func lockName(lock uint64, resource string) string {
	if resource != "" {
		return fmt.Sprintf("%s (%d)", resource, lock)
	}
	return fmt.Sprintf("lock %d", lock)
}

func waitString(ns int64) string {
	if ns <= 0 {
		return ""
	}
	return " waiting " + time.Duration(ns).Truncate(time.Millisecond).String()
}

// FormatNode renders one node's inventory as the single-node `lockctl
// locks` report.
func FormatNode(inv NodeInventory) string {
	var b strings.Builder
	fmt.Fprintf(&b, "node %d: %d tracked locks\n", inv.Node, len(inv.Locks))
	for _, l := range inv.Locks {
		fmt.Fprintf(&b, "  %s epoch %d", lockName(l.Lock, l.Resource), l.Epoch)
		if l.Token {
			b.WriteString(" TOKEN")
		} else {
			fmt.Fprintf(&b, " parent→%d", l.Parent)
		}
		if l.Held != "" {
			fmt.Fprintf(&b, " held=%s", l.Held)
		}
		if l.Pending != "" {
			fmt.Fprintf(&b, " pending=%s", l.Pending)
		}
		if len(l.Frozen) > 0 {
			fmt.Fprintf(&b, " frozen={%s}", strings.Join(l.Frozen, ","))
		}
		if l.StaleDrops > 0 {
			fmt.Fprintf(&b, " stale_drops=%d", l.StaleDrops)
		}
		b.WriteByte('\n')
		if len(l.Copyset) > 0 {
			parts := make([]string, len(l.Copyset))
			for i, c := range l.Copyset {
				parts[i] = fmt.Sprintf("%d:%s", c.Node, c.Mode)
			}
			fmt.Fprintf(&b, "    copyset: %s\n", strings.Join(parts, " "))
		}
		for i, q := range l.Queue {
			fmt.Fprintf(&b, "    queue[%d]: node %d wants %s ts=%d", i, q.Origin, q.Mode, q.TS)
			if q.Priority > 0 {
				fmt.Fprintf(&b, " pri=%d", q.Priority)
			}
			if q.Trace != "" {
				fmt.Fprintf(&b, " trace=%s", q.Trace)
			}
			b.WriteString(waitString(q.WaitNS))
			b.WriteByte('\n')
		}
		if w := l.Waiter; w != nil {
			verb := "wants"
			if w.Upgrade {
				verb = "upgrading to"
			}
			fmt.Fprintf(&b, "    waiter: %s %s", verb, w.Mode)
			if w.Trace != "" {
				fmt.Fprintf(&b, " trace=%s", w.Trace)
			}
			b.WriteString(waitString(w.WaitNS))
			b.WriteByte('\n')
		}
	}
	b.WriteString(FormatSessions(inv.Sessions))
	return b.String()
}

// FormatSessions renders a node's named client sessions ("" when there
// are none, keeping session-free reports unchanged).
func FormatSessions(sessions []SessionInfo) string {
	if len(sessions) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d sessions\n", len(sessions))
	for _, s := range sessions {
		state := "detached"
		if s.Attached {
			state = "attached"
		}
		fmt.Fprintf(&b, "  session %s %s ttl=%s expires_in=%s locks=%d\n",
			s.Name, state,
			time.Duration(s.TTLMillis)*time.Millisecond,
			time.Duration(s.ExpiresInMillis)*time.Millisecond,
			len(s.Locks))
		for _, l := range s.Locks {
			fmt.Fprintf(&b, "    %s", l.Key)
			if l.Mode != "" {
				fmt.Fprintf(&b, "=%s", l.Mode)
			}
			if l.Fence != "" {
				fmt.Fprintf(&b, "@%s", l.Fence)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// lockRow is the cluster view of one lock, assembled across nodes.
type lockRow struct {
	lock     uint64
	resource string
	epoch    uint32
	token    int // node holding the token, -1 if unseen
	holders  []string
	queued   int
	waiters  []string
	maxWait  int64
}

func clusterRows(c Cluster) []lockRow {
	rows := make(map[uint64]*lockRow)
	for _, n := range c.Nodes {
		for _, l := range n.Locks {
			r := rows[l.Lock]
			if r == nil {
				r = &lockRow{lock: l.Lock, token: -1}
				rows[l.Lock] = r
			}
			if l.Resource != "" {
				r.resource = l.Resource
			}
			if l.Epoch > r.epoch {
				r.epoch = l.Epoch
			}
			if l.Token {
				r.token = n.Node
			}
			if l.Held != "" {
				r.holders = append(r.holders, fmt.Sprintf("%d:%s", n.Node, l.Held))
			}
			r.queued += len(l.Queue)
			if w := l.Waiter; w != nil {
				r.waiters = append(r.waiters, fmt.Sprintf("%d:%s", n.Node, w.Mode))
				if w.WaitNS > r.maxWait {
					r.maxWait = w.WaitNS
				}
			} else if l.Pending != "" {
				r.waiters = append(r.waiters, fmt.Sprintf("%d:%s", n.Node, l.Pending))
			}
		}
	}
	out := make([]lockRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lock < out[j].lock })
	return out
}

// FormatCluster renders the merged cluster view: one block per lock,
// then the wait-for graph with any deadlock cycles flagged.
func FormatCluster(c Cluster) string {
	var b strings.Builder
	rows := clusterRows(c)
	fmt.Fprintf(&b, "%d nodes, %d locks\n", len(c.Nodes), len(rows))
	for _, r := range rows {
		fmt.Fprintf(&b, "  %s epoch %d", lockName(r.lock, r.resource), r.epoch)
		if r.token >= 0 {
			fmt.Fprintf(&b, " token@%d", r.token)
		} else {
			b.WriteString(" token unseen")
		}
		if len(r.holders) > 0 {
			fmt.Fprintf(&b, " held %s", strings.Join(r.holders, " "))
		}
		if len(r.waiters) > 0 {
			fmt.Fprintf(&b, " waiting %s", strings.Join(r.waiters, " "))
		}
		if r.queued > 0 {
			fmt.Fprintf(&b, " queued %d", r.queued)
		}
		b.WriteByte('\n')
	}
	b.WriteString(FormatWaitFor(c.WaitFor))
	if len(c.Errors) > 0 {
		peers := make([]string, 0, len(c.Errors))
		for p := range c.Errors {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		for _, p := range peers {
			fmt.Fprintf(&b, "warning: %s unreachable: %s (partial view)\n", p, c.Errors[p])
		}
	}
	return b.String()
}

// FormatWaitFor renders the waits-for relation and its verdict.
func FormatWaitFor(w WaitFor) string {
	var b strings.Builder
	if len(w.Edges) == 0 {
		b.WriteString("wait-for graph: empty\n")
		return b.String()
	}
	fmt.Fprintf(&b, "wait-for graph: %d edges\n", len(w.Edges))
	for _, e := range w.Edges {
		fmt.Fprintf(&b, "  node %d (wants %s) -> node %d (holds %s) on %s%s\n",
			e.Waiter, e.Wants, e.Holder, e.Holds, lockName(e.Lock, e.Resource), waitString(e.WaitNS))
	}
	if len(w.Cycles) == 0 {
		b.WriteString("no deadlock cycles\n")
		return b.String()
	}
	for _, cyc := range w.Cycles {
		parts := make([]string, 0, len(cyc)+1)
		for _, n := range cyc {
			parts = append(parts, fmt.Sprintf("%d", n))
		}
		parts = append(parts, fmt.Sprintf("%d", cyc[0]))
		fmt.Fprintf(&b, "DEADLOCK: %s\n", strings.Join(parts, " -> "))
	}
	return b.String()
}

// FormatDumpEvent renders one flight-recorder event as a log line, for
// `lockctl blackbox`.
func FormatDumpEvent(e DumpEvent) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s #%d %-11s node=%d", e.At, e.Seq, e.Type, e.Node)
	if e.Lock != 0 {
		fmt.Fprintf(&b, " lock=%d", e.Lock)
	}
	if e.Mode != "" {
		fmt.Fprintf(&b, " mode=%s", e.Mode)
	}
	if e.Kind != "" {
		fmt.Fprintf(&b, " %s %d→%d", e.Kind, e.From, e.To)
	}
	if e.Epoch != 0 {
		fmt.Fprintf(&b, " epoch=%d", e.Epoch)
	}
	if e.Trace != "" {
		fmt.Fprintf(&b, " trace=%s", e.Trace)
	}
	if e.DurNS > 0 {
		fmt.Fprintf(&b, " dur=%s", time.Duration(e.DurNS).Truncate(time.Microsecond))
	}
	if e.N > 0 {
		fmt.Fprintf(&b, " n=%d", e.N)
	}
	return b.String()
}

// FormatTop renders the cluster view as a contention leaderboard:
// locks sorted by (waiters+queued, max wait) descending, the `lockctl
// top` output. n > 0 limits the rows.
func FormatTop(c Cluster, n int) string {
	rows := clusterRows(c)
	sort.Slice(rows, func(i, j int) bool {
		ci := len(rows[i].waiters) + rows[i].queued
		cj := len(rows[j].waiters) + rows[j].queued
		if ci != cj {
			return ci > cj
		}
		if rows[i].maxWait != rows[j].maxWait {
			return rows[i].maxWait > rows[j].maxWait
		}
		return rows[i].lock < rows[j].lock
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %6s %6s %-16s %7s %7s %10s\n",
		"RESOURCE", "LOCK", "TOKEN", "HOLDERS", "QUEUED", "WAITERS", "MAX-WAIT")
	for _, r := range rows {
		res := r.resource
		if res == "" {
			res = "-"
		}
		token := "-"
		if r.token >= 0 {
			token = fmt.Sprintf("%d", r.token)
		}
		holders := strings.Join(r.holders, ",")
		if holders == "" {
			holders = "-"
		}
		maxWait := "-"
		if r.maxWait > 0 {
			maxWait = time.Duration(r.maxWait).Truncate(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-28s %6d %6s %-16s %7d %7d %10s\n",
			res, r.lock, token, holders, r.queued, len(r.waiters), maxWait)
	}
	if w := c.WaitFor; w.Deadlocked() {
		fmt.Fprintf(&b, "%d deadlock cycle(s) — run `lockctl locks --cluster` for the wait-for graph\n", len(w.Cycles))
	}
	return b.String()
}
