package introspect_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hierlock/internal/introspect"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>, rewriting the file when
// -update is set.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// cycleFixture is the textbook unordered-acquisition deadlock as three
// merged inventories: node 0 holds "accounts" and waits on "billing",
// node 1 holds "billing" and waits on "ledger", node 2 holds "ledger"
// and waits on "accounts" — every wait conflicting (W vs W).
func cycleFixture() []introspect.NodeInventory {
	held := func(lock uint64, res string) introspect.LockInfo {
		return introspect.LockInfo{
			Lock: lock, Resource: res, Token: true, Held: "W", Parent: -1,
		}
	}
	wait := func(lock uint64, parent int, waitNS int64) introspect.LockInfo {
		return introspect.LockInfo{
			Lock: lock, Parent: parent,
			Waiter: &introspect.Waiter{Mode: "W", WaitNS: waitNS},
		}
	}
	return []introspect.NodeInventory{
		{Node: 0, Locks: []introspect.LockInfo{held(1, "accounts"), wait(2, 1, 1500e6)}},
		{Node: 1, Locks: []introspect.LockInfo{held(2, "billing"), wait(3, 2, 1200e6)}},
		{Node: 2, Locks: []introspect.LockInfo{held(3, "ledger"), wait(1, 0, 900e6)}},
	}
}

func TestBuildWaitForDetectsCycle(t *testing.T) {
	c := introspect.Merge(cycleFixture())
	w := c.WaitFor
	if len(w.Edges) != 3 {
		t.Fatalf("edges = %+v, want 3", w.Edges)
	}
	wantEdges := [][2]int{{0, 1}, {1, 2}, {2, 0}}
	for i, e := range w.Edges {
		if e.Waiter != wantEdges[i][0] || e.Holder != wantEdges[i][1] {
			t.Errorf("edge[%d] = %d->%d, want %d->%d", i, e.Waiter, e.Holder, wantEdges[i][0], wantEdges[i][1])
		}
		if e.Wants != "W" || e.Holds != "W" {
			t.Errorf("edge[%d] modes = wants %s holds %s, want W/W", i, e.Wants, e.Holds)
		}
	}
	if !w.Deadlocked() {
		t.Fatal("Deadlocked() = false, want true")
	}
	if len(w.Cycles) != 1 {
		t.Fatalf("cycles = %v, want exactly one", w.Cycles)
	}
	want := []int{0, 1, 2}
	got := w.Cycles[0]
	if len(got) != len(want) {
		t.Fatalf("cycle = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle = %v, want canonical %v (smallest node leads)", got, want)
		}
	}
}

// TestBuildWaitForCanonicalizesCycles checks a cycle reported from any
// DFS entry point collapses to one canonical rotation: the same fixture
// with node IDs permuted must still yield exactly one cycle.
func TestBuildWaitForCanonicalizesCycles(t *testing.T) {
	nodes := cycleFixture()
	// Renumber 0→5, 1→3, 2→4 so DFS start order differs from cycle order.
	renum := map[int]int{0: 5, 1: 3, 2: 4}
	for i := range nodes {
		nodes[i].Node = renum[nodes[i].Node]
	}
	w := introspect.Merge(nodes).WaitFor
	if len(w.Cycles) != 1 {
		t.Fatalf("cycles = %v, want exactly one after renumbering", w.Cycles)
	}
	if w.Cycles[0][0] != 3 {
		t.Fatalf("cycle = %v, want the smallest node (3) leading", w.Cycles[0])
	}
}

// TestBuildWaitForNoFalseEdges checks the conservative cases: compatible
// modes produce no edge, a node never waits on itself, and a waiter with
// no conflicting holder anywhere (token in flight) produces no edge.
func TestBuildWaitForNoFalseEdges(t *testing.T) {
	nodes := []introspect.NodeInventory{
		// Node 0 holds R; node 1 wants IR (compatible — token travel wait).
		{Node: 0, Locks: []introspect.LockInfo{
			{Lock: 1, Token: true, Held: "R", Parent: -1},
			// Node 0 also holds lock 2 AND has a pending upgrade on it:
			// must not generate a self-edge.
			{Lock: 2, Token: true, Held: "U", Pending: "W", Parent: -1},
		}},
		{Node: 1, Locks: []introspect.LockInfo{
			{Lock: 1, Parent: 0, Waiter: &introspect.Waiter{Mode: "IR", WaitNS: 10}},
			// Waiting on lock 3 which nobody holds.
			{Lock: 3, Parent: 0, Waiter: &introspect.Waiter{Mode: "W", WaitNS: 10}},
		}},
	}
	w := introspect.BuildWaitFor(nodes)
	if len(w.Edges) != 0 {
		t.Fatalf("edges = %+v, want none", w.Edges)
	}
	if w.Deadlocked() {
		t.Fatal("false deadlock")
	}
}

// TestBuildWaitForConflictEdgeNoCycle: plain contention (one waiter
// behind one conflicting holder) is an edge but never a deadlock.
func TestBuildWaitForConflictEdgeNoCycle(t *testing.T) {
	nodes := []introspect.NodeInventory{
		{Node: 0, Locks: []introspect.LockInfo{{Lock: 7, Token: true, Held: "W", Parent: -1}}},
		{Node: 1, Locks: []introspect.LockInfo{
			{Lock: 7, Parent: 0, Waiter: &introspect.Waiter{Mode: "R", WaitNS: 42}}}},
	}
	w := introspect.BuildWaitFor(nodes)
	if len(w.Edges) != 1 {
		t.Fatalf("edges = %+v, want one", w.Edges)
	}
	e := w.Edges[0]
	if e.Waiter != 1 || e.Holder != 0 || e.Lock != 7 || e.Wants != "R" || e.Holds != "W" || e.WaitNS != 42 {
		t.Fatalf("edge = %+v", e)
	}
	if w.Deadlocked() {
		t.Fatal("single edge reported as deadlock")
	}
}

func TestMergeSortsNodesAndLocks(t *testing.T) {
	c := introspect.Merge([]introspect.NodeInventory{
		{Node: 2, Locks: []introspect.LockInfo{{Lock: 9}, {Lock: 1}}},
		{Node: 0},
	})
	if len(c.Nodes) != 2 || c.Nodes[0].Node != 0 || c.Nodes[1].Node != 2 {
		t.Fatalf("nodes not sorted: %+v", c.Nodes)
	}
	if c.Nodes[1].Locks[0].Lock != 1 || c.Nodes[1].Locks[1].Lock != 9 {
		t.Fatalf("locks not sorted: %+v", c.Nodes[1].Locks)
	}
}

// TestQueueInfoPairsOwnWaiter checks the enqueue-stamp plumbing: the
// node's own queued request (matched by trace ID) carries the waiter's
// registration-stamped duration; remote requests carry none.
func TestQueueInfoPairsOwnWaiter(t *testing.T) {
	self := proto.NodeID(1)
	tr := proto.TraceID{Node: 1, Seq: 50}
	queue := []proto.Request{
		{Origin: 2, Mode: modes.W, TS: 10, Trace: proto.TraceID{Node: 2, Seq: 9}},
		{Origin: 1, Mode: modes.R, TS: 11, Trace: tr, Priority: 3},
	}
	waiter := &introspect.Waiter{Mode: "R", Trace: tr.String(), WaitNS: 777}
	qs := introspect.QueueInfo(queue, self, waiter)
	if len(qs) != 2 {
		t.Fatalf("queue = %+v", qs)
	}
	if qs[0].WaitNS != 0 {
		t.Errorf("remote request got a wait stamp: %+v", qs[0])
	}
	if qs[1].WaitNS != 777 {
		t.Errorf("own request missing wait stamp: %+v", qs[1])
	}
	if qs[1].Priority != 3 || qs[1].Trace != "n1.50" {
		t.Errorf("queue entry = %+v", qs[1])
	}
	// A stale waiter from a different trace (re-issued request) must not
	// attach to the wrong queue slot.
	qs = introspect.QueueInfo(queue, self, &introspect.Waiter{Mode: "R", Trace: "n1.99", WaitNS: 5})
	if qs[1].WaitNS != 0 {
		t.Errorf("mismatched trace still paired: %+v", qs[1])
	}
}

// richFixture exercises every rendered field for the format goldens.
func richFixture() introspect.NodeInventory {
	return introspect.NodeInventory{
		Node: 4,
		Locks: []introspect.LockInfo{
			{
				Lock: 11, Resource: "orders/eu", Epoch: 2, Token: true,
				Held: "U", Pending: "W", Parent: -1,
				Frozen:     []string{"R", "W"},
				StaleDrops: 3,
				Copyset: []introspect.CopysetEntry{
					{Node: 1, Mode: "IR"}, {Node: 2, Mode: "R"},
				},
				Queue: []introspect.QueuedRequest{
					{Origin: 2, Mode: "W", TS: 41, Trace: "n2.7"},
					{Origin: 4, Mode: "W", TS: 44, Priority: 9, Trace: "n4.12", WaitNS: 2500e6},
				},
				Waiter: &introspect.Waiter{Mode: "W", Trace: "n4.12", WaitNS: 2500e6, Upgrade: true},
			},
			{Lock: 12, Resource: "orders/us", Epoch: 0, Parent: 0, Held: "IR"},
		},
	}
}

func TestFormatNodeGolden(t *testing.T) {
	golden(t, "format_node.golden", []byte(introspect.FormatNode(richFixture())))
}

func TestFormatClusterGolden(t *testing.T) {
	c := introspect.Merge(cycleFixture())
	c.Errors = map[string]string{"10.0.0.9:7490": "connection refused"}
	golden(t, "format_cluster.golden", []byte(introspect.FormatCluster(c)))
}

func TestFormatTopGolden(t *testing.T) {
	nodes := cycleFixture()
	nodes = append(nodes, richFixture())
	c := introspect.Merge(nodes)
	golden(t, "format_top.golden", []byte(introspect.FormatTop(c, 3)))
}

func TestFormatWaitForRendersDeadlock(t *testing.T) {
	out := introspect.FormatWaitFor(introspect.Merge(cycleFixture()).WaitFor)
	want := "DEADLOCK: 0 -> 1 -> 2 -> 0\n"
	if !bytes.Contains([]byte(out), []byte(want)) {
		t.Fatalf("FormatWaitFor output missing %q:\n%s", want, out)
	}
}
