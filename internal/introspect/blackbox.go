package introspect

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
	"hierlock/internal/trace"
)

// EventType classifies a flight-recorder event.
type EventType uint8

// Flight-recorder event types.
const (
	// EvGrant: a client request was granted at this node.
	EvGrant EventType = iota + 1
	// EvTokenHop: the lock's token was sent or delivered (From→To).
	EvTokenHop
	// EvRecovery: a recovery-protocol message (Kind: probe, claim or
	// recovered) was sent or delivered.
	EvRecovery
	// EvRoundStart / EvRoundDone: a token-regeneration round this node
	// runs as regenerator began / completed (Dur: round duration).
	EvRoundStart
	EvRoundDone
	// EvFsyncStall: a journal fsync exceeded the stall threshold (Dur:
	// the fsync's latency).
	EvFsyncStall
	// EvEvict: an idle-lock eviction sweep removed N entries.
	EvEvict
	// EvLockLost: a recovery reseed demolished a client hold.
	EvLockLost
	// EvViolation: the protocol auditor flagged an invariant breach.
	EvViolation
)

// String names the event type for dumps.
func (t EventType) String() string {
	switch t {
	case EvGrant:
		return "grant"
	case EvTokenHop:
		return "token_hop"
	case EvRecovery:
		return "recovery"
	case EvRoundStart:
		return "round_start"
	case EvRoundDone:
		return "round_done"
	case EvFsyncStall:
		return "fsync_stall"
	case EvEvict:
		return "evict_sweep"
	case EvLockLost:
		return "lock_lost"
	case EvViolation:
		return "violation"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// Event is one flight-recorder entry. All fields are scalars so
// recording never allocates: the ring holds events by value and
// rendering to JSON happens only at dump time.
type Event struct {
	Seq   uint64
	Wall  int64 // wall-clock nanoseconds (time.Now().UnixNano())
	Type  EventType
	Node  proto.NodeID
	Lock  proto.LockID
	Mode  modes.Mode
	Kind  proto.Kind
	From  proto.NodeID
	To    proto.NodeID
	Epoch uint32
	Trace proto.TraceID
	Dur   time.Duration
	N     int
}

// Dump reasons (the blackbox_dumps_total label values and the dump
// file's reason field).
const (
	ReasonAuditViolation = "audit_violation"
	ReasonRecoveryRound  = "recovery_round"
	ReasonLockLost       = "lock_lost"
	// ReasonStall: the watchdog's verdict transitioned to stalled.
	ReasonStall  = "stall"
	ReasonManual = "manual"
)

// Reasons lists the dump triggers, for zero-pre-registration.
var Reasons = []string{ReasonAuditViolation, ReasonRecoveryRound, ReasonLockLost, ReasonStall, ReasonManual}

// Recorder is the black-box flight recorder: a bounded ring of
// structured protocol events that is always recording and dumps its
// contents to disk when something goes wrong (an audit violation, a
// recovery round, a lost lock), preserving the lead-up that the trace
// ring has usually rotated past by the time anyone looks.
//
// All methods are nil-safe: a member without a recorder attached pays
// only a nil check, keeping the hot path's zero-alloc guarantee when
// introspection is idle.
type Recorder struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	wrap  bool
	seq   uint64
	total uint64

	dir         string
	minInterval time.Duration
	lastDump    map[string]time.Time
	dumps       map[string]uint64
	dumpErr     error

	node proto.NodeID
}

// NewRecorder creates a flight recorder retaining the last size events
// (default 4096 when size <= 0) for one node.
func NewRecorder(node proto.NodeID, size int) *Recorder {
	if size <= 0 {
		size = 4096
	}
	r := &Recorder{
		ring:     make([]Event, size),
		lastDump: make(map[string]time.Time),
		dumps:    make(map[string]uint64),
		node:     node,
	}
	for _, reason := range Reasons {
		r.dumps[reason] = 0
	}
	return r
}

// EnableAutoDump arranges for TriggerDump to write dump files under
// dir, at most one per reason per minInterval (default 5s when <= 0).
// The directory is created if missing.
func (r *Recorder) EnableAutoDump(dir string, minInterval time.Duration) error {
	if r == nil {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if minInterval <= 0 {
		minInterval = 5 * time.Second
	}
	r.mu.Lock()
	r.dir = dir
	r.minInterval = minInterval
	r.mu.Unlock()
	return nil
}

// Record appends one event to the ring. Nil-safe; never allocates.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	e.Wall = time.Now().UnixNano()
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	r.total++
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.wrap = true
	}
	r.mu.Unlock()
}

// Tap adapts the recorder to the trace.Recorder tap signature,
// deriving flight-recorder events from the protocol trace stream:
// grants, token hops and recovery-message transitions. Everything else
// is filtered out before touching the ring.
func (r *Recorder) Tap(e trace.Entry) {
	if r == nil {
		return
	}
	switch e.Op {
	case trace.OpGranted:
		r.Record(Event{Type: EvGrant, Node: e.Node, Lock: e.Lock, Mode: e.Mode, Trace: e.Trace})
	case trace.OpSend, trace.OpDeliver:
		switch e.Kind {
		case proto.KindToken:
			r.Record(Event{Type: EvTokenHop, Node: e.Node, Lock: e.Lock,
				Kind: e.Kind, From: e.From, To: e.To, Epoch: e.Epoch})
		case proto.KindProbe, proto.KindClaim, proto.KindRecovered:
			r.Record(Event{Type: EvRecovery, Node: e.Node, Lock: e.Lock,
				Kind: e.Kind, From: e.From, To: e.To, Epoch: e.Epoch})
		}
	}
}

// DumpEvent is one event rendered for a dump file or the
// /debug/blackbox endpoint.
type DumpEvent struct {
	Seq   uint64 `json:"seq"`
	At    string `json:"at"`
	Type  string `json:"type"`
	Node  int    `json:"node"`
	Lock  uint64 `json:"lock,omitempty"`
	Mode  string `json:"mode,omitempty"`
	Kind  string `json:"kind,omitempty"`
	From  int    `json:"from,omitempty"`
	To    int    `json:"to,omitempty"`
	Epoch uint32 `json:"epoch,omitempty"`
	Trace string `json:"trace,omitempty"`
	DurNS int64  `json:"dur_ns,omitempty"`
	N     int    `json:"n,omitempty"`
}

func renderEvent(e Event) DumpEvent {
	d := DumpEvent{
		Seq:   e.Seq,
		At:    time.Unix(0, e.Wall).UTC().Format(time.RFC3339Nano),
		Type:  e.Type.String(),
		Node:  int(e.Node),
		Lock:  uint64(e.Lock),
		Mode:  modeString(e.Mode),
		From:  int(e.From),
		To:    int(e.To),
		Epoch: e.Epoch,
		DurNS: int64(e.Dur),
		N:     e.N,
	}
	if e.Type == EvTokenHop || e.Type == EvRecovery {
		d.Kind = e.Kind.String()
	}
	if !e.Trace.IsZero() {
		d.Trace = e.Trace.String()
	}
	return d
}

// Snapshot returns the retained events in recording order, newest last.
// n > 0 limits to the n most recent. Nil-safe.
func (r *Recorder) Snapshot(n int) []DumpEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var events []Event
	if r.wrap {
		events = append(events, r.ring[r.next:]...)
		events = append(events, r.ring[:r.next]...)
	} else {
		events = append(events, r.ring[:r.next]...)
	}
	r.mu.Unlock()
	if n > 0 && len(events) > n {
		events = events[len(events)-n:]
	}
	out := make([]DumpEvent, len(events))
	for i, e := range events {
		out[i] = renderEvent(e)
	}
	return out
}

// Stats is a snapshot of the recorder's counters.
type Stats struct {
	// Events counts events recorded since start (the ring retains the
	// most recent len(ring) of them).
	Events uint64
	// Dumps counts dump files written, by reason. Every known reason is
	// present (zero included) so metric pre-registration is complete.
	Dumps map[string]uint64
	// LastErr is the most recent dump-write failure, if any.
	LastErr error
}

// Stats returns the recorder's counters. Nil-safe.
func (r *Recorder) Stats() Stats {
	st := Stats{Dumps: make(map[string]uint64, len(Reasons))}
	for _, reason := range Reasons {
		st.Dumps[reason] = 0
	}
	if r == nil {
		return st
	}
	r.mu.Lock()
	st.Events = r.total
	for reason, n := range r.dumps {
		st.Dumps[reason] = n
	}
	st.LastErr = r.dumpErr
	r.mu.Unlock()
	return st
}

// Dump is the JSON document a dump file holds.
type Dump struct {
	Node     int         `json:"node"`
	Reason   string      `json:"reason"`
	DumpedAt string      `json:"dumped_at"`
	Events   []DumpEvent `json:"events"`
}

// TriggerDump writes the ring's current contents to a dump file under
// the auto-dump directory, rate-limited per reason. Returns the file
// path, or "" when suppressed (no directory configured, or within the
// per-reason interval). Nil-safe. The write happens inline — dumps
// fire on exceptional paths (violations, recovery, lost locks), never
// on the grant hot path.
func (r *Recorder) TriggerDump(reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	now := time.Now()
	r.mu.Lock()
	if r.dir == "" || (r.minInterval > 0 && now.Sub(r.lastDump[reason]) < r.minInterval) {
		r.mu.Unlock()
		return "", nil
	}
	r.lastDump[reason] = now
	dir := r.dir
	r.mu.Unlock()

	d := Dump{
		Node:     int(r.node),
		Reason:   reason,
		DumpedAt: now.UTC().Format(time.RFC3339Nano),
		Events:   r.Snapshot(0),
	}
	name := fmt.Sprintf("%d-%s.json", now.UnixNano(), reason)
	path := filepath.Join(dir, name)
	data, err := json.MarshalIndent(d, "", "  ")
	if err == nil {
		err = os.WriteFile(path, data, 0o644)
	}
	r.mu.Lock()
	if err != nil {
		r.dumpErr = err
	} else {
		r.dumps[reason]++
	}
	r.mu.Unlock()
	if err != nil {
		return "", err
	}
	return path, nil
}

// DumpFile describes one dump on disk.
type DumpFile struct {
	Name  string `json:"name"`
	Size  int64  `json:"size"`
	MTime string `json:"mtime"`
}

// ListDumps enumerates the dump files under dir, oldest first. A
// missing directory is an empty list, not an error.
func ListDumps(dir string) ([]DumpFile, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []DumpFile
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, DumpFile{
			Name:  e.Name(),
			Size:  info.Size(),
			MTime: info.ModTime().UTC().Format(time.RFC3339),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ReadDump loads one dump file by name. The name must be a bare file
// name from ListDumps — path separators are rejected so an HTTP
// retrieval endpoint can pass client input through safely.
func ReadDump(dir, name string) (Dump, error) {
	var d Dump
	if name != filepath.Base(name) || name == "." || name == "" {
		return d, fmt.Errorf("introspect: bad dump name %q", name)
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("introspect: dump %s: %w", name, err)
	}
	return d, nil
}
