// Package introspect is the cluster's lock-state observability surface:
// per-node lock inventories (who holds what, who is queued where, where
// the token is headed), their cluster-wide merge with a wait-for graph
// and distributed-deadlock flags, and a black-box flight recorder that
// preserves the last protocol events around a failure.
//
// The inventory answers the question the hierarchical model makes
// hardest operationally: a lock's state is spread over the token node
// (queue, copyset, frozen modes), the copyset members (held modes) and
// the probable-owner chain (everyone else's parent pointer). One node's
// /debug/locks dump shows its shard of that state; Merge assembles the
// shards into the cluster truth, and BuildWaitFor turns it into the
// waits-for relation whose cycles are distributed deadlocks (Naimi &
// Thiaré motivate exactly this reasoning for path-reversal protocols).
package introspect

import (
	"sort"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// CopysetEntry is one child of a token node: a node holding a granted
// copy in some mode.
type CopysetEntry struct {
	Node int    `json:"node"`
	Mode string `json:"mode"`
}

// QueuedRequest is one request parked in a node's local queue, waiting
// for the lock to become compatible (the paper's Rule 4 queues).
type QueuedRequest struct {
	// Origin is the node that issued the request.
	Origin int `json:"origin"`
	// Mode is the requested mode.
	Mode string `json:"mode"`
	// TS is the request's Lamport timestamp (queue arbitration order).
	TS uint64 `json:"ts"`
	// Priority is the client-assigned priority class (0 = default FIFO).
	Priority uint8 `json:"priority,omitempty"`
	// Trace is the request's causal trace ID (feed it to lockctl trace).
	Trace string `json:"trace,omitempty"`
	// WaitNS is how long the request has been outstanding, when the
	// queueing node can know it (its own request, matched to the local
	// waiter slot's registration stamp). 0 for remote requests: their
	// enqueue wall time is not carried on the wire.
	WaitNS int64 `json:"wait_ns,omitempty"`
}

// Waiter is a node's own outstanding client request on a lock.
type Waiter struct {
	// Mode is the requested mode (W for upgrades).
	Mode string `json:"mode"`
	// Trace is the request's causal trace ID.
	Trace string `json:"trace,omitempty"`
	// WaitNS is the time since the waiter registered, from the enqueue
	// stamp taken once at registration (not derived at dump time).
	WaitNS int64 `json:"wait_ns"`
	// Upgrade marks a U→W upgrade rather than a fresh acquisition.
	Upgrade bool `json:"upgrade,omitempty"`
}

// LockInfo is one lock's protocol state at one node.
type LockInfo struct {
	Lock uint64 `json:"lock"`
	// Resource is the client-visible resource name, when this node has
	// seen it ("" for locks only remote messages have touched).
	Resource string `json:"resource,omitempty"`
	// Epoch is the lock's recovery epoch at this node (0 = initial world).
	Epoch uint32 `json:"epoch"`
	// Token reports whether this node holds the lock's token.
	Token bool `json:"token"`
	// Held is the mode this node currently holds ("" = none).
	Held string `json:"held,omitempty"`
	// Pending is this node's outstanding request mode ("" = none).
	Pending string `json:"pending,omitempty"`
	// Frozen lists the modes frozen at this node (Rule 6 starvation
	// control), strongest last.
	Frozen []string `json:"frozen,omitempty"`
	// Parent is the probable-owner next hop: where this node forwards
	// requests it cannot serve. -1 when this node is the token root.
	Parent int `json:"parent"`
	// Copyset lists the children holding granted copies (token node
	// only), sorted by node.
	Copyset []CopysetEntry `json:"copyset,omitempty"`
	// Queue is the node's local request queue, in queue order.
	Queue []QueuedRequest `json:"queue,omitempty"`
	// Waiter is this node's own outstanding client request, if any.
	Waiter *Waiter `json:"waiter,omitempty"`
	// StaleDrops counts epoch-fenced messages dropped on this lock.
	StaleDrops uint64 `json:"stale_drops,omitempty"`
}

// SessionLock is one lock held by a client session, as recorded by the
// lockd session tier.
type SessionLock struct {
	// Key is the session-scoped name: the resource for plain locks,
	// "path:<segments>" for path locks, "set:<resources>" for sets.
	Key string `json:"key"`
	// Mode is the granted mode ("" for sets).
	Mode string `json:"mode,omitempty"`
	// Fence is the grant's fencing token "<epoch>.<seq>" ("" when not
	// applicable).
	Fence string `json:"fence,omitempty"`
}

// SessionInfo is one named client session on a lockd: its lease state
// and the locks it holds.
type SessionInfo struct {
	Name string `json:"name"`
	// Attached reports a live client connection; a detached session's
	// lease keeps ticking until re-adoption or expiry.
	Attached bool `json:"attached,omitempty"`
	// TTLMillis is the lease TTL; ExpiresInMillis the remaining lease
	// at dump time (negative = expiry pending the next sweep).
	TTLMillis       int64         `json:"ttl_ms,omitempty"`
	ExpiresInMillis int64         `json:"expires_in_ms,omitempty"`
	Locks           []SessionLock `json:"locks,omitempty"`
}

// NodeInventory is one node's full lock inventory, the payload of
// /debug/locks (and the simulator's equivalent).
type NodeInventory struct {
	Node  int        `json:"node"`
	Locks []LockInfo `json:"locks"`
	// Sessions lists the node's named client sessions (lockd only;
	// empty for raw members and the simulator).
	Sessions []SessionInfo `json:"sessions,omitempty"`
}

// Sort orders the inventory by lock ID (resource name as tiebreaker for
// deterministic output; IDs are unique in practice).
func (inv *NodeInventory) Sort() {
	sort.Slice(inv.Locks, func(i, j int) bool {
		if inv.Locks[i].Lock != inv.Locks[j].Lock {
			return inv.Locks[i].Lock < inv.Locks[j].Lock
		}
		return inv.Locks[i].Resource < inv.Locks[j].Resource
	})
}

// Cluster is the merged cluster-wide view: every fetched node's
// inventory plus the wait-for graph derived from them. Errors maps
// unreachable peers to their fetch errors (a partial merge is still a
// useful report; cycle detection then only sees the fetched shard).
type Cluster struct {
	Nodes   []NodeInventory   `json:"nodes"`
	WaitFor WaitFor           `json:"wait_for"`
	Errors  map[string]string `json:"errors,omitempty"`
}

// Merge assembles per-node inventories into the cluster view: nodes
// sorted by ID, each inventory sorted by lock, and the wait-for graph
// built across them.
func Merge(nodes []NodeInventory) Cluster {
	out := Cluster{Nodes: append([]NodeInventory(nil), nodes...)}
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].Node < out.Nodes[j].Node })
	for i := range out.Nodes {
		out.Nodes[i].Sort()
	}
	out.WaitFor = BuildWaitFor(out.Nodes)
	return out
}

// modeString renders a mode for inventory JSON: "" for None (omitted),
// the paper's name otherwise.
func modeString(m modes.Mode) string {
	if m == modes.None {
		return ""
	}
	return m.String()
}

// ModeString is modeString for inventory builders outside this package
// (the member runtime and the simulator).
func ModeString(m modes.Mode) string { return modeString(m) }

// ParentInt renders a probable-owner next hop for inventory JSON: -1
// for proto.NoNode (this node is the root).
func ParentInt(n proto.NodeID) int { return int(n) }

// FrozenStrings renders a frozen-mode set for inventory JSON.
func FrozenStrings(s modes.Set) []string {
	ms := s.Modes()
	if len(ms) == 0 {
		return nil
	}
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	return out
}

// QueueInfo converts an engine queue snapshot for inventory JSON. self
// and waiter, when the queueing node knows its own waiter slot, attach
// the registration-stamped wait duration to the node's own queued
// request (the trace IDs must match, so a re-issued request after a
// recovery reseed still pairs correctly).
func QueueInfo(queue []proto.Request, self proto.NodeID, waiter *Waiter) []QueuedRequest {
	if len(queue) == 0 {
		return nil
	}
	out := make([]QueuedRequest, len(queue))
	for i, r := range queue {
		q := QueuedRequest{
			Origin:   int(r.Origin),
			Mode:     modeString(r.Mode),
			TS:       uint64(r.TS),
			Priority: r.Priority,
		}
		if !r.Trace.IsZero() {
			q.Trace = r.Trace.String()
		}
		if waiter != nil && r.Origin == self && q.Trace == waiter.Trace {
			q.WaitNS = waiter.WaitNS
		}
		out[i] = q
	}
	return out
}
