package introspect_test

import (
	"os"
	"strings"
	"testing"
	"time"

	"hierlock/internal/audit"
	"hierlock/internal/introspect"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
	"hierlock/internal/trace"
)

func TestRecorderRingWraps(t *testing.T) {
	r := introspect.NewRecorder(1, 4)
	for i := 1; i <= 6; i++ {
		r.Record(introspect.Event{Type: introspect.EvGrant, Node: 1, Lock: proto.LockID(i)})
	}
	evs := r.Snapshot(0)
	if len(evs) != 4 {
		t.Fatalf("snapshot = %d events, want ring size 4", len(evs))
	}
	// Oldest two rotated out; recording order preserved, newest last.
	for i, e := range evs {
		if want := uint64(i + 3); e.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if evs[0].Lock != 3 || evs[3].Lock != 6 {
		t.Fatalf("snapshot locks = %d..%d, want 3..6", evs[0].Lock, evs[3].Lock)
	}
	// n limits to the most recent.
	last := r.Snapshot(2)
	if len(last) != 2 || last[1].Seq != 6 {
		t.Fatalf("Snapshot(2) = %+v", last)
	}
	if st := r.Stats(); st.Events != 6 {
		t.Fatalf("Stats.Events = %d, want 6", st.Events)
	}
}

func TestTapFiltersTraceStream(t *testing.T) {
	r := introspect.NewRecorder(2, 16)
	r.Tap(trace.Entry{Op: trace.OpGranted, Node: 2, Lock: 7, Mode: modes.W,
		Trace: proto.TraceID{Node: 2, Seq: 1}})
	r.Tap(trace.Entry{Op: trace.OpSend, Node: 0, Kind: proto.KindToken,
		Lock: 7, From: 0, To: 2, Epoch: 1})
	r.Tap(trace.Entry{Op: trace.OpDeliver, Node: 2, Kind: proto.KindProbe,
		Lock: 7, From: 1, To: 2, Epoch: 2})
	// Uninteresting ops/kinds never touch the ring.
	r.Tap(trace.Entry{Op: trace.OpSend, Node: 0, Kind: proto.KindRequest, Lock: 7})
	r.Tap(trace.Entry{Op: trace.OpRelease, Node: 2, Lock: 7, Mode: modes.W})

	evs := r.Snapshot(0)
	if len(evs) != 3 {
		t.Fatalf("ring = %+v, want 3 events (grant, token_hop, recovery)", evs)
	}
	if evs[0].Type != "grant" || evs[0].Trace != "n2.1" || evs[0].Mode != "W" {
		t.Fatalf("grant event = %+v", evs[0])
	}
	if evs[1].Type != "token_hop" || evs[1].Kind != "token" || evs[1].From != 0 || evs[1].To != 2 {
		t.Fatalf("token hop event = %+v", evs[1])
	}
	if evs[2].Type != "recovery" || evs[2].Epoch != 2 {
		t.Fatalf("recovery event = %+v", evs[2])
	}
}

func TestTriggerDumpWritesAndRateLimits(t *testing.T) {
	dir := t.TempDir()
	r := introspect.NewRecorder(3, 8)
	if err := r.EnableAutoDump(dir, time.Hour); err != nil {
		t.Fatal(err)
	}
	r.Record(introspect.Event{Type: introspect.EvRoundDone, Node: 3, Lock: 9, Epoch: 2, Dur: time.Second})

	path, err := r.TriggerDump(introspect.ReasonRecoveryRound)
	if err != nil || path == "" {
		t.Fatalf("TriggerDump = %q, %v", path, err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("dump file missing: %v", err)
	}

	// Same reason within the interval: suppressed, not an error.
	again, err := r.TriggerDump(introspect.ReasonRecoveryRound)
	if err != nil || again != "" {
		t.Fatalf("rate-limited TriggerDump = %q, %v, want suppressed", again, err)
	}
	// A different reason has its own limiter.
	other, err := r.TriggerDump(introspect.ReasonManual)
	if err != nil || other == "" {
		t.Fatalf("other-reason TriggerDump = %q, %v", other, err)
	}

	st := r.Stats()
	if st.Dumps[introspect.ReasonRecoveryRound] != 1 || st.Dumps[introspect.ReasonManual] != 1 {
		t.Fatalf("dump counters = %v", st.Dumps)
	}
	// Every reason pre-registered, zeros included.
	for _, reason := range introspect.Reasons {
		if _, ok := st.Dumps[reason]; !ok {
			t.Fatalf("Stats.Dumps missing reason %q", reason)
		}
	}

	files, err := introspect.ListDumps(dir)
	if err != nil || len(files) != 2 {
		t.Fatalf("ListDumps = %+v, %v, want 2 files", files, err)
	}
	d, err := introspect.ReadDump(dir, files[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if d.Node != 3 || d.Reason != introspect.ReasonRecoveryRound {
		t.Fatalf("dump header = %+v", d)
	}
	if len(d.Events) != 1 || d.Events[0].Type != "round_done" || d.Events[0].DurNS != int64(time.Second) {
		t.Fatalf("dump events = %+v", d.Events)
	}
}

func TestTriggerDumpWithoutDirIsNoop(t *testing.T) {
	r := introspect.NewRecorder(0, 4)
	path, err := r.TriggerDump(introspect.ReasonLockLost)
	if err != nil || path != "" {
		t.Fatalf("TriggerDump with no dir = %q, %v, want suppressed", path, err)
	}
}

func TestReadDumpRejectsPathTraversal(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"../evil.json", "a/b.json", "", ".", "/etc/passwd"} {
		if _, err := introspect.ReadDump(dir, name); err == nil {
			t.Errorf("ReadDump(%q) accepted a non-bare name", name)
		}
	}
}

func TestListDumpsMissingDir(t *testing.T) {
	files, err := introspect.ListDumps("/nonexistent/blackbox")
	if err != nil || files != nil {
		t.Fatalf("ListDumps on missing dir = %+v, %v, want empty, nil", files, err)
	}
}

// TestRecorderZeroAlloc pins the PR's hot-path guarantee: recording an
// event allocates nothing — with a recorder attached or without one
// (every method is nil-safe, costing a single branch when introspection
// is off).
func TestRecorderZeroAlloc(t *testing.T) {
	ev := introspect.Event{Type: introspect.EvGrant, Node: 1, Lock: 7, Mode: modes.W}
	te := trace.Entry{Op: trace.OpGranted, Node: 1, Lock: 7, Mode: modes.W}

	var nilRec *introspect.Recorder
	if n := testing.AllocsPerRun(200, func() {
		nilRec.Record(ev)
		nilRec.Tap(te)
		nilRec.Snapshot(0)
	}); n != 0 {
		t.Fatalf("nil recorder allocates %.1f per op, want 0", n)
	}

	live := introspect.NewRecorder(1, 64)
	if n := testing.AllocsPerRun(200, func() {
		live.Record(ev)
		live.Tap(te)
	}); n != 0 {
		t.Fatalf("live recorder Record/Tap allocates %.1f per op, want 0", n)
	}
}

// TestAuditViolationTriggersDump wires the auditor's OnViolation hook to
// the flight recorder exactly as lockd does, forces a mutual-exclusion
// breach, and checks the black box lands a dump preserving the lead-up.
func TestAuditViolationTriggersDump(t *testing.T) {
	dir := t.TempDir()
	bb := introspect.NewRecorder(0, 32)
	if err := bb.EnableAutoDump(dir, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var dumpPath string
	var got audit.Violation
	a := audit.New(audit.Config{Root: 0, OnViolation: func(v audit.Violation) {
		got = v
		dumpPath, _ = bb.TriggerDump(introspect.ReasonAuditViolation)
	}})
	rec := trace.New(4)
	rec.SetTap(a.Record)
	rec.AddTap(bb.Tap)

	// Two conflicting W grants on one lock with no release between them.
	rec.Record(trace.Entry{Op: trace.OpGranted, Node: 0, Lock: 5, Mode: modes.W})
	rec.Record(trace.Entry{Op: trace.OpGranted, Node: 1, Lock: 5, Mode: modes.W})

	if a.Violations() == 0 {
		t.Fatal("auditor missed the double grant")
	}
	if got.Invariant != "mutual_exclusion" {
		t.Fatalf("violation = %+v, want mutual_exclusion", got)
	}
	if dumpPath == "" {
		t.Fatal("no dump written on violation")
	}
	if !strings.Contains(dumpPath, introspect.ReasonAuditViolation) {
		t.Fatalf("dump path %q missing reason", dumpPath)
	}
	d, err := introspect.ReadDump(dir, strings.TrimPrefix(dumpPath, dir+string(os.PathSeparator)))
	if err != nil {
		t.Fatal(err)
	}
	// The auditor's tap runs before the recorder's (lockd wires SetTap
	// then AddTap), so the dump preserves the lead-up to the violation:
	// the first grant, not the offending second one.
	if d.Reason != introspect.ReasonAuditViolation || len(d.Events) != 1 {
		t.Fatalf("dump = reason %q, %d events; want audit_violation with the lead-up grant", d.Reason, len(d.Events))
	}
	if d.Events[0].Type != "grant" || d.Events[0].Node != 0 {
		t.Fatalf("lead-up event = %+v", d.Events[0])
	}
	if st := bb.Stats(); st.Dumps[introspect.ReasonAuditViolation] != 1 {
		t.Fatalf("dump counter = %v", st.Dumps)
	}
}
