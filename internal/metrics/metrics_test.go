package metrics

import (
	"strings"
	"testing"
	"time"

	"hierlock/internal/proto"
)

func TestMessages(t *testing.T) {
	var m Messages
	m.Count(proto.KindRequest)
	m.Count(proto.KindRequest)
	m.Count(proto.KindToken)
	if m.ByKind[proto.KindRequest] != 2 || m.ByKind[proto.KindToken] != 1 {
		t.Fatalf("counts = %v", m.ByKind)
	}
	if m.Total() != 3 {
		t.Fatalf("total = %d", m.Total())
	}
	var other Messages
	other.Count(proto.KindGrant)
	m.Merge(&other)
	if m.Total() != 4 || m.ByKind[proto.KindGrant] != 1 {
		t.Fatal("merge failed")
	}
	m.Count(proto.Kind(200)) // out of range lands in the overflow bucket
	if m.Unknown != 1 || m.Total() != 5 {
		t.Fatalf("out-of-range kind must be counted as unknown: unknown=%d total=%d",
			m.Unknown, m.Total())
	}
}

// TestMessagesNeverUncounted proves no Kind value — the full uint8
// domain — is ever silently discarded: every Count call moves Total.
func TestMessagesNeverUncounted(t *testing.T) {
	var m Messages
	for k := 0; k < 256; k++ {
		before := m.Total()
		m.Count(proto.Kind(k))
		if m.Total() != before+1 {
			t.Fatalf("kind %d was not counted (total stayed %d)", k, before)
		}
	}
	if m.Total() != 256 {
		t.Fatalf("total = %d, want 256", m.Total())
	}
	if want := uint64(256 - len(m.ByKind)); m.Unknown != want {
		t.Fatalf("unknown = %d, want %d", m.Unknown, want)
	}
	var other Messages
	other.Count(proto.Kind(77))
	m.Merge(&other)
	if m.Unknown != uint64(256-len(m.ByKind))+1 {
		t.Fatalf("merge must carry the unknown bucket: %d", m.Unknown)
	}
}

func TestLatency(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.StdDev() != 0 || l.Factor(time.Second) != 0 {
		t.Fatal("empty latency must report zeros")
	}
	l.Observe(100 * time.Millisecond)
	l.Observe(300 * time.Millisecond)
	if l.Mean() != 200*time.Millisecond {
		t.Fatalf("mean = %v", l.Mean())
	}
	if l.Min != 100*time.Millisecond || l.Max != 300*time.Millisecond {
		t.Fatalf("min/max = %v/%v", l.Min, l.Max)
	}
	if got := l.Factor(100 * time.Millisecond); got < 1.99 || got > 2.01 {
		t.Fatalf("factor = %v", got)
	}
	// StdDev of {100,300} is 100ms.
	if sd := l.StdDev(); sd < 99*time.Millisecond || sd > 101*time.Millisecond {
		t.Fatalf("stddev = %v", sd)
	}

	var m Latency
	m.Observe(50 * time.Millisecond)
	l.Merge(&m)
	if l.Count != 3 || l.Min != 50*time.Millisecond {
		t.Fatalf("merge: %+v", l)
	}
	var empty Latency
	l.Merge(&empty)
	if l.Count != 3 {
		t.Fatal("merging empty must be a no-op")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Fig 5", "nodes")
	tb.Add(10, "ours", 2.5)
	tb.Add(10, "naimi", 3.5)
	tb.Add(5, "ours", 2.0)
	tb.Add(10, "ours", 2.6) // overwrite

	if cols := tb.Columns(); len(cols) != 2 || cols[0] != "ours" || cols[1] != "naimi" {
		t.Fatalf("columns = %v", cols)
	}
	if v, ok := tb.Value(10, "ours"); !ok || v != 2.6 {
		t.Fatalf("Value(10, ours) = %v %v", v, ok)
	}
	if _, ok := tb.Value(99, "ours"); ok {
		t.Fatal("missing x must report !ok")
	}
	if xs := tb.Xs(); len(xs) != 2 || xs[0] != 5 || xs[1] != 10 {
		t.Fatalf("Xs = %v", xs)
	}

	s := tb.String()
	if !strings.Contains(s, "# Fig 5") || !strings.Contains(s, "2.600") {
		t.Fatalf("render:\n%s", s)
	}
	// The missing naimi cell at x=5 renders as "-".
	if !strings.Contains(s, "-") {
		t.Fatalf("missing cell must render as dash:\n%s", s)
	}
	// Rows sorted by x: x=5 line appears before x=10 line.
	if strings.Index(s, "\n5") > strings.Index(s, "\n10") {
		t.Fatalf("rows not sorted:\n%s", s)
	}

	csv := tb.CSV()
	if !strings.HasPrefix(csv, "nodes,ours,naimi\n") {
		t.Fatalf("csv header:\n%s", csv)
	}
	if !strings.Contains(csv, "5,2.0000,\n") {
		t.Fatalf("csv body:\n%s", csv)
	}
}

func TestQuantiles(t *testing.T) {
	var l Latency
	if l.Quantile(0.99) != 0 {
		t.Fatal("empty quantile must be 0")
	}
	// 100 samples: 1ms … 100ms.
	for i := 1; i <= 100; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	// The histogram is exponential, so quantiles are upper bucket edges:
	// P50 ≈ 50ms → edge 2^16 µs = 65.536ms; P99 ≈ 99ms → 2^17 µs.
	if q := l.Quantile(0.5); q < 50*time.Millisecond || q > 65536*time.Microsecond {
		t.Errorf("P50 = %v", q)
	}
	if q := l.Quantile(0.99); q < 99*time.Millisecond || q > 131072*time.Microsecond {
		t.Errorf("P99 = %v", q)
	}
	if q := l.Quantile(1.0); q < l.Quantile(0.5) {
		t.Errorf("P100 (%v) < P50 (%v)", q, l.Quantile(0.5))
	}
	// Out-of-range q clamps instead of misbehaving.
	if l.Quantile(-1) == 0 || l.Quantile(2) == 0 {
		t.Error("clamped quantiles must be nonzero with samples")
	}

	// Merge preserves the histogram.
	var a, b Latency
	for i := 0; i < 50; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	a.Merge(&b)
	if q := a.Quantile(0.25); q > 2*time.Millisecond {
		t.Errorf("merged P25 = %v, want ≈1ms", q)
	}
	if q := a.Quantile(0.9); q < 500*time.Millisecond {
		t.Errorf("merged P90 = %v, want ≈1s", q)
	}
}

func TestQuantileExtremes(t *testing.T) {
	var l Latency
	l.Observe(0)              // below the first bucket edge
	l.Observe(10 * time.Hour) // beyond the last bounded bucket
	if q := l.Quantile(0.01); q > time.Microsecond {
		t.Errorf("tiny sample quantile = %v", q)
	}
	if q := l.Quantile(1.0); q != 10*time.Hour {
		t.Errorf("huge sample quantile = %v, want Max", q)
	}
}

func TestFaultsCounters(t *testing.T) {
	a := Faults{Drops: 3, Duplicates: 2, DelaySpikes: 1, Deferrals: 4}
	if a.Total() != 10 {
		t.Fatalf("total = %d", a.Total())
	}
	b := Faults{Drops: 1, Deferrals: 1}
	a.Merge(&b)
	if a.Drops != 4 || a.Deferrals != 5 || a.Total() != 12 {
		t.Fatalf("merge wrong: %+v", a)
	}
	if s := a.String(); s == "" {
		t.Fatal("empty string form")
	}
}

func TestLinkMerge(t *testing.T) {
	a := Link{Redials: 2, Retransmits: 3, DupsSuppressed: 1}
	a.Merge(&Link{Redials: 1, Retransmits: 1, DupsSuppressed: 1})
	if a.Redials != 3 || a.Retransmits != 4 || a.DupsSuppressed != 2 {
		t.Fatalf("merge wrong: %+v", a)
	}
}
