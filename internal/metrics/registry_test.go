package metrics

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"
)

// validateExposition checks Prometheus text-format invariants: every
// sample belongs to a family announced by exactly one HELP and one TYPE
// line appearing before its samples, histogram samples use only the
// _bucket/_sum/_count suffixes, and no series (name + label set) is
// emitted twice.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	help := make(map[string]int)
	typ := make(map[string]string)
	seenSeries := make(map[string]bool)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Errorf("HELP line without text: %q", line)
			}
			help[parts[0]]++
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("unknown TYPE %q in %q", parts[1], line)
			}
			if _, dup := typ[parts[0]]; dup {
				t.Errorf("duplicate TYPE line for %s", parts[0])
			}
			typ[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unexpected comment line: %q", line)
			continue
		}
		// Sample line: name{labels} value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		series := line[:sp]
		if seenSeries[series] {
			t.Errorf("duplicate series: %q", series)
		}
		seenSeries[series] = true
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) && typ[strings.TrimSuffix(name, suffix)] == "histogram" {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if _, ok := typ[base]; !ok {
			t.Errorf("sample %q has no TYPE line", line)
		}
		if help[base] == 0 {
			t.Errorf("sample %q has no HELP line", line)
		}
	}
	for name, n := range help {
		if n != 1 {
			t.Errorf("family %s has %d HELP lines", name, n)
		}
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h", nil)
	g := r.Gauge("x", "h", nil)
	h := r.Histogram("x_seconds", "h", nil, nil)
	r.Collect("y", "h", "gauge", func(emit func(Labels, float64)) {})

	// All handles are nil and all methods no-ops.
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Add(1)
	h.Observe(0.5)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles must read as zero")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry must write nothing: %q %v", sb.String(), err)
	}
}

func TestDisabledHandlesAllocateNothing(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(1)
		h.Observe(0.25)
	}); n != 0 {
		t.Fatalf("nil metric handles allocated %.1f times per op", n)
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hl_test_total", "test counter", Labels{"kind": "request"})
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Same name+labels returns the same series.
	if r.Counter("hl_test_total", "test counter", Labels{"kind": "request"}) != c {
		t.Fatal("lookup must return the existing series")
	}

	g := r.Gauge("hl_depth", "test gauge", nil)
	g.Set(4)
	g.Add(-1.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// 0.5 and 1 land in le=1 (inclusive upper edge), 1.5 in le=2, 3 in
	// le=5, 100 in +Inf.
	if q := h.Quantile(0.4); q != 1 {
		t.Fatalf("P40 = %v, want 1", q)
	}
	if q := h.Quantile(0.6); q != 2 {
		t.Fatalf("P60 = %v, want 2", q)
	}
	// +Inf collapses to the largest finite bound.
	if q := h.Quantile(1); q != 5 {
		t.Fatalf("P100 = %v, want 5", q)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("hierlock_messages_sent_total", "Messages by kind.", Labels{"kind": "request"}).Add(3)
	r.Counter("hierlock_messages_sent_total", "Messages by kind.", Labels{"kind": "token"}).Add(1)
	r.Gauge("hierlock_lock_queue_depth", "Queue depth.", Labels{"lock": "a/b"}).Set(2)
	h := r.Histogram("hierlock_request_latency_seconds", "Latency.", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	validateExposition(t, text)

	for _, want := range []string{
		"# HELP hierlock_messages_sent_total Messages by kind.\n",
		"# TYPE hierlock_messages_sent_total counter\n",
		`hierlock_messages_sent_total{kind="request"} 3` + "\n",
		`hierlock_messages_sent_total{kind="token"} 1` + "\n",
		`hierlock_lock_queue_depth{lock="a/b"} 2` + "\n",
		"# TYPE hierlock_request_latency_seconds histogram\n",
		`hierlock_request_latency_seconds_bucket{le="0.1"} 1` + "\n",
		`hierlock_request_latency_seconds_bucket{le="1"} 2` + "\n",
		`hierlock_request_latency_seconds_bucket{le="+Inf"} 3` + "\n",
		"hierlock_request_latency_seconds_sum 3.55\n",
		"hierlock_request_latency_seconds_count 3\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// Families are sorted by name.
	var famOrder []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			famOrder = append(famOrder, strings.Fields(line)[2])
		}
	}
	if !sort.StringsAreSorted(famOrder) {
		t.Errorf("families not sorted: %v", famOrder)
	}
}

func TestCollectors(t *testing.T) {
	r := NewRegistry()
	// A static series that a collector later collides with.
	r.Gauge("hl_queue", "Queue.", Labels{"peer": "1"}).Set(42)
	r.Collect("hl_queue", "Queue.", "gauge", func(emit func(Labels, float64)) {
		emit(Labels{"peer": "1"}, 7) // collides with static → dropped
		emit(Labels{"peer": "2"}, 9)
		emit(Labels{"peer": "0"}, 5)
	})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	validateExposition(t, text)
	if !strings.Contains(text, `hl_queue{peer="1"} 42`) {
		t.Errorf("static series must win over collector sample:\n%s", text)
	}
	if !strings.Contains(text, `hl_queue{peer="2"} 9`) || !strings.Contains(text, `hl_queue{peer="0"} 5`) {
		t.Errorf("collector samples missing:\n%s", text)
	}
	// Collector runs at every scrape, reflecting current state.
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	validateExposition(t, sb.String())
}

func TestLabelRendering(t *testing.T) {
	// Keys are emitted sorted regardless of map order, and values are
	// escaped.
	a := renderLabels(Labels{"b": "2", "a": "1"})
	if a != `a="1",b="2"` {
		t.Fatalf("render = %q", a)
	}
	esc := renderLabels(Labels{"k": "a\"b\\c\nd"})
	if esc != `k="a\"b\\c\nd"` {
		t.Fatalf("escaped render = %q", esc)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 200; j++ {
				r.Counter("hl_conc_total", "c", Labels{"w": fmt.Sprint(i)}).Inc()
				r.Histogram("hl_conc_seconds", "h", nil, nil).Observe(float64(j) / 100)
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Error(err)
		}
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	var total uint64
	for i := 0; i < 4; i++ {
		total += r.Counter("hl_conc_total", "c", Labels{"w": fmt.Sprint(i)}).Value()
	}
	if total != 800 {
		t.Fatalf("lost counter increments: %d", total)
	}
	if c := r.Histogram("hl_conc_seconds", "h", nil, nil).Count(); c != 800 {
		t.Fatalf("lost histogram observations: %d", c)
	}
}
