package metrics

import (
	"io"
	"testing"
)

// The disabled (nil-handle) path must stay free: these benchmarks are
// the evidence behind the zero-overhead claim in docs/OBSERVABILITY.md.

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "b", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 250)
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.004)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, k := range Kinds {
		r.Counter(MetricMessagesTotal, "m", Labels{"kind": k.String()}).Add(uint64(k))
	}
	h := r.Histogram(MetricRequestLatency, "l", DefLatencyBuckets, nil)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
