package metrics

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestMetricFamiliesDocumented is the docs-drift gate: every
// `hierlock_*` metric family named anywhere in non-test source must
// appear in docs/OBSERVABILITY.md's catalog. Adding a family without
// documenting it fails CI (the check runs under `make test`, which
// `make ci` includes).
func TestMetricFamiliesDocumented(t *testing.T) {
	root := filepath.Join("..", "..")
	doc, err := os.ReadFile(filepath.Join(root, "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("reading the metric catalog: %v", err)
	}

	family := regexp.MustCompile(`"(hierlock_[a-z0-9_]+)"`)
	families := map[string][]string{} // family → files naming it
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for _, m := range family.FindAllSubmatch(src, -1) {
			name := string(m[1])
			families[name] = append(families[name], rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(families) == 0 {
		t.Fatal("found no hierlock_* metric families in source — scan broken?")
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !strings.Contains(string(doc), name) {
			t.Errorf("metric family %q (declared in %s) is not documented in docs/OBSERVABILITY.md",
				name, strings.Join(families[name], ", "))
		}
	}
}
