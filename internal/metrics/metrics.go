// Package metrics collects the quantities the paper's evaluation reports:
// per-kind message counts (Figure 7), messages per lock request (Figure 5)
// and request latency as a multiple of the mean point-to-point network
// latency (Figure 6).
//
// Collectors are plain value-accumulating structs with no locking; in the
// discrete-event simulator everything runs on one goroutine, and live
// runtimes own one collector per node, merging at the end.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"hierlock/internal/proto"
)

// Messages counts protocol messages by kind.
type Messages struct {
	ByKind [14]uint64 // indexed by proto.Kind (through KindLeaveAck)
	// Unknown counts messages whose kind is outside the known range —
	// a decoding bug or a newer peer's message type. Keeping them in a
	// dedicated overflow bucket guarantees Total never under-reports.
	Unknown uint64
}

// Count records one message. Out-of-range kinds land in the Unknown
// bucket rather than being silently discarded.
func (m *Messages) Count(k proto.Kind) {
	if int(k) < len(m.ByKind) {
		m.ByKind[k]++
		return
	}
	m.Unknown++
}

// Total returns the total number of messages of every kind, including
// unknown ones.
func (m *Messages) Total() uint64 {
	t := m.Unknown
	for _, n := range m.ByKind {
		t += n
	}
	return t
}

// Merge adds other's counts into m.
func (m *Messages) Merge(other *Messages) {
	for i, n := range other.ByKind {
		m.ByKind[i] += n
	}
	m.Unknown += other.Unknown
}

// Kinds lists the message kinds in the order Figure 7 plots them.
var Kinds = []proto.Kind{
	proto.KindRequest, proto.KindGrant, proto.KindToken,
	proto.KindRelease, proto.KindFreeze,
}

// Faults counts injected network-fault events: what the fault layer did
// to traffic beneath the reliable-link recovery (see sim.FaultPlan). The
// counters are deterministic for a given plan and seed, which chaos tests
// exploit to assert run-for-run reproducibility.
type Faults struct {
	// Drops counts frames lost to random drop (each implies a retransmit).
	Drops uint64
	// Duplicates counts duplicate frames generated and suppressed by the
	// receiver's sequence check.
	Duplicates uint64
	// DelaySpikes counts latency spikes applied.
	DelaySpikes uint64
	// Deferrals counts transmissions that waited out a link partition or a
	// crashed destination.
	Deferrals uint64
	// Lost counts frames permanently destroyed by a crash (FaultPlan.
	// LoseOnCrash): addressed to, queued at, or in flight toward a node
	// inside a crash window. Unlike Drops these are never retransmitted.
	Lost uint64
}

// Total returns the total number of fault events.
func (f *Faults) Total() uint64 {
	return f.Drops + f.Duplicates + f.DelaySpikes + f.Deferrals + f.Lost
}

// Merge adds other's counts into f.
func (f *Faults) Merge(other *Faults) {
	f.Drops += other.Drops
	f.Duplicates += other.Duplicates
	f.DelaySpikes += other.DelaySpikes
	f.Deferrals += other.Deferrals
	f.Lost += other.Lost
}

// String renders the counters compactly.
func (f *Faults) String() string {
	return fmt.Sprintf("drops=%d dups=%d spikes=%d deferrals=%d lost=%d",
		f.Drops, f.Duplicates, f.DelaySpikes, f.Deferrals, f.Lost)
}

// Queue is a snapshot of one bounded queue's occupancy (a transport
// mailbox or per-peer outbound buffer).
type Queue struct {
	// Len is the current queue length.
	Len uint64
	// HighWater is the maximum length ever observed.
	HighWater uint64
	// Limit is the configured bound (0 = unbounded).
	Limit uint64
	// FullDrops counts enqueue attempts rejected because the queue was at
	// its limit.
	FullDrops uint64
}

// Link counts link-layer resilience events of a live transport endpoint.
type Link struct {
	// Redials counts reconnection attempts to peers.
	Redials uint64
	// Retransmits counts frames re-sent from the unacked buffer after a
	// connection was re-established (reliable mode).
	Retransmits uint64
	// DupsSuppressed counts inbound frames discarded by the per-link
	// sequence check (reliable mode).
	DupsSuppressed uint64
}

// Merge adds other's counts into l.
func (l *Link) Merge(other *Link) {
	l.Redials += other.Redials
	l.Retransmits += other.Retransmits
	l.DupsSuppressed += other.DupsSuppressed
}

// Latency accumulates durations and derives summary statistics,
// including approximate percentiles from a fixed exponential histogram
// (buckets double from 1 µs up to ~1.2 h, ≤ one-bucket relative error).
type Latency struct {
	Count uint64
	Sum   time.Duration
	Min   time.Duration
	Max   time.Duration
	// sumSq accumulates squared seconds for the standard deviation.
	sumSq float64
	// buckets[i] counts samples in (2^(i-1)µs, 2^i µs]; buckets[0] counts
	// ≤ 1µs, the last bucket is unbounded.
	buckets [33]uint64
}

// Observe records one sample.
func (l *Latency) Observe(d time.Duration) {
	if l.Count == 0 || d < l.Min {
		l.Min = d
	}
	if d > l.Max {
		l.Max = d
	}
	l.Count++
	l.Sum += d
	s := d.Seconds()
	l.sumSq += s * s
	l.buckets[bucketOf(d)]++
}

func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	for i := 0; i < len((&Latency{}).buckets)-1; i++ {
		if us <= 1<<i {
			return i
		}
	}
	return len((&Latency{}).buckets) - 1
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1) from the
// histogram: the upper edge of the bucket containing it (Max for the
// unbounded bucket). Zero with no samples.
func (l *Latency) Quantile(q float64) time.Duration {
	if l.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(l.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, n := range l.buckets {
		cum += n
		if cum >= rank {
			if i == len(l.buckets)-1 {
				return l.Max
			}
			return time.Duration(1<<i) * time.Microsecond
		}
	}
	return l.Max
}

// Mean returns the average sample, or 0 with no samples.
func (l *Latency) Mean() time.Duration {
	if l.Count == 0 {
		return 0
	}
	return l.Sum / time.Duration(l.Count)
}

// StdDev returns the population standard deviation of the samples.
func (l *Latency) StdDev() time.Duration {
	if l.Count == 0 {
		return 0
	}
	mean := l.Sum.Seconds() / float64(l.Count)
	v := l.sumSq/float64(l.Count) - mean*mean
	if v < 0 {
		v = 0
	}
	return time.Duration(math.Sqrt(v) * float64(time.Second))
}

// Merge folds other into l.
func (l *Latency) Merge(other *Latency) {
	if other.Count == 0 {
		return
	}
	if l.Count == 0 || other.Min < l.Min {
		l.Min = other.Min
	}
	if other.Max > l.Max {
		l.Max = other.Max
	}
	l.Count += other.Count
	l.Sum += other.Sum
	l.sumSq += other.sumSq
	for i, n := range other.buckets {
		l.buckets[i] += n
	}
}

// Factor expresses the mean latency as a multiple of base (the paper's
// latency-factor metric, base = mean point-to-point latency).
func (l *Latency) Factor(base time.Duration) float64 {
	if base == 0 || l.Count == 0 {
		return 0
	}
	return l.Mean().Seconds() / base.Seconds()
}

// Table renders aligned numeric series, in the spirit of the paper's
// figures rendered as text. Columns are ordered by insertion.
type Table struct {
	Title   string
	XLabel  string
	columns []string
	rows    []row
}

type row struct {
	x     float64
	cells map[string]float64
}

// NewTable creates a table with the given title and x-axis label.
func NewTable(title, xlabel string) *Table {
	return &Table{Title: title, XLabel: xlabel}
}

// Add records value for series name at x-coordinate x.
func (t *Table) Add(x float64, name string, value float64) {
	found := false
	for _, c := range t.columns {
		if c == name {
			found = true
			break
		}
	}
	if !found {
		t.columns = append(t.columns, name)
	}
	for i := range t.rows {
		if t.rows[i].x == x {
			t.rows[i].cells[name] = value
			return
		}
	}
	t.rows = append(t.rows, row{x: x, cells: map[string]float64{name: value}})
}

// Columns returns the series names in insertion order.
func (t *Table) Columns() []string { return append([]string(nil), t.columns...) }

// Value returns the cell for (x, name) and whether it exists.
func (t *Table) Value(x float64, name string) (float64, bool) {
	for _, r := range t.rows {
		if r.x == x {
			v, ok := r.cells[name]
			return v, ok
		}
	}
	return 0, false
}

// Xs returns the sorted x-coordinates.
func (t *Table) Xs() []float64 {
	xs := make([]float64, 0, len(t.rows))
	for _, r := range t.rows {
		xs = append(xs, r.x)
	}
	sort.Float64s(xs)
	return xs
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	width := len(t.XLabel)
	for _, c := range t.columns {
		if len(c) > width {
			width = len(c)
		}
	}
	if width < 10 {
		width = 10
	}
	fmt.Fprintf(&b, "%-*s", width+2, t.XLabel)
	for _, c := range t.columns {
		fmt.Fprintf(&b, "%*s", width+2, c)
	}
	b.WriteByte('\n')

	sorted := append([]row(nil), t.rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].x < sorted[j].x })
	for _, r := range sorted {
		fmt.Fprintf(&b, "%-*.6g", width+2, r.x)
		for _, c := range t.columns {
			if v, ok := r.cells[c]; ok {
				fmt.Fprintf(&b, "%*.3f", width+2, v)
			} else {
				fmt.Fprintf(&b, "%*s", width+2, "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, c := range t.columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	sorted := append([]row(nil), t.rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].x < sorted[j].x })
	for _, r := range sorted {
		fmt.Fprintf(&b, "%g", r.x)
		for _, c := range t.columns {
			if v, ok := r.cells[c]; ok {
				fmt.Fprintf(&b, ",%.4f", v)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
