// Registry is the live-runtime counterpart of the plain accumulating
// collectors in this package: a goroutine-safe, atomic metric registry
// with Prometheus text exposition. The simulator and the live runtimes
// emit into the same metric families (the Metric* name constants below),
// so a simulated run and a production scrape are compared series by
// series with identical names and labels.
//
// Every handle type is nil-safe: methods on a nil *Counter, *Gauge or
// *Histogram (as returned by a nil *Registry) are no-ops that perform no
// allocation, so instrumented hot paths cost nothing when observability
// is disabled.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical metric family names, shared by the simulator and the live
// runtime so dashboards work unchanged against either.
const (
	// MetricMessagesTotal counts protocol messages sent, by kind
	// (Figure 7's series). Labels: kind.
	MetricMessagesTotal = "hierlock_messages_sent_total"
	// MetricRequestsTotal counts client lock requests issued (the
	// denominator of Figure 5's messages-per-request).
	MetricRequestsTotal = "hierlock_requests_total"
	// MetricAcquiresTotal counts completed acquisitions (grants, upgrades
	// and local shared joins).
	MetricAcquiresTotal = "hierlock_acquires_total"
	// MetricSharedJoinsTotal counts acquisitions satisfied by joining an
	// existing local hold (zero protocol messages).
	MetricSharedJoinsTotal = "hierlock_shared_joins_total"
	// MetricRequestLatency is the issue→grant latency histogram in
	// seconds. No labels.
	MetricRequestLatency = "hierlock_request_latency_seconds"
	// MetricRequestLatencyFactor is the issue→grant latency as a multiple
	// of the mean point-to-point network latency, the paper's Figure 6
	// metric. No labels.
	MetricRequestLatencyFactor = "hierlock_request_latency_factor"
	// MetricTokenTransfers counts token transfers observed by this node.
	// Labels: lock, direction (in|out).
	MetricTokenTransfers = "hierlock_token_transfers_total"
	// MetricLockQueueDepth gauges locally queued requests per lock.
	// Labels: lock.
	MetricLockQueueDepth = "hierlock_lock_queue_depth"
	// MetricLockCopyset gauges the copyset size (children granted a copy)
	// per lock at this node. Labels: lock.
	MetricLockCopyset = "hierlock_lock_copyset_size"
	// MetricLockFrozen gauges the number of frozen modes per lock at this
	// node. Labels: lock.
	MetricLockFrozen = "hierlock_lock_frozen_modes"
	// MetricTokenHeld gauges whether this node holds the lock's token
	// (0 or 1). Labels: lock.
	MetricTokenHeld = "hierlock_token_held"

	// MetricTransportBytes counts transport payload bytes. Labels:
	// direction (sent|recv).
	MetricTransportBytes = "hierlock_transport_bytes_total"
	// MetricTransportFrames counts transport frames. Labels: direction.
	MetricTransportFrames = "hierlock_transport_frames_total"
	// MetricTransportQueueLen gauges per-peer outbound queue occupancy.
	// Labels: peer.
	MetricTransportQueueLen = "hierlock_transport_queue_len"
	// MetricTransportQueueHighWater gauges the worst per-peer outbound
	// queue occupancy observed. Labels: peer.
	MetricTransportQueueHighWater = "hierlock_transport_queue_high_water"
	// MetricTransportQueueFullDrops counts sends rejected at the queue
	// limit. Labels: peer.
	MetricTransportQueueFullDrops = "hierlock_transport_queue_full_drops_total"
	// MetricTransportInboxLen gauges the inbound mailbox occupancy.
	MetricTransportInboxLen = "hierlock_transport_inbox_len"
	// MetricTransportInboxHighWater gauges the worst inbound mailbox
	// occupancy observed.
	MetricTransportInboxHighWater = "hierlock_transport_inbox_high_water"
	// MetricTransportRedials counts reconnection attempts to peers.
	MetricTransportRedials = "hierlock_transport_redials_total"
	// MetricTransportRetransmits counts reliable-mode retransmissions.
	MetricTransportRetransmits = "hierlock_transport_retransmits_total"
	// MetricTransportDupsSuppressed counts duplicate inbound frames
	// suppressed by the reliable-link sequence check.
	MetricTransportDupsSuppressed = "hierlock_transport_dups_suppressed_total"
	// MetricTransportPeerState gauges per-peer health (0 up, 1 degraded,
	// 2 down). Labels: peer.
	MetricTransportPeerState = "hierlock_transport_peer_state"

	// MetricAuditViolations counts protocol invariant violations flagged
	// by the online auditor (internal/audit). Labels: invariant. Any
	// nonzero sample is an alarm: either a protocol bug or a violated
	// transport assumption.
	MetricAuditViolations = "hierlock_audit_violations_total"
	// MetricAuditEntries counts trace entries the auditor consumed.
	MetricAuditEntries = "hierlock_audit_entries_total"
	// MetricJournalRecords counts write-ahead journal records appended.
	MetricJournalRecords = "hierlock_journal_records_total"
	// MetricJournalWALBytes gauges the current WAL file size.
	MetricJournalWALBytes = "hierlock_journal_wal_bytes"
	// MetricJournalFsyncs counts journal fsync calls.
	MetricJournalFsyncs = "hierlock_journal_fsyncs_total"
	// MetricJournalFsyncSeconds accumulates time spent in journal fsync.
	MetricJournalFsyncSeconds = "hierlock_journal_fsync_seconds_total"
	// MetricJournalSnapshots counts journal snapshot rotations.
	MetricJournalSnapshots = "hierlock_journal_snapshots_total"
	// MetricJournalFsyncLatency is the per-fsync latency histogram in
	// seconds. The seconds-total counter above only exposes the mean;
	// this histogram makes individual fsync stalls (a dying disk, a
	// saturated volume) visible.
	MetricJournalFsyncLatency = "hierlock_journal_fsync_latency_seconds"

	// MetricRecoveryRounds counts token-regeneration rounds this node
	// completed as the regenerator.
	MetricRecoveryRounds = "hierlock_recovery_rounds_total"
	// MetricRecoveryRoundDuration is the start→Recovered duration
	// histogram of regeneration rounds run by this node, in seconds.
	MetricRecoveryRoundDuration = "hierlock_recovery_round_duration_seconds"
	// MetricRecoveryProbes counts recovery Probe messages. Labels:
	// direction (sent|received).
	MetricRecoveryProbes = "hierlock_recovery_probes_total"
	// MetricRecoveryClaims counts recovery Claim messages (solicited
	// answers and unsolicited nominations). Labels: direction
	// (sent|received).
	MetricRecoveryClaims = "hierlock_recovery_claims_total"
	// MetricRecoveryRegenerated counts locks reseeded into a recovered
	// epoch at this node (every Reseed applied, as regenerator or
	// survivor).
	MetricRecoveryRegenerated = "hierlock_recovery_regenerated_locks_total"
	// MetricRecoveryLostHolds counts holds demolished by recovery reseeds
	// (each surfaced to its client as ErrLockLost).
	MetricRecoveryLostHolds = "hierlock_recovery_lost_holds_total"

	// MetricMembershipSize gauges the member's current view of the
	// cluster size (configured nodes, itself included).
	MetricMembershipSize = "hierlock_membership_size"
	// MetricMembershipJoins counts peers this member admitted through the
	// JOIN handshake (first admission per peer; re-announcements are not
	// recounted).
	MetricMembershipJoins = "hierlock_membership_joins_total"
	// MetricMembershipLeaves counts graceful peer departures this member
	// processed (LEAVE hand-offs; crash recoveries are counted by the
	// recovery families instead).
	MetricMembershipLeaves = "hierlock_membership_leaves_total"
	// MetricMembershipHandoffLocks counts locks handed off by departing
	// peers (the token locks each LEAVE nominated for regeneration).
	MetricMembershipHandoffLocks = "hierlock_membership_handoff_locks_total"

	// MetricBlackboxEvents counts structured events captured by the
	// flight recorder's ring.
	MetricBlackboxEvents = "hierlock_blackbox_events_total"
	// MetricBlackboxDumps counts flight-recorder dumps written to disk.
	// Labels: reason (audit_violation|recovery_round|lock_lost|stall|manual).
	MetricBlackboxDumps = "hierlock_blackbox_dumps_total"

	// MetricOpLatency is the end-to-end client operation latency
	// histogram in seconds, keyed by operation and grant outcome — the
	// live per-operation SLO series (the latency families above aggregate
	// across outcomes). Labels: op (lock|upgrade), outcome
	// (local|remote|recovery|lost).
	MetricOpLatency = "hierlock_op_latency_seconds"
	// MetricQueueWait is the histogram of time a client request spends
	// queued for per-lock admission before it enters the protocol, in
	// seconds (the member serializes client operations per lock; this is
	// the local head-of-line wait, excluded from no series but visible on
	// its own here).
	MetricQueueWait = "hierlock_queue_wait_seconds"
	// MetricHealthState gauges the stall watchdog's verdict: 0 healthy,
	// 1 degraded, 2 stalled.
	MetricHealthState = "hierlock_health_state"
	// MetricHealthTransitions counts watchdog verdict transitions, by the
	// state entered. Labels: state (healthy|degraded|stalled).
	MetricHealthTransitions = "hierlock_health_transitions_total"

	// MetricProfileCaptures counts profile captures written to disk, by
	// profile kind. Labels: profile (cpu|heap|goroutine|mutex|block).
	MetricProfileCaptures = "hierlock_profile_captures_total"
	// MetricProfileSuppressed counts capture requests suppressed by the
	// per-kind rate limit.
	MetricProfileSuppressed = "hierlock_profile_suppressed_total"
	// MetricStripeLocks gauges tracked-lock occupancy per shard stripe of
	// the member's lock table, exposing stripe contention hot spots.
	// Labels: stripe.
	MetricStripeLocks = "hierlock_stripe_locks"
	// MetricLamportClock gauges the member's Lamport clock. Its rate is
	// a contention proxy: the clock advances on every local protocol
	// step and witnesses every inbound message.
	MetricLamportClock = "hierlock_lamport_clock"

	// MetricTokenHops is the distribution of token transfers observed on
	// a lock while its grant was outstanding — the live equivalent of the
	// paper's per-request message-count curves (Figure 5): 0 hops is a
	// pure local grant, 1 a direct fetch, more a walk along the
	// probable-owner chain.
	MetricTokenHops = "hierlock_token_hops"

	// MetricFenceTokens counts fencing tokens issued by the member
	// (grants, upgrades, shared joins and session-tier hand-offs).
	MetricFenceTokens = "hierlock_fence_tokens_issued_total"

	// MetricSessionsOpen gauges named client sessions currently live on
	// this lockd (attached or awaiting re-adoption).
	MetricSessionsOpen = "hierlock_sessions_open"
	// MetricSessionsOpened counts named sessions created.
	MetricSessionsOpened = "hierlock_sessions_opened_total"
	// MetricSessionsAdopted counts reconnections that re-adopted a live
	// detached session.
	MetricSessionsAdopted = "hierlock_sessions_adopted_total"
	// MetricSessionsClosed counts sessions closed explicitly by clients.
	MetricSessionsClosed = "hierlock_sessions_closed_total"
	// MetricSessionsExpired counts sessions reaped by the lease sweeper
	// after their TTL elapsed without a renewal.
	MetricSessionsExpired = "hierlock_sessions_expired_total"
	// MetricSessionRenewals counts lease renewals (explicit SESSION RENEW
	// plus implicit activity-based touches).
	MetricSessionRenewals = "hierlock_session_renewals_total"
	// MetricSessionLocksReaped counts locks force-released because their
	// owning session's lease expired.
	MetricSessionLocksReaped = "hierlock_session_locks_reaped_total"

	// MetricAdmissionWaiting gauges clients queued in the session tier's
	// wait-queue admission (collapsed behind one member-level waiter per
	// (resource, mode)).
	MetricAdmissionWaiting = "hierlock_admission_waiting"
	// MetricAdmissionEnqueued counts clients that entered an admission
	// queue.
	MetricAdmissionEnqueued = "hierlock_admission_enqueued_total"
	// MetricAdmissionHandoffs counts grants satisfied by handing the
	// member-level hold to the next local waiter (zero protocol traffic).
	MetricAdmissionHandoffs = "hierlock_admission_handoffs_total"
	// MetricAdmissionLeaderAcquires counts member-level acquisitions
	// performed by admission-queue leaders on behalf of their queues.
	MetricAdmissionLeaderAcquires = "hierlock_admission_leader_acquires_total"
	// MetricAdmissionBusy counts requests rejected with ERR busy because
	// the admission queue hit its configured depth cap.
	MetricAdmissionBusy = "hierlock_admission_busy_rejections_total"
)

// Label values of MetricOpLatency's op and outcome dimensions, indexable
// by the Op*/Outcome* constants below so hot paths address a cached
// handle array instead of formatting labels.
var (
	OpKinds  = []string{"lock", "upgrade"}
	Outcomes = []string{"local", "remote", "recovery", "lost"}
)

// Indexes into OpKinds.
const (
	OpLock    = 0
	OpUpgrade = 1
)

// Indexes into Outcomes: a grant served from local state (shared join or
// an immediate token-in-hand grant), a grant that needed remote token
// traffic, a grant delayed through a crash-recovery reseed, and an
// operation that never completed (RecoveryTimeout expiry).
const (
	OutcomeLocal    = 0
	OutcomeRemote   = 1
	OutcomeRecovery = 2
	OutcomeLost     = 3
)

// TokenHopBuckets are the MetricTokenHops histogram bounds: hop counts
// are small integers, so the buckets enumerate them up to a tail.
var TokenHopBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// DefLatencyBuckets are the default request-latency histogram bounds in
// seconds, spanning local grants (sub-millisecond) to multi-second waits
// behind contended tokens.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// LatencyFactorBuckets are the bounds of the latency-factor histogram:
// request latency expressed as a multiple of the mean point-to-point
// network latency, matching the scale of the paper's Figure 6 (which
// plots factors from below 1 up to a few tens).
var LatencyFactorBuckets = []float64{
	0.5, 1, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 48, 64,
}

// Labels is a metric's label set. Keys and values are emitted sorted by
// key, so any map order yields the same series identity.
type Labels map[string]string

// Counter is a monotonically increasing atomic counter.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is an atomic float64 gauge.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge. No-op on a nil gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket atomic histogram (Prometheus semantics:
// cumulative buckets on exposition, each bound is an inclusive upper
// edge, plus an implicit +Inf bucket).
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last is the overflow (+Inf)
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram creates a standalone histogram with the given inclusive
// upper bounds (must be sorted ascending; nil means DefLatencyBuckets).
func NewHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	return &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of samples (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of samples (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile returns an upper bound for the q-quantile from the bucket
// counts: the upper edge of the bucket containing it (+Inf collapses to
// the largest finite bound). Zero with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.upper) {
				return h.upper[i]
			}
			return h.upper[len(h.upper)-1]
		}
	}
	return h.upper[len(h.upper)-1]
}

// Collector is a scrape-time sample source for one metric family: it is
// invoked during WritePrometheus and emits (labels, value) samples
// reflecting current state (queue depths, engine gauges, ...).
type Collector func(emit func(labels Labels, value float64))

// Registry is a set of named metric families. The zero value is not
// usable; construct with NewRegistry. A nil *Registry is a valid
// "disabled" registry: every lookup returns a nil handle whose methods
// are no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge" or "histogram"
	buckets []float64
	series  map[string]*series // by rendered label string
	collect []Collector
}

type series struct {
	labels string // rendered `k="v",...` (no braces), "" for none
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets,
			series: make(map[string]*series)}
		r.families[name] = f
	}
	return f
}

// Counter returns (creating if needed) the counter series for name with
// the given labels. Nil-safe: a nil registry returns a nil counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter", nil)
	s := f.seriesFor(labels)
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge returns (creating if needed) the gauge series for name with the
// given labels. Nil-safe.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge", nil)
	s := f.seriesFor(labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns (creating if needed) the histogram series for name
// with the given labels and bucket bounds (nil = DefLatencyBuckets; the
// family's first registration wins). Nil-safe.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	f := r.family(name, help, "histogram", buckets)
	s := f.seriesFor(labels)
	if s.hist == nil {
		s.hist = NewHistogram(f.buckets)
	}
	return s.hist
}

// Collect registers a scrape-time collector for a counter or gauge
// family (typ "counter" or "gauge"). Collector samples whose series
// collide with a statically registered series are dropped, so the
// exposition never contains duplicates. Nil-safe.
func (r *Registry) Collect(name, help, typ string, fn Collector) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ, nil)
	f.collect = append(f.collect, fn)
}

func (f *family) seriesFor(labels Labels) *series {
	key := renderLabels(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		f.series[key] = s
	}
	return s
}

// renderLabels renders a label set in canonical (sorted, escaped) form
// without surrounding braces.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with one HELP
// and one TYPE line followed by its series sorted by label string, with
// histogram buckets exposed cumulatively. Collectors run at call time.
// Nil-safe (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot family pointers; series maps are only appended to, and
	// value reads are atomic, so rendering outside r.mu is safe except
	// for concurrent series insertion — guard by re-locking per family.
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		static := make([]*series, len(keys))
		for i, k := range keys {
			static[i] = f.series[k]
		}
		collectors := append([]Collector(nil), f.collect...)
		r.mu.Unlock()

		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		seen := make(map[string]bool, len(static))
		for _, s := range static {
			seen[s.labels] = true
			switch {
			case s.ctr != nil:
				writeSample(&b, f.name, s.labels, "", float64(s.ctr.Value()))
			case s.gauge != nil:
				writeSample(&b, f.name, s.labels, "", s.gauge.Value())
			case s.hist != nil:
				writeHistogram(&b, f.name, s.labels, s.hist)
			}
		}
		if len(collectors) > 0 {
			collected := make(map[string]float64)
			order := make([]string, 0, 8)
			emit := func(labels Labels, v float64) {
				key := renderLabels(labels)
				if seen[key] {
					return // never duplicate a static series
				}
				if _, dup := collected[key]; !dup {
					order = append(order, key)
				}
				collected[key] = v
			}
			for _, fn := range collectors {
				fn(emit)
			}
			sort.Strings(order)
			for _, key := range order {
				writeSample(&b, f.name, key, "", collected[key])
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one exposition line. extra is an extra pre-rendered
// label (histogram "le") appended after the series labels.
func writeSample(b *strings.Builder, name, labels, extra string, v float64) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	var cum uint64
	for i, bound := range h.upper {
		cum += h.counts[i].Load()
		writeSample(b, name+"_bucket", labels,
			`le="`+formatValue(bound)+`"`, float64(cum))
	}
	cum += h.counts[len(h.upper)].Load()
	writeSample(b, name+"_bucket", labels, `le="+Inf"`, float64(cum))
	writeSample(b, name+"_sum", labels, "", h.Sum())
	writeSample(b, name+"_count", labels, "", float64(cum))
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
