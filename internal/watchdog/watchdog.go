// Package watchdog turns the member's raw health signals into a
// three-state verdict — healthy, degraded, stalled — with structured
// reasons. The evaluator is pure: it consumes periodic Samples (whose
// clock the caller supplies) and keeps only the cross-evaluation state
// it needs (progress deltas, streak counters), so the simulator can
// drive it deterministically and tests can replay exact incident
// shapes. The Runner wraps it in a ticker loop for lockd, feeding
// /healthz, /debug/health and the stall-triggered blackbox/profile
// captures.
package watchdog

import (
	"fmt"
	"time"
)

// State is the watchdog's verdict, ordered by severity.
type State int

// Verdict states. Degraded means the node is making progress but an
// indicator is off nominal (slow recovery round, fsync stall streak,
// growing queues); Stalled means client-visible progress has stopped
// (a wedged waiter or recovery round).
const (
	Healthy State = iota
	Degraded
	Stalled
)

// String names the state for /healthz and metric labels.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Stalled:
		return "stalled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// States lists the verdict states, for zero-pre-registration of the
// transition counter's label values.
var States = []State{Healthy, Degraded, Stalled}

// Reason codes (Reason.Code values).
const (
	// ReasonWaiterWedged: the oldest pending waiter exceeded StalledAfter.
	ReasonWaiterWedged = "waiter_wedged"
	// ReasonPendingNoGrants: waiters are pending beyond PendingGrace and
	// no grant completed since the previous evaluation.
	ReasonPendingNoGrants = "pending_no_grants"
	// ReasonRecoverySlow / ReasonRecoveryWedged: a token-regeneration
	// round has been in flight longer than RoundGrace / 2x RoundGrace.
	ReasonRecoverySlow   = "recovery_slow"
	ReasonRecoveryWedged = "recovery_wedged"
	// ReasonFsyncStalls: FsyncStreak consecutive evaluations each
	// observed new journal fsync stalls.
	ReasonFsyncStalls = "fsync_stalls"
	// ReasonQueueGrowth: transport queues grew for QueueGrowthEvals
	// consecutive evaluations.
	ReasonQueueGrowth = "queue_growth"
	// ReasonQueueNearLimit: a bounded transport queue is at 90% or more
	// of its limit (sends are about to shed).
	ReasonQueueNearLimit = "queue_near_limit"
)

// Sample is one periodic observation of a node's health signals. All
// fields are plain scalars the member (or the simulator) snapshots;
// cumulative counters are compared across evaluations by the watchdog
// itself.
type Sample struct {
	// Now is the observation clock — wall time on a live node, virtual
	// time in the simulator. Only differences between samples matter.
	Now time.Time
	// Waiters counts pending client requests; OldestWaiterAge is the age
	// of the oldest.
	Waiters         int
	OldestWaiterAge time.Duration
	// Grants is the cumulative completed-acquisition count.
	Grants uint64
	// RoundsInFlight counts recovery rounds started but not committed on
	// this node as regenerator; OldestRoundAge is the age of the oldest.
	RoundsInFlight int
	OldestRoundAge time.Duration
	// FsyncStalls is the cumulative count of journal fsyncs over the
	// stall threshold.
	FsyncStalls uint64
	// QueueLen is the node's total transport queue occupancy (outbound
	// per-peer queues plus the inbound mailbox); QueueLimit is the
	// configured per-queue bound (0 = unbounded).
	QueueLen   uint64
	QueueLimit uint64
	// TrackedLocks is the member's lock-table size, reported in the
	// health view for context (not currently judged).
	TrackedLocks int
}

// Reason is one finding behind a non-healthy verdict.
type Reason struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Detail   string `json:"detail"`
}

// Health is the watchdog's verdict after one evaluation.
type Health struct {
	State   State    `json:"-"`
	Status  string   `json:"state"`
	Reasons []Reason `json:"reasons,omitempty"`
}

// Config tunes the evaluator. Zero values take the defaults noted on
// each field.
type Config struct {
	// PendingGrace is how long a waiter may pend with no grant progress
	// before the node is degraded (default 5s).
	PendingGrace time.Duration
	// StalledAfter is the waiter age at which the node is stalled
	// outright — a grant path is wedged (default 30s). It should exceed
	// the member's RecoveryTimeout if one is configured, so lost waits
	// resolve before the watchdog escalates.
	StalledAfter time.Duration
	// RoundGrace is how long a recovery round may stay in flight before
	// the node is degraded; 2x RoundGrace marks it stalled (default 10s).
	RoundGrace time.Duration
	// FsyncStreak is the number of consecutive evaluations that must
	// each observe new fsync stalls before the node is degraded
	// (default 3).
	FsyncStreak int
	// QueueGrowthEvals is the number of consecutive evaluations with
	// strictly growing transport queues before the node is degraded
	// (default 5).
	QueueGrowthEvals int
}

func (c Config) withDefaults() Config {
	if c.PendingGrace <= 0 {
		c.PendingGrace = 5 * time.Second
	}
	if c.StalledAfter <= 0 {
		c.StalledAfter = 30 * time.Second
	}
	if c.RoundGrace <= 0 {
		c.RoundGrace = 10 * time.Second
	}
	if c.FsyncStreak <= 0 {
		c.FsyncStreak = 3
	}
	if c.QueueGrowthEvals <= 0 {
		c.QueueGrowthEvals = 5
	}
	return c
}

// Watchdog is the stateful evaluator. Not goroutine-safe; the Runner
// (or a test loop) serializes Evaluate calls.
type Watchdog struct {
	cfg         Config
	prev        Sample
	hasPrev     bool
	fsyncStreak int
	queueGrowth int
}

// New creates an evaluator with cfg's thresholds (defaults applied).
func New(cfg Config) *Watchdog {
	return &Watchdog{cfg: cfg.withDefaults()}
}

// Evaluate judges one sample against the previous one and returns the
// verdict. Pure with respect to wall time: only Sample fields and the
// evaluator's own streak state are consulted.
func (w *Watchdog) Evaluate(s Sample) Health {
	var reasons []Reason
	worst := Healthy
	add := func(sev State, code, detail string) {
		reasons = append(reasons, Reason{Code: code, Severity: sev.String(), Detail: detail})
		if sev > worst {
			worst = sev
		}
	}

	// Wedged or starved waiters: client-visible progress.
	if s.Waiters > 0 {
		if s.OldestWaiterAge >= w.cfg.StalledAfter {
			add(Stalled, ReasonWaiterWedged,
				fmt.Sprintf("oldest of %d pending waiters has waited %v (threshold %v)",
					s.Waiters, s.OldestWaiterAge, w.cfg.StalledAfter))
		} else if s.OldestWaiterAge >= w.cfg.PendingGrace &&
			w.hasPrev && s.Grants == w.prev.Grants {
			add(Degraded, ReasonPendingNoGrants,
				fmt.Sprintf("%d waiters pending for up to %v with no grants since the last evaluation",
					s.Waiters, s.OldestWaiterAge))
		}
	}

	// Wedged recovery rounds.
	if s.RoundsInFlight > 0 {
		switch {
		case s.OldestRoundAge >= 2*w.cfg.RoundGrace:
			add(Stalled, ReasonRecoveryWedged,
				fmt.Sprintf("oldest of %d recovery rounds in flight for %v (threshold %v)",
					s.RoundsInFlight, s.OldestRoundAge, 2*w.cfg.RoundGrace))
		case s.OldestRoundAge >= w.cfg.RoundGrace:
			add(Degraded, ReasonRecoverySlow,
				fmt.Sprintf("oldest of %d recovery rounds in flight for %v (threshold %v)",
					s.RoundsInFlight, s.OldestRoundAge, w.cfg.RoundGrace))
		}
	}

	// Fsync stall streaks: each evaluation window with new stalls
	// extends the streak; one clean window resets it.
	if w.hasPrev {
		if s.FsyncStalls > w.prev.FsyncStalls {
			w.fsyncStreak++
		} else {
			w.fsyncStreak = 0
		}
	}
	if w.fsyncStreak >= w.cfg.FsyncStreak {
		add(Degraded, ReasonFsyncStalls,
			fmt.Sprintf("journal fsync stalls in %d consecutive evaluations (%d total)",
				w.fsyncStreak, s.FsyncStalls))
	}

	// Unbounded queue growth, and bounded queues near their limit.
	if w.hasPrev {
		if s.QueueLen > w.prev.QueueLen {
			w.queueGrowth++
		} else {
			w.queueGrowth = 0
		}
	}
	if w.queueGrowth >= w.cfg.QueueGrowthEvals {
		add(Degraded, ReasonQueueGrowth,
			fmt.Sprintf("transport queues grew for %d consecutive evaluations (now %d queued)",
				w.queueGrowth, s.QueueLen))
	}
	if s.QueueLimit > 0 && s.QueueLen*10 >= s.QueueLimit*9 {
		add(Degraded, ReasonQueueNearLimit,
			fmt.Sprintf("transport queues at %d of the %d limit", s.QueueLen, s.QueueLimit))
	}

	w.prev = s
	w.hasPrev = true
	return Health{State: worst, Status: worst.String(), Reasons: reasons}
}
