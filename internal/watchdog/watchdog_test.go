package watchdog

import (
	"strings"
	"testing"
	"time"
)

var t0 = time.Unix(0, 0).UTC()

func at(d time.Duration) time.Time { return t0.Add(d) }

func reasons(h Health) string {
	var codes []string
	for _, r := range h.Reasons {
		codes = append(codes, r.Code)
	}
	return strings.Join(codes, ",")
}

func wantState(t *testing.T, h Health, s State, code string) {
	t.Helper()
	if h.State != s {
		t.Fatalf("state %s, want %s (reasons %s)", h.Status, s, reasons(h))
	}
	if code != "" && !strings.Contains(reasons(h), code) {
		t.Fatalf("reasons %q missing %s", reasons(h), code)
	}
	if code == "" && len(h.Reasons) != 0 {
		t.Fatalf("healthy verdict carries reasons %s", reasons(h))
	}
}

func TestEvaluateHealthyBaseline(t *testing.T) {
	w := New(Config{})
	for i := 0; i < 5; i++ {
		h := w.Evaluate(Sample{Now: at(time.Duration(i) * time.Second), Grants: uint64(i)})
		wantState(t, h, Healthy, "")
	}
}

func TestEvaluateWaiterWedged(t *testing.T) {
	w := New(Config{StalledAfter: 30 * time.Second})
	h := w.Evaluate(Sample{Now: at(0), Waiters: 1, OldestWaiterAge: 31 * time.Second})
	wantState(t, h, Stalled, ReasonWaiterWedged)
}

func TestEvaluatePendingNoGrantsNeedsFlatProgress(t *testing.T) {
	w := New(Config{PendingGrace: 5 * time.Second})
	// First sample: no previous grants to compare — stays healthy.
	h := w.Evaluate(Sample{Now: at(0), Waiters: 2, OldestWaiterAge: 6 * time.Second, Grants: 10})
	wantState(t, h, Healthy, "")
	// Grants advanced: pending but progressing.
	h = w.Evaluate(Sample{Now: at(time.Second), Waiters: 2, OldestWaiterAge: 7 * time.Second, Grants: 11})
	wantState(t, h, Healthy, "")
	// Grants flat with an over-grace waiter: degraded.
	h = w.Evaluate(Sample{Now: at(2 * time.Second), Waiters: 2, OldestWaiterAge: 8 * time.Second, Grants: 11})
	wantState(t, h, Degraded, ReasonPendingNoGrants)
}

func TestEvaluateRecoveryRoundEscalation(t *testing.T) {
	w := New(Config{RoundGrace: 10 * time.Second})
	h := w.Evaluate(Sample{Now: at(0), RoundsInFlight: 1, OldestRoundAge: 5 * time.Second})
	wantState(t, h, Healthy, "")
	h = w.Evaluate(Sample{Now: at(time.Second), RoundsInFlight: 1, OldestRoundAge: 11 * time.Second})
	wantState(t, h, Degraded, ReasonRecoverySlow)
	h = w.Evaluate(Sample{Now: at(2 * time.Second), RoundsInFlight: 1, OldestRoundAge: 21 * time.Second})
	wantState(t, h, Stalled, ReasonRecoveryWedged)
}

func TestEvaluateFsyncStreakAndReset(t *testing.T) {
	w := New(Config{FsyncStreak: 3})
	stalls := uint64(0)
	h := w.Evaluate(Sample{Now: at(0), FsyncStalls: stalls})
	wantState(t, h, Healthy, "")
	// Three consecutive windows with fresh stalls trip the streak.
	for i := 1; i <= 3; i++ {
		stalls++
		h = w.Evaluate(Sample{Now: at(time.Duration(i) * time.Second), FsyncStalls: stalls})
	}
	wantState(t, h, Degraded, ReasonFsyncStalls)
	// One clean window resets it.
	h = w.Evaluate(Sample{Now: at(4 * time.Second), FsyncStalls: stalls})
	wantState(t, h, Healthy, "")
	// A streak interrupted before the threshold never degrades.
	stalls++
	h = w.Evaluate(Sample{Now: at(5 * time.Second), FsyncStalls: stalls})
	wantState(t, h, Healthy, "")
	h = w.Evaluate(Sample{Now: at(6 * time.Second), FsyncStalls: stalls})
	wantState(t, h, Healthy, "")
}

func TestEvaluateQueueGrowthAndNearLimit(t *testing.T) {
	w := New(Config{QueueGrowthEvals: 3})
	for i := 0; i < 3; i++ {
		h := w.Evaluate(Sample{Now: at(time.Duration(i) * time.Second), QueueLen: uint64(10 * (i + 1))})
		wantState(t, h, Healthy, "")
	}
	h := w.Evaluate(Sample{Now: at(3 * time.Second), QueueLen: 40})
	wantState(t, h, Degraded, ReasonQueueGrowth)
	// A shrinking queue resets the streak.
	h = w.Evaluate(Sample{Now: at(4 * time.Second), QueueLen: 5})
	wantState(t, h, Healthy, "")
	// A bounded queue at ≥90% of its limit degrades outright.
	h = w.Evaluate(Sample{Now: at(5 * time.Second), QueueLen: 90, QueueLimit: 100})
	wantState(t, h, Degraded, ReasonQueueNearLimit)
}

func TestEvaluateWorstSeverityWins(t *testing.T) {
	w := New(Config{StalledAfter: 30 * time.Second, RoundGrace: 10 * time.Second})
	h := w.Evaluate(Sample{
		Now: at(0), Waiters: 1, OldestWaiterAge: time.Minute,
		RoundsInFlight: 1, OldestRoundAge: 11 * time.Second,
	})
	wantState(t, h, Stalled, ReasonWaiterWedged)
	if !strings.Contains(reasons(h), ReasonRecoverySlow) {
		t.Fatalf("reasons %q dropped the degraded finding", reasons(h))
	}
}

func TestRunnerTransitionsAndHook(t *testing.T) {
	cur := Sample{Now: at(0)}
	r := NewRunner(Config{StalledAfter: 30 * time.Second}, time.Second, func() Sample { return cur })
	var hops []string
	r.OnTransition(func(from, to State, h Health) {
		hops = append(hops, from.String()+">"+to.String())
	})
	r.Tick() // healthy: no transition
	cur = Sample{Now: at(time.Second), Waiters: 1, OldestWaiterAge: time.Minute}
	r.Tick() // stalled
	r.Tick() // still stalled: no second transition
	cur = Sample{Now: at(3 * time.Second)}
	r.Tick() // recovered

	if want := "healthy>stalled,stalled>healthy"; strings.Join(hops, ",") != want {
		t.Fatalf("transition hooks %q, want %q", strings.Join(hops, ","), want)
	}
	tr := r.Transitions()
	if tr[Stalled] != 1 || tr[Healthy] != 1 || tr[Degraded] != 0 {
		t.Fatalf("transitions %v, want stalled:1 healthy:1 degraded:0", tr)
	}
	if h := r.Current(); h.State != Healthy {
		t.Fatalf("current %s, want healthy", h.Status)
	}
}

func TestRunnerStartStop(t *testing.T) {
	r := NewRunner(Config{}, time.Millisecond, func() Sample { return Sample{Now: time.Now()} })
	r.Start()
	r.Start() // second Start is a no-op
	time.Sleep(10 * time.Millisecond)
	r.Stop()
	if h := r.Current(); h.State != Healthy {
		t.Fatalf("idle runner reports %s", h.Status)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Runner
	r.Start()
	r.Stop()
	r.OnTransition(nil)
	if h := r.Tick(); h.State != Healthy {
		t.Fatal("nil runner not healthy")
	}
	if h := r.Current(); h.State != Healthy {
		t.Fatal("nil runner not healthy")
	}
	tr := r.Transitions()
	for _, s := range States {
		if tr[s] != 0 {
			t.Fatalf("nil runner reports transitions %v", tr)
		}
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Healthy: "healthy", Degraded: "degraded", Stalled: "stalled", State(9): "state(9)"} {
		if got := s.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
