package watchdog

import (
	"sync"
	"time"

	"hierlock/internal/metrics"
)

// Runner drives a Watchdog on a ticker for the live runtime: it pulls
// a Sample from the node each interval, evaluates it, and invokes the
// transition hook when the verdict changes (lockd uses the hook to
// fire a blackbox dump and a profile capture on entry to Stalled).
// Current is safe to call from HTTP handlers; all methods are nil-safe.
type Runner struct {
	wd       *Watchdog
	sample   func() Sample
	interval time.Duration

	mu          sync.Mutex
	cur         Health
	transitions map[State]uint64
	onChange    func(from, to State, h Health)
	stop        chan struct{}
	done        chan struct{}
	started     bool
}

// NewRunner creates a runner evaluating cfg against sample() every
// interval (default 1s when <= 0). Call Start to begin.
func NewRunner(cfg Config, interval time.Duration, sample func() Sample) *Runner {
	if interval <= 0 {
		interval = time.Second
	}
	r := &Runner{
		wd:          New(cfg),
		sample:      sample,
		interval:    interval,
		cur:         Health{State: Healthy, Status: Healthy.String()},
		transitions: make(map[State]uint64, len(States)),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	for _, s := range States {
		r.transitions[s] = 0
	}
	return r
}

// OnTransition sets the state-change hook. The hook runs on the
// runner's goroutine, so a slow hook (a CPU profile capture) delays
// the next evaluation, never the member. Set before Start.
func (r *Runner) OnTransition(f func(from, to State, h Health)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onChange = f
	r.mu.Unlock()
}

// Start launches the evaluation loop. Nil-safe; second call is a no-op.
func (r *Runner) Start() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Tick()
			case <-r.stop:
				return
			}
		}
	}()
}

// Stop halts the loop. Nil-safe; safe to call without Start.
func (r *Runner) Stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	started := r.started
	r.started = false
	r.mu.Unlock()
	close(r.stop)
	if started {
		<-r.done
	}
}

// Tick runs one evaluation immediately and returns the verdict (tests
// and the loop share this path). Nil-safe.
func (r *Runner) Tick() Health {
	if r == nil {
		return Health{State: Healthy, Status: Healthy.String()}
	}
	h := r.wd.Evaluate(r.sample())
	r.mu.Lock()
	prev := r.cur
	r.cur = h
	var hook func(from, to State, h Health)
	if h.State != prev.State {
		r.transitions[h.State]++
		hook = r.onChange
	}
	r.mu.Unlock()
	if hook != nil {
		hook(prev.State, h.State, h)
	}
	return h
}

// Current returns the latest verdict. Nil-safe (healthy).
func (r *Runner) Current() Health {
	if r == nil {
		return Health{State: Healthy, Status: Healthy.String()}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// Transitions snapshots the per-state entry counts (every state
// present, zeros included). Nil-safe.
func (r *Runner) Transitions() map[State]uint64 {
	out := make(map[State]uint64, len(States))
	for _, s := range States {
		out[s] = 0
	}
	if r == nil {
		return out
	}
	r.mu.Lock()
	for s, n := range r.transitions {
		out[s] = n
	}
	r.mu.Unlock()
	return out
}

// RegisterCollectors exposes the runner's verdict and transition
// counts at scrape time.
func RegisterCollectors(reg *metrics.Registry, r *Runner) {
	reg.Collect(metrics.MetricHealthState,
		"Watchdog verdict: 0 healthy, 1 degraded, 2 stalled.", "gauge",
		func(emit func(metrics.Labels, float64)) {
			emit(nil, float64(r.Current().State))
		})
	reg.Collect(metrics.MetricHealthTransitions,
		"Watchdog verdict transitions, by state entered.", "counter",
		func(emit func(metrics.Labels, float64)) {
			for s, n := range r.Transitions() {
				emit(metrics.Labels{"state": s.String()}, float64(n))
			}
		})
}
