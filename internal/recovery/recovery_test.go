package recovery

import (
	"testing"
	"time"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// harness wires one Manager to scripted engine state and records every
// callback invocation.
type harness struct {
	t     *testing.T
	m     *Manager
	clock proto.Clock

	state   map[proto.LockID]State
	locks   []proto.LockID
	sent    []proto.Message
	fenced  []proto.LockID
	reseeds []reseedCall
}

type reseedCall struct {
	lock      proto.LockID
	root      proto.NodeID
	epoch     uint32
	accounted modes.Mode
	copyset   []proto.Request
}

func newHarness(t *testing.T, self proto.NodeID, nodes []proto.NodeID) *harness {
	h := &harness{t: t, state: make(map[proto.LockID]State)}
	h.m = NewManager(Config{
		Self:  self,
		Nodes: nodes,
		Send:  func(m proto.Message) { h.sent = append(h.sent, m) },
		Locks: func() []proto.LockID { return h.locks },
		State: func(l proto.LockID) State { return h.state[l] },
		PrepareReseed: func(l proto.LockID, epoch uint32) {
			h.fenced = append(h.fenced, l)
			st := h.state[l]
			if epoch > st.Epoch {
				st.Epoch = epoch
				h.state[l] = st
			}
		},
		Reseed: func(l proto.LockID, root proto.NodeID, epoch uint32, acc modes.Mode, cs []proto.Request) {
			h.reseeds = append(h.reseeds, reseedCall{l, root, epoch, acc, cs})
			st := h.state[l]
			st.Epoch = epoch
			st.Token = root == self
			h.state[l] = st
		},
		Clock: &h.clock,
	})
	return h
}

func (h *harness) drainSent() []proto.Message {
	s := h.sent
	h.sent = nil
	return s
}

func TestSoleSurvivorRegeneratesLocally(t *testing.T) {
	h := newHarness(t, 0, []proto.NodeID{0, 1})
	h.locks = []proto.LockID{7}
	h.state[7] = State{Epoch: 0} // token was at the dead node

	h.m.ConfirmDead(1)

	if len(h.reseeds) != 1 {
		t.Fatalf("reseeds = %+v, want exactly one", h.reseeds)
	}
	r := h.reseeds[0]
	if r.lock != 7 || r.root != 0 || r.epoch != 1 || r.accounted != modes.None || len(r.copyset) != 0 {
		t.Fatalf("reseed = %+v", r)
	}
	if s, ok := h.m.SeedFor(7); !ok || s.Root != 0 || s.Epoch != 1 {
		t.Fatalf("SeedFor = %+v, %v", s, ok)
	}
	// The only messages are the probes... none: the sole expected set is
	// empty, so nothing should have been sent.
	for _, m := range h.drainSent() {
		t.Fatalf("unexpected message %v", m)
	}
}

func TestRoundElectsStrongestHolderAsRoot(t *testing.T) {
	h := newHarness(t, 0, []proto.NodeID{0, 1, 2, 3})
	h.locks = []proto.LockID{1}
	h.state[1] = State{Epoch: 0, Held: modes.R}

	h.m.ConfirmDead(3) // the token holder died
	probes := h.drainSent()
	if len(probes) != 2 {
		t.Fatalf("probes = %v, want to nodes 1 and 2", probes)
	}
	for i, want := range []proto.NodeID{1, 2} {
		p := probes[i]
		if p.Kind != proto.KindProbe || p.To != want || p.Epoch != 1 {
			t.Fatalf("probe %d = %+v", i, p)
		}
	}
	if len(h.fenced) == 0 || h.fenced[0] != 1 {
		t.Fatalf("own engine not fenced first: %v", h.fenced)
	}

	// Node 1 claims a W hold at a higher epoch; node 2 claims nothing.
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 1, From: 1, To: 0, Epoch: 1,
		Owned: modes.W, Seq: EncodeClaimSeq(4, true),
	})
	if len(h.reseeds) != 0 {
		t.Fatal("round closed before all claims arrived")
	}
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 1, From: 2, To: 0, Epoch: 1,
		Owned: modes.None, Seq: EncodeClaimSeq(0, false),
	})

	// Final epoch must exceed node 1's claimed epoch 4; root is the W
	// holder; the copyset carries this node's R hold.
	if len(h.reseeds) != 1 {
		t.Fatalf("reseeds = %+v", h.reseeds)
	}
	r := h.reseeds[0]
	if r.root != 1 || r.epoch != 5 || r.accounted != modes.R || len(r.copyset) != 0 {
		t.Fatalf("local reseed = %+v", r)
	}
	var recovered []proto.Message
	for _, m := range h.drainSent() {
		if m.Kind == proto.KindRecovered {
			recovered = append(recovered, m)
		}
	}
	if len(recovered) != 2 { // one per surviving peer; self applies locally
		t.Fatalf("recovered fan-out = %+v", recovered)
	}
	for _, m := range recovered {
		if m.Epoch != 5 || m.Req.Origin != 1 {
			t.Fatalf("recovered = %+v", m)
		}
		if m.To == 1 {
			// The root's copy carries the copyset: node 0's R hold.
			if len(m.Queue) != 1 || m.Queue[0].Origin != 0 || m.Queue[0].Mode != modes.R {
				t.Fatalf("root copyset = %+v", m.Queue)
			}
			if m.Owned != modes.W {
				t.Fatalf("root accounted = %v", m.Owned)
			}
		} else if len(m.Queue) != 0 {
			t.Fatalf("non-root recovered carries a copyset: %+v", m)
		}
	}
}

func TestUnsolicitedClaimStartsRound(t *testing.T) {
	h := newHarness(t, 0, []proto.NodeID{0, 1, 2})
	h.locks = nil // the regenerator has never touched the nominated lock
	h.state[9] = State{}

	h.m.ConfirmDead(2)
	h.drainSent()

	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 9, From: 1, To: 0, Epoch: 3,
		Owned: modes.R, Seq: EncodeClaimSeq(3, false),
	})
	var probed bool
	for _, m := range h.drainSent() {
		if m.Kind == proto.KindProbe && m.Lock == 9 && m.To == 1 {
			probed = true
		}
	}
	if !probed {
		t.Fatal("unsolicited claim did not start a round")
	}
}

func TestNonRegeneratorNominatesItsLocks(t *testing.T) {
	h := newHarness(t, 2, []proto.NodeID{0, 1, 2})
	h.locks = []proto.LockID{4}
	h.state[4] = State{Epoch: 2, Held: modes.U, Token: true}

	h.m.ConfirmDead(1) // node 0 survives and is the regenerator
	sent := h.drainSent()
	if len(sent) != 1 {
		t.Fatalf("sent = %+v", sent)
	}
	c := sent[0]
	if c.Kind != proto.KindClaim || c.To != 0 || c.Lock != 4 {
		t.Fatalf("nomination = %+v", c)
	}
	if ep, tok := DecodeClaimSeq(c.Seq); ep != 2 || !tok || c.Owned != modes.U {
		t.Fatalf("nomination state = %+v", c)
	}
}

// TestEarlyNominationBufferedUntilConfirm: a nomination that beats the
// local detector's own confirmation (detector skew across nodes is up
// to a heartbeat period; the claim arrives in milliseconds) must not be
// dropped — it is buffered and replayed once ConfirmDead runs, or the
// nominator's lock would never get a regeneration round.
func TestEarlyNominationBufferedUntilConfirm(t *testing.T) {
	h := newHarness(t, 0, []proto.NodeID{0, 1, 2})
	h.locks = nil // only the nominator tracks lock 9
	h.state[9] = State{}

	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 9, From: 1, To: 0, Epoch: 0,
		Owned: modes.R, Seq: EncodeClaimSeq(0, false),
	})
	if sent := h.drainSent(); len(sent) != 0 {
		t.Fatalf("acted on a nomination before local confirmation: %+v", sent)
	}

	h.m.ConfirmDead(2)
	var probed bool
	for _, msg := range h.drainSent() {
		if msg.Kind == proto.KindProbe && msg.Lock == 9 && msg.To == 1 {
			probed = true
		}
	}
	if !probed {
		t.Fatal("buffered nomination not replayed at ConfirmDead")
	}
}

// TestNominationRetriesUntilRecovered: a non-regenerator re-sends its
// nominations every ProbeTimeout (the first may be lost in the crash,
// or discarded by a regenerator whose detector lags) and stops once it
// observes the lock recovered into a newer epoch.
func TestNominationRetriesUntilRecovered(t *testing.T) {
	var timers []func()
	h := newHarness(t, 2, []proto.NodeID{0, 1, 2})
	h.m.cfg.After = func(d time.Duration, fn func()) { timers = append(timers, fn) }
	h.locks = []proto.LockID{4}
	h.state[4] = State{Epoch: 2, Held: modes.U, Token: true}

	h.m.ConfirmDead(1)
	sent := h.drainSent()
	if len(sent) != 1 || sent[0].Kind != proto.KindClaim || sent[0].To != 0 {
		t.Fatalf("nomination = %+v", sent)
	}
	if len(timers) != 1 {
		t.Fatalf("timers = %d, want the renomination timer", len(timers))
	}

	timers[0]() // nothing observed yet: re-send
	sent = h.drainSent()
	if len(sent) != 1 || sent[0].Kind != proto.KindClaim || sent[0].To != 0 || sent[0].Lock != 4 {
		t.Fatalf("renomination = %+v", sent)
	}
	if len(timers) != 2 {
		t.Fatal("renomination did not reschedule")
	}

	// The regenerator's round completes: Recovered supersedes the
	// nomination and the retry chain stops.
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindRecovered, Lock: 4, From: 0, To: 2, Epoch: 7,
		Req: proto.Request{Origin: 0}, Owned: modes.U,
	})
	h.drainSent()
	timers[1]()
	if sent := h.drainSent(); len(sent) != 0 {
		t.Fatalf("renomination fired after recovery: %+v", sent)
	}
	if len(timers) != 2 {
		t.Fatal("superseded nomination rescheduled")
	}
}

// TestFreshNominationAtSeedEpochStartsRound: after a completed round at
// epoch E every survivor sits exactly at E, so a nomination triggered
// by a subsequent crash carries epoch E — it must start a new round,
// while a nomination from strictly below E stays discarded as stale.
func TestFreshNominationAtSeedEpochStartsRound(t *testing.T) {
	h := newHarness(t, 0, []proto.NodeID{0, 1, 2})
	h.locks = []proto.LockID{3}
	h.state[3] = State{}

	// Round one: node 2 dies; node 1 claims; the round completes.
	h.m.ConfirmDead(2)
	h.drainSent()
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 3, From: 1, To: 0, Epoch: 1,
		Owned: modes.None, Seq: EncodeClaimSeq(0, false),
	})
	s, ok := h.m.SeedFor(3)
	if !ok {
		t.Fatal("round one did not complete")
	}
	h.drainSent()

	// A fresh nomination at exactly the seed epoch starts round two.
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 3, From: 1, To: 0, Epoch: s.Epoch,
		Owned: modes.None, Seq: EncodeClaimSeq(s.Epoch, false),
	})
	var probed bool
	for _, msg := range h.drainSent() {
		if msg.Kind == proto.KindProbe && msg.Lock == 3 {
			probed = true
		}
	}
	if !probed {
		t.Fatal("fresh nomination at the seed epoch was discarded as stale")
	}

	// Close round two, then verify a genuinely stale nomination (below
	// the new seed epoch) is still discarded.
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 3, From: 1, To: 0, Epoch: s.Epoch + 1,
		Owned: modes.None, Seq: EncodeClaimSeq(s.Epoch, false),
	})
	s2, ok := h.m.SeedFor(3)
	if !ok || s2.Epoch <= s.Epoch {
		t.Fatalf("round two seed = %+v, %v", s2, ok)
	}
	h.drainSent()
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 3, From: 1, To: 0, Epoch: s2.Epoch - 1,
		Owned: modes.None, Seq: EncodeClaimSeq(0, false),
	})
	for _, msg := range h.drainSent() {
		if msg.Kind == proto.KindProbe {
			t.Fatalf("stale nomination started a round: %+v", msg)
		}
	}
}

func TestProbeFencesAndClaims(t *testing.T) {
	h := newHarness(t, 1, []proto.NodeID{0, 1, 2})
	h.state[5] = State{Epoch: 0, Held: modes.R}

	h.m.HandleMessage(&proto.Message{Kind: proto.KindProbe, Lock: 5, From: 0, To: 1, Epoch: 1})
	if len(h.fenced) != 1 || h.fenced[0] != 5 {
		t.Fatalf("fenced = %v", h.fenced)
	}
	sent := h.drainSent()
	if len(sent) != 1 || sent[0].Kind != proto.KindClaim || sent[0].To != 0 || sent[0].Epoch != 1 {
		t.Fatalf("claim = %+v", sent)
	}
	if ep, tok := DecodeClaimSeq(sent[0].Seq); ep != 0 || tok || sent[0].Owned != modes.R {
		t.Fatalf("claimed state = %+v", sent[0])
	}
}

func TestCompetingRegeneratorYieldsToLowerID(t *testing.T) {
	h := newHarness(t, 1, []proto.NodeID{0, 1, 2, 3})
	h.locks = []proto.LockID{2}
	h.state[2] = State{}

	// Node 1 confirmed 0 dead first and started regenerating.
	h.m.ConfirmDead(0)
	h.drainSent()

	// But node 0 is alive and running its own round (it confirmed some
	// other death): its probe outranks ours.
	h.m.HandleMessage(&proto.Message{Kind: proto.KindProbe, Lock: 2, From: 0, To: 1, Epoch: 7})
	sent := h.drainSent()
	if len(sent) != 1 || sent[0].Kind != proto.KindClaim || sent[0].To != 0 {
		t.Fatalf("expected a yield-claim to node 0, got %+v", sent)
	}

	// The reverse: a probe from a higher ID while we run a round is
	// ignored. With node 0 still dead, node 1 is the regenerator, and
	// confirming another death starts a fresh round.
	h.m.ConfirmDead(3)
	h.drainSent()
	h.m.HandleMessage(&proto.Message{Kind: proto.KindProbe, Lock: 2, From: 2, To: 1, Epoch: 9})
	for _, m := range h.drainSent() {
		if m.Kind == proto.KindClaim && m.To == 2 {
			t.Fatalf("yielded to a higher-ID regenerator: %+v", m)
		}
	}
}

func TestRecoveredGuards(t *testing.T) {
	h := newHarness(t, 1, []proto.NodeID{0, 1})
	h.state[3] = State{Epoch: 6}

	// Older than the engine's world: ignored.
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindRecovered, Lock: 3, From: 0, To: 1, Epoch: 5,
		Req: proto.Request{Origin: 0},
	})
	if len(h.reseeds) != 0 {
		t.Fatalf("stale recovered applied: %+v", h.reseeds)
	}

	// Current: applied once, duplicate ignored.
	apply := proto.Message{
		Kind: proto.KindRecovered, Lock: 3, From: 0, To: 1, Epoch: 6,
		Req: proto.Request{Origin: 0},
	}
	h.m.HandleMessage(&apply)
	h.m.HandleMessage(&apply)
	if len(h.reseeds) != 1 {
		t.Fatalf("reseeds = %+v, want exactly one", h.reseeds)
	}
}

func TestHint(t *testing.T) {
	h := newHarness(t, 0, []proto.NodeID{0, 1})
	h.m.Hint(8, 1) // no completed round: silent
	if len(h.drainSent()) != 0 {
		t.Fatal("hint without a seed sent something")
	}
	h.locks = []proto.LockID{8}
	h.state[8] = State{}
	h.m.ConfirmDead(1)
	h.drainSent()
	h.m.Hint(8, 1)
	sent := h.drainSent()
	if len(sent) != 1 || sent[0].Kind != proto.KindRecovered || sent[0].To != 1 ||
		sent[0].Owned != modes.None || sent[0].Req.Origin != 0 {
		t.Fatalf("hint = %+v", sent)
	}
}

func TestRetryReprobesUnclaimed(t *testing.T) {
	var timers []func()
	h := newHarness(t, 0, []proto.NodeID{0, 1, 2})
	h.m.cfg.After = func(d time.Duration, fn func()) { timers = append(timers, fn) }
	h.m.cfg.ProbeTimeout = time.Second
	h.locks = []proto.LockID{1}
	h.state[1] = State{}

	h.m.ConfirmDead(2)
	h.drainSent()
	if len(timers) != 1 {
		t.Fatalf("timers = %d", len(timers))
	}
	timers[0]() // the probe to node 1 was lost; the retry resends it
	sent := h.drainSent()
	if len(sent) != 1 || sent[0].Kind != proto.KindProbe || sent[0].To != 1 {
		t.Fatalf("retry probes = %+v", sent)
	}
	if len(timers) != 2 {
		t.Fatal("retry did not reschedule")
	}
	// Round completes; the pending retry becomes a no-op.
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 1, From: 1, To: 0, Epoch: 1,
		Owned: modes.None, Seq: EncodeClaimSeq(0, false),
	})
	h.drainSent()
	timers[1]()
	if len(h.drainSent()) != 0 {
		t.Fatal("retry fired after round completion")
	}
	if len(timers) != 2 {
		t.Fatal("completed round rescheduled its retry")
	}
}

func TestConfirmDeadRefreshesActiveRounds(t *testing.T) {
	h := newHarness(t, 0, []proto.NodeID{0, 1, 2})
	h.locks = []proto.LockID{1}
	h.state[1] = State{}

	h.m.ConfirmDead(2)
	h.drainSent()
	// Node 1 dies too before claiming: the refreshed round must close on
	// its own (the subsequent sole-survivor round for the new death is
	// expected too).
	h.m.ConfirmDead(1)
	if len(h.reseeds) == 0 || h.reseeds[0].root != 0 {
		t.Fatalf("cascaded death did not close the round: %+v", h.reseeds)
	}
	if s, ok := h.m.SeedFor(1); !ok || s.Root != 0 {
		t.Fatalf("SeedFor = %+v, %v", s, ok)
	}
}

func TestDetectorTransitions(t *testing.T) {
	var suspects, confirms, alives []proto.NodeID
	t0 := time.Unix(0, 0)
	d := NewDetector(DetectorConfig{
		Peers:        []proto.NodeID{1, 2},
		SuspectAfter: time.Second,
		ConfirmAfter: 3 * time.Second,
		OnSuspect:    func(p proto.NodeID) { suspects = append(suspects, p) },
		OnConfirm:    func(p proto.NodeID) { confirms = append(confirms, p) },
		OnAlive:      func(p proto.NodeID) { alives = append(alives, p) },
	}, t0)

	d.Tick(t0.Add(500 * time.Millisecond))
	if len(suspects)+len(confirms) != 0 {
		t.Fatal("transitions before any threshold")
	}

	// Node 2 keeps talking; node 1 goes silent.
	d.Observe(2, t0.Add(1500*time.Millisecond))
	d.Tick(t0.Add(2 * time.Second))
	if len(suspects) != 1 || suspects[0] != 1 || d.State(1) != PeerSuspect || d.State(2) != PeerHealthy {
		t.Fatalf("suspects = %v, state(1) = %v", suspects, d.State(1))
	}
	d.Observe(2, t0.Add(2200*time.Millisecond))
	d.Tick(t0.Add(2500 * time.Millisecond))
	if len(suspects) != 1 {
		t.Fatal("suspect transition re-fired")
	}
	d.Observe(2, t0.Add(3500*time.Millisecond))

	d.Tick(t0.Add(4 * time.Second))
	if len(confirms) != 1 || confirms[0] != 1 || d.State(1) != PeerConfirmed {
		t.Fatalf("confirms = %v", confirms)
	}

	// The peer restarts: healthy again, OnAlive fires once.
	d.Observe(1, t0.Add(5*time.Second))
	if len(alives) != 1 || alives[0] != 1 || d.State(1) != PeerHealthy {
		t.Fatalf("alives = %v, state = %v", alives, d.State(1))
	}

	// An unwatched node never transitions.
	d.Observe(9, t0.Add(5*time.Second))
	d.Tick(t0.Add(20 * time.Second))
	if d.State(9) != PeerHealthy {
		t.Fatal("unwatched node tracked")
	}
}

// TestQuorumGatesCommit: with a majority quorum configured, a sole
// survivor of a 5-node cluster (a minority component) must not commit
// a regeneration round — and the stalled round's retry keeps probing
// the confirmed-dead nodes so a returning majority can unblock it.
func TestQuorumGatesCommit(t *testing.T) {
	var timers []func()
	h := newHarness(t, 0, []proto.NodeID{0, 1, 2, 3, 4})
	h.m.cfg.Quorum = 3
	h.m.cfg.After = func(d time.Duration, fn func()) { timers = append(timers, fn) }
	h.locks = []proto.LockID{1}
	h.state[1] = State{}

	for _, p := range []proto.NodeID{1, 2, 3, 4} {
		h.m.ConfirmDead(p)
	}
	h.drainSent()
	if len(h.reseeds) != 0 {
		t.Fatalf("minority committed a round: %+v", h.reseeds)
	}
	if _, ok := h.m.SeedFor(1); ok {
		t.Fatal("minority minted a seed")
	}

	// The retry wave must probe the dead nodes (the only path to a
	// quorum), not just the empty expected set.
	var fired bool
	for _, fn := range timers {
		fn()
		fired = true
	}
	if !fired {
		t.Fatal("no retry scheduled for the stalled round")
	}
	var probed int
	for _, msg := range h.drainSent() {
		if msg.Kind == proto.KindProbe && msg.Lock == 1 {
			probed++
		}
	}
	if probed == 0 {
		t.Fatal("stalled round did not probe the dead nodes")
	}

	// Two dead nodes answer the probes: their claims are fence acks,
	// complete the quorum, and commit the round.
	for _, p := range []proto.NodeID{1, 2} {
		h.m.HandleMessage(&proto.Message{
			Kind: proto.KindClaim, Lock: 1, From: p, To: 0, Epoch: 1,
			Owned: modes.None, Seq: EncodeClaimSeq(0, false),
		})
	}
	if len(h.reseeds) != 1 {
		t.Fatalf("quorum reached but round did not commit: %+v", h.reseeds)
	}
	if s, ok := h.m.SeedFor(1); !ok || s.Epoch == 0 {
		t.Fatalf("SeedFor = %+v, %v", s, ok)
	}
}

// TestQuorumSatisfiedByMajority: the normal case — one death in a
// 3-node cluster leaves a 2-node majority, which commits as before.
func TestQuorumSatisfiedByMajority(t *testing.T) {
	h := newHarness(t, 0, []proto.NodeID{0, 1, 2})
	h.m.cfg.Quorum = 2
	h.locks = []proto.LockID{7}
	h.state[7] = State{}

	h.m.ConfirmDead(2)
	h.drainSent()
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 7, From: 1, To: 0, Epoch: 1,
		Owned: modes.None, Seq: EncodeClaimSeq(0, false),
	})
	if len(h.reseeds) != 1 {
		t.Fatalf("majority round did not commit: %+v", h.reseeds)
	}
}

// TestColdStartRegeneratorRunsRounds: the lowest-ID member of a
// journal-restored cluster reconciles its replayed locks with rounds
// even though nothing is confirmed dead, and the final epoch lands
// above every journaled epoch.
func TestColdStartRegeneratorRunsRounds(t *testing.T) {
	h := newHarness(t, 0, []proto.NodeID{0, 1, 2})
	h.locks = []proto.LockID{5}
	h.state[5] = State{Epoch: 3} // replayed from the journal

	h.m.ColdStart([]proto.LockID{5})
	probes := h.drainSent()
	if len(probes) != 2 {
		t.Fatalf("cold-start probes = %+v", probes)
	}
	// Peers answer from their own replayed state; node 2's journal saw
	// a later epoch and the token.
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 5, From: 1, To: 0, Epoch: probes[0].Epoch,
		Owned: modes.None, Seq: EncodeClaimSeq(2, false),
	})
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 5, From: 2, To: 0, Epoch: probes[0].Epoch,
		Owned: modes.None, Seq: EncodeClaimSeq(6, true),
	})
	if len(h.reseeds) != 1 {
		t.Fatalf("cold-start round did not commit: %+v", h.reseeds)
	}
	r := h.reseeds[0]
	if r.epoch <= 6 {
		t.Fatalf("final epoch %d not above the max journaled epoch 6", r.epoch)
	}
	if r.root != 2 {
		t.Fatalf("root = %d, want the highest-epoch token claimant 2", r.root)
	}
}

// TestColdNominationActedOnWithoutDeaths: a non-regenerator's cold
// nomination must start a round on the regenerator even though its
// dead set is empty; an ordinary (non-cold) claim in the same position
// still buffers.
func TestColdNominationActedOnWithoutDeaths(t *testing.T) {
	h := newHarness(t, 0, []proto.NodeID{0, 1, 2})
	h.state[9] = State{Epoch: 2}

	// Ordinary nomination with no confirmed death: buffered.
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 9, From: 1, To: 0, Epoch: 2,
		Owned: modes.None, Seq: EncodeClaimSeq(2, false),
	})
	if sent := h.drainSent(); len(sent) != 0 {
		t.Fatalf("ordinary claim acted on without deaths: %+v", sent)
	}

	// Cold nomination: starts a round immediately.
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 9, From: 1, To: 0, Epoch: 2,
		Owned: modes.None, Seq: EncodeClaimSeq(2, false) | coldClaimBit,
	})
	var probed bool
	for _, msg := range h.drainSent() {
		if msg.Kind == proto.KindProbe && msg.Lock == 9 {
			probed = true
		}
	}
	if !probed {
		t.Fatal("cold nomination did not start a round")
	}
}

// TestStaleColdNominationGetsHint: a member that restarts long after
// the cluster recovered past its journaled epoch must receive the
// completed-round outcome in reply, terminating its nomination loop.
func TestStaleColdNominationGetsHint(t *testing.T) {
	h := newHarness(t, 0, []proto.NodeID{0, 1, 2})
	h.locks = []proto.LockID{4}
	h.state[4] = State{}

	// A completed round leaves a seed at epoch >= 1.
	h.m.ConfirmDead(2)
	h.drainSent()
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 4, From: 1, To: 0, Epoch: 1,
		Owned: modes.None, Seq: EncodeClaimSeq(0, false),
	})
	s, ok := h.m.SeedFor(4)
	if !ok {
		t.Fatal("setup round did not complete")
	}
	h.drainSent()
	h.m.Alive(2)

	// Node 2 restarts from a journal frozen before the round.
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 4, From: 2, To: 0, Epoch: s.Epoch - 1,
		Owned: modes.None, Seq: EncodeClaimSeq(s.Epoch-1, false) | coldClaimBit,
	})
	sent := h.drainSent()
	if len(sent) != 1 || sent[0].Kind != proto.KindRecovered || sent[0].To != 2 ||
		sent[0].Epoch != s.Epoch {
		t.Fatalf("stale cold nomination reply = %+v, want a hint", sent)
	}
}

// TestConfirmDeadRegeneratesSeedRootedLocks: a lock whose recovered
// root dies must regenerate eagerly from the seed table even when no
// survivor tracks an engine for it any more (ROADMAP item 2: eviction
// after recovery leaves the seed as the only reference).
func TestConfirmDeadRegeneratesSeedRootedLocks(t *testing.T) {
	h := newHarness(t, 0, []proto.NodeID{0, 1, 2, 3})
	h.locks = []proto.LockID{6}
	h.state[6] = State{Held: modes.None}

	// Round one: node 3 dies, node 1 claims the token, becoming root.
	h.m.ConfirmDead(3)
	h.drainSent()
	for _, p := range []proto.NodeID{1, 2} {
		tok := p == 1
		h.m.HandleMessage(&proto.Message{
			Kind: proto.KindClaim, Lock: 6, From: p, To: 0, Epoch: 1,
			Owned: modes.None, Seq: EncodeClaimSeq(0, tok),
		})
	}
	s, ok := h.m.SeedFor(6)
	if !ok || s.Root != 1 {
		t.Fatalf("round one seed = %+v, %v", s, ok)
	}
	h.drainSent()

	// All engines idle out and evict: the member no longer tracks lock 6.
	h.locks = nil

	// The recovered root dies. The seed table is the only reference left;
	// the regenerator must still start a round for lock 6.
	h.m.ConfirmDead(1)
	var probed bool
	for _, msg := range h.drainSent() {
		if msg.Kind == proto.KindProbe && msg.Lock == 6 {
			probed = true
		}
	}
	if !probed {
		t.Fatal("seed-rooted lock not regenerated eagerly on root death")
	}
}

// TestConfirmDeadUsesLocksReferencing: the host's probable-owner scan
// feeds extra locks into eager regeneration.
func TestConfirmDeadUsesLocksReferencing(t *testing.T) {
	h := newHarness(t, 0, []proto.NodeID{0, 1, 2})
	h.m.cfg.LocksReferencing = func(dead proto.NodeID) []proto.LockID {
		if dead == 2 {
			return []proto.LockID{42}
		}
		return nil
	}
	h.state[42] = State{}

	h.m.ConfirmDead(2)
	var probed bool
	for _, msg := range h.drainSent() {
		if msg.Kind == proto.KindProbe && msg.Lock == 42 {
			probed = true
		}
	}
	if !probed {
		t.Fatal("LocksReferencing lock not regenerated")
	}
}
