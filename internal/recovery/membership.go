package recovery

import (
	"sort"

	"hierlock/internal/proto"
)

// This file is the manager's runtime-membership surface: joins and
// graceful departures reuse the crash-recovery machinery (a join is a
// recovery round with zero lost tokens; a departure is a crash whose
// victim got to nominate its own locks first). All methods here follow
// the manager's serialization contract: external serialization with the
// other entry points, except Adopt, which only touches the
// concurrent-safe seed table.

// AddNode admits a peer into the configured node set: future rounds
// expect (and count) it, and it is a regenerator candidate by ID like
// any original member. Idempotent. A peer previously confirmed dead and
// re-added is treated as alive again.
func (m *Manager) AddNode(peer proto.NodeID) {
	delete(m.dead, peer)
	for _, n := range m.nodes {
		if n == peer {
			return
		}
	}
	m.nodes = append(m.nodes, peer)
	sort.Slice(m.nodes, func(i, j int) bool { return m.nodes[i] < m.nodes[j] })
}

// RemoveNode retires a peer from the configured node set — the inverse
// of AddNode, used for graceful departures. Unlike ConfirmDead, which
// keeps the node configured (a crashed member may restart), a removed
// node stops being probed, stops counting toward quorums, and stops
// being a regenerator candidate. In-flight rounds waiting on its claim
// drop the expectation, which may complete them. Idempotent.
func (m *Manager) RemoveNode(peer proto.NodeID) {
	delete(m.dead, peer)
	i := -1
	for j, n := range m.nodes {
		if n == peer {
			i = j
			break
		}
	}
	if i < 0 {
		return
	}
	m.nodes = append(m.nodes[:i], m.nodes[i+1:]...)

	var refreshed []*round
	for _, r := range m.round {
		if r.expected[peer] || func() bool { _, ok := r.claims[peer]; return ok }() {
			delete(r.expected, peer)
			delete(r.claims, peer)
			refreshed = append(refreshed, r)
		}
	}
	sort.Slice(refreshed, func(i, j int) bool { return refreshed[i].lock < refreshed[j].lock })
	for _, r := range refreshed {
		m.finishIfComplete(r)
	}
}

// Depart processes a peer's graceful departure: the peer is removed
// from the node set, and every lock it nominated (the tokens it held),
// anchors as a seed root, or threads a probable-owner chain through is
// regenerated among the survivors. The regeneration rounds run with the
// leaver already excluded, so the new world cannot re-reference it.
//
// A non-regenerator's nominations carry the leaver's identity
// (departure-marked claims) so the regenerator — which received the
// same LEAVE broadcast and runs the round on its own — can drop them
// as redundant once its round has completed, instead of reading a
// nomination at the seed epoch as a fresh event and running a second
// round whose reseed races grants issued under the first.
func (m *Manager) Depart(peer proto.NodeID, nominated []proto.LockID) {
	m.RemoveNode(peer)
	reg := m.regenerator()
	for _, lock := range mergeLocks(m.deadLocks(peer), nominated) {
		if reg != m.cfg.Self {
			m.nominateDepart(lock, reg, peer)
			continue
		}
		m.startRound(lock)
	}
}

// nominateDepart sends one departure-marked cold nomination for lock to
// the regenerator. Unlike nominate it does not arm the renominate loop:
// the regenerator did not crash, so the claim travels a live transport,
// and if the regenerator dies anyway the leaver's silence trips crash
// recovery, whose ConfirmDead nominations take over. A retry loop here
// would spin forever on the redundant case (the regenerator rightly
// drops the nomination, so the local epoch never advances past it).
func (m *Manager) nominateDepart(lock proto.LockID, reg, leaver proto.NodeID) {
	st := m.cfg.State(lock)
	m.cfg.Send(proto.Message{
		Kind: proto.KindClaim, Lock: lock,
		From: m.cfg.Self, To: reg, TS: m.cfg.Clock.Tick(),
		Epoch: st.Epoch, Owned: st.Held,
		Seq: encodeDepartClaim(EncodeClaimSeq(st.Epoch, st.Token)|coldClaimBit, leaver),
	})
}

// Regenerate forces a regeneration round for one lock: the local node
// starts it if it is the regenerator, and otherwise nominates the lock
// to whoever is. The nomination is cold-marked — membership changes,
// like cold starts, regenerate with no confirmed death anywhere.
func (m *Manager) Regenerate(lock proto.LockID) {
	if reg := m.regenerator(); reg != m.cfg.Self {
		m.nominate(lock, reg, true)
		return
	}
	m.startRound(lock)
}

// Adopt installs a completed-round outcome learned out of band (a
// joiner seeding its world from a member's JoinAck). Outcomes older
// than what the table already holds are ignored. Safe for concurrent
// use, like the seed-table reads it complements.
func (m *Manager) Adopt(lock proto.LockID, s Seed) {
	m.tableMu.Lock()
	defer m.tableMu.Unlock()
	if cur, ok := m.table[lock]; ok && cur.Epoch >= s.Epoch {
		return
	}
	m.table[lock] = s
}

// SetQuorum updates the round-commit quorum, tracking membership
// changes (a majority of 4 is not a majority of 3). In-flight rounds
// re-check the new threshold at their next claim or retry.
func (m *Manager) SetQuorum(q int) { m.cfg.Quorum = q }

// SetEpochFloor guarantees every future round this node starts proposes
// an epoch strictly above floor. A joiner sets it to the highest epoch
// any member reported, so a round it later regenerates cannot collide
// with a world it never observed.
func (m *Manager) SetEpochFloor(floor uint32) {
	if floor > m.epochFloor {
		m.epochFloor = floor
	}
}

// Nodes returns the configured node set (sorted ascending), including
// Self and any confirmed-dead members.
func (m *Manager) Nodes() []proto.NodeID {
	return append([]proto.NodeID(nil), m.nodes...)
}
