package recovery

import (
	"testing"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// Regression test: a graceful departure used to trigger two
// regeneration rounds. Every survivor processed the leaver's LEAVE
// broadcast; the regenerator ran the round, and any non-regenerator
// whose copy of the LEAVE arrived after the round's Recovered
// nominated the lock at exactly the seed epoch — indistinguishable,
// pre-fix, from a fresh crash nomination, so the regenerator ran a
// second round whose reseed raced grants issued under the first
// (observed live as a waiter fenced forever against a superseded
// epoch). Departure-marked nominations carry the leaver's ID so the
// regenerator can drop the redundant ones.
func TestRedundantDepartureNominationDropped(t *testing.T) {
	h := newHarness(t, 0, []proto.NodeID{0, 1, 2})
	h.locks = []proto.LockID{3}
	h.state[3] = State{}

	// Node 2 leaves gracefully, nominating lock 3; node 1's claim
	// completes the round at epoch 1.
	h.m.Depart(2, []proto.LockID{3})
	h.drainSent()
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 3, From: 1, To: 0, Epoch: 1,
		Owned: modes.None, Seq: EncodeClaimSeq(0, false),
	})
	s, ok := h.m.SeedFor(3)
	if !ok || s.Epoch != 1 {
		t.Fatalf("depart round did not complete: seed = %+v, %v", s, ok)
	}
	h.drainSent()
	reseeds := len(h.reseeds)

	// Node 1's own copy of the LEAVE arrives after it saw Recovered, so
	// its nomination carries the post-round epoch — equal to the seed
	// epoch, the signature that pre-fix forced a second round.
	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 3, From: 1, To: 0, Epoch: s.Epoch,
		Owned: modes.None,
		Seq:   encodeDepartClaim(EncodeClaimSeq(s.Epoch, false)|coldClaimBit, 2),
	})

	var hinted bool
	for _, msg := range h.drainSent() {
		switch msg.Kind {
		case proto.KindProbe:
			t.Fatalf("redundant departure nomination started a second round: %+v", msg)
		case proto.KindRecovered:
			hinted = true
		}
	}
	if !hinted {
		t.Fatal("redundant departure nomination was not answered with the round outcome")
	}
	if s2, _ := h.m.SeedFor(3); s2.Epoch != 1 {
		t.Fatalf("seed epoch churned to %d, want 1", s2.Epoch)
	}
	if len(h.reseeds) != reseeds {
		t.Fatalf("local engine reseeded again: %+v", h.reseeds[reseeds:])
	}
}

// The redundancy guard must not swallow the case it exists to cover:
// a departure nomination for a LEAVE the regenerator never received
// (the leaver is still in its configured node set) starts a round.
func TestDepartureNominationForUnseenLeaveStartsRound(t *testing.T) {
	h := newHarness(t, 0, []proto.NodeID{0, 1, 2})

	h.m.HandleMessage(&proto.Message{
		Kind: proto.KindClaim, Lock: 9, From: 1, To: 0, Epoch: 0,
		Owned: modes.None,
		Seq:   encodeDepartClaim(EncodeClaimSeq(0, false)|coldClaimBit, 2),
	})

	var probed bool
	for _, msg := range h.drainSent() {
		if msg.Kind == proto.KindProbe && msg.Lock == 9 {
			probed = true
		}
	}
	if !probed {
		t.Fatal("departure nomination for an unseen LEAVE did not start a round")
	}
}

// A non-regenerator survivor processing a LEAVE sends exactly one
// departure-marked cold nomination per lock, addressed to the
// regenerator and carrying the leaver's identity.
func TestDepartNonRegeneratorSendsDepartureMarkedClaim(t *testing.T) {
	h := newHarness(t, 1, []proto.NodeID{0, 1, 2})
	h.state[5] = State{Epoch: 1}

	h.m.Depart(2, []proto.LockID{5})

	sent := h.drainSent()
	if len(sent) != 1 {
		t.Fatalf("sent %d messages, want exactly one nomination: %+v", len(sent), sent)
	}
	msg := sent[0]
	if msg.Kind != proto.KindClaim || msg.To != 0 || msg.Lock != 5 || msg.Epoch != 1 {
		t.Fatalf("nomination = %+v", msg)
	}
	if !IsColdClaim(msg.Seq) {
		t.Fatal("departure nomination is not cold-marked")
	}
	if leaver, ok := departClaimLeaver(msg.Seq); !ok || leaver != 2 {
		t.Fatalf("departClaimLeaver = %d, %v, want 2, true", leaver, ok)
	}
	if epoch, token := DecodeClaimSeq(msg.Seq); epoch != 1 || token {
		t.Fatalf("claim payload = epoch %d token %v, want epoch 1 token false", epoch, token)
	}
}
