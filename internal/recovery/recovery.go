// Package recovery implements crash recovery for the token-based locking
// protocols: confirmed loss of a node triggers an epoch-stamped token
// regeneration round that rebuilds each lock's world from the survivors'
// accounted state.
//
// The paper's protocols (internal/hlock, internal/naimi) assume a
// reliable, crash-free system: the token exists exactly once, probable-
// owner chains always terminate, and queued requests are eventually
// served. A fail-stop crash that destroys a node's memory breaks all
// three — a crashed token holder wedges its locks forever. This package
// restores them without touching the failure-free fast path:
//
//  1. A failure detector (Detector for live transports; the simulator
//     models its own from fault-plan ground truth) confirms a peer dead
//     after a conservative silence threshold and tells the Manager.
//
//  2. The surviving node with the lowest ID becomes the regenerator. It
//     runs one round per known lock: a Probe broadcast carrying a
//     proposed epoch (higher than any it has seen) fences every
//     survivor's engine — from the claim until the round closes, the
//     engine drops all traffic and completes no operations, so the state
//     it claims cannot drift. Each survivor answers with a Claim
//     reporting its held mode, whether it has the token, and its own
//     epoch.
//
//  3. With all claims in, the regenerator fixes the final epoch above
//     every claimed epoch, picks the new root — the strongest surviving
//     holder, then any token claimant, then itself — and broadcasts
//     Recovered. Each receiver reseeds its engine: routing and queue
//     state from the old world is demolished, the root regenerates the
//     token with the surviving holders installed as its copyset, and
//     nodes with an outstanding request re-issue it to the root under
//     the original trace ID, so a request that also survived inside a
//     travelling queue deduplicates instead of double-granting.
//
// Epochs fence the old world out: every protocol message carries the
// sender's epoch (wire format v3) and engines drop mismatches, so a
// pre-crash token frame that limps in late cannot resurrect a stale
// grant. A node that was down during the round (and therefore claims
// nothing) catches up from a recovery hint; any hold it still thinks it
// has was not accounted for and is surfaced to its client as lost.
package recovery

import (
	"sort"
	"sync"
	"time"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// State is a node's accountable per-lock engine state, captured for a
// recovery claim before the engine is fenced.
type State struct {
	// Epoch is the engine's current recovery epoch.
	Epoch uint32
	// Held is the mode the node currently holds (None outside critical
	// sections; exclusive-only protocols report W).
	Held modes.Mode
	// Token reports whether the node holds the lock's token.
	Token bool
}

// Seed is the outcome of a completed regeneration round for one lock:
// the regenerated root and the round's final epoch. Hosts consult the
// manager's SeedFor when lazily creating engines so post-recovery locks
// spring into existence in the recovered world, not the initial one.
type Seed struct {
	Root  proto.NodeID
	Epoch uint32
}

// EncodeClaimSeq packs a claimant's own epoch and token bit into the
// Seq field of a Claim message.
func EncodeClaimSeq(epoch uint32, token bool) uint64 {
	s := uint64(epoch) << 1
	if token {
		s |= 1
	}
	return s
}

// DecodeClaimSeq unpacks EncodeClaimSeq.
func DecodeClaimSeq(s uint64) (epoch uint32, token bool) {
	return uint32(s >> 1), s&1 == 1
}

// coldClaimBit marks a nomination sent by a journal-restored member
// during cold start: no death has been confirmed anywhere, but the
// sender's replayed state must be reconciled into a fresh epoch. The
// bit rides in Seq far above the epoch payload, so DecodeClaimSeq on
// old receivers is unaffected (uint32 truncation discards it).
const coldClaimBit = uint64(1) << 63

// IsColdClaim reports whether a claim's Seq carries the cold-start
// nomination marker.
func IsColdClaim(seq uint64) bool { return seq&coldClaimBit != 0 }

// departClaimBit marks a nomination triggered by processing a peer's
// graceful LEAVE; bits 33–48 carry the leaver's ID. The context lets
// the regenerator tell a redundant nomination — it processed the same
// LEAVE itself and already regenerated the lock among the survivors —
// from one covering a LEAVE it never received. Without it, any
// survivor whose copy of the LEAVE arrives after the depart round's
// Recovered nominates at exactly the seed epoch, which reads as a
// fresh event and forces a second, redundant round whose reseed races
// grants issued under the first. Like coldClaimBit, the payload rides
// above the epoch bits, so DecodeClaimSeq is unaffected.
const (
	departClaimBit    = uint64(1) << 62
	departLeaverShift = 33
)

// encodeDepartClaim stamps a claim Seq as a departure nomination for
// leaver. Node IDs are small dense integers; 16 bits is generous.
func encodeDepartClaim(seq uint64, leaver proto.NodeID) uint64 {
	return seq | departClaimBit | uint64(uint16(leaver))<<departLeaverShift
}

// departClaimLeaver extracts the departing peer from a departure-marked
// nomination, reporting false for every other claim.
func departClaimLeaver(seq uint64) (proto.NodeID, bool) {
	if seq&departClaimBit == 0 {
		return proto.NoNode, false
	}
	return proto.NodeID(uint16(seq >> departLeaverShift)), true
}

// Config wires a Manager to its host (the simulated cluster node or the
// live member runtime). All callbacks are invoked synchronously from
// Manager methods; they must not call back into the Manager except for
// SeedFor and Hint, which use separate internal locking exactly so that
// lazy engine creation inside State or Reseed can consult them.
type Config struct {
	// Self is the node this manager runs on.
	Self proto.NodeID
	// Nodes lists all cluster members, including Self.
	Nodes []proto.NodeID
	// Send transmits one protocol message (best-effort; recovery rounds
	// retry via ProbeTimeout).
	Send func(proto.Message)
	// Locks returns the locks this node currently tracks state for. The
	// regenerator runs a round per tracked lock; survivors nominate
	// their own tracked locks with unsolicited claims, so the union of
	// all survivors' lock sets is regenerated.
	Locks func() []proto.LockID
	// State captures the accountable engine state for a lock (creating
	// the engine lazily if the host does so).
	State func(proto.LockID) State
	// PrepareReseed fences the lock's engine for a round at the proposed
	// epoch (see hlock.Engine.PrepareReseed).
	PrepareReseed func(lock proto.LockID, epoch uint32)
	// Reseed installs a completed round's outcome into the lock's
	// engine: root regenerated the token at epoch; accounted is the held
	// mode this node's claim reported (None for non-participants);
	// copyset (root only) lists the other surviving holders. The host
	// dispatches the engine's resulting messages and surfaces lost holds
	// to clients.
	Reseed func(lock proto.LockID, root proto.NodeID, epoch uint32, accounted modes.Mode, copyset []proto.Request)
	// Clock is the node's Lamport clock, shared with its engines.
	Clock *proto.Clock
	// After schedules fn after d (the simulator's At, or a timer). Nil
	// disables probe retries.
	After func(d time.Duration, fn func())
	// ProbeTimeout is the regenerator's re-probe interval for survivors
	// that have not claimed (default 1s).
	ProbeTimeout time.Duration
	// Quorum, when positive, is the minimum number of nodes (the
	// regenerator plus claimants) that must have fenced at a round's
	// proposed epoch before the round commits. With a majority quorum a
	// regenerator cut off in a minority partition can never gather
	// enough claims to broadcast Recovered, so a minority component
	// cannot mint a competing token — at the cost of recovery halting
	// entirely when a majority of the configured cluster is unreachable
	// (see docs/PROTOCOL.md). Zero disables the gate (a round commits
	// once every non-dead survivor has claimed, the pre-quorum
	// behavior).
	Quorum int
	// LocksReferencing, when non-nil, returns locks whose probable-owner
	// chain passes through the given node (engine parent/copyset/queue
	// references, journal records naming it as root). ConfirmDead
	// regenerates these eagerly in addition to the locks the node
	// tracks live engines for, so a lock whose only referent was the
	// dead node does not stay wedged until a client stumbles into it.
	LocksReferencing func(proto.NodeID) []proto.LockID
	// OnRoundStart, when non-nil, observes each regeneration round this
	// node begins as regenerator, with the proposed epoch. Invoked
	// synchronously like every other callback; hosts use it to stamp
	// round-duration metrics.
	OnRoundStart func(lock proto.LockID, proposed uint32)
	// OnRoundDone, when non-nil, observes each round this node commits
	// (rounds yielded to a higher-ID regenerator are not reported), with
	// the final epoch.
	OnRoundDone func(lock proto.LockID, final uint32)
}

type claim struct {
	held  modes.Mode
	epoch uint32
	token bool
}

type round struct {
	lock     proto.LockID
	proposed uint32
	self     claim
	expected map[proto.NodeID]bool
	claims   map[proto.NodeID]claim
}

// Manager runs the recovery protocol for one node. Methods other than
// SeedFor, Hint and Table must be externally serialized with each other
// and with the host's engine access (the simulator's single goroutine,
// or the member runtime's recovery mutex); SeedFor/Hint/Table are safe
// to call concurrently, including from inside Config callbacks.
type Manager struct {
	cfg   Config
	nodes []proto.NodeID // sorted
	dead  map[proto.NodeID]bool
	round map[proto.LockID]*round
	// pending buffers nominations (unsolicited claims) that arrived
	// before the local detector confirmed any death — detectors across
	// nodes skew by up to a heartbeat period while the claims arrive in
	// milliseconds, so this race is common. ConfirmDead replays them;
	// per lock the highest nominated epoch is kept.
	pending map[proto.LockID]uint32

	tableMu sync.RWMutex
	table   map[proto.LockID]Seed

	rounds uint64 // completed regeneration rounds (stat)

	// epochFloor lower-bounds the proposed epoch of every round this node
	// starts (see SetEpochFloor; a joiner must never propose at or below
	// an epoch the cluster has already burned).
	epochFloor uint32
}

// NewManager creates the manager. The configured node set changes only
// through the membership methods (AddNode, RemoveNode, Depart).
func NewManager(cfg Config) *Manager {
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	m := &Manager{
		cfg:     cfg,
		nodes:   append([]proto.NodeID(nil), cfg.Nodes...),
		dead:    make(map[proto.NodeID]bool),
		round:   make(map[proto.LockID]*round),
		pending: make(map[proto.LockID]uint32),
		table:   make(map[proto.LockID]Seed),
	}
	sort.Slice(m.nodes, func(i, j int) bool { return m.nodes[i] < m.nodes[j] })
	return m
}

// Rounds returns how many regeneration rounds this node has completed
// as regenerator.
func (m *Manager) Rounds() uint64 { return m.rounds }

// Dead reports whether the manager currently considers peer dead.
func (m *Manager) Dead(peer proto.NodeID) bool { return m.dead[peer] }

// SeedFor returns the recovered world for a lock, if any round has
// completed for it. Safe for concurrent use.
func (m *Manager) SeedFor(lock proto.LockID) (Seed, bool) {
	m.tableMu.RLock()
	defer m.tableMu.RUnlock()
	s, ok := m.table[lock]
	return s, ok
}

// Table returns a snapshot of all completed-round outcomes. Safe for
// concurrent use.
func (m *Manager) Table() map[proto.LockID]Seed {
	m.tableMu.RLock()
	defer m.tableMu.RUnlock()
	out := make(map[proto.LockID]Seed, len(m.table))
	for k, v := range m.table {
		out[k] = v
	}
	return out
}

func (m *Manager) setSeed(lock proto.LockID, s Seed) {
	m.tableMu.Lock()
	m.table[lock] = s
	m.tableMu.Unlock()
}

// regenerator returns the lowest-ID node not confirmed dead.
func (m *Manager) regenerator() proto.NodeID {
	for _, n := range m.nodes {
		if !m.dead[n] {
			return n
		}
	}
	return m.cfg.Self
}

// isConfigured reports whether n is in the configured node set (dead
// or alive — a gracefully departed node is not).
func (m *Manager) isConfigured(n proto.NodeID) bool {
	for _, node := range m.nodes {
		if node == n {
			return true
		}
	}
	return false
}

// sortedLocks returns the tracked locks in ascending order for
// deterministic round and message ordering.
func (m *Manager) sortedLocks() []proto.LockID {
	locks := append([]proto.LockID(nil), m.cfg.Locks()...)
	sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
	return locks
}

// deadLocks returns every lock whose recovery depends on the dead
// node beyond the live tracked set: completed-round seeds naming it as
// root (survivors may have evicted their engines for those locks since,
// so Locks() no longer reports them) plus whatever the host's
// LocksReferencing scan finds (engine chains, journal records).
func (m *Manager) deadLocks(peer proto.NodeID) []proto.LockID {
	var out []proto.LockID
	m.tableMu.RLock()
	for lock, s := range m.table {
		if s.Root == peer {
			out = append(out, lock)
		}
	}
	m.tableMu.RUnlock()
	if m.cfg.LocksReferencing != nil {
		out = append(out, m.cfg.LocksReferencing(peer)...)
	}
	return out
}

// mergeLocks unions b into sorted a, returning a sorted, deduplicated
// lock list.
func mergeLocks(a, b []proto.LockID) []proto.LockID {
	seen := make(map[proto.LockID]bool, len(a)+len(b))
	out := make([]proto.LockID, 0, len(a)+len(b))
	for _, s := range [][]proto.LockID{a, b} {
		for _, l := range s {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConfirmDead tells the manager the failure detector has confirmed peer
// dead. Idempotent. If this node is now the regenerator it starts (or
// refreshes) a round per tracked lock; otherwise it nominates its
// tracked locks to the regenerator with unsolicited claims, covering
// locks the regenerator has never touched.
func (m *Manager) ConfirmDead(peer proto.NodeID) {
	if peer == m.cfg.Self || m.dead[peer] {
		return
	}
	m.dead[peer] = true

	// Refresh in-flight rounds: stop waiting on the newly dead.
	var refreshed []*round
	for _, r := range m.round {
		if r.expected[peer] {
			delete(r.expected, peer)
			delete(r.claims, peer)
			refreshed = append(refreshed, r)
		}
	}
	sort.Slice(refreshed, func(i, j int) bool { return refreshed[i].lock < refreshed[j].lock })
	for _, r := range refreshed {
		m.finishIfComplete(r)
	}

	if reg := m.regenerator(); reg != m.cfg.Self {
		for _, lock := range mergeLocks(m.sortedLocks(), m.deadLocks(peer)) {
			m.nominate(lock, reg, false)
		}
		return
	}
	// Run a round per tracked lock and per lock the dead node is known
	// to anchor (seed-table roots, probable-owner references), plus
	// every buffered nomination for a lock only its nominator tracks
	// (they arrived before our detector confirmed and would otherwise be
	// lost — the nominator's locks then never regenerate).
	locks := mergeLocks(m.sortedLocks(), m.deadLocks(peer))
	tracked := make(map[proto.LockID]bool, len(locks))
	for _, lock := range locks {
		tracked[lock] = true
	}
	for lock, epoch := range m.pending {
		if tracked[lock] {
			continue // consumed by the tracked-lock round below
		}
		if s, ok := m.SeedFor(lock); ok && epoch < s.Epoch {
			delete(m.pending, lock) // predates a completed round
			continue
		}
		locks = append(locks, lock)
	}
	sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
	for _, lock := range locks {
		m.startRound(lock)
	}
}

// nominate sends an unsolicited claim for lock to the regenerator and
// arranges re-sends: the nomination races the regenerator's own failure
// detector (confirmation skew between nodes is up to a heartbeat
// period) and can be lost in the same crash that triggered it, so it
// repeats every ProbeTimeout until this node observes the lock
// recovered into a newer epoch. The claim body is advisory (a fresh
// probe re-collects it); its arrival is what makes the regenerator
// start a round for a lock only this node knows about.
func (m *Manager) nominate(lock proto.LockID, reg proto.NodeID, cold bool) {
	st := m.cfg.State(lock)
	seq := EncodeClaimSeq(st.Epoch, st.Token)
	if cold {
		seq |= coldClaimBit
	}
	m.cfg.Send(proto.Message{
		Kind: proto.KindClaim, Lock: lock,
		From: m.cfg.Self, To: reg, TS: m.cfg.Clock.Tick(),
		Epoch: st.Epoch, Owned: st.Held,
		Seq: seq,
	})
	m.scheduleRenominate(lock, st.Epoch, cold)
}

// scheduleRenominate re-sends a nomination every ProbeTimeout until a
// completed round supersedes it, every confirmed death is cleared (not
// applicable to cold-start nominations, which run with no deaths at
// all), or a round for the lock is running locally (this node became
// the regenerator, or yielded to a competitor whose Recovered will
// land).
func (m *Manager) scheduleRenominate(lock proto.LockID, epoch uint32, cold bool) {
	if m.cfg.After == nil {
		return
	}
	m.cfg.After(m.cfg.ProbeTimeout, func() {
		if s, ok := m.SeedFor(lock); ok && s.Epoch > epoch {
			return // recovered: the nomination was served
		}
		if !cold && len(m.dead) == 0 {
			return // every confirmed death cleared (false alarm)
		}
		if _, active := m.round[lock]; active {
			return // a local round's own retry loop drives progress
		}
		if reg := m.regenerator(); reg != m.cfg.Self {
			m.nominate(lock, reg, cold)
			return
		}
		m.startRound(lock)
	})
}

// ColdStart reconciles journal-restored state after a whole-cluster
// restart: no death has been confirmed, but every member's replayed
// locks must converge on a single fresh epoch above everything any
// journal recorded. The lowest-ID node (the regenerator when nothing
// is dead) runs a round per lock; everyone else nominates its replayed
// locks to it with cold-marked claims that the regenerator acts on
// even though its dead set is empty. Call under the same external
// serialization as the other manager entry points, after the host has
// seeded its engines from the journal.
func (m *Manager) ColdStart(locks []proto.LockID) {
	if len(locks) == 0 {
		return
	}
	sorted := mergeLocks(locks, nil)
	if reg := m.regenerator(); reg != m.cfg.Self {
		for _, lock := range sorted {
			m.nominate(lock, reg, true)
		}
		return
	}
	for _, lock := range sorted {
		m.startRound(lock)
	}
}

// Alive tells the manager a previously confirmed-dead peer is heard
// from again (it restarted). The peer rejoins the live set — future
// rounds include it — and catches up on completed rounds lazily through
// recovery hints; state it lost in the crash stays lost. Under a
// quorum, in-flight rounds start expecting the returned peer again:
// its claim both fences it at the proposed epoch and counts toward the
// commit threshold, which may be exactly what unblocks a stalled
// round.
func (m *Manager) Alive(peer proto.NodeID) {
	delete(m.dead, peer)
	if m.cfg.Quorum > 0 {
		for _, r := range m.round {
			if _, claimed := r.claims[peer]; !claimed && !r.expected[peer] {
				r.expected[peer] = true
				m.probe(r, map[proto.NodeID]bool{peer: true})
			}
		}
	}
}

// startRound begins (or re-enters) a regeneration round for one lock as
// the regenerator. The round fences this node's own engine immediately;
// survivors fence on probe receipt.
func (m *Manager) startRound(lock proto.LockID) {
	delete(m.pending, lock) // any buffered nomination is now served
	if _, active := m.round[lock]; active {
		return
	}
	st := m.cfg.State(lock)
	proposed := st.Epoch
	if s, ok := m.SeedFor(lock); ok && s.Epoch > proposed {
		proposed = s.Epoch
	}
	if m.epochFloor > proposed {
		proposed = m.epochFloor
	}
	proposed++
	m.cfg.PrepareReseed(lock, proposed)

	r := &round{
		lock:     lock,
		proposed: proposed,
		self:     claim{held: st.Held, epoch: st.Epoch, token: st.Token},
		expected: make(map[proto.NodeID]bool),
		claims:   make(map[proto.NodeID]claim),
	}
	for _, n := range m.nodes {
		if n != m.cfg.Self && !m.dead[n] {
			r.expected[n] = true
		}
	}
	m.round[lock] = r
	if m.cfg.OnRoundStart != nil {
		m.cfg.OnRoundStart(lock, proposed)
	}
	m.probe(r, nil)
	m.scheduleRetry(lock, proposed)
	m.finishIfComplete(r) // sole survivor: the round is already complete
}

// probe sends the round's Probe to every expected survivor that has not
// claimed yet (all of them on the first wave), in node order.
func (m *Manager) probe(r *round, only map[proto.NodeID]bool) {
	for _, n := range m.nodes {
		if !r.expected[n] || (only != nil && !only[n]) {
			continue
		}
		if _, claimed := r.claims[n]; claimed {
			continue
		}
		m.cfg.Send(proto.Message{
			Kind: proto.KindProbe, Lock: r.lock,
			From: m.cfg.Self, To: n, TS: m.cfg.Clock.Tick(),
			Epoch: r.proposed,
		})
	}
}

// scheduleRetry re-probes unclaimed survivors every ProbeTimeout until
// the round completes (frames to them may have been lost in the same
// crash that triggered the round).
func (m *Manager) scheduleRetry(lock proto.LockID, proposed uint32) {
	if m.cfg.After == nil {
		return
	}
	m.cfg.After(m.cfg.ProbeTimeout, func() {
		r, active := m.round[lock]
		if !active || r.proposed != proposed {
			return
		}
		m.probe(r, nil)
		if !m.quorumMet(r) {
			// Every live survivor has claimed but the quorum is short:
			// the only path forward is a confirmed-dead node returning,
			// so keep probing the whole configured set. A dead node that
			// restarted answers the probe with a claim, fencing itself at
			// the proposed epoch and counting toward the quorum.
			m.probeDead(r)
		}
		m.scheduleRetry(lock, proposed)
	})
}

// quorumMet reports whether the round has gathered enough fenced
// participants (the regenerator plus claimants) to commit.
func (m *Manager) quorumMet(r *round) bool {
	return m.cfg.Quorum <= 0 || 1+len(r.claims) >= m.cfg.Quorum
}

// probeDead sends the round's probe to configured nodes outside the
// expected set (confirmed dead before or during the round) that have
// not claimed, in node order.
func (m *Manager) probeDead(r *round) {
	for _, n := range m.nodes {
		if n == m.cfg.Self || r.expected[n] {
			continue
		}
		if _, claimed := r.claims[n]; claimed {
			continue
		}
		m.cfg.Send(proto.Message{
			Kind: proto.KindProbe, Lock: r.lock,
			From: m.cfg.Self, To: n, TS: m.cfg.Clock.Tick(),
			Epoch: r.proposed,
		})
	}
}

// HandleMessage processes one recovery-protocol message, returning
// false for kinds this manager does not own (the host routes those to
// the lock engines).
func (m *Manager) HandleMessage(msg *proto.Message) bool {
	switch msg.Kind {
	case proto.KindProbe:
		m.handleProbe(msg)
	case proto.KindClaim:
		m.handleClaim(msg)
	case proto.KindRecovered:
		m.handleRecovered(msg)
	default:
		return false
	}
	return true
}

// handleProbe fences the local engine at the proposed epoch and answers
// with this node's accounted state.
func (m *Manager) handleProbe(msg *proto.Message) {
	m.cfg.Clock.Witness(msg.TS)
	lock := msg.Lock
	if r, active := m.round[lock]; active {
		if msg.From > m.cfg.Self {
			// Both nodes believe they are the regenerator (their detectors
			// confirmed different deaths). The lower ID wins; ignore the
			// probe — our round's Recovered will reseed the sender.
			return
		}
		// Yield to the lower-ID regenerator: abandon our round and answer
		// like any survivor.
		_ = r
		delete(m.round, lock)
	}
	st := m.cfg.State(lock)
	m.cfg.PrepareReseed(lock, msg.Epoch)
	m.cfg.Send(proto.Message{
		Kind: proto.KindClaim, Lock: lock,
		From: m.cfg.Self, To: msg.From, TS: m.cfg.Clock.Tick(),
		Epoch: msg.Epoch, Owned: st.Held,
		Seq: EncodeClaimSeq(st.Epoch, st.Token),
	})
}

// handleClaim records a survivor's claim in the matching round, or —
// when no round is active and this node is the regenerator — treats it
// as a nomination and starts one.
func (m *Manager) handleClaim(msg *proto.Message) {
	m.cfg.Clock.Witness(msg.TS)
	r, active := m.round[msg.Lock]
	if !active {
		// An unsolicited claim: a survivor nominating this node to
		// regenerate a lock it tracks. The claim body is discarded — the
		// round's own probes collect fenced state. Cold-start nominations
		// arrive with no confirmed death anywhere; the regenerator acts
		// on them anyway (the whole point is reconciling journal state
		// when nobody is dead).
		cold := IsColdClaim(msg.Seq)
		if m.regenerator() != m.cfg.Self || (len(m.dead) == 0 && !cold) {
			// The nominator's detector confirmed a death ours has not seen
			// yet. Buffer the nomination for ConfirmDead to replay once the
			// local detector catches up; dropping it would wedge a lock
			// only the nominator tracks.
			if e, buffered := m.pending[msg.Lock]; !buffered || msg.Epoch > e {
				m.pending[msg.Lock] = msg.Epoch
			}
			return
		}
		if leaver, departure := departClaimLeaver(msg.Seq); departure && !m.isConfigured(leaver) {
			// A departure nomination for a LEAVE this node has already
			// processed: Depart ran a round for every nominated lock with
			// the leaver excluded, so a completed round at or above the
			// nominator's epoch already covers this departure even when the
			// epochs are equal (the nominator saw our Recovered before its
			// own copy of the LEAVE). Regenerating again would churn the
			// fence and race grants issued under the completed round.
			if s, ok := m.SeedFor(msg.Lock); ok && s.Epoch >= msg.Epoch {
				m.Hint(msg.Lock, msg.From)
				return
			}
		}
		if s, ok := m.SeedFor(msg.Lock); ok && msg.Epoch < s.Epoch {
			// The nomination predates a round we already completed for this
			// lock (it was sent before the nominator saw our Recovered);
			// regenerating again would only churn the fence. The comparison
			// is strict: after a completed round every survivor sits exactly
			// at the seed epoch, so a fresh nomination triggered by a
			// subsequent crash carries msg.Epoch == s.Epoch and must start a
			// new round. A stale cold nominator missed the round entirely
			// (it was still down); answer with the outcome so its retry
			// loop terminates instead of renominating forever.
			if cold {
				m.Hint(msg.Lock, msg.From)
			}
			return
		}
		m.startRound(msg.Lock)
		return
	}
	if msg.Epoch != r.proposed {
		return // stale claim from an earlier wave
	}
	if !r.expected[msg.From] {
		// Not a node this round is waiting on: either a stray, or — under
		// a quorum — a confirmed-dead node answering a probeDead wave.
		// Its claim is a fence ack like any other and may complete the
		// quorum, so admit it into the round.
		if m.cfg.Quorum <= 0 || msg.From == m.cfg.Self {
			return
		}
		var configured bool
		for _, n := range m.nodes {
			if n == msg.From {
				configured = true
				break
			}
		}
		if !configured {
			return
		}
		r.expected[msg.From] = true
	}
	epoch, token := DecodeClaimSeq(msg.Seq)
	r.claims[msg.From] = claim{held: msg.Owned, epoch: epoch, token: token}
	m.finishIfComplete(r)
}

// handleRecovered applies a completed round broadcast by the
// regenerator.
func (m *Manager) handleRecovered(msg *proto.Message) {
	m.cfg.Clock.Witness(msg.TS)
	lock := msg.Lock
	if s, ok := m.SeedFor(lock); ok && msg.Epoch <= s.Epoch {
		return // duplicate or superseded round outcome
	}
	if st := m.cfg.State(lock); msg.Epoch < st.Epoch {
		return // the engine has already seen a newer world
	}
	root := msg.Req.Origin
	m.setSeed(lock, Seed{Root: root, Epoch: msg.Epoch})
	delete(m.round, lock) // yield any competing round we were running
	m.cfg.Reseed(lock, root, msg.Epoch, msg.Owned, msg.Queue)
}

// finishIfComplete closes a round once every expected survivor has
// claimed and the configured quorum (if any) of fenced participants is
// reached: fixes the final epoch above all claimed epochs, selects the
// root, rebuilds the copyset from the accounted holders, broadcasts
// Recovered and applies the outcome locally.
func (m *Manager) finishIfComplete(r *round) {
	for n := range r.expected {
		if _, ok := r.claims[n]; !ok {
			return
		}
	}
	if !m.quorumMet(r) {
		// Every live survivor has fenced, but together they are a
		// minority of the configured cluster: committing here could race
		// a majority partition committing its own round. The round stays
		// open; scheduleRetry keeps probing the unreachable nodes.
		return
	}

	all := map[proto.NodeID]claim{m.cfg.Self: r.self}
	for n, c := range r.claims {
		all[n] = c
	}
	participants := make([]proto.NodeID, 0, len(all))
	for n := range all {
		participants = append(participants, n)
	}
	sort.Slice(participants, func(i, j int) bool { return participants[i] < participants[j] })

	// The final epoch must exceed every world any participant has seen,
	// or fencing could revalidate ancient in-flight frames.
	final := r.proposed
	for _, n := range participants {
		if c := all[n]; c.epoch >= final {
			final = c.epoch + 1
		}
	}

	// Root selection: the strongest surviving holder (a U/W holder is
	// necessarily the old token node — AlwaysTransfers — and R holders
	// make equally valid roots since the copyset accounts for the rest);
	// failing any holder, a token claimant (idle token survived); failing
	// that, the regenerator itself. Ties break to the lowest ID.
	root, best := proto.NoNode, modes.None
	for _, n := range participants {
		if c := all[n]; c.held != modes.None && modes.Stronger(c.held, best) {
			root, best = n, c.held
		}
	}
	if root == proto.NoNode {
		// Among token claimants, the highest claimed epoch wins (lowest
		// ID on ties): after a cold start several journals may still
		// record token ownership from different moments, and the most
		// recent epoch identifies the last true holder.
		var bestEpoch uint32
		for _, n := range participants {
			if c := all[n]; c.token && (root == proto.NoNode || c.epoch > bestEpoch) {
				root, bestEpoch = n, c.epoch
			}
		}
	}
	if root == proto.NoNode {
		root = m.cfg.Self
	}

	var copyset []proto.Request
	for _, n := range participants {
		if c := all[n]; n != root && c.held != modes.None {
			copyset = append(copyset, proto.Request{Origin: n, Mode: c.held})
		}
	}

	for _, n := range participants {
		if n == m.cfg.Self {
			continue
		}
		var q []proto.Request
		if n == root {
			q = copyset
		}
		m.cfg.Send(proto.Message{
			Kind: proto.KindRecovered, Lock: r.lock,
			From: m.cfg.Self, To: n, TS: m.cfg.Clock.Tick(),
			Epoch: final, Req: proto.Request{Origin: root},
			Owned: all[n].held, Queue: q,
		})
	}

	m.setSeed(r.lock, Seed{Root: root, Epoch: final})
	delete(m.round, r.lock)
	m.rounds++
	if m.cfg.OnRoundDone != nil {
		m.cfg.OnRoundDone(r.lock, final)
	}
	var q []proto.Request
	if root == m.cfg.Self {
		q = copyset
	}
	m.cfg.Reseed(r.lock, root, final, r.self.held, q)
}

// Hint answers a peer whose traffic the local engine dropped as stale
// with the completed-round outcome for the lock, letting a restarted
// node catch up without a full round. Safe for concurrent use. No-op if
// no round has completed for the lock.
func (m *Manager) Hint(lock proto.LockID, to proto.NodeID) {
	s, ok := m.SeedFor(lock)
	if !ok {
		return
	}
	m.cfg.Send(proto.Message{
		Kind: proto.KindRecovered, Lock: lock,
		From: m.cfg.Self, To: to, TS: m.cfg.Clock.Tick(),
		Epoch: s.Epoch, Req: proto.Request{Origin: s.Root},
		Owned: modes.None,
	})
}
