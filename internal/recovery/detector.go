package recovery

import (
	"sort"
	"sync"
	"time"

	"hierlock/internal/proto"
)

// PeerState is a detector's opinion of one peer.
type PeerState uint8

// Detector peer states.
const (
	// PeerHealthy: heard from within SuspectAfter.
	PeerHealthy PeerState = iota
	// PeerSuspect: silent for SuspectAfter but not yet ConfirmAfter; the
	// transport typically escalates probing, recovery does nothing yet.
	PeerSuspect
	// PeerConfirmed: silent for ConfirmAfter; recovery treats the peer as
	// fail-stop dead and regenerates its tokens.
	PeerConfirmed
)

// String names the state.
func (s PeerState) String() string {
	switch s {
	case PeerSuspect:
		return "suspect"
	case PeerConfirmed:
		return "confirmed"
	default:
		return "healthy"
	}
}

// DetectorConfig configures a Detector.
type DetectorConfig struct {
	// Peers lists the nodes to watch (excluding self).
	Peers []proto.NodeID
	// SuspectAfter is the silence threshold for suspicion (default 2s).
	SuspectAfter time.Duration
	// ConfirmAfter is the silence threshold for confirming death
	// (default 2×SuspectAfter). It must comfortably exceed the worst
	// network partition or GC pause expected in the deployment: a falsely
	// confirmed peer has its locks regenerated out from under it and its
	// clients see ErrLockLost.
	ConfirmAfter time.Duration
	// OnSuspect fires on the healthy→suspect transition (optional).
	OnSuspect func(proto.NodeID)
	// OnConfirm fires on the →confirmed transition. This is the signal
	// recovery acts on (Manager.ConfirmDead).
	OnConfirm func(proto.NodeID)
	// OnAlive fires when a suspect or confirmed peer is heard from again
	// (optional; feeds Manager.Alive for confirmed peers).
	OnAlive func(proto.NodeID)
}

// Detector is a heartbeat-silence failure detector: the transport feeds
// it an observation per inbound frame (any frame proves liveness, so
// heartbeats only bound the silence on otherwise idle links) and ticks
// it periodically; it classifies each peer by how long it has been
// silent and fires edge-triggered callbacks. Callbacks run on the
// ticking goroutine, outside the detector's lock, so they may call back
// into it. Safe for concurrent use.
type Detector struct {
	cfg DetectorConfig

	mu        sync.Mutex
	lastHeard map[proto.NodeID]time.Time
	state     map[proto.NodeID]PeerState
}

// NewDetector creates a detector; every peer starts healthy as of now
// (a node that is already dead at startup is confirmed one ConfirmAfter
// later).
func NewDetector(cfg DetectorConfig, now time.Time) *Detector {
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2 * time.Second
	}
	if cfg.ConfirmAfter <= 0 {
		cfg.ConfirmAfter = 2 * cfg.SuspectAfter
	}
	d := &Detector{
		cfg:       cfg,
		lastHeard: make(map[proto.NodeID]time.Time, len(cfg.Peers)),
		state:     make(map[proto.NodeID]PeerState, len(cfg.Peers)),
	}
	for _, p := range cfg.Peers {
		d.lastHeard[p] = now
	}
	return d
}

// Add starts watching a peer that joined at runtime; it begins healthy
// as of now. Idempotent — re-adding a watched peer resets its silence
// clock and state.
func (d *Detector) Add(peer proto.NodeID, now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lastHeard[peer] = now
	d.state[peer] = PeerHealthy
}

// Remove stops watching a peer that left gracefully: no further state
// transitions fire for it. Idempotent.
func (d *Detector) Remove(peer proto.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.lastHeard, peer)
	delete(d.state, peer)
}

// Observe records proof of life from a peer (call on every inbound
// frame). A suspect or confirmed peer transitions back to healthy and
// OnAlive fires.
func (d *Detector) Observe(peer proto.NodeID, now time.Time) {
	d.mu.Lock()
	if _, watched := d.lastHeard[peer]; !watched {
		d.mu.Unlock()
		return
	}
	d.lastHeard[peer] = now
	wasDownish := d.state[peer] != PeerHealthy
	d.state[peer] = PeerHealthy
	d.mu.Unlock()
	if wasDownish && d.cfg.OnAlive != nil {
		d.cfg.OnAlive(peer)
	}
}

// Tick re-evaluates every peer's silence against the thresholds and
// fires transition callbacks. Call periodically (a fraction of
// SuspectAfter).
func (d *Detector) Tick(now time.Time) {
	type transition struct {
		peer proto.NodeID
		to   PeerState
	}
	var fired []transition
	d.mu.Lock()
	for peer, heard := range d.lastHeard {
		silent := now.Sub(heard)
		cur := d.state[peer]
		switch {
		case silent >= d.cfg.ConfirmAfter && cur != PeerConfirmed:
			d.state[peer] = PeerConfirmed
			fired = append(fired, transition{peer, PeerConfirmed})
		case silent >= d.cfg.SuspectAfter && silent < d.cfg.ConfirmAfter && cur == PeerHealthy:
			d.state[peer] = PeerSuspect
			fired = append(fired, transition{peer, PeerSuspect})
		}
	}
	d.mu.Unlock()
	sort.Slice(fired, func(i, j int) bool { return fired[i].peer < fired[j].peer })
	for _, t := range fired {
		switch t.to {
		case PeerSuspect:
			if d.cfg.OnSuspect != nil {
				d.cfg.OnSuspect(t.peer)
			}
		case PeerConfirmed:
			if d.cfg.OnConfirm != nil {
				d.cfg.OnConfirm(t.peer)
			}
		}
	}
}

// State returns the detector's current opinion of a peer (healthy for
// unwatched nodes).
func (d *Detector) State(peer proto.NodeID) PeerState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state[peer]
}
