package ricart_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hierlock/internal/proto"
	"hierlock/internal/ricart"
)

const testLock proto.LockID = 1

type harness struct {
	t       *testing.T
	n       int
	engines map[proto.NodeID]*ricart.Engine
	queues  map[[2]proto.NodeID][]proto.Message
	counts  map[proto.Kind]int
	inCS    map[proto.NodeID]bool
	waiting map[proto.NodeID]bool
}

func newHarness(t *testing.T, n int) *harness {
	h := &harness{
		t:       t,
		n:       n,
		engines: make(map[proto.NodeID]*ricart.Engine, n),
		queues:  make(map[[2]proto.NodeID][]proto.Message),
		counts:  make(map[proto.Kind]int),
		inCS:    make(map[proto.NodeID]bool),
		waiting: make(map[proto.NodeID]bool),
	}
	for i := 0; i < n; i++ {
		id := proto.NodeID(i)
		h.engines[id] = ricart.New(id, testLock, n, &proto.Clock{})
	}
	return h
}

func (h *harness) absorb(from proto.NodeID, out ricart.Out) {
	h.t.Helper()
	for _, m := range out.Msgs {
		h.counts[m.Kind]++
		key := [2]proto.NodeID{m.From, m.To}
		h.queues[key] = append(h.queues[key], m)
	}
	if out.Acquired {
		if !h.waiting[from] {
			h.t.Fatalf("node %d acquired without waiting", from)
		}
		delete(h.waiting, from)
		h.inCS[from] = true
		if len(h.inCS) > 1 {
			h.t.Fatalf("MUTUAL EXCLUSION VIOLATED: %v in CS", h.inCS)
		}
	}
}

func (h *harness) acquire(i int) {
	h.t.Helper()
	id := proto.NodeID(i)
	h.waiting[id] = true
	out, err := h.engines[id].Acquire()
	if err != nil {
		h.t.Fatalf("node %d: Acquire: %v", i, err)
	}
	h.absorb(id, out)
}

func (h *harness) release(i int) {
	h.t.Helper()
	id := proto.NodeID(i)
	delete(h.inCS, id)
	out, err := h.engines[id].Release()
	if err != nil {
		h.t.Fatalf("node %d: Release: %v", i, err)
	}
	h.absorb(id, out)
}

func (h *harness) drain(rng *rand.Rand) {
	h.t.Helper()
	for steps := 0; ; steps++ {
		if steps > 200000 {
			h.t.Fatal("network did not quiesce")
		}
		var pairs [][2]proto.NodeID
		for k, q := range h.queues {
			if len(q) > 0 {
				pairs = append(pairs, k)
			}
		}
		if len(pairs) == 0 {
			return
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
		idx := 0
		if rng != nil {
			idx = rng.Intn(len(pairs))
		}
		k := pairs[idx]
		msg := h.queues[k][0]
		h.queues[k] = h.queues[k][1:]
		out, err := h.engines[msg.To].Handle(&msg)
		if err != nil {
			h.t.Fatalf("node %d: Handle: %v", msg.To, err)
		}
		h.absorb(msg.To, out)
	}
}

func TestSingleNodeImmediate(t *testing.T) {
	h := newHarness(t, 1)
	h.acquire(0)
	if !h.engines[0].Held() || len(h.queues) != 0 {
		t.Fatal("single node must enter immediately")
	}
	h.release(0)
}

func TestTwoNMinusOneMessages(t *testing.T) {
	h := newHarness(t, 8)
	h.acquire(3)
	h.drain(nil)
	if !h.engines[3].Held() {
		t.Fatal("node 3 should hold")
	}
	// The defining cost: n-1 requests + n-1 replies = 2(n-1).
	if h.counts[proto.KindRequest] != 7 || h.counts[proto.KindGrant] != 7 {
		t.Fatalf("counts = %v, want 7 requests + 7 replies", h.counts)
	}
	h.release(3)
	h.drain(nil)
}

func TestTimestampPriority(t *testing.T) {
	h := newHarness(t, 3)
	// Node 1 requests first (lower timestamp), node 2 after witnessing
	// nothing — both concurrently; the (ts, id) order decides.
	h.acquire(1)
	h.acquire(2)
	h.drain(nil)
	// One of them holds; the other is deferred.
	holders := 0
	for _, e := range h.engines {
		if e.Held() {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("holders = %d", holders)
	}
	// Release the holder; the other must then acquire.
	for id, e := range h.engines {
		if e.Held() {
			h.release(int(id))
		}
	}
	h.drain(nil)
	holders = 0
	for _, e := range h.engines {
		if e.Held() {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("second holder = %d", holders)
	}
	for id, e := range h.engines {
		if e.Held() {
			h.release(int(id))
		}
	}
	h.drain(nil)
	if len(h.waiting) != 0 {
		t.Fatalf("waiting = %v", h.waiting)
	}
}

func TestErrors(t *testing.T) {
	h := newHarness(t, 3)
	e := h.engines[0]
	if _, err := e.Release(); err == nil {
		t.Error("release while not held must fail")
	}
	h.acquire(0)
	if _, err := e.Acquire(); err == nil {
		t.Error("acquire while requesting must fail")
	}
	if _, err := e.Handle(&proto.Message{Kind: proto.KindToken, Lock: testLock}); err == nil {
		t.Error("unexpected kind must fail")
	}
	if _, err := e.Handle(&proto.Message{Kind: proto.KindRequest, Lock: 9}); err == nil {
		t.Error("wrong lock must fail")
	}
	if _, err := h.engines[1].Handle(&proto.Message{Kind: proto.KindGrant, Lock: testLock}); err == nil {
		t.Error("unsolicited reply must fail")
	}
	h.drain(nil)
	// Node 0 now holds (others replied).
	if !e.Held() {
		t.Fatal("node 0 should hold")
	}
	if _, err := e.Acquire(); err == nil {
		t.Error("double acquire must fail")
	}
	h.release(0)
	if e.String() == "" {
		t.Error("String must render")
	}
}

func TestFuzz(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 2 + rng.Intn(9)
			h := newHarness(t, n)
			for step := 0; step < 2500; step++ {
				var pairs [][2]proto.NodeID
				for k, q := range h.queues {
					if len(q) > 0 {
						pairs = append(pairs, k)
					}
				}
				if len(pairs) > 0 && rng.Intn(100) < 60 {
					k := pairs[rng.Intn(len(pairs))]
					msg := h.queues[k][0]
					h.queues[k] = h.queues[k][1:]
					out, err := h.engines[msg.To].Handle(&msg)
					if err != nil {
						t.Fatalf("handle: %v", err)
					}
					h.absorb(msg.To, out)
					continue
				}
				id := proto.NodeID(rng.Intn(n))
				e := h.engines[id]
				switch {
				case e.Held() && rng.Intn(100) < 70:
					h.release(int(id))
				case !e.Held() && !e.Requesting() && rng.Intn(100) < 60:
					h.acquire(int(id))
				}
			}
			for round := 0; round < 10*n+100; round++ {
				h.drain(rng)
				done := true
				for id, e := range h.engines {
					if e.Held() {
						h.release(int(id))
						done = false
					}
				}
				if done && len(h.waiting) == 0 {
					break
				}
			}
			if len(h.waiting) > 0 {
				for _, e := range h.engines {
					t.Logf("%v", e)
				}
				t.Fatalf("starved: %v", h.waiting)
			}
		})
	}
}
