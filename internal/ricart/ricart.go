// Package ricart implements the Ricart–Agrawala permission-based
// distributed mutual-exclusion algorithm (CACM 24(1), 1981), the classic
// non-token baseline of the paper's §2 taxonomy: a requester broadcasts a
// timestamped REQUEST to all n−1 peers and enters its critical section
// after collecting n−1 REPLYs, for 2(n−1) messages per critical section —
// the quadratic aggregate traffic the paper cites when dismissing
// non-token protocols for large systems.
//
// Total order comes from Lamport timestamps with node-ID tie-breaking: a
// node that receives a REQUEST while requesting replies immediately only
// if the incoming request precedes its own; otherwise it defers the reply
// until its own release.
//
// Same conventions as the other engines: pure state machine, serialized
// calls per engine, per-link FIFO delivery (not strictly required by this
// algorithm, but the uniform contract keeps harnesses shared).
package ricart

import (
	"errors"
	"fmt"
	"sort"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// Client-operation errors.
var (
	ErrHeld     = errors.New("ricart: lock already held")
	ErrNotHeld  = errors.New("ricart: lock not held")
	ErrPending  = errors.New("ricart: request already pending")
	ErrProtocol = errors.New("ricart: protocol violation")
)

// Engine is the per-node, per-lock Ricart–Agrawala state machine.
type Engine struct {
	self  proto.NodeID
	lock  proto.LockID
	n     int
	clock *proto.Clock

	requesting bool
	using      bool
	// reqTS is the timestamp of the outstanding request.
	reqTS proto.Timestamp
	// replies counts REPLYs received for the outstanding request.
	replies int
	// deferred lists peers whose REQUESTs wait for our release.
	deferred map[proto.NodeID]bool
}

// New constructs the engine for a cluster of n nodes (IDs 0..n-1). The
// algorithm is symmetric: no node starts with special state.
func New(self proto.NodeID, lock proto.LockID, n int, clock *proto.Clock) *Engine {
	return &Engine{
		self:     self,
		lock:     lock,
		n:        n,
		clock:    clock,
		deferred: make(map[proto.NodeID]bool),
	}
}

// Self returns the node this engine runs on.
func (e *Engine) Self() proto.NodeID { return e.self }

// Held reports whether the node is inside its critical section.
func (e *Engine) Held() bool { return e.using }

// Requesting reports whether a client request is outstanding.
func (e *Engine) Requesting() bool { return e.requesting }

// String summarizes the engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("ricart node %d lock %d: using=%v req=%v ts=%d replies=%d deferred=%d",
		e.self, e.lock, e.using, e.requesting, e.reqTS, e.replies, len(e.deferred))
}

// Out carries messages and the acquisition event.
type Out struct {
	Msgs     []proto.Message
	Acquired bool
}

// Acquire requests the critical section, broadcasting to every peer.
// Single-node clusters enter immediately.
func (e *Engine) Acquire() (Out, error) {
	var out Out
	if e.using {
		return out, ErrHeld
	}
	if e.requesting {
		return out, ErrPending
	}
	e.reqTS = e.clock.Tick()
	if e.n == 1 {
		e.using = true
		out.Acquired = true
		return out, nil
	}
	e.requesting = true
	e.replies = 0
	for j := 0; j < e.n; j++ {
		if proto.NodeID(j) == e.self {
			continue
		}
		out.Msgs = append(out.Msgs, proto.Message{
			Kind: proto.KindRequest, Lock: e.lock,
			From: e.self, To: proto.NodeID(j), TS: e.clock.Tick(),
			Seq: uint64(e.reqTS),
		})
	}
	return out, nil
}

// Release leaves the critical section and sends the deferred replies.
func (e *Engine) Release() (Out, error) {
	var out Out
	if !e.using {
		return out, ErrNotHeld
	}
	e.using = false
	// Deterministic reply order keeps simulations reproducible.
	ids := make([]int, 0, len(e.deferred))
	for j := range e.deferred {
		ids = append(ids, int(j))
	}
	sort.Ints(ids)
	for _, j := range ids {
		out.Msgs = append(out.Msgs, proto.Message{
			Kind: proto.KindGrant, Lock: e.lock,
			From: e.self, To: proto.NodeID(j), TS: e.clock.Tick(),
		})
	}
	e.deferred = make(map[proto.NodeID]bool)
	return out, nil
}

// Handle processes one protocol message (KindRequest = REQUEST,
// KindGrant = REPLY).
func (e *Engine) Handle(msg *proto.Message) (Out, error) {
	var out Out
	if msg.Lock != e.lock {
		return out, fmt.Errorf("%w: message for lock %d at engine for lock %d", ErrProtocol, msg.Lock, e.lock)
	}
	e.clock.Witness(msg.TS)
	switch msg.Kind {
	case proto.KindRequest:
		theirTS := proto.Timestamp(msg.Seq)
		// Defer iff we are using, or requesting with strict priority over
		// them: (ts, id) lexicographic order.
		mine := e.using || (e.requesting &&
			(e.reqTS < theirTS || (e.reqTS == theirTS && e.self < msg.From)))
		if mine {
			e.deferred[msg.From] = true
			return out, nil
		}
		out.Msgs = append(out.Msgs, proto.Message{
			Kind: proto.KindGrant, Lock: e.lock,
			From: e.self, To: msg.From, TS: e.clock.Tick(),
		})
		return out, nil
	case proto.KindGrant:
		if !e.requesting {
			return out, fmt.Errorf("%w: reply at node %d with no request", ErrProtocol, e.self)
		}
		e.replies++
		if e.replies == e.n-1 {
			e.requesting = false
			e.using = true
			out.Acquired = true
		}
		return out, nil
	default:
		return out, fmt.Errorf("%w: unexpected message kind %v", ErrProtocol, msg.Kind)
	}
}

// Mode reports the held mode for mixed-protocol tooling (always
// exclusive).
func (e *Engine) Mode() modes.Mode {
	if e.using {
		return modes.W
	}
	return modes.None
}

// Clone returns a deep copy bound to the given clock (for exhaustive
// state-space exploration in tests).
func (e *Engine) Clone(clock *proto.Clock) *Engine {
	ne := *e
	ne.clock = clock
	ne.deferred = make(map[proto.NodeID]bool, len(e.deferred))
	for k := range e.deferred {
		ne.deferred[k] = true
	}
	return &ne
}

// Fingerprint canonically encodes the engine state for model-checking
// deduplication. Unlike the token protocols, the request timestamp is
// behavioral here (it decides reply deferral), so it is included.
func (e *Engine) Fingerprint() string {
	ids := make([]int, 0, len(e.deferred))
	for j := range e.deferred {
		ids = append(ids, int(j))
	}
	sort.Ints(ids)
	return fmt.Sprintf("u%v r%v ts%d rp%d d%v", e.using, e.requesting, e.reqTS, e.replies, ids)
}
