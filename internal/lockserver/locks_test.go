package lockserver_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"hierlock"
	"hierlock/internal/introspect"
	"hierlock/internal/lockserver"
)

// TestDebugLocksGolden pins the /debug/locks JSON shape (the lockctl
// locks wire format) and the rendered single-node report for a held
// exclusive lock. A single-member cluster is fully deterministic: no
// waiters, no Lamport stamps, no wall-clock fields in the output.
func TestDebugLocksGolden(t *testing.T) {
	cl, err := hierlock.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m := cl.Member(0)
	l, err := m.Lock(context.Background(), "orders/eu", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Unlock()

	srv := lockserver.New(m)
	rr := httptest.NewRecorder()
	srv.DebugHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/locks", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /debug/locks = %d: %s", rr.Code, rr.Body.String())
	}
	golden(t, "locks.golden", rr.Body.Bytes())

	var inv introspect.NodeInventory
	if err := json.Unmarshal(rr.Body.Bytes(), &inv); err != nil {
		t.Fatal(err)
	}
	if len(inv.Locks) != 1 || !inv.Locks[0].Token || inv.Locks[0].Held != "W" {
		t.Fatalf("inventory = %+v", inv)
	}
	// The text `lockctl locks` renders from the same inventory.
	golden(t, "locks_text.golden", []byte(introspect.FormatNode(inv)))
}

// TestDebugLocksClusterMerge stands up two members' debug listeners,
// blocks member 0 behind member 1's exclusive hold, and checks the
// ?peers= merge assembles the cluster view with the conflict edge (and
// no false deadlock).
func TestDebugLocksClusterMerge(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	l, err := cl.Member(1).Lock(context.Background(), "contended", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		l0, err := cl.Member(0).Lock(ctx, "contended", hierlock.W)
		if l0 != nil {
			l0.Unlock()
		}
		errc <- err
	}()
	// Wait for member 0's waiter slot to register.
	deadline := time.Now().Add(5 * time.Second)
	for {
		inv := cl.Member(0).Inventory()
		waiting := false
		for _, li := range inv.Locks {
			if li.Waiter != nil {
				waiting = true
			}
		}
		if waiting {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("member 0 never registered a waiter")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ts0 := httptest.NewServer(lockserver.New(cl.Member(0)).DebugHandler())
	defer ts0.Close()
	ts1 := httptest.NewServer(lockserver.New(cl.Member(1)).DebugHandler())
	defer ts1.Close()

	resp, err := http.Get(ts1.URL + "/debug/locks?peers=" + url.QueryEscape(ts0.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var c introspect.Cluster
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 2 {
		t.Fatalf("merged %d nodes, want 2", len(c.Nodes))
	}
	if len(c.Errors) != 0 {
		t.Fatalf("merge errors: %v", c.Errors)
	}
	if len(c.WaitFor.Edges) != 1 {
		t.Fatalf("wait-for edges = %+v, want the 0->1 conflict", c.WaitFor.Edges)
	}
	e := c.WaitFor.Edges[0]
	if e.Waiter != 0 || e.Holder != 1 || e.Wants != "W" || e.Holds != "W" {
		t.Fatalf("edge = %+v", e)
	}
	if e.WaitNS <= 0 {
		t.Fatalf("edge carries no wait duration: %+v", e)
	}
	if e.Resource != "contended" {
		t.Fatalf("edge resource = %q", e.Resource)
	}
	if c.WaitFor.Deadlocked() {
		t.Fatal("plain contention flagged as deadlock")
	}

	// Unreachable peers degrade to a partial view, not a failure.
	resp2, err := http.Get(ts1.URL + "/debug/locks?peers=127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var partial introspect.Cluster
	if err := json.NewDecoder(resp2.Body).Decode(&partial); err != nil {
		t.Fatal(err)
	}
	if len(partial.Nodes) != 1 || len(partial.Errors) != 1 {
		t.Fatalf("partial merge = %d nodes, errors %v", len(partial.Nodes), partial.Errors)
	}

	l.Unlock()
	if err := <-errc; err != nil {
		t.Fatalf("member 0 lock after release: %v", err)
	}
}

// TestDebugBlackboxEndpoint drives the flight-recorder endpoint: ring
// view, manual trigger, dump listing and retrieval, and the traversal
// guard on ?dump names.
func TestDebugBlackboxEndpoint(t *testing.T) {
	cl, err := hierlock.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	dir := t.TempDir()
	bb := introspect.NewRecorder(0, 16)
	if err := bb.EnableAutoDump(dir, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	bb.Record(introspect.Event{Type: introspect.EvGrant, Node: 0, Lock: 7})
	bb.Record(introspect.Event{Type: introspect.EvEvict, Node: 0, N: 3})

	srv := lockserver.New(cl.Member(0))
	srv.Blackbox = bb
	srv.BlackboxDir = dir
	h := srv.DebugHandler()

	get := func(path string) (*httptest.ResponseRecorder, lockserver.BlackboxView) {
		t.Helper()
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		var v lockserver.BlackboxView
		if rr.Code == http.StatusOK {
			if err := json.Unmarshal(rr.Body.Bytes(), &v); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
		}
		return rr, v
	}

	rr, view := get("/debug/blackbox")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /debug/blackbox = %d", rr.Code)
	}
	if view.Events != 2 || len(view.Ring) != 2 || len(view.Files) != 0 {
		t.Fatalf("view = %+v", view)
	}
	for _, reason := range introspect.Reasons {
		if n, ok := view.Dumps[reason]; !ok || n != 0 {
			t.Fatalf("dumps not pre-registered at zero: %v", view.Dumps)
		}
	}
	if view.Ring[1].Type != "evict_sweep" || view.Ring[1].N != 3 {
		t.Fatalf("ring = %+v", view.Ring)
	}

	// ?n limits the ring view.
	if _, v := get("/debug/blackbox?n=1"); len(v.Ring) != 1 || v.Ring[0].Type != "evict_sweep" {
		t.Fatalf("?n=1 ring = %+v", v.Ring)
	}

	// Manual trigger writes a dump and shows up in the listing.
	if rr, v := get("/debug/blackbox?trigger=1"); rr.Code != http.StatusOK || len(v.Files) != 1 ||
		v.Dumps[introspect.ReasonManual] != 1 {
		t.Fatalf("trigger = %d, %+v", rr.Code, v)
	}
	_, v := get("/debug/blackbox")
	if len(v.Files) != 1 {
		t.Fatalf("files = %+v", v.Files)
	}

	// Retrieve the dump by name.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/blackbox?dump="+url.QueryEscape(v.Files[0].Name), nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("dump fetch = %d: %s", rr.Code, rr.Body.String())
	}
	var d introspect.Dump
	if err := json.Unmarshal(rr.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Reason != introspect.ReasonManual || len(d.Events) != 2 {
		t.Fatalf("dump = %+v", d)
	}

	// Path traversal in ?dump is rejected.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/blackbox?dump="+url.QueryEscape("../secrets.json"), nil))
	if rr.Code == http.StatusOK {
		t.Fatal("traversal name served")
	}
}

// TestDebugBlackboxUnattached: no recorder → 503, like the other
// optional debug surfaces.
func TestDebugBlackboxUnattached(t *testing.T) {
	cl, err := hierlock.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rr := httptest.NewRecorder()
	lockserver.New(cl.Member(0)).DebugHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/blackbox", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("unattached blackbox = %d, want 503", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "no flight recorder") {
		t.Fatalf("body = %q", rr.Body.String())
	}
}
