// Package lockserver implements lockd's client-facing front end: a
// line-oriented text protocol over TCP through which applications
// acquire, upgrade and release hierarchical locks owned by the local
// cluster member.
//
// Commands (case-insensitive, space-separated):
//
//	LOCK <resource> <mode>        modes: IR R U IW W
//	UNLOCK <resource>
//	UPGRADE <resource>            requires holding U
//	LOCKPATH <mode> <seg>...      hierarchy: intent on ancestors, mode on leaf
//	UNLOCKPATH <seg>...
//	LOCKALL <mode> <resource>...  deadlock-free multi-resource acquisition
//	UNLOCKALL <resource>...
//	HELD                          list locks held by this connection
//	STATS                         protocol message counters
//	PEERS                         per-peer link health and queue depth
//	QUIT
//
// Replies are single lines starting with "OK" or "ERR". Locks belong to
// the client connection and are released when it closes.
package lockserver

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"hierlock"
	"hierlock/internal/audit"
	"hierlock/internal/introspect"
	"hierlock/internal/metrics"
	"hierlock/internal/profile"
	"hierlock/internal/trace"
	"hierlock/internal/watchdog"
)

// Server serves the text protocol on behalf of one cluster member.
type Server struct {
	member *hierlock.Member
	// Timeout bounds each LOCK wait (0 = wait forever).
	Timeout time.Duration
	// Registry, when non-nil, is served as Prometheus text exposition on
	// the debug handler's /metrics endpoint.
	Registry *metrics.Registry
	// Trace, when non-nil, is dumped as JSON on the debug handler's
	// /debug/trace endpoint and togglable at runtime.
	Trace *trace.Recorder
	// Audit, when non-nil, is reported on the debug handler's /debug/audit
	// endpoint (invariant violation counts and recent violations).
	Audit *audit.Auditor
	// Blackbox, when non-nil, serves the flight recorder's live ring and
	// counters on /debug/blackbox; BlackboxDir, when set, additionally
	// lists and serves the dump files written there.
	Blackbox    *introspect.Recorder
	BlackboxDir string
	// Profiler, when non-nil, serves profile captures on the debug
	// handler's /debug/profile endpoint: listing, on-demand capture and
	// raw pprof retrieval.
	Profiler *profile.Profiler
	// Health, when non-nil, drives /healthz beyond the bare
	// protocol-failure check and serves the watchdog's full verdict on
	// /debug/health.
	Health *watchdog.Runner

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// New creates a server for the member.
func New(m *hierlock.Member) *Server {
	return &Server{member: m}
}

// Serve accepts client connections on ln until the listener closes or
// Close is called. It always returns a non-nil error (net.ErrClosed
// after a clean shutdown).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			s.wg.Wait()
			return net.ErrClosed
		}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight sessions to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

// ServeConn runs one client session; it returns when the peer closes or
// QUITs, releasing every lock the session still holds.
func (s *Server) ServeConn(conn io.ReadWriteCloser) {
	defer conn.Close()
	sess := &session{
		srv:   s,
		held:  make(map[string]*hierlock.Lock),
		paths: make(map[string]*hierlock.PathLock),
		sets:  make(map[string]*hierlock.LockSet),
	}
	defer sess.releaseAll()

	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		resp, quit := sess.handle(sc.Text())
		fmt.Fprintln(w, resp)
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

type session struct {
	srv   *Server
	held  map[string]*hierlock.Lock
	paths map[string]*hierlock.PathLock
	sets  map[string]*hierlock.LockSet
}

func (se *session) releaseAll() {
	for _, l := range se.held {
		_ = l.Unlock()
	}
	for _, pl := range se.paths {
		_ = pl.Unlock()
	}
	for _, ls := range se.sets {
		_ = ls.Unlock()
	}
	se.held, se.paths, se.sets = nil, nil, nil
}

// handle executes one command line and returns the reply plus whether the
// session should end.
func (se *session) handle(line string) (string, bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty command", false
	}
	switch strings.ToUpper(fields[0]) {
	case "LOCK":
		if len(fields) != 3 {
			return "ERR usage: LOCK <resource> <mode>", false
		}
		return se.lock(fields[1], fields[2]), false
	case "UNLOCK":
		if len(fields) != 2 {
			return "ERR usage: UNLOCK <resource>", false
		}
		l, ok := se.held[fields[1]]
		if !ok {
			return fmt.Sprintf("ERR not holding %s", fields[1]), false
		}
		delete(se.held, fields[1])
		if err := l.Unlock(); err != nil {
			return fmt.Sprintf("ERR %v", err), false
		}
		return "OK", false
	case "UPGRADE":
		if len(fields) != 2 {
			return "ERR usage: UPGRADE <resource>", false
		}
		l, ok := se.held[fields[1]]
		if !ok {
			return fmt.Sprintf("ERR not holding %s", fields[1]), false
		}
		if err := l.Upgrade(context.Background()); err != nil {
			return fmt.Sprintf("ERR %v", err), false
		}
		return fmt.Sprintf("OK %s %v", fields[1], l.Mode()), false
	case "LOCKPATH":
		if len(fields) < 3 {
			return "ERR usage: LOCKPATH <mode> <segment>...", false
		}
		return se.lockPath(fields[1], fields[2:]), false
	case "UNLOCKPATH":
		if len(fields) < 2 {
			return "ERR usage: UNLOCKPATH <segment>...", false
		}
		key := strings.Join(fields[1:], "/")
		pl, ok := se.paths[key]
		if !ok {
			return fmt.Sprintf("ERR not holding path %s", key), false
		}
		delete(se.paths, key)
		if err := pl.Unlock(); err != nil {
			return fmt.Sprintf("ERR %v", err), false
		}
		return "OK", false
	case "LOCKALL":
		if len(fields) < 3 {
			return "ERR usage: LOCKALL <mode> <resource>...", false
		}
		return se.lockAll(fields[1], fields[2:]), false
	case "UNLOCKALL":
		if len(fields) < 2 {
			return "ERR usage: UNLOCKALL <resource>...", false
		}
		key := setKey(fields[1:])
		ls, ok := se.sets[key]
		if !ok {
			return fmt.Sprintf("ERR not holding set %s", key), false
		}
		delete(se.sets, key)
		if err := ls.Unlock(); err != nil {
			return fmt.Sprintf("ERR %v", err), false
		}
		return "OK", false
	case "HELD":
		names := make([]string, 0, len(se.held)+len(se.paths)+len(se.sets))
		for res, l := range se.held {
			names = append(names, fmt.Sprintf("%s=%v", res, l.Mode()))
		}
		for key, pl := range se.paths {
			names = append(names, fmt.Sprintf("path:%s=%v", key, pl.Leaf().Mode()))
		}
		for key := range se.sets {
			names = append(names, fmt.Sprintf("set:%s", key))
		}
		sort.Strings(names)
		return "OK " + strings.Join(names, " "), false
	case "STATS":
		sent := se.srv.member.MessagesSent()
		kinds := make([]string, 0, len(sent))
		for k := range sent {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, 0, len(kinds))
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%s=%d", k, sent[k]))
		}
		return "OK " + strings.Join(parts, " "), false
	case "PEERS":
		health := se.srv.member.PeerHealth()
		lc := se.srv.member.LinkCounters()
		ids := make([]int, 0, len(health))
		for id := range health {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		parts := []string{fmt.Sprintf("redials=%d retransmits=%d dups_suppressed=%d",
			lc.Redials, lc.Retransmits, lc.DupsSuppressed)}
		for _, id := range ids {
			h := health[id]
			parts = append(parts, fmt.Sprintf("%d=%s/q%d", id, h.State, h.QueueLen))
		}
		return "OK " + strings.Join(parts, " "), false
	case "QUIT":
		return "OK bye", true
	default:
		return fmt.Sprintf("ERR unknown command %s", strings.ToUpper(fields[0])), false
	}
}

func (se *session) lock(res, modeStr string) string {
	mode, err := ParseMode(modeStr)
	if err != nil {
		return fmt.Sprintf("ERR %v", err)
	}
	if _, dup := se.held[res]; dup {
		return fmt.Sprintf("ERR already holding %s", res)
	}
	ctx, cancel := se.ctx()
	defer cancel()
	l, err := se.srv.member.Lock(ctx, res, mode)
	if err != nil {
		return fmt.Sprintf("ERR %v", err)
	}
	se.held[res] = l
	return fmt.Sprintf("OK %s %v", res, l.Mode())
}

func (se *session) lockPath(modeStr string, segs []string) string {
	mode, err := ParseMode(modeStr)
	if err != nil {
		return fmt.Sprintf("ERR %v", err)
	}
	key := strings.Join(segs, "/")
	if _, dup := se.paths[key]; dup {
		return fmt.Sprintf("ERR already holding path %s", key)
	}
	ctx, cancel := se.ctx()
	defer cancel()
	pl, err := se.srv.member.LockPath(ctx, segs, mode)
	if err != nil {
		return fmt.Sprintf("ERR %v", err)
	}
	se.paths[key] = pl
	return fmt.Sprintf("OK path:%s %v", key, pl.Leaf().Mode())
}

func (se *session) lockAll(modeStr string, resources []string) string {
	mode, err := ParseMode(modeStr)
	if err != nil {
		return fmt.Sprintf("ERR %v", err)
	}
	key := setKey(resources)
	if _, dup := se.sets[key]; dup {
		return fmt.Sprintf("ERR already holding set %s", key)
	}
	ctx, cancel := se.ctx()
	defer cancel()
	ls, err := se.srv.member.LockAll(ctx, resources, mode)
	if err != nil {
		return fmt.Sprintf("ERR %v", err)
	}
	se.sets[key] = ls
	return fmt.Sprintf("OK set:%s %d", key, ls.Len())
}

// ctx builds the per-request context honoring the server timeout.
func (se *session) ctx() (context.Context, context.CancelFunc) {
	if se.srv.Timeout > 0 {
		return context.WithTimeout(context.Background(), se.srv.Timeout)
	}
	return context.Background(), func() {}
}

// setKey canonically names a resource set (sorted, deduplicated).
func setKey(resources []string) string {
	rs := append([]string(nil), resources...)
	sort.Strings(rs)
	out := rs[:0]
	for i, r := range rs {
		if i == 0 || r != rs[i-1] {
			out = append(out, r)
		}
	}
	return strings.Join(out, ",")
}

// ParseMode parses a client-supplied mode name.
func ParseMode(s string) (hierlock.Mode, error) {
	switch strings.ToUpper(s) {
	case "IR":
		return hierlock.IR, nil
	case "R":
		return hierlock.R, nil
	case "U":
		return hierlock.U, nil
	case "IW":
		return hierlock.IW, nil
	case "W":
		return hierlock.W, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want IR, R, U, IW or W)", s)
	}
}
