// Package lockserver implements lockd's client-facing front end: a
// line-oriented text protocol over TCP through which applications
// acquire, upgrade and release hierarchical locks owned by the local
// cluster member.
//
// Commands (case-insensitive, space-separated):
//
//	LOCK <resource> <mode>        modes: IR R U IW W
//	UNLOCK <resource>
//	UPGRADE <resource>            requires holding U
//	LOCKPATH <mode> <seg>...      hierarchy: intent on ancestors, mode on leaf
//	UNLOCKPATH <seg>...
//	LOCKALL <mode> <resource>...  deadlock-free multi-resource acquisition
//	UNLOCKALL <resource>...
//	SESSION OPEN <name> [ttl]     lease-backed session (re-adopts if live)
//	SESSION RENEW                 heartbeat: reset the lease deadline
//	SESSION CLOSE                 end the session, releasing its locks
//	SESSIONS                      list this lockd's named sessions
//	HELD                          list locks held by this session
//	STATS                         protocol message counters
//	PEERS                         per-peer link health and queue depth
//	MEMBER LIST                   this member's view of the cluster
//	MEMBER ADD <seed-addr>        join a running cluster via the seed's peer address
//	MEMBER REMOVE                 gracefully leave the cluster (hand off tokens)
//	QUIT
//
// Replies are single lines starting with "OK" or "ERR".
//
// # Sessions and leases
//
// A fresh connection starts with an implicit anonymous session: its
// locks die with the connection, exactly the pre-session contract.
// SESSION OPEN upgrades it to a named session with a TTL lease. A named
// session's locks survive disconnects: the client may reconnect and
// SESSION OPEN the same name to re-adopt them (the reply carries
// adopted=true and the surviving lock count). The lease is renewed by
// SESSION RENEW and implicitly by any command activity; when it expires
// — the client died — the lease sweeper force-releases everything the
// session held, within one sweep interval (at most 2×TTL end to end).
// Commands on an expired session answer "ERR session expired" and the
// connection falls back to a fresh anonymous session.
//
// # Fencing tokens
//
// Every LOCK, LOCKPATH and UPGRADE grant carries fence=<epoch.seq>, a
// token that strictly increases across conflicting grants of the same
// resource: within a recovery epoch by Lamport-clock causality, across
// epochs because recovery bumps the epoch. A client passes the token to
// downstream systems with its writes; a holder whose lease was reaped
// (or whose lock was demolished by crash recovery) always carries a
// smaller token than the current holder, so stale writes can be
// rejected. LOCKALL sets carry no single token (one hold per member
// lock); use LOCK/LOCKPATH when fencing matters.
//
// # Wait-queue admission
//
// Exclusive-mode (U, W) requests for one resource collapse into a
// single member-level waiter: one "leader" connection performs the
// protocol acquisition and the hold is then handed from client to
// client locally in FIFO order, each hand-off minting a fresh fencing
// token — 10k blocked clients on a hot lock cost O(1) protocol traffic
// per grant. Beyond Server.MaxWaiters queued clients per (resource,
// mode), LOCK answers "ERR busy". Shared modes (IR, R, IW) bypass the
// queue; the member's shared-join fast path already grants them with
// zero protocol traffic.
package lockserver

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hierlock"
	"hierlock/internal/audit"
	"hierlock/internal/introspect"
	"hierlock/internal/metrics"
	"hierlock/internal/profile"
	"hierlock/internal/session"
	"hierlock/internal/trace"
	"hierlock/internal/watchdog"
)

// maxLine bounds one protocol line. Longer lines are consumed and
// answered with "ERR line too long" instead of killing the connection.
const maxLine = 1 << 20

var errLineTooLong = errors.New("line too long")

// Server serves the text protocol on behalf of one cluster member.
type Server struct {
	member *hierlock.Member
	// Timeout bounds each LOCK wait (0 = wait forever).
	Timeout time.Duration
	// LeaseTTL is the default session lease TTL (0 = 30s).
	LeaseTTL time.Duration
	// MaxWaiters caps each (resource, mode) admission queue; beyond it
	// LOCK answers ERR busy (0 = unbounded).
	MaxWaiters int
	// SweepInterval overrides the lease sweeper cadence (0 = LeaseTTL/4).
	SweepInterval time.Duration
	// Registry, when non-nil, is served as Prometheus text exposition on
	// the debug handler's /metrics endpoint.
	Registry *metrics.Registry
	// Trace, when non-nil, is dumped as JSON on the debug handler's
	// /debug/trace endpoint and togglable at runtime.
	Trace *trace.Recorder
	// Audit, when non-nil, is reported on the debug handler's /debug/audit
	// endpoint (invariant violation counts and recent violations).
	Audit *audit.Auditor
	// Blackbox, when non-nil, serves the flight recorder's live ring and
	// counters on /debug/blackbox; BlackboxDir, when set, additionally
	// lists and serves the dump files written there.
	Blackbox    *introspect.Recorder
	BlackboxDir string
	// Profiler, when non-nil, serves profile captures on the debug
	// handler's /debug/profile endpoint: listing, on-demand capture and
	// raw pprof retrieval.
	Profiler *profile.Profiler
	// Health, when non-nil, drives /healthz beyond the bare
	// protocol-failure check and serves the watchdog's full verdict on
	// /debug/health.
	Health *watchdog.Runner

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[io.Closer]struct{}
	sess   *session.Manager
	wg     sync.WaitGroup
}

// New creates a server for the member.
func New(m *hierlock.Member) *Server {
	return &Server{member: m}
}

// Sessions returns the server's session manager, creating it on first
// use (so LeaseTTL/MaxWaiters/Registry set after New still apply).
func (s *Server) Sessions() *session.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sess == nil {
		s.sess = session.NewManager(session.Config{
			DefaultTTL:    s.LeaseTTL,
			MaxWaiters:    s.MaxWaiters,
			SweepInterval: s.SweepInterval,
			Registry:      s.Registry,
		})
	}
	return s.sess
}

// Serve accepts client connections on ln until the listener closes or
// Close is called. It always returns a non-nil error (net.ErrClosed
// after a clean shutdown).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			s.wg.Wait()
			return net.ErrClosed
		}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Close stops accepting, closes every live client connection (so
// sessions blocked reading idle peers drain and Serve can return), and
// shuts the session manager down, releasing all session-held locks.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]io.Closer, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	sess := s.sess
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	if sess != nil {
		sess.Close()
	}
	return err
}

// ServeConn runs one client session; it returns when the peer closes,
// QUITs, or the server shuts down. An anonymous session's locks are
// released on return; a named session is detached, its lease ticking
// until re-adoption or expiry.
func (s *Server) ServeConn(conn io.ReadWriteCloser) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	if s.conns == nil {
		s.conns = make(map[io.Closer]struct{})
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	defer conn.Close()

	mgr := s.Sessions()
	se := &connState{srv: s, mgr: mgr, sess: mgr.Anonymous()}
	defer func() { se.mgr.Detach(se.sess) }()

	br := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := readLine(br)
		if err == errLineTooLong {
			fmt.Fprintln(w, "ERR line too long")
			if w.Flush() != nil {
				return
			}
			continue
		}
		if err != nil {
			return
		}
		resp, quit := se.handle(line)
		fmt.Fprintln(w, resp)
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// readLine reads one newline-terminated line of at most maxLine bytes.
// Longer lines are consumed to their newline and reported as
// errLineTooLong, leaving the stream usable. A final unterminated line
// before EOF is returned as a line.
func readLine(br *bufio.Reader) (string, error) {
	var buf []byte
	overflow := false
	for {
		frag, err := br.ReadSlice('\n')
		if !overflow {
			buf = append(buf, frag...)
			if len(buf) > maxLine {
				overflow = true
				buf = nil
			}
		}
		switch err {
		case bufio.ErrBufferFull:
			continue
		case nil:
			if overflow {
				return "", errLineTooLong
			}
			return strings.TrimRight(string(buf), "\r\n"), nil
		default:
			if err == io.EOF && !overflow && len(buf) > 0 {
				return strings.TrimRight(string(buf), "\r\n"), nil
			}
			return "", err
		}
	}
}

// connState binds one client connection to its current session.
type connState struct {
	srv  *Server
	mgr  *session.Manager
	sess *session.Session
}

// handle executes one command line and returns the reply plus whether
// the session should end.
func (se *connState) handle(line string) (string, bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty command", false
	}
	// A reaped session answers one "ERR session expired" and the
	// connection falls back to a fresh anonymous session; any command
	// on a live named session counts as a heartbeat.
	if se.sess.Named() && se.sess.Expired() {
		se.sess = se.mgr.Anonymous()
		return "ERR session expired", false
	}
	se.sess.Touch()
	switch strings.ToUpper(fields[0]) {
	case "LOCK":
		if len(fields) != 3 {
			return "ERR usage: LOCK <resource> <mode>", false
		}
		return se.lock(fields[1], fields[2]), false
	case "UNLOCK":
		if len(fields) != 2 {
			return "ERR usage: UNLOCK <resource>", false
		}
		return se.release(fields[1], "not holding "+fields[1]), false
	case "UPGRADE":
		if len(fields) != 2 {
			return "ERR usage: UPGRADE <resource>", false
		}
		return se.upgrade(fields[1]), false
	case "LOCKPATH":
		if len(fields) < 3 {
			return "ERR usage: LOCKPATH <mode> <segment>...", false
		}
		return se.lockPath(fields[1], fields[2:]), false
	case "UNLOCKPATH":
		if len(fields) < 2 {
			return "ERR usage: UNLOCKPATH <segment>...", false
		}
		key := "path:" + strings.Join(fields[1:], "/")
		return se.release(key, "not holding "+key), false
	case "LOCKALL":
		if len(fields) < 3 {
			return "ERR usage: LOCKALL <mode> <resource>...", false
		}
		return se.lockAll(fields[1], fields[2:]), false
	case "UNLOCKALL":
		if len(fields) < 2 {
			return "ERR usage: UNLOCKALL <resource>...", false
		}
		key := "set:" + setKey(fields[1:])
		return se.release(key, "not holding "+key), false
	case "SESSION":
		return se.session(fields[1:]), false
	case "SESSIONS":
		return se.sessions(), false
	case "HELD":
		parts := make([]string, 0, se.sess.Len())
		for _, h := range se.sess.List() {
			switch {
			case h.HasFence:
				parts = append(parts, fmt.Sprintf("%s=%s@%s", h.Key, h.Mode, h.Fence))
			case h.Mode != "":
				parts = append(parts, fmt.Sprintf("%s=%s", h.Key, h.Mode))
			default:
				parts = append(parts, h.Key)
			}
		}
		return "OK " + strings.Join(parts, " "), false
	case "STATS":
		sent := se.srv.member.MessagesSent()
		kinds := make([]string, 0, len(sent))
		for k := range sent {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, 0, len(kinds))
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%s=%d", k, sent[k]))
		}
		return "OK " + strings.Join(parts, " "), false
	case "PEERS":
		health := se.srv.member.PeerHealth()
		lc := se.srv.member.LinkCounters()
		ids := make([]int, 0, len(health))
		for id := range health {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		parts := []string{fmt.Sprintf("redials=%d retransmits=%d dups_suppressed=%d",
			lc.Redials, lc.Retransmits, lc.DupsSuppressed)}
		for _, id := range ids {
			h := health[id]
			parts = append(parts, fmt.Sprintf("%d=%s/q%d", id, h.State, h.QueueLen))
		}
		return "OK " + strings.Join(parts, " "), false
	case "MEMBER":
		return se.memberCmd(fields[1:]), false
	case "QUIT":
		return "OK bye", true
	default:
		return fmt.Sprintf("ERR unknown command %s", strings.ToUpper(fields[0])), false
	}
}

// membershipTimeout bounds the blocking MEMBER ADD/REMOVE handshakes.
const membershipTimeout = 30 * time.Second

// memberCmd handles the MEMBER subcommands: LIST renders this member's
// current view of the cluster (self marked with *), ADD makes this
// member join a running cluster through a seed member's peer address,
// and REMOVE makes it leave gracefully — every held token is handed off
// for regeneration among the survivors before the reply. The daemon
// stays up after REMOVE (its engines are fenced out of the cluster);
// shut it down once the reply confirms the hand-off.
func (se *connState) memberCmd(args []string) string {
	if len(args) == 0 {
		return "ERR usage: MEMBER LIST | MEMBER ADD <seed-addr> | MEMBER REMOVE"
	}
	switch strings.ToUpper(args[0]) {
	case "LIST":
		if len(args) != 1 {
			return "ERR usage: MEMBER LIST"
		}
		infos := se.srv.member.Members()
		parts := make([]string, 0, len(infos))
		for _, mi := range infos {
			p := strconv.Itoa(mi.ID)
			if mi.Addr != "" {
				p += "=" + mi.Addr
			}
			if mi.Self {
				p += "*"
			}
			parts = append(parts, p)
		}
		return "OK " + strings.Join(parts, " ")
	case "ADD":
		if len(args) != 2 {
			return "ERR usage: MEMBER ADD <seed-addr>"
		}
		ctx, cancel := context.WithTimeout(context.Background(), membershipTimeout)
		defer cancel()
		if err := se.srv.member.Join(ctx, args[1]); err != nil {
			return fmt.Sprintf("ERR %v", err)
		}
		return fmt.Sprintf("OK joined via %s members=%d", args[1], len(se.srv.member.Members()))
	case "REMOVE":
		if len(args) != 1 {
			return "ERR usage: MEMBER REMOVE"
		}
		ctx, cancel := context.WithTimeout(context.Background(), membershipTimeout)
		defer cancel()
		if err := se.srv.member.Leave(ctx); err != nil {
			return fmt.Sprintf("ERR %v", err)
		}
		return "OK left cluster (tokens handed off; shut this member down)"
	default:
		return fmt.Sprintf("ERR unknown MEMBER subcommand %s", strings.ToUpper(args[0]))
	}
}

// session handles the SESSION subcommands.
func (se *connState) session(args []string) string {
	if len(args) == 0 {
		return "ERR usage: SESSION OPEN <name> [ttl] | SESSION RENEW | SESSION CLOSE"
	}
	switch strings.ToUpper(args[0]) {
	case "OPEN":
		if len(args) < 2 || len(args) > 3 {
			return "ERR usage: SESSION OPEN <name> [ttl]"
		}
		if se.sess.Named() {
			return fmt.Sprintf("ERR session %s already open on this connection", se.sess.Name())
		}
		if se.sess.Len() > 0 {
			return "ERR locks held on anonymous session; release them first"
		}
		var ttl time.Duration
		if len(args) == 3 {
			var err error
			if ttl, err = parseTTL(args[2]); err != nil {
				return fmt.Sprintf("ERR %v", err)
			}
		}
		sess, adopted, err := se.mgr.Open(args[1], ttl)
		if err != nil {
			return fmt.Sprintf("ERR %v", err)
		}
		se.sess = sess
		return fmt.Sprintf("OK session %s ttl=%v adopted=%v locks=%d",
			sess.Name(), sess.TTL(), adopted, sess.Len())
	case "RENEW":
		if len(args) != 1 {
			return "ERR usage: SESSION RENEW"
		}
		ttl, err := se.sess.Renew()
		if err != nil {
			return fmt.Sprintf("ERR %v", err)
		}
		return fmt.Sprintf("OK session %s expires_in=%v", se.sess.Name(), ttl)
	case "CLOSE":
		if len(args) != 1 {
			return "ERR usage: SESSION CLOSE"
		}
		if !se.sess.Named() {
			return "ERR no session open"
		}
		name := se.sess.Name()
		n := se.mgr.CloseSession(se.sess)
		se.sess = se.mgr.Anonymous()
		return fmt.Sprintf("OK session %s released=%d", name, n)
	default:
		return fmt.Sprintf("ERR unknown SESSION subcommand %s", strings.ToUpper(args[0]))
	}
}

// sessions lists the lockd's named sessions.
func (se *connState) sessions() string {
	infos := se.mgr.Snapshot()
	parts := make([]string, 0, len(infos)+1)
	parts = append(parts, strconv.Itoa(len(infos)))
	for _, info := range infos {
		state := "detached"
		if info.Attached {
			state = "attached"
		}
		parts = append(parts, fmt.Sprintf("%s:%s:locks=%d:ttl=%v:expires_in=%v",
			info.Name, state, len(info.Locks), info.TTL,
			info.ExpiresIn.Round(time.Millisecond)))
	}
	return "OK " + strings.Join(parts, " ")
}

func (se *connState) lock(res, modeStr string) string {
	mode, err := ParseMode(modeStr)
	if err != nil {
		return fmt.Sprintf("ERR %v", err)
	}
	if _, dup := se.sess.Get(res); dup {
		return fmt.Sprintf("ERR already holding %s", res)
	}
	ctx, cancel := se.ctx()
	defer cancel()
	srv := se.srv
	acquire := func(ctx context.Context) (*hierlock.Lock, error) {
		// The leader acquires under its own context; bound it by the
		// same server timeout as a direct acquisition.
		if srv.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, srv.Timeout)
			defer cancel()
		}
		return srv.member.Lock(ctx, res, mode)
	}
	l, fence, err := se.mgr.Acquire(ctx, res, mode, acquire)
	if err != nil {
		return fmt.Sprintf("ERR %v", err)
	}
	release := func() error { return se.mgr.Release(res, mode, l) }
	h := session.NewHeld(res, mode.String(), fence, true, l, release)
	if err := se.sess.AddHeld(h); err != nil {
		// The session was reaped while the grant was in flight: the
		// lock must not outlive its lease.
		_ = release()
		return fmt.Sprintf("ERR %v", err)
	}
	return fmt.Sprintf("OK %s %v fence=%s", res, mode, fence)
}

func (se *connState) upgrade(res string) string {
	h, ok := se.sess.Get(res)
	if !ok {
		return fmt.Sprintf("ERR not holding %s", res)
	}
	l, isLock := h.Handle.(*hierlock.Lock)
	if !isLock {
		return fmt.Sprintf("ERR %s is not upgradable", res)
	}
	ctx, cancel := se.ctx()
	defer cancel()
	if err := l.Upgrade(ctx); err != nil {
		return fmt.Sprintf("ERR %v", err)
	}
	h.Mode = l.Mode().String()
	h.Fence = l.Fence()
	return fmt.Sprintf("OK %s %v fence=%s", res, l.Mode(), h.Fence)
}

// release routes UNLOCK/UNLOCKPATH/UNLOCKALL through the session,
// which removes the entry only when the handle was actually disposed
// of (a failed unlock must stay visible to releaseAll).
func (se *connState) release(key, notHeld string) string {
	err := se.sess.Release(key)
	switch {
	case errors.Is(err, session.ErrNotHeld):
		return "ERR " + notHeld
	case err != nil:
		return fmt.Sprintf("ERR %v", err)
	}
	return "OK"
}

func (se *connState) lockPath(modeStr string, segs []string) string {
	mode, err := ParseMode(modeStr)
	if err != nil {
		return fmt.Sprintf("ERR %v", err)
	}
	key := "path:" + strings.Join(segs, "/")
	if _, dup := se.sess.Get(key); dup {
		return fmt.Sprintf("ERR already holding %s", key)
	}
	ctx, cancel := se.ctx()
	defer cancel()
	pl, err := se.srv.member.LockPath(ctx, segs, mode)
	if err != nil {
		return fmt.Sprintf("ERR %v", err)
	}
	leaf := pl.Leaf()
	h := session.NewHeld(key, leaf.Mode().String(), leaf.Fence(), true, pl, pl.Unlock)
	if err := se.sess.AddHeld(h); err != nil {
		_ = pl.Unlock()
		return fmt.Sprintf("ERR %v", err)
	}
	return fmt.Sprintf("OK %s %v fence=%s", key, leaf.Mode(), leaf.Fence())
}

func (se *connState) lockAll(modeStr string, resources []string) string {
	mode, err := ParseMode(modeStr)
	if err != nil {
		return fmt.Sprintf("ERR %v", err)
	}
	key := "set:" + setKey(resources)
	if _, dup := se.sess.Get(key); dup {
		return fmt.Sprintf("ERR already holding %s", key)
	}
	ctx, cancel := se.ctx()
	defer cancel()
	ls, err := se.srv.member.LockAll(ctx, resources, mode)
	if err != nil {
		return fmt.Sprintf("ERR %v", err)
	}
	h := session.NewHeld(key, "", hierlock.FenceToken{}, false, ls, ls.Unlock)
	if err := se.sess.AddHeld(h); err != nil {
		_ = ls.Unlock()
		return fmt.Sprintf("ERR %v", err)
	}
	return fmt.Sprintf("OK %s %d", key, ls.Len())
}

// ctx builds the per-request context honoring the server timeout.
func (se *connState) ctx() (context.Context, context.CancelFunc) {
	if se.srv.Timeout > 0 {
		return context.WithTimeout(context.Background(), se.srv.Timeout)
	}
	return context.Background(), func() {}
}

// parseTTL parses a client-supplied lease TTL: a Go duration ("30s")
// or a bare integer second count.
func parseTTL(s string) (time.Duration, error) {
	if secs, err := strconv.Atoi(s); err == nil {
		if secs <= 0 {
			return 0, fmt.Errorf("ttl must be positive")
		}
		return time.Duration(secs) * time.Second, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad ttl %q (want a duration like 30s)", s)
	}
	if d <= 0 {
		return 0, fmt.Errorf("ttl must be positive")
	}
	return d, nil
}

// setKey canonically names a resource set (sorted, deduplicated).
func setKey(resources []string) string {
	rs := append([]string(nil), resources...)
	sort.Strings(rs)
	out := rs[:0]
	for i, r := range rs {
		if i == 0 || r != rs[i-1] {
			out = append(out, r)
		}
	}
	return strings.Join(out, ",")
}

// ParseMode parses a client-supplied mode name.
func ParseMode(s string) (hierlock.Mode, error) {
	switch strings.ToUpper(s) {
	case "IR":
		return hierlock.IR, nil
	case "R":
		return hierlock.R, nil
	case "U":
		return hierlock.U, nil
	case "IW":
		return hierlock.IW, nil
	case "W":
		return hierlock.W, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want IR, R, U, IW or W)", s)
	}
}
