package lockserver

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// DebugHandler exposes the member's observability surface over HTTP:
//
//	GET /healthz      → 200 "ok" (503 with the error if the member recorded
//	                   a protocol failure)
//	GET /stats        → JSON: acquisitions, latencies, message counts by kind
//	GET /metrics      → Prometheus text exposition of the attached Registry
//	                   (503 when no registry is attached)
//	GET /debug/trace  → JSON dump of the attached trace Recorder; ?n=K limits
//	                   to the K most recent entries, ?enable=on|off toggles
//	                   recording at runtime (503 when no recorder is attached)
//	GET /debug/pprof/ → the standard net/http/pprof profiles
//
// Mount it on lockd's -debug listener.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if err := s.member.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.member.Stats()
		type peerHealth struct {
			State          string `json:"state"`
			QueueLen       uint64 `json:"queue_len"`
			QueueHighWater uint64 `json:"queue_high_water"`
			QueueFullDrops uint64 `json:"queue_full_drops"`
		}
		type linkCounters struct {
			Redials        uint64 `json:"redials"`
			Retransmits    uint64 `json:"retransmits"`
			DupsSuppressed uint64 `json:"dups_suppressed"`
		}
		type stats struct {
			MemberID      int                `json:"member_id"`
			Acquires      uint64             `json:"acquires"`
			SharedJoins   uint64             `json:"shared_joins"`
			MeanAcquireMS float64            `json:"mean_acquire_ms"`
			P99AcquireMS  float64            `json:"p99_acquire_ms"`
			MessagesSent  map[string]uint64  `json:"messages_sent"`
			PeerHealth    map[int]peerHealth `json:"peer_health"`
			Link          linkCounters       `json:"link"`
		}
		ph := make(map[int]peerHealth)
		for id, h := range s.member.PeerHealth() {
			ph[id] = peerHealth{
				State:          h.State,
				QueueLen:       h.QueueLen,
				QueueHighWater: h.QueueHighWater,
				QueueFullDrops: h.QueueFullDrops,
			}
		}
		lc := s.member.LinkCounters()
		out := stats{
			MemberID:      s.member.ID(),
			Acquires:      st.Acquires,
			SharedJoins:   st.SharedJoins,
			MeanAcquireMS: float64(st.MeanAcquire) / float64(time.Millisecond),
			P99AcquireMS:  float64(st.P99Acquire) / float64(time.Millisecond),
			MessagesSent:  s.member.MessagesSent(),
			PeerHealth:    ph,
			Link: linkCounters{
				Redials:        lc.Redials,
				Retransmits:    lc.Retransmits,
				DupsSuppressed: lc.DupsSuppressed,
			},
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if s.Registry == nil {
			http.Error(w, "no metrics registry attached", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if s.Trace == nil {
			http.Error(w, "no trace recorder attached", http.StatusServiceUnavailable)
			return
		}
		switch r.URL.Query().Get("enable") {
		case "on":
			s.Trace.SetEnabled(true)
		case "off":
			s.Trace.SetEnabled(false)
		}
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Trace.DumpLast(n))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
