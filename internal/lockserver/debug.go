package lockserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"hierlock/internal/introspect"
	"hierlock/internal/profile"
	"hierlock/internal/proto"
	"hierlock/internal/trace"
	"hierlock/internal/watchdog"
)

// DebugHandler exposes the member's observability surface over HTTP:
//
//	GET /healthz      → the watchdog's verdict as plain text: 200 "ok" when
//	                   healthy, 200 "degraded" (load balancers keep serving
//	                   a degraded node), 503 "stalled" when client-visible
//	                   progress stopped, and 503 with the error if the
//	                   member recorded a protocol failure. Without a
//	                   watchdog attached, the protocol-failure check alone.
//	GET /debug/health → the watchdog's full verdict as JSON: state plus
//	                   structured reasons (code, severity, detail) and the
//	                   per-state transition counts (503 when no watchdog is
//	                   attached)
//	GET /stats        → JSON: acquisitions, latencies, message counts by kind
//	GET /metrics      → Prometheus text exposition of the attached Registry
//	                   (503 when no registry is attached)
//	GET /debug/trace  → JSON dump of the attached trace Recorder; ?n=K limits
//	                   to the K most recent entries, ?enable=on|off toggles
//	                   recording at runtime (503 when no recorder is attached).
//	                   ?peers=addr1,addr2 switches to peer-merge mode: the
//	                   node fetches every listed peer's /debug/trace buffer
//	                   and returns one ClusterDump bundling its own buffer
//	                   with the peers' (per-peer fetch errors reported, not
//	                   fatal) — the input `lockctl trace --cluster` assembles
//	                   causal paths from.
//	GET /debug/audit  → JSON report of the online protocol auditor: entries
//	                   consumed, violations per invariant, recent violation
//	                   details (503 when no auditor is attached)
//	GET /debug/locks  → JSON inventory of every lock this node tracks:
//	                   epoch, token ownership, held/pending/frozen modes,
//	                   copyset, probable-owner next hop, queued requests
//	                   and the local waiter with its wait duration.
//	                   ?peers=addr1,addr2 merges the listed peers'
//	                   inventories into one cluster view with the
//	                   cluster-wide wait-for graph and deadlock cycles —
//	                   the input `lockctl locks --cluster` renders.
//	GET /debug/blackbox → JSON view of the flight recorder: counters, the
//	                   retained event ring (?n=K limits to the K most
//	                   recent) and the dump files on disk. ?dump=NAME
//	                   returns one dump file; ?trigger=1 forces a manual
//	                   dump. 503 when no recorder is attached.
//	GET /debug/profile → JSON view of the continuous profiler: capture
//	                   counters and the pprof files on disk. ?capture=KIND
//	                   (cpu, heap, goroutine, mutex, block or all) takes a
//	                   capture first (rate-limited per kind; cpu blocks for
//	                   the sampling duration); ?file=NAME returns one raw
//	                   pprof file. 503 when no profiler is attached.
//	GET /debug/pprof/ → the standard net/http/pprof profiles
//
// Mount it on lockd's -debug listener.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if err := s.member.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Health != nil {
			h := s.Health.Current()
			if h.State == watchdog.Stalled {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			if h.State != watchdog.Healthy {
				_, _ = fmt.Fprintf(w, "%s\n", h.Status)
				for _, reason := range h.Reasons {
					_, _ = fmt.Fprintf(w, "%s: %s\n", reason.Code, reason.Detail)
				}
				return
			}
		}
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, r *http.Request) {
		if s.Health == nil {
			http.Error(w, "no watchdog attached", http.StatusServiceUnavailable)
			return
		}
		h := s.Health.Current()
		transitions := make(map[string]uint64, len(watchdog.States))
		for st, n := range s.Health.Transitions() {
			transitions[st.String()] = n
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(HealthView{
			Node:        s.member.ID(),
			State:       h.Status,
			Reasons:     h.Reasons,
			Transitions: transitions,
		})
	})
	mux.HandleFunc("/debug/profile", func(w http.ResponseWriter, r *http.Request) {
		if s.Profiler == nil {
			http.Error(w, "no profiler attached", http.StatusServiceUnavailable)
			return
		}
		q := r.URL.Query()
		if name := q.Get("file"); name != "" {
			data, err := s.Profiler.Read(name)
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", name))
			_, _ = w.Write(data)
			return
		}
		var captured []string
		var capErr string
		switch kind := q.Get("capture"); kind {
		case "":
		case "all":
			files, err := s.Profiler.CaptureAll()
			for _, f := range files {
				captured = append(captured, filepath.Base(f))
			}
			if err != nil {
				capErr = err.Error()
			}
		default:
			path, err := s.Profiler.Capture(kind)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if path != "" {
				captured = append(captured, filepath.Base(path))
			}
		}
		files, err := s.Profiler.List()
		view := ProfileView{
			Node:       s.member.ID(),
			Dir:        s.Profiler.Dir(),
			Captured:   captured,
			CaptureErr: capErr,
			Files:      files,
		}
		st := s.Profiler.Stats()
		view.Captures = st.Captures
		view.Suppressed = st.Suppressed
		if st.LastErr != nil {
			view.LastErr = st.LastErr.Error()
		}
		if err != nil {
			view.LastErr = err.Error()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(view)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.member.Stats()
		type peerHealth struct {
			State          string `json:"state"`
			QueueLen       uint64 `json:"queue_len"`
			QueueHighWater uint64 `json:"queue_high_water"`
			QueueFullDrops uint64 `json:"queue_full_drops"`
		}
		type linkCounters struct {
			Redials        uint64 `json:"redials"`
			Retransmits    uint64 `json:"retransmits"`
			DupsSuppressed uint64 `json:"dups_suppressed"`
		}
		type journalStats struct {
			Records     uint64  `json:"records"`
			WALBytes    int64   `json:"wal_bytes"`
			Fsyncs      uint64  `json:"fsyncs"`
			MeanFsyncMS float64 `json:"mean_fsync_ms"`
			Snapshots   uint64  `json:"snapshots"`
			Locks       int     `json:"locks"`
		}
		type stats struct {
			MemberID      int                `json:"member_id"`
			Acquires      uint64             `json:"acquires"`
			SharedJoins   uint64             `json:"shared_joins"`
			MeanAcquireMS float64            `json:"mean_acquire_ms"`
			P99AcquireMS  float64            `json:"p99_acquire_ms"`
			MessagesSent  map[string]uint64  `json:"messages_sent"`
			PeerHealth    map[int]peerHealth `json:"peer_health"`
			Link          linkCounters       `json:"link"`
			Journal       *journalStats      `json:"journal,omitempty"`
		}
		ph := make(map[int]peerHealth)
		for id, h := range s.member.PeerHealth() {
			ph[id] = peerHealth{
				State:          h.State,
				QueueLen:       h.QueueLen,
				QueueHighWater: h.QueueHighWater,
				QueueFullDrops: h.QueueFullDrops,
			}
		}
		lc := s.member.LinkCounters()
		out := stats{
			MemberID:      s.member.ID(),
			Acquires:      st.Acquires,
			SharedJoins:   st.SharedJoins,
			MeanAcquireMS: float64(st.MeanAcquire) / float64(time.Millisecond),
			P99AcquireMS:  float64(st.P99Acquire) / float64(time.Millisecond),
			MessagesSent:  s.member.MessagesSent(),
			PeerHealth:    ph,
			Link: linkCounters{
				Redials:        lc.Redials,
				Retransmits:    lc.Retransmits,
				DupsSuppressed: lc.DupsSuppressed,
			},
		}
		if js, ok := s.member.JournalStats(); ok {
			j := journalStats{
				Records:   js.Records,
				WALBytes:  js.WALBytes,
				Fsyncs:    js.Fsyncs,
				Snapshots: js.Snapshots,
				Locks:     js.Locks,
			}
			if js.Fsyncs > 0 {
				j.MeanFsyncMS = float64(js.FsyncTime) / float64(js.Fsyncs) / float64(time.Millisecond)
			}
			out.Journal = &j
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if s.Registry == nil {
			http.Error(w, "no metrics registry attached", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if s.Trace == nil {
			http.Error(w, "no trace recorder attached", http.StatusServiceUnavailable)
			return
		}
		switch r.URL.Query().Get("enable") {
		case "on":
			s.Trace.SetEnabled(true)
		case "off":
			s.Trace.SetEnabled(false)
		}
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if peers := r.URL.Query().Get("peers"); peers != "" {
			_ = enc.Encode(s.clusterDump(n, strings.Split(peers, ",")))
			return
		}
		_ = enc.Encode(s.localDump(n))
	})
	mux.HandleFunc("/debug/audit", func(w http.ResponseWriter, r *http.Request) {
		if s.Audit == nil {
			http.Error(w, "no auditor attached", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Audit.Snapshot())
	})
	mux.HandleFunc("/debug/locks", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if peers := r.URL.Query().Get("peers"); peers != "" {
			_ = enc.Encode(s.clusterInventory(strings.Split(peers, ",")))
			return
		}
		_ = enc.Encode(s.inventory())
	})
	mux.HandleFunc("/debug/blackbox", func(w http.ResponseWriter, r *http.Request) {
		if s.Blackbox == nil {
			http.Error(w, "no flight recorder attached", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if name := r.URL.Query().Get("dump"); name != "" {
			if s.BlackboxDir == "" {
				http.Error(w, "no blackbox dump directory configured", http.StatusServiceUnavailable)
				return
			}
			d, err := introspect.ReadDump(s.BlackboxDir, name)
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			_ = enc.Encode(d)
			return
		}
		if r.URL.Query().Get("trigger") != "" {
			if _, err := s.Blackbox.TriggerDump(introspect.ReasonManual); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		st := s.Blackbox.Stats()
		view := BlackboxView{
			Node:   s.member.ID(),
			Events: st.Events,
			Dumps:  st.Dumps,
			Ring:   s.Blackbox.Snapshot(n),
		}
		if st.LastErr != nil {
			view.LastDumpErr = st.LastErr.Error()
		}
		if s.BlackboxDir != "" {
			files, err := introspect.ListDumps(s.BlackboxDir)
			if err != nil {
				view.LastDumpErr = err.Error()
			}
			view.Files = files
		}
		_ = enc.Encode(view)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// localDump captures this node's trace buffer, stamped with the member's
// node identity so cluster merges can attribute (and deduplicate) it.
func (s *Server) localDump(n int) trace.Dump {
	d := s.Trace.DumpLast(n)
	d.Node = proto.NodeID(s.member.ID())
	return d
}

// clusterDump bundles this node's buffer with every listed peer's,
// fetched over their debug listeners. Peer failures are reported in
// Errors rather than failing the merge — a partial capture still
// assembles a useful causal path.
func (s *Server) clusterDump(n int, peers []string) trace.ClusterDump {
	out := trace.ClusterDump{Nodes: []trace.Dump{s.localDump(n)}}
	client := &http.Client{Timeout: 5 * time.Second}
	for _, peer := range peers {
		peer = strings.TrimSpace(peer)
		if peer == "" {
			continue
		}
		d, err := FetchDump(client, peer, n)
		if err != nil {
			if out.Errors == nil {
				out.Errors = make(map[string]string)
			}
			out.Errors[peer] = err.Error()
			continue
		}
		out.Nodes = append(out.Nodes, d)
	}
	return out
}

// HealthView is the /debug/health response: the watchdog's current
// verdict with its structured reasons and per-state transition counts.
type HealthView struct {
	Node        int               `json:"node"`
	State       string            `json:"state"`
	Reasons     []watchdog.Reason `json:"reasons,omitempty"`
	Transitions map[string]uint64 `json:"transitions"`
}

// ProfileView is the /debug/profile response: the profiler's counters
// and the capture files on disk (Captured names any files this request
// just wrote).
type ProfileView struct {
	Node       int               `json:"node"`
	Dir        string            `json:"dir"`
	Captures   map[string]uint64 `json:"captures"`
	Suppressed uint64            `json:"suppressed"`
	Captured   []string          `json:"captured,omitempty"`
	CaptureErr string            `json:"capture_err,omitempty"`
	LastErr    string            `json:"last_err,omitempty"`
	Files      []profile.File    `json:"files,omitempty"`
}

// BlackboxView is the /debug/blackbox response: the flight recorder's
// counters, its retained ring, and the dump files on disk.
type BlackboxView struct {
	Node        int                    `json:"node"`
	Events      uint64                 `json:"events"`
	Dumps       map[string]uint64      `json:"dumps"`
	LastDumpErr string                 `json:"last_dump_err,omitempty"`
	Ring        []introspect.DumpEvent `json:"ring"`
	Files       []introspect.DumpFile  `json:"files,omitempty"`
}

// clusterInventory merges this node's lock inventory with every listed
// peer's into the cluster view (wait-for graph included). Peer failures
// are reported in Errors rather than failing the merge.
func (s *Server) clusterInventory(peers []string) introspect.Cluster {
	nodes := []introspect.NodeInventory{s.inventory()}
	errs := map[string]string{}
	client := &http.Client{Timeout: 5 * time.Second}
	for _, peer := range peers {
		peer = strings.TrimSpace(peer)
		if peer == "" {
			continue
		}
		inv, err := FetchInventory(client, peer)
		if err != nil {
			errs[peer] = err.Error()
			continue
		}
		nodes = append(nodes, inv)
	}
	c := introspect.Merge(nodes)
	if len(errs) > 0 {
		c.Errors = errs
	}
	return c
}

// inventory is the member's lock inventory plus the session tier's
// named sessions, when the session manager has been started (it is not
// created just to report itself empty).
func (s *Server) inventory() introspect.NodeInventory {
	inv := s.member.Inventory()
	s.mu.Lock()
	mgr := s.sess
	s.mu.Unlock()
	if mgr == nil {
		return inv
	}
	for _, info := range mgr.Snapshot() {
		si := introspect.SessionInfo{
			Name:            info.Name,
			Attached:        info.Attached,
			TTLMillis:       info.TTL.Milliseconds(),
			ExpiresInMillis: info.ExpiresIn.Milliseconds(),
		}
		for _, h := range info.Locks {
			si.Locks = append(si.Locks, introspect.SessionLock{
				Key: h.Key, Mode: h.Mode, Fence: h.Fence})
		}
		inv.Sessions = append(inv.Sessions, si)
	}
	return inv
}

// FetchInventory retrieves one node's /debug/locks inventory from its
// debug listener (addr is host:port or a full http:// URL). Shared by
// the peer-merge mode above and `lockctl locks --cluster`.
func FetchInventory(client *http.Client, addr string) (introspect.NodeInventory, error) {
	var inv introspect.NodeInventory
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/debug/locks"
	resp, err := client.Get(url)
	if err != nil {
		return inv, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return inv, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
		return inv, fmt.Errorf("%s: %w", url, err)
	}
	return inv, nil
}

// FetchDump retrieves one node's trace buffer from its debug listener
// (addr is host:port or a full http:// URL). Shared by the peer-merge
// mode above and `lockctl trace --cluster`.
func FetchDump(client *http.Client, addr string, n int) (trace.Dump, error) {
	var d trace.Dump
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/debug/trace"
	if n > 0 {
		url += fmt.Sprintf("?n=%d", n)
	}
	resp, err := client.Get(url)
	if err != nil {
		return d, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return d, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return d, fmt.Errorf("%s: %w", url, err)
	}
	return d, nil
}
