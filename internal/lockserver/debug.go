package lockserver

import (
	"encoding/json"
	"net/http"
	"time"
)

// DebugHandler exposes the member's observability counters over HTTP:
//
//	GET /healthz  → 200 "ok" (503 with the error if the member recorded a
//	               protocol failure)
//	GET /stats    → JSON: acquisitions, latencies, message counts by kind
//
// Mount it on lockd's -debug listener.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if err := s.member.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.member.Stats()
		type peerHealth struct {
			State          string `json:"state"`
			QueueLen       uint64 `json:"queue_len"`
			QueueHighWater uint64 `json:"queue_high_water"`
			QueueFullDrops uint64 `json:"queue_full_drops"`
		}
		type linkCounters struct {
			Redials        uint64 `json:"redials"`
			Retransmits    uint64 `json:"retransmits"`
			DupsSuppressed uint64 `json:"dups_suppressed"`
		}
		type stats struct {
			MemberID      int                `json:"member_id"`
			Acquires      uint64             `json:"acquires"`
			SharedJoins   uint64             `json:"shared_joins"`
			MeanAcquireMS float64            `json:"mean_acquire_ms"`
			P99AcquireMS  float64            `json:"p99_acquire_ms"`
			MessagesSent  map[string]uint64  `json:"messages_sent"`
			PeerHealth    map[int]peerHealth `json:"peer_health"`
			Link          linkCounters       `json:"link"`
		}
		ph := make(map[int]peerHealth)
		for id, h := range s.member.PeerHealth() {
			ph[id] = peerHealth{
				State:          h.State,
				QueueLen:       h.QueueLen,
				QueueHighWater: h.QueueHighWater,
				QueueFullDrops: h.QueueFullDrops,
			}
		}
		lc := s.member.LinkCounters()
		out := stats{
			MemberID:      s.member.ID(),
			Acquires:      st.Acquires,
			SharedJoins:   st.SharedJoins,
			MeanAcquireMS: float64(st.MeanAcquire) / float64(time.Millisecond),
			P99AcquireMS:  float64(st.P99Acquire) / float64(time.Millisecond),
			MessagesSent:  s.member.MessagesSent(),
			PeerHealth:    ph,
			Link: linkCounters{
				Redials:        lc.Redials,
				Retransmits:    lc.Retransmits,
				DupsSuppressed: lc.DupsSuppressed,
			},
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	return mux
}
