package lockserver_test

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hierlock"
	"hierlock/internal/lockserver"
	"hierlock/internal/metrics"
)

// TestUpgradeHonorsServerTimeout is the regression test for UPGRADE
// ignoring Server.Timeout: a contended upgrade used to wait on a
// background context forever, wedging the connection. It must fail
// within the configured timeout like any LOCK.
func TestUpgradeHonorsServerTimeout(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := lockserver.New(cl.Member(0))
	srv.Timeout = 300 * time.Millisecond
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	addrReader := startServer(t, cl.Member(1))

	// A reader on the other member blocks the upgrade to W.
	reader := dial(t, addrReader)
	reader.mustOK("LOCK acct R")

	c := dial(t, ln.Addr().String())
	c.mustOK("LOCK acct U")
	start := time.Now()
	resp := c.cmd("UPGRADE acct")
	elapsed := time.Since(start)
	if !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("contended upgrade: %q, want timeout error", resp)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("upgrade returned after %v; Server.Timeout was ignored", elapsed)
	}
	// The connection is intact and the U hold survives the failed upgrade.
	if got := c.mustOK("HELD"); !strings.Contains(got, "acct=U") {
		t.Fatalf("held after failed upgrade: %q", got)
	}
	reader.mustOK("UNLOCK acct")
}

// TestCloseDrainsIdleConns is the regression test for Server.Close only
// closing the listener: connections blocked reading an idle client used
// to linger, so Serve (which waits for them) never returned.
func TestCloseDrainsIdleConns(t *testing.T) {
	cl, err := hierlock.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := lockserver.New(cl.Member(0))
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	// An idle client: connected, command exchanged, then silent.
	c := dial(t, ln.Addr().String())
	c.mustOK("LOCK a W")

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close: idle connection not drained")
	}
	// The idle client's connection was closed under it.
	_ = c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if c.rd.Scan() {
		t.Fatalf("unexpected line after Close: %q", c.rd.Text())
	}
}

// TestLongLineHandled is the regression test for the 64KB scanner cap:
// an oversized line must answer ERR and leave the connection usable,
// and a long-but-valid LOCKALL far beyond 64KB must now work.
func TestLongLineHandled(t *testing.T) {
	cl, err := hierlock.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addr := startServer(t, cl.Member(0))
	c := dial(t, addr)

	// Far over the 1MB line cap: rejected, not fatal.
	if resp := c.cmd("LOCKALL W " + strings.Repeat("x", 2<<20)); !strings.HasPrefix(resp, "ERR line too long") {
		t.Fatalf("oversized line: %q", resp)
	}
	c.mustOK("LOCK a W")
	c.mustOK("UNLOCK a")

	// ~100KB of resources — over the old bufio.Scanner default cap that
	// used to kill the session mid-LOCKALL.
	resources := make([]string, 6000)
	for i := range resources {
		resources[i] = fmt.Sprintf("res/%08d", i)
	}
	line := "LOCKALL R " + strings.Join(resources, " ")
	if len(line) <= 64*1024 {
		t.Fatalf("test line only %d bytes; not past the old cap", len(line))
	}
	if got := c.mustOK(line); !strings.Contains(got, "6000") {
		t.Fatalf("long LOCKALL: %q", got)
	}
	c.mustOK("UNLOCKALL " + strings.Join(resources, " "))
}

// TestAdmissionO1Traffic: many clients blocked on one hot lock must
// cost O(1) member-level protocol work per grant — one leader
// acquisition, everything else local hand-offs. This is the 10k-waiter
// property at test scale.
func TestAdmissionO1Traffic(t *testing.T) {
	const n = 120
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addr, reg := startSessionServer(t, cl.Member(0), time.Minute, 0)

	holder := dial(t, addr)
	holder.mustOK("LOCK hot W")

	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := dial(t, addr)
			resp := w.cmd("LOCK hot W")
			if !strings.HasPrefix(resp, "OK") {
				errs <- resp
				return
			}
			if resp := w.cmd("UNLOCK hot"); !strings.HasPrefix(resp, "OK") {
				errs <- resp
			}
		}()
	}
	// Wait until all n are parked in the admission queue, then measure
	// protocol traffic across the entire fan-out.
	deadline := time.Now().Add(30 * time.Second)
	for reg.Counter(metrics.MetricAdmissionEnqueued, "", nil).Value() < n+1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d enqueued", reg.Counter(metrics.MetricAdmissionEnqueued, "", nil).Value())
		}
		time.Sleep(time.Millisecond)
	}
	sentBefore := cl.Member(0).Stats().MessagesSent
	holder.mustOK("UNLOCK hot")
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("waiter failed: %q", e)
	}
	sentDelta := cl.Member(0).Stats().MessagesSent - sentBefore

	if got := reg.Counter(metrics.MetricAdmissionLeaderAcquires, "", nil).Value(); got != 1 {
		t.Fatalf("leader acquires = %d, want 1", got)
	}
	if got := reg.Counter(metrics.MetricAdmissionHandoffs, "", nil).Value(); got != n {
		t.Fatalf("handoffs = %d, want %d", got, n)
	}
	// O(1), not O(n): the whole n-client fan-out may cost at most a
	// handful of protocol messages (the final no-taker release).
	if sentDelta > 10 {
		t.Fatalf("fan-out sent %d protocol messages for %d grants; admission is not O(1)", sentDelta, n)
	}
}
