package lockserver_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hierlock"
	"hierlock/internal/lockserver"
)

// startServer runs a lockserver for member m on an ephemeral port.
func startServer(t *testing.T, m *hierlock.Member) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := lockserver.New(m)
	srv.Timeout = 10 * time.Second
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String()
}

type client struct {
	t    *testing.T
	conn net.Conn
	rd   *bufio.Scanner
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	rd := bufio.NewScanner(conn)
	rd.Buffer(make([]byte, 0, 1<<20), 1<<20) // replies can echo long set keys
	return &client{t: t, conn: conn, rd: rd}
}

func (c *client) cmd(line string) string {
	c.t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		c.t.Fatal(err)
	}
	if !c.rd.Scan() {
		c.t.Fatalf("connection closed: %v", c.rd.Err())
	}
	return c.rd.Text()
}

func (c *client) mustOK(line string) string {
	c.t.Helper()
	resp := c.cmd(line)
	if !strings.HasPrefix(resp, "OK") {
		c.t.Fatalf("%q -> %q", line, resp)
	}
	return resp
}

func TestSessionLifecycle(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addr := startServer(t, cl.Member(0))

	c := dial(t, addr)
	if got := c.mustOK("LOCK fares/r1 W"); !strings.Contains(got, "fares/r1 W") {
		t.Fatalf("lock reply: %q", got)
	}
	if got := c.mustOK("HELD"); !strings.Contains(got, "fares/r1=W") {
		t.Fatalf("held reply: %q", got)
	}
	c.mustOK("UNLOCK fares/r1")
	if got := c.mustOK("HELD"); strings.TrimSpace(got) != "OK" {
		t.Fatalf("held after unlock: %q", got)
	}
	if got := c.mustOK("STATS"); !strings.Contains(got, "request=") {
		t.Fatalf("stats reply: %q", got)
	}
	if got := c.cmd("QUIT"); got != "OK bye" {
		t.Fatalf("quit reply: %q", got)
	}
}

func TestErrors(t *testing.T) {
	cl, err := hierlock.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addr := startServer(t, cl.Member(0))
	c := dial(t, addr)

	for _, bad := range []string{
		"LOCK a", "LOCK a BOGUS", "UNLOCK", "UNLOCK nothing",
		"UPGRADE", "UPGRADE nothing", "NOSUCH", "",
	} {
		if resp := c.cmd(bad); !strings.HasPrefix(resp, "ERR") {
			t.Errorf("%q -> %q, want ERR", bad, resp)
		}
	}
	c.mustOK("LOCK a R")
	if resp := c.cmd("LOCK a R"); !strings.HasPrefix(resp, "ERR already holding") {
		t.Errorf("duplicate lock -> %q", resp)
	}
	if resp := c.cmd("UPGRADE a"); !strings.HasPrefix(resp, "ERR") {
		t.Errorf("upgrade from R -> %q", resp)
	}
}

func TestUpgradeViaProtocol(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addr := startServer(t, cl.Member(1))
	c := dial(t, addr)
	c.mustOK("LOCK acct U")
	if got := c.mustOK("UPGRADE acct"); !strings.Contains(got, "acct W") {
		t.Fatalf("upgrade reply: %q", got)
	}
	c.mustOK("UNLOCK acct")
}

func TestDisconnectReleasesLocks(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addr := startServer(t, cl.Member(0))

	c1 := dial(t, addr)
	c1.mustOK("LOCK shared W")
	_ = c1.conn.Close()

	// After c1 vanishes, its W must be released so c2 can take it.
	c2 := dial(t, addr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := c2.cmd("LOCK shared W")
		if strings.HasPrefix(resp, "OK") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lock never released after disconnect: %q", resp)
		}
		time.Sleep(50 * time.Millisecond)
	}
	c2.mustOK("UNLOCK shared")
}

func TestTwoDaemonsShareLocks(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addr0 := startServer(t, cl.Member(0))
	addr1 := startServer(t, cl.Member(1))

	c0 := dial(t, addr0)
	c1 := dial(t, addr1)
	c0.mustOK("LOCK doc R")
	c1.mustOK("LOCK doc R") // shared readers across daemons

	done := make(chan string, 1)
	go func() {
		w := dial(t, addr1)
		done <- w.cmd("LOCK doc W")
	}()
	select {
	case resp := <-done:
		t.Fatalf("writer acquired while readers held: %q", resp)
	case <-time.After(300 * time.Millisecond):
	}
	c0.mustOK("UNLOCK doc")
	c1.mustOK("UNLOCK doc")
	select {
	case resp := <-done:
		if !strings.HasPrefix(resp, "OK") {
			t.Fatalf("writer failed: %q", resp)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writer starved")
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]hierlock.Mode{
		"ir": hierlock.IR, "R": hierlock.R, "u": hierlock.U,
		"Iw": hierlock.IW, "w": hierlock.W,
	} {
		got, err := lockserver.ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := lockserver.ParseMode("x"); err == nil {
		t.Error("bad mode must fail")
	}
}

func TestLockPathViaProtocol(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addr := startServer(t, cl.Member(0))
	c := dial(t, addr)

	if got := c.mustOK("LOCKPATH W fares row17"); !strings.Contains(got, "path:fares/row17 W") {
		t.Fatalf("lockpath reply: %q", got)
	}
	if got := c.mustOK("HELD"); !strings.Contains(got, "path:fares/row17=W") {
		t.Fatalf("held reply: %q", got)
	}
	if resp := c.cmd("LOCKPATH W fares row17"); !strings.HasPrefix(resp, "ERR already") {
		t.Fatalf("duplicate path -> %q", resp)
	}
	// Another client can take a disjoint row concurrently.
	c2 := dial(t, addr)
	c2.mustOK("LOCKPATH W fares row18")
	c2.mustOK("UNLOCKPATH fares row18")
	c.mustOK("UNLOCKPATH fares row17")
	if resp := c.cmd("UNLOCKPATH fares row17"); !strings.HasPrefix(resp, "ERR not holding") {
		t.Fatalf("double unlockpath -> %q", resp)
	}
	for _, bad := range []string{"LOCKPATH", "LOCKPATH W", "UNLOCKPATH", "LOCKPATH BOGUS a b"} {
		if resp := c.cmd(bad); !strings.HasPrefix(resp, "ERR") {
			t.Errorf("%q -> %q", bad, resp)
		}
	}
}

func TestLockAllViaProtocol(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addr := startServer(t, cl.Member(0))
	c := dial(t, addr)

	if got := c.mustOK("LOCKALL W b a c"); !strings.Contains(got, "set:a,b,c 3") {
		t.Fatalf("lockall reply: %q", got)
	}
	if got := c.mustOK("HELD"); !strings.Contains(got, "set:a,b,c") {
		t.Fatalf("held reply: %q", got)
	}
	// Unlock with the names in any order (canonical key).
	c.mustOK("UNLOCKALL c a b")
	if resp := c.cmd("UNLOCKALL a b c"); !strings.HasPrefix(resp, "ERR not holding") {
		t.Fatalf("double unlockall -> %q", resp)
	}
	for _, bad := range []string{"LOCKALL", "LOCKALL W", "UNLOCKALL", "LOCKALL Z a"} {
		if resp := c.cmd(bad); !strings.HasPrefix(resp, "ERR") {
			t.Errorf("%q -> %q", bad, resp)
		}
	}
}

func TestDisconnectReleasesPathsAndSets(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addr := startServer(t, cl.Member(0))

	c1 := dial(t, addr)
	c1.mustOK("LOCKPATH W db tbl")
	c1.mustOK("LOCKALL W s1 s2")
	_ = c1.conn.Close()

	c2 := dial(t, addr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if resp := c2.cmd("LOCKALL W db/tbl s1 s2"); strings.HasPrefix(resp, "OK") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("locks not released after disconnect")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestDebugHandler(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv := lockserver.New(cl.Member(1))
	h := srv.DebugHandler()

	// Generate some activity.
	l, err := cl.Member(1).Lock(context.Background(), "dbg", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Unlock()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("stats: %d", rec.Code)
	}
	var got struct {
		MemberID     int               `json:"member_id"`
		Acquires     uint64            `json:"acquires"`
		MessagesSent map[string]uint64 `json:"messages_sent"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("stats json: %v\n%s", err, rec.Body.String())
	}
	if got.MemberID != 1 || got.Acquires == 0 || got.MessagesSent["request"] == 0 {
		t.Fatalf("stats content: %+v", got)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nosuch", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown path: %d", rec.Code)
	}
}
