package lockserver_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"hierlock"
	"hierlock/internal/lockserver"
	"hierlock/internal/metrics"
)

// startSessionServer runs a lockserver with the session tier tuned for
// tests: short leases, fast sweeps, a registry for counter assertions.
func startSessionServer(t *testing.T, m *hierlock.Member, ttl time.Duration, maxWaiters int) (string, *metrics.Registry) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	srv := lockserver.New(m)
	srv.Timeout = 10 * time.Second
	srv.LeaseTTL = ttl
	srv.MaxWaiters = maxWaiters
	srv.SweepInterval = ttl / 5
	srv.Registry = reg
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String(), reg
}

// fenceOf extracts the fencing token from an OK grant reply.
func fenceOf(t *testing.T, reply string) hierlock.FenceToken {
	t.Helper()
	for _, f := range strings.Fields(reply) {
		if rest, ok := strings.CutPrefix(f, "fence="); ok {
			tok, err := hierlock.ParseFence(rest)
			if err != nil {
				t.Fatalf("bad fence in %q: %v", reply, err)
			}
			return tok
		}
	}
	t.Fatalf("no fence in reply %q", reply)
	return hierlock.FenceToken{}
}

func TestSessionVerbs(t *testing.T) {
	cl, err := hierlock.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addr, _ := startSessionServer(t, cl.Member(0), time.Minute, 0)
	c := dial(t, addr)

	if resp := c.cmd("SESSION RENEW"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("renew without session: %q", resp)
	}
	if resp := c.cmd("SESSION CLOSE"); !strings.HasPrefix(resp, "ERR no session") {
		t.Fatalf("close without session: %q", resp)
	}
	c.mustOK("LOCK pre W")
	if resp := c.cmd("SESSION OPEN job7"); !strings.HasPrefix(resp, "ERR locks held") {
		t.Fatalf("open with anonymous locks: %q", resp)
	}
	c.mustOK("UNLOCK pre")

	got := c.mustOK("SESSION OPEN job7 30s")
	if !strings.Contains(got, "session job7") || !strings.Contains(got, "adopted=false") {
		t.Fatalf("open reply: %q", got)
	}
	if resp := c.cmd("SESSION OPEN other"); !strings.HasPrefix(resp, "ERR session job7 already open") {
		t.Fatalf("double open: %q", resp)
	}
	if got := c.mustOK("SESSION RENEW"); !strings.Contains(got, "job7") {
		t.Fatalf("renew reply: %q", got)
	}
	c.mustOK("LOCK a W")
	if got := c.mustOK("SESSIONS"); !strings.Contains(got, "job7:attached:locks=1") {
		t.Fatalf("sessions reply: %q", got)
	}
	if got := c.mustOK("SESSION CLOSE"); !strings.Contains(got, "released=1") {
		t.Fatalf("close reply: %q", got)
	}
	// Back to anonymous; the lock is gone.
	if got := c.mustOK("HELD"); strings.TrimSpace(got) != "OK" {
		t.Fatalf("held after close: %q", got)
	}
	if got := c.mustOK("SESSIONS"); strings.TrimSpace(got) != "OK 0" {
		t.Fatalf("sessions after close: %q", got)
	}
	if resp := c.cmd("SESSION OPEN job7 nonsense"); !strings.HasPrefix(resp, "ERR bad ttl") {
		t.Fatalf("bad ttl: %q", resp)
	}
}

// TestSessionReconnectKeepsLocks: a named session's locks survive the
// connection; a reconnecting client re-adopts them, handles intact.
func TestSessionReconnectKeepsLocks(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addr, _ := startSessionServer(t, cl.Member(0), time.Minute, 0)

	c1 := dial(t, addr)
	c1.mustOK("SESSION OPEN etl")
	grant := c1.mustOK("LOCK fares/r1 W")
	f1 := fenceOf(t, grant)
	_ = c1.conn.Close() // drop without UNLOCK or SESSION CLOSE

	// The lock is still held — a second client cannot take it...
	c2 := dial(t, addr)
	blocked := make(chan string, 1)
	go func() {
		b := dial(t, addr)
		blocked <- b.cmd("LOCK fares/r1 W")
	}()
	select {
	case resp := <-blocked:
		t.Fatalf("writer acquired against a live lease: %q", resp)
	case <-time.After(200 * time.Millisecond):
	}

	// ...but the owner can reconnect and adopt it back.
	got := c2.mustOK("SESSION OPEN etl")
	if !strings.Contains(got, "adopted=true") || !strings.Contains(got, "locks=1") {
		t.Fatalf("adopt reply: %q", got)
	}
	held := c2.mustOK("HELD")
	if !strings.Contains(held, "fares/r1=W@"+f1.String()) {
		t.Fatalf("held after adopt: %q (want fence %s)", held, f1)
	}
	c2.mustOK("UNLOCK fares/r1")
	if resp := <-blocked; !strings.HasPrefix(resp, "OK") {
		t.Fatalf("waiter after release: %q", resp)
	}
}

// TestLeaseExpiryFencing is the PR's acceptance scenario on the live
// path: a client acquires W and dies silently; within 2×TTL the lease
// sweeper reaps the lock, a second client acquires the same resource,
// and its fencing token is strictly larger than the dead client's.
func TestLeaseExpiryFencing(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const ttl = 500 * time.Millisecond
	addr, reg := startSessionServer(t, cl.Member(0), ttl, 0)

	c1 := dial(t, addr)
	c1.mustOK("SESSION OPEN victim")
	f1 := fenceOf(t, c1.mustOK("LOCK acct/42 W"))
	_ = c1.conn.Close() // the client process dies mid-hold
	died := time.Now()

	// The second client's LOCK parks in the admission queue and is
	// granted the moment the sweeper reaps the dead lease.
	c2 := dial(t, addr)
	reply := c2.cmd("LOCK acct/42 W")
	waited := time.Since(died)
	if !strings.HasPrefix(reply, "OK") {
		t.Fatalf("post-reap lock: %q", reply)
	}
	if waited > 2*ttl {
		t.Fatalf("reap took %v, want within 2×TTL = %v", waited, 2*ttl)
	}
	f2 := fenceOf(t, reply)
	if !f1.Less(f2) {
		t.Fatalf("fence did not advance across the reap: %s then %s", f1, f2)
	}
	if got := reg.Counter(metrics.MetricSessionsExpired, "", nil).Value(); got != 1 {
		t.Fatalf("sessions expired = %d, want 1", got)
	}
	if got := reg.Counter(metrics.MetricSessionLocksReaped, "", nil).Value(); got != 1 {
		t.Fatalf("locks reaped = %d, want 1", got)
	}
	c2.mustOK("UNLOCK acct/42")
}

// TestSessionExpiredReply: commands on a connection whose named session
// was reaped answer ERR session expired once, then the connection works
// again as a fresh anonymous session.
func TestSessionExpiredReply(t *testing.T) {
	cl, err := hierlock.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const ttl = 150 * time.Millisecond
	addr, _ := startSessionServer(t, cl.Member(0), ttl, 0)

	c := dial(t, addr)
	c.mustOK("SESSION OPEN brief")
	// Go silent past the lease: the attached connection stops touching.
	time.Sleep(3 * ttl)
	if resp := c.cmd("HELD"); !strings.HasPrefix(resp, "ERR session expired") {
		t.Fatalf("command on expired session: %q", resp)
	}
	// The connection fell back to anonymous and is fully usable.
	c.mustOK("LOCK x W")
	c.mustOK("UNLOCK x")
}

// TestAdmissionBusyProtocol: the -max-waiters cap surfaces as ERR busy.
func TestAdmissionBusyProtocol(t *testing.T) {
	cl, err := hierlock.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addr, reg := startSessionServer(t, cl.Member(0), time.Minute, 1)

	holder := dial(t, addr)
	holder.mustOK("LOCK hot W")
	waiter := dial(t, addr)
	blocked := make(chan string, 1)
	go func() { blocked <- waiter.cmd("LOCK hot W") }()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter(metrics.MetricAdmissionEnqueued, "", nil).Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	over := dial(t, addr)
	if resp := over.cmd("LOCK hot W"); !strings.HasPrefix(resp, "ERR busy") {
		t.Fatalf("over-cap lock: %q", resp)
	}
	holder.mustOK("UNLOCK hot")
	if resp := <-blocked; !strings.HasPrefix(resp, "OK") {
		t.Fatalf("queued waiter: %q", resp)
	}
}
