package lockserver_test

import (
	"context"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hierlock"
	"hierlock/internal/audit"
	"hierlock/internal/lockserver"
	"hierlock/internal/metrics"
	"hierlock/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("golden mismatch for %s:\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

// checkExposition asserts Prometheus text-format invariants: one HELP
// and one TYPE line per family before its samples, and no duplicate
// series.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	typ := make(map[string]string)
	helpCount := make(map[string]int)
	series := make(map[string]bool)
	for _, line := range strings.Split(text, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			helpCount[strings.Fields(line)[2]]++
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if _, dup := typ[f[2]]; dup {
				t.Errorf("duplicate TYPE for %s", f[2])
			}
			typ[f[2]] = f[3]
		case strings.HasPrefix(line, "#"):
			t.Errorf("unexpected comment: %q", line)
		default:
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("malformed sample: %q", line)
			}
			id := line[:sp]
			if series[id] {
				t.Errorf("duplicate series: %q", id)
			}
			series[id] = true
			name := id
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			base := name
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, sfx) && typ[strings.TrimSuffix(name, sfx)] == "histogram" {
					base = strings.TrimSuffix(name, sfx)
				}
			}
			if typ[base] == "" || helpCount[base] == 0 {
				t.Errorf("sample %q lacks HELP/TYPE", line)
			}
		}
	}
	for name, n := range helpCount {
		if n != 1 {
			t.Errorf("family %s has %d HELP lines", name, n)
		}
	}
}

// TestStatsGolden pins the /stats document shape. A single-node cluster
// acquiring locally sends zero protocol messages, so after zeroing the
// two wall-clock latency fields the document is fully deterministic.
func TestStatsGolden(t *testing.T) {
	cl, err := hierlock.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m := cl.Member(0)
	l, err := m.Lock(context.Background(), "dbg", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Unlock()

	srv := lockserver.New(m)
	rec := httptest.NewRecorder()
	srv.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != 200 {
		t.Fatalf("stats: %d", rec.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("stats json: %v\n%s", err, rec.Body.String())
	}
	for _, volatile := range []string{"mean_acquire_ms", "p99_acquire_ms"} {
		if _, ok := doc[volatile]; !ok {
			t.Fatalf("stats lost the %s field:\n%s", volatile, rec.Body.String())
		}
		doc[volatile] = 0
	}
	for _, section := range []string{"peer_health", "link", "messages_sent"} {
		if _, ok := doc[section]; !ok {
			t.Fatalf("stats lost the %s section:\n%s", section, rec.Body.String())
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "stats.golden", append(out, '\n'))
}

// TestMetricsGolden pins the /metrics exposition byte-for-byte against a
// registry with known contents.
func TestMetricsGolden(t *testing.T) {
	cl, err := hierlock.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv := lockserver.New(cl.Member(0))

	reg := metrics.NewRegistry()
	reg.Counter(metrics.MetricMessagesTotal, "Protocol messages sent, by kind.",
		metrics.Labels{"kind": "request"}).Add(4)
	reg.Counter(metrics.MetricMessagesTotal, "Protocol messages sent, by kind.",
		metrics.Labels{"kind": "token"}).Add(2)
	reg.Gauge(metrics.MetricLockQueueDepth, "Locally queued requests per lock.",
		metrics.Labels{"lock": "fares/row17"}).Set(3)
	h := reg.Histogram(metrics.MetricRequestLatency,
		"Issue-to-grant lock request latency in seconds.", []float64{0.1, 0.5, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2)
	reg.Collect(metrics.MetricTransportQueueLen, "Per-peer outbound queue occupancy.",
		"gauge", func(emit func(metrics.Labels, float64)) {
			emit(metrics.Labels{"peer": "1"}, 5)
		})
	srv.Registry = reg

	rec := httptest.NewRecorder()
	srv.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type: %q", ct)
	}
	checkExposition(t, rec.Body.String())
	golden(t, "metrics.golden", rec.Body.Bytes())
}

// TestMetricsLive scrapes a member with real telemetry attached and
// checks the families the acceptance criteria require are present and
// the exposition stays duplicate-free.
func TestMetricsLive(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m := cl.Member(1)
	reg := metrics.NewRegistry()
	m.SetTelemetry(hierlock.Telemetry{Registry: reg, NetLatencyBase: 10 * time.Millisecond})

	l, err := m.Lock(context.Background(), "live", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Unlock()

	srv := lockserver.New(m)
	srv.Registry = reg
	rec := httptest.NewRecorder()
	srv.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics: %d", rec.Code)
	}
	text := rec.Body.String()
	checkExposition(t, text)
	for _, want := range []string{
		metrics.MetricMessagesTotal + `{kind="request"}`,
		metrics.MetricRequestsTotal + " 1",
		metrics.MetricAcquiresTotal + " 1",
		metrics.MetricRequestLatency + "_bucket",
		metrics.MetricRequestLatencyFactor + "_count 1",
		metrics.MetricLockQueueDepth + `{lock="live"}`,
		metrics.MetricLockCopyset + `{lock="live"}`,
		metrics.MetricLockFrozen + `{lock="live"}`,
		metrics.MetricTokenHeld + `{lock="live"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("live exposition missing %q", want)
		}
	}
}

func TestMetricsUnavailableWithoutRegistry(t *testing.T) {
	cl, err := hierlock.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv := lockserver.New(cl.Member(0))
	rec := httptest.NewRecorder()
	srv.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 503 {
		t.Fatalf("metrics without registry: %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 503 {
		t.Fatalf("trace without recorder: %d, want 503", rec.Code)
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	cl, err := hierlock.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m := cl.Member(0)
	rc := trace.New(64)
	m.SetTelemetry(hierlock.Telemetry{Trace: rc})

	l, err := m.Lock(context.Background(), "traced", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Unlock()

	srv := lockserver.New(m)
	srv.Trace = rc
	h := srv.DebugHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("trace: %d", rec.Code)
	}
	var dump trace.Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("trace json: %v\n%s", err, rec.Body.String())
	}
	if !dump.Enabled || len(dump.Entries) < 3 {
		t.Fatalf("dump: enabled=%v entries=%d", dump.Enabled, len(dump.Entries))
	}
	spans := trace.Assemble(dump.Entries)
	if len(spans) != 1 || !spans[0].Complete {
		t.Fatalf("spans from endpoint dump: %+v", spans)
	}

	// ?n= limits, ?enable=off pauses.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?n=1&enable=off", nil))
	var limited trace.Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &limited); err != nil {
		t.Fatal(err)
	}
	if len(limited.Entries) != 1 || limited.Enabled {
		t.Fatalf("limited dump: enabled=%v entries=%d", limited.Enabled, len(limited.Entries))
	}
	if rc.Enabled() {
		t.Fatal("enable=off must pause the recorder")
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?enable=on", nil))
	if !rc.Enabled() {
		t.Fatal("enable=on must resume the recorder")
	}
}

func TestPprofEndpoints(t *testing.T) {
	cl, err := hierlock.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h := lockserver.New(cl.Member(0)).DebugHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("pprof cmdline: %d", rec.Code)
	}
}

// TestDebugAuditEndpoint drives traffic through a member with the online
// auditor tapped into its trace stream, then reads /debug/audit: entries
// consumed, every invariant reported, zero violations.
func TestDebugAuditEndpoint(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m := cl.Member(1)
	rc := trace.New(256)
	auditor := audit.New(audit.Config{Root: 0})
	rc.SetTap(auditor.Record)
	m.SetTelemetry(hierlock.Telemetry{Trace: rc})

	l, err := m.Lock(context.Background(), "audited", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Unlock()

	srv := lockserver.New(m)
	srv.Audit = auditor
	rec := httptest.NewRecorder()
	srv.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/audit", nil))
	if rec.Code != 200 {
		t.Fatalf("audit: %d", rec.Code)
	}
	var rep audit.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("audit json: %v\n%s", err, rec.Body.String())
	}
	if rep.Entries == 0 {
		t.Fatal("auditor consumed no entries")
	}
	if rep.Total != 0 {
		t.Fatalf("violations on a healthy member: %+v", rep)
	}
	for _, inv := range audit.Invariants {
		if _, ok := rep.ByCheck[inv]; !ok {
			t.Errorf("report missing invariant %q", inv)
		}
	}

	// Without an auditor the endpoint declines.
	rec = httptest.NewRecorder()
	lockserver.New(m).DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/audit", nil))
	if rec.Code != 503 {
		t.Fatalf("audit without auditor: %d, want 503", rec.Code)
	}
}

// TestDebugTraceClusterMerge runs two members behind real HTTP debug
// listeners and asks one for a peer-merged dump: both node buffers must
// come back attributed, and a dead peer must land in Errors rather than
// failing the merge.
func TestDebugTraceClusterMerge(t *testing.T) {
	cl, err := hierlock.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	servers := make([]*lockserver.Server, 2)
	listeners := make([]*httptest.Server, 2)
	for i := 0; i < 2; i++ {
		m := cl.Member(i)
		rc := trace.New(256)
		m.SetTelemetry(hierlock.Telemetry{Trace: rc})
		servers[i] = lockserver.New(m)
		servers[i].Trace = rc
		listeners[i] = httptest.NewServer(servers[i].DebugHandler())
		defer listeners[i].Close()
	}

	// Node 1 acquires W: its request crosses to node 0 (the root), so the
	// operation's causal path spans both buffers.
	l, err := cl.Member(1).Lock(context.Background(), "merged", hierlock.W)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Unlock()

	peer := strings.TrimPrefix(listeners[0].URL, "http://")
	resp, err := listeners[1].Client().Get(listeners[1].URL + "/debug/trace?peers=" + peer + ",127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cd trace.ClusterDump
	if err := json.NewDecoder(resp.Body).Decode(&cd); err != nil {
		t.Fatal(err)
	}
	if len(cd.Nodes) != 2 {
		t.Fatalf("merged %d node buffers, want 2", len(cd.Nodes))
	}
	if cd.Nodes[0].Node != 1 || cd.Nodes[1].Node != 0 {
		t.Fatalf("dump attribution: self=%d peer=%d", cd.Nodes[0].Node, cd.Nodes[1].Node)
	}
	if len(cd.Errors) != 1 {
		t.Fatalf("dead peer not reported: %+v", cd.Errors)
	}

	paths := trace.AssembleCausal(cd.Nodes)
	var found bool
	for _, p := range paths {
		if p.Origin == 1 && p.Complete && len(p.Nodes) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no complete cross-node causal path for node 1; got %d paths", len(paths))
	}
}
