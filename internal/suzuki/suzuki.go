// Package suzuki implements the Suzuki–Kasami broadcast token algorithm
// for distributed mutual exclusion (ACM TOCS 3(4), 1985), the
// classic broadcast baseline of the paper's related-work discussion:
// every request is broadcast to all n−1 other nodes, so the message cost
// is Θ(n) per critical section — exactly the "limited scalability due to
// message overhead" the paper attributes to broadcast protocols, and the
// foil for its own ~3-message asymptote.
//
// Each node tracks RN[j], the highest request number seen from node j.
// The token carries LN[j], the request number last *served* for j, plus a
// FIFO queue of nodes with outstanding requests. The token holder, on
// release, enqueues every j with RN[j] == LN[j]+1 and passes the token to
// the queue head.
//
// Same conventions as the other engines: pure state machine, serialized
// calls, per-link FIFO delivery. (This algorithm actually tolerates
// reordering, but the uniform contract keeps harnesses shared.)
package suzuki

import (
	"errors"
	"fmt"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// Client-operation errors.
var (
	ErrHeld     = errors.New("suzuki: lock already held")
	ErrNotHeld  = errors.New("suzuki: lock not held")
	ErrPending  = errors.New("suzuki: request already pending")
	ErrProtocol = errors.New("suzuki: protocol violation")
)

// Engine is the per-node, per-lock Suzuki–Kasami state machine.
type Engine struct {
	self  proto.NodeID
	lock  proto.LockID
	n     int
	clock *proto.Clock

	rn []uint64 // highest request number seen per node

	hasToken   bool
	using      bool
	requesting bool
	ln         []uint64       // token state: last served request per node
	tq         []proto.NodeID // token state: waiting queue
}

// New constructs the engine for a cluster of n nodes (IDs 0..n-1).
// Node 0 starts with the token.
func New(self proto.NodeID, lock proto.LockID, n int, hasToken bool, clock *proto.Clock) *Engine {
	e := &Engine{
		self:     self,
		lock:     lock,
		n:        n,
		clock:    clock,
		rn:       make([]uint64, n),
		hasToken: hasToken,
	}
	if hasToken {
		e.ln = make([]uint64, n)
	}
	return e
}

// Self returns the node this engine runs on.
func (e *Engine) Self() proto.NodeID { return e.self }

// HasToken reports whether the token is at this node.
func (e *Engine) HasToken() bool { return e.hasToken }

// Held reports whether the node is inside its critical section.
func (e *Engine) Held() bool { return e.using }

// Requesting reports whether a client request is outstanding.
func (e *Engine) Requesting() bool { return e.requesting }

// String summarizes the engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("suzuki node %d lock %d: token=%v using=%v req=%v rn=%v",
		e.self, e.lock, e.hasToken, e.using, e.requesting, e.rn)
}

// Out carries messages and the acquisition event.
type Out struct {
	Msgs     []proto.Message
	Acquired bool
}

// Acquire requests the critical section. Unless the idle token is
// already local, the request is broadcast to every other node — the Θ(n)
// cost that motivates the paper's point-to-point design.
func (e *Engine) Acquire() (Out, error) {
	var out Out
	if e.using {
		return out, ErrHeld
	}
	if e.requesting {
		return out, ErrPending
	}
	if e.hasToken {
		e.using = true
		out.Acquired = true
		return out, nil
	}
	e.requesting = true
	e.rn[e.self]++
	seq := e.rn[e.self]
	for j := 0; j < e.n; j++ {
		if proto.NodeID(j) == e.self {
			continue
		}
		out.Msgs = append(out.Msgs, proto.Message{
			Kind: proto.KindRequest, Lock: e.lock,
			From: e.self, To: proto.NodeID(j), TS: e.clock.Tick(), Seq: seq,
		})
	}
	return out, nil
}

// Release leaves the critical section and forwards the token to the next
// outstanding requester, if any.
func (e *Engine) Release() (Out, error) {
	var out Out
	if !e.using {
		return out, ErrNotHeld
	}
	e.using = false
	e.ln[e.self] = e.rn[e.self]
	// Append every node with an unserved request that is not yet queued.
	queued := make(map[proto.NodeID]bool, len(e.tq))
	for _, j := range e.tq {
		queued[j] = true
	}
	for j := 0; j < e.n; j++ {
		id := proto.NodeID(j)
		if id != e.self && !queued[id] && e.rn[j] == e.ln[j]+1 {
			e.tq = append(e.tq, id)
		}
	}
	e.passToken(&out)
	return out, nil
}

// Handle processes one protocol message.
func (e *Engine) Handle(msg *proto.Message) (Out, error) {
	var out Out
	if msg.Lock != e.lock {
		return out, fmt.Errorf("%w: message for lock %d at engine for lock %d", ErrProtocol, msg.Lock, e.lock)
	}
	e.clock.Witness(msg.TS)
	switch msg.Kind {
	case proto.KindRequest:
		j := int(msg.From)
		if j < 0 || j >= e.n {
			return out, fmt.Errorf("%w: request from unknown node %d", ErrProtocol, msg.From)
		}
		if msg.Seq > e.rn[j] {
			e.rn[j] = msg.Seq
		}
		// An idle token holder serves an outstanding request immediately.
		if e.hasToken && !e.using && e.rn[j] == e.ln[j]+1 {
			e.tq = append(e.tq, msg.From)
			e.passToken(&out)
		}
		return out, nil
	case proto.KindToken:
		if !e.requesting {
			return out, fmt.Errorf("%w: token at node %d with no request", ErrProtocol, e.self)
		}
		e.hasToken = true
		e.ln = append([]uint64(nil), msg.Vec...)
		e.tq = e.tq[:0]
		for _, r := range msg.Queue {
			e.tq = append(e.tq, r.Origin)
		}
		e.requesting = false
		e.using = true
		out.Acquired = true
		return out, nil
	default:
		return out, fmt.Errorf("%w: unexpected message kind %v", ErrProtocol, msg.Kind)
	}
}

// passToken sends the token (LN array plus queue) to the queue head.
func (e *Engine) passToken(out *Out) {
	if !e.hasToken || e.using || len(e.tq) == 0 {
		return
	}
	head := e.tq[0]
	rest := e.tq[1:]
	queue := make([]proto.Request, 0, len(rest))
	for _, j := range rest {
		queue = append(queue, proto.Request{Origin: j})
	}
	e.hasToken = false
	out.Msgs = append(out.Msgs, proto.Message{
		Kind: proto.KindToken, Lock: e.lock,
		From: e.self, To: head, TS: e.clock.Tick(),
		Vec: append([]uint64(nil), e.ln...), Queue: queue,
	})
	e.ln = nil
	e.tq = nil
}

// Mode reports the held mode for mixed-protocol tooling (always
// exclusive).
func (e *Engine) Mode() modes.Mode {
	if e.using {
		return modes.W
	}
	return modes.None
}

// Clone returns a deep copy bound to the given clock (for exhaustive
// state-space exploration in tests).
func (e *Engine) Clone(clock *proto.Clock) *Engine {
	ne := *e
	ne.clock = clock
	ne.rn = append([]uint64(nil), e.rn...)
	ne.ln = append([]uint64(nil), e.ln...)
	ne.tq = append([]proto.NodeID(nil), e.tq...)
	return &ne
}

// Fingerprint canonically encodes the engine state for model-checking
// deduplication.
func (e *Engine) Fingerprint() string {
	return fmt.Sprintf("t%v u%v r%v rn%v ln%v q%v", e.hasToken, e.using, e.requesting, e.rn, e.ln, e.tq)
}
