package suzuki_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hierlock/internal/proto"
	"hierlock/internal/suzuki"
)

const testLock proto.LockID = 1

type harness struct {
	t       *testing.T
	n       int
	engines map[proto.NodeID]*suzuki.Engine
	queues  map[[2]proto.NodeID][]proto.Message
	counts  map[proto.Kind]int
	inCS    map[proto.NodeID]bool
	waiting map[proto.NodeID]bool
}

func newHarness(t *testing.T, n int) *harness {
	h := &harness{
		t:       t,
		n:       n,
		engines: make(map[proto.NodeID]*suzuki.Engine, n),
		queues:  make(map[[2]proto.NodeID][]proto.Message),
		counts:  make(map[proto.Kind]int),
		inCS:    make(map[proto.NodeID]bool),
		waiting: make(map[proto.NodeID]bool),
	}
	for i := 0; i < n; i++ {
		id := proto.NodeID(i)
		h.engines[id] = suzuki.New(id, testLock, n, i == 0, &proto.Clock{})
	}
	return h
}

func (h *harness) absorb(from proto.NodeID, out suzuki.Out) {
	h.t.Helper()
	for _, m := range out.Msgs {
		h.counts[m.Kind]++
		key := [2]proto.NodeID{m.From, m.To}
		h.queues[key] = append(h.queues[key], m)
	}
	if out.Acquired {
		if !h.waiting[from] {
			h.t.Fatalf("node %d acquired without waiting", from)
		}
		delete(h.waiting, from)
		h.inCS[from] = true
		if len(h.inCS) > 1 {
			h.t.Fatalf("MUTUAL EXCLUSION VIOLATED: %v in CS", h.inCS)
		}
	}
}

func (h *harness) acquire(i int) {
	h.t.Helper()
	id := proto.NodeID(i)
	h.waiting[id] = true
	out, err := h.engines[id].Acquire()
	if err != nil {
		h.t.Fatalf("node %d: Acquire: %v", i, err)
	}
	h.absorb(id, out)
}

func (h *harness) release(i int) {
	h.t.Helper()
	id := proto.NodeID(i)
	delete(h.inCS, id)
	out, err := h.engines[id].Release()
	if err != nil {
		h.t.Fatalf("node %d: Release: %v", i, err)
	}
	h.absorb(id, out)
}

func (h *harness) drain(rng *rand.Rand) {
	h.t.Helper()
	for steps := 0; ; steps++ {
		if steps > 200000 {
			h.t.Fatal("network did not quiesce")
		}
		var pairs [][2]proto.NodeID
		for k, q := range h.queues {
			if len(q) > 0 {
				pairs = append(pairs, k)
			}
		}
		if len(pairs) == 0 {
			return
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
		idx := 0
		if rng != nil {
			idx = rng.Intn(len(pairs))
		}
		k := pairs[idx]
		msg := h.queues[k][0]
		h.queues[k] = h.queues[k][1:]
		out, err := h.engines[msg.To].Handle(&msg)
		if err != nil {
			h.t.Fatalf("node %d: Handle: %v", msg.To, err)
		}
		h.absorb(msg.To, out)
	}
}

func (h *harness) tokens() int {
	n := 0
	for _, e := range h.engines {
		if e.HasToken() {
			n++
		}
	}
	return n
}

func TestIdleTokenLocalAcquire(t *testing.T) {
	h := newHarness(t, 5)
	h.acquire(0)
	if !h.engines[0].Held() || len(h.queues) != 0 {
		t.Fatal("token holder should enter message-free")
	}
	h.release(0)
}

func TestBroadcastCost(t *testing.T) {
	h := newHarness(t, 10)
	h.acquire(3)
	h.drain(nil)
	if !h.engines[3].Held() {
		t.Fatal("node 3 should hold")
	}
	// The defining property: one request costs n-1 broadcast messages
	// plus one token transfer.
	if h.counts[proto.KindRequest] != 9 {
		t.Fatalf("requests = %d, want 9 (broadcast)", h.counts[proto.KindRequest])
	}
	if h.counts[proto.KindToken] != 1 {
		t.Fatalf("tokens = %d", h.counts[proto.KindToken])
	}
	h.release(3)
}

func TestSequentialFairness(t *testing.T) {
	h := newHarness(t, 4)
	h.acquire(0)
	h.acquire(1)
	h.acquire(2)
	h.acquire(3)
	h.drain(nil)
	h.release(0)
	// Everyone gets exactly one turn; drains between releases.
	served := map[proto.NodeID]bool{0: true}
	for turns := 0; turns < 3; turns++ {
		h.drain(nil)
		for id, e := range h.engines {
			if e.Held() {
				if served[id] {
					t.Fatalf("node %d served twice", id)
				}
				served[id] = true
				h.release(int(id))
			}
		}
	}
	if len(served) != 4 {
		t.Fatalf("served = %v", served)
	}
	if h.tokens() != 1 {
		t.Fatalf("tokens = %d", h.tokens())
	}
}

func TestStaleRequestIgnored(t *testing.T) {
	h := newHarness(t, 3)
	// Deliver a request with an old sequence number: RN must not regress
	// and no token moves.
	e := h.engines[0]
	if _, err := e.Handle(&proto.Message{Kind: proto.KindRequest, Lock: testLock, From: 1, To: 0, Seq: 5}); err != nil {
		t.Fatal(err)
	}
	out, err := e.Handle(&proto.Message{Kind: proto.KindRequest, Lock: testLock, From: 1, To: 0, Seq: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Seq 5 puts RN[1]=5; LN[1]=0 so 5 != 1 → no pass; stale 3 likewise.
	if len(out.Msgs) != 0 {
		t.Fatalf("stale request moved the token: %v", out.Msgs)
	}
}

func TestErrors(t *testing.T) {
	h := newHarness(t, 3)
	e := h.engines[0]
	if _, err := e.Release(); err == nil {
		t.Error("release while not held must fail")
	}
	h.acquire(0)
	if _, err := e.Acquire(); err == nil {
		t.Error("double acquire must fail")
	}
	h.release(0)
	h.acquire(1)
	if _, err := h.engines[1].Acquire(); err == nil {
		t.Error("acquire while requesting must fail")
	}
	if _, err := e.Handle(&proto.Message{Kind: proto.KindToken, Lock: testLock}); err == nil {
		t.Error("unsolicited token must fail")
	}
	if _, err := e.Handle(&proto.Message{Kind: proto.KindFreeze, Lock: testLock}); err == nil {
		t.Error("unexpected kind must fail")
	}
	if _, err := e.Handle(&proto.Message{Kind: proto.KindRequest, Lock: testLock, From: 99}); err == nil {
		t.Error("unknown origin must fail")
	}
	if _, err := e.Handle(&proto.Message{Kind: proto.KindRequest, Lock: 7}); err == nil {
		t.Error("wrong lock must fail")
	}
	h.drain(nil)
	h.release(1)
	if h.engines[1].String() == "" {
		t.Error("String must render")
	}
}

func TestFuzz(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 3 + rng.Intn(10)
			h := newHarness(t, n)
			for step := 0; step < 2500; step++ {
				var pairs [][2]proto.NodeID
				for k, q := range h.queues {
					if len(q) > 0 {
						pairs = append(pairs, k)
					}
				}
				if len(pairs) > 0 && rng.Intn(100) < 60 {
					k := pairs[rng.Intn(len(pairs))]
					msg := h.queues[k][0]
					h.queues[k] = h.queues[k][1:]
					out, err := h.engines[msg.To].Handle(&msg)
					if err != nil {
						t.Fatalf("handle: %v", err)
					}
					h.absorb(msg.To, out)
					continue
				}
				id := proto.NodeID(rng.Intn(n))
				e := h.engines[id]
				switch {
				case e.Held() && rng.Intn(100) < 70:
					h.release(int(id))
				case !e.Held() && !e.Requesting() && rng.Intn(100) < 60:
					h.acquire(int(id))
				}
			}
			for round := 0; round < 10*n+100; round++ {
				h.drain(rng)
				done := true
				for id, e := range h.engines {
					if e.Held() {
						h.release(int(id))
						done = false
					}
				}
				if done && len(h.waiting) == 0 {
					break
				}
			}
			if len(h.waiting) > 0 {
				for _, e := range h.engines {
					t.Logf("%v", e)
				}
				t.Fatalf("starved: %v", h.waiting)
			}
			if h.tokens() != 1 {
				t.Fatalf("tokens = %d", h.tokens())
			}
		})
	}
}
