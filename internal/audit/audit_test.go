package audit

import (
	"strings"
	"testing"
	"time"

	"hierlock/internal/metrics"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
	"hierlock/internal/trace"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func send(kind proto.Kind, lock proto.LockID, mode modes.Mode, from, to proto.NodeID) trace.Entry {
	return trace.Entry{Op: trace.OpSend, Node: from, Kind: kind, Lock: lock, Mode: mode, From: from, To: to}
}

func deliver(kind proto.Kind, lock proto.LockID, mode modes.Mode, from, to proto.NodeID) trace.Entry {
	return trace.Entry{Op: trace.OpDeliver, Node: to, Kind: kind, Lock: lock, Mode: mode, From: from, To: to}
}

func granted(lock proto.LockID, mode modes.Mode, node proto.NodeID) trace.Entry {
	return trace.Entry{Op: trace.OpGranted, Node: node, Lock: lock, Mode: mode}
}

func release(lock proto.LockID, mode modes.Mode, node proto.NodeID) trace.Entry {
	return trace.Entry{Op: trace.OpRelease, Node: node, Lock: lock, Mode: mode}
}

func feed(a *Auditor, entries ...trace.Entry) {
	for _, e := range entries {
		a.Record(e)
	}
}

// TestCleanStream replays a healthy protocol exchange — token transfer,
// copy grant, compatible concurrent readers, paired release — and
// expects zero violations.
func TestCleanStream(t *testing.T) {
	a := New(Config{Root: 0})
	feed(a,
		// Node 2 requests W; token travels 0 → 2.
		send(proto.KindRequest, 7, modes.W, 2, 0),
		deliver(proto.KindRequest, 7, modes.W, 2, 0),
		send(proto.KindToken, 7, modes.W, 0, 2),
		deliver(proto.KindToken, 7, modes.W, 0, 2),
		granted(7, modes.W, 2),
		release(7, modes.W, 2),
		// Node 1 requests R; holder 2 copy-grants; node 0 reads too.
		send(proto.KindRequest, 7, modes.R, 1, 2),
		deliver(proto.KindRequest, 7, modes.R, 1, 2),
		granted(7, modes.R, 2),
		send(proto.KindGrant, 7, modes.R, 2, 1),
		deliver(proto.KindGrant, 7, modes.R, 2, 1),
		granted(7, modes.R, 1),
		// Node 1 releases to its granter.
		release(7, modes.R, 1),
		send(proto.KindRelease, 7, modes.R, 1, 2),
		deliver(proto.KindRelease, 7, modes.R, 1, 2),
	)
	if n := a.Violations(); n != 0 {
		t.Fatalf("clean stream flagged %d violations: %+v", n, a.Snapshot().Violations)
	}
	rep := a.Snapshot()
	if rep.Entries != 15 {
		t.Errorf("entries = %d, want 15", rep.Entries)
	}
	for _, inv := range Invariants {
		if _, ok := rep.ByCheck[inv]; !ok {
			t.Errorf("report missing invariant %q", inv)
		}
	}
}

func TestMutualExclusionViolation(t *testing.T) {
	a := New(Config{Root: 0})
	feed(a,
		granted(1, modes.W, 0),
		granted(1, modes.R, 1), // R vs W: incompatible
	)
	rep := a.Snapshot()
	if rep.ByCheck[InvMutualExclusion] != 1 {
		t.Fatalf("mutual_exclusion = %d, want 1; %+v", rep.ByCheck[InvMutualExclusion], rep)
	}
	if !strings.Contains(rep.Violations[0].Detail, "holds W") {
		t.Errorf("detail = %q", rep.Violations[0].Detail)
	}
	// Compatible pair and re-grant on the same node must not flag.
	b := New(Config{Root: 0})
	feed(b,
		granted(1, modes.IR, 0),
		granted(1, modes.IW, 1), // IR vs IW: compatible
		granted(2, modes.R, 2),
		granted(2, modes.W, 2), // same-node upgrade, no other holders
	)
	if n := b.Snapshot().ByCheck[InvMutualExclusion]; n != 0 {
		t.Errorf("compatible grants flagged %d", n)
	}
}

func TestTokenConservationViolations(t *testing.T) {
	// Send by non-holder: root 0 holds the token, node 1 ships one anyway.
	a := New(Config{Root: 0})
	feed(a, send(proto.KindToken, 3, modes.W, 1, 2))
	if n := a.Snapshot().ByCheck[InvTokenConservation]; n != 1 {
		t.Fatalf("non-holder send: %d violations, want 1", n)
	}

	// Duplicate: a second token sent while the first is in flight.
	b := New(Config{Root: 0})
	feed(b,
		send(proto.KindToken, 3, modes.W, 0, 1),
		send(proto.KindToken, 3, modes.W, 0, 2),
	)
	if n := b.Snapshot().ByCheck[InvTokenConservation]; n != 1 {
		t.Fatalf("duplicate send: %d violations, want 1", n)
	}

	// Misdelivery: in flight 0→1 but lands on 2.
	c := New(Config{Root: 0})
	feed(c,
		send(proto.KindToken, 3, modes.W, 0, 1),
		deliver(proto.KindToken, 3, modes.W, 0, 2),
	)
	if n := c.Snapshot().ByCheck[InvTokenConservation]; n != 1 {
		t.Fatalf("misdelivery: %d violations, want 1", n)
	}

	// Unknown root: first observation seeds the holder, no false alarms.
	d := New(Config{Root: proto.NoNode})
	feed(d,
		send(proto.KindToken, 3, modes.W, 4, 5),
		deliver(proto.KindToken, 3, modes.W, 4, 5),
		send(proto.KindToken, 3, modes.W, 5, 6),
	)
	if n := d.Violations(); n != 0 {
		t.Fatalf("unknown-root stream flagged %d", n)
	}
}

// TestTokenConservationPartialStream replays what a single node's local
// trace ring sees (the lockd per-node auditor): node 0 ships the token
// to node 2 and never observes the remote delivery, then the token
// comes back from node 1 after unobserved hops 2→1→0. That is a
// healthy run, not a misdelivery — only a delivery from the *same*
// sender to the wrong addressee proves misrouting.
func TestTokenConservationPartialStream(t *testing.T) {
	a := New(Config{Root: 0})
	feed(a,
		send(proto.KindToken, 3, modes.W, 0, 2),
		// 2→1 and 1's deliver happen off-node; next local event is the
		// token landing back home from node 1.
		deliver(proto.KindToken, 3, modes.W, 1, 0),
	)
	if n := a.Violations(); n != 0 {
		t.Fatalf("partial stream flagged %d violations: %+v", n, a.Snapshot().Violations)
	}
	// The ledger must have caught up: node 0 holds the token again and
	// may send it out without tripping the duplicate/non-holder checks.
	feed(a, send(proto.KindToken, 3, modes.W, 0, 1))
	if n := a.Violations(); n != 0 {
		t.Fatalf("re-send after catch-up flagged %d violations: %+v", n, a.Snapshot().Violations)
	}
}

func TestCopysetReleaseViolation(t *testing.T) {
	a := New(Config{Root: 0})
	feed(a,
		// Node 2 was copy-granted by node 1 — releasing to 1 or root 0 is fine.
		deliver(proto.KindGrant, 9, modes.R, 1, 2),
		send(proto.KindRelease, 9, modes.R, 2, 1),
		send(proto.KindRelease, 9, modes.R, 2, 0),
		// Releasing to node 3, which never granted it, is not.
		send(proto.KindRelease, 9, modes.R, 2, 3),
	)
	rep := a.Snapshot()
	if rep.ByCheck[InvCopysetRelease] != 1 {
		t.Fatalf("copyset_release = %d, want 1; %+v", rep.ByCheck[InvCopysetRelease], rep.Violations)
	}
	if !strings.Contains(rep.Violations[0].Detail, "never granted") {
		t.Errorf("detail = %q", rep.Violations[0].Detail)
	}
}

func TestFreezeFIFOViolation(t *testing.T) {
	a := New(Config{Root: 0})
	feed(a,
		// Two sends on link 0→1, delivered out of order.
		send(proto.KindFreeze, 5, modes.W, 0, 1),
		send(proto.KindGrant, 5, modes.R, 0, 1),
		deliver(proto.KindGrant, 5, modes.R, 0, 1),
		deliver(proto.KindFreeze, 5, modes.W, 0, 1),
	)
	rep := a.Snapshot()
	// Each swapped delivery mismatches the queued send signature.
	if rep.ByCheck[InvFreezeFIFO] != 2 {
		t.Fatalf("freeze_fifo = %d, want 2; %+v", rep.ByCheck[InvFreezeFIFO], rep.Violations)
	}

	// Delivery with no observed send (live inbound link): skipped.
	b := New(Config{Root: 0})
	feed(b, deliver(proto.KindFreeze, 5, modes.W, 3, 0))
	if n := b.Snapshot().ByCheck[InvFreezeFIFO]; n != 0 {
		t.Errorf("unobserved link flagged %d", n)
	}
}

// TestFIFOBacklogGoesLossy floods one link with sends and checks the
// auditor degrades to lossy instead of growing without bound or lying.
func TestFIFOBacklogGoesLossy(t *testing.T) {
	a := New(Config{Root: 0, MaxLinkBacklog: 4})
	for i := 0; i < 10; i++ {
		a.Record(send(proto.KindRequest, 1, modes.R, 0, 1))
	}
	// Out-of-order delivery on the lossy link must not flag.
	a.Record(deliver(proto.KindToken, 1, modes.W, 0, 1))
	if n := a.Snapshot().ByCheck[InvFreezeFIFO]; n != 0 {
		t.Fatalf("lossy link flagged %d", n)
	}
}

// TestMetricsExport attaches a registry and checks the violation and
// entry counters, including pre-registered zeros for healthy invariants.
func TestMetricsExport(t *testing.T) {
	reg := metrics.NewRegistry()
	a := New(Config{Registry: reg, Root: 0})
	feed(a,
		granted(1, modes.W, 0),
		granted(1, modes.W, 1),
	)
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `hierlock_audit_violations_total{invariant="mutual_exclusion"} 1`) {
		t.Errorf("missing mutual_exclusion=1:\n%s", out)
	}
	if !strings.Contains(out, `hierlock_audit_violations_total{invariant="token_conservation"} 0`) {
		t.Errorf("healthy invariant not exported at zero:\n%s", out)
	}
	if !strings.Contains(out, "hierlock_audit_entries_total 2") {
		t.Errorf("missing entries counter:\n%s", out)
	}
}

// TestTapIntegration installs the auditor as a recorder tap and checks
// entries flow through even when the ring is paused.
func TestTapIntegration(t *testing.T) {
	rec := trace.New(8)
	a := New(Config{Root: 0})
	rec.SetTap(a.Record)
	rec.SetEnabled(false) // tap fires regardless of ring admission
	rec.Record(granted(1, modes.W, 0))
	rec.Record(granted(1, modes.W, 2))
	if n := a.Violations(); n != 1 {
		t.Fatalf("tap-fed violations = %d, want 1", n)
	}
	rec.SetTap(nil)
	rec.Record(granted(1, modes.W, 3))
	if n := a.Violations(); n != 1 {
		t.Fatalf("after tap removal violations = %d, want 1", n)
	}
}

// TestViolationListBounded checks MaxViolations caps the retained list
// while the counters keep counting.
func TestViolationListBounded(t *testing.T) {
	a := New(Config{Root: 0, MaxViolations: 2})
	for i := 0; i < 5; i++ {
		a.Record(send(proto.KindToken, proto.LockID(100), modes.W, 3, 4))
		a.Record(deliver(proto.KindToken, proto.LockID(100), modes.W, 3, 4))
		// Every send after the first is by the (now correct) holder... use
		// distinct locks to force fresh non-holder sends.
		a.Record(send(proto.KindToken, proto.LockID(200+i), modes.W, 9, 4))
	}
	rep := a.Snapshot()
	if len(rep.Violations) != 2 {
		t.Errorf("retained = %d, want 2", len(rep.Violations))
	}
	if rep.ByCheck[InvTokenConservation] < 5 {
		t.Errorf("counter = %d, want >= 5", rep.ByCheck[InvTokenConservation])
	}
}

// TestNilAuditor checks the nil receiver is inert (servers without an
// auditor attached pass nil around freely).
func TestNilAuditor(t *testing.T) {
	var a *Auditor
	a.Record(granted(1, modes.W, 0))
	if a.Violations() != 0 {
		t.Fatal("nil auditor")
	}
	rep := a.Snapshot()
	if len(rep.ByCheck) != len(Invariants) {
		t.Fatalf("nil snapshot: %+v", rep)
	}
}
