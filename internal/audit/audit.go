// Package audit is an online protocol invariant checker. An Auditor
// consumes the event/trace stream (install it as a trace.Recorder tap,
// or feed it entries directly) and continuously verifies the safety
// properties the hierarchical locking protocol promises:
//
//   - mutual_exclusion — all concurrently granted modes on one lock are
//     pairwise compatible under Tab. 1(a) of Desai & Mueller.
//   - token_conservation — each lock has at most one token per recovery
//     epoch: only the holder may send it, and it is never duplicated
//     while in flight. Epoch 0 is the initial world (the configured root
//     holds every token); each regeneration round opens a fresh epoch
//     whose token springs into existence at the recovered root announced
//     by the round's Recovered broadcast. Stale pre-crash traffic is
//     checked against its own epoch's state, never the new world's.
//   - copyset_release — a node only sends a release to a plausible
//     parent: the initial tree root, a node that previously granted it a
//     copy or the token, or the origin of a request it forwarded (path
//     reversal repoints the parent at that origin, Rule 3.2).
//   - freeze_fifo — freeze (and all other) messages on an ordered link
//     are delivered in send order with the same (kind, lock, mode)
//     signature, the FIFO assumption Rule 6's frozen-set push relies on.
//
// The auditor is stream-tolerant: a single live node only observes its
// own sends and deliveries, so every check fires only on evidence of a
// definite violation, never on gaps. Merged cluster-wide streams (the
// simulator, or /debug/trace peer merges) get the full-strength checks.
//
// Violations increment hierlock_audit_violations_total{invariant=...} in
// the attached metrics registry and are retained (bounded) for the
// /debug/audit endpoint.
package audit

import (
	"fmt"
	"sync"
	"time"

	"hierlock/internal/metrics"
	"hierlock/internal/modes"
	"hierlock/internal/proto"
	"hierlock/internal/trace"
)

// Invariant names (the metric's label values and the Report keys).
const (
	InvMutualExclusion   = "mutual_exclusion"
	InvTokenConservation = "token_conservation"
	InvCopysetRelease    = "copyset_release"
	InvFreezeFIFO        = "freeze_fifo"
)

// Invariants lists all invariant names, in reporting order.
var Invariants = []string{
	InvMutualExclusion, InvTokenConservation, InvCopysetRelease, InvFreezeFIFO,
}

// Violation is one detected invariant breach.
type Violation struct {
	Invariant string        `json:"invariant"`
	Lock      proto.LockID  `json:"lock"`
	At        time.Duration `json:"at_us"`
	Detail    string        `json:"detail"`
}

// Config parameterizes an Auditor.
type Config struct {
	// Registry receives hierlock_audit_* counters (nil: metrics off).
	Registry *metrics.Registry
	// Root is the node that initially holds every lock's token (the tree
	// root), used to seed token tracking and to accept releases sent to
	// the initial parent. Defaults to node 0; set to proto.NoNode if the
	// initial root is unknown (token tracking then starts on the first
	// observed token event).
	Root proto.NodeID
	// MaxViolations bounds the retained violation list (default 256).
	// The counters keep counting past the bound.
	MaxViolations int
	// MaxLinkBacklog bounds the per-link send memory of the FIFO check
	// (default 4096). A link whose backlog overflows (e.g. a live node
	// that sees its own sends but never the peer's deliveries) stops
	// being checked rather than reporting false violations.
	MaxLinkBacklog int
	// OnViolation, when non-nil, observes every flagged violation
	// (including ones past MaxViolations). Called with the auditor's
	// internal mutex held, on the recording goroutine — it must not block
	// or call back into the Auditor. Hosts use it to trigger a flight-
	// recorder dump the moment an invariant breaks.
	OnViolation func(Violation)
}

type linkKey struct {
	from, to proto.NodeID
}

type msgSig struct {
	kind proto.Kind
	lock proto.LockID
	mode modes.Mode
}

// tokenState tracks one (lock, epoch)'s token location.
type tokenState struct {
	holder   proto.NodeID // current holder, or NoNode when in flight/unknown
	inFlight bool
	from, to proto.NodeID // transfer endpoints while in flight
	known    bool         // false until the first token observation
}

type lockState struct {
	// holders: node → granted mode (mutual exclusion check).
	holders map[proto.NodeID]modes.Mode
	// parents: node → set of plausible release targets — nodes that
	// granted it a copy or the token, plus origins of requests it
	// forwarded (path reversal makes the origin the new parent) and the
	// regenerated root of any recovery round it was reseeded by.
	parents map[proto.NodeID]map[proto.NodeID]bool
	// tokens: recovery epoch → that epoch's token state. Epoch 0 is
	// seeded at the configured root; higher epochs start unknown and are
	// learned from the first Recovered broadcast (or token event) seen
	// at that epoch.
	tokens map[uint32]*tokenState
}

type linkState struct {
	sends []msgSig
	lossy bool // backlog overflowed; strict matching abandoned
}

// Auditor consumes trace entries and checks protocol invariants. Safe
// for concurrent use; a nil Auditor ignores everything.
type Auditor struct {
	cfg Config

	mu         sync.Mutex
	locks      map[proto.LockID]*lockState
	links      map[linkKey]*linkState
	entries    uint64
	counts     map[string]uint64
	violations []Violation

	metricEntries *metrics.Counter
	metricViol    map[string]*metrics.Counter
}

// New creates an auditor. Counters for every invariant are registered
// immediately so hierlock_audit_violations_total exposes zeros (the
// healthy state is visible, not absent).
func New(cfg Config) *Auditor {
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 256
	}
	if cfg.MaxLinkBacklog <= 0 {
		cfg.MaxLinkBacklog = 4096
	}
	a := &Auditor{
		cfg:        cfg,
		locks:      make(map[proto.LockID]*lockState),
		links:      make(map[linkKey]*linkState),
		counts:     make(map[string]uint64),
		metricViol: make(map[string]*metrics.Counter),
	}
	if cfg.Registry != nil {
		a.metricEntries = cfg.Registry.Counter(metrics.MetricAuditEntries,
			"Trace entries consumed by the protocol auditor.", nil)
		for _, inv := range Invariants {
			a.metricViol[inv] = cfg.Registry.Counter(metrics.MetricAuditViolations,
				"Protocol invariant violations flagged by the online auditor.",
				metrics.Labels{"invariant": inv})
		}
	}
	return a
}

// Record consumes one trace entry. It has the trace.Recorder tap
// signature: rec.SetTap(a.Record).
func (a *Auditor) Record(e trace.Entry) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.entries++
	a.metricEntries.Inc()
	switch e.Op {
	case trace.OpGranted:
		a.onGranted(e)
	case trace.OpRelease:
		a.onReleaseOp(e)
	case trace.OpSend:
		a.onSend(e)
	case trace.OpDeliver:
		a.onDeliver(e)
	}
}

func (a *Auditor) lock(id proto.LockID) *lockState {
	ls := a.locks[id]
	if ls == nil {
		ls = &lockState{
			holders: make(map[proto.NodeID]modes.Mode),
			parents: make(map[proto.NodeID]map[proto.NodeID]bool),
			tokens:  make(map[uint32]*tokenState),
		}
		if a.cfg.Root != proto.NoNode {
			ls.tokens[0] = &tokenState{holder: a.cfg.Root, known: true}
		}
		a.locks[id] = ls
	}
	return ls
}

// token returns (creating) the token state for one epoch of a lock.
func (ls *lockState) token(epoch uint32) *tokenState {
	t := ls.tokens[epoch]
	if t == nil {
		t = &tokenState{holder: proto.NoNode}
		ls.tokens[epoch] = t
	}
	return t
}

func (a *Auditor) flag(inv string, e trace.Entry, format string, args ...any) {
	a.counts[inv]++
	if c := a.metricViol[inv]; c != nil {
		c.Inc()
	}
	v := Violation{
		Invariant: inv, Lock: e.Lock, At: e.At,
		Detail: fmt.Sprintf(format, args...),
	}
	if len(a.violations) < a.cfg.MaxViolations {
		a.violations = append(a.violations, v)
	}
	if a.cfg.OnViolation != nil {
		a.cfg.OnViolation(v)
	}
}

// onGranted checks Tab. 1(a) compatibility against all current holders,
// then installs the grant.
func (a *Auditor) onGranted(e trace.Entry) {
	ls := a.lock(e.Lock)
	for node, held := range ls.holders {
		if node == e.Node {
			continue // upgrade or re-grant on the same node
		}
		if !modes.Compatible(held, e.Mode) {
			a.flag(InvMutualExclusion, e,
				"node %d granted %v while node %d holds %v", e.Node, e.Mode, node, held)
		}
	}
	ls.holders[e.Node] = e.Mode
}

func (a *Auditor) onReleaseOp(e trace.Entry) {
	ls := a.lock(e.Lock)
	delete(ls.holders, e.Node)
}

func (a *Auditor) onSend(e trace.Entry) {
	ls := a.lock(e.Lock)
	switch e.Kind {
	case proto.KindToken:
		t := ls.token(e.Epoch)
		switch {
		case t.inFlight:
			a.flag(InvTokenConservation, e,
				"token sent %d→%d at epoch %d while already in flight %d→%d (duplicated)",
				e.From, e.To, e.Epoch, t.from, t.to)
			// Track the newest transfer so one bug is not reported forever.
			t.from, t.to = e.From, e.To
		case t.known && t.holder != e.From:
			a.flag(InvTokenConservation, e,
				"token sent by node %d at epoch %d but held by node %d", e.From, e.Epoch, t.holder)
			t.inFlight, t.from, t.to = true, e.From, e.To
			t.holder = proto.NoNode
		default:
			t.known = true
			t.inFlight, t.from, t.to = true, e.From, e.To
			t.holder = proto.NoNode
		}
		// Handing the token over repoints the sender's parent at the
		// recipient (the new root): a plausible future release target.
		a.parentEdge(ls, e.From, e.To)
	case proto.KindRecovered:
		a.onRecovered(ls, e, e.From)
	case proto.KindRequest:
		// Forwarding a request repoints the forwarder's parent at the
		// request's origin (path reversal): the origin becomes a plausible
		// future release target. The trace ID carries the origin.
		if !e.Trace.IsZero() && e.Trace.Node != e.From {
			a.parentEdge(ls, e.From, e.Trace.Node)
		}
	case proto.KindRelease:
		// A release must target a plausible parent: the initial root, a
		// node that previously granted e.From a copy or the token, or the
		// origin of a request e.From forwarded. A lone live node knows its
		// own grant deliveries and forwards, so this is exact for its own
		// releases and silent about everyone else's.
		if e.From == e.Node { // only the sender's own record is evidence
			if e.To != a.cfg.Root && !ls.parents[e.From][e.To] {
				a.flag(InvCopysetRelease, e,
					"node %d released to node %d, which never granted to or requested through it",
					e.From, e.To)
			}
		}
	}
	a.fifoSend(e)
}

func (a *Auditor) onDeliver(e trace.Entry) {
	ls := a.lock(e.Lock)
	switch e.Kind {
	case proto.KindToken:
		t := ls.token(e.Epoch)
		// Misrouting is only provable when the tracked transfer itself
		// arrives at the wrong node (same sender, wrong addressee). A
		// mismatch with a *different* sender means unobserved hops sit
		// between the send and this delivery — the normal case on a
		// single node's partial stream (lockd audits only its own ring:
		// it records its token send, never the remote delivery, and the
		// token comes back from whoever held it last), absorbed here by
		// catching the ledger up instead of crying duplication.
		if t.inFlight && t.to != e.To && t.from == e.From {
			a.flag(InvTokenConservation, e,
				"token delivered to node %d at epoch %d but was in flight %d→%d",
				e.To, e.Epoch, t.from, t.to)
		}
		t.known = true
		t.inFlight = false
		t.holder = e.To
		a.parentEdge(ls, e.To, e.From)
	case proto.KindGrant:
		a.parentEdge(ls, e.To, e.From)
	case proto.KindRecovered:
		a.onRecovered(ls, e, e.To)
	}
	a.fifoDeliver(e)
}

// onRecovered digests a regeneration-round outcome observed at node
// (the sender on OpSend, the receiver on OpDeliver). The entry's trace
// node carries the regenerated root: the node is reseeded with the root
// as its parent (a plausible release target from now on), and the
// round's epoch has its token seeded at the root — the "exactly one
// token per epoch" ledger opens with the regenerated token, so a second,
// conflicting regeneration at the same epoch is flagged like any other
// duplication. Late hints for an epoch whose token already moved on are
// absorbed by normal transfer tracking (seeding only happens on the
// first observation).
func (a *Auditor) onRecovered(ls *lockState, e trace.Entry, node proto.NodeID) {
	root := e.Trace.Node
	a.parentEdge(ls, node, root)
	t := ls.token(e.Epoch)
	if !t.known {
		t.known = true
		t.holder = root
	}
}

// parentEdge records that granter is a plausible release target for node
// (copyset membership / path-reversal parent for the pairing check).
func (a *Auditor) parentEdge(ls *lockState, node, granter proto.NodeID) {
	g := ls.parents[node]
	if g == nil {
		g = make(map[proto.NodeID]bool)
		ls.parents[node] = g
	}
	g[granter] = true
}

// fifoSend/fifoDeliver implement the online FIFO check: the i-th
// delivery on an ordered link must carry the i-th send's signature.
// Delivers with no retained send (live single-node streams) are skipped;
// links whose send backlog overflows go lossy instead of lying.
func (a *Auditor) fifoSend(e trace.Entry) {
	l := a.link(e)
	if l.lossy {
		return
	}
	if len(l.sends) >= a.cfg.MaxLinkBacklog {
		l.lossy = true
		l.sends = nil
		return
	}
	l.sends = append(l.sends, msgSig{e.Kind, e.Lock, e.Mode})
}

func (a *Auditor) fifoDeliver(e trace.Entry) {
	l := a.link(e)
	if l.lossy || len(l.sends) == 0 {
		return
	}
	want := l.sends[0]
	l.sends = l.sends[1:]
	got := msgSig{e.Kind, e.Lock, e.Mode}
	if got != want {
		a.flag(InvFreezeFIFO, e,
			"link %d→%d: delivered %v/%d/%v, next send was %v/%d/%v",
			e.From, e.To, got.kind, got.lock, got.mode, want.kind, want.lock, want.mode)
	}
}

func (a *Auditor) link(e trace.Entry) *linkState {
	k := linkKey{e.From, e.To}
	l := a.links[k]
	if l == nil {
		l = &linkState{}
		a.links[k] = l
	}
	return l
}

// Report is the auditor's JSON snapshot, served at /debug/audit.
type Report struct {
	Entries    uint64            `json:"entries"`
	Total      uint64            `json:"violations_total"`
	ByCheck    map[string]uint64 `json:"violations"`
	Violations []Violation       `json:"recent"`
}

// Snapshot returns the current audit state. Nil-safe.
func (a *Auditor) Snapshot() Report {
	rep := Report{ByCheck: make(map[string]uint64, len(Invariants))}
	if a == nil {
		for _, inv := range Invariants {
			rep.ByCheck[inv] = 0
		}
		return rep
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rep.Entries = a.entries
	for _, inv := range Invariants {
		rep.ByCheck[inv] = a.counts[inv]
		rep.Total += a.counts[inv]
	}
	rep.Violations = append([]Violation(nil), a.violations...)
	return rep
}

// Violations returns the total violation count across all invariants.
func (a *Auditor) Violations() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var n uint64
	for _, c := range a.counts {
		n += c
	}
	return n
}
