// Package mexcheck_test model-checks the three exclusive-only baseline
// protocols (Naimi–Trehel, Raymond, Suzuki–Kasami) the same way
// internal/hlock's checker covers the hierarchical protocol: every
// interleaving of client operations and per-link FIFO deliveries is
// explored for small clusters, with mutual exclusion and token uniqueness
// asserted in every reachable state and completion in every terminal one.
package mexcheck_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"hierlock/internal/naimi"
	"hierlock/internal/proto"
	"hierlock/internal/raymond"
	"hierlock/internal/ricart"
	"hierlock/internal/suzuki"
)

const testLock proto.LockID = 1

// engine abstracts the three baselines behind one shape.
type engine interface {
	Acquire() ([]proto.Message, bool, error)
	Release() ([]proto.Message, bool, error)
	Handle(*proto.Message) ([]proto.Message, bool, error)
	Clone(*proto.Clock) engine
	Fingerprint() string
	Held() bool
	HasToken() bool
}

type naimiEng struct{ *naimi.Engine }

func (e naimiEng) Acquire() ([]proto.Message, bool, error) {
	out, err := e.Engine.Acquire()
	return out.Msgs, out.Acquired, err
}
func (e naimiEng) Release() ([]proto.Message, bool, error) {
	out, err := e.Engine.Release()
	return out.Msgs, out.Acquired, err
}
func (e naimiEng) Handle(m *proto.Message) ([]proto.Message, bool, error) {
	out, err := e.Engine.Handle(m)
	return out.Msgs, out.Acquired, err
}
func (e naimiEng) Clone(c *proto.Clock) engine { return naimiEng{e.Engine.Clone(c)} }

type raymondEng struct{ *raymond.Engine }

func (e raymondEng) Acquire() ([]proto.Message, bool, error) {
	out, err := e.Engine.Acquire()
	return out.Msgs, out.Acquired, err
}
func (e raymondEng) Release() ([]proto.Message, bool, error) {
	out, err := e.Engine.Release()
	return out.Msgs, out.Acquired, err
}
func (e raymondEng) Handle(m *proto.Message) ([]proto.Message, bool, error) {
	out, err := e.Engine.Handle(m)
	return out.Msgs, out.Acquired, err
}
func (e raymondEng) Clone(c *proto.Clock) engine { return raymondEng{e.Engine.Clone(c)} }

type ricartEng struct{ *ricart.Engine }

func (e ricartEng) Acquire() ([]proto.Message, bool, error) {
	out, err := e.Engine.Acquire()
	return out.Msgs, out.Acquired, err
}
func (e ricartEng) Release() ([]proto.Message, bool, error) {
	out, err := e.Engine.Release()
	return out.Msgs, out.Acquired, err
}
func (e ricartEng) Handle(m *proto.Message) ([]proto.Message, bool, error) {
	out, err := e.Engine.Handle(m)
	return out.Msgs, out.Acquired, err
}
func (e ricartEng) Clone(c *proto.Clock) engine { return ricartEng{e.Engine.Clone(c)} }

// HasToken: the permission-based algorithm has no token; the checker
// skips token-uniqueness for it (see tokenless).
func (e ricartEng) HasToken() bool { return false }

type suzukiEng struct{ *suzuki.Engine }

func (e suzukiEng) Acquire() ([]proto.Message, bool, error) {
	out, err := e.Engine.Acquire()
	return out.Msgs, out.Acquired, err
}
func (e suzukiEng) Release() ([]proto.Message, bool, error) {
	out, err := e.Engine.Release()
	return out.Msgs, out.Acquired, err
}
func (e suzukiEng) Handle(m *proto.Message) ([]proto.Message, bool, error) {
	out, err := e.Engine.Handle(m)
	return out.Msgs, out.Acquired, err
}
func (e suzukiEng) Clone(c *proto.Clock) engine { return suzukiEng{e.Engine.Clone(c)} }

// factory builds the n engines of a protocol in their initial topology.
type factory func(n int, clocks []*proto.Clock) []engine

var factories = map[string]factory{
	"naimi": func(n int, clocks []*proto.Clock) []engine {
		out := make([]engine, n)
		for i := 0; i < n; i++ {
			out[i] = naimiEng{naimi.New(proto.NodeID(i), testLock, 0, i == 0, clocks[i])}
		}
		return out
	},
	"raymond": func(n int, clocks []*proto.Clock) []engine {
		out := make([]engine, n)
		for i := 0; i < n; i++ {
			out[i] = raymondEng{raymond.New(proto.NodeID(i), testLock, raymond.BinaryTreeHolder(proto.NodeID(i)), clocks[i])}
		}
		return out
	},
	"suzuki": func(n int, clocks []*proto.Clock) []engine {
		out := make([]engine, n)
		for i := 0; i < n; i++ {
			out[i] = suzukiEng{suzuki.New(proto.NodeID(i), testLock, n, i == 0, clocks[i])}
		}
		return out
	},
	"ricart": func(n int, clocks []*proto.Clock) []engine {
		out := make([]engine, n)
		for i := 0; i < n; i++ {
			out[i] = ricartEng{ricart.New(proto.NodeID(i), testLock, n, clocks[i])}
		}
		return out
	},
}

// tokenless marks protocols without a token (no uniqueness check).
var tokenless = map[string]bool{"ricart": true}

type phase uint8

const (
	phIdle phase = iota
	phWaiting
	phHolding
	phDone
)

type state struct {
	engines []engine
	clocks  []*proto.Clock
	queues  map[[2]proto.NodeID][]proto.Message
	phase   []phase
}

func (s *state) clone() *state {
	n := len(s.engines)
	ns := &state{
		engines: make([]engine, n),
		clocks:  make([]*proto.Clock, n),
		queues:  make(map[[2]proto.NodeID][]proto.Message, len(s.queues)),
		phase:   append([]phase(nil), s.phase...),
	}
	for i := 0; i < n; i++ {
		ns.clocks[i] = s.clocks[i].Clone()
		ns.engines[i] = s.engines[i].Clone(ns.clocks[i])
	}
	for k, q := range s.queues {
		if len(q) > 0 {
			ns.queues[k] = append([]proto.Message(nil), q...)
		}
	}
	return ns
}

// key canonically encodes the state. Lamport clock values and message
// timestamps are deliberately excluded: none of the three baselines
// branches on them, so including them would split behaviorally identical
// states and explode the search space.
func (s *state) key() string {
	var b strings.Builder
	for i, e := range s.engines {
		fmt.Fprintf(&b, "N%d[%s|%d]", i, e.Fingerprint(), s.phase[i])
	}
	links := make([][2]proto.NodeID, 0, len(s.queues))
	for k, q := range s.queues {
		if len(q) > 0 {
			links = append(links, k)
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	for _, k := range links {
		fmt.Fprintf(&b, "L%d-%d:", k[0], k[1])
		for _, m := range s.queues[k] {
			fmt.Fprintf(&b, "%d/%d/%v/%v;", m.Kind, m.Seq, m.Vec, m.Req.Origin)
			for _, r := range m.Queue {
				fmt.Fprintf(&b, "q%d,", r.Origin)
			}
		}
	}
	return b.String()
}

type checker struct {
	t       *testing.T
	name    string
	notoken bool
	visited map[string]struct{}
	states  int
	limit   int
	// succ/terminal record the state graph for the liveness check.
	succ     map[string][]string
	terminal map[string]bool
}

func (c *checker) fail(s *state, format string, args ...interface{}) {
	c.t.Helper()
	var b strings.Builder
	for i, e := range s.engines {
		fmt.Fprintf(&b, "  node %d ph %d: %s\n", i, s.phase[i], e.Fingerprint())
	}
	c.t.Fatalf("[%s] "+format+"\nstate:\n%s", append([]interface{}{c.name}, append(args, b.String())...)...)
}

func (c *checker) safety(s *state) {
	c.t.Helper()
	holders := 0
	for _, e := range s.engines {
		if e.Held() {
			holders++
		}
	}
	if holders > 1 {
		c.fail(s, "MUTUAL EXCLUSION: %d holders", holders)
	}
	if !c.notoken {
		tokens := 0
		for _, e := range s.engines {
			if e.HasToken() {
				tokens++
			}
		}
		for _, q := range s.queues {
			for _, m := range q {
				if m.Kind == proto.KindToken {
					tokens++
				}
			}
		}
		if tokens != 1 {
			c.fail(s, "TOKEN COUNT = %d", tokens)
		}
	}
}

func (c *checker) explore(s *state) {
	c.t.Helper()
	k := s.key()
	if _, seen := c.visited[k]; seen {
		return
	}
	c.visited[k] = struct{}{}
	c.states++
	if c.states > c.limit {
		c.t.Fatalf("[%s] state limit exceeded", c.name)
	}
	c.safety(s)

	acted := false
	step := func(mut func(ns *state)) {
		acted = true
		ns := s.clone()
		mut(ns)
		c.succ[k] = append(c.succ[k], ns.key())
		c.explore(ns)
	}
	for i := range s.engines {
		i := i
		switch s.phase[i] {
		case phIdle:
			step(func(ns *state) {
				ns.phase[i] = phWaiting
				msgs, acq, err := ns.engines[i].Acquire()
				if err != nil {
					c.fail(ns, "Acquire: %v", err)
				}
				c.absorb(ns, i, msgs, acq)
			})
		case phHolding:
			step(func(ns *state) {
				ns.phase[i] = phDone
				msgs, acq, err := ns.engines[i].Release()
				if err != nil {
					c.fail(ns, "Release: %v", err)
				}
				c.absorb(ns, i, msgs, acq)
			})
		}
	}
	for k, q := range s.queues {
		if len(q) == 0 {
			continue
		}
		k := k
		step(func(ns *state) {
			msg := ns.queues[k][0]
			ns.queues[k] = ns.queues[k][1:]
			if len(ns.queues[k]) == 0 {
				delete(ns.queues, k)
			}
			msgs, acq, err := ns.engines[msg.To].Handle(&msg)
			if err != nil {
				c.fail(ns, "Handle(%v %d→%d): %v", msg.Kind, msg.From, msg.To, err)
			}
			c.absorb(ns, int(msg.To), msgs, acq)
		})
	}

	if !acted {
		for i := range s.engines {
			if s.phase[i] != phDone {
				c.fail(s, "node %d never completed (phase %d)", i, s.phase[i])
			}
			if s.engines[i].Held() {
				c.fail(s, "node %d still holding at termination", i)
			}
		}
		c.terminal[k] = true
	}
}

// checkLiveness verifies every explored state can reach a terminal state
// (no livelocks), by backward reachability from the terminal set.
func (c *checker) checkLiveness() {
	c.t.Helper()
	pred := make(map[string][]string, len(c.succ))
	for from, tos := range c.succ {
		for _, to := range tos {
			pred[to] = append(pred[to], from)
		}
	}
	reach := make(map[string]bool, len(c.visited))
	var stack []string
	for k := range c.terminal {
		reach[k] = true
		stack = append(stack, k)
	}
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range pred[k] {
			if !reach[p] {
				reach[p] = true
				stack = append(stack, p)
			}
		}
	}
	dead := 0
	for k := range c.visited {
		if !reach[k] {
			dead++
		}
	}
	if dead > 0 {
		c.t.Fatalf("[%s] LIVELOCK: %d of %d states cannot reach completion", c.name, dead, len(c.visited))
	}
}

func (c *checker) absorb(s *state, node int, msgs []proto.Message, acquired bool) {
	for _, m := range msgs {
		key := [2]proto.NodeID{m.From, m.To}
		s.queues[key] = append(s.queues[key], m)
	}
	if acquired {
		if s.phase[node] != phWaiting {
			c.fail(s, "node %d acquired in phase %d", node, s.phase[node])
		}
		s.phase[node] = phHolding
	}
}

// TestModelCheckBaselines explores every interleaving for clusters of 2,
// 3 and 4 nodes, each node acquiring and releasing once, for all three
// baseline protocols.
func TestModelCheckBaselines(t *testing.T) {
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := factories[name]
		sizes := []int{2, 3, 4}
		if name == "ricart" {
			// Ricart–Agrawala's behavior depends on timestamp comparisons,
			// so states do not collapse under the clock-free abstraction;
			// four nodes is intractable to enumerate exactly.
			sizes = []int{2, 3}
		}
		for _, n := range sizes {
			name, n := name, n
			t.Run(fmt.Sprintf("%s-%d", name, n), func(t *testing.T) {
				clocks := make([]*proto.Clock, n)
				for i := range clocks {
					clocks[i] = &proto.Clock{}
				}
				s := &state{
					engines: f(n, clocks),
					clocks:  clocks,
					queues:  make(map[[2]proto.NodeID][]proto.Message),
					phase:   make([]phase, n),
				}
				c := &checker{
					t: t, name: name,
					notoken:  tokenless[name],
					visited:  make(map[string]struct{}),
					limit:    3_000_000,
					succ:     make(map[string][]string),
					terminal: make(map[string]bool),
				}
				c.explore(s)
				c.checkLiveness()
				t.Logf("explored %d states, liveness verified (%d terminal)", c.states, len(c.terminal))
			})
		}
	}
}
