package profile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func newTestProfiler(t *testing.T, minInterval time.Duration) *Profiler {
	t.Helper()
	p, err := New(t.TempDir(), minInterval)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCaptureWritesEveryKind(t *testing.T) {
	p := newTestProfiler(t, 0)
	p.SetCPUDuration(10 * time.Millisecond)
	for _, kind := range Kinds {
		path, err := p.Capture(kind)
		if err != nil {
			t.Fatalf("capture %s: %v", kind, err)
		}
		if path == "" {
			t.Fatalf("capture %s suppressed with rate limiting disabled", kind)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("capture %s wrote nothing: %v", kind, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("capture %s wrote an empty file", kind)
		}
		if !strings.HasSuffix(path, "-"+kind+".pprof") {
			t.Fatalf("capture %s wrote unexpected name %s", kind, path)
		}
	}
	st := p.Stats()
	for _, kind := range Kinds {
		if st.Captures[kind] != 1 {
			t.Fatalf("captures[%s] = %d, want 1", kind, st.Captures[kind])
		}
	}
	if st.Suppressed != 0 || st.LastErr != nil {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestCaptureRateLimit(t *testing.T) {
	p := newTestProfiler(t, time.Hour)
	if path, err := p.Capture("goroutine"); err != nil || path == "" {
		t.Fatalf("first capture: path %q err %v", path, err)
	}
	// Inside the interval: suppressed, not an error.
	if path, err := p.Capture("goroutine"); err != nil || path != "" {
		t.Fatalf("second capture: path %q err %v, want suppressed", path, err)
	}
	// A different kind has its own limiter.
	if path, err := p.Capture("heap"); err != nil || path == "" {
		t.Fatalf("heap capture: path %q err %v", path, err)
	}
	st := p.Stats()
	if st.Captures["goroutine"] != 1 || st.Captures["heap"] != 1 || st.Suppressed != 1 {
		t.Fatalf("stats %+v, want goroutine:1 heap:1 suppressed:1", st)
	}
}

func TestCaptureUnknownKind(t *testing.T) {
	p := newTestProfiler(t, 0)
	if _, err := p.Capture("threads"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestCaptureAll(t *testing.T) {
	p := newTestProfiler(t, 0)
	p.SetCPUDuration(10 * time.Millisecond)
	files, err := p.CaptureAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(Kinds) {
		t.Fatalf("CaptureAll wrote %d files, want %d", len(files), len(Kinds))
	}
}

func TestListAndRead(t *testing.T) {
	p := newTestProfiler(t, 0)
	path, err := p.Capture("heap")
	if err != nil {
		t.Fatal(err)
	}
	// A stray non-profile file must not be listed or readable.
	if err := os.WriteFile(filepath.Join(p.Dir(), "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	files, err := p.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Name != filepath.Base(path) {
		t.Fatalf("List = %+v, want exactly %s", files, filepath.Base(path))
	}
	data, err := p.Read(files[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("Read returned no bytes")
	}
	for _, bad := range []string{"notes.txt", "../escape.pprof", "sub/dir.pprof"} {
		if _, err := p.Read(bad); err == nil {
			t.Fatalf("Read(%q) accepted", bad)
		}
	}
}

func TestNilProfilerSafe(t *testing.T) {
	var p *Profiler
	if path, err := p.Capture("cpu"); err != nil || path != "" {
		t.Fatalf("nil Capture: %q, %v", path, err)
	}
	if files, err := p.CaptureAll(); err != nil || files != nil {
		t.Fatalf("nil CaptureAll: %v, %v", files, err)
	}
	if files, err := p.List(); err != nil || files != nil {
		t.Fatalf("nil List: %v, %v", files, err)
	}
	if _, err := p.Read("x.pprof"); err == nil {
		t.Fatal("nil Read succeeded")
	}
	st := p.Stats()
	if len(st.Captures) != len(Kinds) {
		t.Fatalf("nil Stats missing kinds: %+v", st)
	}
	p.SetCPUDuration(time.Second)
	if p.Dir() != "" {
		t.Fatal("nil Dir nonempty")
	}
}
