// Package profile gives lockd continuous-profiling hooks: on-demand and
// trigger-driven capture of runtime profiles (CPU, heap, goroutine,
// mutex, block), saved as pprof files next to the flight recorder's
// blackbox dumps so a health incident leaves both the event lead-up and
// the execution profile behind. Captures are rate-limited per kind the
// same way blackbox dumps are rate-limited per reason, so a flapping
// trigger cannot fill the disk.
//
// Mutex and block profiling have a runtime-wide cost and are off by
// default; EnableRuntimeProfiles turns them on behind lockd's
// -mutex-profile-fraction and -block-profile-rate flags.
package profile

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kinds lists the capturable profile kinds, for zero-pre-registration
// of the capture counter's label values.
var Kinds = []string{"cpu", "heap", "goroutine", "mutex", "block"}

// DefaultCPUDuration is how long a CPU capture samples when not
// overridden with SetCPUDuration.
const DefaultCPUDuration = time.Second

// Profiler writes rate-limited profile captures under one directory.
// All methods are nil-safe: a runtime without a profiler attached pays
// only a nil check.
type Profiler struct {
	dir         string
	minInterval time.Duration

	mu         sync.Mutex
	cpuDur     time.Duration
	last       map[string]time.Time
	captures   map[string]uint64
	suppressed uint64
	lastErr    error
	cpuBusy    bool
}

// New creates a profiler writing captures under dir (created if
// missing), at most one per kind per minInterval (default 5s when
// <= 0, matching the flight recorder's dump spacing).
func New(dir string, minInterval time.Duration) (*Profiler, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if minInterval <= 0 {
		minInterval = 5 * time.Second
	}
	p := &Profiler{
		dir:         dir,
		minInterval: minInterval,
		cpuDur:      DefaultCPUDuration,
		last:        make(map[string]time.Time),
		captures:    make(map[string]uint64, len(Kinds)),
	}
	for _, k := range Kinds {
		p.captures[k] = 0
	}
	return p, nil
}

// EnableRuntimeProfiles turns on the runtime's contention profilers:
// mutexFraction > 0 samples 1/fraction of mutex contention events and
// blockRate > 0 samples blocking events lasting at least that many
// nanoseconds (1 samples everything). Zero leaves the corresponding
// profiler off; the captures then contain whatever the runtime
// accumulated (typically nothing).
func EnableRuntimeProfiles(mutexFraction, blockRate int) {
	if mutexFraction > 0 {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
	if blockRate > 0 {
		runtime.SetBlockProfileRate(blockRate)
	}
}

// SetCPUDuration overrides how long CPU captures sample (values <= 0
// keep the current duration). Nil-safe.
func (p *Profiler) SetCPUDuration(d time.Duration) {
	if p == nil || d <= 0 {
		return
	}
	p.mu.Lock()
	p.cpuDur = d
	p.mu.Unlock()
}

// Capture writes one profile of the given kind, rate-limited per kind.
// Returns the file path, or "" when suppressed by the rate limit. The
// CPU kind blocks for the configured sampling duration; call it from a
// background goroutine when latency matters. Nil-safe.
func (p *Profiler) Capture(kind string) (string, error) {
	if p == nil {
		return "", nil
	}
	known := false
	for _, k := range Kinds {
		if k == kind {
			known = true
			break
		}
	}
	if !known {
		return "", fmt.Errorf("profile: unknown kind %q", kind)
	}
	now := time.Now()
	p.mu.Lock()
	if p.minInterval > 0 && now.Sub(p.last[kind]) < p.minInterval {
		p.suppressed++
		p.mu.Unlock()
		return "", nil
	}
	if kind == "cpu" {
		if p.cpuBusy {
			p.suppressed++
			p.mu.Unlock()
			return "", nil
		}
		p.cpuBusy = true
	}
	p.last[kind] = now
	dur := p.cpuDur
	p.mu.Unlock()

	path := filepath.Join(p.dir, fmt.Sprintf("%d-%s.pprof", now.UnixNano(), kind))
	err := writeProfile(path, kind, dur)
	p.mu.Lock()
	if kind == "cpu" {
		p.cpuBusy = false
	}
	if err != nil {
		p.lastErr = err
	} else {
		p.captures[kind]++
	}
	p.mu.Unlock()
	if err != nil {
		return "", err
	}
	return path, nil
}

func writeProfile(path, kind string, cpuDur time.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch kind {
	case "cpu":
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		time.Sleep(cpuDur)
		pprof.StopCPUProfile()
		return nil
	case "heap":
		// Capture allocation state as of the most recent GC.
		runtime.GC()
		return pprof.Lookup("heap").WriteTo(f, 0)
	default:
		pr := pprof.Lookup(kind)
		if pr == nil {
			return fmt.Errorf("profile: runtime has no %q profile", kind)
		}
		return pr.WriteTo(f, 0)
	}
}

// CaptureAll captures every non-CPU kind plus a CPU sample, returning
// the files written (suppressed kinds omitted) and the first error.
// This is the watchdog's stall hook: one call leaves a full execution
// snapshot next to the blackbox dump. Nil-safe.
func (p *Profiler) CaptureAll() ([]string, error) {
	if p == nil {
		return nil, nil
	}
	var files []string
	var first error
	for _, kind := range Kinds {
		path, err := p.Capture(kind)
		if err != nil && first == nil {
			first = err
		}
		if path != "" {
			files = append(files, path)
		}
	}
	return files, first
}

// File describes one capture on disk.
type File struct {
	Name  string `json:"name"`
	Size  int64  `json:"size"`
	MTime string `json:"mtime"`
}

// List enumerates the capture files under the profiler's directory,
// oldest first. Nil-safe (empty list).
func (p *Profiler) List() ([]File, error) {
	if p == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(p.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".pprof") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, File{
			Name:  e.Name(),
			Size:  info.Size(),
			MTime: info.ModTime().UTC().Format(time.RFC3339),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Read loads one capture by name. The name must be a bare file name
// from List — path separators are rejected so an HTTP retrieval
// endpoint can pass client input through safely.
func (p *Profiler) Read(name string) ([]byte, error) {
	if p == nil {
		return nil, fmt.Errorf("profile: no profiler attached")
	}
	if name != filepath.Base(name) || name == "." || name == "" ||
		!strings.HasSuffix(name, ".pprof") {
		return nil, fmt.Errorf("profile: bad capture name %q", name)
	}
	return os.ReadFile(filepath.Join(p.dir, name))
}

// Stats is a snapshot of the profiler's counters. Every kind is present
// (zero included) so metric pre-registration is complete.
type Stats struct {
	Captures   map[string]uint64
	Suppressed uint64
	LastErr    error
}

// Stats returns the profiler's counters. Nil-safe.
func (p *Profiler) Stats() Stats {
	st := Stats{Captures: make(map[string]uint64, len(Kinds))}
	for _, k := range Kinds {
		st.Captures[k] = 0
	}
	if p == nil {
		return st
	}
	p.mu.Lock()
	for k, n := range p.captures {
		st.Captures[k] = n
	}
	st.Suppressed = p.suppressed
	st.LastErr = p.lastErr
	p.mu.Unlock()
	return st
}

// Dir returns the capture directory ("" for a nil profiler).
func (p *Profiler) Dir() string {
	if p == nil {
		return ""
	}
	return p.dir
}
