package profile

import "hierlock/internal/metrics"

// RegisterCollectors exposes the profiler's counters at scrape time;
// every profile kind is emitted (zeros included).
func RegisterCollectors(reg *metrics.Registry, p *Profiler) {
	reg.Collect(metrics.MetricProfileCaptures,
		"Profile captures written to disk, by profile kind.", "counter",
		func(emit func(metrics.Labels, float64)) {
			st := p.Stats()
			for _, k := range Kinds {
				emit(metrics.Labels{"profile": k}, float64(st.Captures[k]))
			}
		})
	reg.Collect(metrics.MetricProfileSuppressed,
		"Profile capture requests suppressed by the per-kind rate limit.", "counter",
		func(emit func(metrics.Labels, float64)) {
			emit(nil, float64(p.Stats().Suppressed))
		})
}
