package journal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"hierlock/internal/modes"
	"hierlock/internal/proto"
)

// FuzzReplay feeds arbitrary bytes to the frame scanner as a WAL file.
// Replay must never panic, never error on corruption (corruption is a
// clean stop, not a failure), and — the prefix property — must recover
// exactly the records whose complete, CRC-valid frames precede the
// first bad frame.
func FuzzReplay(f *testing.F) {
	// Seed with a valid log, a torn tail, a corrupt CRC, and junk.
	var valid bytes.Buffer
	for i := 0; i < 3; i++ {
		var buf [frameHeader + payloadSize]byte
		binary.LittleEndian.PutUint32(buf[0:], payloadSize)
		Record{Kind: RecGrant, Lock: proto.LockID(i), Epoch: uint32(i + 1), Mode: modes.W}.encode(buf[frameHeader:])
		binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(buf[frameHeader:]))
		valid.Write(buf[:])
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-7])
	corrupted := append([]byte(nil), valid.Bytes()...)
	corrupted[frameHeader+2] ^= 0x40
	f.Add(corrupted)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		state, err := Replay(dir)
		if err != nil {
			t.Fatalf("replay errored on arbitrary input: %v", err)
		}

		// Independently compute the expected clean prefix.
		want := make(map[proto.LockID]Record)
		rest := data
		for {
			if len(rest) < frameHeader {
				break
			}
			length := binary.LittleEndian.Uint32(rest[0:])
			crc := binary.LittleEndian.Uint32(rest[4:])
			if length < payloadSize || length > maxFrame || len(rest) < frameHeader+int(length) {
				break
			}
			payload := rest[frameHeader : frameHeader+int(length)]
			if crc32.ChecksumIEEE(payload) != crc {
				break
			}
			r := decodeRecord(payload)
			want[r.Lock] = r
			rest = rest[frameHeader+int(length):]
		}
		if len(state) != len(want) {
			t.Fatalf("recovered %d records, want %d", len(state), len(want))
		}
		for l, r := range want {
			if state[l] != r {
				t.Fatalf("lock %d = %+v, want %+v", l, state[l], r)
			}
		}
	})
}
